package memnet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// scenarioDoc is a complete document exercising the public loader: an
// irregular Y of three cubes with an embedded workload block.
const scenarioDoc = `{
	"schema": "memnet/scenario/v1",
	"name": "pub-y",
	"nodes": [
		{"name": "c0"},
		{"name": "c1", "tech": "nvm"},
		{"name": "c2"}
	],
	"links": [
		{"a": "host", "b": "c0"},
		{"a": "c0", "b": "c1"},
		{"a": "c0", "b": "c2"}
	],
	"workload": {"read_fraction": 0.7, "mean_gap_ps": 2000}
}`

func TestScenarioPublicRun(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scenario: s, Transactions: 1500, Seed: 3, DRAMFraction: 1.0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "pub-y" {
		t.Errorf("label = %q, want pub-y", res.Label)
	}
	if res.Transactions != 1500 {
		t.Errorf("completed %d", res.Transactions)
	}
	// The embedded workload block drove the run.
	if res.Workload != "custom" {
		t.Errorf("workload = %q, want custom", res.Workload)
	}
	// An explicit suite workload takes precedence over the block.
	cfg.Workload = "KMEANS"
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Workload != "KMEANS" {
		t.Errorf("explicit workload = %q, want KMEANS", res2.Workload)
	}
}

func TestScenarioNeedsWorkload(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	s.Workload = nil
	if _, err := Run(Config{Scenario: s, DRAMFraction: 1.0}); err == nil ||
		!strings.Contains(err.Error(), "workload") {
		t.Fatalf("workload-less scenario config: %v", err)
	}
}

// TestScenarioExportRoundTrip is the public half of the byte-identity
// acceptance: exporting a Config's topology and running the export as a
// scenario reproduces the compiled-in Results exactly.
func TestScenarioExportRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = SkipList
	cfg.Transactions = 2000
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ExportScenario(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	// Through the serialized form, as mnsim -scenario would see it.
	reloaded, err := DecodeScenario(spec.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	sc := cfg
	sc.Scenario = reloaded
	via, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, via) {
		t.Errorf("export round trip differs:\ndirect: %+v\nvia:    %+v", direct, via)
	}
	if _, err := ExportScenario(sc, "again"); err == nil {
		t.Error("ExportScenario of a scenario-backed config not rejected")
	}
}

// TestScenarioRunCached proves the cache-hit property: a re-loaded
// scenario document is served from the result cache without simulating.
func TestScenarioRunCached(t *testing.T) {
	dir := t.TempDir()
	run := func() (Results, bool) {
		s, err := LoadScenario(strings.NewReader(scenarioDoc))
		if err != nil {
			t.Fatal(err)
		}
		res, cached, err := RunCached(Config{Scenario: s, Transactions: 1000, DRAMFraction: 1.0}, dir)
		if err != nil {
			t.Fatal(err)
		}
		return res, cached
	}
	first, cached := run()
	if cached {
		t.Fatal("first run reported cached")
	}
	second, cached := run()
	if !cached {
		t.Fatal("re-loaded scenario missed the cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from simulated results")
	}
}

func TestScenarioChaos(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scenario: s, Transactions: 1000, DRAMFraction: 1.0}
	// Every edge of the Y is a bridge, so survivable link kills do not
	// exist here; cube kills and flaps are always schedulable.
	fc, err := GenerateChaos(cfg, ChaosSpec{Seed: 5, Horizon: 20 * Microsecond, CubeKills: 1, LaneFlaps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.KillCubes) != 1 || len(fc.LaneFlaps) != 1 {
		t.Fatalf("chaos plan = %+v", fc)
	}
	cfg.Fault = fc
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioSchemaExposed(t *testing.T) {
	js := ScenarioSchemaJSON()
	if !bytes.Contains(js, []byte(ScenarioSchema)) {
		t.Error("embedded schema does not pin the format identifier")
	}
	if _, err := LoadScenarioFile("no/such/file.json"); err == nil {
		t.Error("missing file not reported")
	}
}
