package memnet

import (
	"fmt"
	"testing"
)

// TestMigrationDeterminism is the regression guard for the migrate
// map-iteration fix: two identically-seeded runs with hot-block
// migration enabled must produce byte-identical Results. Migration
// decisions feed back into address translation and therefore into
// every latency and energy number, so any unordered map walk on the
// decision path (the bug mnlint's detmap analyzer flags statically)
// shows up here as run-to-run drift.
func TestMigrationDeterminism(t *testing.T) {
	run := func() (Results, uint64, uint64) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Workload = "BACKPROP"
		cfg.DRAMFraction = 0.5
		cfg.Transactions = 3000
		cfg.Seed = 42
		pol := DefaultMigration()
		pol.Epoch = 2 * Microsecond
		pol.HotThreshold = 2
		cfg.Migration = &pol
		inst, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Migrator.Validate(); err != nil {
			t.Fatalf("remap table invariant broken: %v", err)
		}
		return res, inst.Migrator.Stats().Swaps, inst.Migrator.Fingerprint()
	}

	r1, swaps1, fp1 := run()
	r2, swaps2, fp2 := run()

	// The guard is only meaningful if migration actually moved blocks;
	// a zero-swap run would pass trivially even with the bug present.
	if swaps1 == 0 {
		t.Fatal("migration performed no swaps; the determinism guard exercises nothing")
	}
	if swaps1 != swaps2 {
		t.Fatalf("swap counts diverged between identical runs: %d vs %d", swaps1, swaps2)
	}
	b1 := fmt.Sprintf("%#v", r1)
	b2 := fmt.Sprintf("%#v", r2)
	if b1 != b2 {
		t.Fatalf("identically-seeded migration runs produced different Results:\nrun 1: %s\nrun 2: %s", b1, b2)
	}
	// Results metrics can coincide even when order-dependent decisions
	// migrated different (timing-symmetric) blocks, so also pin the
	// indirection table itself.
	if fp1 != fp2 {
		t.Fatalf("identically-seeded migration runs produced different remap tables: %#x vs %#x", fp1, fp2)
	}
}
