package memnet_test

import (
	"fmt"

	"memnet"
)

// The simplest possible use: run the default all-DRAM tree and read the
// headline metrics.
func Example() {
	cfg := memnet.DefaultConfig()
	cfg.Transactions = 1000
	res, err := memnet.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Label, res.Transactions, res.Reads+res.Writes == res.Transactions)
	// Output: 100%-T 1000 true
}

// Comparing two configurations with the paper's speedup metric.
func ExampleSpeedup() {
	tree := memnet.DefaultConfig()
	tree.Transactions = 2000
	chain := tree
	chain.Topology = memnet.Chain
	s, err := memnet.Speedup(tree, chain)
	if err != nil {
		panic(err)
	}
	fmt.Println("tree beats chain:", s > 0)
	// Output: tree beats chain: true
}

// Building an instance gives access to the topology and per-component
// statistics.
func ExampleBuild() {
	cfg := memnet.DefaultConfig()
	cfg.Topology = memnet.SkipList
	cfg.Transactions = 500
	in, err := memnet.Build(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("cubes:", len(in.Graph.CubeIDs()),
		"worst-case hops:", in.Graph.MaxHostDist())
	// Output: cubes: 16 worst-case hops: 5
}

// Mixing NVM into the network per the paper's §3.3.
func ExampleConfig_dramFraction() {
	cfg := memnet.DefaultConfig()
	cfg.DRAMFraction = 0.5
	cfg.Placement = memnet.NVMLast
	cfg.Transactions = 500
	in, err := memnet.Build(cfg)
	if err != nil {
		panic(err)
	}
	// 8 DRAM cubes + 2 four-times-denser NVM cubes.
	fmt.Println("cubes:", len(in.Graph.CubeIDs()))
	// Output: cubes: 10
}
