// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus microbenchmarks of the simulator core and ablation
// benches for the design choices DESIGN.md calls out.
//
// Each figure benchmark regenerates its table once per iteration (run
// with -benchtime=1x for a single regeneration) and reports the
// headline quantity as a custom metric, so `go test -bench .` doubles
// as a compact reproduction report. MEMNET_BENCH_TXNS overrides the
// per-run trace length (default 4000).
package memnet

import (
	"os"
	"strconv"
	"testing"

	"memnet/internal/experiments"
	"memnet/internal/sim"
)

func benchOptions() experiments.Options {
	opts := experiments.Options{Transactions: 4000, Seed: 1}
	if s := os.Getenv("MEMNET_BENCH_TXNS"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			opts.Transactions = v
		}
	}
	return opts
}

// avgOf reports a row's trailing "average" column.
func avgOf(b *testing.B, tab *experiments.Table, label string) float64 {
	b.Helper()
	row, ok := tab.RowByLabel(label)
	if !ok || len(row.Values) == 0 {
		b.Fatalf("row %q missing", label)
	}
	return row.Values[len(row.Values)-1]
}

func BenchmarkTable1DDRSpeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		v, _ := tab.Cell("DDR3", "3 DPC")
		b.ReportMetric(v, "DDR3-3DPC-MTs")
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2Text()) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

func BenchmarkFig4TopologySpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-R"), "ring-avg-%")
		b.ReportMetric(avgOf(b, tab, "100%-T"), "tree-avg-%")
	}
}

func BenchmarkFig5LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		row, _ := tab.RowByLabel("Chain/to-memory")
		var sum float64
		for _, v := range row.Values {
			sum += v
		}
		b.ReportMetric(sum/float64(len(row.Values)), "chain-tomem-frac")
	}
}

func BenchmarkFig7NVMRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "50%-T (NVM-L)"), "mix50L-avg-%")
		b.ReportMetric(avgOf(b, tab, "0%-T"), "allNVM-avg-%")
	}
}

func BenchmarkFig10DistanceArb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-T"), "tree-gain-%")
		b.ReportMetric(avgOf(b, tab, "50%-T (NVM-F)"), "nvmF-gain-%")
	}
}

func BenchmarkFig11NewTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-SL"), "skiplist-avg-%")
		b.ReportMetric(avgOf(b, tab, "100%-MC"), "metacube-avg-%")
	}
}

func BenchmarkFig12Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-SL"), "skiplist-avg-%")
		b.ReportMetric(avgOf(b, tab, "100%-MC"), "metacube-avg-%")
	}
}

func BenchmarkFig13PortSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-T"), "tree-4port-%")
		b.ReportMetric(avgOf(b, tab, "100%-MC"), "metacube-4port-%")
	}
}

func BenchmarkFig14CapacitySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, tab, "100%-T"), "dram-1TB-%")
		b.ReportMetric(avgOf(b, tab, "0%-T"), "nvm-1TB-%")
	}
}

func BenchmarkFig15EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		tab, err := r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		v, _ := tab.Cell("0%-C", "total")
		b.ReportMetric(v, "allNVM-chain-energy-x")
		v, _ = tab.Cell("100%-T", "total")
		b.ReportMetric(v, "tree-energy-x")
	}
}

// --- Microbenchmarks -----------------------------------------------

// BenchmarkSimulationThroughput measures end-to-end simulated
// transactions per wall second on the baseline tree.
func BenchmarkSimulationThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Transactions = 5000
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += int(res.Transactions)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "txns/s")
}

// BenchmarkEngineEvents measures raw event-dispatch throughput.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			eng.Schedule(1, fn)
		}
	}
	b.ResetTimer()
	eng.Schedule(1, fn)
	eng.Run()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// --- Ablation benches ------------------------------------------------

// ablation runs the KMEANS tree with one tuning mutation and reports
// the finish-time delta vs the default, exposing how much each modeling
// choice matters.
func ablation(b *testing.B, mutate func(*Config)) {
	base := DefaultConfig()
	base.Transactions = benchOptions().Transactions
	mut := base
	mutate(&mut)
	for i := 0; i < b.N; i++ {
		r0, err := Run(base)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := Run(mut)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((float64(r1.FinishTime)/float64(r0.FinishTime)-1)*100, "delta-%")
	}
}

// BenchmarkAblationNoResponsePriority disables the response-over-request
// link priority (the deadlock-avoidance rule behind Fig. 5's request
// backup).
func BenchmarkAblationNoResponsePriority(b *testing.B) {
	ablation(b, func(c *Config) {
		tn := DefaultTuning()
		tn.NoVCPriority = true
		c.Tuning = &tn
	})
}

// BenchmarkAblationNoWavefronts retires transactions individually
// instead of in GPU-style read groups, removing tail sensitivity.
func BenchmarkAblationNoWavefronts(b *testing.B) {
	ablation(b, func(c *Config) {
		tn := DefaultTuning()
		tn.WavefrontSize = 1
		c.Tuning = &tn
	})
}

// BenchmarkAblationIdealSwitch removes the cube switch's internal
// bandwidth limit (the crossbar contention point of Section 3.2).
func BenchmarkAblationIdealSwitch(b *testing.B) {
	ablation(b, func(c *Config) {
		tn := DefaultTuning()
		tn.SwitchBandwidthBps = 0
		c.Tuning = &tn
	})
}

// BenchmarkAblationSmallWindow quarters the host's MLP window,
// demonstrating the latency-throughput coupling the evaluation relies on.
func BenchmarkAblationSmallWindow(b *testing.B) {
	ablation(b, func(c *Config) {
		sys := DefaultSystem()
		sys.MaxOutstanding = 16
		c.System = &sys
	})
}

// BenchmarkAblationCoarseInterleave raises the port interleave from 256B
// to 1024B; the paper found large granularities hurt via network
// latency (§5).
func BenchmarkAblationCoarseInterleave(b *testing.B) {
	ablation(b, func(c *Config) {
		sys := DefaultSystem()
		sys.InterleaveBytes = 1024
		c.System = &sys
	})
}

// BenchmarkAblationSlowSerDes raises the per-hop SerDes latency from 2ns
// to 10ns; the paper reports 2ns is nearly free but 10ns is strongly
// felt (§5).
func BenchmarkAblationSlowSerDes(b *testing.B) {
	ablation(b, func(c *Config) {
		sys := DefaultSystem()
		sys.SerDesLatency = 10 * Nanosecond
		c.System = &sys
	})
}

// BenchmarkAblationMetaCubeGroup sweeps the MetaCube package size (the
// interposer-size tradeoff of §4.3), reporting the speedup of 8-cube
// packages over 2-cube packages.
func BenchmarkAblationMetaCubeGroup(b *testing.B) {
	run := func(group int) Results {
		tn := DefaultTuning()
		tn.MetaCubeGroup = group
		cfg := DefaultConfig()
		cfg.Topology = MetaCube
		cfg.Transactions = benchOptions().Transactions
		cfg.Tuning = &tn
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		small := run(2)
		big := run(8)
		b.ReportMetric((float64(small.FinishTime)/float64(big.FinishTime)-1)*100,
			"group8-vs-group2-%")
	}
}

// BenchmarkAblationWriteShortcut isolates the §5.3 hysteresis: the
// write-heavy BACKPROP on the skip list with plain distance arbitration
// (no shortcut) vs the augmented scheme (with it).
func BenchmarkAblationWriteShortcut(b *testing.B) {
	run := func(arb Arbitration) Results {
		cfg := DefaultConfig()
		cfg.Topology = SkipList
		cfg.Workload = "BACKPROP"
		cfg.Arbitration = arb
		cfg.Transactions = benchOptions().Transactions
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		plain := run(Distance)
		aug := run(DistanceAugmented)
		b.ReportMetric((float64(plain.FinishTime)/float64(aug.FinishTime)-1)*100,
			"shortcut-gain-%")
	}
}
