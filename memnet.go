// Package memnet is a discrete-event simulator for networks of 3D-stacked
// memory cubes, reproducing "There and Back Again: Optimizing the
// Interconnect in Networks of Memory Cubes" (Poremba et al., ISCA 2017).
//
// A memory network (MN) hangs a set of HMC-like memory cubes off each
// memory port of a host processor using high-speed point-to-point SerDes
// links. memnet models the full system — bank-level DRAM/PCM timing,
// vault controllers, cube switches with configurable arbitration, credit
// flow-controlled links with virtual channels, five network topologies
// (chain, ring, ternary tree, the paper's skip-list, and MetaCube
// clusters), DRAM:NVM capacity mixing with placement control, and a
// GPU-like host traffic model — and regenerates every table and figure
// of the paper's evaluation.
//
// # Quick start
//
//	cfg := memnet.DefaultConfig()
//	cfg.Topology = memnet.Tree
//	cfg.Workload = "KMEANS"
//	res, err := memnet.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.FinishTime, res.MeanLatency)
//
// Deeper control (custom workloads, tuning, per-component stats) is
// available through Build, which returns the live simulation Instance.
package memnet

import (
	"fmt"

	"memnet/internal/arb"
	"memnet/internal/campaign"
	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/migrate"
	"memnet/internal/obs"
	"memnet/internal/packet"
	"memnet/internal/scenario"
	"memnet/internal/sim"
	"memnet/internal/span"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Topology selects the memory-network topology.
type Topology = topology.Kind

// Topology kinds (Fig. 3, Fig. 8, Fig. 9 of the paper).
const (
	Chain    = topology.Chain
	Ring     = topology.Ring
	Tree     = topology.Tree
	SkipList = topology.SkipList
	MetaCube = topology.MetaCube
	// Mesh is an extension topology the paper excludes (its average hop
	// count is worse than a tree); included to verify that claim.
	Mesh = topology.Mesh
)

// Topologies lists all supported topologies.
var Topologies = topology.Kinds

// Arbitration selects the router arbitration policy.
type Arbitration = arb.Kind

// Arbitration policies (§3.2, §4.1, §5.3).
const (
	RoundRobin        = arb.RoundRobin
	Distance          = arb.Distance
	DistanceAugmented = arb.DistanceAugmented
)

// Placement positions NVM cubes in mixed networks.
type Placement = config.Placement

// Placements (the paper's -L / -F suffixes).
const (
	NVMLast  = config.NVMLast
	NVMFirst = config.NVMFirst
)

// Time re-exports the simulator's picosecond time type.
type Time = sim.Time

// Common durations.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// System is the hardware configuration (the paper's Table 2).
type System = config.System

// DefaultSystem returns the paper's evaluated system: 2TB over 8 ports,
// 16GB DRAM / 64GB NVM cubes, HBM-like and PCM-like timings.
func DefaultSystem() System { return config.Default() }

// WorkloadSpec is a synthetic workload proxy description.
type WorkloadSpec = workload.Spec

// Tx is one memory transaction of a workload trace.
type Tx = workload.Tx

// ReadTrace / WriteTrace serialize transaction traces in the memnet
// text format (see internal/workload).
var (
	ReadTraceFrom = workload.ReadTrace
	WriteTraceTo  = workload.WriteTrace
)

// Workloads returns the paper's eight workload proxies
// (BACKPROP, BIT, BUFF, DCT, HOTSPOT, KMEANS, MATRIXMUL, NW).
func Workloads() []WorkloadSpec { return workload.Suite() }

// WorkloadByName looks up one of the suite workloads.
func WorkloadByName(name string) (WorkloadSpec, error) { return workload.ByName(name) }

// Results summarizes a completed simulation.
type Results = core.Results

// Tuning exposes the microarchitectural constants that are not part of
// the paper's Table 2 (vault queue depths, switch bandwidth, wavefront
// grouping, the write-burst hysteresis watermarks, ...); see
// internal/core for field documentation. Used by the ablation benches.
type Tuning = core.Tuning

// DefaultTuning returns the standard tuning.
func DefaultTuning() Tuning { return core.DefaultTuning() }

// Instance is a built simulation exposing live components; see the
// internal/core documentation for details.
type Instance = core.Instance

// NodeID identifies a node within one port's network; the host is node
// 0 and cubes count up from 1 (used to address CubeKill targets).
type NodeID = packet.NodeID

// FaultConfig configures the deterministic fault-injection and
// recovery layer: a seeded per-link bit error rate (CRC-detected,
// absorbed by HMC-style retry buffers), scheduled lane failures
// (bandwidth down-binding), scheduled link and cube kills (routed
// around via recomputed tables), scheduled repairs that retrain links
// and route traffic back onto the healed paths, transient lane flaps,
// and a progress watchdog that fails wedged runs fast with a
// queue/credit diagnostic. The zero value (or a nil pointer) injects
// nothing and leaves the simulation bit-identical to a fault-free run.
type FaultConfig = fault.Config

// LinkKill / CubeKill / LaneFail schedule individual faults inside a
// FaultConfig; LinkRepair / CubeRepair / LaneFlap schedule the
// matching recoveries (validated against the kill timeline at Build).
type (
	LinkKill   = fault.LinkKill
	CubeKill   = fault.CubeKill
	LaneFail   = fault.LaneFail
	LinkRepair = fault.LinkRepair
	CubeRepair = fault.CubeRepair
	LaneFlap   = fault.LaneFlap
)

// ChaosSpec parameterizes GenerateChaos: how many seeded link kills,
// cube kills, and lane flaps to pack into the schedule horizon.
type ChaosSpec = fault.ChaosSpec

// GenerateChaos builds a validated random kill/repair/flap schedule
// for the configuration's topology: every killed link keeps the
// network connected while down, every kill is repaired within the
// horizon, and the whole schedule passes FaultConfig validation. The
// same Config and ChaosSpec always produce the same schedule.
func GenerateChaos(c Config, spec ChaosSpec) (*FaultConfig, error) {
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	var g *topology.Graph
	if p.Scenario != nil {
		// Chaos schedules address edges of the declared graph; build it
		// from a clone so the caller's spec is not normalized in place.
		g, err = topology.BuildScenario(p.Scenario.Clone())
	} else {
		var techs []config.MemTech
		techs, err = core.TechOrder(&p.Sys)
		if err != nil {
			return nil, err
		}
		group := p.Tuning.MetaCubeGroup
		if group == 0 {
			group = core.DefaultTuning().MetaCubeGroup
		}
		g, err = topology.Build(p.Topo, techs, topology.WithMetaCubeGroup(group))
	}
	if err != nil {
		return nil, err
	}
	fc, err := fault.Chaos(g, spec)
	if err != nil {
		return nil, err
	}
	return &fc, nil
}

// FaultCounters aggregates the resilience layer's whole-run counters
// (Results.Fault); all-zero when fault injection is disabled.
type FaultCounters = stats.FaultCounters

// TelemetryConfig enables the sim-time telemetry layer (internal/obs):
// a metrics registry over routers, links, vaults, and the host, an
// interval sampler snapshotting gauges every SampleInterval of sim
// time, and the exporters behind Instance.Telemetry / Instance.Manifest
// (run-manifest JSON, Perfetto trace, CSV time series). Telemetry never
// perturbs the simulation: Results are bit-identical with it on or off.
type TelemetryConfig = obs.Config

// RunManifest is the machine-readable record of one run; see
// Instance.Manifest.
type RunManifest = obs.Manifest

// SpanConfig enables deterministic causal span tracing (internal/span):
// every SampleStride-th transaction records a span tree decomposing its
// end-to-end latency into host window wait, per-hop queue/retry/
// serialization/SerDes and arbitration waits, and vault queue + service
// time. Spans never perturb the simulation — Results are bit-identical
// with tracing on or off — and are exported with Instance.WriteSpans
// (NDJSON, schema memnet/spans/v1) or WritePerfettoSpans; cmd/mntrace
// analyzes the NDJSON into latency waterfalls and per-edge blame.
type SpanConfig = span.Config

// WritePerfetto exports packet lifecycles (Instance.Trace) and sampled
// gauge series as Chrome/Perfetto trace-event JSON.
var WritePerfetto = obs.WritePerfetto

// WritePerfettoSpans is WritePerfetto plus sampled causal spans as
// nested per-transaction slices linked by flow arrows.
var WritePerfettoSpans = obs.WritePerfettoSpans

// ValidateManifestJSON checks a serialized manifest against the
// embedded run-manifest schema.
var ValidateManifestJSON = obs.ValidateManifestJSON

// Scenario is a declarative component-graph specification: a JSON
// document (format memnet/scenario/v1) naming every cube, every link
// (with optional per-link bandwidth/SerDes/buffer/VC/retry overrides),
// per-router arbitration, the host attachment point, and optional
// workload and fault blocks. It expresses irregular networks no
// built-in Topology covers, and every built-in topology can be
// exported to one (ExportScenario) that simulates bit-identically.
// See SCENARIOS.md for the format reference.
type Scenario = scenario.Spec

// ScenarioSchema is the format identifier every scenario document must
// carry in its "schema" field.
const ScenarioSchema = scenario.Schema

// ScenarioSchemaJSON returns the embedded JSON schema documents are
// validated against (also the source of SCENARIOS.md's generated
// reference).
func ScenarioSchemaJSON() []byte { return scenario.SchemaJSON() }

// DecodeScenario parses, validates, and normalizes a scenario document.
// LoadScenario and LoadScenarioFile read one from a stream or a path.
var (
	DecodeScenario   = scenario.Decode
	LoadScenario     = scenario.Load
	LoadScenarioFile = scenario.LoadFile
)

// ExportScenario renders the configuration's compiled-in topology as a
// scenario document that simulates bit-identically to the original
// Config (node names host/c1/c2/..., declaration order = build order).
// Configs that already carry a Scenario are rejected.
func ExportScenario(c Config, name string) (*Scenario, error) {
	if c.Scenario != nil {
		return nil, fmt.Errorf("memnet: ExportScenario of a scenario-backed config")
	}
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	techs, err := core.TechOrder(&p.Sys)
	if err != nil {
		return nil, err
	}
	group := p.Tuning.MetaCubeGroup
	if group == 0 {
		group = core.DefaultTuning().MetaCubeGroup
	}
	g, err := topology.Build(p.Topo, techs, topology.WithMetaCubeGroup(group))
	if err != nil {
		return nil, err
	}
	return topology.ExportScenario(g, name), nil
}

// MigrationPolicy tunes the optional hot-block migration manager — the
// heterogeneous-memory management layer mixed DRAM:NVM networks rely on
// (paper §2.4).
type MigrationPolicy = migrate.Config

// DefaultMigration returns a reasonable migration policy.
func DefaultMigration() MigrationPolicy { return migrate.DefaultConfig() }

// Config specifies one simulation run through the public API.
type Config struct {
	// System is the hardware platform; zero value means DefaultSystem.
	System *System
	// Topology of each port's memory network; ignored when Scenario is
	// set (the scenario declares the graph).
	Topology Topology
	// Scenario, when non-nil, declares the component graph directly
	// instead of Topology (see LoadScenarioFile). Its workload block
	// applies unless Workload or Custom is set; its fault block applies
	// unless Fault is set.
	Scenario *Scenario
	// DRAMFraction of total capacity (1.0 = all DRAM); the paper labels
	// configurations by this percentage.
	DRAMFraction float64
	// Placement of NVM cubes when 0 < DRAMFraction < 1.
	Placement Placement
	// Arbitration policy in every cube router.
	Arbitration Arbitration
	// Workload is a suite name (see Workloads); Custom overrides it.
	Workload string
	// Custom, if non-nil, is used instead of Workload.
	Custom *WorkloadSpec
	// Transactions to complete (default 20000).
	Transactions uint64
	// Seed for the deterministic workload stream (default 1).
	Seed uint64
	// KeepSamples retains per-transaction latencies for percentiles.
	KeepSamples bool
	// FailLinks fails the listed topology edges before the run (RAS
	// experiment); building fails if the network would disconnect.
	FailLinks []int
	// Fault, when non-nil and non-zero, enables mid-run fault injection
	// (link errors with retry, lane degradation, link/cube kills) and
	// the progress watchdog.
	Fault *FaultConfig
	// Migration, when non-nil, enables epoch-based hot-block migration
	// between NVM and DRAM cubes.
	Migration *MigrationPolicy
	// ReplayTrace drives the run from a recorded transaction trace
	// instead of the synthetic generator.
	ReplayTrace []Tx
	// Record captures the generated trace (Instance.Recorder).
	Record bool
	// TraceDepth, when positive, records the last N packet lifecycle
	// events (Instance.Trace) for debugging.
	TraceDepth int
	// Telemetry, when non-nil and enabled, arms the metrics registry and
	// interval sampler (Instance.Telemetry).
	Telemetry *TelemetryConfig
	// Spans, when non-nil, arms causal span tracing (Instance.Spans /
	// Instance.WriteSpans); see SpanConfig.
	Spans *SpanConfig
	// Tuning overrides the microarchitectural tuning (nil = defaults).
	Tuning *Tuning
	// Shards sets the worker-goroutine count for RunMachine's
	// partitioned engine (clamped to [1, System.Ports]). Results are
	// bit-identical at every value; 1 is the sequential fallback. Run
	// and Build ignore it — a single port's network is one partition.
	Shards int
}

// DefaultConfig returns an all-DRAM tree network running KMEANS.
func DefaultConfig() Config {
	return Config{
		Topology:     Tree,
		DRAMFraction: 1.0,
		Placement:    NVMLast,
		Arbitration:  RoundRobin,
		Workload:     "KMEANS",
		Transactions: 20000,
		Seed:         1,
	}
}

// params converts the public Config into internal core parameters.
func (c Config) params() (core.Params, error) {
	sys := config.Default()
	if c.System != nil {
		sys = *c.System
	}
	sys.DRAMFraction = c.DRAMFraction
	sys.Placement = c.Placement

	var spec workload.Spec
	switch {
	case c.Custom != nil:
		spec = *c.Custom
	case c.Workload != "":
		s, err := workload.ByName(c.Workload)
		if err != nil {
			return core.Params{}, err
		}
		spec = s
	case c.Scenario != nil && c.Scenario.Workload != nil:
		s, _, err := c.Scenario.WorkloadSpec()
		if err != nil {
			return core.Params{}, err
		}
		spec = s
	case len(c.ReplayTrace) > 0:
		spec = workload.Spec{Name: "replay", MeanGap: Nanosecond}
	default:
		return core.Params{}, fmt.Errorf("memnet: no workload specified")
	}

	txns := c.Transactions
	if txns == 0 {
		txns = 20000
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	p := core.Params{
		Sys:          sys,
		Topo:         c.Topology,
		Arb:          c.Arbitration,
		Workload:     spec,
		Transactions: txns,
		Seed:         seed,
		KeepSamples:  c.KeepSamples,
	}
	if c.Scenario != nil {
		p.Scenario = c.Scenario
		kind, err := topology.ScenarioKind(c.Scenario)
		if err != nil {
			return core.Params{}, err
		}
		p.Topo = kind
	}
	p.FailLinks = c.FailLinks
	p.Fault = c.Fault
	if p.Fault == nil && c.Scenario != nil && c.Scenario.Fault != nil {
		fc, err := core.ScenarioFault(c.Scenario)
		if err != nil {
			return core.Params{}, err
		}
		p.Fault = fc
	}
	p.Migration = c.Migration
	p.Replay = c.ReplayTrace
	p.Record = c.Record
	p.TraceDepth = c.TraceDepth
	p.Obs = c.Telemetry
	p.Spans = c.Spans
	if c.Tuning != nil {
		p.Tuning = *c.Tuning
	}
	return p, nil
}

// Build constructs a simulation instance without running it, exposing
// the engine and components for instrumentation.
func Build(c Config) (*Instance, error) {
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	return core.Build(p)
}

// Run builds and executes the simulation to completion.
func Run(c Config) (Results, error) {
	p, err := c.params()
	if err != nil {
		return Results{}, err
	}
	return core.Simulate(p)
}

// MachineResults aggregates a whole-machine run; see core.MachineResults.
type MachineResults = core.MachineResults

// MachineManifest assembles the run manifest for a whole-machine run,
// including the parallel-engine introspection record.
func MachineManifest(c Config, mr MachineResults) (*RunManifest, error) {
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	return core.MachineManifest(core.MachineParams{Base: p, Shards: c.Shards}, mr), nil
}

// RunMachine simulates the whole machine — one memory network per host
// port (System.Ports of them, the paper's §2.3 partitioning) — on the
// partitioned parallel engine, using Config.Shards worker goroutines.
// Per-port workload seeds are derived from Config.Seed (port 0 keeps
// it, so PerPort[0] equals Run of the same Config). Results are
// bit-identical for every Shards value. Record, TraceDepth, Telemetry,
// and Spans are rejected: their outputs have no defined cross-port
// merge yet. MachineResults carries the parallel engine's introspection
// record (per-shard load, barrier waits, lookahead-slack histograms);
// MachineManifest serializes it.
func RunMachine(c Config) (MachineResults, error) {
	p, err := c.params()
	if err != nil {
		return MachineResults{}, err
	}
	return core.RunMachine(core.MachineParams{Base: p, Shards: c.Shards})
}

// RunCached is Run backed by the persistent content-addressed result
// cache rooted at cacheDir (created if missing, shared with mnexp
// -cache). A run whose fingerprint is already stored is returned
// without simulating (cached=true); otherwise it simulates and writes
// the result back. Runs that produce side artifacts (trace replay or
// recording, packet tracing, telemetry) bypass the cache, as does an
// empty cacheDir.
func RunCached(c Config, cacheDir string) (res Results, cached bool, err error) {
	p, err := c.params()
	if err != nil {
		return Results{}, false, err
	}
	if cacheDir == "" || !campaign.Cacheable(p) {
		res, err = core.Simulate(p)
		return res, false, err
	}
	store, err := campaign.Open(cacheDir)
	if err != nil {
		return Results{}, false, err
	}
	fp := campaign.FingerprintParams(p)
	if res, ok := store.Get(fp); ok {
		return res, true, nil
	}
	res, err = core.Simulate(p)
	if err != nil {
		return Results{}, false, err
	}
	if err := store.Put(fp, campaign.KeyOf(p), res); err != nil {
		return Results{}, false, err
	}
	return res, false, nil
}

// Speedup runs two configurations and returns a's speedup over b
// (b.FinishTime/a.FinishTime - 1), the paper's comparison metric.
func Speedup(a, b Config) (float64, error) {
	ra, err := Run(a)
	if err != nil {
		return 0, err
	}
	rb, err := Run(b)
	if err != nil {
		return 0, err
	}
	return float64(rb.FinishTime)/float64(ra.FinishTime) - 1, nil
}
