package main

import (
	"reflect"
	"testing"

	"memnet"
)

// run loads one embedded cookbook document and runs it.
func run(t *testing.T, name string) memnet.Results {
	t.Helper()
	raw, err := docs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := memnet.DecodeScenario(raw)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	cfg := memnet.DefaultConfig()
	cfg.Scenario = spec
	if spec.Workload != nil {
		cfg.Workload = ""
	}
	cfg.Transactions = 800
	res, err := memnet.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// TestCookbookDocsRun keeps every document in the cookbook loadable,
// buildable, and deterministic through the public API.
func TestCookbookDocsRun(t *testing.T) {
	for _, name := range []string{"skiplist16.json", "twopod.json", "hetero.json"} {
		res := run(t, name)
		if res.FinishTime <= 0 || res.Transactions != 800 {
			t.Errorf("%s: finish %v, transactions %d", name, res.FinishTime, res.Transactions)
		}
		if again := run(t, name); !reflect.DeepEqual(res, again) {
			t.Errorf("%s: results differ across identical runs", name)
		}
	}
}

// TestCookbookDocLabels pins what each document demonstrates: the
// export keeps the built-in run label, free-form graphs run under the
// scenario name, and the embedded workload block drives hetero.
func TestCookbookDocLabels(t *testing.T) {
	if res := run(t, "skiplist16.json"); res.Label != "100%-SL" || res.Workload != "KMEANS" {
		t.Errorf("skiplist16: label %q workload %q", res.Label, res.Workload)
	}
	if res := run(t, "twopod.json"); res.Label != "two-pod" {
		t.Errorf("twopod: label %q", res.Label)
	}
	if res := run(t, "hetero.json"); res.Label != "hetero-tree" || res.Workload != "custom" {
		t.Errorf("hetero: label %q workload %q", res.Label, res.Workload)
	}
}
