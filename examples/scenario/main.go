// Scenario cookbook: run every declarative scenario document in this
// directory through the public API and print its headline numbers.
//
// The three documents show the range of the format (see SCENARIOS.md):
//
//   - skiplist16.json — a built-in topology (the paper's skip-list) as
//     an explicit graph, produced by `mntopo -topology skiplist -export`.
//     Running it is byte-identical to `mnsim -topology skiplist`.
//   - twopod.json — an irregular graph no generator produces: two
//     4-cube rings bridged by a fifth cube, host on one pod.
//   - hetero.json — mixed DRAM/NVM placement by name, slower narrower
//     links to the NVM cubes, distance arbitration on the near routers,
//     and an embedded read-heavy workload block.
package main

import (
	"embed"
	"fmt"
	"log"
	"sort"

	"memnet"
)

//go:embed skiplist16.json twopod.json hetero.json
var docs embed.FS

func main() {
	names, err := docs.ReadDir(".")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })

	fmt.Println("Declarative scenario cookbook (KMEANS unless the document embeds a workload)")
	fmt.Println()
	for _, e := range names {
		raw, err := docs.ReadFile(e.Name())
		if err != nil {
			log.Fatal(err)
		}
		spec, err := memnet.DecodeScenario(raw)
		if err != nil {
			log.Fatal(err)
		}

		cfg := memnet.DefaultConfig()
		cfg.Scenario = spec
		if spec.Workload != nil {
			cfg.Workload = "" // let the document's embedded block drive
		}
		cfg.Transactions = 5000
		res, err := memnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-12s workload %-10s finish %8v   mean latency %7v   hops %.2f\n",
			e.Name(), res.Label, res.Workload, res.FinishTime, res.MeanLatency, res.MeanHops)
	}
}
