// Skiplist demonstrates the paper's §4.2/§5.3 contributions: the
// skip-list topology with read/write differentiated routing, and the
// augmented distance-based arbitration whose write-burst hysteresis lets
// a write-heavy phase reclaim the skip links.
//
// It runs the write-heavy BACKPROP proxy on the tree and on the
// skip-list with both arbitration schemes, showing that the naive
// skip-list loses ground on write bursts and the augmented scheme
// recovers it — the paper's Fig. 11 -> Fig. 12 story.
package main

import (
	"fmt"
	"log"

	"memnet"
)

func main() {
	fmt.Println("Skip-list routing and write-burst hysteresis, BACKPROP proxy")
	fmt.Println()

	base := memnet.DefaultConfig()
	base.Workload = "BACKPROP"
	base.Transactions = 10000

	run := func(topo memnet.Topology, arb memnet.Arbitration) memnet.Results {
		cfg := base
		cfg.Topology = topo
		cfg.Arbitration = arb
		res, err := memnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	tree := run(memnet.Tree, memnet.RoundRobin)
	slRR := run(memnet.SkipList, memnet.RoundRobin)
	slAug := run(memnet.SkipList, memnet.DistanceAugmented)

	rel := func(r memnet.Results) float64 {
		return (float64(tree.FinishTime)/float64(r.FinishTime) - 1) * 100
	}
	fmt.Printf("tree, round-robin            finish=%-9v (reference)\n", tree.FinishTime)
	fmt.Printf("skip-list, round-robin       finish=%-9v %+.1f%% vs tree\n",
		slRR.FinishTime, rel(slRR))
	fmt.Printf("skip-list, augmented arb     finish=%-9v %+.1f%% vs tree\n",
		slAug.FinishTime, rel(slAug))

	fmt.Println()
	fmt.Println("With plain round-robin, BACKPROP's write bursts crawl down")
	fmt.Println("the skip-list's central chain and dependent reads stall on")
	fmt.Println("their acknowledgments. The augmented scheme's hysteresis")
	fmt.Println("monitor detects the bursts at the system port and re-admits")
	fmt.Println("writes to the skip links, recovering the loss (paper §5.3).")
}
