// Quickstart: build the paper's baseline system (2TB across 8 ports,
// all-DRAM cubes), compare the three baseline topologies on one
// workload, and print the speedups over the chain — a miniature of the
// paper's Fig. 4.
package main

import (
	"fmt"
	"log"

	"memnet"
)

func main() {
	base := memnet.DefaultConfig()
	base.Workload = "KMEANS"
	base.Transactions = 10000

	fmt.Println("Memory-network topology comparison, 100% DRAM, KMEANS proxy")
	fmt.Println()

	var chainTime memnet.Time
	for _, topo := range []memnet.Topology{memnet.Chain, memnet.Ring, memnet.Tree} {
		cfg := base
		cfg.Topology = topo
		res, err := memnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if topo == memnet.Chain {
			chainTime = res.FinishTime
		}
		speedup := float64(chainTime)/float64(res.FinishTime) - 1
		fmt.Printf("%-6v finish=%-9v meanLat=%-8v hops=%.2f  speedup over chain %+5.1f%%\n",
			topo, res.FinishTime, res.MeanLatency, res.MeanHops, speedup*100)
		fmt.Printf("       latency: %v to memory, %v in memory, %v back\n",
			res.Breakdown.ToMem, res.Breakdown.InMem, res.Breakdown.FromMem)
	}

	fmt.Println()
	fmt.Println("The tree wins because its worst-case hop count grows")
	fmt.Println("logarithmically with network size; most of a request's")
	fmt.Println("latency is interconnect, not memory array (paper §3.2).")
}
