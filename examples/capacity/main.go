// Capacity contrasts the two scaling paths of the paper's introduction:
// a conventional multi-drop DDR4 channel, whose bus clock falls as DIMMs
// are added (Table 1), versus a memory-cube network, whose point-to-point
// links keep their speed as cubes are chained — at the price of hop
// latency, which topology then controls.
package main

import (
	"fmt"
	"log"

	"memnet"
	"memnet/internal/ddr"
	"memnet/internal/workload"
)

func main() {
	fmt.Println("Scaling memory capacity: DDR4 channel vs memory network")
	fmt.Println()
	fmt.Println("DDR4 channel (64GB RDIMMs), Table 1 bus speeds,")
	fmt.Println("and measured behavior under a 4ns-gap BUFF-like stream:")
	spec, err := memnet.WorkloadByName("BUFF")
	if err != nil {
		log.Fatal(err)
	}
	spec.MeanGap = 4 * memnet.Nanosecond
	for _, pt := range ddr.Frontier(ddr.DDR4, 64<<30) {
		cs, err := ddr.NewChannelSim(ddr.Channel{
			Gen: ddr.DDR4, DPC: pt.DPC, DIMMCapacity: 64 << 30,
		}, 16)
		if err != nil {
			log.Fatal(err)
		}
		res := cs.RunTrace(workload.New(spec, uint64(pt.CapacityBytes), 1), 20000)
		fmt.Printf("  %d DIMM/ch: %4d MT/s %5.1f GB/s %4d GB | meanLat=%-8v bus=%3.0f%%\n",
			pt.DPC, pt.SpeedMTs, pt.BandwidthGBs, pt.CapacityBytes>>30,
			res.MeanLatency, res.BusUtilization*100)
	}

	fmt.Println()
	fmt.Println("Memory network (per port, 16GB DRAM cubes, tree topology):")
	sys := memnet.DefaultSystem()
	fmt.Printf("  link: %d lanes x %.0f Gbps = %.1f GB/s per direction, any cube count\n",
		sys.LinkLanes, float64(sys.LaneRateBps)/1e9,
		float64(sys.LinkBandwidthBps())/8e9)

	for _, capTB := range []int{1, 2} {
		s := memnet.DefaultSystem()
		s.TotalCapacity = uint64(capTB) << 40
		cfg := memnet.DefaultConfig()
		cfg.System = &s
		cfg.Workload = "BUFF"
		cfg.Transactions = 8000
		res, err := memnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		perPort := int(s.PortCapacity() >> 30)
		fmt.Printf("  %dTB system (%3d GB/port, %2d cubes/port): meanLat=%v finish=%v\n",
			capTB, perPort, perPort/16, res.MeanLatency, res.FinishTime)
	}

	fmt.Println()
	fmt.Println("The DDR channel tops out at 3 DIMMs and loses bus speed on")
	fmt.Println("the way; the cube network scales capacity at full link rate,")
	fmt.Println("paying only hops — which Figs. 4-12 show how to minimize.")
}
