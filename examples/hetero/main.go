// Hetero sweeps the DRAM:NVM capacity mix of a tree-topology memory
// network (the paper's §3.3 / Fig. 7 experiment): denser-but-slower NVM
// cubes shrink the network, trading interconnect latency against memory
// array latency, with placement (-L / -F) controlling where the NVM
// cubes sit.
package main

import (
	"fmt"
	"log"

	"memnet"
)

func main() {
	fmt.Println("DRAM:NVM mix sweep, tree topology, MATRIXMUL proxy")
	fmt.Println("(speedups relative to the all-DRAM chain, as in Fig. 7)")
	fmt.Println()

	base := memnet.DefaultConfig()
	base.Workload = "MATRIXMUL"
	base.Transactions = 10000

	chain := base
	chain.Topology = memnet.Chain
	chainRes, err := memnet.Run(chain)
	if err != nil {
		log.Fatal(err)
	}

	type mix struct {
		frac  float64
		place memnet.Placement
		label string
	}
	for _, m := range []mix{
		{1.0, memnet.NVMLast, "100% DRAM        (16 cubes)"},
		{0.5, memnet.NVMLast, "50% DRAM, NVM-L  (10 cubes)"},
		{0.5, memnet.NVMFirst, "50% DRAM, NVM-F  (10 cubes)"},
		{0.0, memnet.NVMLast, "  0% DRAM        ( 4 cubes)"},
	} {
		cfg := base
		cfg.Topology = memnet.Tree
		cfg.DRAMFraction = m.frac
		cfg.Placement = m.place
		res, err := memnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(chainRes.FinishTime)/float64(res.FinishTime) - 1
		fmt.Printf("%s  speedup %+6.1f%%  meanLat=%-8v energy(write)=%.1fuJ\n",
			m.label, speedup*100, res.MeanLatency, res.Energy.WritePJ/1e6)
	}

	fmt.Println()
	fmt.Println("Some NVM shrinks the network and keeps most of the tree's")
	fmt.Println("win; all-NVM gives the smallest network but pays the PCM")
	fmt.Println("array latency on every access and 10x energy on writes.")
}
