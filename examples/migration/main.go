// Migration demonstrates the heterogeneous-memory management layer the
// paper's mixed DRAM:NVM networks rely on (§2.4): an epoch-based
// hot-block migrator that moves frequently-accessed NVM-resident blocks
// to DRAM through an indirection table. On a workload with a hot region
// (HOTSPOT), migration steers the hot set away from the slow cubes.
package main

import (
	"fmt"
	"log"

	"memnet"
)

func main() {
	fmt.Println("Hot-block migration on a 50% DRAM / 50% NVM tree")
	fmt.Println("(kernel with a 128KB resident hot set, 65% of accesses)")
	fmt.Println()

	// A workload whose hot set is small enough to be migratable: 65% of
	// accesses hammer a 2MB region (about 8000 interleave blocks); the
	// rest stream across the full 256GB port slice.
	hot := memnet.WorkloadSpec{
		Name:         "HOTSET",
		ReadFraction: 0.7,
		MeanGap:      3 * memnet.Nanosecond,
		SeqProb:      0.30,
		SeqStride:    64,
		HotFraction:  0.65,
		HotRegion:    0.125 / (256 * 1024), // 128KB of the 256GB slice
	}

	base := memnet.DefaultConfig()
	base.Topology = memnet.Tree
	base.DRAMFraction = 0.5
	base.Placement = memnet.NVMLast
	base.Custom = &hot
	base.Transactions = 30000

	run := func(mc *memnet.MigrationPolicy) (memnet.Results, *memnet.Instance) {
		cfg := base
		cfg.Migration = mc
		inst, err := memnet.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := inst.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res, inst
	}

	off, _ := run(nil)
	mc := memnet.DefaultMigration()
	mc.Epoch = 10 * memnet.Microsecond
	mc.HotThreshold = 2
	mc.MaxSwapsPerEpoch = 128
	on, inst := run(&mc)

	fmt.Printf("without migration  finish=%-9v meanLat=%v\n", off.FinishTime, off.MeanLatency)
	fmt.Printf("with migration     finish=%-9v meanLat=%v\n", on.FinishTime, on.MeanLatency)
	speedup := (float64(off.FinishTime)/float64(on.FinishTime) - 1) * 100
	latGain := (float64(off.MeanLatency)/float64(on.MeanLatency) - 1) * 100
	st := inst.Migrator.Stats()
	fmt.Printf("speedup            %+.1f%% execution, %+.1f%% mean latency\n", speedup, latGain)
	fmt.Printf("migration activity %d epochs, %d swaps, %d remapped blocks\n",
		st.Epochs, st.Swaps, inst.Migrator.RemapSize())

	fmt.Println()
	fmt.Println()
	fmt.Println("The manager profiles accesses per epoch, swaps hot")
	fmt.Println("NVM-resident blocks with cold DRAM blocks (paying copy")
	fmt.Println("energy and a short blackout), and the hot region's reads")
	fmt.Println("stop paying the PCM array latency.")
}
