package memnet

import (
	"fmt"
	"runtime"
	"sync"

	"memnet/internal/sim"
)

// SystemResults aggregates a whole-system run: one simulation per host
// memory port, each serving its own disjoint, identically-distributed
// slice of the interleaved address space (paper §2.3).
type SystemResults struct {
	// PerPort holds each port's results in port order.
	PerPort []Results
	// FinishTime is the slowest port's completion (the system finishes
	// when its last port does).
	FinishTime Time
	// MeanLatency is the transaction-weighted average latency.
	MeanLatency Time
	// TotalEnergyPJ sums all ports' dynamic energy.
	TotalEnergyPJ float64
	// Spread is the relative finish-time spread across ports
	// (max/min - 1) — small values confirm the disjoint-port symmetry
	// assumption the paper builds on.
	Spread float64
}

// RunSystem simulates every memory port of the configured system
// concurrently (each port gets a decorrelated seed) and aggregates the
// results. Because ports are disjoint, this is exact, not an
// approximation — it exists to expose whole-system numbers and to
// verify the per-port symmetry that justifies single-port studies.
func RunSystem(c Config) (SystemResults, error) {
	sys := DefaultSystem()
	if c.System != nil {
		sys = *c.System
	}
	ports := sys.Ports
	if ports <= 0 {
		return SystemResults{}, fmt.Errorf("memnet: non-positive port count")
	}
	baseSeed := c.Seed
	if baseSeed == 0 {
		baseSeed = 1
	}

	results := make([]Results, ports)
	errs := make([]error, ports)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for port := 0; port < ports; port++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pc := c
			// Decorrelate the ports' traffic: same workload character,
			// different streams (the global interleave hands each port a
			// different slice of the access stream).
			pc.Seed = baseSeed + uint64(port)*0x9e3779b97f4a7c15
			results[port], errs[port] = Run(pc)
		}(port)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return SystemResults{}, err
		}
	}

	out := SystemResults{PerPort: results}
	var latSum sim.Time
	var txns uint64
	minFin, maxFin := results[0].FinishTime, results[0].FinishTime
	for _, r := range results {
		if r.FinishTime > out.FinishTime {
			out.FinishTime = r.FinishTime
		}
		if r.FinishTime < minFin {
			minFin = r.FinishTime
		}
		if r.FinishTime > maxFin {
			maxFin = r.FinishTime
		}
		latSum += r.MeanLatency * sim.Time(r.Transactions)
		txns += r.Transactions
		out.TotalEnergyPJ += r.Energy.TotalPJ()
	}
	if txns > 0 {
		out.MeanLatency = latSum / sim.Time(txns)
	}
	if minFin > 0 {
		out.Spread = float64(maxFin)/float64(minFin) - 1
	}
	return out, nil
}
