package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"memnet/internal/core"
	"memnet/internal/experiments"
	"memnet/internal/sim"
)

// Unit is one cell of the campaign grid: a complete, self-contained
// simulation configuration and its content address.
type Unit struct {
	// FP is the unit's fingerprint (the cache address).
	FP Fingerprint
	// Key is the human-readable summary of Params.
	Key Key
	// Params fully determines the run.
	Params core.Params
}

// Grid enumerates every simulation the full figure/table campaign would
// execute for the given options and base system, deduplicated by
// fingerprint and sorted by fingerprint for a deterministic order.
//
// The enumeration is a dry run of every experiment harness: a recording
// SimFunc is installed in a Runner and all Figures are executed against
// fabricated results, so the grid is — by construction, not by a
// parallel hand-maintained list — exactly the set of runs the real
// harnesses would request. Fabricated results use FinishTime=1 so the
// harnesses' speedup arithmetic stays finite; the resulting tables are
// discarded.
func Grid(opts experiments.Options) ([]Unit, error) {
	rec := &recorder{seen: make(map[Fingerprint]bool)}
	// One worker: the recorder serializes anyway, and the fabricated
	// runs cost nothing.
	opts.Parallel = 1
	r := experiments.NewRunner(opts)
	r.Sim = rec.record
	for _, f := range r.Figures() {
		if _, err := f.Fn(); err != nil {
			return nil, fmt.Errorf("campaign: enumerating %s: %w", f.ID, err)
		}
	}
	sort.Slice(rec.units, func(i, j int) bool { return rec.units[i].FP < rec.units[j].FP })
	return rec.units, nil
}

// recorder is the grid-enumeration SimFunc: it fingerprints every
// requested run, records first sightings, and fabricates a minimal
// plausible result instead of simulating.
type recorder struct {
	mu    sync.Mutex
	seen  map[Fingerprint]bool
	units []Unit
}

// record implements experiments.SimFunc for enumeration.
func (r *recorder) record(p core.Params) (core.Results, error) {
	fp := FingerprintParams(p)
	r.mu.Lock()
	if !r.seen[fp] {
		r.seen[fp] = true
		r.units = append(r.units, Unit{FP: fp, Key: KeyOf(p), Params: p})
	}
	r.mu.Unlock()
	// Non-zero FinishTime and Energy keep speedup ratios and energy
	// normalizations finite during the dry run.
	return core.Results{
		Label:        p.Label(),
		Workload:     p.Workload.Name,
		FinishTime:   sim.Time(1),
		Transactions: p.Transactions,
	}, nil
}

// Shard selects partition k of n (1-based k) of the campaign grid.
// The zero value means "the whole grid" (1 of 1).
type Shard struct {
	// K is the 1-based shard index.
	K int
	// N is the shard count.
	N int
}

// ParseShard parses the mnexp -shard syntax "k/n".
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.K, &sh.N); err != nil {
		return Shard{}, fmt.Errorf("campaign: -shard wants k/n, got %q", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks 1 <= K <= N.
func (s Shard) Validate() error {
	if s.N < 1 || s.K < 1 || s.K > s.N {
		return fmt.Errorf("campaign: invalid shard %d/%d (want 1 <= k <= n)", s.K, s.N)
	}
	return nil
}

// String renders the shard as "k/n".
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// Select returns this shard's subset of the grid: units at positions
// k-1, k-1+n, k-1+2n, ... of the fingerprint-sorted grid. The stride
// interleaves expensive neighborhoods (e.g. the doubled-trace Fig. 13
// runs) across shards instead of handing one shard a contiguous block
// of them. Over k=1..n the selections partition the grid exactly.
func (s Shard) Select(grid []Unit) []Unit {
	if s.N <= 1 {
		return grid
	}
	var out []Unit
	for i := s.K - 1; i < len(grid); i += s.N {
		out = append(out, grid[i])
	}
	return out
}

// Counter tallies cache traffic through a CachedSim hook. Safe for
// concurrent use; a nil *Counter is a valid no-op sink.
type Counter struct {
	hits, misses atomic.Uint64
}

// Hits returns how many runs were served from the cache.
func (c *Counter) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns how many runs were actually simulated.
func (c *Counter) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// hit and miss record one outcome each (nil-safe).
func (c *Counter) hit() {
	if c != nil {
		c.hits.Add(1)
	}
}
func (c *Counter) miss() {
	if c != nil {
		c.misses.Add(1)
	}
}

// CachedSim wraps a simulation backend with the persistent store: a
// cacheable run whose fingerprint is present is served from disk
// without simulating; a miss simulates through next (core.Simulate when
// nil) and writes the result back. Uncacheable runs pass straight
// through. The counter, when non-nil, observes hits and misses — the
// run-count hook the warm-cache regression test asserts on.
func CachedSim(store *Store, next experiments.SimFunc, c *Counter) experiments.SimFunc {
	if next == nil {
		next = core.Simulate
	}
	return func(p core.Params) (core.Results, error) {
		if !Cacheable(p) {
			c.miss()
			return next(p)
		}
		fp := FingerprintParams(p)
		if res, ok := store.Get(fp); ok {
			c.hit()
			return res, nil
		}
		c.miss()
		res, err := next(p)
		if err != nil {
			return core.Results{}, err
		}
		if err := store.Put(fp, KeyOf(p), res); err != nil {
			return core.Results{}, err
		}
		return res, nil
	}
}

// Progress reports one shard-execution step. Done counts finished units
// (hits and simulations both); Total is the shard size.
type Progress struct {
	// Done counts completed units so far.
	Done int
	// Total is the number of units in this shard.
	Total int
	// Hit marks whether the unit was served from the cache.
	Hit bool
	// Key identifies the unit just finished.
	Key Key
}

// RunStats summarizes a RunShard execution.
type RunStats struct {
	// GridSize is the full campaign grid size.
	GridSize int
	// ShardSize is the number of units this shard owns.
	ShardSize int
	// Hits counts units already present in the cache (the resume case).
	Hits int
	// Simulated counts units actually executed.
	Simulated int
}

// RunShard executes this campaign shard: it enumerates the grid,
// selects the shard's partition, and runs every unit not already in the
// store through a worker pool, writing each result to the store as it
// completes. Already-cached units are skipped (this is what makes an
// interrupted campaign resumable: re-running a shard only simulates
// what is missing). The first simulation error aborts dispatch and is
// returned — including watchdog trips, which arrive as ordinary errors
// from core.Simulate with the wedge diagnosis attached.
//
// progress, when non-nil, is called after every unit from the merging
// goroutine (never concurrently).
func RunShard(opts experiments.Options, store *Store, shard Shard, progress func(Progress)) (RunStats, error) {
	if (shard == Shard{}) {
		shard = Shard{K: 1, N: 1}
	}
	if err := shard.Validate(); err != nil {
		return RunStats{}, err
	}
	grid, err := Grid(opts)
	if err != nil {
		return RunStats{}, err
	}
	units := shard.Select(grid)
	stats := RunStats{GridSize: len(grid), ShardSize: len(units)}

	var todo []Unit
	for _, u := range units {
		if _, ok := store.Get(u.FP); ok {
			stats.Hits++
			if progress != nil {
				progress(Progress{Done: stats.Hits, Total: len(units), Hit: true, Key: u.Key})
			}
			continue
		}
		todo = append(todo, u)
	}
	if len(todo) == 0 {
		return stats, nil
	}

	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	type outcome struct {
		unit Unit
		res  core.Results
		err  error
	}
	jobs := make(chan Unit)
	results := make(chan outcome)
	abort := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				res, err := core.Simulate(u.Params)
				if err != nil {
					err = fmt.Errorf("%s/%s: %w", u.Key.Label, u.Key.Workload, err)
				}
				results <- outcome{unit: u, res: res, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, u := range todo {
			select {
			case jobs <- u:
			case <-abort:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	for o := range results {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
				close(abort)
			}
			continue
		}
		if err := store.Put(o.unit.FP, o.unit.Key, o.res); err != nil && firstErr == nil {
			firstErr = err
			close(abort)
		}
		stats.Simulated++
		if progress != nil {
			progress(Progress{Done: stats.Hits + stats.Simulated, Total: len(units), Key: o.unit.Key})
		}
	}
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}
