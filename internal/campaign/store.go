package campaign

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"memnet/internal/core"
	"memnet/internal/fnv"
	"memnet/internal/obs"
)

//go:embed cache.schema.json
var cacheSchemaJSON []byte

// CacheEntrySchemaJSON returns the embedded JSON schema every cache
// envelope must satisfy (validated with the internal/obs stdlib schema
// subset on both read and write).
func CacheEntrySchemaJSON() []byte { return cacheSchemaJSON }

// Key is the human-readable summary stored alongside a cached result so
// cache directories can be audited without recomputing fingerprints. It
// identifies the run for a human; the fingerprint identifies it for the
// machine.
type Key struct {
	// Label is the paper-style configuration name (e.g. "50%-T (NVM-L)").
	Label string `json:"label"`
	// Workload names the traffic proxy.
	Workload string `json:"workload"`
	// Transactions is the trace length.
	Transactions uint64 `json:"transactions"`
	// Seed is the workload seed.
	Seed uint64 `json:"seed"`
	// Ports is the host port count (4 in the Fig. 13 system, else 8).
	Ports int `json:"ports,omitempty"`
	// Faulty marks runs with an armed fault scenario (the resilience
	// sweep).
	Faulty bool `json:"faulty,omitempty"`
}

// KeyOf summarizes a run's parameters for the envelope.
func KeyOf(p core.Params) Key {
	return Key{
		Label:        p.Label(),
		Workload:     p.Workload.Name,
		Transactions: p.Transactions,
		Seed:         p.Seed,
		Ports:        p.Sys.Ports,
		Faulty:       p.Fault != nil && p.Fault.Enabled(),
	}
}

// envelope is the on-disk layout of one cache entry: a schema-versioned
// wrapper whose checksum covers the canonical encoding of the results,
// so truncation, bit rot, and field drift all read as a miss rather
// than as data.
type envelope struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	Checksum    string          `json:"checksum"`
	Key         Key             `json:"key"`
	Results     json.RawMessage `json:"results"`
}

// resultsChecksum is the integrity hash of a cached result: FNV-1a over
// the compact canonical JSON encoding of core.Results. Encoding the
// decoded struct (rather than hashing stored bytes) makes the checksum
// sensitive to field drift: an entry written by a binary whose Results
// type differed fails verification instead of deserializing partially.
func resultsChecksum(res core.Results) (string, []byte, error) {
	raw, err := json.Marshal(res)
	if err != nil {
		return "", nil, err
	}
	return fmt.Sprintf("%016x", fnv.New().Bytes(raw).Sum()), raw, nil
}

// Store is a persistent, content-addressed result cache: one JSON
// envelope per fingerprint under a single directory. Writes are
// atomic (temp file + rename), so concurrent writers — shard workers,
// parallel mnexp invocations over the same directory — can never
// produce a torn entry; the worst race outcome is both writing the
// same bytes. Reads treat any malformed, mis-addressed, corrupt, or
// schema-stale entry as a miss: a bad cache can cost recomputation,
// never wrong results.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry filename for a fingerprint.
func (s *Store) path(fp Fingerprint) string {
	return filepath.Join(s.dir, fp.String()+".json")
}

// Get returns the cached results for fp. Every failure mode — missing
// file, malformed JSON, schema mismatch (a version bump), fingerprint
// mismatch (a misnamed or cross-copied file), checksum mismatch
// (corruption or Results field drift) — returns ok=false so the caller
// recomputes instead of trusting the entry.
func (s *Store) Get(fp Fingerprint) (core.Results, bool) {
	raw, err := os.ReadFile(s.path(fp))
	if err != nil {
		return core.Results{}, false
	}
	if err := obs.ValidateJSON(cacheSchemaJSON, raw); err != nil {
		return core.Results{}, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return core.Results{}, false
	}
	if env.Schema != CacheSchema || env.Fingerprint != fp.String() {
		return core.Results{}, false
	}
	var res core.Results
	if err := json.Unmarshal(env.Results, &res); err != nil {
		return core.Results{}, false
	}
	sum, _, err := resultsChecksum(res)
	if err != nil || sum != env.Checksum {
		return core.Results{}, false
	}
	return res, true
}

// Put writes one entry atomically: the envelope is assembled in a
// temporary file in the store directory and renamed over the final
// name, so readers only ever see complete entries.
func (s *Store) Put(fp Fingerprint, key Key, res core.Results) error {
	sum, raw, err := resultsChecksum(res)
	if err != nil {
		return fmt.Errorf("campaign: encode results: %w", err)
	}
	env := envelope{
		Schema:      CacheSchema,
		Fingerprint: fp.String(),
		Checksum:    sum,
		Key:         key,
		Results:     raw,
	}
	blob, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode envelope: %w", err)
	}
	blob = append(blob, '\n')
	if err := obs.ValidateJSON(cacheSchemaJSON, blob); err != nil {
		return fmt.Errorf("campaign: envelope does not satisfy its own schema: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write entry: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// Len counts the valid entries in the store.
func (s *Store) Len() int { return len(s.Fingerprints()) }

// Fingerprints returns the fingerprints of every well-named entry file,
// sorted; it does not validate entry contents (Get does).
func (s *Store) Fingerprints() []Fingerprint {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []Fingerprint
	for _, e := range names {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || len(name) != 16+len(".json") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(name[:16], "%016x", &v); err != nil {
			continue
		}
		out = append(out, Fingerprint(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge copies every valid entry of src into s, in sorted fingerprint
// order. Entries already present are kept (content addressing makes
// both sides byte-equivalent for the same schema version); invalid or
// stale-schema entries in src are skipped and counted. It returns the
// number of entries added and skipped. Merging shard caches in any
// order yields the same store: content addresses make the operation
// commutative and idempotent.
func (s *Store) Merge(src *Store) (added, skipped int, err error) {
	for _, fp := range src.Fingerprints() {
		res, ok := src.Get(fp)
		if !ok {
			skipped++
			continue
		}
		if _, exists := s.Get(fp); exists {
			continue
		}
		var env envelope
		raw, rerr := os.ReadFile(src.path(fp))
		if rerr != nil {
			skipped++
			continue
		}
		if jerr := json.Unmarshal(raw, &env); jerr != nil {
			skipped++
			continue
		}
		if perr := s.Put(fp, env.Key, res); perr != nil {
			return added, skipped, perr
		}
		added++
	}
	return added, skipped, nil
}
