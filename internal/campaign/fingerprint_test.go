package campaign

import (
	"reflect"
	"testing"

	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/migrate"
	"memnet/internal/scenario"
	"memnet/internal/sim"
	"memnet/internal/span"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// testParams returns a representative publication-grid configuration.
func testParams() core.Params {
	wl := workload.Suite()[0]
	return core.Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Workload:     wl,
		Transactions: 1000,
		Seed:         1,
	}
}

// testScenario returns a small scenario spec for fingerprint checks.
func testScenario() *scenario.Spec {
	return &scenario.Spec{
		Schema: scenario.Schema,
		Name:   "fp-test",
		Nodes:  []scenario.Node{{Name: "c0"}, {Name: "c1"}},
		Links: []scenario.Link{
			{A: "host", B: "c0"},
			{A: "c0", B: "c1"},
		},
	}
}

// TestFingerprintStable checks the fingerprint is a pure function of
// the parameters.
func TestFingerprintStable(t *testing.T) {
	a := FingerprintParams(testParams())
	b := FingerprintParams(testParams())
	if a != b {
		t.Fatalf("identical params fingerprint differently: %s vs %s", a, b)
	}
}

// TestFingerprintSensitivity checks that every class of configuration
// change moves the content address.
func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintParams(testParams())
	mutations := map[string]func(*core.Params){
		"topology":          func(p *core.Params) { p.Topo = topology.Ring },
		"arbitration":       func(p *core.Params) { p.Arb++ },
		"transactions":      func(p *core.Params) { p.Transactions++ },
		"seed":              func(p *core.Params) { p.Seed++ },
		"workload":          func(p *core.Params) { p.Workload.MeanGap += sim.Nanosecond },
		"ports":             func(p *core.Params) { p.Sys.Ports = 4 },
		"dram-frac":         func(p *core.Params) { p.Sys.DRAMFraction = 0.5 },
		"placement":         func(p *core.Params) { p.Sys.Placement = config.NVMFirst },
		"capacity":          func(p *core.Params) { p.Sys.TotalCapacity /= 2 },
		"banks":             func(p *core.Params) { p.Sys.BanksPerCube /= 2 },
		"serdes":            func(p *core.Params) { p.Sys.SerDesLatency += sim.Nanosecond },
		"nvm-timing":        func(p *core.Params) { p.Sys.NVMTiming.TWR += sim.Nanosecond },
		"energy":            func(p *core.Params) { p.Sys.Energy.NVMWritePJPerBit++ },
		"tuning":            func(p *core.Params) { p.Tuning.WavefrontSize++ },
		"keepsamples":       func(p *core.Params) { p.KeepSamples = true },
		"faillinks":         func(p *core.Params) { p.FailLinks = []int{2} },
		"migration":         func(p *core.Params) { c := migrate.DefaultConfig(); p.Migration = &c },
		"fault-nil-vs-zero": func(p *core.Params) { p.Fault = &fault.Config{} },
		"fault-ber":         func(p *core.Params) { p.Fault = &fault.Config{LinkBER: 1e-6} },
		"fault-kill": func(p *core.Params) {
			p.Fault = &fault.Config{KillCubes: []fault.CubeKill{{Node: 3, At: sim.Microsecond}}}
		},
		"fault-repair": func(p *core.Params) {
			p.Fault = &fault.Config{
				KillCubes:   []fault.CubeKill{{Node: 3, At: sim.Microsecond}},
				RepairCubes: []fault.CubeRepair{{Node: 3, At: 2 * sim.Microsecond}},
			}
		},
		"fault-flap": func(p *core.Params) {
			p.Fault = &fault.Config{LaneFlaps: []fault.LaneFlap{{Edge: 1, Down: sim.Microsecond, Up: 2 * sim.Microsecond}}}
		},
		"fault-retrain": func(p *core.Params) {
			p.Fault = &fault.Config{RetrainWindow: sim.Microsecond}
		},
		"scenario-nil-vs-set": func(p *core.Params) { p.Scenario = testScenario() },
		"scenario-name": func(p *core.Params) {
			s := testScenario()
			s.Name = "other"
			p.Scenario = s
		},
		"scenario-link-override": func(p *core.Params) {
			s := testScenario()
			depth := 4
			s.Links[1].BufferPackets = &depth
			p.Scenario = s
		},
		"scenario-router-override": func(p *core.Params) {
			s := testScenario()
			s.Routers = map[string]scenario.Router{"c0": {Arb: "distance"}}
			p.Scenario = s
		},
	}
	got := map[Fingerprint]string{base: "base"}
	for name, mut := range mutations {
		p := testParams()
		mut(&p)
		fp := FingerprintParams(p)
		if fp == base {
			t.Errorf("mutation %q does not change the fingerprint", name)
		}
		if prev, dup := got[fp]; dup {
			t.Errorf("mutations %q and %q collide (%s)", name, prev, fp)
		}
		got[fp] = name
	}
}

// TestFingerprintScenarioReload checks the cache-hit property behind
// "cached sweeps extend for free": two independent loads of the same
// scenario document — and a reformatted, default-elided variant of it —
// fingerprint identically, so re-running a scenario campaign hits.
func TestFingerprintScenarioReload(t *testing.T) {
	sparse := []byte(`{"schema":"memnet/scenario/v1","name":"fp-test",` +
		`"nodes":[{"name":"c0"},{"name":"c1"}],` +
		`"links":[{"a":"host","b":"c0"},{"a":"c0","b":"c1"}]}`)
	verbose := []byte(`{
		"name": "fp-test",
		"schema": "memnet/scenario/v1",
		"links": [
			{"b": "c0", "a": "host", "express": false},
			{"a": "c0", "b": "c1"}
		],
		"nodes": [
			{"name": "c0", "kind": "cube", "tech": "dram", "pos": 0},
			{"name": "c1", "pos": 1}
		]
	}`)
	fp := func(doc []byte) Fingerprint {
		s, err := scenario.Decode(doc)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams()
		p.Topo = topology.Scenario
		p.Scenario = s
		return FingerprintParams(p)
	}
	a, b, c := fp(sparse), fp(sparse), fp(verbose)
	if a != b {
		t.Errorf("re-loaded scenario fingerprints differ: %s vs %s", a, b)
	}
	if a != c {
		t.Errorf("reformatted scenario fingerprints differ: %s vs %s", a, c)
	}
	// A scenario run stays cacheable.
	s, err := scenario.Decode(sparse)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Scenario = s
	if !Cacheable(p) {
		t.Error("scenario run must be cacheable")
	}
}

// TestCacheable checks the side-artifact exclusions.
func TestCacheable(t *testing.T) {
	p := testParams()
	if !Cacheable(p) {
		t.Fatal("plain run should be cacheable")
	}
	rp := p
	rp.Replay = []workload.Tx{{}}
	rec := p
	rec.Record = true
	tr := p
	tr.TraceDepth = 8
	sp := p
	sp.Spans = &span.Config{SampleStride: 4}
	for name, q := range map[string]core.Params{"replay": rp, "record": rec, "trace": tr, "spans": sp} {
		if Cacheable(q) {
			t.Errorf("%s run must not be cacheable", name)
		}
	}
}

// TestFingerprintCoverage pins the shapes of every struct the
// fingerprint folds. If this test fails, a configuration struct gained,
// lost, or renamed a field: extend the corresponding hash function in
// fingerprint.go to cover it (or consciously exclude it), bump
// CacheSchema if the change alters simulation semantics, and then
// update the pinned list here.
func TestFingerprintCoverage(t *testing.T) {
	pinned := []struct {
		v    any
		want []string
	}{
		{core.Params{}, []string{
			"Sys", "Topo", "Arb", "Workload", "Transactions", "Seed",
			"KeepSamples", "Replay", "Record", "TraceDepth", "Migration",
			"FailLinks", "Fault", "Obs", "Spans", "Scenario", "Tuning",
		}},
		{config.System{}, []string{
			"Ports", "TotalCapacity", "DRAMCubeCapacity", "NVMCubeCapacity",
			"DRAMFraction", "Placement", "BanksPerCube", "Quadrants",
			"RowBytes", "LinkLanes", "LaneRateBps", "SerDesLatency",
			"WrongQuadrantPenalty", "LinkBufferPackets", "InterleaveBytes",
			"MaxOutstanding", "HostLatency", "DRAMTiming", "NVMTiming", "Energy",
		}},
		{config.MemTiming{}, []string{
			"TRCD", "TCL", "TRP", "TRAS", "TWR", "Burst", "RefInterval", "RefDuration",
		}},
		{config.Energy{}, []string{
			"NetworkPJPerBitHop", "DRAMReadPJPerBit", "DRAMWritePJPerBit",
			"NVMReadPJPerBit", "NVMWritePJPerBit",
		}},
		{workload.Spec{}, []string{
			"Name", "ReadFraction", "MeanGap", "SeqProb", "SeqStride",
			"HotFraction", "HotRegion", "RMWFraction", "BurstProb",
			"BurstLen", "BurstWriteFrac", "Window",
		}},
		{core.Tuning{}, []string{
			"VaultQueueDepth", "VaultMaxInflight", "InternalBandwidthX",
			"SwitchBandwidthBps", "IfaceSwitchBandwidthBps",
			"InterposerBandwidthX", "InterposerSerDes", "ShortcutHi",
			"ShortcutLo", "ShortcutWindow", "NVMMaxInflight",
			"MetaCubeGroup", "WavefrontSize", "WriteDemotion", "NoVCPriority",
		}},
		{migrate.Config{}, []string{
			"Epoch", "HotThreshold", "MaxSwapsPerEpoch", "BlockBytes",
			"Blackout", "SettleEpochs",
		}},
		{fault.Config{}, []string{
			"Seed", "LinkBER", "MaxRetries", "RetryBackoff", "KillLinks",
			"KillCubes", "LaneFails", "RepairLinks", "RepairCubes",
			"LaneFlaps", "RetrainWindow", "Watchdog", "WatchdogInterval",
			"WatchdogStale",
		}},
		{fault.LinkKill{}, []string{"Edge", "At"}},
		{fault.CubeKill{}, []string{"Node", "At", "Full"}},
		{fault.LaneFail{}, []string{"Edge", "At"}},
		{fault.LinkRepair{}, []string{"Edge", "At"}},
		{fault.CubeRepair{}, []string{"Node", "At"}},
		{fault.LaneFlap{}, []string{"Edge", "Down", "Up"}},
	}
	for _, pin := range pinned {
		rt := reflect.TypeOf(pin.v)
		var got []string
		for i := 0; i < rt.NumField(); i++ {
			got = append(got, rt.Field(i).Name)
		}
		if !reflect.DeepEqual(got, pin.want) {
			t.Errorf("%s fields changed:\n  got  %v\n  want %v\nextend the fingerprint coverage (fingerprint.go), consider a CacheSchema bump, then update this pin",
				rt, got, pin.want)
		}
	}
}
