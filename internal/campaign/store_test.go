package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memnet/internal/core"
	"memnet/internal/sim"
)

// testResults returns a distinctive result record.
func testResults() core.Results {
	return core.Results{
		Label:        "100%-T",
		Workload:     "KMEANS",
		FinishTime:   123 * sim.Microsecond,
		MeanLatency:  456 * sim.Nanosecond,
		Transactions: 1000,
		Reads:        800,
		Writes:       200,
		MeanHops:     2.5,
		Events:       424242,
	}
}

// TestStoreRoundTrip checks Put then Get returns the identical record.
func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	fp := FingerprintParams(p)
	if _, ok := s.Get(fp); ok {
		t.Fatal("empty store reported a hit")
	}
	want := testResults()
	if err := s.Put(fp, KeyOf(p), want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got != want {
		t.Fatalf("round trip changed the results:\n  got  %+v\n  want %+v", got, want)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestStoreCorruptEntry checks every corruption mode reads as a miss,
// never as data.
func TestStoreCorruptEntry(t *testing.T) {
	p := testParams()
	fp := FingerprintParams(p)
	entry := func(t *testing.T) (*Store, string) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(fp, KeyOf(p), testResults()); err != nil {
			t.Fatal(err)
		}
		return s, s.path(fp)
	}
	corruptions := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			os.WriteFile(path, raw[:len(raw)/2], 0o644)
		},
		"not-json": func(t *testing.T, path string) {
			os.WriteFile(path, []byte("not json at all"), 0o644)
		},
		"flipped-value": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			// Corrupt the finish time inside the results payload; the
			// checksum must catch it.
			mod := strings.Replace(string(raw), `"FinishTime":`, `"FinishTime":1`, 1)
			if mod == string(raw) {
				t.Fatal("corruption did not apply")
			}
			os.WriteFile(path, []byte(mod), 0o644)
		},
		"alien-schema": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			mod := strings.Replace(string(raw), CacheSchema, "memnet/result-cache/v0", 1)
			os.WriteFile(path, []byte(mod), 0o644)
		},
		"wrong-address": func(t *testing.T, path string) {
			// A valid entry copied under the wrong fingerprint name.
			other := filepath.Join(filepath.Dir(path), Fingerprint(12345).String()+".json")
			raw, _ := os.ReadFile(path)
			os.WriteFile(other, raw, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, path := entry(t)
			corrupt(t, path)
			probe := fp
			if name == "wrong-address" {
				probe = Fingerprint(12345)
			}
			if _, ok := s.Get(probe); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			// The store must recover by recomputation: a fresh Put over
			// the damaged entry restores service.
			if err := s.Put(probe, KeyOf(p), testResults()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(probe); !ok {
				t.Fatal("re-put after corruption still misses")
			}
		})
	}
}

// TestStoreVersionBump checks entries written under an older cache
// schema are recomputed, not trusted: both through the envelope schema
// field and through the fingerprint (CacheSchema is folded into it).
func TestStoreVersionBump(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	fp := FingerprintParams(p)
	if err := s.Put(fp, KeyOf(p), testResults()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(fp))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env["schema"] = "memnet/result-cache/v0"
	stale, _ := json.Marshal(env)
	if err := os.WriteFile(s.path(fp), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
}

// TestStoreMergeOrderIndependent checks merging shard stores in any
// order produces the same set of entries, byte for byte.
func TestStoreMergeOrderIndependent(t *testing.T) {
	p1 := testParams()
	p2 := testParams()
	p2.Seed = 2
	p3 := testParams()
	p3.Transactions = 2000
	mk := func(t *testing.T, params ...core.Params) *Store {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range params {
			r := testResults()
			r.Transactions = p.Transactions
			if err := s.Put(FingerprintParams(p), KeyOf(p), r); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// Shards overlap on p2 deliberately: merge must be idempotent.
	shardA := mk(t, p1, p2)
	shardB := mk(t, p2, p3)

	ab := mk(t)
	if _, _, err := ab.Merge(shardA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ab.Merge(shardB); err != nil {
		t.Fatal(err)
	}
	ba := mk(t)
	if _, _, err := ba.Merge(shardB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ba.Merge(shardA); err != nil {
		t.Fatal(err)
	}

	fpsA, fpsB := ab.Fingerprints(), ba.Fingerprints()
	if len(fpsA) != 3 || len(fpsB) != 3 {
		t.Fatalf("merged sizes = %d, %d; want 3, 3", len(fpsA), len(fpsB))
	}
	for i := range fpsA {
		if fpsA[i] != fpsB[i] {
			t.Fatalf("merge order changed contents: %v vs %v", fpsA, fpsB)
		}
		rawA, _ := os.ReadFile(ab.path(fpsA[i]))
		rawB, _ := os.ReadFile(ba.path(fpsB[i]))
		if string(rawA) != string(rawB) {
			t.Fatalf("entry %s differs between merge orders", fpsA[i])
		}
	}
}

// TestCacheEntrySchemaValid checks the embedded schema itself is sound
// by validating a real entry against it (Put already does, but this
// keeps the failure local if the schema file is edited).
func TestCacheEntrySchemaValid(t *testing.T) {
	if len(CacheEntrySchemaJSON()) == 0 {
		t.Fatal("embedded schema is empty")
	}
	var v any
	if err := json.Unmarshal(CacheEntrySchemaJSON(), &v); err != nil {
		t.Fatalf("embedded schema is not JSON: %v", err)
	}
}
