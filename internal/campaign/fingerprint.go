// Package campaign is the sharded, resumable campaign layer over
// internal/experiments: a persistent, content-addressed store of
// simulation results (keyed by a canonical fingerprint of the complete
// run configuration), a deterministic enumeration of the full
// figure/table grid, a k-of-n shard partition of that grid, and a
// cache-backed simulation hook that lets every experiment harness skip
// runs whose results are already on disk.
//
// The workflow mirrors a publication campaign: `mnexp -shard k/n`
// executes one machine's partition of the grid into a cache directory,
// `mnexp -merge` joins shard caches and regenerates every table and the
// machine-readable experiments.json without simulating anything, and
// cmd/mndocs renders the measured columns of EXPERIMENTS.md from that
// artifact. See DESIGN.md, "Campaigns & result cache".
package campaign

import (
	"fmt"

	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/fnv"
	"memnet/internal/migrate"
	"memnet/internal/scenario"
	"memnet/internal/workload"
)

// CacheSchema identifies the result-cache envelope layout AND the
// semantic version of the simulator's result-producing code. It is part
// of every fingerprint and every envelope: bumping it atomically
// invalidates all cached results. Bump it whenever (a) the envelope
// format changes, (b) core.Results gains/loses/renames a field, or
// (c) a simulation-semantics change makes old results wrong for the
// same configuration. The fingerprint coverage test
// (TestFingerprintCoverage) forces a review of this constant whenever a
// fingerprinted configuration struct changes shape.
const CacheSchema = "memnet/result-cache/v2"

// Fingerprint is the content address of one simulation run: an FNV-1a
// hash of the canonical encoding of everything that determines its
// Results — system configuration, topology, arbitration, workload
// specification, trace length, seed, tuning, migration policy, fault
// scenario, and the cache schema version.
type Fingerprint uint64

// String renders the fingerprint as fixed-width hex (the cache
// filename stem).
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// Cacheable reports whether the run's results may be served from (and
// written to) the persistent cache. Runs that exist for their side
// artifacts — trace replay/record, packet-lifecycle traces, telemetry
// observers, causal span tracing — are excluded: their Results alone do
// not capture what the caller asked for (and a replayed trace is not
// covered by the fingerprint).
func Cacheable(p core.Params) bool {
	return len(p.Replay) == 0 && !p.Record && p.TraceDepth == 0 &&
		p.Obs == nil && p.Spans == nil
}

// FingerprintParams computes the content address of one run. Coverage
// rules (enforced by TestFingerprintCoverage against the shapes of the
// structs below):
//
//   - Every field of config.System, workload.Spec, core.Tuning,
//     fault.Config (and its kill-schedule entries), and migrate.Config
//     is folded, in declaration order, each prefixed with a field label
//     so that adjacent zero values cannot alias across fields.
//   - Params fields that select the run are folded (Topo, Arb,
//     Transactions, Seed, KeepSamples, FailLinks); fields that only
//     produce side artifacts (Replay, Record, TraceDepth, Obs, Spans)
//     are NOT folded — runs using them are not Cacheable.
//   - Nil-able sub-configs fold a presence marker first, so nil and
//     zero-valued configs hash differently.
//   - CacheSchema is folded first, so a schema/semantics bump changes
//     every address.
func FingerprintParams(p core.Params) Fingerprint {
	h := fnv.New().Str(CacheSchema)
	h = hashSystem(h, p.Sys)
	h = h.Str("topo").Str(p.Topo.String())
	h = h.Str("arb").Str(p.Arb.String())
	h = hashWorkload(h, p.Workload)
	h = h.Str("txns").U64(p.Transactions)
	h = h.Str("seed").U64(p.Seed)
	h = h.Str("keep").Bool(p.KeepSamples)
	h = hashTuning(h, p.Tuning)
	h = h.Str("faillinks").Int(len(p.FailLinks))
	for _, e := range p.FailLinks {
		h = h.Int(e)
	}
	h = hashMigration(h, p.Migration)
	h = hashFault(h, p.Fault)
	h = hashScenario(h, p.Scenario)
	return Fingerprint(h.Sum())
}

// hashScenario folds the declarative component graph (nil-able) as its
// canonical re-encoded bytes: defaults materialized, keys sorted. Two
// scenario files that mean the same run — different formatting, key
// order, or elided defaults — therefore share a fingerprint, and a
// re-loaded file is a cache hit. Folding the canonical bytes also
// covers every future Spec field automatically, which is why the
// coverage test pins no scenario struct shapes.
func hashScenario(h fnv.Hash, s *scenario.Spec) fnv.Hash {
	h = h.Str("scenario").Bool(s != nil)
	if s == nil {
		return h
	}
	return h.Str(string(s.Canonical()))
}

// hashSystem folds every field of the system configuration.
func hashSystem(h fnv.Hash, s config.System) fnv.Hash {
	h = h.Str("sys")
	h = h.Int(s.Ports).U64(s.TotalCapacity).U64(s.DRAMCubeCapacity).U64(s.NVMCubeCapacity)
	h = h.F64(s.DRAMFraction).Str(s.Placement.String())
	h = h.Int(s.BanksPerCube).Int(s.Quadrants).U64(s.RowBytes)
	h = h.Int(s.LinkLanes).I64(s.LaneRateBps)
	h = h.I64(int64(s.SerDesLatency)).I64(int64(s.WrongQuadrantPenalty))
	h = h.Int(s.LinkBufferPackets).U64(s.InterleaveBytes)
	h = h.Int(s.MaxOutstanding).I64(int64(s.HostLatency))
	h = hashTiming(h.Str("dram"), s.DRAMTiming)
	h = hashTiming(h.Str("nvm"), s.NVMTiming)
	h = h.Str("energy").F64(s.Energy.NetworkPJPerBitHop).
		F64(s.Energy.DRAMReadPJPerBit).F64(s.Energy.DRAMWritePJPerBit).
		F64(s.Energy.NVMReadPJPerBit).F64(s.Energy.NVMWritePJPerBit)
	return h
}

// hashTiming folds one memory technology's timing parameters.
func hashTiming(h fnv.Hash, t config.MemTiming) fnv.Hash {
	return h.I64(int64(t.TRCD)).I64(int64(t.TCL)).I64(int64(t.TRP)).
		I64(int64(t.TRAS)).I64(int64(t.TWR)).I64(int64(t.Burst)).
		I64(int64(t.RefInterval)).I64(int64(t.RefDuration))
}

// hashWorkload folds every field of the workload specification.
func hashWorkload(h fnv.Hash, w workload.Spec) fnv.Hash {
	h = h.Str("wl").Str(w.Name)
	h = h.F64(w.ReadFraction).I64(int64(w.MeanGap))
	h = h.F64(w.SeqProb).U64(w.SeqStride)
	h = h.F64(w.HotFraction).F64(w.HotRegion)
	h = h.F64(w.RMWFraction)
	h = h.F64(w.BurstProb).Int(w.BurstLen).F64(w.BurstWriteFrac)
	h = h.Int(w.Window)
	return h
}

// hashTuning folds every field of the core tuning block.
func hashTuning(h fnv.Hash, t core.Tuning) fnv.Hash {
	h = h.Str("tuning")
	h = h.Int(t.VaultQueueDepth).Int(t.VaultMaxInflight).Int(t.InternalBandwidthX)
	h = h.I64(t.SwitchBandwidthBps).I64(t.IfaceSwitchBandwidthBps)
	h = h.Int(t.InterposerBandwidthX).I64(int64(t.InterposerSerDes))
	h = h.F64(t.ShortcutHi).F64(t.ShortcutLo).Int(t.ShortcutWindow)
	h = h.Int(t.NVMMaxInflight).Int(t.MetaCubeGroup).Int(t.WavefrontSize)
	h = h.I64(t.WriteDemotion).Bool(t.NoVCPriority)
	return h
}

// hashMigration folds the migration policy (nil-able).
func hashMigration(h fnv.Hash, m *migrate.Config) fnv.Hash {
	h = h.Str("migrate").Bool(m != nil)
	if m == nil {
		return h
	}
	h = h.I64(int64(m.Epoch)).Int(m.HotThreshold).Int(m.MaxSwapsPerEpoch)
	h = h.U64(m.BlockBytes).I64(int64(m.Blackout)).U64(m.SettleEpochs)
	return h
}

// hashFault folds the fault scenario (nil-able), including every
// scheduled kill.
func hashFault(h fnv.Hash, f *fault.Config) fnv.Hash {
	h = h.Str("fault").Bool(f != nil)
	if f == nil {
		return h
	}
	h = h.U64(f.Seed).F64(f.LinkBER).Int(f.MaxRetries).I64(int64(f.RetryBackoff))
	h = h.Str("killlinks").Int(len(f.KillLinks))
	for _, k := range f.KillLinks {
		h = h.Int(k.Edge).I64(int64(k.At))
	}
	h = h.Str("killcubes").Int(len(f.KillCubes))
	for _, k := range f.KillCubes {
		h = h.U64(uint64(k.Node)).I64(int64(k.At)).Bool(k.Full)
	}
	h = h.Str("lanefails").Int(len(f.LaneFails))
	for _, k := range f.LaneFails {
		h = h.Int(k.Edge).I64(int64(k.At))
	}
	h = h.Str("repairlinks").Int(len(f.RepairLinks))
	for _, r := range f.RepairLinks {
		h = h.Int(r.Edge).I64(int64(r.At))
	}
	h = h.Str("repaircubes").Int(len(f.RepairCubes))
	for _, r := range f.RepairCubes {
		h = h.U64(uint64(r.Node)).I64(int64(r.At))
	}
	h = h.Str("laneflaps").Int(len(f.LaneFlaps))
	for _, fl := range f.LaneFlaps {
		h = h.Int(fl.Edge).I64(int64(fl.Down)).I64(int64(fl.Up))
	}
	h = h.I64(int64(f.RetrainWindow))
	h = h.Bool(f.Watchdog).I64(int64(f.WatchdogInterval)).Int(f.WatchdogStale)
	return h
}
