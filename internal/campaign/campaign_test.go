package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"memnet/internal/core"
	"memnet/internal/experiments"
)

// tinyOpts keeps campaign tests fast: two workloads, short traces.
func tinyOpts() experiments.Options {
	return experiments.Options{
		Transactions: 50,
		Seed:         1,
		Workloads:    []string{"KMEANS", "NW"},
		Parallel:     2,
	}
}

// TestGridDeterministic checks enumeration is stable and deduplicated.
func TestGridDeterministic(t *testing.T) {
	a, err := Grid(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty grid")
	}
	if len(a) != len(b) {
		t.Fatalf("grid sizes differ: %d vs %d", len(a), len(b))
	}
	seen := make(map[Fingerprint]bool, len(a))
	for i := range a {
		if a[i].FP != b[i].FP {
			t.Fatalf("grid order differs at %d: %s vs %s", i, a[i].FP, b[i].FP)
		}
		if seen[a[i].FP] {
			t.Fatalf("duplicate unit %s (%+v)", a[i].FP, a[i].Key)
		}
		seen[a[i].FP] = true
	}
	// The grid must include the off-baseline systems: Fig. 13's 4-port
	// doubled-trace runs and the resilience sweep's faulty runs.
	var fourPort, faulty bool
	for _, u := range a {
		if u.Key.Ports == 4 && u.Key.Transactions == 2*tinyOpts().Transactions {
			fourPort = true
		}
		if u.Key.Faulty {
			faulty = true
		}
	}
	if !fourPort {
		t.Error("grid is missing the Fig. 13 four-port runs")
	}
	if !faulty {
		t.Error("grid is missing the resilience fault runs")
	}
}

// TestShardPartition checks that for n in {1,2,3,8} the shards cover
// the grid exactly once: disjoint, and their union is the grid.
func TestShardPartition(t *testing.T) {
	grid, err := Grid(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8} {
		counts := make(map[Fingerprint]int, len(grid))
		for k := 1; k <= n; k++ {
			for _, u := range (Shard{K: k, N: n}).Select(grid) {
				counts[u.FP]++
			}
		}
		if len(counts) != len(grid) {
			t.Errorf("n=%d: union covers %d of %d units", n, len(counts), len(grid))
		}
		for fp, c := range counts {
			if c != 1 {
				t.Errorf("n=%d: unit %s assigned %d times", n, fp, c)
			}
		}
	}
}

// TestParseShard checks the k/n syntax and its error cases.
func TestParseShard(t *testing.T) {
	if s, err := ParseShard("2/3"); err != nil || s.K != 2 || s.N != 3 {
		t.Fatalf("ParseShard(2/3) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "3/2", "0/2", "x/y", "-1/2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// renderAll runs every figure and table through the runner and returns
// the concatenated text tables plus the campaign manifest JSON — the
// byte surface the shard/merge path must reproduce exactly.
func renderAll(t *testing.T, opts experiments.Options, sim experiments.SimFunc) ([]byte, []byte) {
	t.Helper()
	r := experiments.NewRunner(opts)
	r.Sim = sim
	var text bytes.Buffer
	manifest := experiments.NewRunManifest(opts)
	for _, f := range r.Figures() {
		tab, err := f.Fn()
		if err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		manifest.Add(tab)
		text.WriteString(tab.Text())
	}
	var mjson bytes.Buffer
	if err := manifest.Encode(&mjson); err != nil {
		t.Fatal(err)
	}
	return text.Bytes(), mjson.Bytes()
}

// TestShardMergeByteIdentical is the end-to-end acceptance test: an
// unsharded run and a 2-shard run merged from separate caches must
// produce byte-identical tables and manifests, and regenerating from
// the warm merged cache must perform zero simulations (asserted through
// the CachedSim run-count hook).
func TestShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute campaign comparison")
	}
	opts := tinyOpts()

	// Unsharded reference: plain simulation, no cache.
	wantText, wantJSON := renderAll(t, opts, nil)

	// Sharded: two shards into two separate stores...
	storeA, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	statsA, err := RunShard(opts, storeA, Shard{K: 1, N: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	statsB, err := RunShard(opts, storeB, Shard{K: 2, N: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if statsA.GridSize != statsB.GridSize {
		t.Fatalf("shards disagree on grid size: %d vs %d", statsA.GridSize, statsB.GridSize)
	}
	if statsA.ShardSize+statsB.ShardSize != statsA.GridSize {
		t.Fatalf("shards do not cover the grid: %d + %d != %d",
			statsA.ShardSize, statsB.ShardSize, statsA.GridSize)
	}

	// ... merged into one store ...
	merged, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*Store{storeA, storeB} {
		if _, skipped, err := merged.Merge(src); err != nil || skipped != 0 {
			t.Fatalf("merge: skipped=%d err=%v", skipped, err)
		}
	}
	if merged.Len() != statsA.GridSize {
		t.Fatalf("merged store has %d entries, want %d", merged.Len(), statsA.GridSize)
	}

	// ... and regenerated over the warm cache with a backend that
	// refuses to simulate.
	var counter Counter
	forbid := func(p core.Params) (core.Results, error) {
		return core.Results{}, fmt.Errorf("warm cache required a simulation: %s/%s",
			p.Label(), p.Workload.Name)
	}
	gotText, gotJSON := renderAll(t, opts, CachedSim(merged, forbid, &counter))
	if counter.Misses() != 0 {
		t.Errorf("warm-cache regeneration simulated %d times, want 0", counter.Misses())
	}
	if counter.Hits() == 0 {
		t.Error("warm-cache regeneration never hit the cache")
	}
	if !bytes.Equal(gotText, wantText) {
		t.Errorf("merged tables differ from unsharded run (%d vs %d bytes)",
			len(gotText), len(wantText))
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("merged manifest differs from unsharded run")
	}
}

// TestRunShardResumes checks a second RunShard over a warm store
// simulates nothing and reports every unit as a hit.
func TestRunShardResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign execution")
	}
	opts := tinyOpts()
	opts.Workloads = []string{"NW"}
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunShard(opts, store, Shard{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Simulated == 0 {
		t.Fatal("first pass simulated nothing")
	}
	var progressed int
	second, err := RunShard(opts, store, Shard{}, func(p Progress) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulated != 0 {
		t.Errorf("resume simulated %d units, want 0", second.Simulated)
	}
	if second.Hits != first.ShardSize {
		t.Errorf("resume hit %d of %d units", second.Hits, first.ShardSize)
	}
	if progressed != second.ShardSize {
		t.Errorf("progress called %d times, want %d", progressed, second.ShardSize)
	}
}

// TestManifestSchemaStable pins the manifest JSON surface mndocs
// consumes: schema id and the lower-case table keys.
func TestManifestSchemaStable(t *testing.T) {
	m := experiments.NewRunManifest(tinyOpts())
	m.Add(&experiments.Table{
		ID: "figX", Title: "T", Columns: []string{"a"},
		Rows: []experiments.Row{{Label: "r", Values: []float64{1}}},
		Unit: "u",
	})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != experiments.CampaignSchema {
		t.Fatalf("schema = %v", doc["schema"])
	}
	tables := doc["tables"].([]any)
	tab := tables[0].(map[string]any)
	for _, key := range []string{"id", "title", "columns", "rows", "unit"} {
		if _, ok := tab[key]; !ok {
			t.Errorf("table JSON missing %q: %v", key, tab)
		}
	}
	opts := doc["options"].(map[string]any)
	if _, leaked := opts["Parallel"]; leaked {
		t.Error("machine-local Parallel leaked into the manifest")
	}
}
