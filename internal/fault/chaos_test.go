package fault

import (
	"reflect"
	"testing"

	"memnet/internal/config"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

func chaosGraph(t *testing.T, kind topology.Kind) *topology.Graph {
	t.Helper()
	g, err := topology.Build(kind, make([]config.MemTech, 8))
	if err != nil {
		t.Fatalf("build %v: %v", kind, err)
	}
	return g
}

func fullSpec() ChaosSpec {
	return ChaosSpec{
		Seed: 7, Horizon: 10 * sim.Microsecond,
		LinkKills: 2, CubeKills: 2, LaneFlaps: 2,
	}
}

// TestChaosDeterministic: the schedule is a pure function of
// (graph, spec) — the campaign fingerprint depends on it.
func TestChaosDeterministic(t *testing.T) {
	g := chaosGraph(t, topology.Ring)
	a, err := Chaos(g, fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(g, fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n a: %+v\n b: %+v", a, b)
	}
	spec := fullSpec()
	spec.Seed = 8
	c, err := Chaos(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestChaosSurvivable: the generator adapts to the topology — a chain
// (no severable edge) gets zero link kills, a ring gets the requested
// count, and every generated schedule passes its own Build validation.
func TestChaosSurvivable(t *testing.T) {
	for _, tc := range []struct {
		kind      topology.Kind
		linkKills int
	}{
		{topology.Chain, 0},
		{topology.Ring, 2},
	} {
		g := chaosGraph(t, tc.kind)
		cfg, err := Chaos(g, fullSpec())
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if len(cfg.KillLinks) != tc.linkKills {
			t.Errorf("%v: %d link kills, want %d", tc.kind, len(cfg.KillLinks), tc.linkKills)
		}
		if len(cfg.RepairLinks) != len(cfg.KillLinks) {
			t.Errorf("%v: %d kills but %d repairs", tc.kind, len(cfg.KillLinks), len(cfg.RepairLinks))
		}
		if len(cfg.KillCubes) != 2 || len(cfg.RepairCubes) != 2 {
			t.Errorf("%v: cube kills/repairs %d/%d, want 2/2",
				tc.kind, len(cfg.KillCubes), len(cfg.RepairCubes))
		}
		if len(cfg.LaneFlaps) != 2 {
			t.Errorf("%v: %d flaps, want 2", tc.kind, len(cfg.LaneFlaps))
		}
		for _, k := range cfg.KillCubes {
			if k.Full {
				t.Errorf("%v: chaos scheduled a Full cube kill %+v", tc.kind, k)
			}
		}
		if !cfg.Watchdog {
			t.Errorf("%v: watchdog not armed", tc.kind)
		}
		wd := cfg.WithDefaults()
		if _, err := wd.Build(); err != nil {
			t.Errorf("%v: generated schedule fails Build: %v", tc.kind, err)
		}
		// Disjoint outage windows: every event fits inside its own slot.
		horizon := fullSpec().Horizon
		for _, r := range cfg.RepairLinks {
			if r.At+wd.RetrainWindow > horizon {
				t.Errorf("%v: link repair %+v completes past the horizon", tc.kind, r)
			}
		}
	}
}

// TestChaosCubeCap: cube kills are capped so at least one cube
// survives to host re-homed address ranges.
func TestChaosCubeCap(t *testing.T) {
	g, err := topology.Build(topology.Chain, make([]config.MemTech, 2))
	if err != nil {
		t.Fatal(err)
	}
	spec := fullSpec()
	spec.CubeKills = 10
	cfg, err := Chaos(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.KillCubes); got != 1 {
		t.Errorf("2-cube chain: %d cube kills, want 1 (one survivor)", got)
	}
}

// TestChaosErrors: degenerate specs fail loudly instead of generating
// an empty or invalid schedule.
func TestChaosErrors(t *testing.T) {
	g := chaosGraph(t, topology.Ring)
	if _, err := Chaos(g, ChaosSpec{Horizon: 0, LinkKills: 1}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Chaos(g, ChaosSpec{Horizon: sim.Microsecond, LinkKills: -1}); err == nil {
		t.Error("negative event count accepted")
	}
	if _, err := Chaos(g, ChaosSpec{Horizon: 10, LinkKills: 2, CubeKills: 2, LaneFlaps: 2}); err == nil {
		t.Error("horizon too short for the slot layout accepted")
	}
}
