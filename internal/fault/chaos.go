package fault

import (
	"fmt"

	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// ChaosSpec parameterizes a generated kill/repair/flap schedule. The
// counts are maxima: a topology without enough survivable candidates
// (a chain has no severable edge; a MetaCube has few) gets fewer
// events, never an unsurvivable one.
type ChaosSpec struct {
	// Seed drives target and jitter selection; the same seed against
	// the same graph yields the same schedule.
	Seed uint64
	// Horizon is the window the schedule spreads across; events land in
	// disjoint slots inside it, every outage repaired before the next
	// fault lands.
	Horizon sim.Time
	// LinkKills, CubeKills, and LaneFlaps are the number of
	// kill-then-repair cycles (or down/up flap windows) to schedule.
	LinkKills, CubeKills, LaneFlaps int
	// LinkBER and MaxRetries pass through to the returned Config.
	LinkBER    float64
	MaxRetries int
}

// Chaos generates a seeded, validated fault/repair schedule against a
// built topology: every link kill targets an edge whose loss the graph
// routes around, every cube kill is memory-only (always survivable),
// every fault is repaired within its own time slot, and the progress
// watchdog is armed. The outage windows are pairwise disjoint in time,
// so cumulative survivability reduces to the per-edge check done here
// and core's Build-time plan validation cannot fail. The schedule is a
// pure function of (graph, spec).
func Chaos(g *topology.Graph, spec ChaosSpec) (Config, error) {
	if spec.Horizon <= 0 {
		return Config{}, fmt.Errorf("fault: chaos horizon %v must be positive", spec.Horizon)
	}
	if spec.LinkKills < 0 || spec.CubeKills < 0 || spec.LaneFlaps < 0 {
		return Config{}, fmt.Errorf("fault: negative chaos event counts")
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	rng := sim.NewRand(seed + 0x6368616f73) // decorrelate from workload streams

	// Candidate pools, in deterministic edge/node order. Kills need a
	// survivable edge; flaps need a SerDes edge (interposer traces have
	// no lanes to flap); cube kills need a survivor left over.
	var killable []int
	for ei := range g.Edges {
		if _, err := g.Disable([]int{ei}, nil); err == nil {
			killable = append(killable, ei)
		}
	}
	var flappable []int
	for ei, e := range g.Edges {
		if !e.Interposer {
			flappable = append(flappable, ei)
		}
	}
	cubes := g.CubeIDs()

	// Draw distinct targets; an edge serves at most one event across
	// the whole schedule, so flap windows and kill outages never share
	// an edge (which Build would reject).
	taken := make(map[int]bool)
	drawEdge := func(pool []int) (int, bool) {
		var free []int
		for _, ei := range pool {
			if !taken[ei] {
				free = append(free, ei)
			}
		}
		if len(free) == 0 {
			return 0, false
		}
		ei := free[rng.Intn(len(free))]
		taken[ei] = true
		return ei, true
	}

	type slot struct {
		kind EventKind // EvKillLink, EvKillCube, or EvLaneFail (flap)
		edge int
		node packet.NodeID
	}
	var slots []slot
	for i := 0; i < spec.LinkKills; i++ {
		if ei, ok := drawEdge(killable); ok {
			slots = append(slots, slot{kind: EvKillLink, edge: ei})
		}
	}
	takenCube := make(map[packet.NodeID]bool)
	for i := 0; i < spec.CubeKills && i < len(cubes)-1; i++ {
		var free []packet.NodeID
		for _, id := range cubes {
			if !takenCube[id] {
				free = append(free, id)
			}
		}
		node := free[rng.Intn(len(free))]
		takenCube[node] = true
		slots = append(slots, slot{kind: EvKillCube, node: node})
	}
	for i := 0; i < spec.LaneFlaps; i++ {
		if ei, ok := drawEdge(flappable); ok {
			slots = append(slots, slot{kind: EvLaneFail, edge: ei})
		}
	}

	cfg := Config{
		Seed:       seed,
		LinkBER:    spec.LinkBER,
		MaxRetries: spec.MaxRetries,
		Watchdog:   true,
	}
	if len(slots) == 0 {
		return cfg, nil
	}

	// Fisher-Yates over the slot kinds so fault types interleave across
	// the horizon instead of clustering by category.
	for i := len(slots) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		slots[i], slots[j] = slots[j], slots[i]
	}

	// One slot of length L per event: the outage opens at L/4 and
	// closes by 5L/8 (plus up to L/8 jitter on each end), leaving room
	// for a retraining window of at most L/8 before the slot ends.
	// Disjoint slots mean at most one outage is open at any instant.
	n := sim.Time(len(slots))
	slotLen := spec.Horizon / n
	window := slotLen / 8
	if window < 1 {
		return Config{}, fmt.Errorf("fault: chaos horizon %v too short for %d events", spec.Horizon, len(slots))
	}
	if window > 200*sim.Nanosecond {
		window = 200 * sim.Nanosecond
	}
	cfg.RetrainWindow = window
	jitter := func() sim.Time { return sim.Time(rng.Int63n(int64(slotLen/8) + 1)) }
	for k, s := range slots {
		base := slotLen * sim.Time(k)
		down := base + slotLen/4 + jitter()
		up := down + slotLen/4 + jitter()
		switch s.kind {
		case EvKillLink:
			cfg.KillLinks = append(cfg.KillLinks, LinkKill{Edge: s.edge, At: down})
			cfg.RepairLinks = append(cfg.RepairLinks, LinkRepair{Edge: s.edge, At: up})
		case EvKillCube:
			cfg.KillCubes = append(cfg.KillCubes, CubeKill{Node: s.node, At: down})
			cfg.RepairCubes = append(cfg.RepairCubes, CubeRepair{Node: s.node, At: up})
		case EvLaneFail:
			cfg.LaneFlaps = append(cfg.LaneFlaps, LaneFlap{Edge: s.edge, Down: down, Up: up})
		}
	}
	wd := cfg.WithDefaults()
	if _, err := wd.Build(); err != nil {
		return Config{}, fmt.Errorf("fault: chaos generated an invalid schedule: %w", err)
	}
	return cfg, nil
}
