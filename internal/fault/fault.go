// Package fault is the deterministic fault-injection model for a memory
// network: per-link transmission bit errors, SerDes lane failures with
// HMC-style half-width down-binding, link deaths, and cube deaths, all
// driven from one seed so that a faulty scenario replays bit-identically.
//
// The package owns only the *model* — probabilities, schedules, and the
// per-link random streams. The mechanisms (the link-level retry buffer,
// the route-table recomputation, the progress watchdog) live with the
// components they protect, in internal/link, internal/topology, and
// internal/sim; internal/core threads everything together.
//
// # Determinism guarantee
//
// Every link direction draws its CRC outcomes from its own xoshiro
// stream, seeded by (Seed, edge index, direction). Draws therefore do
// not depend on how traffic on different links interleaves, only on the
// sequence of transmissions over that one direction — which the
// single-threaded engine already fixes. Two runs with the same workload
// seed and the same fault Config produce identical Results, counters
// included. Scheduled faults (kills, lane failures) fire at exact
// simulated times through the ordinary event queue.
package fault

import (
	"fmt"
	"math"
	"sort"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// LinkKill fails one topology edge (both directions) at a simulated
// time. The routing tables are recomputed around the dead edge; packets
// queued on it are drained back into their router and re-routed.
type LinkKill struct {
	// Edge indexes the built topology's Edges slice.
	Edge int
	At   sim.Time
}

// CubeKill fails one memory cube at a simulated time. By default only
// the memory dies: the logic die keeps switching (the standard HMC RAS
// assumption), transit traffic is unaffected, and the cube's address
// range is re-homed to the nearest surviving cube. Full additionally
// removes the cube from every other node's route tables, so no path
// transits it — only redundant topologies (ring, skip list, mesh)
// survive a Full kill of a transit cube.
type CubeKill struct {
	Node packet.NodeID
	At   sim.Time
	Full bool
}

// LaneFail models a SerDes lane failure on one edge at a simulated
// time: the link down-binds to half width (both directions), halving
// BandwidthBps, as HMC links do rather than dying outright. Repeated
// failures of the same edge quarter, eighth, ... the width.
type LaneFail struct {
	Edge int
	At   sim.Time
}

// LinkRepair returns a previously killed edge to service. At is when
// the physical repair lands and retraining begins; the link re-enters
// service (and routes swap back to the pre-fault tables) RetrainWindow
// later. Build rejects a repair of an edge that is not down at At.
type LinkRepair struct {
	Edge int
	At   sim.Time
}

// CubeRepair returns a previously killed cube to service at a
// simulated time: its address range re-homes back from the spare, and
// a Full kill's transit capacity is restored to the route tables. The
// model repairs placement only — data written to the spare during the
// outage is not migrated back (the simulator models performance, not
// contents). Build rejects a repair of a cube that is not dead at At.
type CubeRepair struct {
	Node packet.NodeID
	At   sim.Time
}

// LaneFlap is a transient lane failure: the edge down-binds to half
// width at Down and retrains back to full width at Up (the retraining
// happens under traffic at the degraded width, so Up is the re-bind
// instant; no extra window applies). Build rejects overlapping flap
// windows on one edge and flaps mixed with kills or permanent lane
// failures on the same edge (the width to restore would be ambiguous).
type LaneFlap struct {
	Edge     int
	Down, Up sim.Time
}

// Config is the complete fault scenario for one run. The zero value
// injects nothing; Enabled reports whether any knob is set.
type Config struct {
	// Seed drives every random fault stream. Zero means 1.
	Seed uint64

	// LinkBER is the per-bit transmission error probability on
	// package-to-package SerDes links (interposer traces and cube-internal
	// connections are exempt). A packet whose CRC check fails is held in
	// the sender's retry buffer and retransmitted.
	LinkBER float64

	// MaxRetries bounds retransmissions of one packet; past it the packet
	// is dropped (counted in link Stats.Dropped) and its transaction never
	// completes — the watchdog's job to catch. Zero retries forever,
	// which is the HMC guarantee.
	MaxRetries int

	// RetryBackoff is the base retransmission backoff, doubled per
	// consecutive error on the same packet (capped at 64x). Zero means
	// the 8 ns default.
	RetryBackoff sim.Time

	// Scheduled faults.
	KillLinks []LinkKill
	KillCubes []CubeKill
	LaneFails []LaneFail

	// Scheduled repairs and transient flaps. Every repair must match an
	// earlier kill of the same target; Build validates the full
	// timeline.
	RepairLinks []LinkRepair
	RepairCubes []CubeRepair
	LaneFlaps   []LaneFlap

	// RetrainWindow is the simulated time a repaired link spends
	// retraining (down -> retraining -> up) before it carries traffic
	// again. Zero means the 200 ns default.
	RetrainWindow sim.Time

	// Watchdog arms the progress watchdog even when no fault is
	// configured (diagnosing a wedge in a fault-free scenario). The
	// watchdog is always armed when any fault knob is set.
	Watchdog bool
	// WatchdogInterval is the progress-check period (default 50 µs of
	// simulated time).
	WatchdogInterval sim.Time
	// WatchdogStale is how many consecutive no-progress intervals trip
	// the watchdog (default 4).
	WatchdogStale int
}

// Enabled reports whether the configuration injects any fault or arms
// the watchdog. A disabled Config leaves the simulation bit-identical
// to one with no Config at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.LinkBER > 0 || len(c.KillLinks) > 0 || len(c.KillCubes) > 0 ||
		len(c.LaneFails) > 0 || len(c.RepairLinks) > 0 ||
		len(c.RepairCubes) > 0 || len(c.LaneFlaps) > 0 || c.Watchdog
}

// WithDefaults returns a copy with zero-valued tunables replaced by
// their defaults.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 8 * sim.Nanosecond
	}
	if c.RetrainWindow == 0 {
		c.RetrainWindow = 200 * sim.Nanosecond
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = 50 * sim.Microsecond
	}
	if c.WatchdogStale == 0 {
		c.WatchdogStale = 4
	}
	return c
}

// Validate checks the scenario's internal consistency. Topology-aware
// checks (edge ranges, connectivity after kills) belong to the builder,
// which knows the graph.
func (c *Config) Validate() error {
	switch {
	case c.LinkBER < 0 || c.LinkBER > 1:
		return fmt.Errorf("fault: LinkBER %v outside [0,1]", c.LinkBER)
	case c.MaxRetries < 0:
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("fault: negative RetryBackoff %v", c.RetryBackoff)
	case c.WatchdogInterval < 0 || c.WatchdogStale < 0:
		return fmt.Errorf("fault: negative watchdog parameters")
	}
	for _, k := range c.KillLinks {
		if k.At < 0 || k.Edge < 0 {
			return fmt.Errorf("fault: invalid link kill %+v", k)
		}
	}
	for _, k := range c.KillCubes {
		if k.At < 0 || k.Node <= packet.HostNode {
			return fmt.Errorf("fault: invalid cube kill %+v", k)
		}
	}
	for _, k := range c.LaneFails {
		if k.At < 0 || k.Edge < 0 {
			return fmt.Errorf("fault: invalid lane failure %+v", k)
		}
	}
	for _, r := range c.RepairLinks {
		if r.At < 0 || r.Edge < 0 {
			return fmt.Errorf("fault: invalid link repair %+v", r)
		}
	}
	for _, r := range c.RepairCubes {
		if r.At < 0 || r.Node <= packet.HostNode {
			return fmt.Errorf("fault: invalid cube repair %+v", r)
		}
	}
	for _, f := range c.LaneFlaps {
		if f.Down < 0 || f.Edge < 0 {
			return fmt.Errorf("fault: invalid lane flap %+v", f)
		}
		if f.Up <= f.Down {
			return fmt.Errorf("fault: lane flap on edge %d ends at %v, at or before its start %v",
				f.Edge, f.Up, f.Down)
		}
	}
	if c.RetrainWindow < 0 {
		return fmt.Errorf("fault: negative RetrainWindow %v", c.RetrainWindow)
	}
	return nil
}

// EventKind discriminates scheduled fault events.
type EventKind uint8

const (
	// EvKillLink fails an edge.
	EvKillLink EventKind = iota
	// EvKillCube fails a cube (memory, or the whole node when Full).
	EvKillCube
	// EvLaneFail down-binds an edge to half width (a permanent lane
	// failure, or the Down half of a LaneFlap).
	EvLaneFail
	// EvRepairLink returns a killed edge to service. At is the instant
	// retraining completes and the edge carries traffic again; Start is
	// when retraining began (the configured LinkRepair.At).
	EvRepairLink
	// EvRepairCube returns a killed cube to service: its address range
	// re-homes back from the spare.
	EvRepairCube
	// EvLaneRepair re-binds a flapped edge to full width (the Up half
	// of a LaneFlap).
	EvLaneRepair
)

// String names the event kind, snake_case, for timelines and logs.
func (k EventKind) String() string {
	switch k {
	case EvKillLink:
		return "kill_link"
	case EvKillCube:
		return "kill_cube"
	case EvLaneFail:
		return "lane_fail"
	case EvRepairLink:
		return "repair_link"
	case EvRepairCube:
		return "repair_cube"
	case EvLaneRepair:
		return "lane_repair"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one scheduled fault or repair, in the merged time-ordered
// schedule.
type Event struct {
	At    sim.Time
	Start sim.Time // EvRepairLink: retraining begin (At - RetrainWindow)
	Kind  EventKind
	Edge  int           // EvKillLink, EvLaneFail, EvRepairLink, EvLaneRepair
	Node  packet.NodeID // EvKillCube, EvRepairCube
	Full  bool          // EvKillCube
}

// Schedule merges the configured faults and repairs into one list
// sorted by time (stable, so same-instant events apply in declaration
// order: link kills, cube kills, lane failures, flap downs, then link
// repairs, cube repairs, flap ups — faults before repairs, so an
// ambiguous same-instant kill/repair pair is caught by Build as a kill
// while down). A link repair's event time is its effective link-up
// instant, Start + RetrainWindow, so the sorted order equals the order
// in which routing actually changes; c must carry defaults
// (WithDefaults) for the window to be applied.
func (c *Config) Schedule() []Event {
	evs := make([]Event, 0, len(c.KillLinks)+len(c.KillCubes)+len(c.LaneFails)+
		len(c.RepairLinks)+len(c.RepairCubes)+2*len(c.LaneFlaps))
	for _, k := range c.KillLinks {
		evs = append(evs, Event{At: k.At, Kind: EvKillLink, Edge: k.Edge})
	}
	for _, k := range c.KillCubes {
		evs = append(evs, Event{At: k.At, Kind: EvKillCube, Node: k.Node, Full: k.Full})
	}
	for _, k := range c.LaneFails {
		evs = append(evs, Event{At: k.At, Kind: EvLaneFail, Edge: k.Edge})
	}
	for _, f := range c.LaneFlaps {
		evs = append(evs, Event{At: f.Down, Kind: EvLaneFail, Edge: f.Edge})
	}
	for _, r := range c.RepairLinks {
		evs = append(evs, Event{At: r.At + c.RetrainWindow, Start: r.At, Kind: EvRepairLink, Edge: r.Edge})
	}
	for _, r := range c.RepairCubes {
		evs = append(evs, Event{At: r.At, Kind: EvRepairCube, Node: r.Node})
	}
	for _, f := range c.LaneFlaps {
		evs = append(evs, Event{At: f.Up, Kind: EvLaneRepair, Edge: f.Edge})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Build validates the scheduled fault/repair timeline and returns the
// merged, time-ordered event schedule. It walks a per-edge and
// per-cube alive/dead state machine over the sorted events and
// rejects:
//
//   - a repair of a link or cube that is not down at its time (which
//     covers repairs of targets never killed, and repairs scheduled
//     at-or-before their kill — same-instant pairs sort kill-first);
//   - a kill of a target already down, including a link kill landing
//     inside a repair's retraining window;
//   - a link repair whose retraining would begin before the kill;
//   - overlapping or touching flap windows on one edge;
//   - flaps mixed with kills or permanent lane failures on the same
//     edge (the width a flap restores would be ambiguous).
//
// Topology-aware checks (edge ranges, post-kill connectivity) stay
// with the builder in internal/core, which knows the graph. c must
// already carry defaults (WithDefaults).
func (c *Config) Build() ([]Event, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	flapEdges := make(map[int][]LaneFlap)
	for _, f := range c.LaneFlaps {
		flapEdges[f.Edge] = append(flapEdges[f.Edge], f)
	}
	for _, k := range c.KillLinks {
		if len(flapEdges[k.Edge]) > 0 {
			return nil, fmt.Errorf("fault: edge %d has both a kill and a lane flap", k.Edge)
		}
	}
	for _, k := range c.LaneFails {
		if len(flapEdges[k.Edge]) > 0 {
			return nil, fmt.Errorf("fault: edge %d has both a permanent lane failure and a lane flap", k.Edge)
		}
		// Retraining re-binds the full lane set, which would silently
		// heal a permanent lane failure on the same edge.
		for _, r := range c.RepairLinks {
			if r.Edge == k.Edge {
				return nil, fmt.Errorf("fault: edge %d has both a permanent lane failure and a link repair", k.Edge)
			}
		}
	}
	flapOrder := make([]int, 0, len(flapEdges))
	for edge := range flapEdges {
		flapOrder = append(flapOrder, edge)
	}
	sort.Ints(flapOrder)
	for _, edge := range flapOrder {
		sorted := append([]LaneFlap(nil), flapEdges[edge]...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Down < sorted[j].Down })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Down <= sorted[i-1].Up {
				return nil, fmt.Errorf("fault: overlapping lane flaps on edge %d ([%v,%v] and [%v,%v])",
					edge, sorted[i-1].Down, sorted[i-1].Up, sorted[i].Down, sorted[i].Up)
			}
		}
	}

	evs := c.Schedule()
	linkDown := make(map[int]bool)
	linkKillAt := make(map[int]sim.Time)
	cubeDown := make(map[packet.NodeID]bool)
	cubeKillAt := make(map[packet.NodeID]sim.Time)
	for _, ev := range evs {
		switch ev.Kind {
		case EvKillLink:
			if linkDown[ev.Edge] {
				return nil, fmt.Errorf("fault: edge %d killed at %v while already down (repair it first)",
					ev.Edge, ev.At)
			}
			linkDown[ev.Edge] = true
			linkKillAt[ev.Edge] = ev.At
		case EvRepairLink:
			if !linkDown[ev.Edge] {
				return nil, fmt.Errorf("fault: repair of edge %d at %v, which is not down (no earlier kill)",
					ev.Edge, ev.Start)
			}
			if ev.Start <= linkKillAt[ev.Edge] {
				return nil, fmt.Errorf("fault: repair of edge %d at %v, at or before its kill at %v",
					ev.Edge, ev.Start, linkKillAt[ev.Edge])
			}
			linkDown[ev.Edge] = false
		case EvKillCube:
			if cubeDown[ev.Node] {
				return nil, fmt.Errorf("fault: cube %d killed at %v while already dead (repair it first)",
					ev.Node, ev.At)
			}
			cubeDown[ev.Node] = true
			cubeKillAt[ev.Node] = ev.At
		case EvRepairCube:
			if !cubeDown[ev.Node] {
				return nil, fmt.Errorf("fault: repair of cube %d at %v, which is not dead (no earlier kill)",
					ev.Node, ev.At)
			}
			if ev.At <= cubeKillAt[ev.Node] {
				return nil, fmt.Errorf("fault: repair of cube %d at %v, at or before its kill at %v",
					ev.Node, ev.At, cubeKillAt[ev.Node])
			}
			cubeDown[ev.Node] = false
		}
	}
	return evs, nil
}

// LinkFault is the per-direction error model a link.Direction consults
// on every transmission. Nil disables error injection entirely (the
// link hot path then schedules exactly the fault-free event sequence).
type LinkFault struct {
	rng *sim.Rand
	ber float64
	// pErr caches the per-packet error probability by packet size; a
	// simulation only ever sees two sizes (control and data flits).
	pErr map[int]float64

	// MaxRetries and Backoff parameterize the sender's retry buffer;
	// see Config.
	MaxRetries int
	Backoff    sim.Time
}

// LinkFault builds the error model for one direction of one edge
// (dir 0 is A->B, 1 is B->A), or nil when LinkBER is zero. c must
// already carry defaults (WithDefaults).
func (c *Config) LinkFault(edge, dir int) *LinkFault {
	if c.LinkBER <= 0 {
		return nil
	}
	return NewLinkFault(streamSeed(c.Seed, edge, dir), c.LinkBER, c.MaxRetries, c.RetryBackoff)
}

// NewLinkFault builds a standalone error model (exported for tests and
// custom wiring).
func NewLinkFault(seed uint64, ber float64, maxRetries int, backoff sim.Time) *LinkFault {
	return &LinkFault{
		rng:        sim.NewRand(seed),
		ber:        ber,
		pErr:       make(map[int]float64, 2),
		MaxRetries: maxRetries,
		Backoff:    backoff,
	}
}

// streamSeed decorrelates per-direction streams from the scenario seed
// with a splitmix-style odd-multiplier jump; sim.NewRand further
// whitens it.
func streamSeed(seed uint64, edge, dir int) uint64 {
	return seed + (uint64(edge)*2+uint64(dir)+1)*0x9e3779b97f4a7c15
}

// Corrupt draws whether a transmission of the given size fails its CRC
// check: p = 1 - (1-BER)^bits.
func (f *LinkFault) Corrupt(bits int) bool {
	p, ok := f.pErr[bits]
	if !ok {
		p = 1 - math.Pow(1-f.ber, float64(bits))
		f.pErr[bits] = p
	}
	return f.rng.Float64() < p
}
