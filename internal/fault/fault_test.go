package fault

import (
	"reflect"
	"testing"

	"memnet/internal/sim"
)

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil Config reported enabled")
	}
	if (&Config{Seed: 42}).Enabled() {
		t.Error("seed alone should not enable the fault layer")
	}
	cases := []Config{
		{LinkBER: 1e-6},
		{KillLinks: []LinkKill{{Edge: 0, At: 1}}},
		{KillCubes: []CubeKill{{Node: 3, At: 1}}},
		{LaneFails: []LaneFail{{Edge: 2, At: 1}}},
		{Watchdog: true},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: %+v not enabled", i, c)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Seed != 1 {
		t.Errorf("default seed = %d, want 1", c.Seed)
	}
	if c.RetryBackoff != 8*sim.Nanosecond {
		t.Errorf("default backoff = %v", c.RetryBackoff)
	}
	if c.WatchdogInterval != 50*sim.Microsecond || c.WatchdogStale != 4 {
		t.Errorf("default watchdog = %v x%d", c.WatchdogInterval, c.WatchdogStale)
	}
	// Explicit values survive.
	c = Config{Seed: 9, RetryBackoff: sim.Nanosecond, WatchdogInterval: sim.Microsecond, WatchdogStale: 2}.WithDefaults()
	if c.Seed != 9 || c.RetryBackoff != sim.Nanosecond || c.WatchdogInterval != sim.Microsecond || c.WatchdogStale != 2 {
		t.Errorf("defaults clobbered explicit values: %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{LinkBER: -0.1},
		{LinkBER: 1.5},
		{MaxRetries: -1},
		{RetryBackoff: -1},
		{WatchdogStale: -1},
		{KillLinks: []LinkKill{{Edge: -1, At: 0}}},
		{KillLinks: []LinkKill{{Edge: 0, At: -5}}},
		{KillCubes: []CubeKill{{Node: 0, At: 1}}}, // host is not killable
		{LaneFails: []LaneFail{{Edge: -2, At: 0}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
	ok := Config{
		LinkBER:   1e-4,
		KillLinks: []LinkKill{{Edge: 3, At: sim.Microsecond}},
		KillCubes: []CubeKill{{Node: 5, At: 2 * sim.Microsecond, Full: true}},
		LaneFails: []LaneFail{{Edge: 1, At: sim.Nanosecond}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := Config{
		KillLinks: []LinkKill{{Edge: 1, At: 300}, {Edge: 2, At: 100}},
		KillCubes: []CubeKill{{Node: 4, At: 100}},
		LaneFails: []LaneFail{{Edge: 0, At: 50}},
	}
	evs := c.Schedule()
	want := []Event{
		{At: 50, Kind: EvLaneFail, Edge: 0},
		{At: 100, Kind: EvKillLink, Edge: 2},
		{At: 100, Kind: EvKillCube, Node: 4},
		{At: 300, Kind: EvKillLink, Edge: 1},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Errorf("schedule:\n got %+v\nwant %+v", evs, want)
	}
}

func TestLinkFaultNilWhenDisabled(t *testing.T) {
	c := Config{}.WithDefaults()
	if f := c.LinkFault(0, 0); f != nil {
		t.Errorf("BER=0 produced a LinkFault: %+v", f)
	}
}

// TestCorruptDeterministic: the same (seed, edge, dir) stream replays the
// same draw sequence, and distinct directions draw distinct sequences.
func TestCorruptDeterministic(t *testing.T) {
	c := Config{Seed: 7, LinkBER: 0.01}.WithDefaults()
	a1, a2, b := c.LinkFault(3, 0), c.LinkFault(3, 0), c.LinkFault(3, 1)
	const n = 4096
	var sameAA, sameAB int
	for i := 0; i < n; i++ {
		x, y, z := a1.Corrupt(640), a2.Corrupt(640), b.Corrupt(640)
		if x == y {
			sameAA++
		}
		if x == z {
			sameAB++
		}
	}
	if sameAA != n {
		t.Errorf("identical streams diverged: %d/%d draws equal", sameAA, n)
	}
	if sameAB == n {
		t.Error("distinct directions produced identical draw sequences")
	}
}

// TestCorruptRate: with BER b over k bits, packets corrupt at roughly
// p = 1-(1-b)^k. Sanity-check the empirical rate within loose bounds.
func TestCorruptRate(t *testing.T) {
	f := NewLinkFault(99, 1e-4, 0, sim.Nanosecond)
	const n, bits = 200000, 640
	hits := 0
	for i := 0; i < n; i++ {
		if f.Corrupt(bits) {
			hits++
		}
	}
	// p ≈ 0.0620; accept [0.05, 0.075].
	rate := float64(hits) / n
	if rate < 0.05 || rate > 0.075 {
		t.Errorf("corruption rate %v, want ≈0.062", rate)
	}
}

func TestCorruptExtremes(t *testing.T) {
	never := NewLinkFault(1, 0, 0, 0)
	always := NewLinkFault(1, 1, 0, 0)
	for i := 0; i < 100; i++ {
		if never.Corrupt(640) {
			t.Fatal("BER=0 corrupted a packet")
		}
		if !always.Corrupt(640) {
			t.Fatal("BER=1 passed a packet")
		}
	}
}
