package fault

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/sim"
)

const ns = sim.Nanosecond

// TestBuildRejects: every inconsistent fault/repair timeline is caught
// at Build time, before the schedule reaches the simulator.
func TestBuildRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{
			name: "link repair without kill",
			cfg:  Config{RepairLinks: []LinkRepair{{Edge: 2, At: 100 * ns}}},
			want: "not down",
		},
		{
			name: "cube repair without kill",
			cfg:  Config{RepairCubes: []CubeRepair{{Node: 3, At: 100 * ns}}},
			want: "not dead",
		},
		{
			name: "link repair before kill",
			cfg: Config{
				KillLinks:   []LinkKill{{Edge: 1, At: 500 * ns}},
				RepairLinks: []LinkRepair{{Edge: 1, At: 100 * ns}},
			},
			want: "not down",
		},
		{
			name: "link repair at kill instant",
			cfg: Config{
				KillLinks:   []LinkKill{{Edge: 1, At: 500 * ns}},
				RepairLinks: []LinkRepair{{Edge: 1, At: 500 * ns}},
			},
			want: "at or before its kill",
		},
		{
			name: "cube repair at kill instant",
			cfg: Config{
				KillCubes:   []CubeKill{{Node: 4, At: 500 * ns}},
				RepairCubes: []CubeRepair{{Node: 4, At: 500 * ns}},
			},
			want: "at or before its kill",
		},
		{
			name: "double link kill without repair",
			cfg:  Config{KillLinks: []LinkKill{{Edge: 1, At: 100 * ns}, {Edge: 1, At: 200 * ns}}},
			want: "already down",
		},
		{
			name: "double cube kill without repair",
			cfg:  Config{KillCubes: []CubeKill{{Node: 3, At: 100 * ns}, {Node: 3, At: 200 * ns}}},
			want: "already dead",
		},
		{
			name: "re-kill inside the retraining window",
			cfg: Config{
				// Repair lands at 200ns, retrains until 400ns; the 300ns
				// kill hits a link that is still retraining (= down).
				KillLinks:   []LinkKill{{Edge: 0, At: 100 * ns}, {Edge: 0, At: 300 * ns}},
				RepairLinks: []LinkRepair{{Edge: 0, At: 200 * ns}},
			},
			want: "already down",
		},
		{
			name: "overlapping flap windows",
			cfg: Config{LaneFlaps: []LaneFlap{
				{Edge: 2, Down: 100 * ns, Up: 500 * ns},
				{Edge: 2, Down: 300 * ns, Up: 700 * ns},
			}},
			want: "overlapping lane flaps",
		},
		{
			name: "touching flap windows",
			cfg: Config{LaneFlaps: []LaneFlap{
				{Edge: 2, Down: 100 * ns, Up: 300 * ns},
				{Edge: 2, Down: 300 * ns, Up: 500 * ns},
			}},
			want: "overlapping lane flaps",
		},
		{
			name: "flap and kill on one edge",
			cfg: Config{
				KillLinks: []LinkKill{{Edge: 2, At: 700 * ns}},
				LaneFlaps: []LaneFlap{{Edge: 2, Down: 100 * ns, Up: 300 * ns}},
			},
			want: "both a kill and a lane flap",
		},
		{
			name: "flap and permanent lane failure on one edge",
			cfg: Config{
				LaneFails: []LaneFail{{Edge: 2, At: 700 * ns}},
				LaneFlaps: []LaneFlap{{Edge: 2, Down: 100 * ns, Up: 300 * ns}},
			},
			want: "permanent lane failure and a lane flap",
		},
		{
			name: "link repair would heal a permanent lane failure",
			cfg: Config{
				KillLinks:   []LinkKill{{Edge: 2, At: 200 * ns}},
				LaneFails:   []LaneFail{{Edge: 2, At: 100 * ns}},
				RepairLinks: []LinkRepair{{Edge: 2, At: 500 * ns}},
			},
			want: "permanent lane failure and a link repair",
		},
		{
			name: "inverted flap window",
			cfg:  Config{LaneFlaps: []LaneFlap{{Edge: 2, Down: 300 * ns, Up: 100 * ns}}},
			want: "at or before its start",
		},
		{
			name: "negative repair time",
			cfg:  Config{RepairLinks: []LinkRepair{{Edge: 2, At: -1}}},
			want: "invalid link repair",
		},
		{
			name: "host cube repair",
			cfg:  Config{RepairCubes: []CubeRepair{{Node: 0, At: 100 * ns}}},
			want: "invalid cube repair",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.WithDefaults()
			_, err := cfg.Build()
			if err == nil {
				t.Fatalf("Build accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildValidTimeline: a kill/repair/re-kill cycle on one target is
// legal, and the merged schedule shifts link-repair events to their
// effective link-up instant (Start + RetrainWindow).
func TestBuildValidTimeline(t *testing.T) {
	cfg := Config{
		KillLinks:   []LinkKill{{Edge: 0, At: 100 * ns}, {Edge: 0, At: 2000 * ns}},
		RepairLinks: []LinkRepair{{Edge: 0, At: 500 * ns}, {Edge: 0, At: 3000 * ns}},
		KillCubes:   []CubeKill{{Node: 3, At: 200 * ns}},
		RepairCubes: []CubeRepair{{Node: 3, At: 600 * ns}},
		LaneFlaps:   []LaneFlap{{Edge: 5, Down: 100 * ns, Up: 300 * ns}, {Edge: 5, Down: 400 * ns, Up: 700 * ns}},
	}
	withDefaults := cfg.WithDefaults()
	evs, err := withDefaults.Build()
	if err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10: %+v", len(evs), evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("schedule out of order at %d: %+v", i, evs)
		}
	}
	for _, ev := range evs {
		if ev.Kind != EvRepairLink {
			continue
		}
		if ev.At != ev.Start+withDefaults.RetrainWindow {
			t.Errorf("repair event at %v, want Start %v + window %v",
				ev.At, ev.Start, withDefaults.RetrainWindow)
		}
	}
}

// TestScheduleRepairOrdering: same-instant fault and repair events sort
// faults first, so Build sees the ambiguous pair as a kill-while-down.
func TestScheduleRepairOrdering(t *testing.T) {
	cfg := Config{
		KillLinks:   []LinkKill{{Edge: 1, At: 100 * ns}},
		RepairLinks: []LinkRepair{{Edge: 1, At: 400 * ns}},
		KillCubes:   []CubeKill{{Node: 2, At: 500 * ns}},
		RepairCubes: []CubeRepair{{Node: 2, At: 900 * ns}},
		LaneFlaps:   []LaneFlap{{Edge: 0, Down: 100 * ns, Up: 900 * ns}},
	}
	withDefaults := cfg.WithDefaults()
	evs := withDefaults.Schedule()
	kinds := make([]EventKind, len(evs))
	for i, ev := range evs {
		kinds[i] = ev.Kind
	}
	want := []EventKind{
		EvKillLink, EvLaneFail, // both at 100ns, fault declaration order
		EvKillCube,                // 500ns
		EvRepairLink,              // 400ns + 200ns window = 600ns
		EvRepairCube, EvLaneRepair, // both at 900ns
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("schedule kinds %v, want %v (events %+v)", kinds, want, evs)
	}
}
