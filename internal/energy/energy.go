// Package energy implements the pJ/bit dynamic-energy accounting of
// Section 5: every link hop costs 5 pJ/bit, DRAM array accesses cost
// 12 pJ/bit, and PCM-based NVM costs 12 pJ/bit to read but 120 pJ/bit
// (10x) to write. Static energy is excluded, as in the paper.
package energy

import "memnet/internal/config"

// Meter accumulates dynamic energy for one simulated memory network.
// The zero value is ready to use with zero coefficients; construct with
// NewMeter to use a configuration's constants.
type Meter struct {
	coef config.Energy

	networkBitHops uint64
	dramReadBits   uint64
	dramWriteBits  uint64
	nvmReadBits    uint64
	nvmWriteBits   uint64
}

// NewMeter returns a meter using the given coefficients.
func NewMeter(coef config.Energy) *Meter { return &Meter{coef: coef} }

// Hop records a packet of the given size traversing one link.
func (m *Meter) Hop(bits int) { m.networkBitHops += uint64(bits) }

// Access records a memory-array access of the given technology and
// direction moving the given number of bits.
func (m *Meter) Access(tech config.MemTech, write bool, bits int) {
	b := uint64(bits)
	switch {
	case tech == config.DRAM && !write:
		m.dramReadBits += b
	case tech == config.DRAM && write:
		m.dramWriteBits += b
	case tech == config.NVM && !write:
		m.nvmReadBits += b
	default:
		m.nvmWriteBits += b
	}
}

// Breakdown is a report of accumulated energy in picojoules.
type Breakdown struct {
	NetworkPJ float64
	ReadPJ    float64
	WritePJ   float64
}

// TotalPJ returns the sum of all components.
func (b Breakdown) TotalPJ() float64 { return b.NetworkPJ + b.ReadPJ + b.WritePJ }

// Report computes the energy breakdown from the counters.
func (m *Meter) Report() Breakdown {
	return Breakdown{
		NetworkPJ: float64(m.networkBitHops) * m.coef.NetworkPJPerBitHop,
		ReadPJ: float64(m.dramReadBits)*m.coef.DRAMReadPJPerBit +
			float64(m.nvmReadBits)*m.coef.NVMReadPJPerBit,
		WritePJ: float64(m.dramWriteBits)*m.coef.DRAMWritePJPerBit +
			float64(m.nvmWriteBits)*m.coef.NVMWritePJPerBit,
	}
}

// BitHops reports the raw network bit-hop count (for tests).
func (m *Meter) BitHops() uint64 { return m.networkBitHops }

// Add merges another meter's counters into m (used to aggregate the
// identical per-port networks into a system total).
func (m *Meter) Add(o *Meter) {
	m.networkBitHops += o.networkBitHops
	m.dramReadBits += o.dramReadBits
	m.dramWriteBits += o.dramWriteBits
	m.nvmReadBits += o.nvmReadBits
	m.nvmWriteBits += o.nvmWriteBits
}
