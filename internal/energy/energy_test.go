package energy

import (
	"testing"

	"memnet/internal/config"
)

func TestAccounting(t *testing.T) {
	m := NewMeter(config.Default().Energy)
	m.Hop(640)
	m.Hop(128)
	m.Access(config.DRAM, false, 512)
	m.Access(config.DRAM, true, 512)
	m.Access(config.NVM, false, 512)
	m.Access(config.NVM, true, 512)

	r := m.Report()
	if r.NetworkPJ != float64(768)*5 {
		t.Fatalf("network %v", r.NetworkPJ)
	}
	if r.ReadPJ != 512*12+512*12 {
		t.Fatalf("read %v", r.ReadPJ)
	}
	if r.WritePJ != 512*12+512*120 {
		t.Fatalf("write %v", r.WritePJ)
	}
	if r.TotalPJ() != r.NetworkPJ+r.ReadPJ+r.WritePJ {
		t.Fatal("total")
	}
	if m.BitHops() != 768 {
		t.Fatalf("bithops %d", m.BitHops())
	}
}

func TestNVMWriteIs10x(t *testing.T) {
	m := NewMeter(config.Default().Energy)
	m.Access(config.NVM, true, 100)
	n := NewMeter(config.Default().Energy)
	n.Access(config.NVM, false, 100)
	if m.Report().WritePJ != 10*n.Report().ReadPJ {
		t.Fatal("NVM write should cost 10x its read")
	}
}

func TestAdd(t *testing.T) {
	a := NewMeter(config.Default().Energy)
	a.Hop(100)
	a.Access(config.DRAM, false, 64)
	b := NewMeter(config.Default().Energy)
	b.Hop(50)
	b.Access(config.NVM, true, 64)
	a.Add(b)
	r := a.Report()
	if r.NetworkPJ != 150*5 {
		t.Fatalf("merged network %v", r.NetworkPJ)
	}
	if r.WritePJ != 64*120 {
		t.Fatalf("merged write %v", r.WritePJ)
	}
}

func TestZeroMeter(t *testing.T) {
	var m Meter
	m.Hop(1000)
	if m.Report().TotalPJ() != 0 {
		t.Fatal("zero coefficients must yield zero energy")
	}
}
