package router

import (
	"testing"

	"memnet/internal/arb"
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// twoPortRouter builds a router with two synthetic neighbors. Feed
// functions inject packets as if arriving from a neighbor; sinks record
// what leaves toward each neighbor.
type twoPortRouter struct {
	eng   *sim.Engine
	r     *Router
	feed  [2]*link.Direction // neighbor -> router
	sunk  [2][]*packet.Packet
	toNbr [2]*link.Direction // router -> neighbor
}

func newTwoPort(t *testing.T, policy arb.Policy, switchBps int64) *twoPortRouter {
	t.Helper()
	eng := sim.NewEngine()
	h := &twoPortRouter{eng: eng}
	h.r = New(eng, 1, policy, switchBps)
	cfg := link.Config{BandwidthBps: 240e9, SerDesLatency: sim.Nanosecond,
		QueueDepth: 4, Credits: 4, CountHop: true}
	for i := 0; i < 2; i++ {
		i := i
		h.feed[i] = link.New(eng, cfg, nil)
		h.toNbr[i] = link.New(eng, cfg, nil)
		buf := link.NewBuffer(4, h.feed[i].ReturnCredit)
		idx := h.r.AttachPort(buf, h.toNbr[i])
		h.feed[i].SetDeliver(h.r.Deliver(idx))
		h.toNbr[i].SetDeliver(func(p *packet.Packet) {
			h.sunk[i] = append(h.sunk[i], p)
			h.toNbr[i].ReturnCredit(packet.VCOf(p.Kind))
		})
	}
	return h
}

func TestForwarding(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	// Route everything out port 1.
	h.r.SetRoute(func(p *packet.Packet) int { return 1 })
	p := &packet.Packet{ID: 1, Kind: packet.ReadReq, Dst: 9}
	h.feed[0].Send(p)
	h.eng.Run()
	if len(h.sunk[1]) != 1 || h.sunk[1][0] != p {
		t.Fatal("packet not forwarded to port 1")
	}
	if len(h.sunk[0]) != 0 {
		t.Fatal("packet leaked to port 0")
	}
	if h.r.Forwarded[packet.VCRequest] != 1 {
		t.Fatal("forward not counted")
	}
	if p.EnterPort != 0 {
		t.Fatalf("EnterPort = %d", p.EnterPort)
	}
	if p.Hops != 2 { // feed hop + outbound hop
		t.Fatalf("hops = %d", p.Hops)
	}
}

func TestResponsesBeforeRequests(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	h.r.SetRoute(func(p *packet.Packet) int { return 1 })
	// Two requests and a response arrive back-to-back from port 0; the
	// response must be forwarded first even though it arrived last
	// (they accumulate while the first request serializes outbound).
	h.feed[0].Send(&packet.Packet{ID: 1, Kind: packet.WriteReq})
	h.feed[0].Send(&packet.Packet{ID: 2, Kind: packet.WriteReq})
	h.feed[0].Send(&packet.Packet{ID: 3, Kind: packet.ReadResp})
	h.eng.Run()
	if len(h.sunk[1]) != 3 {
		t.Fatalf("sunk %d", len(h.sunk[1]))
	}
	// The response (ID 3) should not be last.
	if h.sunk[1][2].ID == 3 {
		t.Fatalf("response forwarded last: %v", h.sunk[1])
	}
}

func TestCrossbarOccupancy(t *testing.T) {
	// A very slow crossbar (1 Gbps) makes switch traversal dominate:
	// two 128-bit packets need 128ns each of crossbar time.
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 1e9)
	h.r.SetRoute(func(p *packet.Packet) int { return 1 })
	h.feed[0].Send(&packet.Packet{ID: 1, Kind: packet.ReadReq})
	h.feed[0].Send(&packet.Packet{ID: 2, Kind: packet.ReadReq})
	h.eng.Run()
	if len(h.sunk[1]) != 2 {
		t.Fatalf("sunk %d", len(h.sunk[1]))
	}
	// With the crossbar serializing at 128ns per packet, the two
	// deliveries must be at least that far apart (link serialization at
	// 240Gbps is negligible by comparison).
	// Find arrival times via the engine clock history: compare via a
	// separate run is overkill — assert total runtime instead.
	if h.eng.Now() < 256*sim.Nanosecond {
		t.Fatalf("finished at %v; crossbar not modeled", h.eng.Now())
	}
}

func TestIdealSwitchWhenZero(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	h.r.SetRoute(func(p *packet.Packet) int { return 1 })
	for i := 0; i < 4; i++ {
		h.feed[0].Send(&packet.Packet{ID: uint64(i), Kind: packet.ReadReq})
	}
	h.eng.Run()
	// 4 control packets: bounded by link serialization only (~0.54ns
	// each) plus serdes; far under 10ns.
	if h.eng.Now() > 10*sim.Nanosecond {
		t.Fatalf("ideal switch too slow: %v", h.eng.Now())
	}
}

func TestContentionCounting(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	// Both inputs feed port... we need a third port to contend into.
	// Reuse the two-port harness: traffic from both ports routed to the
	// OTHER port would not contend. Instead route everything from both
	// ports out port 1: port 1's own feed is skipped (i == o), so only
	// port 0 candidates exist -> no contention. Use a 3-port router.
	eng := sim.NewEngine()
	r := New(eng, 1, arb.New(arb.RoundRobin, arb.Config{}), 0)
	feedCfg := link.Config{BandwidthBps: 240e9, SerDesLatency: sim.Nanosecond,
		QueueDepth: 16, Credits: 4, CountHop: true}
	outCfg := link.Config{BandwidthBps: 24e9, SerDesLatency: sim.Nanosecond,
		QueueDepth: 1, Credits: 4, CountHop: true}
	var feeds [3]*link.Direction
	var outs [3]*link.Direction
	for i := 0; i < 3; i++ {
		i := i
		feeds[i] = link.New(eng, feedCfg, nil)
		outs[i] = link.New(eng, outCfg, nil)
		buf := link.NewBuffer(4, feeds[i].ReturnCredit)
		idx := r.AttachPort(buf, outs[i])
		feeds[i].SetDeliver(r.Deliver(idx))
		outs[i].SetDeliver(func(p *packet.Packet) {
			outs[i].ReturnCredit(packet.VCOf(p.Kind))
		})
	}
	r.SetRoute(func(p *packet.Packet) int { return 2 })
	// Saturate from ports 0 and 1 toward port 2 (slow 24Gbps link, depth-1
	// queue) so heads coexist.
	for i := 0; i < 8; i++ {
		feeds[0].Send(&packet.Packet{ID: uint64(i), Kind: packet.ReadResp})
		feeds[1].Send(&packet.Packet{ID: uint64(100 + i), Kind: packet.ReadResp})
	}
	eng.Run()
	if r.Contended == 0 {
		t.Fatal("no contention observed")
	}
	if r.TotalInputWait() <= 0 {
		t.Fatal("input wait should accumulate under contention")
	}
	_ = h
}

func TestMissingRoutePanics(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("sweep without route must panic")
		}
	}()
	h.feed[0].Send(&packet.Packet{ID: 1, Kind: packet.ReadReq})
	h.eng.Run()
}

// TestReinjectReroutes: a packet salvaged off a dead link leaves through
// whatever port the route table picks, counted in Rerouted.
func TestReinjectReroutes(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	h.r.SetRoute(func(p *packet.Packet) int { return 1 })
	p := &packet.Packet{ID: 1, Kind: packet.ReadReq, Src: 0, Dst: 2}
	h.r.Reinject(p)
	if h.r.RerouteBacklog() != 1 {
		t.Fatalf("backlog %d before sweep, want 1", h.r.RerouteBacklog())
	}
	h.eng.Run()
	if len(h.sunk[1]) != 1 || h.sunk[1][0] != p {
		t.Fatalf("reinjected packet not rerouted out port 1: %v", h.sunk)
	}
	if h.r.Rerouted != 1 || h.r.RerouteBacklog() != 0 {
		t.Fatalf("Rerouted=%d backlog=%d, want 1/0", h.r.Rerouted, h.r.RerouteBacklog())
	}
}

// TestReinjectWaitsForSpace: with the chosen output failed, the salvaged
// packet waits in the side queue instead of being dropped or panicking.
func TestReinjectWaitsForSpace(t *testing.T) {
	h := newTwoPort(t, arb.New(arb.RoundRobin, arb.Config{}), 0)
	routeTo := 1
	h.r.SetRoute(func(p *packet.Packet) int { return routeTo })
	h.toNbr[1].Fail(func(*packet.Packet) {})
	p := &packet.Packet{ID: 1, Kind: packet.ReadReq, Src: 0, Dst: 2}
	h.r.Reinject(p)
	h.eng.Run()
	if h.r.RerouteBacklog() != 1 || h.r.Rerouted != 0 {
		t.Fatalf("packet should wait: backlog=%d rerouted=%d", h.r.RerouteBacklog(), h.r.Rerouted)
	}
	// Route table swap (as core does after a kill) frees it via port 0.
	routeTo = 0
	h.r.Kick()
	h.eng.Run()
	if len(h.sunk[0]) != 1 || h.r.Rerouted != 1 {
		t.Fatalf("packet not released after table swap: %v", h.sunk)
	}
}
