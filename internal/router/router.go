// Package router implements the switch on a memory cube's logic die (and
// on a MetaCube's interface chip): input-buffered ports, per-output
// arbitration over the input queues, and table-driven routing.
//
// The arbitration point here is exactly where the paper's fairness
// analysis applies: each output port independently selects among the
// input queues holding a head packet bound for it. With the baseline
// locally-fair round-robin, a cube whose four local vault queues compete
// against a single upstream queue services local traffic 80% of the time
// — the "parking lot problem" (§3.2) — which the distance-based policy
// (§4.1) corrects.
package router

import (
	"fmt"

	"memnet/internal/arb"
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// RouteFunc returns the output-port index a packet should leave through
// at this router. It encapsulates the topology's next-hop tables, the
// read/write path differentiation of the skip list, and local-quadrant
// delivery for packets that have reached their destination cube.
type RouteFunc func(p *packet.Packet) int

// Router is an input-buffered switch with N ports. Port i consists of an
// input buffer (filled by the neighbor's link direction toward us) and
// an output direction (toward the same neighbor). "Neighbors" include
// the cube's own vault quadrants, which occupy the highest port indices.
//
// The router models the cube's centralized switch (§5: "each memory
// package contains a centralized switch") with finite internal
// bandwidth: every packet movement from an input buffer to an output
// queue occupies the crossbar for its serialization time at the switch
// rate. On heavily-transited cubes (every cube of a chain, the root of
// any topology) the crossbar is the contention point where response
// priority delays requests and where the arbitration policy decides who
// ages in the input queues.
type Router struct {
	eng    *sim.Engine
	node   packet.NodeID
	route  RouteFunc
	policy arb.Policy

	in  []*link.Buffer
	out []*link.Direction

	crossbar   sim.Resource
	switchBps  int64
	retryArmed bool
	sweepStart int

	sweepPending bool
	// sweepFn and retryFn are bound once at construction; Kick and
	// armRetry fire constantly on the forwarding path, and a pre-built
	// handler keeps each of those schedules allocation-free.
	sweepFn sim.Handler
	retryFn sim.Handler
	// reroutes holds packets handed back by a failed output link
	// (link.Direction.Fail drains into Reinject); they re-enter the
	// network through the recomputed route tables at the next sweep.
	reroutes []*packet.Packet

	// Forwarded counts packets moved input->output, per VC.
	Forwarded [packet.NumVCs]uint64
	// Contended counts arbitration decisions with more than one
	// candidate input (where the policy actually matters).
	Contended uint64
	// Rerouted counts packets salvaged off a dead link and re-sent on a
	// route-around path.
	Rerouted uint64

	// GrantCounts, when non-nil, counts arbitration grants per input
	// port (telemetry; sized to NumPorts by the observer that arms it).
	// It exposes which sources actually win the crossbar — the raw
	// signal behind the paper's parking-lot unfairness.
	GrantCounts []uint64

	// OnForward, when non-nil, observes every arbitration grant with the
	// granted packet, its input port, and its input-buffer residence
	// (arbitration wait plus crossbar contention). The span tracer arms
	// it; nil keeps the drain loop hook-free.
	OnForward func(p *packet.Packet, port int, wait sim.Time)
}

// New creates a router shell; ports are attached afterwards with
// AttachPort. switchBps is the centralized switch's internal bandwidth
// (0 disables crossbar modeling, giving an ideal switch).
func New(eng *sim.Engine, node packet.NodeID, policy arb.Policy, switchBps int64) *Router {
	r := &Router{eng: eng, node: node, policy: policy, switchBps: switchBps}
	r.sweepFn = func() {
		r.sweepPending = false
		r.sweep()
	}
	r.retryFn = func() {
		r.retryArmed = false
		r.sweep()
	}
	return r
}

// SetRoute installs the routing function. Must be called before traffic
// flows.
func (r *Router) SetRoute(fn RouteFunc) { r.route = fn }

// Node reports the router's node ID.
func (r *Router) Node() packet.NodeID { return r.node }

// NumPorts reports the attached port count.
func (r *Router) NumPorts() int { return len(r.in) }

// AttachPort adds a port and returns its index. in receives packets from
// the neighbor; out sends toward the neighbor. The router registers
// itself for out's space-available callbacks.
func (r *Router) AttachPort(in *link.Buffer, out *link.Direction) int {
	idx := len(r.in)
	r.in = append(r.in, in)
	r.out = append(r.out, out)
	out.SetOnSpace(func(packet.VC) { r.Kick() })
	return idx
}

// Deliver is the arrival entry point for port i; wire it as the
// neighbor direction's deliver callback.
func (r *Router) Deliver(i int) func(*packet.Packet) {
	return func(p *packet.Packet) {
		p.EnterPort = int8(i)
		r.in[i].Push(p, r.eng.Now())
		r.Kick()
	}
}

// InputBuffer exposes port i's input buffer (for wiring and stats).
func (r *Router) InputBuffer(i int) *link.Buffer { return r.in[i] }

// Output exposes port i's output direction (for wiring and stats).
func (r *Router) Output(i int) *link.Direction { return r.out[i] }

// Reinject hands the router a packet salvaged from a failed output link
// (or bounced off a dead neighbor). The packet waits in a side queue and
// leaves through whatever port the current route tables choose — which,
// after a fault swap, is the route-around path.
func (r *Router) Reinject(p *packet.Packet) {
	r.reroutes = append(r.reroutes, p)
	r.Kick()
}

// RerouteBacklog reports how many salvaged packets still await a free
// output (for the wedge diagnostic dump).
func (r *Router) RerouteBacklog() int { return len(r.reroutes) }

// Kick schedules a forwarding sweep at the current instant (idempotent
// per instant).
func (r *Router) Kick() {
	if r.sweepPending {
		return
	}
	r.sweepPending = true
	r.eng.Schedule(0, r.sweepFn)
}

// sweep moves as many packets as buffers, credits, crossbar bandwidth,
// and arbitration allow. All outputs' response traffic is considered
// before any request traffic, matching the deadlock-avoidance priority:
// under switch contention this is precisely what backs requests up
// behind responses (§3.2). The output scan order rotates between sweeps
// so no port is structurally favored within a priority class.
func (r *Router) sweep() {
	if r.route == nil {
		panic(fmt.Sprintf("router %d: no route function", r.node))
	}
	r.drainReroutes()
	n := len(r.out)
	for _, vc := range []packet.VC{packet.VCResponse, packet.VCRequest} {
		for k := 0; k < n; k++ {
			if !r.drain((r.sweepStart+k)%n, vc) {
				return // crossbar busy; retry armed
			}
		}
	}
	r.sweepStart++
}

// drain forwards packets from eligible input heads to output o, vc,
// until space, candidates, credits, or switch bandwidth run out. It
// returns false when the crossbar is busy (a retry has been armed).
func (r *Router) drain(o int, vc packet.VC) bool {
	var candidates []int
	for r.out[o].CanAccept(vc) {
		if r.switchBps > 0 && !r.crossbar.Idle(r.eng.Now()) {
			r.armRetry()
			return false
		}
		candidates = candidates[:0]
		for i, buf := range r.in {
			// The entry port is a legal candidate: shortest-path tables
			// never route a packet back out the port it entered, but after
			// a mid-run fault swap a packet caught traveling toward a dead
			// link must U-turn.
			head := buf.Head(vc)
			if head == nil {
				continue
			}
			if r.route(head) == o {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return true
		}
		if len(candidates) > 1 {
			r.Contended++
		}
		pick := r.policy.Pick(o, vc, candidates, func(i int) *packet.Packet {
			return r.in[i].Head(vc)
		})
		var since sim.Time
		if r.OnForward != nil {
			since = r.in[pick].HeadSince(vc)
		}
		p := r.in[pick].Pop(vc, r.eng.Now())
		r.Forwarded[vc]++
		if r.GrantCounts != nil {
			r.GrantCounts[pick]++
		}
		if r.OnForward != nil {
			r.OnForward(p, pick, r.eng.Now()-since)
		}
		if r.switchBps > 0 {
			r.crossbar.Reserve(r.eng.Now(), sim.BitTime(p.Kind.Bits(), r.switchBps))
		}
		r.out[o].Send(p)
	}
	return true
}

// drainReroutes re-sends salvaged packets through the current route
// tables, ahead of regular arbitration (they already paid their queuing
// dues on the dead link). Packets that find no output space stay queued;
// output OnSpace callbacks re-kick the sweep.
func (r *Router) drainReroutes() {
	if len(r.reroutes) == 0 {
		return
	}
	kept := r.reroutes[:0]
	for _, p := range r.reroutes {
		o := r.route(p)
		vc := packet.VCOf(p.Kind)
		if o >= 0 && r.out[o].CanAccept(vc) {
			r.Rerouted++
			r.out[o].Send(p)
		} else {
			kept = append(kept, p)
		}
	}
	r.reroutes = kept
}

// armRetry schedules a sweep for the instant the crossbar frees.
func (r *Router) armRetry() {
	if r.retryArmed {
		return
	}
	r.retryArmed = true
	r.eng.At(r.crossbar.FreeAt(), r.retryFn)
}

// TotalInputWait sums the input-buffer residency across ports — the
// per-router queuing metric of the §3.2 analysis.
func (r *Router) TotalInputWait() sim.Time {
	var t sim.Time
	for _, b := range r.in {
		t += b.TotalWait()
	}
	return t
}
