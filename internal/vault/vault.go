// Package vault implements a memory cube quadrant: the memory controller
// that fronts one quarter of the cube's banks. It pulls requests from the
// cube router, applies the intra-cube wrong-quadrant routing penalty,
// performs the bank access through the mem timing model, and formulates
// response packets back into the router — stalling (and therefore
// exerting backpressure into the network) when its inflight window or
// the response path fills, which is how NVM write occupancy propagates
// into network queuing in the paper's analysis (§5.2).
package vault

import (
	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/link"
	"memnet/internal/mem"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// AccessBits is the data moved per array access (64B), used for energy
// accounting.
const AccessBits = 64 * 8

// BankMap resolves a packet address to this quadrant's bank index and
// row.
type BankMap func(addr uint64) (bank int, row int64)

// ReturnDist computes the hop distance of the response path back to the
// packet's source; it is stamped into the response header for the
// distance-based arbitration downstream.
type ReturnDist func(p *packet.Packet) int

// Stats aggregates quadrant counters.
type Stats struct {
	Reads       uint64
	Writes      uint64
	WrongQuad   uint64
	QueueWait   sim.Time // request residency in the vault input queue
	ServiceTime sim.Time // pop -> response handoff
}

// Quadrant is one vault controller.
type Quadrant struct {
	eng   *sim.Engine
	tech  config.MemTech
	index int
	// extPorts is the owning cube's external-link count; quadrant q is
	// associated with external link q mod extPorts for the
	// wrong-quadrant penalty.
	extPorts int
	penalty  sim.Time

	banks   []*mem.Bank
	bankMap BankMap
	retDist ReturnDist
	meter   *energy.Meter

	in  *link.Buffer
	out *link.Direction

	maxInflight int
	inflight    int
	done        []*packet.Packet

	pumpPending bool
	// pumpFn and completeFn are bound once at construction so the
	// per-request hot path (kick per arrival, completion per bank access)
	// schedules without allocating closures.
	pumpFn     sim.Handler
	completeFn sim.ArgHandler
	stats      Stats

	// OnIssue, when non-nil, observes every bank issue with the request
	// packet and its vault input-queue wait (arrival to issue). The span
	// tracer arms it; nil keeps the issue path hook-free.
	OnIssue func(p *packet.Packet, wait sim.Time)
}

// Config bundles quadrant construction parameters.
type Config struct {
	Tech        config.MemTech
	Timing      config.MemTiming
	Index       int
	ExtPorts    int
	Penalty     sim.Time
	Banks       int
	MaxInflight int
	BankMap     BankMap
	ReturnDist  ReturnDist
	Meter       *energy.Meter
}

// New builds a quadrant with its banks. Refresh phases are staggered by
// bank index so a cube's banks do not refresh in lockstep.
func New(eng *sim.Engine, cfg Config) *Quadrant {
	q := &Quadrant{
		eng:         eng,
		tech:        cfg.Tech,
		index:       cfg.Index,
		extPorts:    cfg.ExtPorts,
		penalty:     cfg.Penalty,
		bankMap:     cfg.BankMap,
		retDist:     cfg.ReturnDist,
		meter:       cfg.Meter,
		maxInflight: cfg.MaxInflight,
	}
	if q.maxInflight <= 0 {
		q.maxInflight = 16
	}
	q.banks = make([]*mem.Bank, cfg.Banks)
	for i := range q.banks {
		offset := sim.Time(cfg.Index*cfg.Banks+i) * 97 * sim.Nanosecond
		q.banks[i] = mem.NewBank(cfg.Tech, cfg.Timing, offset)
	}
	q.pumpFn = func() {
		q.pumpPending = false
		q.pump()
	}
	q.completeFn = func(arg any) { q.complete(arg.(*packet.Packet)) }
	return q
}

// Attach wires the quadrant to its router-side connections: in delivers
// requests (the buffer fed by the router's output direction toward this
// quadrant) and out carries responses back into the router.
func (q *Quadrant) Attach(in *link.Buffer, out *link.Direction) {
	q.in = in
	q.out = out
	out.SetOnSpace(func(packet.VC) { q.kick() })
}

// Deliver is the arrival callback for the router->quadrant direction.
func (q *Quadrant) Deliver() func(*packet.Packet) {
	return func(p *packet.Packet) {
		p.ArrivedMem = q.eng.Now()
		q.in.Push(p, q.eng.Now())
		q.kick()
	}
}

// Tech reports the quadrant's memory technology.
func (q *Quadrant) Tech() config.MemTech { return q.tech }

// Stats returns a copy of the counters.
func (q *Quadrant) Stats() Stats { return q.stats }

// Inflight reports the current occupancy of the bank-access window
// (telemetry gauge).
func (q *Quadrant) Inflight() int { return q.inflight }

// QueueLen reports queued work at the vault: requests waiting for a
// window slot plus completed responses awaiting router space
// (telemetry gauge).
func (q *Quadrant) QueueLen() int {
	return q.in.Len(packet.VCRequest) + len(q.done)
}

// BankStats sums the per-bank counters.
func (q *Quadrant) BankStats() mem.BankStats {
	var s mem.BankStats
	for _, b := range q.banks {
		bs := b.Stats()
		s.Reads += bs.Reads
		s.Writes += bs.Writes
		s.RowHits += bs.RowHits
		s.RowMisses += bs.RowMisses
		s.RowConflicts += bs.RowConflicts
		s.Refreshes += bs.Refreshes
		s.BusyTime += bs.BusyTime
	}
	return s
}

func (q *Quadrant) kick() {
	if q.pumpPending {
		return
	}
	q.pumpPending = true
	q.eng.Schedule(0, q.pumpFn)
}

// pump advances both ends of the quadrant pipeline: emit completed
// responses while the router accepts them, and issue new bank accesses
// while the inflight window has room.
func (q *Quadrant) pump() {
	// Drain completions first so inflight slots free up.
	for len(q.done) > 0 && q.out.CanAccept(packet.VCResponse) {
		p := q.done[0]
		copy(q.done, q.done[1:])
		q.done = q.done[:len(q.done)-1]
		q.emit(p)
	}
	// Issue new accesses.
	for q.inflight < q.maxInflight && q.in.Len(packet.VCRequest) > 0 {
		p := q.in.Pop(packet.VCRequest, q.eng.Now())
		q.start(p)
	}
}

// start begins the bank access for a request.
func (q *Quadrant) start(p *packet.Packet) {
	now := q.eng.Now()
	q.stats.QueueWait += now - p.ArrivedMem
	if q.OnIssue != nil {
		q.OnIssue(p, now-p.ArrivedMem)
	}
	start := now
	if q.extPorts > 0 && int(p.EnterPort)%max(1, q.extPorts) != q.index%max(1, q.extPorts) {
		// The request entered the cube through a link belonging to a
		// different quadrant: 1 ns intra-cube re-route (§5).
		start += q.penalty
		q.stats.WrongQuad++
	}
	bank, row := q.bankMap(p.Addr)
	kind := mem.Read
	if p.Kind == packet.WriteReq {
		kind = mem.Write
		q.stats.Writes++
	} else {
		q.stats.Reads++
	}
	q.inflight++
	done := q.banks[bank].Access(start, row, kind)
	q.meter.Access(q.tech, kind == mem.Write, AccessBits)
	q.eng.AtArg(done, q.completeFn, p)
}

// complete converts the finished request into a response and emits it,
// or parks it when the response path is full.
func (q *Quadrant) complete(p *packet.Packet) {
	p.MakeResponse(q.retDist(p))
	if q.out.CanAccept(packet.VCResponse) && len(q.done) == 0 {
		q.emit(p)
	} else {
		q.done = append(q.done, p)
	}
	// Either way, see if new requests can issue (a slot freed only on
	// emit; pump also drains parked work when space appears).
	q.kick()
}

// emit hands a response to the router and frees the inflight slot.
func (q *Quadrant) emit(p *packet.Packet) {
	now := q.eng.Now()
	p.DepartedMem = now
	p.MemLatency = now - p.ArrivedMem
	q.stats.ServiceTime += now - p.ArrivedMem
	q.inflight--
	q.out.Send(p)
}
