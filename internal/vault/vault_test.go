package vault

import (
	"testing"

	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// harness wires a quadrant to synthetic router-side endpoints.
type harness struct {
	eng       *sim.Engine
	q         *Quadrant
	toQuad    *link.Direction
	fromQuad  *link.Direction
	responses []*packet.Packet
	meter     *energy.Meter
}

func newHarness(t *testing.T, tech config.MemTech, maxInflight int) *harness {
	t.Helper()
	eng := sim.NewEngine()
	sys := config.Default()
	h := &harness{eng: eng, meter: energy.NewMeter(sys.Energy)}

	intCfg := link.Config{
		BandwidthBps:  2 * sys.LinkBandwidthBps(),
		SerDesLatency: 0,
		QueueDepth:    8,
		Credits:       8,
	}
	h.toQuad = link.New(eng, intCfg, nil)
	h.fromQuad = link.New(eng, intCfg, nil)

	h.q = New(eng, Config{
		Tech:        tech,
		Timing:      sys.Timing(tech),
		Index:       1,
		ExtPorts:    4,
		Penalty:     sys.WrongQuadrantPenalty,
		Banks:       8,
		MaxInflight: maxInflight,
		BankMap: func(a uint64) (int, int64) {
			return int(a/64) % 8, int64(a / 64 / 8)
		},
		ReturnDist: func(p *packet.Packet) int { return 3 },
		Meter:      h.meter,
	})
	quadIn := link.NewBuffer(8, h.toQuad.ReturnCredit)
	h.q.Attach(quadIn, h.fromQuad)
	h.toQuad.SetDeliver(h.q.Deliver())

	// The "router side" consumes responses immediately.
	h.fromQuad.SetDeliver(func(p *packet.Packet) {
		h.responses = append(h.responses, p)
		h.fromQuad.ReturnCredit(packet.VCOf(p.Kind))
	})
	return h
}

func (h *harness) send(id uint64, kind packet.Kind, addr uint64, enterPort int8) {
	p := &packet.Packet{ID: id, Kind: kind, Src: packet.HostNode, Dst: 5,
		Addr: addr, EnterPort: enterPort, Injected: h.eng.Now()}
	h.toQuad.Send(p)
}

func TestReadRoundTrip(t *testing.T) {
	h := newHarness(t, config.DRAM, 4)
	h.send(1, packet.ReadReq, 0x40, 1) // right quadrant (index 1)
	h.eng.Run()
	if len(h.responses) != 1 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	r := h.responses[0]
	if r.Kind != packet.ReadResp {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Src != 5 || r.Dst != packet.HostNode {
		t.Fatal("response addressing wrong")
	}
	if r.Distance != 3 {
		t.Fatalf("return distance = %d", r.Distance)
	}
	if r.MemLatency <= 0 || r.DepartedMem <= r.ArrivedMem {
		t.Fatal("memory timestamps not set")
	}
	s := h.q.Stats()
	if s.Reads != 1 || s.Writes != 0 || s.WrongQuad != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestWrongQuadrantPenalty(t *testing.T) {
	right := newHarness(t, config.DRAM, 4)
	right.send(1, packet.ReadReq, 0x40, 1)
	right.eng.Run()

	wrong := newHarness(t, config.DRAM, 4)
	wrong.send(1, packet.ReadReq, 0x40, 2) // entered via another quadrant's link
	wrong.eng.Run()

	if wrong.q.Stats().WrongQuad != 1 {
		t.Fatal("wrong-quadrant access not counted")
	}
	d := wrong.responses[0].MemLatency - right.responses[0].MemLatency
	if d != sim.Nanosecond {
		t.Fatalf("penalty = %v, want 1ns", d)
	}
}

func TestWriteAck(t *testing.T) {
	h := newHarness(t, config.DRAM, 4)
	h.send(1, packet.WriteReq, 0x80, 1)
	h.eng.Run()
	if len(h.responses) != 1 || h.responses[0].Kind != packet.WriteAck {
		t.Fatal("write not acknowledged")
	}
	if h.q.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
	bs := h.q.BankStats()
	if bs.Writes != 1 {
		t.Fatalf("bank writes = %d", bs.Writes)
	}
}

func TestInflightWindowBackpressure(t *testing.T) {
	h := newHarness(t, config.DRAM, 2)
	// 6 reads to the same bank: they serialize at the bank; the window
	// of 2 plus queue must still complete all of them.
	for i := 0; i < 6; i++ {
		h.send(uint64(i+1), packet.ReadReq, 0x40, 1)
	}
	h.eng.Run()
	if len(h.responses) != 6 {
		t.Fatalf("responses = %d, want 6", len(h.responses))
	}
	// Same-bank accesses must be strictly serialized: response times
	// strictly increasing with at least a row-hit gap.
	for i := 1; i < 6; i++ {
		if h.responses[i].DepartedMem <= h.responses[i-1].DepartedMem {
			t.Fatal("bank accesses overlapped")
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	h := newHarness(t, config.NVM, 4)
	h.send(1, packet.ReadReq, 0x40, 1)
	h.send(2, packet.WriteReq, 0x1000, 1)
	h.eng.Run()
	rep := h.meter.Report()
	wantRead := float64(AccessBits) * 12   // NVM read 12 pJ/bit
	wantWrite := float64(AccessBits) * 120 // NVM write 120 pJ/bit
	if rep.ReadPJ != wantRead {
		t.Fatalf("read energy %v, want %v", rep.ReadPJ, wantRead)
	}
	if rep.WritePJ != wantWrite {
		t.Fatalf("write energy %v, want %v", rep.WritePJ, wantWrite)
	}
}

func TestNVMSlowerThanDRAM(t *testing.T) {
	d := newHarness(t, config.DRAM, 4)
	d.send(1, packet.ReadReq, 0x40, 1)
	d.eng.Run()
	n := newHarness(t, config.NVM, 4)
	n.send(1, packet.ReadReq, 0x40, 1)
	n.eng.Run()
	if n.responses[0].MemLatency <= d.responses[0].MemLatency {
		t.Fatalf("NVM read (%v) not slower than DRAM (%v)",
			n.responses[0].MemLatency, d.responses[0].MemLatency)
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	h := newHarness(t, config.DRAM, 1)
	for i := 0; i < 4; i++ {
		h.send(uint64(i+1), packet.ReadReq, uint64(i)*64, 1)
	}
	h.eng.Run()
	if h.q.Stats().QueueWait <= 0 {
		t.Fatal("queue wait should accumulate with a window of 1")
	}
	if h.q.Stats().ServiceTime <= 0 {
		t.Fatal("service time should accumulate")
	}
}
