// NDJSON encoding of span files: one header object on the first line
// (schema, run identity, sampling parameters), then one TxSpan object
// per line in completion order. Encoding uses encoding/json on fully
// ordered structs, so identical runs produce byte-identical files.

package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Header is the first line of a span file.
type Header struct {
	// Schema is the format version string (Schema).
	Schema string `json:"schema"`
	// Label names the simulated system configuration.
	Label string `json:"label,omitempty"`
	// Workload names the trace or synthetic pattern driving the run.
	Workload string `json:"workload,omitempty"`
	// Seed is the run seed the sampling phase derives from.
	Seed uint64 `json:"seed"`
	// Stride is the effective transaction-ID sampling stride.
	Stride uint64 `json:"stride"`
	// Spans counts the TxSpan lines that follow.
	Spans int `json:"spans"`
	// Dropped counts sampled transactions lost to the MaxSpans cap.
	Dropped uint64 `json:"dropped,omitempty"`
}

// segJSON is the wire form of Seg: the cause travels by name so span
// files stay readable and stable across Cause renumbering.
type segJSON struct {
	Cause string `json:"c"`
	Loc   string `json:"l"`
	VC    uint8  `json:"vc"`
	At    int64  `json:"at"`
	Dur   int64  `json:"d"`
}

// MarshalJSON encodes the segment with its cause spelled by name.
func (s Seg) MarshalJSON() ([]byte, error) {
	return json.Marshal(segJSON{
		Cause: s.Cause.String(), Loc: s.Loc, VC: uint8(s.VC),
		At: int64(s.At), Dur: int64(s.Dur),
	})
}

// UnmarshalJSON decodes a segment, rejecting unknown cause names.
func (s *Seg) UnmarshalJSON(b []byte) error {
	var w segJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	c, ok := CauseByName(w.Cause)
	if !ok {
		return fmt.Errorf("span: unknown cause %q", w.Cause)
	}
	*s = Seg{Cause: c, Loc: w.Loc, VC: packet.VC(w.VC), At: sim.Time(w.At), Dur: sim.Time(w.Dur)}
	return nil
}

// Write emits the NDJSON span file: hdr (with Schema and Spans filled
// in) followed by one line per span.
func Write(w io.Writer, hdr Header, spans []TxSpan) error {
	hdr.Schema = Schema
	hdr.Spans = len(spans)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses an NDJSON span file. Files produced by concatenating
// several runs (mnexp writes one block per simulated configuration) are
// accepted: every header line starts a new block, the first header is
// returned, and spans from all blocks are merged in file order.
func Read(r io.Reader) (Header, []TxSpan, error) {
	var (
		hdr     Header
		gotHdr  bool
		spans   []TxSpan
		scanner = bufio.NewScanner(r)
	)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		b := scanner.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return hdr, nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		if probe.Schema != "" {
			if probe.Schema != Schema {
				return hdr, nil, fmt.Errorf("span: line %d: unsupported schema %q (want %q)", line, probe.Schema, Schema)
			}
			if !gotHdr {
				if err := json.Unmarshal(b, &hdr); err != nil {
					return hdr, nil, fmt.Errorf("span: line %d: %w", line, err)
				}
				gotHdr = true
			}
			continue
		}
		var sp TxSpan
		if err := json.Unmarshal(b, &sp); err != nil {
			return hdr, nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := scanner.Err(); err != nil {
		return hdr, nil, err
	}
	if !gotHdr {
		return hdr, nil, fmt.Errorf("span: missing header line (schema %q)", Schema)
	}
	return hdr, spans, nil
}
