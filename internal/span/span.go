// Package span implements deterministic causal tracing: one span tree
// per sampled transaction, decomposing end-to-end latency into the
// enumerated causes the paper's figure analyses argue about — host
// window wait, per-hop link queueing / credit stall, serialization,
// SerDes traversal, retry backoff, router arbitration wait, and vault
// queue + service time.
//
// The recorder attaches to existing event boundaries through nil-checked
// accessor hooks (host inject, router grant, link ship, vault issue,
// host completion); it never schedules events of its own, so Results
// stay bit-identical with tracing on or off. Sampling is a pure
// function of the transaction ID and the run seed — no RNG state — so
// the same transactions are sampled on every rerun and at every shard
// count.
package span

import (
	"sort"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Schema versions the NDJSON span-file format. The first line of every
// span file is a header object carrying this string.
const Schema = "memnet/spans/v1"

// DefaultMaxSpans bounds retained spans when Config.MaxSpans is zero.
const DefaultMaxSpans = 1 << 16

// Config arms span tracing on a run. The zero value (a nil pointer in
// core.Params) disables tracing entirely.
type Config struct {
	// SampleStride samples one of every SampleStride transactions by ID,
	// phase-shifted by the run seed (ID % stride == seed % stride). Zero
	// or one samples every transaction.
	SampleStride uint64
	// MaxSpans caps the number of spans retained (live + completed);
	// transactions sampled past the cap are counted in Dropped. Zero
	// means DefaultMaxSpans.
	MaxSpans int
}

// Enabled reports whether the config arms tracing.
func (c *Config) Enabled() bool { return c != nil }

// Cause identifies one enumerated latency cause. The taxonomy covers a
// transaction's full path: host window wait, then per link traversal
// queue/retry/serialization/SerDes, router arbitration per hop, and
// vault queue + service at the destination.
type Cause uint8

const (
	// HostWindow is time between workload issue and network injection:
	// the host's outstanding-transaction window, coherence ordering, and
	// injection-port credit stalls.
	HostWindow Cause = iota
	// LinkQueue is time in a link direction's output queue, including
	// credit stalls waiting on the remote input buffer.
	LinkQueue
	// LinkRetry is retry-buffer residence: implicit-ack round trips plus
	// exponential backoff after CRC errors. Zero on fault-free links.
	LinkRetry
	// LinkSer is wire occupancy: bits / bandwidth.
	LinkSer
	// LinkSerDes is the fixed per-traversal SerDes latency.
	LinkSerDes
	// RouterArb is input-buffer residence at a router: arbitration wait
	// plus crossbar contention before the grant.
	RouterArb
	// VaultQueue is vault input-queue residence before bank issue.
	VaultQueue
	// VaultService is memory access time: bank service, row-hit or
	// row-miss timing, and any wrong-quadrant routing penalty.
	VaultService

	numCauses
)

// NumCauses is the number of enumerated causes.
const NumCauses = int(numCauses)

var causeNames = [NumCauses]string{
	"host.window", "link.queue", "link.retry", "link.ser",
	"link.serdes", "router.arb", "vault.queue", "vault.service",
}

// String returns the stable NDJSON name of the cause.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// CauseByName maps a stable NDJSON cause name back to its Cause, with
// ok=false for unknown names.
func CauseByName(name string) (Cause, bool) {
	for i, n := range causeNames {
		if n == name {
			return Cause(i), true
		}
	}
	return 0, false
}

// Seg is one attributed segment of a transaction's lifetime: Dur
// picoseconds starting at At, blamed on Cause at location Loc (an edge
// label like "1>2", a router "r3", a vault quadrant "v3.q1", or "host").
type Seg struct {
	Cause Cause     `json:"-"`
	Loc   string    `json:"l"`
	VC    packet.VC `json:"vc"`
	At    sim.Time  `json:"at"`
	Dur   sim.Time  `json:"d"`
}

// TxSpan is the completed span tree of one sampled transaction. Segs
// are ordered by start time (ties keep recording order).
type TxSpan struct {
	ID        uint64   `json:"id"`
	Kind      string   `json:"kind"` // request kind at injection
	Addr      uint64   `json:"addr"`
	Dst       int32    `json:"dst"`
	Injected  sim.Time `json:"inj"`
	Completed sim.Time `json:"done"`
	Segs      []Seg    `json:"segs"`
}

// Latency is the transaction's end-to-end network latency.
func (t *TxSpan) Latency() sim.Time { return t.Completed - t.Injected }

// slot is the in-flight recording state for one sampled transaction.
type slot struct {
	span      TxSpan
	vaultLoc  string
	vaultWait sim.Time
}

// Recorder collects spans for one run. All methods are safe on a nil
// receiver (tracing off) and on packets that were not sampled, so hooks
// can call unconditionally from hot paths at the cost of one nil check
// and one field test.
type Recorder struct {
	stride uint64
	offset uint64
	max    int

	slots  []slot
	free   []int32
	active int

	spans   []TxSpan
	dropped uint64
}

// NewRecorder builds a recorder from cfg for a run with the given seed.
func NewRecorder(cfg Config, seed uint64) *Recorder {
	stride := cfg.SampleStride
	if stride == 0 {
		stride = 1
	}
	max := cfg.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Recorder{stride: stride, offset: seed % stride, max: max}
}

// Sampled reports whether transaction id falls on the sampling stride.
func (r *Recorder) Sampled(id uint64) bool {
	return r != nil && id%r.stride == r.offset
}

// Start begins a span for pk if its ID is sampled, recording wait
// picoseconds of host-window time ending at now (the injection
// instant). It stamps pk.SpanSlot so downstream hooks recognize the
// packet; unsampled packets are left untouched.
func (r *Recorder) Start(pk *packet.Packet, now, wait sim.Time) {
	if r == nil || pk.ID%r.stride != r.offset {
		return
	}
	if len(r.spans)+r.active >= r.max {
		r.dropped++
		return
	}
	var idx int32
	if n := len(r.free); n > 0 {
		idx = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		r.slots = append(r.slots, slot{})
		idx = int32(len(r.slots) - 1)
	}
	r.active++
	s := &r.slots[idx]
	*s = slot{span: TxSpan{
		ID:       pk.ID,
		Kind:     pk.Kind.String(),
		Addr:     pk.Addr,
		Dst:      int32(pk.Dst),
		Injected: now,
	}}
	if wait > 0 {
		s.span.Segs = append(s.span.Segs, Seg{
			Cause: HostWindow, Loc: "host", VC: packet.VCOf(pk.Kind),
			At: now - wait, Dur: wait,
		})
	}
	pk.SpanSlot = idx + 1
}

// Seg appends one attributed segment to pk's span. Zero- and
// negative-duration segments are skipped (the deterministic rule that
// keeps span files free of degenerate entries).
func (r *Recorder) Seg(pk *packet.Packet, cause Cause, loc string, at, dur sim.Time) {
	if r == nil || pk.SpanSlot == 0 || dur <= 0 {
		return
	}
	s := &r.slots[pk.SpanSlot-1]
	s.span.Segs = append(s.span.Segs, Seg{
		Cause: cause, Loc: loc, VC: packet.VCOf(pk.Kind), At: at, Dur: dur,
	})
}

// Ship records one full link traversal of pk on the edge labelled loc:
// output-queue residence [enq,pop), retry-buffer residence [pop,start)
// (zero unless the first transmission was corrupted), wire occupancy
// [start,end), and the fixed SerDes traversal [end,end+serdes).
func (r *Recorder) Ship(pk *packet.Packet, loc string, serdes, enq, pop, start, end sim.Time) {
	if r == nil || pk.SpanSlot == 0 {
		return
	}
	r.Seg(pk, LinkQueue, loc, enq, pop-enq)
	r.Seg(pk, LinkRetry, loc, pop, start-pop)
	r.Seg(pk, LinkSer, loc, start, end-start)
	r.Seg(pk, LinkSerDes, loc, end, serdes)
}

// VaultIssue records pk's vault-queue wait ending at now (the bank
// issue instant) and remembers the quadrant so Complete can synthesize
// the matching service segment from the packet's memory timestamps.
func (r *Recorder) VaultIssue(pk *packet.Packet, loc string, now, wait sim.Time) {
	if r == nil || pk.SpanSlot == 0 {
		return
	}
	s := &r.slots[pk.SpanSlot-1]
	s.vaultLoc = loc
	s.vaultWait = wait
	r.Seg(pk, VaultQueue, loc, now-wait, wait)
}

// Complete closes pk's span at now: the vault service segment is
// synthesized (MemLatency minus the recorded queue wait), segments are
// ordered by start time, and the span is retired to the completed list.
// The packet's span slot is released for reuse.
func (r *Recorder) Complete(pk *packet.Packet, now sim.Time) {
	if r == nil || pk.SpanSlot == 0 {
		return
	}
	idx := pk.SpanSlot - 1
	pk.SpanSlot = 0
	s := &r.slots[idx]
	if s.vaultLoc != "" {
		r.slots[idx].span.Segs = append(s.span.Segs, Seg{
			Cause: VaultService, Loc: s.vaultLoc, VC: packet.VCRequest,
			At: pk.ArrivedMem + s.vaultWait, Dur: pk.MemLatency - s.vaultWait,
		})
	}
	sp := s.span
	sp.Completed = now
	sort.SliceStable(sp.Segs, func(i, j int) bool { return sp.Segs[i].At < sp.Segs[j].At })
	r.spans = append(r.spans, sp)
	*s = slot{}
	r.free = append(r.free, idx)
	r.active--
}

// Spans returns the completed spans in completion order.
func (r *Recorder) Spans() []TxSpan {
	if r == nil {
		return nil
	}
	return r.spans
}

// Dropped counts sampled transactions discarded at the MaxSpans cap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Stride returns the effective sampling stride.
func (r *Recorder) Stride() uint64 {
	if r == nil {
		return 0
	}
	return r.stride
}
