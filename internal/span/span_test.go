package span

import (
	"bytes"
	"strings"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// mkPacket returns a sampled request packet for recorder tests.
func mkPacket(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.ReadReq, Addr: 0x1000 * id, Dst: 3}
}

// record drives one transaction through the full hook sequence and
// returns the completed span.
func record(t *testing.T, r *Recorder, id uint64) TxSpan {
	t.Helper()
	pk := mkPacket(id)
	r.Start(pk, 100, 40)                     // host.window [60,100)
	r.Ship(pk, "h>1", 5, 100, 110, 115, 130) // queue 10, retry 5, ser 15, serdes 5
	r.Seg(pk, RouterArb, "r1", 135, 8)       // arbitration 8
	pk.ArrivedMem, pk.MemLatency = 143, 30   // vault window [143,173)
	r.VaultIssue(pk, "v3.q0", 155, 12)       // queue [143,155), service [155,173)
	before := len(r.Spans())
	r.Complete(pk, 173)
	spans := r.Spans()
	if len(spans) != before+1 {
		t.Fatalf("Complete retired %d spans, want 1", len(spans)-before)
	}
	if pk.SpanSlot != 0 {
		t.Fatalf("Complete left SpanSlot %d", pk.SpanSlot)
	}
	return spans[len(spans)-1]
}

func TestRecorderFullLifecycle(t *testing.T) {
	r := NewRecorder(Config{}, 1)
	sp := record(t, r, 9)
	if sp.ID != 9 || sp.Kind != "ReadReq" || sp.Dst != 3 || sp.Injected != 100 || sp.Completed != 173 {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	want := []Seg{
		{HostWindow, "host", packet.VCRequest, 60, 40},
		{LinkQueue, "h>1", packet.VCRequest, 100, 10},
		{LinkRetry, "h>1", packet.VCRequest, 110, 5},
		{LinkSer, "h>1", packet.VCRequest, 115, 15},
		{LinkSerDes, "h>1", packet.VCRequest, 130, 5},
		{RouterArb, "r1", packet.VCRequest, 135, 8},
		{VaultQueue, "v3.q0", packet.VCRequest, 143, 12},
		{VaultService, "v3.q0", packet.VCRequest, 155, 18},
	}
	if len(sp.Segs) != len(want) {
		t.Fatalf("got %d segs %+v, want %d", len(sp.Segs), sp.Segs, len(want))
	}
	for i, sg := range sp.Segs {
		if sg != want[i] {
			t.Errorf("seg %d = %+v, want %+v", i, sg, want[i])
		}
	}
	// The non-window segments tile the end-to-end latency exactly: this
	// is what makes 100% attribution possible.
	var attributed sim.Time
	for _, sg := range sp.Segs {
		if sg.Cause != HostWindow {
			attributed += sg.Dur
		}
	}
	if attributed != sp.Latency() {
		t.Errorf("segments sum to %v, latency is %v", attributed, sp.Latency())
	}
	if err := Check([]TxSpan{sp}); err != nil {
		t.Errorf("lifecycle span fails Check: %v", err)
	}
}

// TestRecorderSampling: the stride sampler selects exactly the IDs
// congruent to seed mod stride, and unsampled packets pass through the
// hooks untouched.
func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(Config{SampleStride: 4}, 6)
	for id := uint64(0); id < 16; id++ {
		pk := mkPacket(id)
		r.Start(pk, 100, 10)
		if want := id%4 == 2; (pk.SpanSlot != 0) != want {
			t.Fatalf("id %d: SpanSlot %d, want sampled=%v", id, pk.SpanSlot, want)
		}
		if pk.SpanSlot != 0 {
			r.Complete(pk, 200)
		}
	}
	if n := len(r.Spans()); n != 4 {
		t.Fatalf("sampled %d of 16 at stride 4, want 4", n)
	}
	// Hooks on an unsampled packet are no-ops.
	pk := mkPacket(1)
	r.Ship(pk, "h>1", 5, 0, 1, 2, 3)
	r.Seg(pk, RouterArb, "r1", 0, 5)
	r.Complete(pk, 99)
	if n := len(r.Spans()); n != 4 {
		t.Fatalf("unsampled packet produced a span (%d total)", n)
	}
}

// TestRecorderNilSafe: every hook is callable on a nil recorder.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	pk := mkPacket(1)
	if r.Sampled(1) {
		t.Error("nil recorder sampled a packet")
	}
	r.Start(pk, 10, 5)
	r.Ship(pk, "h>1", 5, 0, 1, 2, 3)
	r.Seg(pk, RouterArb, "r1", 0, 5)
	r.VaultIssue(pk, "v0.q0", 7, 2)
	r.Complete(pk, 20)
	if r.Spans() != nil || r.Dropped() != 0 || r.Stride() != 0 {
		t.Error("nil recorder accumulated state")
	}
}

// TestRecorderCap: sampled transactions past MaxSpans are dropped and
// counted; completing a span frees its slot for reuse.
func TestRecorderCap(t *testing.T) {
	r := NewRecorder(Config{MaxSpans: 2}, 0)
	a, b, c := mkPacket(1), mkPacket(2), mkPacket(3)
	r.Start(a, 10, 0)
	r.Start(b, 10, 0)
	r.Start(c, 10, 0) // over cap
	if c.SpanSlot != 0 || r.Dropped() != 1 {
		t.Fatalf("cap not enforced: slot %d, dropped %d", c.SpanSlot, r.Dropped())
	}
	r.Complete(a, 20)
	r.Complete(b, 20)
	// Cap counts completed + live spans, so a full recorder stays full.
	d := mkPacket(4)
	r.Start(d, 30, 0)
	if d.SpanSlot != 0 || r.Dropped() != 2 {
		t.Fatalf("cap ignored retired spans: slot %d, dropped %d", d.SpanSlot, r.Dropped())
	}
}

// TestRecorderZeroDurSegsSkipped: zero- and negative-duration segments
// never enter the span (Ship emits link.retry only when the packet
// actually waited in the retry buffer).
func TestRecorderZeroDurSegsSkipped(t *testing.T) {
	r := NewRecorder(Config{}, 0)
	pk := mkPacket(1)
	r.Start(pk, 100, 0)                      // no window wait: no host segment
	r.Ship(pk, "h>1", 5, 100, 100, 100, 120) // queue 0, retry 0, ser 20
	r.Complete(pk, 130)
	sp := r.Spans()[0]
	if len(sp.Segs) != 2 {
		t.Fatalf("got segs %+v, want [link.ser link.serdes]", sp.Segs)
	}
	if sp.Segs[0].Cause != LinkSer || sp.Segs[1].Cause != LinkSerDes {
		t.Fatalf("got segs %+v, want [link.ser link.serdes]", sp.Segs)
	}
}

func TestCauseNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCauses; c++ {
		name := Cause(c).String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("cause %d has bad or duplicate name %q", c, name)
		}
		seen[name] = true
		back, ok := CauseByName(name)
		if !ok || back != Cause(c) {
			t.Fatalf("CauseByName(%q) = %v,%v", name, back, ok)
		}
	}
	if _, ok := CauseByName("no.such.cause"); ok {
		t.Error("CauseByName accepted an unknown name")
	}
}

// TestNDJSONRoundTrip: Write then Read reproduces header and spans, and
// a rewrite of the parsed spans is byte-identical (the determinism the
// golden tests lean on).
func TestNDJSONRoundTrip(t *testing.T) {
	r := NewRecorder(Config{SampleStride: 2}, 4)
	record(t, r, 10)
	record(t, r, 12)
	hdr := Header{Label: "chain-100", Workload: "KMEANS", Seed: 4, Stride: 2}
	var buf bytes.Buffer
	if err := Write(&buf, hdr, r.Spans()); err != nil {
		t.Fatal(err)
	}
	gotHdr, spans, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Schema != Schema || gotHdr.Label != "chain-100" || gotHdr.Spans != 2 {
		t.Fatalf("header round-trip: %+v", gotHdr)
	}
	if len(spans) != 2 || spans[0].ID != 10 || spans[1].ID != 12 {
		t.Fatalf("spans round-trip: %+v", spans)
	}
	for i := range spans {
		if len(spans[i].Segs) != len(r.Spans()[i].Segs) {
			t.Fatalf("span %d lost segments: %+v", i, spans[i])
		}
		for j, sg := range spans[i].Segs {
			if sg != r.Spans()[i].Segs[j] {
				t.Errorf("span %d seg %d = %+v, want %+v", i, j, sg, r.Spans()[i].Segs[j])
			}
		}
	}
	var again bytes.Buffer
	if err := Write(&again, gotHdr, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("write-read-write is not byte-stable")
	}
}

// TestNDJSONMultiBlock: concatenated span files (one header per block,
// the mnexp -spans-out layout) parse as one merged set under the first
// header.
func TestNDJSONMultiBlock(t *testing.T) {
	r := NewRecorder(Config{}, 0)
	record(t, r, 1)
	var a, b bytes.Buffer
	if err := Write(&a, Header{Label: "run-a"}, r.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, Header{Label: "run-b"}, r.Spans()); err != nil {
		t.Fatal(err)
	}
	hdr, spans, err := Read(strings.NewReader(a.String() + b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Label != "run-a" || len(spans) != 2 {
		t.Fatalf("multi-block read: hdr %+v, %d spans", hdr, len(spans))
	}
}

// TestNDJSONEmptyRun: a run that sampled nothing still writes a valid
// header-only file, and analysis of it is well-defined.
func TestNDJSONEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{Label: "idle", Stride: 64}, nil); err != nil {
		t.Fatal(err)
	}
	hdr, spans, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Spans != 0 || len(spans) != 0 {
		t.Fatalf("empty run: hdr %+v, %d spans", hdr, len(spans))
	}
	a := Analyze(spans)
	if a.Attribution() != 1 || a.MeanLatencyPs() != 0 {
		t.Errorf("empty analysis: attribution %v, mean %v", a.Attribution(), a.MeanLatencyPs())
	}
	if err := Check(spans); err != nil {
		t.Errorf("empty span set fails Check: %v", err)
	}
}

// TestNDJSONRejectsBadInput: missing header, wrong schema, and unknown
// cause names are parse errors, not silent data loss.
func TestNDJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty file":    "",
		"no header":     `{"id":1,"kind":"ReadReq","addr":0,"dst":1,"inj":1,"done":2,"segs":[]}`,
		"wrong schema":  `{"schema":"memnet/spans/v999","spans":0}`,
		"unknown cause": "{\"schema\":\"memnet/spans/v1\",\"spans\":1}\n" + `{"id":1,"kind":"ReadReq","addr":0,"dst":1,"inj":1,"done":9,"segs":[{"c":"warp.drive","l":"h>1","vc":0,"at":1,"d":2}]}`,
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

// TestAnalyze: per-cause totals, host-window separation, and the
// location blame table ordering.
func TestAnalyze(t *testing.T) {
	r := NewRecorder(Config{}, 0)
	record(t, r, 1)
	record(t, r, 2)
	a := Analyze(r.Spans())
	if a.Spans != 2 || a.TotalPs != 2*73 {
		t.Fatalf("analysis totals: %+v", a)
	}
	if a.WindowPs != 2*40 || a.ByCause[HostWindow] != 2*40 {
		t.Errorf("window time: got %d / %d, want 80", a.WindowPs, a.ByCause[HostWindow])
	}
	if a.AttributedPs != a.TotalPs {
		t.Errorf("attributed %d != total %d on tiled spans", a.AttributedPs, a.TotalPs)
	}
	if a.Attribution() != 1 {
		t.Errorf("attribution %v, want 1", a.Attribution())
	}
	// Blame: h>1 (10+5+15+5=35/tx) > v3.q0 (30/tx) > r1 (8/tx); host is
	// excluded from the table entirely.
	wantLocs := []string{"h>1", "v3.q0", "r1"}
	if len(a.Locs) != len(wantLocs) {
		t.Fatalf("blame table %+v, want locs %v", a.Locs, wantLocs)
	}
	for i, want := range wantLocs {
		if a.Locs[i].Loc != want {
			t.Errorf("blame[%d] = %s, want %s", i, a.Locs[i].Loc, want)
		}
	}
	if a.Locs[0].Total != 2*35 || a.Locs[0].ByCause[LinkSer] != 2*15 {
		t.Errorf("h>1 blame: %+v", a.Locs[0])
	}
}

func TestWorstN(t *testing.T) {
	spans := []TxSpan{
		{ID: 1, Injected: 0, Completed: 50},
		{ID: 2, Injected: 0, Completed: 90},
		{ID: 3, Injected: 0, Completed: 90},
		{ID: 4, Injected: 0, Completed: 10},
	}
	worst := WorstN(spans, 3)
	if len(worst) != 3 || worst[0].ID != 2 || worst[1].ID != 3 || worst[2].ID != 1 {
		t.Fatalf("WorstN order: %+v", worst)
	}
	if got := WorstN(spans, 10); len(got) != 4 {
		t.Fatalf("WorstN over-request returned %d", len(got))
	}
}

func TestCheckViolations(t *testing.T) {
	good := Seg{Cause: LinkSer, Loc: "h>1", At: 10, Dur: 5}
	cases := map[string]TxSpan{
		"negative window": {ID: 1, Injected: 100, Completed: 50},
		"zero-dur seg":    {ID: 1, Completed: 50, Segs: []Seg{{Cause: LinkSer, Loc: "h>1", At: 10}}},
		"out of order":    {ID: 1, Completed: 50, Segs: []Seg{good, {Cause: RouterArb, Loc: "r1", At: 5, Dur: 2}}},
		"past completion": {ID: 1, Completed: 12, Segs: []Seg{good}},
	}
	for name, sp := range cases {
		if err := Check([]TxSpan{sp}); err == nil {
			t.Errorf("%s: Check accepted invalid span", name)
		}
	}
}
