// Critical-path analysis over completed spans: per-cause latency
// waterfalls, per-location blame tables, attribution coverage, and
// worst-transaction selection. The analyzer runs once per file in the
// reporting layer (cmd/mntrace), not on the simulation hot path.

package span

import (
	"fmt"
	"sort"

	"memnet/internal/sim"
)

// LocBlame aggregates attributed time at one location (edge, router, or
// vault quadrant), split by cause.
type LocBlame struct {
	// Loc is the location label ("h>1", "r3", "v3.q1", "host").
	Loc string
	// ByCause is attributed picoseconds per Cause at this location.
	ByCause [NumCauses]int64
	// Total is the sum over ByCause.
	Total int64
}

// Analysis summarizes a set of completed spans.
type Analysis struct {
	// Spans is the number of transactions analyzed.
	Spans int
	// TotalPs sums end-to-end latency (Completed - Injected) over spans.
	TotalPs int64
	// AttributedPs sums segment durations that fall inside the
	// end-to-end window (every cause except HostWindow, which precedes
	// injection by definition).
	AttributedPs int64
	// WindowPs sums HostWindow segment durations (pre-injection wait).
	WindowPs int64
	// ByCause is attributed picoseconds per cause, HostWindow included.
	ByCause [NumCauses]int64
	// Locs is the in-network blame table (HostWindow excluded), sorted
	// by descending Total (ties by Loc).
	Locs []LocBlame
}

// Analyze aggregates spans into per-cause totals and a per-location
// blame table.
func Analyze(spans []TxSpan) *Analysis {
	a := &Analysis{Spans: len(spans)}
	//lint:coldpath one-shot reporting aggregation, not a per-event path
	byLoc := make(map[string]int)
	for i := range spans {
		sp := &spans[i]
		a.TotalPs += int64(sp.Latency())
		for _, sg := range sp.Segs {
			d := int64(sg.Dur)
			a.ByCause[sg.Cause] += d
			if sg.Cause == HostWindow {
				// Pre-injection wait: summarized in WindowPs, excluded
				// from the in-network blame table.
				a.WindowPs += d
				continue
			}
			a.AttributedPs += d
			li, ok := byLoc[sg.Loc]
			if !ok {
				li = len(a.Locs)
				byLoc[sg.Loc] = li
				a.Locs = append(a.Locs, LocBlame{Loc: sg.Loc})
			}
			a.Locs[li].ByCause[sg.Cause] += d
			a.Locs[li].Total += d
		}
	}
	sort.Slice(a.Locs, func(i, j int) bool {
		if a.Locs[i].Total != a.Locs[j].Total {
			return a.Locs[i].Total > a.Locs[j].Total
		}
		return a.Locs[i].Loc < a.Locs[j].Loc
	})
	return a
}

// Attribution is the fraction of total end-to-end latency covered by
// attributed (non-window) segments, in [0,1]. It is 1 when every
// picosecond between injection and completion has an enumerated cause.
func (a *Analysis) Attribution() float64 {
	if a.TotalPs == 0 {
		return 1
	}
	return float64(a.AttributedPs) / float64(a.TotalPs)
}

// MeanLatencyPs is the mean end-to-end latency over analyzed spans.
func (a *Analysis) MeanLatencyPs() float64 {
	if a.Spans == 0 {
		return 0
	}
	return float64(a.TotalPs) / float64(a.Spans)
}

// WorstN returns the n highest-latency spans, descending (ties broken
// by ascending ID so the selection is deterministic).
func WorstN(spans []TxSpan, n int) []TxSpan {
	out := make([]TxSpan, len(spans))
	copy(out, spans)
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Latency(), out[j].Latency()
		if li != lj {
			return li > lj
		}
		return out[i].ID < out[j].ID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Check validates structural invariants on a parsed span file: the
// completion window is non-negative, every segment has positive
// duration and lies within [earliest window start, completion], and
// segments are ordered by start time. It returns the first violation.
func Check(spans []TxSpan) error {
	for i := range spans {
		sp := &spans[i]
		if sp.Completed < sp.Injected {
			return fmt.Errorf("span %d: completed %v before injected %v", sp.ID, sp.Completed, sp.Injected)
		}
		prev := sim.Time(-1 << 62)
		for j, sg := range sp.Segs {
			if sg.Dur <= 0 {
				return fmt.Errorf("span %d seg %d (%v@%s): non-positive duration %v", sp.ID, j, sg.Cause, sg.Loc, sg.Dur)
			}
			if sg.At < prev {
				return fmt.Errorf("span %d seg %d (%v@%s): start %v out of order", sp.ID, j, sg.Cause, sg.Loc, sg.At)
			}
			prev = sg.At
			if sg.At+sg.Dur > sp.Completed {
				return fmt.Errorf("span %d seg %d (%v@%s): ends %v past completion %v", sp.ID, j, sg.Cause, sg.Loc, sg.At+sg.Dur, sp.Completed)
			}
		}
	}
	return nil
}
