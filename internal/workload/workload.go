// Package workload generates the memory-request streams that drive the
// experiments. The paper evaluated GPGPU kernels from the AMD SDK and
// Rodinia suites on a simulated GPU; here each workload is a synthetic
// proxy that preserves the traffic character the paper attributes to it —
// read/write mix, injection intensity, spatial locality, burstiness, and
// read-modify-write behavior — since those are the properties that
// determine memory-network performance (see DESIGN.md, substitutions).
//
// Facts pinned from the paper text and reproduced by the proxies:
//
//   - BACKPROP has "significantly more writes than reads" and is "by far
//     the most write intensive" (§3.2, §5.3), with large write bursts.
//   - KMEANS, MATRIXMUL and NW have "at least two reads for every one
//     write"; KMEANS is "the most read intensive" (§3.2, §5.3).
//   - NW has "the lowest network load of all the workloads" (§3.2).
//   - The remaining workloads (BIT, BUFF, DCT, HOTSPOT) have "nearly
//     identical numbers of read and write requests" (§3.2).
package workload

import (
	"fmt"

	"memnet/internal/sim"
)

// Tx is one generated memory transaction.
type Tx struct {
	Addr  uint64
	Write bool
	// Gap is the think time after the previous injection attempt.
	Gap sim.Time
	// RMW marks the write half of a read-modify-write pair; the host
	// issues the read first and orders the write behind it.
	RMW bool
}

// Generator produces an unbounded transaction stream.
type Generator interface {
	Next() Tx
}

// Spec parameterizes a synthetic workload proxy.
type Spec struct {
	Name string
	// ReadFraction is the steady-state fraction of read transactions.
	ReadFraction float64
	// MeanGap is the average think time between injection attempts at
	// one memory port under the baseline 8-port system; smaller means
	// higher network load.
	MeanGap sim.Time
	// SeqProb is the probability the next address continues a
	// sequential run (spatial locality); otherwise the stream jumps to a
	// random block.
	SeqProb float64
	// SeqStride is the sequential step in bytes (one 64B access).
	SeqStride uint64
	// HotFraction, if positive, sends that fraction of the random jumps
	// into a hot region covering HotRegion of the footprint.
	HotFraction float64
	HotRegion   float64
	// RMWFraction is the fraction of writes that are read-modify-writes
	// (a dependent read precedes them to the same address).
	RMWFraction float64
	// BurstProb is the per-transaction probability of entering a write
	// burst of mean length BurstLen during which transactions are
	// writes with probability BurstWriteFrac.
	BurstProb      float64
	BurstLen       int
	BurstWriteFrac float64
	// Window, when positive, overrides the system's outstanding-request
	// window for this workload — modeling kernels whose dependency
	// structure limits the memory-level parallelism the GPU can expose
	// (e.g. NW's wavefront pattern).
	Window int
}

// Suite returns the eight workload proxies in the paper's presentation
// order.
func Suite() []Spec {
	return []Spec{
		{
			// Backpropagation weight-update phases write entire layer
			// matrices: write-dominated with long write bursts.
			Name: "BACKPROP", ReadFraction: 0.35, MeanGap: 2200 * sim.Picosecond,
			SeqProb: 0.75, SeqStride: 64,
			BurstProb: 0.02, BurstLen: 48, BurstWriteFrac: 0.95,
		},
		{
			// Bitonic sort: compare-exchange passes, balanced reads and
			// writes with strided locality and RMW-like pairs.
			Name: "BIT", ReadFraction: 0.41, MeanGap: 2400 * sim.Picosecond,
			SeqProb: 0.55, SeqStride: 64, RMWFraction: 0.30,
		},
		{
			// Box/buffer filter: streaming copy, balanced mix, high
			// spatial locality.
			Name: "BUFF", ReadFraction: 0.50, MeanGap: 2 * sim.Nanosecond,
			SeqProb: 0.85, SeqStride: 64,
		},
		{
			// Discrete cosine transform: blocked access, balanced mix.
			Name: "DCT", ReadFraction: 0.50, MeanGap: 2400 * sim.Picosecond,
			SeqProb: 0.70, SeqStride: 64,
		},
		{
			// Hotspot thermal simulation: stencil with a hot working
			// region, near-balanced mix.
			Name: "HOTSPOT", ReadFraction: 0.55, MeanGap: 2600 * sim.Picosecond,
			SeqProb: 0.60, SeqStride: 64,
			HotFraction: 0.5, HotRegion: 0.05,
		},
		{
			// K-means clustering: the most read-intensive — repeated
			// scans of the point set with rare centroid writes.
			Name: "KMEANS", ReadFraction: 0.80, MeanGap: 2 * sim.Nanosecond,
			SeqProb: 0.75, SeqStride: 64,
		},
		{
			// Dense matrix multiply: >=2:1 reads, streaming rows.
			Name: "MATRIXMUL", ReadFraction: 0.67, MeanGap: 2200 * sim.Picosecond,
			SeqProb: 0.80, SeqStride: 64,
		},
		{
			// Needleman-Wunsch: >=2:1 reads and the lowest network load
			// in the suite (wavefront dependencies throttle issue).
			Name: "NW", ReadFraction: 0.67, MeanGap: 8 * sim.Nanosecond,
			SeqProb: 0.60, SeqStride: 64, Window: 32,
		},
	}
}

// ByName returns the suite spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// generator is the stateful proxy implementation.
type generator struct {
	spec      Spec
	rng       *sim.Rand
	footprint uint64
	cursor    uint64
	burstLeft int
	pendingW  *Tx // staged RMW write to follow the read just emitted
}

// New returns a deterministic generator over the given footprint (bytes)
// with the given seed. Footprint must be at least one 64B block.
func New(spec Spec, footprint uint64, seed uint64) Generator {
	if footprint < 64 {
		panic("workload: footprint below one block")
	}
	if spec.SeqStride == 0 {
		spec.SeqStride = 64
	}
	g := &generator{spec: spec, rng: sim.NewRand(seed), footprint: footprint}
	g.cursor = g.randomBlock()
	return g
}

func (g *generator) randomBlock() uint64 {
	blocks := g.footprint / 64
	b := uint64(g.rng.Int63n(int64(blocks)))
	return b * 64
}

func (g *generator) hotBlock() uint64 {
	region := uint64(float64(g.footprint) * g.spec.HotRegion)
	if region < 64 {
		region = 64
	}
	blocks := region / 64
	b := uint64(g.rng.Int63n(int64(blocks)))
	return b * 64
}

// Next implements Generator.
func (g *generator) Next() Tx {
	if g.pendingW != nil {
		tx := *g.pendingW
		g.pendingW = nil
		return tx
	}

	// Address: continue the sequential run or jump.
	if g.rng.Bool(g.spec.SeqProb) {
		g.cursor += g.spec.SeqStride
		if g.cursor >= g.footprint {
			g.cursor = 0
		}
	} else if g.spec.HotFraction > 0 && g.rng.Bool(g.spec.HotFraction) {
		g.cursor = g.hotBlock()
	} else {
		g.cursor = g.randomBlock()
	}

	// Burst state.
	writeP := 1 - g.spec.ReadFraction
	if g.burstLeft > 0 {
		g.burstLeft--
		writeP = g.spec.BurstWriteFrac
	} else if g.spec.BurstProb > 0 && g.rng.Bool(g.spec.BurstProb) {
		g.burstLeft = g.spec.BurstLen
		writeP = g.spec.BurstWriteFrac
	}

	gap := sim.Time(g.rng.Exp(float64(g.spec.MeanGap)))
	write := g.rng.Bool(writeP)

	if write && g.spec.RMWFraction > 0 && g.rng.Bool(g.spec.RMWFraction) {
		// Emit the read now; stage the dependent write.
		g.pendingW = &Tx{Addr: g.cursor, Write: true, Gap: 0, RMW: true}
		return Tx{Addr: g.cursor, Write: false, Gap: gap}
	}
	return Tx{Addr: g.cursor, Write: write, Gap: gap}
}
