package workload

import (
	"strings"
	"testing"

	"memnet/internal/sim"
)

func TestRecorderCaptures(t *testing.T) {
	spec, _ := ByName("DCT")
	rec := NewRecorder(New(spec, footprint, 1))
	want := make([]Tx, 100)
	for i := range want {
		want[i] = rec.Next()
	}
	got := rec.Trace()
	if len(got) != 100 {
		t.Fatalf("recorded %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] mismatch", i)
		}
	}
}

func TestReplayCycles(t *testing.T) {
	txs := []Tx{
		{Addr: 0, Write: false, Gap: 1},
		{Addr: 64, Write: true, Gap: 2},
	}
	r := NewReplay(txs)
	for round := 0; round < 3; round++ {
		for i := range txs {
			if got := r.Next(); got != txs[i] {
				t.Fatalf("round %d item %d mismatch", round, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty replay must panic")
		}
	}()
	NewReplay(nil)
}

func TestTraceRoundTrip(t *testing.T) {
	spec, _ := ByName("BIT") // includes RMW pairs
	rec := NewRecorder(New(spec, footprint, 5))
	for i := 0; i < 500; i++ {
		rec.Next()
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("read %d", len(got))
	}
	for i, tx := range rec.Trace() {
		if got[i] != tx {
			t.Fatalf("tx %d: %+v != %+v", i, got[i], tx)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"zz,R,10",         // bad address
		"40,X,10",         // bad kind
		"40,R,notanumber", // bad gap
		"40,R,-5",         // negative gap
		"40",              // short line
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q should fail", c)
		}
	}
	// Comments and blanks are fine.
	txs, err := ReadTrace(strings.NewReader("# header\n\n40,W,100,rmw\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || !txs[0].Write || !txs[0].RMW || txs[0].Gap != 100*sim.Picosecond {
		t.Fatalf("parsed %+v", txs)
	}
}
