package workload

import (
	"testing"

	"memnet/internal/sim"
)

const footprint = 1 << 30

func sample(t *testing.T, spec Spec, n int) []Tx {
	t.Helper()
	g := New(spec, footprint, 1)
	txs := make([]Tx, n)
	for i := range txs {
		txs[i] = g.Next()
	}
	return txs
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d workloads, want 8", len(suite))
	}
	want := []string{"BACKPROP", "BIT", "BUFF", "DCT", "HOTSPOT", "KMEANS", "MATRIXMUL", "NW"}
	for i, s := range suite {
		if s.Name != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("KMEANS")
	if err != nil || s.Name != "KMEANS" {
		t.Fatal("lookup failed")
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

// TestPaperTrafficFacts pins the per-workload characteristics the paper
// states (§3.2, §5.3).
func TestPaperTrafficFacts(t *testing.T) {
	const n = 50000
	mix := map[string]float64{}
	for _, spec := range Suite() {
		writes := 0
		for _, tx := range sample(t, spec, n) {
			if tx.Write {
				writes++
			}
		}
		mix[spec.Name] = float64(writes) / n
	}
	// BACKPROP has significantly more writes than reads and is the most
	// write-intensive in the suite.
	if mix["BACKPROP"] <= 0.5 {
		t.Errorf("BACKPROP writes = %.2f, want > 0.5", mix["BACKPROP"])
	}
	for name, w := range mix {
		if name != "BACKPROP" && w >= mix["BACKPROP"] {
			t.Errorf("%s writes %.2f >= BACKPROP %.2f", name, w, mix["BACKPROP"])
		}
	}
	// KMEANS is the most read-intensive.
	for name, w := range mix {
		if name != "KMEANS" && w <= mix["KMEANS"] {
			t.Errorf("%s writes %.2f <= KMEANS %.2f", name, w, mix["KMEANS"])
		}
	}
	// KMEANS, MATRIXMUL, NW have at least two reads per write.
	for _, name := range []string{"KMEANS", "MATRIXMUL", "NW"} {
		if mix[name] > 1.0/3+0.02 {
			t.Errorf("%s writes %.2f, want <= ~1/3", name, mix[name])
		}
	}
	// BIT, BUFF, DCT have nearly identical read and write counts.
	for _, name := range []string{"BIT", "BUFF", "DCT"} {
		if mix[name] < 0.45 || mix[name] > 0.55 {
			t.Errorf("%s writes %.2f, want ~0.5", name, mix[name])
		}
	}
	// NW has the lowest network load: largest MeanGap.
	nw, _ := ByName("NW")
	for _, s := range Suite() {
		if s.Name != "NW" && s.MeanGap >= nw.MeanGap {
			t.Errorf("%s gap %v >= NW %v", s.Name, s.MeanGap, nw.MeanGap)
		}
	}
}

func TestDeterminism(t *testing.T) {
	spec, _ := ByName("HOTSPOT")
	a := New(spec, footprint, 7)
	b := New(spec, footprint, 7)
	for i := 0; i < 10000; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("diverged at %d: %+v vs %+v", i, ta, tb)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	spec, _ := ByName("BUFF")
	a := New(spec, footprint, 1)
	b := New(spec, footprint, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestAddressesInFootprint(t *testing.T) {
	for _, spec := range Suite() {
		for _, tx := range sample(t, spec, 20000) {
			if tx.Addr >= footprint {
				t.Fatalf("%s: addr %#x outside footprint", spec.Name, tx.Addr)
			}
			if tx.Addr%64 != 0 {
				t.Fatalf("%s: addr %#x not block-aligned", spec.Name, tx.Addr)
			}
		}
	}
}

func TestSequentialLocality(t *testing.T) {
	spec, _ := ByName("BUFF") // SeqProb 0.85
	txs := sample(t, spec, 20000)
	seq := 0
	for i := 1; i < len(txs); i++ {
		if txs[i].Addr == txs[i-1].Addr+64 || txs[i].Addr == txs[i-1].Addr {
			seq++
		}
	}
	frac := float64(seq) / float64(len(txs)-1)
	if frac < 0.75 {
		t.Fatalf("BUFF sequential fraction %.2f, want >= 0.75", frac)
	}
}

func TestRMWPairs(t *testing.T) {
	spec, _ := ByName("BIT") // RMWFraction 0.3
	txs := sample(t, spec, 20000)
	pairs := 0
	for i := 1; i < len(txs); i++ {
		if txs[i].RMW {
			pairs++
			if txs[i-1].Write || txs[i-1].Addr != txs[i].Addr {
				t.Fatal("RMW write must follow its read to the same address")
			}
			if !txs[i].Write || txs[i].Gap != 0 {
				t.Fatal("RMW second half must be an immediate write")
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no RMW pairs generated")
	}
}

func TestWriteBursts(t *testing.T) {
	spec, _ := ByName("BACKPROP")
	txs := sample(t, spec, 50000)
	// Find the longest run of consecutive writes; bursts should create
	// runs far longer than an i.i.d. 53%-write stream would (~12 max).
	longest, cur := 0, 0
	for _, tx := range txs {
		if tx.Write {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	if longest < 20 {
		t.Fatalf("longest write run %d; bursts missing", longest)
	}
}

func TestHotspotConcentration(t *testing.T) {
	spec, _ := ByName("HOTSPOT")
	txs := sample(t, spec, 50000)
	hotRegion := uint64(float64(footprint) * spec.HotRegion)
	hot := 0
	for _, tx := range txs {
		if tx.Addr < hotRegion {
			hot++
		}
	}
	// ~HotFraction of the random jumps plus run-length effects: expect
	// clearly more than the region's 5% share of a uniform stream.
	if frac := float64(hot) / float64(len(txs)); frac < 0.15 {
		t.Fatalf("hot region got %.2f of accesses", frac)
	}
}

func TestGapDistribution(t *testing.T) {
	spec, _ := ByName("DCT")
	txs := sample(t, spec, 50000)
	var sum sim.Time
	for _, tx := range txs {
		sum += tx.Gap
	}
	mean := float64(sum) / float64(len(txs))
	want := float64(spec.MeanGap)
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("mean gap %.0fps, want ~%.0fps", mean, want)
	}
}

func TestTinyFootprintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Spec{Name: "x", MeanGap: sim.Nanosecond}, 32, 1)
}
