package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"memnet/internal/sim"
)

// Recorder wraps a Generator and keeps every transaction it hands out,
// so a synthetic run can be captured and replayed exactly (or exported
// for external analysis).
type Recorder struct {
	inner Generator
	txs   []Tx
}

// NewRecorder wraps gen.
func NewRecorder(gen Generator) *Recorder { return &Recorder{inner: gen} }

// Next implements Generator.
func (r *Recorder) Next() Tx {
	tx := r.inner.Next()
	r.txs = append(r.txs, tx)
	return tx
}

// Trace returns the recorded transactions (shared slice; copy before
// mutating).
func (r *Recorder) Trace() []Tx { return r.txs }

// Replay is a Generator that plays back a fixed transaction sequence,
// cycling when it runs out (so a short captured trace can still drive a
// long simulation).
type Replay struct {
	txs []Tx
	i   int
}

// NewReplay returns a generator over txs. It panics on an empty trace.
func NewReplay(txs []Tx) *Replay {
	if len(txs) == 0 {
		panic("workload: empty trace")
	}
	return &Replay{txs: txs}
}

// Next implements Generator.
func (r *Replay) Next() Tx {
	tx := r.txs[r.i]
	r.i++
	if r.i == len(r.txs) {
		r.i = 0
	}
	return tx
}

// WriteTrace serializes transactions as one CSV line each:
// addr_hex,kind,gap_ps[,rmw]. kind is R or W.
func WriteTrace(w io.Writer, txs []Tx) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# memnet trace v1: addr_hex,kind,gap_ps[,rmw]"); err != nil {
		return err
	}
	for _, tx := range txs {
		kind := "R"
		if tx.Write {
			kind = "W"
		}
		line := fmt.Sprintf("%x,%s,%d", tx.Addr, kind, int64(tx.Gap))
		if tx.RMW {
			line += ",rmw"
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the WriteTrace format. Blank lines and lines starting
// with '#' are ignored.
func ReadTrace(r io.Reader) ([]Tx, error) {
	var txs []Tx
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("workload: trace line %d: want addr,kind,gap", lineNo)
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad address: %v", lineNo, err)
		}
		var write bool
		switch strings.TrimSpace(parts[1]) {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: kind must be R or W", lineNo)
		}
		gap, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad gap", lineNo)
		}
		tx := Tx{Addr: addr, Write: write, Gap: sim.Time(gap)}
		if len(parts) > 3 && strings.TrimSpace(parts[3]) == "rmw" {
			tx.RMW = true
		}
		txs = append(txs, tx)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return txs, nil
}
