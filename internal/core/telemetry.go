package core

import (
	"fmt"

	"memnet/internal/link"
	"memnet/internal/obs"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// Telemetry is the instance's armed observability layer: the metrics
// registry, the interval sampler, and the two hot-path instruments the
// host completion path feeds (the end-to-end latency histogram and the
// per-cube service vector behind the Jain fairness series).
//
// A nil *Telemetry is the disabled layer: the single nil check in the
// completion closure is the entire enabled/disabled delta on the hot
// path, and the sampler's engine probe never perturbs event order, so
// Results are bit-identical either way (the golden tests pin this).
type Telemetry struct {
	Registry *obs.Registry
	Sampler  *obs.Sampler

	latency *obs.Histogram
	service []uint64 // completed transactions per cube, slot order
	svcIdx  []int32  // NodeID -> service slot, -1 for non-cubes
}

// complete records one finished transaction. Called with the response
// packet before the host retires (and possibly pools) it.
func (t *Telemetry) complete(pk *packet.Packet, now sim.Time) {
	if t == nil {
		return
	}
	t.latency.Observe(now - pk.Injected)
	if int(pk.Src) < len(t.svcIdx) {
		if i := t.svcIdx[pk.Src]; i >= 0 {
			t.service[i]++
		}
	}
}

// buildTelemetry registers every metric against the fully wired
// instance, in deterministic graph order, and arms the interval
// sampler. Called as the last step of Build, after all ports exist.
func buildTelemetry(in *Instance, cfg *obs.Config) {
	reg := obs.NewRegistry()
	t := &Telemetry{Registry: reg}
	g := in.Graph
	eng := in.Eng

	// Host: in-flight window and injection progress.
	port := in.Port
	reg.Gauge("host.inflight", func() int64 { return int64(port.Inflight()) })
	reg.Gauge("host.injected", func() int64 { return int64(port.Injected()) })
	t.latency = reg.Histogram("host.latency_ps")

	// Per-cube service share: the slice is incremented by the host
	// completion hook; the vec probe just exposes it.
	t.svcIdx = make([]int32, len(g.Nodes))
	var svcLabels []string
	for i := range t.svcIdx {
		t.svcIdx[i] = -1
	}
	for _, n := range g.Nodes {
		if n.Kind != topology.Cube {
			continue
		}
		t.svcIdx[n.ID] = int32(len(svcLabels))
		svcLabels = append(svcLabels, fmt.Sprintf("cube%d", n.ID))
	}
	t.service = make([]uint64, len(svcLabels))
	svc := t.service
	reg.Vec("cube.service", svcLabels, func() []uint64 { return svc })

	// Routers: occupancy, cumulative input wait, arbitration grants per
	// input port. GrantCounts is allocated here — after every port is
	// attached — which is also what switches the router's per-grant
	// counting on.
	for _, n := range g.Nodes {
		if n.Kind == topology.Host {
			continue
		}
		r := in.routers[n.ID]
		prefix := fmt.Sprintf("node%d.router", n.ID)
		reg.Gauge(prefix+".occupancy", func() int64 {
			var occ int64
			for i := 0; i < r.NumPorts(); i++ {
				for vc := packet.VC(0); vc < packet.NumVCs; vc++ {
					occ += int64(r.InputBuffer(i).Len(vc))
				}
			}
			return occ
		})
		reg.Gauge(prefix+".input_wait_ps", func() int64 {
			return int64(r.TotalInputWait())
		})
		r.GrantCounts = make([]uint64, r.NumPorts())
		grants := r.GrantCounts
		labels := make([]string, r.NumPorts())
		for i := range labels {
			labels[i] = fmt.Sprintf("p%d", i)
		}
		reg.Vec(prefix+".grants", labels, func() []uint64 { return grants })
	}

	// Vaults: window occupancy, queued work, and row-buffer locality,
	// aggregated across a cube's quadrants.
	for _, n := range g.Nodes {
		if n.Kind != topology.Cube {
			continue
		}
		quads := in.quadrants[n.ID]
		prefix := fmt.Sprintf("node%d.vault", n.ID)
		reg.Gauge(prefix+".inflight", func() int64 {
			var v int64
			for _, q := range quads {
				v += int64(q.Inflight())
			}
			return v
		})
		reg.Gauge(prefix+".queue", func() int64 {
			var v int64
			for _, q := range quads {
				v += int64(q.QueueLen())
			}
			return v
		})
		reg.Gauge(prefix+".row_hits", func() int64 {
			var v int64
			for _, q := range quads {
				v += int64(q.BankStats().RowHits)
			}
			return v
		})
		reg.Gauge(prefix+".row_misses", func() int64 {
			var v int64
			for _, q := range quads {
				bs := q.BankStats()
				v += int64(bs.RowMisses + bs.RowConflicts)
			}
			return v
		})
	}

	// External links: occupancy, credit stalls, retry traffic, and lane
	// state per direction, in edge-index order.
	for ei := range in.dirs {
		for di, dir := range [2]*link.Direction{in.dirs[ei].ab, in.dirs[ei].ba} {
			d := dir
			prefix := fmt.Sprintf("edge%d.%s", ei, [2]string{"ab", "ba"}[di])
			reg.Gauge(prefix+".busy_ps", func() int64 {
				return int64(d.Stats().BusyTime)
			})
			reg.Gauge(prefix+".credit_stalls", func() int64 {
				return int64(d.Stats().CreditStall)
			})
			reg.Gauge(prefix+".retries", func() int64 {
				return int64(d.Stats().Retries)
			})
			reg.Gauge(prefix+".retryq", func() int64 {
				return int64(d.RetryLen())
			})
			reg.Gauge(prefix+".bw_bps", func() int64 { return d.Bandwidth() })
			reg.Gauge(prefix+".dead", func() int64 {
				if d.Dead() {
					return 1
				}
				return 0
			})
			reg.Gauge(prefix+".state", func() int64 {
				return int64(d.State()) // 0 up, 1 down, 2 retraining
			})
			reg.Gauge(prefix+".healed_bits", func() int64 {
				return int64(d.HealedBits())
			})
		}
	}

	// Fabric availability: how much of the network is out of service or
	// recovering right now, and how much traffic has re-homed. The
	// probes read the same state the fault layer mutates, so the series
	// shows each outage opening and closing.
	dirs := in.dirs
	reg.Gauge("fault.links_down", func() int64 {
		var n int64
		for _, d := range dirs {
			if d.ab.State() == link.Down || d.ba.State() == link.Down {
				n++
			}
		}
		return n
	})
	reg.Gauge("fault.links_retraining", func() int64 {
		var n int64
		for _, d := range dirs {
			if d.ab.State() == link.Retraining || d.ba.State() == link.Retraining {
				n++
			}
		}
		return n
	})
	reg.Gauge("fault.cubes_rehomed", func() int64 {
		return int64(len(in.rehome))
	})

	t.Sampler = reg.StartSampler(eng, cfg.Interval())
	in.Telemetry = t
}

// Manifest assembles the machine-readable run record: reproduction
// inputs (config, seed, workload), the Results, the per-node report,
// fault counters, the final metrics dump, and the sampler's fairness
// summary. Callable on any completed instance; without telemetry the
// metrics and fairness sections are simply absent.
func (in *Instance) Manifest(res Results) *obs.Manifest {
	m := obs.NewManifest()
	m.Label = in.Params.Label()
	m.Seed = int64(in.Params.Seed)
	m.Workload = in.Params.Workload.Name
	m.Config = in.Params.Sys
	m.Results = res
	m.Nodes = in.Report()
	if in.Params.Fault.Enabled() {
		m.Fault = res.Fault
		if tl := in.timeline(); tl != nil {
			m.Timeline = tl
		}
	}
	if t := in.Telemetry; t != nil {
		m.Metrics = t.Registry.Dump()
		m.Attach(t.Sampler)
	}
	return m
}
