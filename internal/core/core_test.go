package core

import (
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func TestDeterminism(t *testing.T) {
	wl, _ := workload.ByName("DCT")
	p := testParams(topology.SkipList, 0.5, config.NVMLast, arb.DistanceAugmented, wl)
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinishTime != b.FinishTime || a.MeanLatency != b.MeanLatency ||
		a.Events != b.Events || a.Energy != b.Energy {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedsChangeResults(t *testing.T) {
	wl, _ := workload.ByName("DCT")
	p := testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin, wl)
	a, _ := Simulate(p)
	p.Seed = 99
	b, _ := Simulate(p)
	if a.FinishTime == b.FinishTime && a.Events == b.Events {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestConfigMatrixCompletes drives every (topology, ratio, placement,
// arbitration) combination to completion — the simulator must be
// deadlock-free across the full design space.
func TestConfigMatrixCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep")
	}
	wl, _ := workload.ByName("BACKPROP") // write bursts stress the skip list
	for _, topo := range topology.Kinds {
		for _, frac := range []float64{1, 0.5, 0} {
			for _, place := range []config.Placement{config.NVMLast, config.NVMFirst} {
				for _, ak := range []arb.Kind{arb.RoundRobin, arb.Distance, arb.DistanceAugmented} {
					p := testParams(topo, frac, place, ak, wl)
					p.Transactions = 1200
					res, err := Simulate(p)
					if err != nil {
						t.Fatalf("%s/%v: %v", p.Label(), ak, err)
					}
					if res.Transactions != 1200 {
						t.Fatalf("%s/%v: completed %d", p.Label(), ak, res.Transactions)
					}
				}
			}
		}
	}
}

func TestTransactionConservation(t *testing.T) {
	wl, _ := workload.ByName("KMEANS")
	p := testParams(topology.Ring, 0.5, config.NVMFirst, arb.Distance, wl)
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != res.Transactions {
		t.Fatalf("reads %d + writes %d != %d", res.Reads, res.Writes, res.Transactions)
	}
	if res.MeanHops < 1 { // response path crosses the host link at least once
		t.Fatalf("mean hops %.2f implausible", res.MeanHops)
	}
}

func TestLatencyBreakdownConsistency(t *testing.T) {
	wl, _ := workload.ByName("BUFF")
	p := testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin, wl)
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() != res.MeanLatency {
		t.Fatal("breakdown does not sum to mean latency")
	}
	if res.Breakdown.ToMem <= 0 || res.Breakdown.InMem <= 0 || res.Breakdown.FromMem <= 0 {
		t.Fatalf("component non-positive: %+v", res.Breakdown)
	}
}

func TestTechOrder(t *testing.T) {
	sys := config.Default()
	sys.DRAMFraction = 0.5
	sys.Placement = config.NVMLast
	techs, err := TechOrder(&sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(techs) != 10 {
		t.Fatalf("len %d", len(techs))
	}
	for i := 0; i < 8; i++ {
		if techs[i] != config.DRAM {
			t.Fatal("NVM-L must put DRAM first")
		}
	}
	for i := 8; i < 10; i++ {
		if techs[i] != config.NVM {
			t.Fatal("NVM-L must put NVM last")
		}
	}
	sys.Placement = config.NVMFirst
	techs, _ = TechOrder(&sys)
	if techs[0] != config.NVM || techs[1] != config.NVM || techs[2] != config.DRAM {
		t.Fatal("NVM-F must put NVM first")
	}
}

func TestLabels(t *testing.T) {
	wl, _ := workload.ByName("NW")
	cases := []struct {
		frac  float64
		place config.Placement
		topo  topology.Kind
		want  string
	}{
		{1, config.NVMLast, topology.Tree, "100%-T"},
		{0.5, config.NVMLast, topology.SkipList, "50%-SL (NVM-L)"},
		{0.5, config.NVMFirst, topology.Chain, "50%-C (NVM-F)"},
		{0, config.NVMLast, topology.MetaCube, "0%-MC"},
	}
	for _, c := range cases {
		p := testParams(c.topo, c.frac, c.place, arb.RoundRobin, wl)
		if got := p.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	wl, _ := workload.ByName("NW")
	p := testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Transactions = 0
	if _, err := Build(p); err == nil {
		t.Fatal("zero transactions must fail")
	}
	p = testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Sys.Ports = 0
	if _, err := Build(p); err == nil {
		t.Fatal("invalid system must fail")
	}
}

func TestTechBiasHops(t *testing.T) {
	sys := config.Default()
	b := techBiasHops(&sys)
	// (50ns - 18ns) / (2ns serdes + ~2.67ns serialization) ~ 6.
	if b < 4 || b > 9 {
		t.Fatalf("bias = %d hops, expected around 6", b)
	}
}

// TestNVMPlacementDistance: with NVM-L the average NVM response arrives
// later than with NVM-F on a chain (more hops), all else equal — a
// structural sanity check of placement wiring.
func TestPlacementAffectsLatency(t *testing.T) {
	wl, _ := workload.ByName("NW") // low load isolates base latency
	last := testParams(topology.Chain, 0.5, config.NVMLast, arb.RoundRobin, wl)
	first := testParams(topology.Chain, 0.5, config.NVMFirst, arb.RoundRobin, wl)
	rl, err := Simulate(last)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(first)
	if err != nil {
		t.Fatal(err)
	}
	// NVM-L pays network hops on its slow half: strictly more mean hops
	// weighted toward the far end is not guaranteed, but mean latency on
	// a chain must differ measurably between placements.
	if rl.MeanLatency == rf.MeanLatency {
		t.Fatal("placement had no effect at all")
	}
}

func TestWrongQuadrantCounted(t *testing.T) {
	wl, _ := workload.ByName("BUFF")
	p := testParams(topology.Chain, 1.0, config.NVMLast, arb.RoundRobin, wl)
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	var wrong, total uint64
	for _, quads := range in.quadrants {
		for _, q := range quads {
			s := q.Stats()
			wrong += s.WrongQuad
			total += s.Reads + s.Writes
		}
	}
	if total == 0 {
		t.Fatal("no vault traffic")
	}
	// Chain cubes have 1-2 external links but 4 quadrants: many requests
	// necessarily land on the "wrong" link.
	if wrong == 0 {
		t.Fatal("wrong-quadrant penalty never applied")
	}
}

// TestLinkFailureRerouting: redundant topologies survive a failed link
// (with a latency cost); non-redundant ones refuse to build.
func TestLinkFailureRerouting(t *testing.T) {
	wl, _ := workload.ByName("BUFF")
	// Ring: fail the cycle link adjacent to the root cube (edge index 1
	// is cube0-cube1; the host link is edge 0).
	p := testParams(topology.Ring, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Transactions = 1500
	healthy, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.FailLinks = []int{1}
	degraded, err := Simulate(p)
	if err != nil {
		t.Fatalf("ring should survive one cut: %v", err)
	}
	if degraded.MeanLatency <= healthy.MeanLatency {
		t.Fatalf("degraded ring not slower: %v vs %v",
			degraded.MeanLatency, healthy.MeanLatency)
	}

	// Skip-list: failing a central chain link forces writes onto skips.
	p = testParams(topology.SkipList, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Transactions = 1500
	p.FailLinks = []int{2} // a chain link (edge 0 is host, 1.. are chain)
	if _, err := Simulate(p); err != nil {
		t.Fatalf("skip-list should reroute around a chain cut: %v", err)
	}

	// Chain: any cut disconnects.
	p = testParams(topology.Chain, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.FailLinks = []int{3}
	if _, err := Build(p); err == nil {
		t.Fatal("chain must not survive a cut")
	}

	// Host link: never survivable.
	p = testParams(topology.Ring, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.FailLinks = []int{0}
	if _, err := Build(p); err == nil {
		t.Fatal("host link cut must fail")
	}
}
