package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/obs"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden files from current output")

func kmeans(t *testing.T) workload.Spec {
	t.Helper()
	for _, s := range workload.Suite() {
		if s.Name == "KMEANS" {
			return s
		}
	}
	t.Fatal("KMEANS workload missing from suite")
	return workload.Spec{}
}

// TestTelemetryBitIdentical is the telemetry layer's core guarantee:
// arming the registry, the hot-path instruments, and an aggressive
// sampling interval must leave every Results field — including the raw
// event count — bit-identical to a run without telemetry.
func TestTelemetryBitIdentical(t *testing.T) {
	wl := kmeans(t)
	for _, k := range []topology.Kind{topology.Chain, topology.Tree, topology.SkipList} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			p := Params{
				Sys:          config.Default(),
				Topo:         k,
				Arb:          arb.RoundRobin,
				Workload:     wl,
				Transactions: 1200,
				Seed:         7,
			}
			plain, err := Simulate(p)
			if err != nil {
				t.Fatal(err)
			}
			p.Obs = &obs.Config{Enabled: true, SampleInterval: 100 * sim.Nanosecond}
			in, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			instrumented, err := in.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, instrumented) {
				t.Errorf("telemetry perturbed results\n off: %+v\n  on: %+v", plain, instrumented)
			}
			tel := in.Telemetry
			if tel == nil || tel.Sampler.Samples() == 0 {
				t.Fatal("telemetry armed but no samples recorded")
			}
			// The instruments saw the whole run: every completion in the
			// latency histogram and the service vector.
			d := tel.Registry.Dump()
			var hist *obs.HistDump
			for i := range d.Histograms {
				if d.Histograms[i].Name == "host.latency_ps" {
					hist = &d.Histograms[i]
				}
			}
			if hist == nil || hist.Count != plain.Transactions {
				t.Fatalf("latency histogram count %+v, want %d", hist, plain.Transactions)
			}
			for _, v := range d.Vecs {
				if v.Name != "cube.service" {
					continue
				}
				var sum uint64
				for _, x := range v.Values {
					sum += x
				}
				if sum != plain.Transactions {
					t.Errorf("cube.service sums to %d, want %d", sum, plain.Transactions)
				}
				if v.Jain <= 0 || v.Jain > 1 {
					t.Errorf("service Jain index %v out of (0,1]", v.Jain)
				}
			}
		})
	}
}

// TestManifestValidates: the emitted run manifest conforms to the
// checked-in schema, with and without telemetry.
func TestManifestValidates(t *testing.T) {
	wl := kmeans(t)
	for _, withObs := range []bool{false, true} {
		p := Params{
			Sys:          config.Default(),
			Topo:         topology.Tree,
			Arb:          arb.RoundRobin,
			Workload:     wl,
			Transactions: 300,
			Seed:         7,
		}
		if withObs {
			p.Obs = &obs.Config{Enabled: true, SampleInterval: sim.Microsecond}
		}
		in, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		m := in.Manifest(res)
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateManifestJSON(buf.Bytes()); err != nil {
			t.Errorf("manifest (telemetry=%v) fails schema: %v\n%s", withObs, err, buf.String())
		}
		if withObs && m.Metrics == nil {
			t.Error("telemetry manifest missing metrics dump")
		}
		if !withObs && m.Metrics != nil {
			t.Error("plain manifest carries metrics dump")
		}
	}
}

// TestPerfettoGolden pins the Perfetto export of a small fixed-seed run
// byte for byte: identical seeds must serialize identical traces
// (stable event ordering is what makes the export diffable across
// hosts). Regenerate with -update-golden after an intentional change.
func TestPerfettoGolden(t *testing.T) {
	wl := kmeans(t)
	in, err := Build(Params{
		Sys:          config.Default(),
		Topo:         topology.Chain,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 25,
		Seed:         7,
		TraceDepth:   256,
		Obs:          &obs.Config{Enabled: true, SampleInterval: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, in.Trace, in.Telemetry.Sampler); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto export drifted from golden (%d vs %d bytes); rerun with -update-golden after verifying the change is intentional",
			buf.Len(), len(want))
	}
}
