package core

import (
	"fmt"
	"io"

	"memnet/internal/fault"
	"memnet/internal/span"
)

// WriteSpans exports the instance's completed causal spans as NDJSON
// (schema memnet/spans/v1): one header line carrying the run identity
// and sampling parameters, then one line per sampled transaction. It is
// an error to call it on an instance built without Params.Spans.
func (in *Instance) WriteSpans(w io.Writer) error {
	if in.Spans == nil {
		return fmt.Errorf("core: WriteSpans on an instance without span tracing (set Params.Spans)")
	}
	hdr := span.Header{
		Label:    in.Params.Label(),
		Workload: in.Params.Workload.Name,
		Seed:     in.Params.Seed,
		Stride:   in.Spans.Stride(),
		Dropped:  in.Spans.Dropped(),
	}
	return span.Write(w, hdr, in.Spans.Spans())
}

// TimelineEvent is one entry of the manifest's recovery timeline: a
// scheduled fault or repair with, for link repairs, the retrain window
// bounds and the end-of-run healed-bits evidence that traffic actually
// routed back over the repaired edge. JSON tags match the run-manifest
// schema's timeline entries.
type TimelineEvent struct {
	// Kind is the fault.EventKind name (e.g. "kill_link", "repair_link").
	Kind string `json:"kind"`
	// AtPs is when the event takes effect; for link repairs this is the
	// link-up instant, after the retrain window.
	AtPs int64 `json:"at_ps"`
	// StartPs is when retraining began (link repairs only).
	StartPs *int64 `json:"start_ps,omitempty"`
	// Edge is the topology edge index (link and lane events).
	Edge *int `json:"edge,omitempty"`
	// Node is the cube node (cube events).
	Node *int `json:"node,omitempty"`
	// HealedBitsAB / HealedBitsBA are the bits each direction carried
	// after its first completed retraining, read at manifest time (link
	// repairs only).
	HealedBitsAB *uint64 `json:"healed_bits_ab,omitempty"`
	HealedBitsBA *uint64 `json:"healed_bits_ba,omitempty"`
}

// timeline renders the instance's validated fault plan as manifest
// timeline entries, annotating link repairs with their retrain window
// and the per-direction healed-bits counters.
func (in *Instance) timeline() []TimelineEvent {
	if len(in.planEvents) == 0 {
		return nil
	}
	out := make([]TimelineEvent, 0, len(in.planEvents))
	for _, ev := range in.planEvents {
		te := TimelineEvent{Kind: ev.Kind.String(), AtPs: int64(ev.At)}
		switch ev.Kind {
		case fault.EvKillCube, fault.EvRepairCube:
			node := int(ev.Node)
			te.Node = &node
		default:
			edge := ev.Edge
			te.Edge = &edge
		}
		if ev.Kind == fault.EvRepairLink {
			start := int64(ev.Start)
			te.StartPs = &start
			if ev.Edge >= 0 && ev.Edge < len(in.dirs) {
				ab := in.dirs[ev.Edge].ab.HealedBits()
				ba := in.dirs[ev.Edge].ba.HealedBits()
				te.HealedBitsAB = &ab
				te.HealedBitsBA = &ba
			}
		}
		out = append(out, te)
	}
	return out
}
