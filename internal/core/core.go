// Package core composes the memnet subsystems — topology graph, links,
// routers, vault quadrants, host port, workload generator, statistics and
// energy meters — into one runnable simulated memory network, and is
// where the paper's proposals (distance-based arbitration, the skip-list
// read/write differentiated routing, MetaCube clustering, and DRAM:NVM
// mixing) come together.
//
// A simulation instance models a single host memory port and its MN.
// This is exact, not an approximation: the paper's systems interleave the
// physical address space across ports so each port's network is disjoint
// and identically loaded (§2.3); whole-system numbers are per-port
// numbers, and port-count sweeps rescale the per-port cube count and
// injection rate.
package core

import (
	"fmt"
	"sort"

	"memnet/internal/addr"
	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/fault"
	"memnet/internal/host"
	"memnet/internal/link"
	"memnet/internal/migrate"
	"memnet/internal/obs"
	"memnet/internal/packet"
	"memnet/internal/router"
	"memnet/internal/scenario"
	"memnet/internal/sim"
	"memnet/internal/span"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/trace"
	"memnet/internal/vault"
	"memnet/internal/workload"
)

// Tuning holds the microarchitectural constants that are not part of the
// paper's Table 2 but that the model needs; defaults reproduce the
// paper's qualitative behavior and are exercised by the ablation benches.
type Tuning struct {
	// VaultQueueDepth is the per-quadrant request queue (packets).
	VaultQueueDepth int
	// VaultMaxInflight bounds concurrent bank accesses per quadrant.
	VaultMaxInflight int
	// InternalBandwidthX multiplies the external link bandwidth for the
	// router<->vault connections on the logic die.
	InternalBandwidthX int
	// SwitchBandwidthBps is a memory cube's centralized-switch internal
	// bandwidth. Heavily transited cubes (every cube of a chain, the
	// root of any topology) contend here before saturating any one
	// link; this is where response priority backs requests up (§3.2).
	SwitchBandwidthBps int64
	// IfaceSwitchBandwidthBps is the same for a MetaCube interface
	// chip, whose interposer crossbar is high-radix and wider (§4.3).
	IfaceSwitchBandwidthBps int64
	// InterposerBandwidthX multiplies the external link bandwidth for
	// MetaCube interposer traces; InterposerSerDes replaces the 2 ns
	// SerDes cost on those links (wide parallel wires need no SerDes).
	InterposerBandwidthX int
	InterposerSerDes     sim.Time
	// ShortcutHi/Lo are the write-burst hysteresis watermarks (§5.3).
	ShortcutHi, ShortcutLo float64
	ShortcutWindow         int
	// NVMMaxInflight bounds concurrent array operations per NVM
	// quadrant; PCM current-delivery limits pipeline far fewer
	// concurrent array operations than DRAM.
	NVMMaxInflight int
	// MetaCubeGroup is the number of cubes per MetaCube package
	// (default 4; bounded by interposer size, §4.3).
	MetaCubeGroup int
	// WavefrontSize is the host's GPU-style group-retirement size.
	WavefrontSize int
	// WriteDemotion is the augmented arbitration's write weight divisor.
	WriteDemotion int64
	// NoVCPriority disables response-over-request link priority
	// (ablation).
	NoVCPriority bool
}

// DefaultTuning returns the standard tuning.
func DefaultTuning() Tuning {
	return Tuning{
		VaultQueueDepth:         8,
		VaultMaxInflight:        16,
		NVMMaxInflight:          8,
		InternalBandwidthX:      2,
		SwitchBandwidthBps:      300e9,
		IfaceSwitchBandwidthBps: 960e9,
		InterposerBandwidthX:    2,
		InterposerSerDes:        500 * sim.Picosecond,
		ShortcutHi:              0.65,
		ShortcutLo:              0.45,
		ShortcutWindow:          64,
		MetaCubeGroup:           4,
		WavefrontSize:           16,
		WriteDemotion:           2,
	}
}

// Params fully specifies one simulation run.
type Params struct {
	Sys  config.System
	Topo topology.Kind
	Arb  arb.Kind
	// Workload drives the port; its MeanGap is automatically rescaled
	// for port counts other than 8 (fewer ports concentrate the same
	// system load onto each port).
	Workload workload.Spec
	// Transactions is the trace length to complete.
	Transactions uint64
	// Seed makes runs reproducible; runs differing only in Seed are
	// statistically independent.
	Seed uint64
	// KeepSamples retains latency samples for percentile queries.
	KeepSamples bool
	// Replay, when non-empty, drives the port with the given recorded
	// transaction trace (cycled if shorter than Transactions) instead of
	// the synthetic workload generator; Workload then only labels the
	// run. Trace gaps are used verbatim (no port-count rescaling).
	Replay []workload.Tx
	// Record wraps the generator in a recorder; the trace is available
	// from Instance.Recorder after the run.
	Record bool
	// TraceDepth, when positive, records the last TraceDepth packet
	// lifecycle events into Instance.Trace.
	TraceDepth int
	// Migration, when non-nil, enables the epoch-based hot-block
	// migration manager (the heterogeneous-memory management layer of
	// §2.4) with the given policy.
	Migration *migrate.Config
	// FailLinks lists edge indices (into the built topology's Edges) to
	// fail before the run: a RAS experiment. Building fails if a listed
	// link's loss would disconnect the network (chains and trees have no
	// redundancy; rings, skip lists, and meshes reroute).
	FailLinks []int
	// Fault, when non-nil and enabled, arms the runtime fault-injection
	// and resilience layer: link bit errors with retry, scheduled lane
	// failures, link kills, cube kills with route-around and address
	// re-homing, and the progress watchdog. A nil or disabled Fault
	// leaves the simulation bit-identical to a build without it.
	Fault *fault.Config
	// Obs, when non-nil and enabled, arms the telemetry layer
	// (internal/obs): metrics registry, interval sampler, and the
	// exporters behind Instance.Telemetry and Instance.Manifest.
	// Telemetry never changes what the simulation does: Results are
	// bit-identical with Obs enabled and disabled.
	Obs *obs.Config
	// Spans, when non-nil, arms causal span tracing (internal/span):
	// one latency-decomposition span tree per sampled transaction,
	// collected through nil-checked hooks at existing event boundaries.
	// Like Obs, it never changes what the simulation does: Results are
	// bit-identical with Spans enabled and disabled.
	Spans *span.Config
	// Scenario, when non-nil, declares the component graph: the run
	// builds topology.BuildScenario(Scenario) instead of
	// topology.Build(Topo, ...), applies the spec's per-link and
	// per-router overrides, and skips the capacity equation (the cube
	// population is whatever the spec declares). Topo is derived from
	// the spec (its built-in kind label, or topology.Scenario) and any
	// caller-set value is ignored. The spec's workload and fault blocks
	// are NOT applied here — callers resolve them into Workload and
	// Fault (see memnet.Config and ScenarioFault) so precedence stays
	// explicit.
	Scenario *scenario.Spec
	Tuning   Tuning
}

// Label renders the configuration the way the paper labels its bars,
// e.g. "100%-T", "50%-SL (NVM-L)", "0%-MC". A free-form scenario run
// is labeled by its scenario name; a scenario that declares a built-in
// topology kind labels exactly like the compiled-in configuration.
func (p *Params) Label() string {
	if p.Topo == topology.Scenario {
		if p.Scenario != nil {
			return p.Scenario.Name
		}
		return "scenario"
	}
	pct := int(p.Sys.DRAMFraction*100 + 0.5)
	base := fmt.Sprintf("%d%%-%s", pct, p.Topo.Letter())
	if pct > 0 && pct < 100 {
		return fmt.Sprintf("%s (%s)", base, p.Sys.Placement)
	}
	return base
}

// Instance is a built, runnable simulation.
type Instance struct {
	Params    Params
	Eng       *sim.Engine
	Graph     *topology.Graph
	Mapper    *addr.Mapper
	Port      *host.Port
	Collector *stats.Collector
	Meter     *energy.Meter

	// Migrator is non-nil when Params.Migration enabled management.
	Migrator *migrate.Manager
	// Recorder is non-nil when Params.Record captured the trace.
	Recorder *workload.Recorder
	// Trace is non-nil when Params.TraceDepth enabled event tracing.
	Trace *trace.Log

	// Watchdog is non-nil when Params.Fault armed the progress watchdog.
	Watchdog *sim.Watchdog

	// Telemetry is non-nil when Params.Obs armed the metrics layer.
	Telemetry *Telemetry

	// Spans is non-nil when Params.Spans armed causal span tracing; its
	// completed spans are exported with Instance.WriteSpans.
	Spans *span.Recorder

	routers   map[packet.NodeID]*router.Router
	quadrants map[packet.NodeID][]*vault.Quadrant

	// live is the routing graph the route closures consult; it starts as
	// Graph and is swapped for a degraded (Disable) graph when a
	// scheduled fault recomputes routes. Port indices are preserved
	// across swaps, so the wired network never changes shape.
	live *topology.Graph
	// dirs holds the two directions of every external edge, indexed like
	// Graph.Edges, for scheduled faults to down-bind or kill.
	dirs []edgeDirs

	// Fault plan, precomputed and validated at Build time: one entry per
	// scheduled event; planGraphs[i] is the routing graph after event i
	// (nil when routing is unchanged), planSpares[i] the re-home target
	// of a cube kill.
	faultCfg   fault.Config
	planEvents []fault.Event
	planGraphs []*topology.Graph
	planSpares []packet.NodeID
	// rehome maps a dead cube to the surviving cube now serving its
	// address range (always fully collapsed: values are never dead).
	rehome map[packet.NodeID]packet.NodeID
	fc     stats.FaultCounters
}

// edgeDirs is the direction pair of one undirected edge.
type edgeDirs struct{ ab, ba *link.Direction } // A->B, B->A

// TechOrder returns the per-position cube technologies implied by the
// system's DRAM fraction and placement. Position 0 is nearest the host.
func TechOrder(sys *config.System) ([]config.MemTech, error) {
	nd, nn, err := sys.CubesPerPort()
	if err != nil {
		return nil, err
	}
	techs := make([]config.MemTech, 0, nd+nn)
	if sys.Placement == config.NVMFirst {
		for i := 0; i < nn; i++ {
			techs = append(techs, config.NVM)
		}
		for i := 0; i < nd; i++ {
			techs = append(techs, config.DRAM)
		}
	} else {
		for i := 0; i < nd; i++ {
			techs = append(techs, config.DRAM)
		}
		for i := 0; i < nn; i++ {
			techs = append(techs, config.NVM)
		}
	}
	return techs, nil
}

// Build constructs a simulation instance from params on a fresh engine.
func Build(p Params) (*Instance, error) {
	return buildOn(sim.NewEngine(), p)
}

// buildOn constructs a simulation instance on a caller-supplied engine,
// so a partitioned machine run can place each port's instance on its
// shard's engine. The engine must be at time zero with nothing pending.
func buildOn(eng *sim.Engine, p Params) (*Instance, error) {
	// Scenario runs skip the capacity equation: their cube population
	// is whatever the spec declares, not a solution of DRAMFraction
	// against TotalCapacity.
	var scen *scenario.Spec
	if p.Scenario != nil {
		// Clone before normalizing: the caller's spec may be shared
		// across concurrently building shards (RunMachine).
		scen = p.Scenario.Clone()
		if err := scen.Normalize(); err != nil {
			return nil, err
		}
		if err := p.Sys.ValidateBase(); err != nil {
			return nil, err
		}
	} else if err := p.Sys.Validate(); err != nil {
		return nil, err
	}
	if p.Transactions == 0 {
		return nil, fmt.Errorf("core: zero transactions")
	}
	if p.Tuning == (Tuning{}) {
		p.Tuning = DefaultTuning()
	}

	var g *topology.Graph
	if scen != nil {
		kind, err := topology.ScenarioKind(scen)
		if err != nil {
			return nil, err
		}
		p.Topo = kind
		g, err = topology.BuildScenario(scen)
		if err != nil {
			return nil, err
		}
	} else {
		techs, err := TechOrder(&p.Sys)
		if err != nil {
			return nil, err
		}
		var topoOpts []topology.Option
		if p.Tuning.MetaCubeGroup > 0 {
			topoOpts = append(topoOpts, topology.WithMetaCubeGroup(p.Tuning.MetaCubeGroup))
		}
		g, err = topology.Build(p.Topo, techs, topoOpts...)
		if err != nil {
			return nil, err
		}
	}
	// Apply RAS failure injection, highest index first so earlier
	// indices stay valid. Scenario runs must express missing links by
	// editing the spec instead: removing edges here would shift the
	// indices the spec's per-link overrides and fault events address.
	if scen != nil && len(p.FailLinks) > 0 {
		return nil, fmt.Errorf("core: FailLinks cannot combine with Scenario; drop the links from the scenario instead")
	}
	if len(p.FailLinks) > 0 {
		idx := append([]int(nil), p.FailLinks...)
		sort.Sort(sort.Reverse(sort.IntSlice(idx)))
		for _, ei := range idx {
			var err error
			g, err = g.RemoveEdge(ei)
			if err != nil {
				return nil, err
			}
		}
	}

	// Capacity-proportional interleave slots in cube position order.
	var slots []addr.CubeSlot
	for _, n := range g.Nodes {
		if n.Kind != topology.Cube {
			continue
		}
		units := 1
		if n.Tech == config.NVM {
			units = int(p.Sys.NVMCubeCapacity / p.Sys.DRAMCubeCapacity)
			if units < 1 {
				units = 1
			}
		}
		slots = append(slots, addr.CubeSlot{Node: n.ID, Tech: n.Tech, Units: units})
	}
	mapper, err := addr.NewMapper(&p.Sys, slots)
	if err != nil {
		return nil, err
	}

	meter := energy.NewMeter(p.Sys.Energy)
	collector := stats.NewCollector(p.KeepSamples)

	var tlog *trace.Log
	if p.TraceDepth > 0 {
		tlog = trace.NewLog(p.TraceDepth)
	}
	// tap wraps a deliver callback with trace recording. port is the
	// receiving component's input index (router port for Arrive/MemDone,
	// quadrant index for MemStart, -1 at the single-ported host); it is
	// passed explicitly because the tap fires before the wrapped deliver
	// stamps pk.EnterPort.
	tap := func(fn func(*packet.Packet), op trace.Op, node packet.NodeID, port int8) func(*packet.Packet) {
		if tlog == nil {
			return fn
		}
		return func(pk *packet.Packet) {
			tlog.Record(trace.Event{
				At: eng.Now(), Op: op, Node: node,
				ID: pk.ID, Kind: pk.Kind, Addr: pk.Addr,
				Port: port, VC: packet.VCOf(pk.Kind),
			})
			fn(pk)
		}
	}

	// Span recorder and its hook binders. Hooks are bound inline at the
	// wiring sites below (the tap idiom): each reads timestamps the
	// components already compute and never schedules events, so Results
	// stay bit-identical with spans on. spanNode/bindShip build every
	// edge label once at wiring time; the hot path only copies the
	// prebuilt string header into segments of sampled transactions.
	var spans *span.Recorder
	if p.Spans.Enabled() {
		spans = span.NewRecorder(*p.Spans, p.Seed)
	}
	spanNode := func(n packet.NodeID) string {
		if n == packet.HostNode {
			return "h"
		}
		return fmt.Sprintf("%d", n)
	}
	bindShip := func(d *link.Direction, label string) {
		if spans == nil {
			return
		}
		serdes := d.SerDes()
		d.SetOnShip(func(pk *packet.Packet, enq, pop, start, end sim.Time) {
			spans.Ship(pk, label, serdes, enq, pop, start, end)
		})
	}

	inst := &Instance{
		Params:    p,
		Eng:       eng,
		Graph:     g,
		Mapper:    mapper,
		Collector: collector,
		Meter:     meter,
		routers:   make(map[packet.NodeID]*router.Router),
		quadrants: make(map[packet.NodeID][]*vault.Quadrant),
		live:      g,
		rehome:    make(map[packet.NodeID]packet.NodeID),
	}

	// Precompute and validate the fault plan: every scheduled fault's
	// degraded routing graph and re-home target is built here, so an
	// unsurvivable scenario (a chain cut, a Full cube kill with no
	// redundancy, a kill leaving no memory) fails at Build, not mid-run.
	faultOn := p.Fault.Enabled()
	if faultOn {
		inst.faultCfg = p.Fault.WithDefaults()
		if err := inst.faultCfg.Validate(); err != nil {
			return nil, err
		}
		if err := inst.planFaults(); err != nil {
			return nil, err
		}
	}

	// Workload generator: per-port load scales inversely with the port
	// count (the system-wide request rate is fixed; §6.1). The host's
	// MLP window scales the same way — the processor's total outstanding
	// capacity is a system property divided across its ports.
	spec := p.Workload
	spec.MeanGap = spec.MeanGap * sim.Time(p.Sys.Ports) / 8
	if spec.Window > 0 {
		spec.Window = spec.Window * 8 / p.Sys.Ports
	}
	var gen workload.Generator
	if len(p.Replay) > 0 {
		gen = workload.NewReplay(p.Replay)
	} else {
		gen = workload.New(spec, p.Sys.PortCapacity(), p.Seed|1)
	}
	if p.Record {
		rec := workload.NewRecorder(gen)
		gen = rec
		inst.Recorder = rec
	}

	var migrator *migrate.Manager
	if p.Migration != nil {
		mc := *p.Migration
		mc.BlockBytes = p.Sys.InterleaveBytes
		migrator = migrate.New(eng, mc, func(phys uint64) config.MemTech {
			return mapper.Tech(mapper.CubeOf(phys))
		}, meter)
		inst.Migrator = migrator
	}

	window := p.Sys.MaxOutstanding * 8 / p.Sys.Ports
	if window < 1 {
		window = 1
	}
	if spec.Window > 0 && spec.Window < window {
		window = spec.Window
	}
	hostPort := host.New(eng, host.Config{
		MaxOutstanding: window,
		HostLatency:    p.Sys.HostLatency,
		Target:         p.Transactions,
		ShortcutEnable: p.Arb == arb.DistanceAugmented,
		ShortcutHi:     p.Tuning.ShortcutHi,
		ShortcutLo:     p.Tuning.ShortcutLo,
		ShortcutWindow: p.Tuning.ShortcutWindow,
		WavefrontSize:  p.Tuning.WavefrontSize,
		Observe: func() func(uint64) {
			if migrator == nil {
				return nil
			}
			return migrator.Observe
		}(),
		ReadyAt: func() func(uint64) sim.Time {
			if migrator == nil {
				return nil
			}
			return migrator.ReadyAt
		}(),
		Translate: func() func(uint64) uint64 {
			if migrator == nil {
				return nil
			}
			return migrator.Translate
		}(),
		OnInject: func() func(*packet.Packet) {
			if tlog == nil {
				return nil
			}
			return func(pk *packet.Packet) {
				tlog.Record(trace.Event{
					At: eng.Now(), Op: trace.Inject, Node: packet.HostNode,
					ID: pk.ID, Kind: pk.Kind, Addr: pk.Addr,
					Port: -1, VC: packet.VCOf(pk.Kind),
				})
			}
		}(),
	}, gen, host.Wiring{
		DestOf: func(a uint64) packet.NodeID {
			n := mapper.CubeOf(a)
			if spare, ok := inst.rehome[n]; ok {
				inst.fc.Rehomed++
				return spare
			}
			return n
		},
		DistOf: func(dst packet.NodeID, class topology.PathClass) int {
			return inst.live.Dist(class, packet.HostNode, dst)
		},
	}, collector)
	inst.Port = hostPort

	// Arbitration policy factory: one stateful policy per router. A
	// scenario can pin an individual router's policy and write
	// demotion; everything else inherits the run-wide settings.
	biasHops := techBiasHops(&p.Sys)
	newPolicy := func(kind arb.Kind, demotion int64) arb.Policy {
		cfg := arb.Config{WriteDemotion: demotion}
		if kind == arb.DistanceAugmented {
			cfg.Bias = func(n packet.NodeID) int64 {
				if mapper.Tech(n) == config.NVM {
					return biasHops
				}
				return 0
			}
		}
		return arb.New(kind, cfg)
	}

	// Routers for every non-host node.
	for _, n := range g.Nodes {
		if n.Kind == topology.Host {
			continue
		}
		xbar := p.Tuning.SwitchBandwidthBps
		if n.Kind == topology.Iface {
			xbar = p.Tuning.IfaceSwitchBandwidthBps
		}
		aKind, demotion := p.Arb, p.Tuning.WriteDemotion
		if scen != nil {
			if rs, ok := scen.RouterOf(int(n.ID)); ok {
				if rs.Arb != "" {
					k, err := scenario.ParseArb(rs.Arb)
					if err != nil {
						return nil, fmt.Errorf("core: routers.%d: %w", n.ID, err)
					}
					aKind = k
				}
				if rs.WriteDemotion != nil {
					demotion = *rs.WriteDemotion
				}
				if rs.SwitchBandwidthBps != nil {
					xbar = *rs.SwitchBandwidthBps
				}
			}
		}
		r := router.New(eng, n.ID, newPolicy(aKind, demotion), xbar)
		if spans != nil {
			label := fmt.Sprintf("r%d", n.ID)
			r.OnForward = func(pk *packet.Packet, port int, wait sim.Time) {
				spans.Seg(pk, span.RouterArb, label, eng.Now()-wait, wait)
			}
		}
		inst.routers[n.ID] = r
	}

	// Per-edge link direction pairs, attached in adjacency order so that
	// graph port indices equal router port indices.
	extLink := link.Config{
		BandwidthBps:  p.Sys.LinkBandwidthBps(),
		SerDesLatency: p.Sys.SerDesLatency,
		QueueDepth:    p.Sys.LinkBufferPackets,
		Credits:       p.Sys.LinkBufferPackets,
		NoVCPriority:  p.Tuning.NoVCPriority,
		CountHop:      true,
	}
	ipLink := extLink
	ipLink.BandwidthBps *= int64(p.Tuning.InterposerBandwidthX)
	ipLink.SerDesLatency = p.Tuning.InterposerSerDes

	dirs := make([]edgeDirs, len(g.Edges))
	for ei, e := range g.Edges {
		cfg := extLink
		if e.Interposer {
			cfg = ipLink
		}
		// Per-link scenario overrides; scen.Links is index-aligned with
		// g.Edges by construction (BuildScenario preserves link order).
		if scen != nil {
			l := scen.Links[ei]
			if l.BandwidthBps != nil {
				cfg.BandwidthBps = *l.BandwidthBps
			}
			if l.SerDesPs != nil {
				cfg.SerDesLatency = sim.Time(*l.SerDesPs) * sim.Picosecond
			}
			if l.BufferPackets != nil {
				cfg.QueueDepth = *l.BufferPackets
				cfg.Credits = *l.BufferPackets
			}
			if l.VCs != nil {
				cfg.NoVCPriority = *l.VCs == 1
			}
		}
		dirs[ei] = edgeDirs{
			ab: link.New(eng, cfg, meter),
			ba: link.New(eng, cfg, meter),
		}
		// Bit errors afflict package-to-package SerDes channels; the
		// wide parallel interposer traces inside a MetaCube are exempt.
		if faultOn && !e.Interposer {
			fa := inst.faultCfg.LinkFault(ei, 0)
			fb := inst.faultCfg.LinkFault(ei, 1)
			if scen != nil && scen.Links[ei].MaxRetries != nil {
				if fa != nil {
					fa.MaxRetries = *scen.Links[ei].MaxRetries
				}
				if fb != nil {
					fb.MaxRetries = *scen.Links[ei].MaxRetries
				}
			}
			dirs[ei].ab.AttachFault(fa)
			dirs[ei].ba.AttachFault(fb)
		}
		if spans != nil {
			la, lb := spanNode(e.A), spanNode(e.B)
			bindShip(dirs[ei].ab, la+">"+lb)
			bindShip(dirs[ei].ba, lb+">"+la)
		}
	}
	inst.dirs = dirs

	for _, n := range g.Nodes {
		if n.Kind == topology.Host {
			continue
		}
		r := inst.routers[n.ID]
		for port := 0; port < g.Degree(n.ID); port++ {
			e := g.EdgeAt(n.ID, port)
			var out, in *link.Direction
			ei := g.EdgeIndex(n.ID, port)
			if e.A == n.ID {
				out, in = dirs[ei].ab, dirs[ei].ba
			} else {
				out, in = dirs[ei].ba, dirs[ei].ab
			}
			depth := p.Sys.LinkBufferPackets
			if scen != nil && scen.Links[ei].BufferPackets != nil {
				depth = *scen.Links[ei].BufferPackets
			}
			buf := link.NewBuffer(depth, in.ReturnCredit)
			idx := r.AttachPort(buf, out)
			in.SetDeliver(tap(r.Deliver(idx), trace.Arrive, n.ID, int8(idx)))
		}
	}

	// Host wiring: the host's single link.
	hostEdgeIdx := g.EdgeIndex(packet.HostNode, 0)
	he := g.Edges[hostEdgeIdx]
	var hostOut, hostIn *link.Direction
	if he.A == packet.HostNode {
		hostOut, hostIn = dirs[hostEdgeIdx].ab, dirs[hostEdgeIdx].ba
	} else {
		hostOut, hostIn = dirs[hostEdgeIdx].ba, dirs[hostEdgeIdx].ab
	}
	hostPort.Attach(hostOut)
	if spans != nil {
		hostPort.SetSpanHook(func(pk *packet.Packet, wait sim.Time) {
			spans.Start(pk, eng.Now(), wait)
		})
	}
	hostIn.SetDeliver(tap(func(pk *packet.Packet) {
		vc := packet.VCOf(pk.Kind)
		// Telemetry and spans read the response before Receive retires
		// (and may pool) it; inst.Telemetry/inst.Spans stay nil when the
		// layer is off and the methods no-op on nil.
		inst.Telemetry.complete(pk, eng.Now())
		inst.Spans.Complete(pk, eng.Now())
		hostPort.Receive(pk)
		hostIn.ReturnCredit(vc)
	}, trace.Complete, packet.HostNode, -1))

	// Vault quadrants behind every cube.
	intLink := link.Config{
		BandwidthBps:  p.Sys.LinkBandwidthBps() * int64(p.Tuning.InternalBandwidthX),
		SerDesLatency: 0,
		QueueDepth:    p.Tuning.VaultQueueDepth,
		Credits:       p.Tuning.VaultQueueDepth,
		CountHop:      false,
	}
	for _, n := range g.Nodes {
		if n.Kind != topology.Cube {
			continue
		}
		r := inst.routers[n.ID]
		extDeg := g.Degree(n.ID)
		node := n.ID
		retDist := func(pk *packet.Packet) int {
			// Responses travel the short (shortest-path) table.
			return inst.live.Dist(topology.PathShort, node, pk.Src)
		}
		inflight := p.Tuning.VaultMaxInflight
		if n.Tech == config.NVM && p.Tuning.NVMMaxInflight > 0 {
			inflight = p.Tuning.NVMMaxInflight
		}
		quads := make([]*vault.Quadrant, p.Sys.Quadrants)
		for qi := 0; qi < p.Sys.Quadrants; qi++ {
			toQuad := link.New(eng, intLink, meter)
			fromQuad := link.New(eng, intLink, meter)
			q := vault.New(eng, vault.Config{
				Tech:        n.Tech,
				Timing:      p.Sys.Timing(n.Tech),
				Index:       qi,
				ExtPorts:    extDeg,
				Penalty:     p.Sys.WrongQuadrantPenalty,
				Banks:       p.Sys.BanksPerQuadrant(),
				MaxInflight: inflight,
				BankMap: func(a uint64) (int, int64) {
					_, _, bank, row := mapper.Decompose(a)
					return bank, row
				},
				ReturnDist: retDist,
				Meter:      meter,
			})
			quadIn := link.NewBuffer(p.Tuning.VaultQueueDepth, toQuad.ReturnCredit)
			q.Attach(quadIn, fromQuad)
			toQuad.SetDeliver(tap(q.Deliver(), trace.MemStart, node, int8(qi)))

			routerIn := link.NewBuffer(p.Tuning.VaultQueueDepth, fromQuad.ReturnCredit)
			idx := r.AttachPort(routerIn, toQuad)
			fromQuad.SetDeliver(tap(r.Deliver(idx), trace.MemDone, node, int8(idx)))
			if spans != nil {
				bindShip(toQuad, fmt.Sprintf("%d>q%d", node, qi))
				bindShip(fromQuad, fmt.Sprintf("q%d>%d", qi, node))
				label := fmt.Sprintf("v%d.q%d", node, qi)
				q.OnIssue = func(pk *packet.Packet, wait sim.Time) {
					spans.VaultIssue(pk, label, eng.Now(), wait)
				}
			}
			quads[qi] = q
		}
		inst.quadrants[n.ID] = quads
	}

	// Routing functions, closing over the host's shortcut state.
	for _, n := range g.Nodes {
		if n.Kind == topology.Host {
			continue
		}
		node := n.ID
		extDeg := g.Degree(node)
		isCube := n.Kind == topology.Cube
		inst.routers[node].SetRoute(func(pk *packet.Packet) int {
			if isCube && pk.Dst == node {
				if spare, ok := inst.rehome[node]; ok && pk.Kind.IsRequest() {
					// This cube's memory died after the packet departed:
					// bounce it to the spare now serving the address range.
					pk.Dst = spare
					pk.Distance = inst.live.Dist(topology.PathShort, packet.HostNode, spare)
					inst.fc.Bounced++
				} else {
					_, quad, _, _ := mapper.Decompose(pk.Addr)
					return extDeg + quad
				}
			}
			port := inst.live.NextPort(topology.PathClass(pk.Class), node, pk.Dst)
			if port < 0 {
				panic(fmt.Sprintf("core: no route from %d to %d", node, pk.Dst))
			}
			return port
		})
	}

	inst.Trace = tlog
	inst.Spans = spans

	// Arm the resilience machinery last so a disabled Fault config adds
	// zero events and the golden determinism fingerprints stay intact.
	if faultOn {
		for i, ev := range inst.planEvents {
			i := i
			if ev.Kind == fault.EvRepairLink {
				// The retraining window opens at the repair instant; the
				// route-back and credit re-arm fire at ev.At when it
				// closes (applyFault's EvRepairLink arm).
				edge := ev.Edge
				eng.At(ev.Start, func() {
					inst.dirs[edge].ab.BeginRetrain()
					inst.dirs[edge].ba.BeginRetrain()
				})
			}
			eng.At(ev.At, func() { inst.applyFault(i) })
		}
		inst.Watchdog = sim.NewWatchdog(eng,
			inst.faultCfg.WatchdogInterval, inst.faultCfg.WatchdogStale,
			collector.Completed,
			func() bool { return hostPort.Inflight() > 0 })
		inst.Watchdog.Arm()
	}

	// Arm telemetry after the network is fully wired (every router port
	// attached) so registration order — and therefore every export — is
	// a pure function of the topology.
	if p.Obs.On() {
		buildTelemetry(inst, p.Obs)
	}

	// Prime the injection process.
	eng.Schedule(0, hostPort.Kick)
	return inst, nil
}

// planFaults validates the scheduled faults and repairs against the
// built topology and precomputes, per event, the routing graph in
// force after it and (for cube kills) the re-home spare. Walks the
// schedule in time order carrying the cumulative dead set, exactly as
// applyFault will at runtime — a link repair's slot in the walk is its
// effective link-up instant (retraining end), so the cumulative order
// here equals the order routing actually changes mid-run.
func (in *Instance) planFaults() error {
	evs, err := in.faultCfg.Build()
	if err != nil {
		return err
	}
	in.planEvents = evs
	in.planGraphs = make([]*topology.Graph, len(evs))
	in.planSpares = make([]packet.NodeID, len(evs))

	cur := in.Graph
	deadCubes := make(map[packet.NodeID]bool)
	fullDead := make(map[packet.NodeID]bool)
	for i, ev := range evs {
		switch ev.Kind {
		case fault.EvLaneFail, fault.EvLaneRepair:
			if ev.Edge >= len(in.Graph.Edges) {
				return fmt.Errorf("core: lane fault on nonexistent edge %d", ev.Edge)
			}
			// Bandwidth changes; routing is untouched.
		case fault.EvKillLink:
			if ev.Edge >= len(in.Graph.Edges) {
				return fmt.Errorf("core: kill of nonexistent edge %d", ev.Edge)
			}
			ng, err := cur.Disable([]int{ev.Edge}, nil)
			if err != nil {
				e := in.Graph.Edges[ev.Edge]
				return fmt.Errorf("core: killing link %d (%d-%d) at %v: %w",
					ev.Edge, e.A, e.B, ev.At, err)
			}
			cur, in.planGraphs[i] = ng, ng
		case fault.EvRepairLink:
			if ev.Edge >= len(in.Graph.Edges) {
				return fmt.Errorf("core: repair of nonexistent edge %d", ev.Edge)
			}
			ng, err := cur.Enable([]int{ev.Edge}, nil)
			if err != nil {
				return fmt.Errorf("core: repairing link %d at %v: %w", ev.Edge, ev.At, err)
			}
			cur, in.planGraphs[i] = ng, ng
		case fault.EvKillCube:
			if int(ev.Node) >= len(in.Graph.Nodes) ||
				in.Graph.Nodes[ev.Node].Kind != topology.Cube {
				return fmt.Errorf("core: kill target %d is not a memory cube", ev.Node)
			}
			if deadCubes[ev.Node] {
				return fmt.Errorf("core: cube %d killed twice", ev.Node)
			}
			if ev.Full {
				// The whole package dies: no transit either. Only
				// redundant topologies survive this; Disable rejects the
				// rest.
				ng, err := cur.Disable(nil, []packet.NodeID{ev.Node})
				if err != nil {
					return fmt.Errorf("core: full kill of cube %d at %v: %w",
						ev.Node, ev.At, err)
				}
				cur, in.planGraphs[i] = ng, ng
				fullDead[ev.Node] = true
			}
			deadCubes[ev.Node] = true
			spare, err := nearestSurvivor(cur, ev.Node, deadCubes)
			if err != nil {
				return fmt.Errorf("core: killing cube %d at %v: %w", ev.Node, ev.At, err)
			}
			in.planSpares[i] = spare
		case fault.EvRepairCube:
			if !deadCubes[ev.Node] {
				return fmt.Errorf("core: repair of cube %d at %v, which is not dead", ev.Node, ev.At)
			}
			if fullDead[ev.Node] {
				ng, err := cur.Enable(nil, []packet.NodeID{ev.Node})
				if err != nil {
					return fmt.Errorf("core: repairing cube %d at %v: %w", ev.Node, ev.At, err)
				}
				cur, in.planGraphs[i] = ng, ng
				delete(fullDead, ev.Node)
			}
			// The cube is a kill candidate and a re-home target again;
			// victims re-homed elsewhere keep their existing spares
			// (repair restores only this cube's own address range).
			delete(deadCubes, ev.Node)
		}
	}
	return nil
}

// nearestSurvivor picks the deterministic re-home target for a dead
// cube: the surviving cube nearest to it on the degraded graph, ties
// broken toward the lowest node ID.
func nearestSurvivor(g *topology.Graph, victim packet.NodeID, dead map[packet.NodeID]bool) (packet.NodeID, error) {
	best, bestDist := packet.NodeID(-1), -1
	for _, id := range g.CubeIDs() {
		if dead[id] {
			continue
		}
		d := g.Dist(topology.PathShort, victim, id)
		if d < 0 {
			continue
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = id, d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no surviving cube to re-home onto")
	}
	return best, nil
}

// applyFault fires scheduled fault or repair i at its simulated time:
// swap in the precomputed route tables, kill, degrade, or restore the
// hardware, update the re-home map, and kick every router so stranded
// heads re-arbitrate under the new tables.
func (in *Instance) applyFault(i int) {
	ev := in.planEvents[i]
	switch ev.Kind {
	case fault.EvLaneFail:
		in.dirs[ev.Edge].ab.Downbind()
		in.dirs[ev.Edge].ba.Downbind()
		in.fc.LaneFails++
		return // no routing change, no kicks needed
	case fault.EvLaneRepair:
		in.dirs[ev.Edge].ab.Rebind()
		in.dirs[ev.Edge].ba.Rebind()
		in.fc.LaneRepairs++
		return // bandwidth-only, like the flap down
	case fault.EvRepairLink:
		// Routes swap back first, so the retrained directions' space
		// callbacks and the kicks below route onto the healed edge.
		in.live = in.planGraphs[i]
		in.dirs[ev.Edge].ab.CompleteRetrain()
		in.dirs[ev.Edge].ba.CompleteRetrain()
		in.fc.LinksRepaired++
	case fault.EvRepairCube:
		if g := in.planGraphs[i]; g != nil {
			in.live = g
		}
		// New injections target the repaired cube again; packets
		// already bounced to the spare complete there.
		delete(in.rehome, ev.Node)
		in.fc.CubesRepaired++
	case fault.EvKillLink:
		in.live = in.planGraphs[i]
		e := in.Graph.Edges[ev.Edge]
		// Drain each direction's queued and retrying packets back into
		// the router at its sending end for re-routing. The host edge
		// cannot be killed (it always disconnects), so both ends route.
		ra, rb := in.routers[e.A], in.routers[e.B]
		in.dirs[ev.Edge].ab.Fail(func(p *packet.Packet) { ra.Reinject(p) })
		in.dirs[ev.Edge].ba.Fail(func(p *packet.Packet) { rb.Reinject(p) })
		in.fc.LinksKilled++
	case fault.EvKillCube:
		if g := in.planGraphs[i]; g != nil {
			in.live = g
		}
		spare := in.planSpares[i]
		// Collapse chains: victims previously re-homed onto this cube
		// move with it, so lookups stay single-level. Collect and sort
		// the victims before rewriting so the sweep order (and any
		// future side effects hung off it) stays deterministic.
		var victims []packet.NodeID
		for k, v := range in.rehome {
			if v != ev.Node {
				continue
			}
			victims = append(victims, k)
		}
		sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })
		for _, k := range victims {
			in.rehome[k] = spare
		}
		in.rehome[ev.Node] = spare
		in.fc.CubesKilled++
	}
	// Kick in deterministic node order: sweep scheduling order is part
	// of the reproducibility guarantee for faulty runs.
	for _, n := range in.Graph.Nodes {
		if r := in.routers[n.ID]; r != nil {
			r.Kick()
		}
	}
}

// techBiasHops converts the NVM-vs-DRAM read latency gap into
// hop-equivalents for the augmented arbitration weight, following the
// paper's empirical tuning "using both average network hop latency and
// average memory access latency for each cube technology type" (§5.3).
func techBiasHops(sys *config.System) int64 {
	dr := sys.DRAMTiming.TRCD + sys.DRAMTiming.TCL
	nv := sys.NVMTiming.TRCD + sys.NVMTiming.TCL
	hop := sys.SerDesLatency + sim.BitTime(packet.DataBits, sys.LinkBandwidthBps())
	if hop <= 0 {
		return 0
	}
	b := int64((nv - dr) / hop)
	if b < 0 {
		b = 0
	}
	return b
}

// Results summarizes a completed run.
type Results struct {
	// Label is the paper-style configuration name (e.g. "50%-SL (NVM-L)").
	Label string
	// Workload names the traffic proxy that drove the run.
	Workload string
	// FinishTime is when the last transaction completed — the
	// execution-time metric behind every speedup in the paper.
	FinishTime sim.Time
	// MeanLatency is the average end-to-end transaction latency.
	MeanLatency sim.Time
	// Breakdown splits MeanLatency into to-memory / in-memory /
	// from-memory components (Fig. 5).
	Breakdown stats.Breakdown
	// Energy is the dynamic-energy account (Fig. 15).
	Energy energy.Breakdown
	// Transactions, Reads, and Writes count completed operations.
	Transactions uint64
	Reads        uint64
	Writes       uint64
	// MeanHops is the average response-path hop count (requests take a
	// symmetric path except for skip-list writes).
	MeanHops float64
	// Events is the number of simulation events executed (a cost and
	// determinism fingerprint).
	Events uint64
	// Fault aggregates the resilience layer's counters; all-zero when
	// fault injection is disabled.
	Fault stats.FaultCounters
}

// Run executes the instance until the host completes its trace. It
// returns an error if the simulation deadlocks (event queue drains
// early) or exceeds the safety horizon.
func (in *Instance) Run() (Results, error) {
	const horizon = 10 * sim.Second
	progressed := in.Eng.RunWhile(func() bool {
		if in.Eng.Now() > horizon {
			return false
		}
		if in.Watchdog != nil && in.Watchdog.Tripped() {
			return false
		}
		return !in.Port.Done()
	})
	if in.Watchdog != nil && in.Watchdog.Tripped() {
		// In a partitioned machine run each shard has its own clock; a
		// wedge is local to one shard, so name it and report its local
		// trip time rather than implying a global stall.
		where := ""
		if in.Watchdog.Shard() != sim.NoShard {
			where = fmt.Sprintf(" [shard %d, local time %v]",
				in.Watchdog.Shard(), in.Watchdog.TrippedAt())
		}
		return Results{}, fmt.Errorf(
			"core: watchdog%s: no forward progress over %v with packets in flight in %s/%s (%d/%d transactions at %v)\n%s",
			where,
			sim.Time(in.faultCfg.WatchdogStale)*in.faultCfg.WatchdogInterval,
			in.Params.Label(), in.Params.Workload.Name,
			in.Collector.Completed(), in.Params.Transactions, in.Eng.Now(),
			in.WedgeDump())
	}
	if !progressed && !in.Port.Done() {
		return Results{}, fmt.Errorf(
			"core: deadlock in %s/%s: %d/%d transactions after %v",
			in.Params.Label(), in.Params.Workload.Name,
			in.Collector.Completed(), in.Params.Transactions, in.Eng.Now())
	}
	if !in.Port.Done() {
		return Results{}, fmt.Errorf("core: horizon exceeded in %s/%s",
			in.Params.Label(), in.Params.Workload.Name)
	}
	return Results{
		Label:        in.Params.Label(),
		Workload:     in.Params.Workload.Name,
		FinishTime:   in.Collector.FinishTime(),
		MeanLatency:  in.Collector.MeanLatency(),
		Breakdown:    in.Collector.MeanBreakdown(),
		Energy:       in.Meter.Report(),
		Transactions: in.Collector.Completed(),
		Reads:        in.Collector.Reads(),
		Writes:       in.Collector.Writes(),
		MeanHops:     in.Collector.MeanHops(),
		Events:       in.Eng.Fired(),
		Fault:        in.FaultCounters(),
	}, nil
}

// FaultCounters aggregates the run's resilience counters from the core
// bookkeeping, every external link direction, and every router.
func (in *Instance) FaultCounters() stats.FaultCounters {
	fc := in.fc
	for _, d := range in.dirs {
		for _, dir := range [2]*link.Direction{d.ab, d.ba} {
			s := dir.Stats()
			fc.CRCErrors += s.CRCErrors
			fc.Retries += s.Retries
			fc.Dropped += s.Dropped
			fc.HealedBits += dir.HealedBits()
		}
	}
	for _, n := range in.Graph.Nodes {
		if r := in.routers[n.ID]; r != nil {
			fc.Rerouted += r.Rerouted
		}
	}
	return fc
}

// Simulate is the one-call convenience: build and run.
func Simulate(p Params) (Results, error) {
	in, err := Build(p)
	if err != nil {
		return Results{}, err
	}
	return in.Run()
}
