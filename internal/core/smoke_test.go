package core

import (
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// testParams returns a small but complete configuration for fast tests.
func testParams(topo topology.Kind, dramFrac float64, place config.Placement,
	arbKind arb.Kind, wl workload.Spec) Params {
	sys := config.Default()
	sys.DRAMFraction = dramFrac
	sys.Placement = place
	return Params{
		Sys:          sys,
		Topo:         topo,
		Arb:          arbKind,
		Workload:     wl,
		Transactions: 2000,
		Seed:         42,
	}
}

func TestSmokeAllTopologies(t *testing.T) {
	wl, err := workload.ByName("BUFF")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topology.Kinds {
		p := testParams(topo, 1.0, config.NVMLast, arb.RoundRobin, wl)
		res, err := Simulate(p)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if res.Transactions < p.Transactions {
			t.Fatalf("%v: only %d transactions", topo, res.Transactions)
		}
		t.Logf("%-9v finish=%v meanLat=%v to/in/from=%v/%v/%v hops=%.2f events=%d",
			topo, res.FinishTime, res.MeanLatency,
			res.Breakdown.ToMem, res.Breakdown.InMem, res.Breakdown.FromMem,
			res.MeanHops, res.Events)
	}
}

func TestSmokeMixedNVM(t *testing.T) {
	wl, _ := workload.ByName("KMEANS")
	for _, frac := range []float64{0.5, 0} {
		for _, place := range []config.Placement{config.NVMLast, config.NVMFirst} {
			for _, ak := range []arb.Kind{arb.RoundRobin, arb.Distance, arb.DistanceAugmented} {
				p := testParams(topology.Tree, frac, place, ak, wl)
				res, err := Simulate(p)
				if err != nil {
					t.Fatalf("frac=%v %v %v: %v", frac, place, ak, err)
				}
				t.Logf("%-16s arb=%-18v finish=%v meanLat=%v", p.Label(), ak,
					res.FinishTime, res.MeanLatency)
			}
		}
	}
}
