package core

import (
	"fmt"

	"memnet/internal/fault"
	"memnet/internal/packet"
	"memnet/internal/scenario"
	"memnet/internal/sim"
)

// ScenarioFault converts a scenario's embedded fault block to a
// fault.Config for Params.Fault: picosecond times become sim.Time,
// cube names resolve to node IDs, link indices pass through (the spec
// and the built graph share edge order). It returns nil when the
// scenario embeds no fault block. The conversion lives here rather
// than in package scenario because fault imports topology (chaos-plan
// generation) and topology imports scenario.
func ScenarioFault(s *scenario.Spec) (*fault.Config, error) {
	f := s.Fault
	if f == nil {
		return nil, nil
	}
	cfg := &fault.Config{
		Seed:          f.Seed,
		LinkBER:       f.LinkBER,
		MaxRetries:    f.MaxRetries,
		RetryBackoff:  sim.Time(f.RetryBackoffPs) * sim.Picosecond,
		RetrainWindow: sim.Time(f.RetrainWindowPs) * sim.Picosecond,
		Watchdog:      f.Watchdog,
	}
	for _, ev := range f.KillLinks {
		cfg.KillLinks = append(cfg.KillLinks, fault.LinkKill{Edge: ev.Link, At: sim.Time(ev.AtPs) * sim.Picosecond})
	}
	for _, ev := range f.RepairLinks {
		cfg.RepairLinks = append(cfg.RepairLinks, fault.LinkRepair{Edge: ev.Link, At: sim.Time(ev.AtPs) * sim.Picosecond})
	}
	for _, ev := range f.LaneFails {
		cfg.LaneFails = append(cfg.LaneFails, fault.LaneFail{Edge: ev.Link, At: sim.Time(ev.AtPs) * sim.Picosecond})
	}
	for _, ev := range f.LaneFlaps {
		cfg.LaneFlaps = append(cfg.LaneFlaps, fault.LaneFlap{
			Edge: ev.Link,
			Down: sim.Time(ev.DownPs) * sim.Picosecond,
			Up:   sim.Time(ev.UpPs) * sim.Picosecond,
		})
	}
	cube := func(field, name string) (packet.NodeID, error) {
		id, ok := s.NodeID(name)
		if !ok {
			return 0, fmt.Errorf("scenario: fault.%s: unknown node %q", field, name)
		}
		return packet.NodeID(id), nil
	}
	for _, ev := range f.KillCubes {
		id, err := cube("kill_cubes", ev.Cube)
		if err != nil {
			return nil, err
		}
		cfg.KillCubes = append(cfg.KillCubes, fault.CubeKill{Node: id, At: sim.Time(ev.AtPs) * sim.Picosecond, Full: ev.Full})
	}
	for _, ev := range f.RepairCubes {
		id, err := cube("repair_cubes", ev.Cube)
		if err != nil {
			return nil, err
		}
		cfg.RepairCubes = append(cfg.RepairCubes, fault.CubeRepair{Node: id, At: sim.Time(ev.AtPs) * sim.Picosecond})
	}
	return cfg, nil
}
