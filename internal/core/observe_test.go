package core

import (
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func TestReport(t *testing.T) {
	wl, _ := workload.ByName("KMEANS")
	p := testParams(topology.MetaCube, 0.5, config.NVMLast, arb.RoundRobin, wl)
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	reps := in.Report()
	if len(reps) != in.Graph.NumNodes()-1 { // all nodes except the host
		t.Fatalf("reports = %d, want %d", len(reps), in.Graph.NumNodes()-1)
	}
	var sawIface, sawCube bool
	var totalVault uint64
	for i, nr := range reps {
		if i > 0 && nr.Node <= reps[i-1].Node {
			t.Fatal("reports not sorted by node")
		}
		switch nr.Kind {
		case topology.Iface:
			sawIface = true
			if nr.Vault.Reads+nr.Vault.Writes != 0 {
				t.Fatal("interface chips have no vault traffic")
			}
			if nr.Forwarded == 0 {
				t.Fatalf("iface %d forwarded nothing", nr.Node)
			}
		case topology.Cube:
			sawCube = true
			totalVault += nr.Vault.Reads + nr.Vault.Writes
			if hits := nr.RowHitRate(); hits < 0 || hits > 1 {
				t.Fatalf("row hit rate %v", hits)
			}
		}
	}
	if !sawIface || !sawCube {
		t.Fatal("missing node kinds in report")
	}
	if totalVault != p.Transactions {
		t.Fatalf("vault accesses %d != transactions %d", totalVault, p.Transactions)
	}

	txt := in.ReportText()
	for _, want := range []string{"node", "iface", "cube", "NVM", "DRAM", "rowhit"} {
		if !strings.Contains(txt, want) {
			t.Errorf("ReportText missing %q", want)
		}
	}
}

// TestGoldenDeterminism pins exact results for two configurations so any
// unintentional change to the simulator's behavior is caught. If a model
// change is intentional, update the constants (and re-run mnexp to
// refresh results/ and EXPERIMENTS.md).
func TestGoldenDeterminism(t *testing.T) {
	wl, _ := workload.ByName("KMEANS")
	p := testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Transactions = 1000
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("repeat run differs:\n%+v\n%+v", a, b)
	}
	// Structural invariants of the golden run.
	if a.Transactions != 1000 || a.Reads+a.Writes != 1000 {
		t.Fatalf("accounting: %+v", a)
	}
	if a.MeanHops < 2 || a.MeanHops > 8 {
		t.Fatalf("mean hops %v out of plausible range", a.MeanHops)
	}
}

// TestHopDistanceStamping: the collector's hop count reflects the
// response path (MakeResponse resets the counter), so for a read-only
// low-load workload it should match the topology's mean host distance.
func TestHopDistanceStamping(t *testing.T) {
	spec := workload.Spec{
		Name: "RO", ReadFraction: 1.0, MeanGap: 20 * sim.Nanosecond,
		SeqProb: 0.5, SeqStride: 64,
	}
	p := Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Arb:          arb.RoundRobin,
		Workload:     spec,
		Transactions: 2000,
		Seed:         3,
	}
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := in.Graph.MeanHostDist()
	if res.MeanHops < want*0.9 || res.MeanHops > want*1.1 {
		t.Fatalf("mean hops %.2f, want ~%.2f (mean host distance)",
			res.MeanHops, want)
	}
	_ = packet.HostNode
}

// TestParkingLotUnfairness checks §3.2's router-queuing observation:
// "the queuing latencies for the router input-ports were highly
// unbalanced, with the cubes closer to the processor showing more
// problems". Under a saturating read burst, the total input-buffer
// residency at the cube adjacent to the host must far exceed that of
// the cube at the far end of the chain.
func TestParkingLotUnfairness(t *testing.T) {
	// Saturate the response path: a read-heavy open-loop burst (large
	// MLP window) drives every toward-host output past capacity, so
	// input buffers contend and the round-robin bias becomes visible.
	wl := workload.Spec{
		Name: "SAT", ReadFraction: 0.9, MeanGap: 1200 * sim.Picosecond,
		SeqProb: 0.5, SeqStride: 64,
	}
	p := testParams(topology.Chain, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Sys.MaxOutstanding = 512
	p.Transactions = 6000
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	rep := in.Report()
	near, far := rep[0], rep[len(rep)-1]
	if near.Node != 1 {
		t.Fatalf("expected node 1 first, got %d", near.Node)
	}
	if near.InputWait <= 4*far.InputWait {
		t.Fatalf("queuing not concentrated near the host: node1 %v vs node16 %v",
			near.InputWait, far.InputWait)
	}
	// And it ramps: the near half of the chain outweighs the far half.
	var nearHalf, farHalf sim.Time
	for i, nr := range rep {
		if i < len(rep)/2 {
			nearHalf += nr.InputWait
		} else {
			farHalf += nr.InputWait
		}
	}
	if nearHalf <= farHalf {
		t.Fatalf("input-wait gradient inverted: near %v vs far %v", nearHalf, farHalf)
	}
}

// TestTracing: a traced run records the full lifecycle of the final
// packets — inject at the host, arrivals along the path, memory service
// at the destination cube, and completion.
func TestTracing(t *testing.T) {
	wl, _ := workload.ByName("NW")
	p := testParams(topology.Chain, 1.0, config.NVMLast, arb.RoundRobin, wl)
	p.Transactions = 300
	p.TraceDepth = 100000
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Trace == nil || in.Trace.Total() == 0 {
		t.Fatal("no trace recorded")
	}
	events := in.Trace.Events()
	// Pick a packet with a full retained lifecycle and validate ordering.
	checked := 0
	for id := uint64(1); id <= 300 && checked < 20; id++ {
		evs := in.Trace.Packet(id)
		var hasInject, hasMemStart, hasMemDone, hasComplete bool
		for i, e := range evs {
			if i > 0 && e.At < evs[i-1].At {
				t.Fatal("trace not chronological within a packet")
			}
			switch e.Op {
			case 0: // Inject
				hasInject = true
			case 2:
				hasMemStart = true
			case 3:
				hasMemDone = true
			case 4:
				hasComplete = true
			}
		}
		if hasInject && hasComplete {
			if !hasMemStart || !hasMemDone {
				t.Fatalf("packet %d lifecycle incomplete: %v", id, evs)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("no complete lifecycles among %d events", len(events))
	}
}
