package core

import (
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/migrate"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func TestMigrationEndToEnd(t *testing.T) {
	spec := workload.Spec{
		Name: "HOTSET", ReadFraction: 0.7, MeanGap: 3 * sim.Nanosecond,
		SeqProb: 0.30, SeqStride: 64,
		HotFraction: 0.65, HotRegion: 0.125 / (256 * 1024),
	}
	results := map[bool]Results{}
	for _, mig := range []bool{false, true} {
		sys := config.Default()
		sys.DRAMFraction = 0.5
		p := Params{
			Sys: sys, Topo: topology.Tree, Arb: arb.RoundRobin,
			Workload: spec, Transactions: 30000, Seed: 1, KeepSamples: true,
		}
		if mig {
			mc := migrate.DefaultConfig()
			mc.Epoch = 10 * sim.Microsecond
			mc.HotThreshold = 2
			mc.MaxSwapsPerEpoch = 128
			mc.Blackout = 0
			p.Migration = &mc
		}
		in, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("mig=%v finish=%v lat=%v p99=%v parks=%d swaps=%v",
			mig, res.FinishTime, res.MeanLatency,
			in.Collector.Percentile(99), in.Port.Parks(),
			mig && in.Migrator != nil)
		results[mig] = res
		if mig {
			if in.Migrator.Stats().Swaps == 0 {
				t.Fatal("no migrations happened")
			}
			// The coherence ordering point must keep working across the
			// indirection: parked reads release (a bounded count parks).
			if in.Port.Parks() > 1000 {
				t.Fatalf("parks exploded (%d): coherence keying broken under migration",
					in.Port.Parks())
			}
		}
	}
	// Migration must improve the mean latency (hot reads leave NVM) and
	// must not slow completion down.
	if results[true].MeanLatency >= results[false].MeanLatency {
		t.Fatalf("migration did not improve latency: %v vs %v",
			results[true].MeanLatency, results[false].MeanLatency)
	}
	if float64(results[true].FinishTime) > float64(results[false].FinishTime)*1.01 {
		t.Fatalf("migration slowed completion: %v vs %v",
			results[true].FinishTime, results[false].FinishTime)
	}
}
