package core

import (
	"testing"
	"testing/quick"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/migrate"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// TestFuzzConfigurations drives randomized short simulations across the
// whole parameter space and checks the global invariants: completion,
// transaction conservation, non-negative latency components, and
// positive energy. Any panic (buffer overflow, credit loss, route hole)
// fails the test.
func TestFuzzConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	suite := workload.Suite()
	f := func(topoSel, fracSel, placeSel, arbSel, wlSel uint8, seed uint16) bool {
		topo := topology.AllKinds[int(topoSel)%len(topology.AllKinds)]
		fracs := []float64{1, 0.75, 0.5, 0.25, 0}
		sys := config.Default()
		sys.DRAMFraction = fracs[int(fracSel)%len(fracs)]
		sys.Placement = config.Placement(placeSel % 2)
		p := Params{
			Sys:          sys,
			Topo:         topo,
			Arb:          arb.Kind(arbSel % 3),
			Workload:     suite[int(wlSel)%len(suite)],
			Transactions: 400,
			Seed:         uint64(seed) + 1,
		}
		res, err := Simulate(p)
		if err != nil {
			t.Logf("%s: %v", p.Label(), err)
			return false
		}
		if res.Transactions != 400 || res.Reads+res.Writes != 400 {
			return false
		}
		if res.MeanLatency <= 0 || res.FinishTime <= 0 {
			return false
		}
		if res.Breakdown.ToMem < 0 || res.Breakdown.InMem <= 0 || res.Breakdown.FromMem < 0 {
			return false
		}
		if res.Energy.TotalPJ() <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzFailLinks removes random non-critical edges from redundant
// topologies and checks the degraded network still completes; removals
// that disconnect must error cleanly (never panic or hang).
func TestFuzzFailLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	wl, _ := workload.ByName("DCT")
	f := func(topoSel, edgeSel uint8) bool {
		topos := []topology.Kind{topology.Ring, topology.SkipList, topology.Mesh}
		topo := topos[int(topoSel)%len(topos)]
		p := testParams(topo, 1.0, config.NVMLast, arb.RoundRobin, wl)
		p.Transactions = 300
		// Discover the edge count from a clean build.
		in, err := Build(p)
		if err != nil {
			return false
		}
		nEdges := len(in.Graph.Edges)
		ei := 1 + int(edgeSel)%(nEdges-1) // never the host link
		p.FailLinks = []int{ei}
		res, err := Simulate(p)
		if err != nil {
			// Some cuts legitimately disconnect (mesh corners, skip-list
			// tail); a clean error is acceptable. A wrong RESULT is not.
			return true
		}
		return res.Transactions == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzReplayDeterminism: record a random run, replay it, and demand
// bit-identical results.
func TestFuzzReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	suite := workload.Suite()
	f := func(wlSel uint8, seed uint16) bool {
		p := testParams(topology.Tree, 1.0, config.NVMLast, arb.RoundRobin,
			suite[int(wlSel)%len(suite)])
		p.Transactions = 300
		p.Seed = uint64(seed) + 1
		p.Record = true
		in, err := Build(p)
		if err != nil {
			return false
		}
		orig, err := in.Run()
		if err != nil {
			return false
		}
		rp := p
		rp.Record = false
		rp.Replay = in.Recorder.Trace()
		rep, err := Simulate(rp)
		if err != nil {
			return false
		}
		return rep.FinishTime == orig.FinishTime &&
			rep.MeanLatency == orig.MeanLatency &&
			rep.Reads == orig.Reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzMigrationSafety: random migration policies never break
// completion or conservation, and the indirection table stays an
// involution (translating twice returns home).
func TestFuzzMigrationSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	wl, _ := workload.ByName("HOTSPOT")
	f := func(epochUS, thresh, swaps uint8) bool {
		p := testParams(topology.Tree, 0.5, config.NVMLast, arb.RoundRobin, wl)
		p.Transactions = 500
		mc := migrate.Config{
			Epoch:            sim.Time(1+epochUS%10) * sim.Microsecond,
			HotThreshold:     1 + int(thresh%6),
			MaxSwapsPerEpoch: 1 + int(swaps%100),
			Blackout:         100 * sim.Nanosecond,
			SettleEpochs:     2,
		}
		p.Migration = &mc
		in, err := Build(p)
		if err != nil {
			return false
		}
		res, err := in.Run()
		if err != nil {
			return false
		}
		if res.Transactions != 500 {
			return false
		}
		// The indirection table must remain a permutation (injective,
		// no leaked frames) no matter how swaps chained.
		if err := in.Migrator.Validate(); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

var _ = packet.HostNode
