package core

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/obs"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func machineBase(t *testing.T, topo topology.Kind, txns uint64) Params {
	t.Helper()
	var wl workload.Spec
	for _, s := range workload.Suite() {
		if s.Name == "KMEANS" {
			wl = s
		}
	}
	if wl.Name == "" {
		t.Fatal("KMEANS workload missing from suite")
	}
	return Params{
		Sys:          config.Default(),
		Topo:         topo,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: txns,
		Seed:         7,
	}
}

// TestMachineShardCountInvariant is the core bit-identity acceptance
// check: a whole-machine run must produce exactly the same
// MachineResults — every per-port field included — whether it runs on
// one worker goroutine or four, across every topology family.
func TestMachineShardCountInvariant(t *testing.T) {
	for _, k := range []topology.Kind{topology.Chain, topology.Ring, topology.Tree, topology.SkipList} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			base := machineBase(t, k, 400)
			seq, err := RunMachine(MachineParams{Base: base, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunMachine(MachineParams{Base: base, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("shards=1 vs shards=4 results differ\n seq: %+v\n par: %+v", seq, par)
			}
		})
	}
}

// TestMachinePortZeroMatchesSingleRun pins the seed-derivation contract:
// port 0 keeps the base seed, so its Results must equal a standalone
// single-port Simulate of the same params, bit for bit.
func TestMachinePortZeroMatchesSingleRun(t *testing.T) {
	base := machineBase(t, topology.Ring, 400)
	single, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunMachine(MachineParams{Base: base, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.PerPort) != base.Sys.Ports {
		t.Fatalf("got %d port results, want %d", len(mr.PerPort), base.Sys.Ports)
	}
	if !reflect.DeepEqual(mr.PerPort[0], single) {
		t.Errorf("port 0 drifted from the single-port run\n port0: %+v\nsingle: %+v", mr.PerPort[0], single)
	}
}

// TestMachinePortsDecorrelated checks the other ports run distinct
// traffic: identical per-port results would mean the seed stride is
// dead and the "machine" is eight copies of one simulation.
func TestMachinePortsDecorrelated(t *testing.T) {
	mr, err := RunMachine(MachineParams{Base: machineBase(t, topology.Tree, 400), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(mr.PerPort[0], mr.PerPort[1]) {
		t.Error("ports 0 and 1 produced identical results; per-port seeds are not applied")
	}
	if mr.Fairness <= 0 || mr.Fairness > 1 {
		t.Errorf("Jain fairness = %v, want (0, 1]", mr.Fairness)
	}
	var sum uint64
	for _, r := range mr.PerPort {
		sum += r.Transactions
	}
	if mr.Transactions != sum {
		t.Errorf("aggregate transactions %d != per-port sum %d", mr.Transactions, sum)
	}
}

// TestMachineRejectsUnmergeable pins the validation errors for modes
// whose outputs have no defined cross-port merge.
func TestMachineRejectsUnmergeable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"record", func(p *Params) { p.Record = true }, "Record"},
		{"trace", func(p *Params) { p.TraceDepth = 8 }, "TraceDepth"},
		{"telemetry", func(p *Params) { p.Obs = &obs.Config{Enabled: true} }, "telemetry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := machineBase(t, topology.Ring, 100)
			c.mut(&p)
			_, err := RunMachine(MachineParams{Base: p, Shards: 1})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}
