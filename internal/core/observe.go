package core

import (
	"fmt"
	"sort"
	"strings"

	"memnet/internal/mem"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/vault"
)

// NodeReport summarizes one node's routers and vaults after a run; the
// per-port service-share numbers make the paper's "parking lot"
// unfairness directly visible.
type NodeReport struct {
	Node      packet.NodeID
	Kind      topology.NodeKind
	Forwarded uint64
	Contended uint64
	// InputWait is total input-buffer residency across the node's ports
	// — the queuing metric of the paper's §3.2 router analysis.
	InputWait sim.Time
	// PortWait is the per-port mean input residency (external ports
	// first, then local vault ports).
	PortWait []sim.Time
	// Vault aggregates the node's quadrant controllers (zero for
	// interface chips).
	Vault vault.Stats
	Banks mem.BankStats
}

// Report builds per-node reports sorted by node ID. Nodes are walked
// in graph order (not router-map order) so the report is deterministic
// end to end.
func (in *Instance) Report() []NodeReport {
	out := make([]NodeReport, 0, len(in.routers))
	for _, node := range in.Graph.Nodes {
		id := node.ID
		r := in.routers[id]
		if r == nil {
			continue
		}
		nr := NodeReport{
			Node:      id,
			Kind:      node.Kind,
			Forwarded: r.Forwarded[packet.VCRequest] + r.Forwarded[packet.VCResponse],
			Contended: r.Contended,
			InputWait: r.TotalInputWait(),
		}
		for i := 0; i < r.NumPorts(); i++ {
			nr.PortWait = append(nr.PortWait, r.InputBuffer(i).MeanWait())
		}
		for _, q := range in.quadrants[id] {
			s := q.Stats()
			nr.Vault.Reads += s.Reads
			nr.Vault.Writes += s.Writes
			nr.Vault.WrongQuad += s.WrongQuad
			nr.Vault.QueueWait += s.QueueWait
			nr.Vault.ServiceTime += s.ServiceTime
			bs := q.BankStats()
			nr.Banks.Reads += bs.Reads
			nr.Banks.Writes += bs.Writes
			nr.Banks.RowHits += bs.RowHits
			nr.Banks.RowMisses += bs.RowMisses
			nr.Banks.RowConflicts += bs.RowConflicts
			nr.Banks.Refreshes += bs.Refreshes
			nr.Banks.BusyTime += bs.BusyTime
		}
		out = append(out, nr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// RowHitRate reports the fraction of bank accesses that hit an open row.
func (nr *NodeReport) RowHitRate() float64 {
	total := nr.Banks.RowHits + nr.Banks.RowMisses + nr.Banks.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(nr.Banks.RowHits) / float64(total)
}

// WedgeDump renders the queue and credit state of the whole network —
// the diagnostic the watchdog attaches when it declares the simulation
// wedged. One line per node: each output port's queue occupancy,
// remaining transmit credits per VC, retry-buffer depth, and whether the
// port's link is dead, plus the router's input-buffer occupancies and
// reroute backlog. The host's in-flight window count leads the dump.
func (in *Instance) WedgeDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wedge dump at %v: %d in flight, %d completed\n",
		in.Eng.Now(), in.Port.Inflight(), in.Collector.Completed())
	for _, n := range in.Graph.Nodes {
		r := in.routers[n.ID]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "node %d (%v):", n.ID, n.Kind)
		if bl := r.RerouteBacklog(); bl > 0 {
			fmt.Fprintf(&b, " reroute-backlog=%d", bl)
		}
		for i := 0; i < r.NumPorts(); i++ {
			out := r.Output(i)
			fmt.Fprintf(&b, " p%d[in=%d/%d", i,
				r.InputBuffer(i).Len(packet.VCRequest),
				r.InputBuffer(i).Len(packet.VCResponse))
			fmt.Fprintf(&b, " outq=%d/%d cred=%d/%d",
				out.QueueLen(packet.VCRequest), out.QueueLen(packet.VCResponse),
				out.Credits(packet.VCRequest), out.Credits(packet.VCResponse))
			if rl := out.RetryLen(); rl > 0 {
				fmt.Fprintf(&b, " retry=%d", rl)
			}
			if out.Dead() {
				b.WriteString(" DEAD")
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ReportText renders the per-node table for CLI consumption.
func (in *Instance) ReportText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-6s %-6s %9s %9s %11s %8s %8s %7s\n",
		"node", "kind", "tech", "forwarded", "contended", "input-wait",
		"reads", "writes", "rowhit")
	for _, nr := range in.Report() {
		kind, tech := "cube", in.Graph.Nodes[nr.Node].Tech.String()
		if nr.Kind == topology.Iface {
			kind, tech = "iface", "-"
		}
		fmt.Fprintf(&b, "%-5d %-6s %-6s %9d %9d %11v %8d %8d %6.1f%%\n",
			nr.Node, kind, tech, nr.Forwarded, nr.Contended, nr.InputWait,
			nr.Vault.Reads, nr.Vault.Writes, nr.RowHitRate()*100)
	}
	return b.String()
}
