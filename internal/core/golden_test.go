package core

import (
	"reflect"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// TestGoldenPreOverhaulEngine pins fixed-seed simulation output, field for
// field, to values recorded on the pre-overhaul engine (the
// container/heap scheduler at the growth seed). It is the gate for any
// event-engine change: the 4-ary heap, the zero-delay fast lane, the
// typed-argument events, and the packet pool must all preserve the
// exact (time, seq) firing order, so every derived quantity — finish
// times, latency splits, energy, even the raw event count — must be
// bit-identical to the old engine. A drift in any field means the
// scheduler reordered events, not that the model changed.
//
// Regenerate the table (only after an intentional semantic change) by
// printing Results for each config below with Transactions: 2000,
// Seed: 7, workload KMEANS.
func TestGoldenPreOverhaulEngine(t *testing.T) {
	golden := map[topology.Kind]Results{
		topology.Chain: {Label: "100%-C", Workload: "KMEANS", FinishTime: 8230533, MeanLatency: 115888,
			Breakdown:    stats.Breakdown{ToMem: 44476, InMem: 29362, FromMem: 42050},
			Energy:       energy.Breakdown{NetworkPJ: 6.185472e+07, ReadPJ: 9.824256e+06, WritePJ: 2.463744e+06},
			Transactions: 2000, Reads: 1599, Writes: 401, MeanHops: 8.054, Events: 179253},
		topology.Ring: {Label: "100%-R", Workload: "KMEANS", FinishTime: 7005209, MeanLatency: 92557,
			Breakdown:    stats.Breakdown{ToMem: 33675, InMem: 30325, FromMem: 28557},
			Energy:       energy.Breakdown{NetworkPJ: 3.833088e+07, ReadPJ: 9.824256e+06, WritePJ: 2.463744e+06},
			Transactions: 2000, Reads: 1599, Writes: 401, MeanHops: 4.991, Events: 118207},
		topology.Tree: {Label: "100%-T", Workload: "KMEANS", FinishTime: 6312065, MeanLatency: 78689,
			Breakdown:    stats.Breakdown{ToMem: 25754, InMem: 30654, FromMem: 22281},
			Energy:       energy.Breakdown{NetworkPJ: 2.166912e+07, ReadPJ: 9.824256e+06, WritePJ: 2.463744e+06},
			Transactions: 2000, Reads: 1599, Writes: 401, MeanHops: 2.8215, Events: 74880},
		topology.SkipList: {Label: "100%-SL", Workload: "KMEANS", FinishTime: 6566265, MeanLatency: 82851,
			Breakdown:    stats.Breakdown{ToMem: 30917, InMem: 28895, FromMem: 23039},
			Energy:       energy.Breakdown{NetworkPJ: 2.986944e+07, ReadPJ: 9.824256e+06, WritePJ: 2.463744e+06},
			Transactions: 2000, Reads: 1599, Writes: 401, MeanHops: 3.0155, Events: 89209},
	}

	var wl workload.Spec
	for _, s := range workload.Suite() {
		if s.Name == "KMEANS" {
			wl = s
		}
	}
	if wl.Name == "" {
		t.Fatal("KMEANS workload missing from suite")
	}
	for _, k := range []topology.Kind{topology.Chain, topology.Ring, topology.Tree, topology.SkipList} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Simulate(Params{
				Sys:          config.Default(),
				Topo:         k,
				Arb:          arb.RoundRobin,
				Workload:     wl,
				Transactions: 2000,
				Seed:         7,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := golden[k]
			if !reflect.DeepEqual(res, want) {
				t.Errorf("fixed-seed results drifted from the pre-refactor engine\n got: %+v\nwant: %+v", res, want)
			}
		})
	}
}

// TestGoldenRunTwice double-runs one configuration in-process to catch
// state leaking between instances (e.g. through a shared pool or a
// package-level cache): two builds of the same params must agree exactly.
func TestGoldenRunTwice(t *testing.T) {
	var wl workload.Spec
	for _, s := range workload.Suite() {
		if s.Name == "SRAD" {
			wl = s
		}
	}
	if wl.Name == "" {
		wl = workload.Suite()[0]
	}
	p := Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Arb:          arb.Distance,
		Workload:     wl,
		Transactions: 1500,
		Seed:         99,
	}
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same params, different results:\n a: %+v\n b: %+v", a, b)
	}
}
