package core

import (
	"fmt"

	"memnet/internal/energy"
	"memnet/internal/obs"
	"memnet/internal/sim"
)

// portSeedStride decorrelates per-port workload streams. Port 0 keeps
// the base seed, so a machine run's first port reproduces the
// single-port simulation bit for bit (pinned by tests).
const portSeedStride = 0x9e3779b97f4a7c15

// MachineParams configures a whole-machine run: the full processor with
// Base.Sys.Ports host ports, each driving its own disjoint memory
// network (§2.3 — ports do not share cubes, so the machine partitions
// exactly along port boundaries). Base holds the per-port simulation
// parameters; per-port seeds are derived from Base.Seed so ports are
// statistically independent but the whole run stays reproducible.
type MachineParams struct {
	Base Params
	// Shards is the number of worker goroutines advancing the port
	// partitions (clamped to [1, ports]). Results are bit-identical for
	// every value; 1 is the sequential fallback.
	Shards int
}

// ShardLoad is one port shard's parallel-engine introspection record:
// how much work the shard did, how it interacted with the cross-shard
// machinery, and how long it idled at the final barrier. JSON tags match
// the run-manifest schema's machine.shards entries.
type ShardLoad struct {
	// Shard is the shard index (= host port for machine runs).
	Shard int `json:"shard"`
	// Events counts events fired on the shard's engine.
	Events uint64 `json:"events"`
	// Posts counts cross-shard events the shard sent.
	Posts uint64 `json:"posts"`
	// Merged counts cross-shard events drained into the shard.
	Merged uint64 `json:"merged"`
	// MaxInbox is the peak cross-shard inbox depth.
	MaxInbox int `json:"max_inbox"`
	// FinishPs is the shard engine's final clock, in picoseconds.
	FinishPs int64 `json:"finish_ps"`
	// BarrierWaitPs is how long the shard idled at the final barrier:
	// the machine finish time minus the shard's own finish time.
	BarrierWaitPs int64 `json:"barrier_wait_ps"`
	// LookaheadSlack is the shard's post-slack histogram (see
	// sim.SlackHist); all-zero when the partition has no boundary
	// channels.
	LookaheadSlack sim.SlackHist `json:"lookahead_slack"`
}

// MachineRecord is the manifest's parallel-engine introspection block.
type MachineRecord struct {
	// Ports is the number of host ports (= shards).
	Ports int `json:"ports"`
	// Windows counts synchronization windows the engine executed.
	Windows uint64 `json:"windows"`
	// EventsPerWindow is total events over windows.
	EventsPerWindow float64 `json:"events_per_window"`
	// Shards holds the per-shard load records, in shard order.
	Shards []ShardLoad `json:"shards"`
}

// MachineResults aggregates a whole-machine run.
type MachineResults struct {
	// PerPort holds each port's full Results, index = port = shard ID.
	PerPort []Results
	// FinishTime is the machine's execution time: the slowest port.
	FinishTime sim.Time
	// MeanLatency is the transaction-weighted mean latency across ports.
	MeanLatency sim.Time
	// Energy sums the per-port dynamic-energy accounts.
	Energy energy.Breakdown
	// Transactions, Reads, Writes, and Events sum the per-port counts.
	Transactions uint64
	Reads        uint64
	Writes       uint64
	Events       uint64
	// MeanHops is the transaction-weighted mean response hop count.
	MeanHops float64
	// Fairness is Jain's index over per-port finish times: 1.0 when
	// every port finishes together, lower when load or faults skew one
	// port's completion.
	Fairness float64
	// Windows counts the parallel engine's synchronization windows.
	Windows uint64
	// Shards holds the per-shard engine introspection, in shard order.
	Shards []ShardLoad
}

// RunMachine builds one per-port simulation per host port, places each
// on its own shard of a sim.Parallel engine, and runs them to
// completion over MachineParams.Shards worker goroutines. The port
// partitions are fully independent (no cross-shard channels), so this
// is the infinite-lookahead case of the conservative engine and results
// are bit-identical at every shard count.
func RunMachine(mp MachineParams) (MachineResults, error) {
	base := mp.Base
	if base.Record || base.TraceDepth > 0 {
		return MachineResults{}, fmt.Errorf("core: machine runs do not support Record or TraceDepth (per-port traces would need a merge policy)")
	}
	if base.Obs.On() {
		return MachineResults{}, fmt.Errorf("core: machine runs do not support telemetry yet (per-shard probe merge is per-port; use single-port runs)")
	}
	if base.Spans.Enabled() {
		return MachineResults{}, fmt.Errorf("core: machine runs do not support span tracing (per-port span files would need a merge policy; use single-port runs)")
	}
	if err := base.Sys.Validate(); err != nil {
		return MachineResults{}, err
	}
	ports := base.Sys.Ports

	par := sim.NewParallel(ports)
	insts := make([]*Instance, ports)
	results := make([]Results, ports)
	errs := make([]error, ports)
	for i := 0; i < ports; i++ {
		p := base
		p.Seed = base.Seed + uint64(i)*portSeedStride
		if p.Fault != nil {
			// Copy so the derived seed never mutates the caller's config.
			fc := *p.Fault
			if fc.Seed == 0 {
				fc.Seed = 1
			}
			fc.Seed += uint64(i) * portSeedStride
			p.Fault = &fc
		}
		shard := par.Shard(i)
		inst, err := buildOn(shard.Engine(), p)
		if err != nil {
			return MachineResults{}, fmt.Errorf("core: machine: port %d: %w", i, err)
		}
		if inst.Watchdog != nil {
			inst.Watchdog.SetShard(shard.ID())
		}
		insts[i] = inst
		i := i
		// Each port partition has no boundary channels, so its window is
		// unbounded: the body runs the whole port simulation and is done.
		shard.SetBody(func(_ *sim.Engine, _ sim.Time) bool {
			//lint:sharded shard body: runs on the shard's own worker goroutine; slot i is not shared
			results[i], errs[i] = inst.Run()
			return true
		})
	}
	par.Run(mp.Shards)

	for i, err := range errs {
		if err != nil {
			return MachineResults{}, fmt.Errorf("core: machine: port %d: %w", i, err)
		}
	}

	mr := MachineResults{PerPort: results}
	finish := make([]uint64, ports)
	var latW, hopW float64
	for i, r := range results {
		if r.FinishTime > mr.FinishTime {
			mr.FinishTime = r.FinishTime
		}
		finish[i] = uint64(r.FinishTime)
		latW += float64(r.MeanLatency) * float64(r.Transactions)
		hopW += r.MeanHops * float64(r.Transactions)
		mr.Energy.NetworkPJ += r.Energy.NetworkPJ
		mr.Energy.ReadPJ += r.Energy.ReadPJ
		mr.Energy.WritePJ += r.Energy.WritePJ
		mr.Transactions += r.Transactions
		mr.Reads += r.Reads
		mr.Writes += r.Writes
		mr.Events += r.Events
	}
	if mr.Transactions > 0 {
		mr.MeanLatency = sim.Time(latW / float64(mr.Transactions))
		mr.MeanHops = hopW / float64(mr.Transactions)
	}
	mr.Fairness = obs.Jain(finish)
	mr.Windows = par.Windows()
	for i, st := range par.ShardStats() {
		mr.Shards = append(mr.Shards, ShardLoad{
			Shard:          i,
			Events:         st.Events,
			Posts:          st.Posts,
			Merged:         st.Merged,
			MaxInbox:       st.MaxInbox,
			FinishPs:       int64(results[i].FinishTime),
			BarrierWaitPs:  int64(mr.FinishTime - results[i].FinishTime),
			LookaheadSlack: st.Slack,
		})
	}
	return mr, nil
}

// MachineManifest assembles the run manifest for a whole-machine run:
// reproduction inputs, the aggregate results, and the parallel-engine
// introspection record (per-shard load, barrier waits, lookahead-slack
// histograms, events-per-window).
func MachineManifest(mp MachineParams, mr MachineResults) *obs.Manifest {
	m := obs.NewManifest()
	m.Label = mp.Base.Label()
	m.Seed = int64(mp.Base.Seed)
	m.Workload = mp.Base.Workload.Name
	m.Config = mp.Base.Sys
	m.Results = mr
	rec := MachineRecord{
		Ports:   len(mr.Shards),
		Windows: mr.Windows,
		Shards:  mr.Shards,
	}
	if mr.Windows > 0 {
		rec.EventsPerWindow = float64(mr.Events) / float64(mr.Windows)
	}
	m.Machine = rec
	return m
}
