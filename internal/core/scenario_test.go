package core

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/scenario"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// scenarioParams returns baseline params for a scenario run.
func scenarioParams(t *testing.T, s *scenario.Spec) Params {
	t.Helper()
	wl, err := workload.ByName("KMEANS")
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Sys:          config.Default(),
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 800,
		Seed:         7,
		Scenario:     s,
	}
}

// twoPod declares an irregular two-ring graph with a bridge cube.
func twoPod() *scenario.Spec {
	node := func(name string) scenario.Node { return scenario.Node{Name: name} }
	link := func(a, b string) scenario.Link { return scenario.Link{A: a, B: b} }
	return &scenario.Spec{
		Schema: scenario.Schema,
		Name:   "two-pod",
		Nodes: []scenario.Node{
			node("a0"), node("a1"), node("a2"), node("a3"),
			node("x"),
			node("b0"), node("b1"), node("b2"), node("b3"),
		},
		Links: []scenario.Link{
			link("host", "a0"),
			link("a0", "a1"), link("a1", "a2"), link("a2", "a3"), link("a3", "a0"),
			link("a0", "x"), link("x", "b0"),
			link("b0", "b1"), link("b1", "b2"), link("b2", "b3"), link("b3", "b0"),
		},
	}
}

// TestScenarioRoundTripGolden is the format-completeness proof: for
// every paper topology, exporting the compiled-in graph as a scenario
// and simulating the scenario must produce byte-identical Results —
// same label, same finish time, same every counter.
func TestScenarioRoundTripGolden(t *testing.T) {
	for _, kind := range topology.Kinds {
		p := scenarioParams(t, nil)
		p.Topo = kind
		direct, err := Simulate(p)
		if err != nil {
			t.Fatalf("%v direct: %v", kind, err)
		}

		techs, err := TechOrder(&p.Sys)
		if err != nil {
			t.Fatal(err)
		}
		g, err := topology.Build(kind, techs)
		if err != nil {
			t.Fatal(err)
		}
		spec := topology.ExportScenario(g, "roundtrip")
		// Serialize and re-decode: the proof must cover the JSON file
		// format, not just the in-memory structs.
		reloaded, err := scenario.Decode(spec.Canonical())
		if err != nil {
			t.Fatalf("%v export does not decode: %v", kind, err)
		}
		ps := scenarioParams(t, reloaded)
		via, err := Simulate(ps)
		if err != nil {
			t.Fatalf("%v scenario: %v", kind, err)
		}
		if !reflect.DeepEqual(direct, via) {
			t.Errorf("%v: scenario run differs from compiled-in run\ndirect: %+v\nvia:    %+v",
				kind, direct, via)
		}
	}
}

// TestScenarioIrregularRuns checks a graph no built-in kind expresses
// simulates to completion, deterministically, labeled by its name.
func TestScenarioIrregularRuns(t *testing.T) {
	p := scenarioParams(t, twoPod())
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("irregular scenario run is not deterministic")
	}
	if a.Label != "two-pod" {
		t.Errorf("label = %q, want two-pod", a.Label)
	}
	if a.FinishTime == 0 || a.Reads == 0 {
		t.Errorf("degenerate results: %+v", a)
	}
}

// TestScenarioOverridesChangeBehavior checks each override class is
// actually wired into the built network, not just parsed: pinning it
// must move the deterministic Results.
func TestScenarioOverridesChangeBehavior(t *testing.T) {
	base, err := Simulate(scenarioParams(t, twoPod()))
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(s *scenario.Spec){
		"bandwidth": func(s *scenario.Spec) {
			bw := int64(40e9)
			s.Links[0].BandwidthBps = &bw
		},
		"serdes": func(s *scenario.Spec) {
			ps := int64(20000)
			s.Links[0].SerDesPs = &ps
		},
		"buffer": func(s *scenario.Spec) {
			depth := 1
			s.Links[0].BufferPackets = &depth
		},
		"router-arb": func(s *scenario.Spec) {
			s.Routers = map[string]scenario.Router{"a0": {Arb: "distance"}}
		},
		"router-xbar": func(s *scenario.Spec) {
			bw := int64(50e9)
			s.Routers = map[string]scenario.Router{"a0": {SwitchBandwidthBps: &bw}}
		},
	}
	for name, mut := range mutations {
		s := twoPod()
		mut(s)
		got, err := Simulate(scenarioParams(t, s))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(base, got) {
			t.Errorf("%s override does not change the simulation", name)
		}
	}
}

// TestScenarioTechPlacement checks per-cube NVM declarations take
// effect: an all-NVM pod must slow down versus the all-DRAM spec.
func TestScenarioTechPlacement(t *testing.T) {
	s := twoPod()
	for i := range s.Nodes {
		s.Nodes[i].Tech = "nvm"
	}
	nvm, err := Simulate(scenarioParams(t, s))
	if err != nil {
		t.Fatal(err)
	}
	dram, err := Simulate(scenarioParams(t, twoPod()))
	if err != nil {
		t.Fatal(err)
	}
	if nvm.FinishTime <= dram.FinishTime {
		t.Errorf("all-NVM finish %v not slower than all-DRAM %v", nvm.FinishTime, dram.FinishTime)
	}
}

// TestScenarioFaultConversion checks the picosecond fault block
// converts faithfully and arms the resilience layer.
func TestScenarioFaultConversion(t *testing.T) {
	s := twoPod()
	s.Fault = &scenario.Fault{
		Seed:       9,
		LinkBER:    1e-6,
		MaxRetries: 3,
		KillLinks:  []scenario.LinkEvent{{Link: 2, AtPs: 5_000_000}},
		KillCubes:  []scenario.CubeEvent{{Cube: "b2", AtPs: 7_000_000, Full: true}},
		LaneFlaps:  []scenario.FlapEvent{{Link: 7, DownPs: 1_000_000, UpPs: 2_000_000}},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	cfg, err := ScenarioFault(s)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LinkBER != 1e-6 || cfg.MaxRetries != 3 || cfg.Seed != 9 {
		t.Fatalf("converted config = %+v", cfg)
	}
	if len(cfg.KillLinks) != 1 || cfg.KillLinks[0].Edge != 2 ||
		cfg.KillLinks[0].At != 5*sim.Microsecond {
		t.Fatalf("kill links = %+v", cfg.KillLinks)
	}
	// b2 is node index 7 (+1 for the host) in declaration order.
	if len(cfg.KillCubes) != 1 || int(cfg.KillCubes[0].Node) != 8 || !cfg.KillCubes[0].Full {
		t.Fatalf("kill cubes = %+v", cfg.KillCubes)
	}
	if len(cfg.LaneFlaps) != 1 || cfg.LaneFlaps[0].Up != 2*sim.Microsecond {
		t.Fatalf("lane flaps = %+v", cfg.LaneFlaps)
	}
	// The converted plan must survive a run end to end.
	p := scenarioParams(t, s)
	p.Fault = cfg
	if _, err := Simulate(p); err != nil {
		t.Fatalf("faulted scenario run: %v", err)
	}
	// An empty fault block converts to nil.
	if cfg, err := ScenarioFault(twoPod()); err != nil || cfg != nil {
		t.Fatalf("nil fault block: %v, %v", cfg, err)
	}
}

// TestScenarioLinkWiring inspects the built instance directly for the
// override classes whose effect host-centric traffic cannot expose:
// vcs:1 flips the link's VC arbitration mode (requests and responses
// never compete for one direction under pure host traffic), and the
// per-direction config must carry the bandwidth/SerDes overrides.
func TestScenarioLinkWiring(t *testing.T) {
	s := twoPod()
	one, bw, ser := 1, int64(40e9), int64(20000)
	s.Links[0].VCs = &one
	s.Links[2].BandwidthBps = &bw
	s.Links[2].SerDesPs = &ser
	inst, err := buildOn(sim.NewEngine(), scenarioParams(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.dirs[0].ab.VCRoundRobin() || !inst.dirs[0].ba.VCRoundRobin() {
		t.Error("vcs:1 override did not disable VC priority on link 0")
	}
	if inst.dirs[1].ab.VCRoundRobin() {
		t.Error("vcs override leaked onto link 1")
	}
	if got := inst.dirs[2].ab.Bandwidth(); got != bw {
		t.Errorf("link 2 bandwidth = %d, want %d", got, bw)
	}
	if got := inst.dirs[2].ab.SerDes(); got != sim.Time(ser)*sim.Picosecond {
		t.Errorf("link 2 serdes = %v, want %dps", got, ser)
	}
}

// TestScenarioPerLinkRetries checks the per-link retry override
// reaches the armed link fault state. MaxRetries 0 means unlimited
// retries, so at this error rate the run completes; capping the host
// link at one retry makes a double-error drop the packet, and the
// stranded transaction trips the progress watchdog.
func TestScenarioPerLinkRetries(t *testing.T) {
	run := func(override bool) error {
		s := twoPod()
		if override {
			one := 1
			s.Links[0].MaxRetries = &one
		}
		s.Fault = &scenario.Fault{Seed: 1, LinkBER: 1e-3, Watchdog: true}
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		cfg, err := ScenarioFault(s)
		if err != nil {
			t.Fatal(err)
		}
		p := scenarioParams(t, s)
		p.Fault = cfg
		_, err = Simulate(p)
		return err
	}
	if err := run(false); err != nil {
		t.Errorf("unlimited retries: %v", err)
	}
	if err := run(true); err == nil {
		t.Error("per-link max_retries cap did not strand the run")
	}
}

// TestScenarioMachineShardsIdentical checks a scenario run through the
// partitioned machine engine stays bit-identical across worker counts.
func TestScenarioMachineShardsIdentical(t *testing.T) {
	base := scenarioParams(t, twoPod())
	base.Transactions = 400
	var got []MachineResults
	for _, shards := range []int{1, 2} {
		mr, err := RunMachine(MachineParams{Base: base, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		mr.Shards = nil // per-shard load depends on the worker count
		got = append(got, mr)
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Errorf("machine results differ across shard counts:\n%+v\n%+v", got[0], got[1])
	}
}

// TestScenarioRejectsFailLinks pins the FailLinks/Scenario conflict.
func TestScenarioRejectsFailLinks(t *testing.T) {
	p := scenarioParams(t, twoPod())
	p.FailLinks = []int{3}
	if _, err := Simulate(p); err == nil ||
		!strings.Contains(err.Error(), "FailLinks") {
		t.Fatalf("FailLinks+Scenario not rejected: %v", err)
	}
}
