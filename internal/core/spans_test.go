package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/fault"
	"memnet/internal/obs"
	"memnet/internal/sim"
	"memnet/internal/span"
	"memnet/internal/topology"
)

// TestSpansBitIdentical is the span layer's core guarantee: arming the
// recorder on every hook (host inject, router grant, link ship, vault
// issue, completion) must leave every Results field bit-identical to an
// untraced run, and two traced runs must serialize byte-identical span
// files.
func TestSpansBitIdentical(t *testing.T) {
	wl := kmeans(t)
	for _, k := range []topology.Kind{topology.Chain, topology.Tree, topology.SkipList} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			p := Params{
				Sys:          config.Default(),
				Topo:         k,
				Arb:          arb.RoundRobin,
				Workload:     wl,
				Transactions: 1200,
				Seed:         7,
			}
			plain, err := Simulate(p)
			if err != nil {
				t.Fatal(err)
			}
			run := func() (Results, []byte) {
				q := p
				q.Spans = &span.Config{SampleStride: 4}
				in, err := Build(q)
				if err != nil {
					t.Fatal(err)
				}
				res, err := in.Run()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := in.WriteSpans(&buf); err != nil {
					t.Fatal(err)
				}
				return res, buf.Bytes()
			}
			traced, file1 := run()
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("span tracing perturbed results\n off: %+v\n  on: %+v", plain, traced)
			}
			_, file2 := run()
			if !bytes.Equal(file1, file2) {
				t.Error("identical traced runs serialized different span files")
			}
			hdr, spans, err := span.Read(bytes.NewReader(file1))
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Stride != 4 || hdr.Spans != len(spans) || len(spans) == 0 {
				t.Fatalf("header %+v does not match %d parsed spans", hdr, len(spans))
			}
			if err := span.Check(spans); err != nil {
				t.Errorf("span file fails structural check: %v", err)
			}
		})
	}
}

// TestSpansAttribution pins the tentpole acceptance criterion: on a
// fig4-style run every picosecond of sampled end-to-end latency is
// attributed to an enumerated cause (the segments tile the injection-
// to-completion window exactly, so attribution is 100%, well above the
// required 99%).
func TestSpansAttribution(t *testing.T) {
	wl := kmeans(t)
	in, err := Build(Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 2000,
		Seed:         1,
		Spans:        &span.Config{SampleStride: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	spans := in.Spans.Spans()
	if len(spans) < 100 {
		t.Fatalf("only %d spans sampled", len(spans))
	}
	a := span.Analyze(spans)
	if got := a.Attribution(); got < 0.99 {
		t.Errorf("attribution %.4f < 0.99 of sampled mean latency", got)
	}
	// Exact tiling: attributed picoseconds equal the summed end-to-end
	// windows on a fault-free run.
	if a.AttributedPs != a.TotalPs {
		t.Errorf("attributed %d ps != total %d ps (segments do not tile the window)", a.AttributedPs, a.TotalPs)
	}
	for _, c := range []span.Cause{span.LinkSer, span.LinkSerDes, span.RouterArb, span.VaultService} {
		if a.ByCause[c] == 0 {
			t.Errorf("cause %v attributed zero time over %d spans", c, len(spans))
		}
	}
}

// TestSpansUnderFaults checks the recorder stays structurally sound
// when retries, kills, and repairs bend packet paths: every span still
// passes Check and retry segments appear.
func TestSpansUnderFaults(t *testing.T) {
	wl := kmeans(t)
	in, err := Build(Params{
		Sys:          config.Default(),
		Topo:         topology.Ring,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 1500,
		Seed:         3,
		Spans:        &span.Config{SampleStride: 2},
		Fault: &fault.Config{
			LinkBER:     1e-5,
			KillLinks:   []fault.LinkKill{{Edge: 2, At: 500 * sim.Nanosecond}},
			RepairLinks: []fault.LinkRepair{{Edge: 2, At: 1200 * sim.Nanosecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	spans := in.Spans.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans under faults")
	}
	if err := span.Check(spans); err != nil {
		t.Errorf("faulty-run spans fail structural check: %v", err)
	}
	if res.Fault.Retries > 0 {
		a := span.Analyze(spans)
		if a.ByCause[span.LinkRetry] == 0 {
			t.Errorf("%d link retries occurred but no link.retry time attributed", res.Fault.Retries)
		}
	}
}

// TestSpansSamplerDeterminism pins the stride sampler: sampling is a
// pure function of (ID, seed), no RNG, so the sampled ID set is stable.
func TestSpansSamplerDeterminism(t *testing.T) {
	r := span.NewRecorder(span.Config{SampleStride: 8}, 21)
	for id := uint64(0); id < 64; id++ {
		want := id%8 == 21%8
		if got := r.Sampled(id); got != want {
			t.Fatalf("Sampled(%d) = %v, want %v", id, got, want)
		}
	}
}

// TestSpansPerfettoGolden pins the combined Perfetto export (packet
// lifecycles + counters + span slices and flow arrows) byte for byte.
// Regenerate with -update-golden after an intentional change.
func TestSpansPerfettoGolden(t *testing.T) {
	wl := kmeans(t)
	in, err := Build(Params{
		Sys:          config.Default(),
		Topo:         topology.Chain,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 25,
		Seed:         7,
		TraceDepth:   256,
		Obs:          &obs.Config{Enabled: true, SampleInterval: sim.Microsecond},
		Spans:        &span.Config{SampleStride: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WritePerfettoSpans(&buf, in.Trace, in.Telemetry.Sampler, in.Spans.Spans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_spans_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto span export drifted from golden (%d vs %d bytes); rerun with -update-golden after verifying the change is intentional",
			buf.Len(), len(want))
	}
}

// TestTimelineInManifest: a kill/repair run's manifest carries the
// recovery timeline — retrain window bounds and per-direction healed
// bits on the repair — and still validates against the schema.
func TestTimelineInManifest(t *testing.T) {
	wl := kmeans(t)
	in, err := Build(Params{
		Sys:          config.Default(),
		Topo:         topology.Ring,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 1500,
		Seed:         3,
		Fault: &fault.Config{
			KillLinks:   []fault.LinkKill{{Edge: 2, At: 500 * sim.Nanosecond}},
			RepairLinks: []fault.LinkRepair{{Edge: 2, At: 1200 * sim.Nanosecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := in.Manifest(res)
	tl, ok := m.Timeline.([]TimelineEvent)
	if !ok || len(tl) != 2 {
		t.Fatalf("timeline = %#v, want 2 events", m.Timeline)
	}
	if tl[0].Kind != "kill_link" || tl[0].Edge == nil || *tl[0].Edge != 2 {
		t.Errorf("timeline[0] = %+v, want kill_link on edge 2", tl[0])
	}
	rep := tl[1]
	if rep.Kind != "repair_link" || rep.StartPs == nil || *rep.StartPs != int64(1200*sim.Nanosecond) {
		t.Errorf("timeline[1] = %+v, want repair_link starting at 1.2us", rep)
	}
	if rep.AtPs <= *rep.StartPs {
		t.Errorf("repair completes at %d, not after retrain start %d", rep.AtPs, *rep.StartPs)
	}
	if rep.HealedBitsAB == nil || rep.HealedBitsBA == nil {
		t.Fatal("repair_link timeline entry missing healed-bits counters")
	}
	if res.Fault.HealedBits > 0 && *rep.HealedBitsAB+*rep.HealedBitsBA == 0 {
		t.Errorf("run healed %d bits but the timeline entry shows zero", res.Fault.HealedBits)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifestJSON(buf.Bytes()); err != nil {
		t.Errorf("timeline manifest fails schema: %v\n%s", err, buf.String())
	}
}

// TestMachineManifestGauges: machine runs carry the parallel engine's
// introspection (per-shard barrier wait, lookahead-slack histogram,
// events per window) for every worker count, the record is identical
// across -shards values, and the manifest validates.
func TestMachineManifestGauges(t *testing.T) {
	wl := kmeans(t)
	base := Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 300,
		Seed:         1,
	}
	var prev *MachineResults
	for _, shards := range []int{2, 4} {
		mp := MachineParams{Base: base, Shards: shards}
		mr, err := RunMachine(mp)
		if err != nil {
			t.Fatal(err)
		}
		if len(mr.Shards) != base.Sys.Ports {
			t.Fatalf("shards=%d: %d shard records, want %d", shards, len(mr.Shards), base.Sys.Ports)
		}
		if mr.Windows == 0 {
			t.Errorf("shards=%d: zero windows", shards)
		}
		var sawWait bool
		for i, sl := range mr.Shards {
			if sl.Shard != i || sl.Events == 0 || sl.FinishPs == 0 {
				t.Errorf("shards=%d: degenerate shard record %+v", shards, sl)
			}
			if sl.BarrierWaitPs > 0 {
				sawWait = true
			}
			if sl.BarrierWaitPs != int64(mr.FinishTime)-sl.FinishPs {
				t.Errorf("shards=%d: shard %d barrier wait %d != finish spread", shards, i, sl.BarrierWaitPs)
			}
		}
		if !sawWait {
			t.Errorf("shards=%d: every port finished at the same instant (no barrier wait recorded)", shards)
		}
		if prev != nil && !reflect.DeepEqual(*prev, mr) {
			t.Errorf("machine results (introspection included) differ across shard counts")
		}
		prev = &mr
		m := MachineManifest(mp, mr)
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateManifestJSON(buf.Bytes()); err != nil {
			t.Errorf("machine manifest fails schema: %v\n%s", err, buf.String())
		}
		rec, ok := m.Machine.(MachineRecord)
		if !ok || rec.Windows != mr.Windows || rec.EventsPerWindow <= 0 {
			t.Errorf("machine record %+v inconsistent with results", m.Machine)
		}
	}
}

// TestMachineRejectsSpans: RunMachine refuses span tracing the same way
// it refuses traces and telemetry.
func TestMachineRejectsSpans(t *testing.T) {
	wl := kmeans(t)
	base := Params{
		Sys:          config.Default(),
		Topo:         topology.Tree,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 100,
		Seed:         1,
		Spans:        &span.Config{SampleStride: 4},
	}
	if _, err := RunMachine(MachineParams{Base: base, Shards: 2}); err == nil {
		t.Fatal("RunMachine accepted Params.Spans")
	}
}
