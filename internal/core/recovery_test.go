package core

import (
	"reflect"
	"testing"

	"memnet/internal/fault"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// TestLinkKillRepairRouteBack: a severed ring segment is repaired
// mid-run; traffic routes around while it is down, then back over the
// healed link — observable as HealedBits — and the run completes every
// transaction, deterministically.
func TestLinkKillRepairRouteBack(t *testing.T) {
	p := faultParams(t, topology.Ring, &fault.Config{
		KillLinks:   []fault.LinkKill{{Edge: 2, At: 500 * sim.Nanosecond}},
		RepairLinks: []fault.LinkRepair{{Edge: 2, At: 1200 * sim.Nanosecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions {
		t.Fatalf("completed %d/%d through a kill/repair cycle", res.Transactions, p.Transactions)
	}
	f := res.Fault
	if f.LinksKilled != 1 || f.LinksRepaired != 1 {
		t.Fatalf("kill/repair not applied: %+v", f)
	}
	if f.HealedBits == 0 {
		t.Fatalf("no traffic routed back over the healed link: %+v", f)
	}
	replay, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, replay) {
		t.Errorf("kill/repair run nondeterministic:\n a: %+v\n b: %+v", res, replay)
	}
}

// TestRepairBeatsPermanentKill: repairing the link partway through must
// not finish later than leaving it dead for the rest of the run, and a
// healthy run is at least as fast as either.
func TestRepairBeatsPermanentKill(t *testing.T) {
	healthy, err := Simulate(faultParams(t, topology.Ring, nil))
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Simulate(faultParams(t, topology.Ring, &fault.Config{
		KillLinks: []fault.LinkKill{{Edge: 2, At: 500 * sim.Nanosecond}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(faultParams(t, topology.Ring, &fault.Config{
		KillLinks:   []fault.LinkKill{{Edge: 2, At: 500 * sim.Nanosecond}},
		RepairLinks: []fault.LinkRepair{{Edge: 2, At: 1000 * sim.Nanosecond}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinishTime > perm.FinishTime {
		t.Errorf("repairing the link slowed the run: repaired %v > permanent %v",
			rep.FinishTime, perm.FinishTime)
	}
	if rep.FinishTime < healthy.FinishTime {
		t.Errorf("outage run beat the healthy baseline: %v < %v",
			rep.FinishTime, healthy.FinishTime)
	}
}

// TestCubeKillRepairRehomesBack: a repaired cube takes its address
// range back from the spare, and the run completes with both counters
// set.
func TestCubeKillRepairRehomesBack(t *testing.T) {
	p := faultParams(t, topology.Chain, &fault.Config{
		KillCubes:   []fault.CubeKill{{Node: 4, At: 500 * sim.Nanosecond}},
		RepairCubes: []fault.CubeRepair{{Node: 4, At: 1500 * sim.Nanosecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions {
		t.Fatalf("completed %d/%d through a cube kill/repair", res.Transactions, p.Transactions)
	}
	f := res.Fault
	if f.CubesKilled != 1 || f.CubesRepaired != 1 {
		t.Fatalf("cube kill/repair not applied: %+v", f)
	}
	if f.Rehomed+f.Bounced == 0 {
		t.Fatalf("outage re-homed no traffic: %+v", f)
	}
}

// TestFullCubeKillRepair: a Full kill (router too) repairs back to full
// transit service on a redundant topology.
func TestFullCubeKillRepair(t *testing.T) {
	p := faultParams(t, topology.Ring, &fault.Config{
		KillCubes:   []fault.CubeKill{{Node: 5, At: 500 * sim.Nanosecond, Full: true}},
		RepairCubes: []fault.CubeRepair{{Node: 5, At: 1500 * sim.Nanosecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions || res.Fault.CubesRepaired != 1 {
		t.Fatalf("full kill/repair run incomplete: %+v", res.Fault)
	}
}

// TestLaneFlapRestoresWidth: a transient flap degrades then re-binds;
// both halves are counted and the flapped run sits between the healthy
// and permanently-degraded runs.
func TestLaneFlapRestoresWidth(t *testing.T) {
	healthy, err := Simulate(faultParams(t, topology.Chain, nil))
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Simulate(faultParams(t, topology.Chain, &fault.Config{
		LaneFails: []fault.LaneFail{{Edge: 0, At: 200 * sim.Nanosecond}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams(t, topology.Chain, &fault.Config{
		LaneFlaps: []fault.LaneFlap{{Edge: 0, Down: 200 * sim.Nanosecond, Up: 1200 * sim.Nanosecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fault
	if f.LaneFails != 1 || f.LaneRepairs != 1 {
		t.Fatalf("flap halves not applied: %+v", f)
	}
	if res.Transactions != p.Transactions {
		t.Fatalf("completed %d/%d through a lane flap", res.Transactions, p.Transactions)
	}
	if res.FinishTime < healthy.FinishTime {
		t.Errorf("flapped run beat the healthy baseline: %v < %v", res.FinishTime, healthy.FinishTime)
	}
	if res.FinishTime > perm.FinishTime {
		t.Errorf("transient flap slower than a permanent lane failure: %v > %v",
			res.FinishTime, perm.FinishTime)
	}
}

// TestRekillAfterRepair: the same edge can die, heal, and die again;
// both outages are routed around and counted.
func TestRekillAfterRepair(t *testing.T) {
	p := faultParams(t, topology.Ring, &fault.Config{
		KillLinks: []fault.LinkKill{
			{Edge: 2, At: 400 * sim.Nanosecond},
			{Edge: 2, At: 1600 * sim.Nanosecond},
		},
		RepairLinks: []fault.LinkRepair{
			{Edge: 2, At: 800 * sim.Nanosecond},
			{Edge: 2, At: 2 * sim.Microsecond},
		},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fault
	if f.LinksKilled != 2 || f.LinksRepaired != 2 {
		t.Fatalf("re-kill cycle not fully applied: %+v", f)
	}
	if res.Transactions != p.Transactions {
		t.Fatalf("completed %d/%d through two outages", res.Transactions, p.Transactions)
	}
}

// TestInvalidRepairRejectedAtBuild: timeline violations surface at
// Build with a diagnostic, never mid-run.
func TestInvalidRepairRejectedAtBuild(t *testing.T) {
	cases := []struct {
		name string
		fc   fault.Config
	}{
		{"repair without kill",
			fault.Config{RepairLinks: []fault.LinkRepair{{Edge: 2, At: sim.Microsecond}}}},
		{"repair before kill",
			fault.Config{
				KillLinks:   []fault.LinkKill{{Edge: 2, At: 2 * sim.Microsecond}},
				RepairLinks: []fault.LinkRepair{{Edge: 2, At: sim.Microsecond}},
			}},
		{"cube repair of healthy cube",
			fault.Config{RepairCubes: []fault.CubeRepair{{Node: 4, At: sim.Microsecond}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := tc.fc
			if _, err := Build(faultParams(t, topology.Ring, &fc)); err == nil {
				t.Fatalf("%s accepted at Build", tc.name)
			}
		})
	}
}

// TestMachineShardsWithRepairs: a whole-machine run under an active
// kill/repair/flap schedule stays byte-identical across worker counts —
// the recovery path preserves the partitioned engine's determinism
// contract.
func TestMachineShardsWithRepairs(t *testing.T) {
	base := machineBase(t, topology.Ring, 400)
	base.Fault = &fault.Config{
		KillLinks:   []fault.LinkKill{{Edge: 2, At: 400 * sim.Nanosecond}},
		RepairLinks: []fault.LinkRepair{{Edge: 2, At: sim.Microsecond}},
		KillCubes:   []fault.CubeKill{{Node: 4, At: 600 * sim.Nanosecond}},
		RepairCubes: []fault.CubeRepair{{Node: 4, At: 1400 * sim.Nanosecond}},
		LaneFlaps:   []fault.LaneFlap{{Edge: 3, Down: 300 * sim.Nanosecond, Up: 900 * sim.Nanosecond}},
	}
	var runs []MachineResults
	for _, shards := range []int{1, 2, 4} {
		mr, err := RunMachine(MachineParams{Base: base, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if mr.Transactions != base.Transactions*uint64(base.Sys.Ports) {
			t.Fatalf("shards=%d: machine completed %d transactions", shards, mr.Transactions)
		}
		runs = append(runs, mr)
	}
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[0], runs[i]) {
			t.Errorf("shards=1 vs shards=%d differ under kill/repair schedule\n a: %+v\n b: %+v",
				[]int{1, 2, 4}[i], runs[0], runs[i])
		}
	}
	// Every port ran the same schedule: repairs applied on each.
	for i, r := range runs[0].PerPort {
		if r.Fault.LinksRepaired != 1 || r.Fault.CubesRepaired != 1 || r.Fault.LaneRepairs != 1 {
			t.Errorf("port %d repairs not applied: %+v", i, r.Fault)
		}
	}
}
