package core

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/fault"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func faultParams(t *testing.T, topo topology.Kind, fc *fault.Config) Params {
	t.Helper()
	var wl workload.Spec
	for _, s := range workload.Suite() {
		if s.Name == "KMEANS" {
			wl = s
		}
	}
	if wl.Name == "" {
		t.Fatal("KMEANS workload missing")
	}
	return Params{
		Sys:          config.Default(),
		Topo:         topo,
		Arb:          arb.RoundRobin,
		Workload:     wl,
		Transactions: 800,
		Seed:         7,
		Fault:        fc,
	}
}

// TestFaultDisabledIsNoop: a present-but-disabled fault config must be
// bit-identical to no fault config at all — same Results, same event
// count (the determinism fingerprint).
func TestFaultDisabledIsNoop(t *testing.T) {
	base := faultParams(t, topology.Ring, nil)
	with := base
	with.Fault = &fault.Config{Seed: 99} // a seed alone enables nothing
	a, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(with)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("disabled fault layer perturbed the run:\n a: %+v\n b: %+v", a, b)
	}
}

// TestFaultDeterminism: the same faulty scenario replayed with the same
// fault seed produces identical Results, counters included.
func TestFaultDeterminism(t *testing.T) {
	p := faultParams(t, topology.Ring, &fault.Config{
		Seed:      3,
		LinkBER:   2e-6,
		KillLinks: []fault.LinkKill{{Edge: 3, At: 1500 * sim.Nanosecond}},
		LaneFails: []fault.LaneFail{{Edge: 1, At: 800 * sim.Nanosecond}},
	})
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same fault seed, different results:\n a: %+v\n b: %+v", a, b)
	}
	if a.Fault.CRCErrors == 0 || a.Fault.Retries == 0 {
		t.Errorf("BER=2e-6 produced no link errors: %+v", a.Fault)
	}
	if a.Fault.LinksKilled != 1 || a.Fault.LaneFails != 1 {
		t.Errorf("scheduled faults not applied: %+v", a.Fault)
	}
}

// TestFaultSeedMatters: a different fault seed draws different errors.
func TestFaultSeedMatters(t *testing.T) {
	p := faultParams(t, topology.Tree, &fault.Config{Seed: 1, LinkBER: 1e-5})
	q := p
	q.Fault = &fault.Config{Seed: 2, LinkBER: 1e-5}
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fault.CRCErrors == b.Fault.CRCErrors && a.FinishTime == b.FinishTime {
		t.Errorf("fault seeds 1 and 2 indistinguishable: %+v vs %+v", a.Fault, b.Fault)
	}
}

// TestKillMidChainCubeCompletes: killing a mid-chain cube's memory
// mid-run re-homes its address range to the nearest survivor, bounces
// in-flight packets, and the run still completes every transaction.
func TestKillMidChainCubeCompletes(t *testing.T) {
	p := faultParams(t, topology.Chain, &fault.Config{
		KillCubes: []fault.CubeKill{{Node: 4, At: sim.Microsecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions {
		t.Fatalf("completed %d/%d after cube kill", res.Transactions, p.Transactions)
	}
	if res.Fault.CubesKilled != 1 {
		t.Fatalf("cube kill not applied: %+v", res.Fault)
	}
	if res.Fault.Rehomed+res.Fault.Bounced == 0 {
		t.Fatalf("no traffic re-routed around the dead cube: %+v", res.Fault)
	}
}

// TestKillRingLinkCompletes: severing a ring segment mid-run reroutes
// the long way around and the run completes; a healthy baseline must be
// at least as fast.
func TestKillRingLinkCompletes(t *testing.T) {
	healthy, err := Simulate(faultParams(t, topology.Ring, nil))
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams(t, topology.Ring, &fault.Config{
		KillLinks: []fault.LinkKill{{Edge: 2, At: sim.Microsecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions || res.Fault.LinksKilled != 1 {
		t.Fatalf("link kill run incomplete: %+v", res.Fault)
	}
	if res.FinishTime < healthy.FinishTime {
		t.Errorf("run got faster after losing a link: %v < %v", res.FinishTime, healthy.FinishTime)
	}
}

// TestFullCubeKillRingCompletes: a Full kill (router too) on a ring
// leaves a connected remnant; no route may transit the dead cube, yet
// everything completes.
func TestFullCubeKillRingCompletes(t *testing.T) {
	p := faultParams(t, topology.Ring, &fault.Config{
		KillCubes: []fault.CubeKill{{Node: 5, At: sim.Microsecond, Full: true}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != p.Transactions || res.Fault.CubesKilled != 1 {
		t.Fatalf("full cube kill run incomplete: %+v", res.Fault)
	}
}

// TestLaneFailureDegrades: a lane failure halves one link's bandwidth;
// the run completes and is no faster than the healthy baseline.
func TestLaneFailureDegrades(t *testing.T) {
	healthy, err := Simulate(faultParams(t, topology.Chain, nil))
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams(t, topology.Chain, &fault.Config{
		LaneFails: []fault.LaneFail{{Edge: 0, At: 200 * sim.Nanosecond}},
	})
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.LaneFails != 1 || res.Transactions != p.Transactions {
		t.Fatalf("lane failure run incomplete: %+v", res.Fault)
	}
	if res.FinishTime <= healthy.FinishTime {
		t.Errorf("half-width host link did not slow the chain: %v vs %v",
			res.FinishTime, healthy.FinishTime)
	}
}

// TestUnsurvivableFaultsRejectedAtBuild: scenarios the topology cannot
// route around fail at Build with a diagnostic, never mid-run.
func TestUnsurvivableFaultsRejectedAtBuild(t *testing.T) {
	cases := []struct {
		name string
		topo topology.Kind
		fc   fault.Config
	}{
		{"chain link kill", topology.Chain,
			fault.Config{KillLinks: []fault.LinkKill{{Edge: 3, At: sim.Microsecond}}}},
		{"chain full cube kill", topology.Chain,
			fault.Config{KillCubes: []fault.CubeKill{{Node: 4, At: sim.Microsecond, Full: true}}}},
		{"host link kill", topology.Ring,
			fault.Config{KillLinks: []fault.LinkKill{{Edge: 0, At: sim.Microsecond}}}},
		{"nonexistent edge", topology.Ring,
			fault.Config{KillLinks: []fault.LinkKill{{Edge: 999, At: sim.Microsecond}}}},
		{"kill the host", topology.Ring,
			fault.Config{KillCubes: []fault.CubeKill{{Node: packet.HostNode, At: sim.Microsecond}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := tc.fc
			if _, err := Build(faultParams(t, tc.topo, &fc)); err == nil {
				t.Fatalf("%s accepted at Build", tc.name)
			}
		})
	}
}

// TestWatchdogCatchesRetryStorm: BER=1 corrupts every transmission
// forever (unbounded retries), so no transaction ever completes; the
// watchdog must fail the run fast with the queue/credit dump instead of
// spinning to the 10 s horizon.
func TestWatchdogCatchesRetryStorm(t *testing.T) {
	p := faultParams(t, topology.Chain, &fault.Config{LinkBER: 1.0})
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Run()
	if err == nil {
		t.Fatal("wedged run reported success")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("wedge not attributed to watchdog: %v", err)
	}
	if !strings.Contains(err.Error(), "wedge dump") || !strings.Contains(err.Error(), "cred=") {
		t.Fatalf("watchdog error lacks queue/credit diagnostic: %v", err)
	}
	// Failing fast means stopping within a few watchdog windows, not at
	// the 10 s horizon.
	if in.Eng.Now() > 10*sim.Millisecond {
		t.Fatalf("watchdog took %v to trip", in.Eng.Now())
	}
	if in.FaultCounters().Retries == 0 {
		t.Fatal("retry storm left no retry counters")
	}
}

// TestDroppedPacketTripsWatchdog: with bounded retries the poisoned
// packet is dropped; its transaction can never complete and the
// watchdog reports the wedge.
func TestDroppedPacketTripsWatchdog(t *testing.T) {
	p := faultParams(t, topology.Chain, &fault.Config{LinkBER: 1.0, MaxRetries: 3})
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Run()
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("dropped packet did not trip the watchdog: %v", err)
	}
	if in.FaultCounters().Dropped == 0 {
		t.Fatal("MaxRetries=3 at BER=1 dropped nothing")
	}
}
