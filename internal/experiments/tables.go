package experiments

import (
	"fmt"

	"memnet/internal/config"
	"memnet/internal/ddr"
)

// Table1 regenerates Table 1: maximum DDR3/DDR4 interface speed by
// DIMMs per channel, straight from the ddr bus model.
func Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Table 1: maximum memory interface speed by DIMMs per channel",
		Columns: []string{"1 DPC", "2 DPC", "3 DPC"},
		Unit:    "MT/s",
	}
	for _, g := range []ddr.Generation{ddr.DDR3, ddr.DDR4} {
		var vals []float64
		for dpc := 1; dpc <= 3; dpc++ {
			mhz, err := ddr.MaxSpeedMHz(g, dpc)
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(mhz))
		}
		t.Rows = append(t.Rows, Row{Label: g.String(), Values: vals})
	}
	return t, nil
}

// Table2Text renders the evaluated system parameters (Table 2) from the
// live configuration so that the printed table can never drift from the
// simulated one.
func Table2Text() string {
	sys := config.Default()
	nd, nn, _ := sys.CubesPerPort()
	lines := []struct{ k, v string }{
		{"Memory Ports", fmt.Sprintf("%d", sys.Ports)},
		{"Total Memory", fmtBytes(sys.TotalCapacity)},
		{"Stack Capacity", fmt.Sprintf("%s (DRAM), %s (NVM)",
			fmtBytes(sys.DRAMCubeCapacity), fmtBytes(sys.NVMCubeCapacity))},
		{"Banks / Stack", fmt.Sprintf("%d", sys.BanksPerCube)},
		{"Cubes / Port (100% DRAM)", fmt.Sprintf("%d DRAM + %d NVM", nd, nn)},
		{"DRAM Timings", fmt.Sprintf("tRCD=%v tCL=%v tRP=%v tRAS=%v",
			sys.DRAMTiming.TRCD, sys.DRAMTiming.TCL, sys.DRAMTiming.TRP, sys.DRAMTiming.TRAS)},
		{"NVM Timings", fmt.Sprintf("tRCD=%v tCL=%v tWR=%v",
			sys.NVMTiming.TRCD, sys.NVMTiming.TCL, sys.NVMTiming.TWR)},
		{"Link", fmt.Sprintf("%d lanes x %.0f Gbps (+%v SerDes/hop)",
			sys.LinkLanes, float64(sys.LaneRateBps)/1e9, sys.SerDesLatency)},
		{"DRAM Read/Write Energy", fmt.Sprintf("%.0f pJ/bit", sys.Energy.DRAMReadPJPerBit)},
		{"NVM Read/Write Energy", fmt.Sprintf("%.0f / %.0f pJ/bit",
			sys.Energy.NVMReadPJPerBit, sys.Energy.NVMWritePJPerBit)},
		{"Network Energy", fmt.Sprintf("%.0f pJ/bit/hop", sys.Energy.NetworkPJPerBitHop)},
		{"Address Interleave", fmt.Sprintf("%d B across %d ports", sys.InterleaveBytes, sys.Ports)},
		{"Outstanding Window", fmt.Sprintf("%d transactions/port", sys.MaxOutstanding)},
	}
	out := "Table 2: evaluated system parameters\n"
	for _, l := range lines {
		out += fmt.Sprintf("  %-26s %s\n", l.k, l.v)
	}
	return out
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<40 && b%(1<<40) == 0:
		return fmt.Sprintf("%dTB", b>>40)
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
