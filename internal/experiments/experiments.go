// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each figure is a
// function returning a Table whose rows/series mirror the paper's plot;
// cmd/mnexp prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Options controls experiment scale. The JSON form is embedded in
// campaign manifests; Parallel is excluded from it because worker count
// is a machine property, not an experiment input (results are
// bit-identical at any worker count).
type Options struct {
	// Transactions per simulation run.
	Transactions uint64 `json:"transactions"`
	// Seed for workload generation.
	Seed uint64 `json:"seed"`
	// Workloads restricts the suite (nil = all eight).
	Workloads []string `json:"workloads,omitempty"`
	// Parallel is the worker count for fanning independent simulation
	// runs across cores (each run is its own engine, so results are
	// bit-identical regardless of scheduling). Zero means GOMAXPROCS.
	Parallel int `json:"-"`
}

// DefaultOptions gives publication-scale runs.
func DefaultOptions() Options {
	return Options{Transactions: 20000, Seed: 1, Parallel: runtime.GOMAXPROCS(0)}
}

// QuickOptions gives fast runs for tests.
func QuickOptions() Options {
	return Options{Transactions: 2500, Seed: 1, Parallel: runtime.GOMAXPROCS(0)}
}

func (o Options) suite() []workload.Spec {
	all := workload.Suite()
	if len(o.Workloads) == 0 {
		return all
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		for _, s := range all {
			if s.Name == name {
				out = append(out, s)
			}
		}
	}
	return out
}

// MNConfig identifies one evaluated memory-network configuration.
type MNConfig struct {
	// Topo is the per-port network topology.
	Topo topology.Kind
	// DRAMFraction of total capacity (1.0 = all DRAM).
	DRAMFraction float64
	// Placement positions NVM cubes in mixed networks.
	Placement config.Placement
	// Arb is the router arbitration policy.
	Arb arb.Kind
}

// Label renders the paper-style configuration name (without the
// arbitration, which figures state separately).
func (c MNConfig) Label() string {
	pct := int(c.DRAMFraction*100 + 0.5)
	if pct > 0 && pct < 100 {
		return fmt.Sprintf("%d%%-%s (%s)", pct, c.Topo.Letter(), c.Placement)
	}
	return fmt.Sprintf("%d%%-%s", pct, c.Topo.Letter())
}

// ratios are the DRAM:NVM mixes every figure sweeps: 100%, 50% NVM-L,
// 50% NVM-F, 0%.
type ratio struct {
	frac  float64
	place config.Placement
}

var ratios = []ratio{
	{1.0, config.NVMLast},
	{0.5, config.NVMLast},
	{0.5, config.NVMFirst},
	{0.0, config.NVMLast},
}

// SimFunc executes one simulation run. It is the Runner's pluggable
// backend: the default is core.Simulate; internal/campaign substitutes
// a content-addressed-cache wrapper, and campaign grid enumeration
// substitutes a recorder that never simulates at all. A SimFunc must be
// safe for concurrent calls (Warm invokes it from worker goroutines)
// and must be a pure function of its Params.
type SimFunc func(core.Params) (core.Results, error)

// Runner executes and memoizes simulation runs. It is not safe for
// concurrent use; experiments are run sequentially for determinism.
type Runner struct {
	// Opts is the experiment scale every run of this Runner shares.
	Opts Options
	// Sys is the base system configuration each run derives from.
	Sys config.System
	// Sim, when non-nil, replaces core.Simulate as the backend executing
	// each run (see SimFunc). Figure harnesses that build sub-runners
	// (Fig13's four-port system, Fig14's half-capacity system) propagate
	// it, so a cache or recorder hook observes every simulation of a
	// campaign.
	Sim   SimFunc
	cache map[runKey]core.Results
}

type runKey struct {
	cfg      MNConfig
	workload string
	ports    int
	capacity uint64
}

// NewRunner returns a runner over the default Table 2 system.
func NewRunner(opts Options) *Runner {
	return &Runner{Opts: opts, Sys: config.Default(), cache: make(map[runKey]core.Results)}
}

// params assembles the core parameters for one pair.
func (r *Runner) params(cfg MNConfig, wl workload.Spec) core.Params {
	sys := r.Sys
	sys.DRAMFraction = cfg.DRAMFraction
	sys.Placement = cfg.Placement
	return core.Params{
		Sys:          sys,
		Topo:         cfg.Topo,
		Arb:          cfg.Arb,
		Workload:     wl,
		Transactions: r.Opts.Transactions,
		Seed:         r.Opts.Seed,
	}
}

func (r *Runner) key(cfg MNConfig, wl workload.Spec) runKey {
	return runKey{cfg: cfg, workload: wl.Name, ports: r.Sys.Ports, capacity: r.Sys.TotalCapacity}
}

// simulate executes one run through the pluggable backend (Sim if set,
// core.Simulate otherwise), bypassing the Runner's memoization.
func (r *Runner) simulate(p core.Params) (core.Results, error) {
	if r.Sim != nil {
		return r.Sim(p)
	}
	return core.Simulate(p)
}

// derive returns a fresh Runner with the given options that inherits
// this Runner's base system and simulation backend (but not its memo
// cache — the derived runner usually simulates a different system).
func (r *Runner) derive(opts Options) *Runner {
	d := NewRunner(opts)
	d.Sys = r.Sys
	d.Sim = r.Sim
	return d
}

// Run simulates one configuration/workload pair (memoized).
func (r *Runner) Run(cfg MNConfig, wl workload.Spec) (core.Results, error) {
	key := r.key(cfg, wl)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := r.simulate(r.params(cfg, wl))
	if err != nil {
		return core.Results{}, fmt.Errorf("%s/%s: %w", cfg.Label(), wl.Name, err)
	}
	r.cache[key] = res
	return res, nil
}

// pair is one (configuration, workload) simulation.
type pair struct {
	cfg MNConfig
	wl  workload.Spec
}

// Warm executes all missing (cfg, workload) pairs concurrently and fills
// the cache. Each simulation is an independent engine, so parallel
// scheduling cannot change any result. The first error wins, and no
// partial results are cached when any run fails.
//
// The pool is channel-fed: a dispatcher goroutine streams work into a
// jobs channel, workers stream outcomes into a results channel, and the
// calling goroutine alone merges them. Dispatch and result merging share
// no lock, so a worker finishing a run never waits behind work handout
// (and vice versa), which matters when many short simulations complete
// in bursts.
func (r *Runner) Warm(cfgs []MNConfig, suite []workload.Spec) error {
	var todo []pair
	seen := map[runKey]bool{}
	for _, cfg := range cfgs {
		for _, wl := range suite {
			k := r.key(cfg, wl)
			if _, ok := r.cache[k]; ok || seen[k] {
				continue
			}
			seen[k] = true
			todo = append(todo, pair{cfg, wl})
		}
	}
	if len(todo) == 0 {
		return nil
	}
	workers := r.Opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	type outcome struct {
		key runKey
		res core.Results
		err error
	}
	jobs := make(chan pair)
	results := make(chan outcome)
	abort := make(chan struct{}) // closed on first error: stops dispatch

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				res, err := r.simulate(r.params(p.cfg, p.wl))
				if err != nil {
					err = fmt.Errorf("%s/%s: %w", p.cfg.Label(), p.wl.Name, err)
				}
				results <- outcome{key: r.key(p.cfg, p.wl), res: res, err: err}
			}
		}()
	}
	go func() { // dispatcher
		defer close(jobs)
		for _, p := range todo {
			select {
			case jobs <- p:
			case <-abort:
				return
			}
		}
	}()
	go func() { // close results once all workers drain
		wg.Wait()
		close(results)
	}()

	var firstErr error
	done := make(map[runKey]core.Results, len(todo))
	for o := range results {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
				close(abort)
			}
			continue
		}
		done[o.key] = o.res
	}
	if firstErr != nil {
		return firstErr
	}
	for k, v := range done {
		r.cache[k] = v
	}
	return nil
}

// Speedup computes the paper's speedup metric of cfg over base for one
// workload: base execution time over cfg execution time, minus one.
func (r *Runner) Speedup(cfg, base MNConfig, wl workload.Spec) (float64, error) {
	a, err := r.Run(cfg, wl)
	if err != nil {
		return 0, err
	}
	b, err := r.Run(base, wl)
	if err != nil {
		return 0, err
	}
	return float64(b.FinishTime)/float64(a.FinishTime) - 1, nil
}

// Table is a generic labeled grid: one row per configuration/series, one
// column per workload (plus optional trailing aggregate columns). The
// JSON form is the interchange format of campaign manifests
// (results/experiments.json) and the cmd/mndocs renderer.
type Table struct {
	// ID is the experiment's short name, e.g. "fig4".
	ID string `json:"id"`
	// Title is the paper-style caption printed above the table.
	Title string `json:"title"`
	// Columns are the value-column headers (usually workload names plus
	// a trailing aggregate).
	Columns []string `json:"columns"`
	// Rows are the labeled series in presentation order.
	Rows []Row `json:"rows"`
	// Unit annotates cell values, e.g. "% speedup" or "relative".
	Unit string `json:"unit,omitempty"`
}

// Row is one labeled series.
type Row struct {
	// Label names the series, e.g. "100%-T".
	Label string `json:"label"`
	// Values align with the Table's Columns.
	Values []float64 `json:"values"`
}

// Cell returns the value at (rowLabel, column), for tests.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range t.Rows {
		if row.Label == rowLabel && ci < len(row.Values) {
			return row.Values[ci], true
		}
	}
	return 0, false
}

// RowByLabel returns the named row, for tests.
func (t *Table) RowByLabel(label string) (Row, bool) {
	for _, row := range t.Rows {
		if row.Label == label {
			return row, true
		}
	}
	return Row{}, false
}

// mean returns the arithmetic mean of vals.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// workloadColumns returns suite names plus "average".
func workloadColumns(suite []workload.Spec) []string {
	cols := make([]string, 0, len(suite)+1)
	for _, s := range suite {
		cols = append(cols, s.Name)
	}
	return append(cols, "average")
}

// speedupTable builds the common figure shape: for each config, the
// percent speedup over a per-workload baseline, with a trailing average.
func (r *Runner) speedupTable(id, title string, cfgs []MNConfig, base func(MNConfig) MNConfig) (*Table, error) {
	suite := r.Opts.suite()
	warm := append([]MNConfig(nil), cfgs...)
	for _, cfg := range cfgs {
		warm = append(warm, base(cfg))
	}
	if err := r.Warm(warm, suite); err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: workloadColumns(suite), Unit: "% speedup"}
	for _, cfg := range cfgs {
		vals := make([]float64, 0, len(suite)+1)
		for _, wl := range suite {
			s, err := r.Speedup(cfg, base(cfg), wl)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s*100)
		}
		vals = append(vals, mean(vals))
		t.Rows = append(t.Rows, Row{Label: cfg.Label(), Values: vals})
	}
	return t, nil
}

// sortedKeys is a test helper exposing cache coverage.
func (r *Runner) sortedKeys() []string {
	keys := make([]string, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, fmt.Sprintf("%s/%s/p%d", k.cfg.Label(), k.workload, k.ports))
	}
	sort.Strings(keys)
	return keys
}
