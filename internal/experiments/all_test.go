package experiments

import "testing"

// TestAllFiguresQuick runs every figure harness at reduced scale,
// validating that each completes and produces full tables.
func TestAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure sweep")
	}
	r := NewRunner(QuickOptions())
	type fig struct {
		name string
		fn   func() (*Table, error)
		rows int
	}
	for _, f := range []fig{
		{"fig4", r.Fig4, 2},
		{"fig5", r.Fig5, 9},
		{"fig7", r.Fig7, 4},
		{"fig10", r.Fig10, 12},
		{"fig11", r.Fig11, 12},
		{"fig12", r.Fig12, 12},
		{"fig13", r.Fig13, 12},
		{"fig14", r.Fig14, 20},
		{"fig15", r.Fig15, 20},
	} {
		tab, err := f.fn()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(tab.Rows) != f.rows {
			t.Errorf("%s: got %d rows, want %d", f.name, len(tab.Rows), f.rows)
		}
		t.Logf("\n%s", tab.Text())
	}
}
