package experiments

import (
	"fmt"

	"memnet/internal/core"
	"memnet/internal/scenario"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Scenario evaluates one declarative scenario document across the
// workload suite and reports the headline metrics per workload: finish
// time, mean latency, mean response hops, and total dynamic energy.
// When the document embeds its own workload block, the table has that
// single column instead of the suite. Runs flow through the pluggable
// Sim backend, so a cache-backed Runner serves repeated scenario
// evaluations from disk like any figure.
func (r *Runner) Scenario(spec *scenario.Spec) (*Table, error) {
	// Normalize a clone: defaults materialize (workload name, node
	// techs) and invalid documents fail here with a path-addressed
	// error instead of mid-table. The caller's spec stays untouched.
	spec = spec.Clone()
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	kind, err := topology.ScenarioKind(spec)
	if err != nil {
		return nil, err
	}
	fc, err := core.ScenarioFault(spec)
	if err != nil {
		return nil, err
	}

	suite := r.Opts.suite()
	if spec.Workload != nil {
		wl, _, err := spec.WorkloadSpec()
		if err != nil {
			return nil, err
		}
		suite = []workload.Spec{wl}
	}

	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	tab := &Table{
		ID:      "scenario",
		Title:   fmt.Sprintf("Scenario %s: headline metrics per workload", name),
		Columns: make([]string, 0, len(suite)),
		Rows: []Row{
			{Label: "finish time (us)"},
			{Label: "mean latency (ns)"},
			{Label: "mean hops"},
			{Label: "energy (uJ)"},
		},
	}
	for _, wl := range suite {
		p := core.Params{
			Sys:          r.Sys,
			Topo:         kind,
			Workload:     wl,
			Transactions: r.Opts.Transactions,
			Seed:         r.Opts.Seed,
			Scenario:     spec,
			Fault:        fc,
		}
		res, err := r.simulate(p)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, wl.Name, err)
		}
		tab.Columns = append(tab.Columns, wl.Name)
		tab.Rows[0].Values = append(tab.Rows[0].Values, float64(res.FinishTime)/1e6)
		tab.Rows[1].Values = append(tab.Rows[1].Values, float64(res.MeanLatency)/1e3)
		tab.Rows[2].Values = append(tab.Rows[2].Values, res.MeanHops)
		tab.Rows[3].Values = append(tab.Rows[3].Values, res.Energy.TotalPJ()/1e6)
	}
	return tab, nil
}
