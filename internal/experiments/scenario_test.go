package experiments

import (
	"testing"

	"memnet/internal/core"
	"memnet/internal/scenario"
)

// ySpec declares a three-cube Y, optionally with a workload block.
func ySpec(withWorkload bool) *scenario.Spec {
	s := &scenario.Spec{
		Schema: scenario.Schema,
		Name:   "exp-y",
		Nodes:  []scenario.Node{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		Links: []scenario.Link{
			{A: "host", B: "c0"},
			{A: "c0", B: "c1"},
			{A: "c0", B: "c2"},
		},
	}
	if withWorkload {
		s.Workload = &scenario.Workload{ReadFraction: 0.7, MeanGapPs: 2000}
	}
	return s
}

func TestScenarioTableSuite(t *testing.T) {
	opts := QuickOptions()
	opts.Transactions = 600
	opts.Workloads = []string{"KMEANS", "BACKPROP"}
	r := NewRunner(opts)
	// Every run must flow through the pluggable backend (the cache
	// hook), or scenario campaigns cannot be served from disk.
	var seen int
	r.Sim = func(p core.Params) (core.Results, error) {
		if p.Scenario == nil {
			t.Error("backend saw a run without the scenario attached")
		}
		seen++
		return core.Simulate(p)
	}
	tab, err := r.Scenario(ySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("backend saw %d runs, want 2", seen)
	}
	if len(tab.Columns) != 2 || tab.Columns[0] != "KMEANS" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	finish, ok := tab.Cell("finish time (us)", "KMEANS")
	if !ok || finish <= 0 {
		t.Errorf("finish cell = %v, %v", finish, ok)
	}
}

func TestScenarioTableEmbeddedWorkload(t *testing.T) {
	opts := QuickOptions()
	opts.Transactions = 600
	r := NewRunner(opts)
	tab, err := r.Scenario(ySpec(true))
	if err != nil {
		t.Fatal(err)
	}
	// The embedded block replaces the suite: one column, named custom.
	if len(tab.Columns) != 1 || tab.Columns[0] != "custom" {
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestScenarioTableRejectsBadSpec(t *testing.T) {
	s := ySpec(false)
	s.Topology = "torus"
	if _, err := NewRunner(QuickOptions()).Scenario(s); err == nil {
		t.Error("unknown topology label accepted")
	}
}
