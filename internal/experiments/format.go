package experiments

import (
	"fmt"
	"strings"
)

// Text renders the table as an aligned fixed-width grid suitable for a
// terminal, in the spirit of the paper's bar charts read as numbers.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, "(values in %s)\n", t.Unit)
	}
	labelW := len("configuration")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := 10
	for _, c := range t.Columns {
		if len(c)+1 > colW {
			colW = len(c) + 1
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "configuration")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.2f", colW, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("configuration")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders each row as a labeled ASCII bar against the table's
// value range — the terminal rendition of the paper's bar figures. For
// multi-column tables the trailing column (usually "average") is
// plotted; single-column tables plot that column.
func (t *Table) Chart() string {
	col := len(t.Columns) - 1
	if col < 0 {
		return t.Title + "\n(empty)\n"
	}
	var lo, hi float64
	vals := make([]float64, 0, len(t.Rows))
	for _, r := range t.Rows {
		if col >= len(r.Values) {
			continue
		}
		v := r.Values[col]
		vals = append(vals, v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	const width = 40
	scale := float64(width) / (hi - lo)
	zero := int((0 - lo) * scale)

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s column]\n", t.Title, t.Columns[col])
	labelW := 0
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range t.Rows {
		if col >= len(r.Values) {
			continue
		}
		v := r.Values[col]
		pos := int((v - lo) * scale)
		line := make([]byte, width+1)
		for j := range line {
			line[j] = ' '
		}
		if pos > zero {
			for j := zero + 1; j <= pos && j <= width; j++ {
				line[j] = '#'
			}
		} else if pos < zero {
			for j := pos; j < zero; j++ {
				if j >= 0 {
					line[j] = '#'
				}
			}
		}
		if zero >= 0 && zero <= width {
			line[zero] = '|'
		}
		fmt.Fprintf(&b, "%-*s %s %8.2f\n", labelW+1, r.Label, string(line), v)
	}
	return b.String()
}
