package experiments

import (
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func TestTable1Shape(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Cell("DDR3", "3 DPC"); !ok || v != 800 {
		t.Fatalf("DDR3 3DPC = %v", v)
	}
	if v, ok := tab.Cell("DDR4", "1 DPC"); !ok || v != 2133 {
		t.Fatalf("DDR4 1DPC = %v", v)
	}
}

func TestTable2Text(t *testing.T) {
	txt := Table2Text()
	for _, want := range []string{"2TB", "16GB (DRAM)", "64GB (NVM)", "256",
		"tRCD=12ns", "tWR=320ns", "5 pJ/bit/hop", "16 lanes x 15 Gbps"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, txt)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{
		Columns: []string{"A", "B"},
		Rows:    []Row{{Label: "r1", Values: []float64{1, 2}}},
	}
	if v, ok := tab.Cell("r1", "B"); !ok || v != 2 {
		t.Fatal("Cell lookup")
	}
	if _, ok := tab.Cell("r1", "C"); ok {
		t.Fatal("missing column should report !ok")
	}
	if _, ok := tab.Cell("r2", "A"); ok {
		t.Fatal("missing row should report !ok")
	}
	if r, ok := tab.RowByLabel("r1"); !ok || r.Values[0] != 1 {
		t.Fatal("RowByLabel")
	}
}

func TestRenderers(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Unit:    "widgets",
		Columns: []string{"X", "average"},
		Rows:    []Row{{Label: "cfg-1", Values: []float64{1.5, 1.5}}},
	}
	txt := tab.Text()
	for _, want := range []string{"demo", "widgets", "cfg-1", "1.50", "average"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q:\n%s", want, txt)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "configuration,X,average\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "cfg-1,1.5000,1.5000") {
		t.Errorf("CSV row wrong: %q", csv)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(Options{Transactions: 500, Seed: 1, Workloads: []string{"NW"}})
	wl, _ := workload.ByName("NW")
	cfg := MNConfig{Topo: topology.Tree, DRAMFraction: 1, Arb: arb.RoundRobin}
	a, err := r.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Run(cfg, wl)
	if a != b {
		t.Fatal("memoized result differs")
	}
	if len(r.sortedKeys()) != 1 {
		t.Fatalf("cache keys: %v", r.sortedKeys())
	}
}

func TestMNConfigLabel(t *testing.T) {
	c := MNConfig{Topo: topology.SkipList, DRAMFraction: 0.5}
	if c.Label() != "50%-SL (NVM-L)" {
		t.Fatalf("got %q", c.Label())
	}
	c = MNConfig{Topo: topology.MetaCube, DRAMFraction: 0}
	if c.Label() != "0%-MC" {
		t.Fatalf("got %q", c.Label())
	}
}

func TestOptionsSuiteFilter(t *testing.T) {
	o := Options{Workloads: []string{"NW", "BUFF"}}
	s := o.suite()
	if len(s) != 2 || s[0].Name != "NW" || s[1].Name != "BUFF" {
		t.Fatalf("filtered suite: %v", s)
	}
	if len((Options{}).suite()) != 8 {
		t.Fatal("default suite should be the full eight")
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}

func TestChart(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"X", "average"},
		Rows: []Row{
			{Label: "up", Values: []float64{0, 30}},
			{Label: "down", Values: []float64{0, -10}},
		},
	}
	c := tab.Chart()
	if !strings.Contains(c, "average column") {
		t.Errorf("chart header missing: %q", c)
	}
	if !strings.Contains(c, "up") || !strings.Contains(c, "down") {
		t.Error("chart rows missing")
	}
	if !strings.Contains(c, "#") || !strings.Contains(c, "|") {
		t.Error("chart bars or zero axis missing")
	}
	if !strings.Contains(c, "30.00") || !strings.Contains(c, "-10.00") {
		t.Error("chart values missing")
	}
	empty := &Table{Title: "none"}
	if !strings.Contains(empty.Chart(), "empty") {
		t.Error("empty chart fallback missing")
	}
}
