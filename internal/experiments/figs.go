package experiments

import (
	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/topology"
)

// baselineChain is the 100%-Chain round-robin configuration every
// figure's normalization refers to.
var baselineChain = MNConfig{
	Topo: topology.Chain, DRAMFraction: 1.0,
	Placement: config.NVMLast, Arb: arb.RoundRobin,
}

// Fig4 regenerates Fig. 4: speedup of all-DRAM ring and tree networks
// over the all-DRAM chain, per workload, round-robin arbitration.
func (r *Runner) Fig4() (*Table, error) {
	cfgs := []MNConfig{
		{Topo: topology.Ring, DRAMFraction: 1, Arb: arb.RoundRobin},
		{Topo: topology.Tree, DRAMFraction: 1, Arb: arb.RoundRobin},
	}
	return r.speedupTable("fig4",
		"Fig. 4: speedup of DRAM memory networks over chain topology",
		cfgs, func(MNConfig) MNConfig { return baselineChain })
}

// Fig5 regenerates Fig. 5: the to-memory / in-memory / from-memory
// latency breakdown for chain, ring, and tree all-DRAM networks, with
// every component normalized to the chain's total latency for that
// workload (the paper's presentation). Rows are "<Topo>/<component>".
func (r *Runner) Fig5() (*Table, error) {
	suite := r.Opts.suite()
	fig5Cfgs := []MNConfig{
		baselineChain,
		{Topo: topology.Ring, DRAMFraction: 1, Arb: arb.RoundRobin},
		{Topo: topology.Tree, DRAMFraction: 1, Arb: arb.RoundRobin},
	}
	if err := r.Warm(fig5Cfgs, suite); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Fig. 5: memory request latency breakdown relative to chain",
		Columns: workloadColumns(suite)[:len(suite)], // no average column
		Unit:    "fraction of chain total latency",
	}
	topos := []topology.Kind{topology.Chain, topology.Ring, topology.Tree}
	type comp struct{ name string }
	comps := []comp{{"to-memory"}, {"in-memory"}, {"from-memory"}}
	rows := make(map[string][]float64)
	for _, wl := range suite {
		base, err := r.Run(baselineChain, wl)
		if err != nil {
			return nil, err
		}
		baseTotal := float64(base.Breakdown.Total())
		for _, topo := range topos {
			cfg := MNConfig{Topo: topo, DRAMFraction: 1, Arb: arb.RoundRobin}
			res, err := r.Run(cfg, wl)
			if err != nil {
				return nil, err
			}
			parts := []float64{
				float64(res.Breakdown.ToMem) / baseTotal,
				float64(res.Breakdown.InMem) / baseTotal,
				float64(res.Breakdown.FromMem) / baseTotal,
			}
			for ci, c := range comps {
				label := topo.String() + "/" + c.name
				rows[label] = append(rows[label], parts[ci])
			}
		}
	}
	for _, topo := range topos {
		for _, c := range comps {
			label := topo.String() + "/" + c.name
			t.Rows = append(t.Rows, Row{Label: label, Values: rows[label]})
		}
	}
	return t, nil
}

// Fig7 regenerates Fig. 7: the tree topology with DRAM:NVM ratios 100%,
// 50% (NVM-L), 50% (NVM-F) and 0%, as speedup over the 100% chain.
func (r *Runner) Fig7() (*Table, error) {
	var cfgs []MNConfig
	for _, rt := range ratios {
		cfgs = append(cfgs, MNConfig{
			Topo: topology.Tree, DRAMFraction: rt.frac,
			Placement: rt.place, Arb: arb.RoundRobin,
		})
	}
	return r.speedupTable("fig7",
		"Fig. 7: tree topology with different DRAM:NVM ratios vs 100% chain",
		cfgs, func(MNConfig) MNConfig { return baselineChain })
}

// Fig10 regenerates Fig. 10: the naive distance-based arbitration's
// speedup over round-robin on the twelve baseline configurations
// ({chain, ring, tree} x {100%, 50% NVM-L, 50% NVM-F, 0%}).
func (r *Runner) Fig10() (*Table, error) {
	var cfgs []MNConfig
	for _, topo := range []topology.Kind{topology.Chain, topology.Ring, topology.Tree} {
		for _, rt := range ratios {
			cfgs = append(cfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.Distance,
			})
		}
	}
	return r.speedupTable("fig10",
		"Fig. 10: distance-based arbitration speedup over round-robin",
		cfgs, func(c MNConfig) MNConfig {
			c.Arb = arb.RoundRobin
			return c
		})
}

// Fig11 regenerates Fig. 11: tree vs skip-list vs MetaCube across the
// NVM ratios, round-robin arbitration, normalized to the 100% chain.
func (r *Runner) Fig11() (*Table, error) {
	var cfgs []MNConfig
	for _, rt := range ratios {
		for _, topo := range []topology.Kind{topology.Tree, topology.SkipList, topology.MetaCube} {
			cfgs = append(cfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			})
		}
	}
	return r.speedupTable("fig11",
		"Fig. 11: skip-list and MetaCube vs tree (round-robin arbitration), vs 100% chain",
		cfgs, func(MNConfig) MNConfig { return baselineChain })
}

// Fig12 regenerates Fig. 12: all techniques combined — the augmented
// distance-based arbitration applied to tree, skip-list, and MetaCube —
// normalized to the 100% chain with round-robin.
func (r *Runner) Fig12() (*Table, error) {
	var cfgs []MNConfig
	for _, rt := range ratios {
		for _, topo := range []topology.Kind{topology.Tree, topology.SkipList, topology.MetaCube} {
			cfgs = append(cfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.DistanceAugmented,
			})
		}
	}
	return r.speedupTable("fig12",
		"Fig. 12: all techniques combined (augmented distance arbitration), vs 100% chain",
		cfgs, func(MNConfig) MNConfig { return baselineChain })
}

// Fig13 regenerates Fig. 13: the performance change when the host drops
// from eight memory ports to four at fixed 2TB capacity (each port then
// serves twice the cubes and twice the traffic).
func (r *Runner) Fig13() (*Table, error) {
	suite := r.Opts.suite()
	t := &Table{
		ID:      "fig13",
		Title:   "Fig. 13: speedup of a 4-port system over the 8-port baseline (2TB)",
		Columns: workloadColumns(suite),
		Unit:    "% speedup (negative = degradation)",
	}
	var cfgs []MNConfig
	for _, rt := range ratios {
		for _, topo := range []topology.Kind{topology.Tree, topology.SkipList, topology.MetaCube} {
			cfgs = append(cfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			})
		}
	}
	base := r.derive(r.Opts)
	if err := base.Warm(cfgs, suite); err != nil {
		return nil, err
	}
	// Halving the port count doubles each remaining port's share of the
	// system's (fixed) total work: the 4-port runs process twice the
	// per-port trace, so the finish-time ratio is the system-throughput
	// ratio.
	fourOpts := r.Opts
	fourOpts.Transactions *= 2
	four := r.derive(fourOpts)
	four.Sys.Ports = 4
	if err := four.Warm(cfgs, suite); err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		vals := make([]float64, 0, len(suite)+1)
		for _, wl := range suite {
			r8, err := base.Run(cfg, wl)
			if err != nil {
				return nil, err
			}
			r4, err := four.Run(cfg, wl)
			if err != nil {
				return nil, err
			}
			vals = append(vals, (float64(r8.FinishTime)/float64(r4.FinishTime)-1)*100)
		}
		vals = append(vals, mean(vals))
		t.Rows = append(t.Rows, Row{Label: cfg.Label(), Values: vals})
	}
	return t, nil
}

// Fig14 regenerates Fig. 14: average speedup when system capacity drops
// from 2TB to 1TB with the cube count held constant (half-capacity,
// half-bank cubes), per configuration, averaged over the suite.
func (r *Runner) Fig14() (*Table, error) {
	suite := r.Opts.suite()
	t := &Table{
		ID:      "fig14",
		Title:   "Fig. 14: average speedup moving from 2TB to 1TB (same cube count)",
		Columns: []string{"average"},
		Unit:    "% speedup",
	}
	big := r.derive(r.Opts)
	small := r.derive(r.Opts)
	small.Sys.TotalCapacity /= 2
	small.Sys.DRAMCubeCapacity /= 2
	small.Sys.NVMCubeCapacity /= 2
	small.Sys.BanksPerCube /= 2

	var capCfgs []MNConfig
	for _, rt := range ratios {
		for _, topo := range topology.Kinds {
			capCfgs = append(capCfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			})
		}
	}
	if err := big.Warm(capCfgs, suite); err != nil {
		return nil, err
	}
	if err := small.Warm(capCfgs, suite); err != nil {
		return nil, err
	}

	for _, rt := range ratios {
		for _, topo := range topology.Kinds {
			cfg := MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			}
			var sum float64
			for _, wl := range suite {
				r2, err := big.Run(cfg, wl)
				if err != nil {
					return nil, err
				}
				r1, err := small.Run(cfg, wl)
				if err != nil {
					return nil, err
				}
				sum += float64(r2.FinishTime)/float64(r1.FinishTime) - 1
			}
			t.Rows = append(t.Rows, Row{
				Label:  cfg.Label(),
				Values: []float64{sum / float64(len(suite)) * 100},
			})
		}
	}
	return t, nil
}

// Fig15 regenerates Fig. 15: the all-workload-average energy breakdown
// (network transport vs memory read vs memory write) for each
// configuration, normalized to the 100% chain's total energy.
func (r *Runner) Fig15() (*Table, error) {
	suite := r.Opts.suite()
	t := &Table{
		ID:      "fig15",
		Title:   "Fig. 15: energy breakdown relative to the 100%-C network",
		Columns: []string{"network", "read", "write", "total"},
		Unit:    "fraction of 100%-C total energy",
	}
	var energyCfgs []MNConfig
	for _, rt := range ratios {
		for _, topo := range topology.Kinds {
			energyCfgs = append(energyCfgs, MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			})
		}
	}
	if err := r.Warm(append(energyCfgs, baselineChain), suite); err != nil {
		return nil, err
	}
	// Baseline: average total energy of 100% chain across the suite.
	var baseTotal float64
	for _, wl := range suite {
		res, err := r.Run(baselineChain, wl)
		if err != nil {
			return nil, err
		}
		baseTotal += res.Energy.TotalPJ()
	}
	baseTotal /= float64(len(suite))

	for _, rt := range ratios {
		for _, topo := range topology.Kinds {
			cfg := MNConfig{
				Topo: topo, DRAMFraction: rt.frac,
				Placement: rt.place, Arb: arb.RoundRobin,
			}
			var net, rd, wr float64
			for _, wl := range suite {
				res, err := r.Run(cfg, wl)
				if err != nil {
					return nil, err
				}
				net += res.Energy.NetworkPJ
				rd += res.Energy.ReadPJ
				wr += res.Energy.WritePJ
			}
			n := float64(len(suite))
			net, rd, wr = net/n, rd/n, wr/n
			t.Rows = append(t.Rows, Row{
				Label:  cfg.Label(),
				Values: []float64{net / baseTotal, rd / baseTotal, wr / baseTotal, (net + rd + wr) / baseTotal},
			})
		}
	}
	return t, nil
}

// Figure is one entry of the campaign's figure/table grid: an
// experiment id paired with the harness that regenerates it.
type Figure struct {
	// ID is the experiment's short name ("fig4", "mesh", ...), also the
	// Table.ID the harness returns.
	ID string
	// Fn regenerates the experiment's table.
	Fn func() (*Table, error)
}

// Figures returns every simulation-backed experiment of the campaign in
// the paper's presentation order. Table 1 and Table 2 are excluded:
// they are derived from the DDR bus model and the static configuration,
// with no simulation behind them. cmd/mnexp drives this list directly,
// and internal/campaign enumerates the full simulation grid from it, so
// a new figure added here is automatically sharded, cached, and merged.
func (r *Runner) Figures() []Figure {
	return []Figure{
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"fig12", r.Fig12},
		{"fig13", r.Fig13},
		{"fig14", r.Fig14},
		{"fig15", r.Fig15},
		{"mesh", r.ExtMesh},
		{"resilience", r.Resilience},
		{"chaos", r.Chaos},
	}
}

// ExtMesh is an extension experiment (not in the paper): the 2D mesh
// the paper rules out a priori, compared against the evaluated
// topologies on the all-DRAM system, normalized to the chain. The paper
// argues the mesh's average hop count exceeds the tree's no matter
// which cube attaches to the host (§3); this measures the consequence.
func (r *Runner) ExtMesh() (*Table, error) {
	var cfgs []MNConfig
	for _, topo := range []topology.Kind{topology.Ring, topology.Mesh,
		topology.Tree, topology.SkipList, topology.MetaCube} {
		cfgs = append(cfgs, MNConfig{Topo: topo, DRAMFraction: 1, Arb: arb.RoundRobin})
	}
	return r.speedupTable("mesh",
		"Extension: 2D mesh vs the paper's topologies (all-DRAM), vs 100% chain",
		cfgs, func(MNConfig) MNConfig { return baselineChain })
}
