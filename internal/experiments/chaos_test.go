package experiments

import (
	"reflect"
	"testing"
)

// TestChaosQuick runs the chaos validation harness at reduced scale:
// the harness itself machine-checks conservation, determinism,
// schedule application, and route-back, so a returned table means the
// invariants held on every topology.
func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	r := NewRunner(QuickOptions())
	tab, err := r.Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(chaosTopos) {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), len(chaosTopos))
	}
	sawRepair := false
	for _, row := range tab.Rows {
		// Columns: link kills, cube kills, lane flaps, ...
		if row.Values[0]+row.Values[1]+row.Values[2] > 0 {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Error("no topology received any chaos event")
	}
	t.Logf("\n%s", tab.Text())
}

// TestChaosScheduleStable: the generated schedule is a pure function
// of the options — two runners with the same options derive identical
// fault configs (the campaign-fingerprint stability requirement).
func TestChaosScheduleStable(t *testing.T) {
	opts := QuickOptions()
	r := NewRunner(opts)
	wl := r.Opts.suite()[0]
	cfg := MNConfig{Topo: chaosTopos[1], DRAMFraction: 1.0}
	a, err := chaosFault(r.params(cfg, wl), opts, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaosFault(NewRunner(opts).params(cfg, wl), opts, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("chaos schedules differ between identical runners:\n a: %+v\n b: %+v", a, b)
	}
}
