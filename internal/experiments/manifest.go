package experiments

import (
	"encoding/json"
	"io"
	"runtime/debug"

	"memnet/internal/obs"
)

// CampaignSchema identifies the mnexp campaign-manifest layout.
const CampaignSchema = "memnet/exp-manifest/v1"

// RunManifest is the machine-readable record of one mnexp campaign:
// the options every run shared, the toolchain and git ref that produced
// it, and every generated table. It is the experiment-level counterpart
// of the per-run obs.Manifest.
type RunManifest struct {
	Schema    string   `json:"schema"`
	GitRef    string   `json:"git_ref,omitempty"`
	GoVersion string   `json:"go_version,omitempty"`
	Options   Options  `json:"options"`
	Tables    []*Table `json:"tables"`
}

// NewRunManifest returns a campaign manifest stamped with the schema
// version, toolchain, and git ref.
func NewRunManifest(opts Options) *RunManifest {
	m := &RunManifest{Schema: CampaignSchema, GitRef: obs.GitRef(), Options: opts}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = info.GoVersion
	}
	return m
}

// Add appends a generated table (in campaign order).
func (m *RunManifest) Add(t *Table) { m.Tables = append(m.Tables, t) }

// Encode writes the manifest as indented JSON.
func (m *RunManifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
