package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"

	"memnet/internal/obs"
)

// CampaignSchema identifies the mnexp campaign-manifest layout. v2
// lower-cased the Table/Row JSON keys and dropped the machine-local
// Parallel option when the manifest became the machine-readable
// experiments.json artifact that cmd/mndocs renders docs from.
const CampaignSchema = "memnet/exp-manifest/v2"

// RunManifest is the machine-readable record of one mnexp campaign:
// the options every run shared, the toolchain and git ref that produced
// it, and every generated table. It is the experiment-level counterpart
// of the per-run obs.Manifest.
type RunManifest struct {
	// Schema is CampaignSchema at write time.
	Schema string `json:"schema"`
	// GitRef is the VCS revision of the producing binary, when stamped
	// (empty under -buildvcs=false, which keeps committed artifacts
	// byte-stable).
	GitRef string `json:"git_ref,omitempty"`
	// GoVersion is the toolchain that built the producing binary.
	GoVersion string `json:"go_version,omitempty"`
	// Options are the shared experiment options of the campaign.
	Options Options `json:"options"`
	// Tables holds every generated table in campaign order.
	Tables []*Table `json:"tables"`
}

// NewRunManifest returns a campaign manifest stamped with the schema
// version, toolchain, and git ref.
func NewRunManifest(opts Options) *RunManifest {
	m := &RunManifest{Schema: CampaignSchema, GitRef: obs.GitRef(), Options: opts}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = info.GoVersion
	}
	return m
}

// Add appends a generated table (in campaign order).
func (m *RunManifest) Add(t *Table) { m.Tables = append(m.Tables, t) }

// Encode writes the manifest as indented JSON.
func (m *RunManifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeRunManifest parses a serialized campaign manifest, rejecting
// documents from a different schema version (cmd/mndocs renders docs
// from these and must not silently consume a stale layout).
func DecodeRunManifest(raw []byte) (*RunManifest, error) {
	var m RunManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("experiments: manifest: %w", err)
	}
	if m.Schema != CampaignSchema {
		return nil, fmt.Errorf("experiments: manifest schema %q, want %q", m.Schema, CampaignSchema)
	}
	return &m, nil
}
