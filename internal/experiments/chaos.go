package experiments

import (
	"fmt"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// chaosTopos are the fabrics the chaos harness validates. The schedule
// generator adapts to each one's redundancy: chains and trees get no
// link kills (no severable edge), rings and skip lists do.
var chaosTopos = []topology.Kind{
	topology.Chain, topology.Ring, topology.Tree, topology.SkipList, topology.MetaCube,
}

// chaosSpec derives the seeded schedule request for one run. The
// horizon is a pure function of the options (about half the
// injection-limited finish time), so the generated schedule — and
// therefore the campaign fingerprint — is identical whether the run is
// simulated, cached, or dry-run enumerated.
func chaosSpec(opts Options, wl workload.Spec) fault.ChaosSpec {
	return fault.ChaosSpec{
		Seed:      opts.Seed,
		Horizon:   sim.Time(opts.Transactions) * wl.MeanGap / 2,
		LinkKills: 2, CubeKills: 2, LaneFlaps: 2,
		LinkBER:    1e-7,
		MaxRetries: 0, // retry forever: conservation means completion
	}
}

// Chaos is the fault/recovery validation harness (`mnexp -exp chaos`,
// not in the paper): a seeded random kill/repair/flap schedule runs
// against every topology and a set of machine-checked invariants —
// transaction conservation, zero drops, every scheduled fault applied
// and repaired, byte-identical Results on a re-run with the same seed,
// no watchdog trip, and measurable route-back (post-repair traffic on
// healed links) — turns any regression in the self-healing path into a
// table-generation error. The reported rows summarize what each fabric
// absorbed and what the outages cost relative to the healthy baseline.
func (r *Runner) Chaos() (*Table, error) {
	suite := r.Opts.suite()
	wl := suite[0]
	for _, s := range suite {
		if s.Name == "KMEANS" {
			wl = s
		}
	}
	t := &Table{
		ID:    "chaos",
		Title: "Chaos validation: seeded kill/repair/flap schedules (" + wl.Name + ", 100% DRAM)",
		Columns: []string{
			"link kills", "cube kills", "lane flaps",
			"rerouted", "bounced+rehomed", "healed Mbit", "slowdown",
		},
		Unit: "counts; slowdown %",
	}
	for _, topo := range chaosTopos {
		cfg := MNConfig{Topo: topo, DRAMFraction: 1.0, Placement: config.NVMLast, Arb: arb.RoundRobin}
		base, err := r.Run(cfg, wl)
		if err != nil {
			return nil, fmt.Errorf("chaos %s baseline: %w", cfg.Label(), err)
		}
		p := r.params(cfg, wl)
		fcfg, err := chaosFault(p, r.Opts, wl)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", cfg.Label(), err)
		}
		p.Fault = &fcfg
		res, err := r.simulate(p)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", cfg.Label(), err)
		}
		replay, err := r.simulate(p)
		if err != nil {
			return nil, fmt.Errorf("chaos %s replay: %w", cfg.Label(), err)
		}
		if err := checkChaos(p, fcfg, res, replay); err != nil {
			return nil, fmt.Errorf("chaos %s: %w", cfg.Label(), err)
		}
		f := res.Fault
		t.Rows = append(t.Rows, Row{Label: cfg.Label(), Values: []float64{
			float64(f.LinksKilled), float64(f.CubesKilled), float64(f.LaneFails),
			float64(f.Rerouted), float64(f.Bounced + f.Rehomed),
			float64(f.HealedBits) / 1e6,
			(float64(res.FinishTime)/float64(base.FinishTime) - 1) * 100,
		}})
	}
	return t, nil
}

// chaosFault generates the validated schedule for one configuration by
// rebuilding the run's topology graph (same construction core.Build
// uses, so edge indices line up).
func chaosFault(p core.Params, opts Options, wl workload.Spec) (fault.Config, error) {
	techs, err := core.TechOrder(&p.Sys)
	if err != nil {
		return fault.Config{}, err
	}
	group := p.Tuning.MetaCubeGroup
	if group == 0 {
		group = core.DefaultTuning().MetaCubeGroup
	}
	g, err := topology.Build(p.Topo, techs, topology.WithMetaCubeGroup(group))
	if err != nil {
		return fault.Config{}, err
	}
	return fault.Chaos(g, chaosSpec(opts, wl))
}

// checkChaos enforces the harness invariants on one faulty run. All
// fault-counter checks are gated on Fault.Any() so a campaign grid
// dry-run (which fabricates Results without simulating) passes
// trivially; conservation and determinism hold for those too.
func checkChaos(p core.Params, fcfg fault.Config, res, replay core.Results) error {
	if res != replay {
		return fmt.Errorf("nondeterministic: identical seeds produced different Results\n first: %#v\nsecond: %#v", res, replay)
	}
	if res.Transactions != p.Transactions {
		return fmt.Errorf("conservation: %d of %d transactions completed", res.Transactions, p.Transactions)
	}
	f := res.Fault
	if !f.Any() {
		return nil
	}
	if f.Dropped != 0 {
		return fmt.Errorf("conservation: %d packets dropped with MaxRetries=0", f.Dropped)
	}
	type want struct {
		name      string
		got, want uint64
	}
	for _, w := range []want{
		{"links killed", f.LinksKilled, uint64(len(fcfg.KillLinks))},
		{"links repaired", f.LinksRepaired, uint64(len(fcfg.RepairLinks))},
		{"cubes killed", f.CubesKilled, uint64(len(fcfg.KillCubes))},
		{"cubes repaired", f.CubesRepaired, uint64(len(fcfg.RepairCubes))},
		{"lanes flapped down", f.LaneFails, uint64(len(fcfg.LaneFlaps))},
		{"lanes flapped up", f.LaneRepairs, uint64(len(fcfg.LaneFlaps))},
	} {
		if w.got != w.want {
			return fmt.Errorf("%s: %d applied, %d scheduled", w.name, w.got, w.want)
		}
	}
	if f.LinksRepaired > 0 && f.HealedBits == 0 {
		return fmt.Errorf("route-back: %d links repaired but no traffic on healed links", f.LinksRepaired)
	}
	return nil
}
