package experiments

import (
	"testing"
)

// The shape tests assert the qualitative results the paper reports —
// who wins, in which direction, where the crossovers are — at reduced
// trace length. They are the repository's regression net: calibration
// changes that break a paper-level conclusion fail here.

func shapeRunner(t *testing.T, workloads ...string) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("shape sweep")
	}
	opts := Options{Transactions: 3000, Seed: 1, Workloads: workloads}
	return NewRunner(opts)
}

// Fig. 4: tree > ring > chain for every workload in the all-DRAM MN.
func TestShapeFig4TopologyOrdering(t *testing.T) {
	r := shapeRunner(t)
	tab, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := tab.RowByLabel("100%-R")
	tree, _ := tab.RowByLabel("100%-T")
	for i, col := range tab.Columns {
		if col == "average" {
			continue
		}
		if ring.Values[i] < -0.5 {
			t.Errorf("%s: ring slower than chain (%.2f%%)", col, ring.Values[i])
		}
		if tree.Values[i] < ring.Values[i]-1.0 {
			t.Errorf("%s: tree (%.2f%%) below ring (%.2f%%)",
				col, tree.Values[i], ring.Values[i])
		}
	}
	rAvg, _ := tab.Cell("100%-R", "average")
	tAvg, _ := tab.Cell("100%-T", "average")
	if !(tAvg > rAvg && rAvg > 5) {
		t.Fatalf("averages: ring %.1f, tree %.1f — want tree > ring > 5%%", rAvg, tAvg)
	}
	// NW has the lowest network load and the smallest tree speedup.
	nw, _ := tab.Cell("100%-T", "NW")
	for _, col := range tab.Columns[:len(tab.Columns)-1] {
		if col == "NW" {
			continue
		}
		v, _ := tab.Cell("100%-T", col)
		if v < nw {
			t.Errorf("%s tree speedup %.1f%% below NW's %.1f%%", col, v, nw)
		}
	}
}

// Fig. 5: network latency dominates the chain; the request path exceeds
// the response path (response priority backs requests up); in-memory
// latency is roughly constant across topologies.
func TestShapeFig5Breakdown(t *testing.T) {
	r := shapeRunner(t, "BUFF", "KMEANS", "BACKPROP")
	tab, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	get := func(row, col string) float64 {
		v, ok := tab.Cell(row, col)
		if !ok {
			t.Fatalf("missing %s/%s", row, col)
		}
		return v
	}
	for _, wl := range []string{"BUFF", "KMEANS"} {
		to := get("Chain/to-memory", wl)
		in := get("Chain/in-memory", wl)
		from := get("Chain/from-memory", wl)
		if to+from <= in {
			t.Errorf("%s: chain network latency (%.2f) not dominant over array (%.2f)",
				wl, to+from, in)
		}
		if to <= from {
			t.Errorf("%s: request path (%.2f) not longer than response path (%.2f)",
				wl, to, from)
		}
		// Chain rows are normalized to the chain total: they sum to 1.
		if s := to + in + from; s < 0.99 || s > 1.01 {
			t.Errorf("%s: chain breakdown sums to %.3f", wl, s)
		}
		// Tree's total is well below the chain's.
		treeTotal := get("Tree/to-memory", wl) + get("Tree/in-memory", wl) +
			get("Tree/from-memory", wl)
		if treeTotal >= 0.95 {
			t.Errorf("%s: tree total %.2f not below chain", wl, treeTotal)
		}
		// In-memory latency stays roughly constant across topologies.
		if tin := get("Tree/in-memory", wl); tin < in*0.7 || tin > in*1.4 {
			t.Errorf("%s: in-memory latency not constant: chain %.2f tree %.2f",
				wl, in, tin)
		}
	}
}

// Fig. 7: NVM mixing on the tree — ordering 100% and mixes above 0%;
// all positive against the chain baseline for loaded workloads; NW
// insensitive.
func TestShapeFig7NVMLadder(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF", "NW")
	tab, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"KMEANS", "BUFF"} {
		full, _ := tab.Cell("100%-T", wl)
		mixL, _ := tab.Cell("50%-T (NVM-L)", wl)
		none, _ := tab.Cell("0%-T", wl)
		if !(full > mixL && mixL > none) {
			t.Errorf("%s: ladder broken: 100%%=%.1f 50L=%.1f 0=%.1f", wl, full, mixL, none)
		}
		if mixL <= 0 {
			t.Errorf("%s: 50%% mix not beneficial vs chain (%.1f%%)", wl, mixL)
		}
	}
}

// Fig. 10: naive distance arbitration — positive on average for the
// homogeneous networks, negative for NVM-F (distance mispredicts age
// when slow cubes are near), as §5.1 reports.
func TestShapeFig10DistanceSigns(t *testing.T) {
	r := shapeRunner(t)
	tab, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var homo, nvmF float64
	var nHomo, nF int
	for _, row := range tab.Rows {
		avg := row.Values[len(row.Values)-1]
		switch {
		case row.Label == "100%-C" || row.Label == "100%-R" || row.Label == "100%-T":
			homo += avg
			nHomo++
		case len(row.Label) > 5 && row.Label[4] != 'C' && false:
		}
		if lbl := row.Label; len(lbl) >= 5 && lbl[:3] == "50%" && lbl[len(lbl)-3:] == "-F)" {
			nvmF += avg
			nF++
		}
	}
	if nHomo != 3 || nF != 3 {
		t.Fatalf("row accounting wrong: %d homo, %d NVM-F", nHomo, nF)
	}
	if homo/3 < nvmF/3 {
		t.Errorf("homogeneous average (%.2f) should beat NVM-F average (%.2f)",
			homo/3, nvmF/3)
	}
}

// Fig. 11: MetaCube wins everywhere; skip-list lands near the tree.
func TestShapeFig11MetaCubeBest(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF", "BIT")
	tab, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, ratioPrefix := range []string{"100%", "50%"} {
		var tV, slV, mcV float64
		for _, row := range tab.Rows {
			if len(row.Label) < len(ratioPrefix) || row.Label[:len(ratioPrefix)] != ratioPrefix {
				continue
			}
			avg := row.Values[len(row.Values)-1]
			switch {
			case row.Label[len(ratioPrefix):len(ratioPrefix)+2] == "-T":
				tV = avg
			case row.Label[len(ratioPrefix):len(ratioPrefix)+3] == "-SL":
				slV = avg
			case row.Label[len(ratioPrefix):len(ratioPrefix)+3] == "-MC":
				mcV = avg
			}
		}
		if !(mcV > tV) {
			t.Errorf("%s: MetaCube (%.1f) must beat tree (%.1f)", ratioPrefix, mcV, tV)
		}
		if slV < tV-12 {
			t.Errorf("%s: skip-list (%.1f) too far below tree (%.1f)", ratioPrefix, slV, tV)
		}
	}
}

// Fig. 12: the augmented arbitration recovers the skip-list's BACKPROP
// loss (the paper's headline workload for the combined techniques).
func TestShapeFig12BackpropRecovery(t *testing.T) {
	r := shapeRunner(t, "BACKPROP")
	rr, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	aug, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := rr.Cell("100%-SL", "BACKPROP")
	after, _ := aug.Cell("100%-SL", "BACKPROP")
	if after <= before+2 {
		t.Errorf("augmented arbitration did not recover BACKPROP on the skip-list: %.1f -> %.1f",
			before, after)
	}
}

// Fig. 14: capacity halving — all-DRAM barely moves; all-NVM degrades
// most (memory-parallelism loss dominates), with the 50% mixes between.
func TestShapeFig14CapacityOrdering(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF")
	tab, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		row, ok := tab.RowByLabel(label)
		if !ok {
			t.Fatalf("missing row %s", label)
		}
		return row.Values[0]
	}
	full := get("100%-T")
	mix := get("50%-T (NVM-L)")
	none := get("0%-T")
	if !(full > mix && mix > none) {
		t.Errorf("capacity sensitivity ordering broken: 100%%=%.1f 50%%=%.1f 0%%=%.1f",
			full, mix, none)
	}
	if none >= 0 {
		t.Errorf("all-NVM should degrade at 1TB, got %.1f%%", none)
	}
}

// Fig. 15: the paper's three headline energy findings.
func TestShapeFig15Energy(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF", "BACKPROP")
	tab, err := r.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	net := func(label string) float64 {
		v, ok := tab.Cell(label, "network")
		if !ok {
			t.Fatalf("missing %s", label)
		}
		return v
	}
	total := func(label string) float64 {
		v, _ := tab.Cell(label, "total")
		return v
	}
	// (1) Network energy dominates the all-DRAM chain and shrinks with
	// lower-hop-count topologies: chain > ring > tree.
	if !(net("100%-C") > net("100%-R") && net("100%-R") > net("100%-T")) {
		t.Errorf("network energy ordering: C=%.2f R=%.2f T=%.2f",
			net("100%-C"), net("100%-R"), net("100%-T"))
	}
	// (2) 0%-C cuts network energy by roughly 3x, but write energy lifts
	// its total back to around (or above) the baseline.
	ratio := net("100%-C") / net("0%-C")
	if ratio < 2 || ratio > 5 {
		t.Errorf("0%%-C network reduction %.1fx, want ~3x", ratio)
	}
	if total("0%-C") < 0.85 {
		t.Errorf("0%%-C total %.2f should be near/above the baseline", total("0%-C"))
	}
	// (3) The skip-list spends more network energy than the tree (writes
	// take the long chain).
	if net("100%-SL") <= net("100%-T") {
		t.Errorf("skip-list network energy %.2f not above tree %.2f",
			net("100%-SL"), net("100%-T"))
	}
}

// Fig. 13: fewer host ports degrade performance everywhere; the
// MetaCube, whose hop count barely grows, degrades least.
func TestShapeFig13PortOrdering(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF")
	tab, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(label string) float64 {
		row, ok := tab.RowByLabel(label)
		if !ok {
			t.Fatalf("missing row %s", label)
		}
		return row.Values[len(row.Values)-1]
	}
	tree := avg("100%-T")
	mc := avg("100%-MC")
	if tree >= 0 || mc >= 0 {
		t.Fatalf("4 ports should degrade loaded workloads: tree %.1f, MC %.1f", tree, mc)
	}
	if mc < tree {
		t.Fatalf("MetaCube (%.1f) should degrade less than tree (%.1f)", mc, tree)
	}
	// All-NVM is the least sensitive mix (memory-latency bound).
	if avg("0%-T") < tree {
		t.Fatalf("all-NVM (%.1f) should degrade less than all-DRAM (%.1f)",
			avg("0%-T"), tree)
	}
}

// Extension: the mesh lands between the ring and the tree — better than
// the linear topologies, worse than the tree, as the paper's §3 argument
// predicts.
func TestShapeMeshBetweenRingAndTree(t *testing.T) {
	r := shapeRunner(t, "KMEANS", "BUFF")
	tab, err := r.ExtMesh()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(label string) float64 {
		row, ok := tab.RowByLabel(label)
		if !ok {
			t.Fatalf("missing %s", label)
		}
		return row.Values[len(row.Values)-1]
	}
	mesh, ring, tree := avg("100%-M"), avg("100%-R"), avg("100%-T")
	if mesh <= 0 {
		t.Fatalf("mesh should beat the chain, got %.1f", mesh)
	}
	if mesh >= tree {
		t.Fatalf("mesh (%.1f) should not beat the tree (%.1f)", mesh, tree)
	}
	_ = ring // the ring/mesh order is load-dependent; only the tree bound is structural
}
