package experiments

import (
	"fmt"

	"memnet/internal/arb"
	"memnet/internal/config"
	"memnet/internal/fault"
	"memnet/internal/topology"
)

// resilienceBERs are the swept per-bit error rates. A modern SerDes
// lane delivers raw BERs around 1e-12; the sweep pushes orders of
// magnitude past that to expose where each topology's retry overhead
// becomes visible in execution time.
var resilienceBERs = []float64{1e-7, 5e-7, 1e-6, 5e-6}

// Resilience is an extension experiment (Fig. 4-style, not in the
// paper): execution-time slowdown under increasing link error rates for
// each all-DRAM topology on KMEANS. Every corrupted transmission costs a
// retry round-trip out of the link's retry buffer, so the slowdown
// tracks each topology's traffic concentration — chains retransmit on
// the hot host link, trees spread the exposure.
//
// Baseline runs go through the memoizing Run path (they are ordinary
// healthy configurations, shared with the figure sweeps); the faulty
// runs bypass it — the in-memory cache key identifies healthy
// configurations only — but still flow through the pluggable simulate
// backend, so a campaign cache (which fingerprints the fault scenario)
// covers them too.
func (r *Runner) Resilience() (*Table, error) {
	suite := r.Opts.suite()
	wl := suite[0]
	for _, s := range suite {
		if s.Name == "KMEANS" {
			wl = s
		}
	}
	topos := []topology.Kind{topology.Chain, topology.Ring, topology.Tree, topology.SkipList}

	cols := make([]string, 0, len(resilienceBERs))
	for _, ber := range resilienceBERs {
		cols = append(cols, fmt.Sprintf("BER %.0e", ber))
	}
	t := &Table{
		ID:      "resilience",
		Title:   "Slowdown under link errors (" + wl.Name + ", 100% DRAM, retry-on-CRC)",
		Columns: cols,
		Unit:    "% slowdown",
	}
	for _, topo := range topos {
		cfg := MNConfig{Topo: topo, DRAMFraction: 1.0, Placement: config.NVMLast, Arb: arb.RoundRobin}
		base, err := r.Run(cfg, wl)
		if err != nil {
			return nil, fmt.Errorf("resilience %s baseline: %w", cfg.Label(), err)
		}
		vals := make([]float64, 0, len(resilienceBERs))
		for _, ber := range resilienceBERs {
			p := r.params(cfg, wl)
			p.Fault = &fault.Config{Seed: r.Opts.Seed, LinkBER: ber}
			res, err := r.simulate(p)
			if err != nil {
				return nil, fmt.Errorf("resilience %s BER %.0e: %w", cfg.Label(), ber, err)
			}
			vals = append(vals, (float64(res.FinishTime)/float64(base.FinishTime)-1)*100)
		}
		t.Rows = append(t.Rows, Row{Label: cfg.Label(), Values: vals})
	}
	return t, nil
}
