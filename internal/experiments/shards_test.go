package experiments

import (
	"reflect"
	"testing"
)

// TestFigureTablesShardInvariant pins the `mnexp -shards` contract:
// figure tables are byte-identical whatever the worker count, because
// every simulation is an independent engine and table assembly happens
// on the calling goroutine in a fixed order. A small transaction count
// and a two-workload suite keep the check fast while still fanning
// enough runs to exercise the pool.
func TestFigureTablesShardInvariant(t *testing.T) {
	build := func(parallel int) map[string]*Table {
		opts := Options{
			Transactions: 300,
			Seed:         1,
			Workloads:    []string{"KMEANS", "BIT"},
			Parallel:     parallel,
		}
		r := NewRunner(opts)
		out := map[string]*Table{}
		for _, id := range []string{"fig4", "fig5"} {
			for _, f := range r.Figures() {
				if f.ID != id {
					continue
				}
				tab, err := f.Fn()
				if err != nil {
					t.Fatalf("parallel=%d %s: %v", parallel, id, err)
				}
				out[id] = tab
			}
		}
		return out
	}
	seq := build(1)
	par := build(4)
	for id, tab := range seq {
		if !reflect.DeepEqual(tab, par[id]) {
			t.Errorf("%s differs between -shards 1 and -shards 4\n seq: %+v\n par: %+v",
				id, tab, par[id])
		}
	}
}
