package experiments

import "testing"

// TestResilienceShape: the resilience sweep covers all four base
// topologies across the BER ladder, slowdowns are finite, and no
// topology speeds up under injected errors.
func TestResilienceShape(t *testing.T) {
	opts := QuickOptions()
	opts.Transactions = 800
	r := NewRunner(opts)
	tab, err := r.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 topology rows, got %d", len(tab.Rows))
	}
	if len(tab.Columns) != len(resilienceBERs) {
		t.Fatalf("want %d BER columns, got %d", len(resilienceBERs), len(tab.Columns))
	}
	for _, row := range tab.Rows {
		if len(row.Values) != len(tab.Columns) {
			t.Fatalf("%s: ragged row", row.Label)
		}
		for i, v := range row.Values {
			// A retried packet perturbs downstream arbitration and
			// row-buffer interleaving, so tiny negative "slowdowns" are
			// legitimate timing noise; only a substantial speedup would
			// mean the error model is broken.
			if v < -2.0 {
				t.Errorf("%s at %s: injected errors sped the run up (%.3f%%)",
					row.Label, tab.Columns[i], v)
			}
		}
	}
	// The steepest error rate must visibly slow at least one topology;
	// otherwise the sweep is testing nothing.
	worst := 0.0
	for _, row := range tab.Rows {
		if s := row.Values[len(row.Values)-1]; s > worst {
			worst = s
		}
	}
	if worst <= 0 {
		t.Error("no topology slowed down at the steepest BER")
	}
}
