package trace

import (
	"strings"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func ev(at sim.Time, id uint64) Event {
	return Event{At: at, Op: Arrive, Node: 3, Port: 1, VC: packet.VCRequest,
		ID: id, Kind: packet.ReadReq, Addr: 0x40}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 10; i++ {
		l.Record(ev(sim.Time(i), uint64(i)))
	}
	if l.Total() != 10 {
		t.Fatalf("total %d", l.Total())
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	for i, e := range got {
		if e.ID != uint64(7+i) {
			t.Fatalf("event %d has ID %d, want %d (chronological tail)", i, e.ID, 7+i)
		}
	}
}

func TestUnderfill(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(1, 1))
	l.Record(ev(2, 2))
	got := l.Events()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("events %v", got)
	}
}

// TestWraparoundBoundary pins the ring at its two edge states: exactly
// full (no eviction yet, next still at 0) and one past full (a single
// eviction, so Events must rotate around the write cursor).
func TestWraparoundBoundary(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 4; i++ {
		l.Record(ev(sim.Time(i), uint64(i)))
	}
	got := l.Events()
	if len(got) != 4 || got[0].ID != 1 || got[3].ID != 4 {
		t.Fatalf("exactly-full log misordered: %v", got)
	}
	l.Record(ev(5, 5)) // first eviction: drops 1, cursor now mid-buffer
	got = l.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d after first eviction", len(got))
	}
	for i, e := range got {
		if e.ID != uint64(2+i) {
			t.Fatalf("event %d has ID %d, want %d after single wrap", i, e.ID, 2+i)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total %d, want 5", l.Total())
	}
}

// TestMultiWrap: many full revolutions of the ring still yield the
// chronological tail, for capacities that do and do not divide the
// record count evenly (cursor ends both at 0 and mid-buffer).
func TestMultiWrap(t *testing.T) {
	for _, capacity := range []int{3, 4} {
		l := NewLog(capacity)
		const n = 12
		for i := 1; i <= n; i++ {
			l.Record(ev(sim.Time(i), uint64(i)))
		}
		got := l.Events()
		if len(got) != capacity {
			t.Fatalf("cap %d: retained %d", capacity, len(got))
		}
		for i, e := range got {
			want := uint64(n - capacity + 1 + i)
			if e.ID != want {
				t.Fatalf("cap %d: event %d has ID %d, want %d", capacity, i, e.ID, want)
			}
			if i > 0 && e.At < got[i-1].At {
				t.Fatalf("cap %d: events not chronological: %v", capacity, got)
			}
		}
	}
}

// TestPacketFilterAcrossWrap: per-packet extraction stays chronological
// after the ring wraps through the packet's lifecycle.
func TestPacketFilterAcrossWrap(t *testing.T) {
	l := NewLog(6)
	// Packet 9's lifecycle interleaved with filler; early records evict.
	for i := 0; i < 5; i++ {
		l.Record(ev(sim.Time(i), 100+uint64(i)))
	}
	l.Record(Event{At: 10, Op: Arrive, ID: 9})
	l.Record(ev(11, 200))
	l.Record(Event{At: 12, Op: MemStart, ID: 9})
	l.Record(Event{At: 13, Op: MemDone, ID: 9})
	got := l.Packet(9)
	if len(got) != 3 {
		t.Fatalf("packet events %v", got)
	}
	for i, op := range []Op{Arrive, MemStart, MemDone} {
		if got[i].Op != op {
			t.Fatalf("packet event %d is %v, want %v", i, got[i].Op, op)
		}
	}
}

func TestPacketFilter(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 6; i++ {
		l.Record(ev(sim.Time(i), uint64(i%2)))
	}
	if n := len(l.Packet(1)); n != 3 {
		t.Fatalf("packet filter got %d", n)
	}
}

func TestStrings(t *testing.T) {
	for _, op := range []Op{Inject, Arrive, MemStart, MemDone, Complete} {
		if strings.Contains(op.String(), "op(") {
			t.Errorf("missing name for op %d", op)
		}
	}
	l := NewLog(2)
	l.Record(ev(1500, 9))
	s := l.String()
	for _, want := range []string{"arrive", "node=3", "port=1/vc0", "ReadReq#9", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("log string missing %q: %s", want, s)
		}
	}
	// Host-side events carry no input port and render port=-.
	l = NewLog(2)
	l.Record(Event{At: 1, Op: Complete, Node: 0, Port: -1,
		VC: packet.VCResponse, ID: 9, Kind: packet.ReadResp, Addr: 0x40})
	if s := l.String(); !strings.Contains(s, "port=-/vc1") {
		t.Errorf("host event port rendering: %s", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 2000; i++ {
		l.Record(ev(sim.Time(i), uint64(i)))
	}
	if len(l.Events()) != 1024 {
		t.Fatalf("default capacity: %d", len(l.Events()))
	}
}
