package trace

import (
	"strings"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func ev(at sim.Time, id uint64) Event {
	return Event{At: at, Op: Arrive, Node: 3, ID: id, Kind: packet.ReadReq, Addr: 0x40}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 10; i++ {
		l.Record(ev(sim.Time(i), uint64(i)))
	}
	if l.Total() != 10 {
		t.Fatalf("total %d", l.Total())
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	for i, e := range got {
		if e.ID != uint64(7+i) {
			t.Fatalf("event %d has ID %d, want %d (chronological tail)", i, e.ID, 7+i)
		}
	}
}

func TestUnderfill(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(1, 1))
	l.Record(ev(2, 2))
	got := l.Events()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("events %v", got)
	}
}

func TestPacketFilter(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 6; i++ {
		l.Record(ev(sim.Time(i), uint64(i%2)))
	}
	if n := len(l.Packet(1)); n != 3 {
		t.Fatalf("packet filter got %d", n)
	}
}

func TestStrings(t *testing.T) {
	for _, op := range []Op{Inject, Arrive, MemStart, MemDone, Complete} {
		if strings.Contains(op.String(), "op(") {
			t.Errorf("missing name for op %d", op)
		}
	}
	l := NewLog(2)
	l.Record(ev(1500, 9))
	s := l.String()
	for _, want := range []string{"arrive", "node=3", "ReadReq#9", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("log string missing %q: %s", want, s)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 2000; i++ {
		l.Record(ev(sim.Time(i), uint64(i)))
	}
	if len(l.Events()) != 1024 {
		t.Fatalf("default capacity: %d", len(l.Events()))
	}
}
