// Package trace provides a bounded in-memory event log of packet
// lifecycles — injection, per-node arrivals, memory service, and
// completion — for debugging simulations and for the mnsim -trace flag.
// The log is a ring buffer: it retains the most recent events at O(1)
// cost per event so tracing long runs stays cheap.
package trace

import (
	"fmt"
	"strings"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Op classifies a lifecycle event.
type Op uint8

const (
	// Inject: the host handed the request to its output link.
	Inject Op = iota
	// Arrive: the packet landed at a node's router.
	Arrive
	// MemStart: the destination vault accepted the request.
	MemStart
	// MemDone: the vault emitted the response.
	MemDone
	// Complete: the response reached the host.
	Complete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Inject:
		return "inject"
	case Arrive:
		return "arrive"
	case MemStart:
		return "mem-start"
	case MemDone:
		return "mem-done"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one recorded lifecycle step.
type Event struct {
	At   sim.Time
	Op   Op
	Node packet.NodeID
	// Port is the receiving component's input index: the router port for
	// Arrive and MemDone, the quadrant index for MemStart, and -1 at the
	// single-ported host (Inject, Complete).
	Port int8
	// VC is the virtual channel the packet travels on.
	VC   packet.VC
	ID   uint64
	Kind packet.Kind
	Addr uint64
}

// String renders one line, e.g.
// "12.5ns arrive    node=3  port=1/vc0 ReadReq#42 addr=0x1f400";
// hostside events (no input port) render port=-.
func (e Event) String() string {
	port := "-"
	if e.Port >= 0 {
		port = fmt.Sprintf("%d", e.Port)
	}
	return fmt.Sprintf("%-10v %-9s node=%-3d port=%s/vc%d %s#%d addr=%#x",
		e.At, e.Op, e.Node, port, e.VC, e.Kind, e.ID, e.Addr)
}

// Log is a fixed-capacity ring of events. The zero value is unusable;
// construct with NewLog.
type Log struct {
	buf   []Event
	next  int
	total uint64
}

// NewLog returns a log retaining the last capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (l *Log) Record(e Event) {
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % cap(l.buf)
}

// Total reports how many events were ever recorded.
func (l *Log) Total() uint64 { return l.total }

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Packet returns the retained events belonging to one packet ID.
func (l *Log) Packet(id uint64) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

// String renders the retained events one per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
