// Package sim provides a deterministic discrete-event simulation engine
// used by every other subsystem in memnet. Time is modeled as an integer
// number of picoseconds so that datasheet timing parameters (which are
// specified in nanoseconds) are exactly representable and simulations are
// bit-reproducible across runs and platforms.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant or duration, in picoseconds.
//
// Picosecond resolution lets the engine mix clock domains (e.g. a 15 Gbps
// SerDes lane has a 66.67 ps unit interval, while DRAM timings are whole
// nanoseconds) without accumulating rounding error.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel meaning "not scheduled" / "did not happen".
const Never Time = -1

// Nanoseconds returns t expressed in (possibly fractional) nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Duration converts t to a standard library time.Duration. Durations
// below one nanosecond round toward zero.
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// String formats the time with an adaptive unit, e.g. "12.5ns" or "3.2us".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}

// FromNanos builds a Time from a floating-point nanosecond quantity,
// rounding to the nearest picosecond. It is intended for configuration
// code; hot paths should work in integer Time directly.
func FromNanos(ns float64) Time {
	return Time(ns*float64(Nanosecond) + 0.5)
}

// BitTime returns the time to serialize the given number of bits over a
// channel of the given aggregate bandwidth in bits per second. The result
// is rounded up to a whole picosecond so that link occupancy is never
// underestimated.
func BitTime(bits int, bitsPerSecond int64) Time {
	if bits <= 0 {
		return 0
	}
	if bitsPerSecond <= 0 {
		panic("sim: non-positive bandwidth")
	}
	// bits * 1e12 / bps, rounded up.
	num := int64(bits) * int64(Second)
	t := num / bitsPerSecond
	if num%bitsPerSecond != 0 {
		t++
	}
	return Time(t)
}
