package sim

import "testing"

// TestProbeBoundaries: the probe fires once per crossed boundary, in
// order, with the clock reading the boundary instant, and fires nothing
// when time never reaches the first boundary.
func TestProbeBoundaries(t *testing.T) {
	eng := NewEngine()
	var at []Time
	eng.SetProbe(10, func(now Time) {
		if eng.Now() != now {
			t.Errorf("probe at %v but clock reads %v", now, eng.Now())
		}
		at = append(at, now)
	})
	fired := 0
	eng.At(5, func() { fired++ })
	eng.At(25, func() { fired++ }) // crosses 10 and 20
	eng.At(40, func() { fired++ }) // lands on 30 and 40: 40 fires before the event
	eng.Run()
	want := []Time{10, 20, 30, 40}
	if len(at) != len(want) {
		t.Fatalf("probe times %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("probe times %v, want %v", at, want)
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
}

// TestProbeDoesNotPerturb: an armed probe changes neither the event
// count nor the sequence numbering visible through event order.
func TestProbeDoesNotPerturb(t *testing.T) {
	run := func(probe bool) (order []int, firedAtEnd uint64) {
		eng := NewEngine()
		if probe {
			eng.SetProbe(7, func(Time) {})
		}
		for i, at := range []Time{30, 10, 20, 10, 50} {
			i := i
			eng.At(at, func() { order = append(order, i) })
		}
		eng.Run()
		return order, eng.Fired()
	}
	a, fa := run(false)
	b, fb := run(true)
	if fa != fb {
		t.Fatalf("Fired with probe %d != without %d", fb, fa)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event order changed: %v vs %v", a, b)
		}
	}
}

// TestProbeRunUntil: boundaries between the last event and the deadline
// still fire when RunUntil advances the clock to the deadline.
func TestProbeRunUntil(t *testing.T) {
	eng := NewEngine()
	var at []Time
	eng.SetProbe(10, func(now Time) { at = append(at, now) })
	eng.At(12, func() {})
	eng.RunUntil(35)
	want := []Time{10, 20, 30}
	if len(at) != len(want) {
		t.Fatalf("probe times %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("probe times %v, want %v", at, want)
		}
	}
	if eng.Now() != 35 {
		t.Fatalf("clock %v, want 35", eng.Now())
	}
}

// TestProbeScheduleRejected: probes are read-only observers; scheduling
// from inside one must panic rather than silently perturb event order.
func TestProbeScheduleRejected(t *testing.T) {
	eng := NewEngine()
	eng.SetProbe(10, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("Schedule inside probe did not panic")
			}
		}()
		eng.Schedule(5, func() {})
	})
	eng.At(15, func() {})
	eng.Run()
}

// TestProbeDisarm: SetProbe(_, nil) stops further firings.
func TestProbeDisarm(t *testing.T) {
	eng := NewEngine()
	n := 0
	eng.SetProbe(10, func(Time) { n++ })
	eng.At(15, func() { eng.SetProbe(0, nil) })
	eng.At(45, func() {})
	eng.Run()
	if n != 1 {
		t.Fatalf("probe fired %d times after disarm, want 1", n)
	}
}
