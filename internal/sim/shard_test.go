package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// ringSim wires nShards default-body shards into a ring of cross-shard
// channels with the given lookahead and seeds each with deterministic
// traffic: every event appends a record to its shard's log and, with
// some probability, posts a follow-on to the next shard in the ring.
// The logs are a full observable trace — if the parallel merge were
// nondeterministic, they would differ between runs.
type ringSim struct {
	par  *Parallel
	logs [][]string
	rngs []*Rand
}

func newRingSim(nShards int, lookahead Time, events int) *ringSim {
	r := &ringSim{
		par:  NewParallel(nShards),
		logs: make([][]string, nShards),
		rngs: make([]*Rand, nShards),
	}
	for i := 0; i < nShards; i++ {
		next := ShardID((i + 1) % nShards)
		r.par.Connect(ShardID(i), next, lookahead)
		r.rngs[i] = NewRand(uint64(1000 + i))
	}
	for i := 0; i < nShards; i++ {
		i := i
		s := r.par.Shard(i)
		next := ShardID((i + 1) % nShards)
		var hop func(tag int) Handler
		hop = func(tag int) Handler {
			return func() {
				r.logs[i] = append(r.logs[i],
					fmt.Sprintf("s%d t%v tag%d", i, s.Engine().Now(), tag))
				if tag >= events {
					return
				}
				// Mix of local follow-ons and cross-shard posts driven
				// by a per-shard deterministic RNG.
				delay := Time(r.rngs[i].Intn(50) + 1)
				if r.rngs[i].Intn(3) == 0 {
					at := s.Engine().Now() + lookahead + delay
					s.Post(next, at, r.hopFor(int(next), tag+1, lookahead, events))
				} else {
					s.Engine().Schedule(delay, hop(tag+1))
				}
			}
		}
		s.Engine().Schedule(Time(i+1), hop(0))
	}
	return r
}

// hopFor builds the handler a cross-shard post installs on its
// destination: it logs there and continues the cascade locally.
func (r *ringSim) hopFor(dst, tag int, lookahead Time, events int) Handler {
	s := r.par.Shard(dst)
	return func() {
		r.logs[dst] = append(r.logs[dst],
			fmt.Sprintf("s%d t%v xtag%d", dst, s.Engine().Now(), tag))
		if tag >= events {
			return
		}
		next := ShardID((dst + 1) % r.par.NumShards())
		if r.rngs[dst].Intn(2) == 0 {
			at := s.Engine().Now() + lookahead + Time(r.rngs[dst].Intn(40)+1)
			s.Post(next, at, r.hopFor(int(next), tag+1, lookahead, events))
		}
	}
}

func runRing(nShards, workers int, lookahead Time, events int) ([][]string, uint64) {
	r := newRingSim(nShards, lookahead, events)
	r.par.Run(workers)
	return r.logs, r.par.Fired()
}

// TestParallelDeterministicAcrossWorkers pins the core promise: the
// full event trace of a cross-posting simulation is identical whether
// the shards run on one goroutine (sequential fallback) or many.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	const shards, events = 4, 60
	refLogs, refFired := runRing(shards, 1, 200, events)
	if refFired == 0 {
		t.Fatal("reference run fired no events")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		logs, fired := runRing(shards, workers, 200, events)
		if fired != refFired {
			t.Fatalf("workers=%d fired %d events, want %d", workers, fired, refFired)
		}
		for i := range logs {
			if len(logs[i]) != len(refLogs[i]) {
				t.Fatalf("workers=%d shard %d logged %d records, want %d",
					workers, i, len(logs[i]), len(refLogs[i]))
			}
			for j := range logs[i] {
				if logs[i][j] != refLogs[i][j] {
					t.Fatalf("workers=%d shard %d record %d = %q, want %q",
						workers, i, j, logs[i][j], refLogs[i][j])
				}
			}
		}
	}
}

// TestParallelRepeatedRunsIdentical runs the same parallel config many
// times at max workers; under -race this also exercises the inbox and
// barrier synchronization for data races.
func TestParallelRepeatedRunsIdentical(t *testing.T) {
	refLogs, _ := runRing(4, 4, 150, 40)
	for rep := 0; rep < 10; rep++ {
		logs, _ := runRing(4, 4, 150, 40)
		for i := range logs {
			for j := range logs[i] {
				if logs[i][j] != refLogs[i][j] {
					t.Fatalf("rep %d shard %d record %d = %q, want %q",
						rep, i, j, logs[i][j], refLogs[i][j])
				}
			}
		}
	}
}

// TestParallelNoEarlyObservation is the barrier/lookahead property
// test: across random cross-shard traffic, no shard ever executes a
// cross-shard event earlier than the sender's clock at post time plus
// the channel lookahead. The receiving handler checks its own clock
// against the bound captured at the post site.
func TestParallelNoEarlyObservation(t *testing.T) {
	const shards = 5
	const lookahead = Time(120)
	par := NewParallel(shards)
	for i := 0; i < shards; i++ {
		for j := 0; j < shards; j++ {
			if i != j {
				par.Connect(ShardID(i), ShardID(j), lookahead)
			}
		}
	}
	rngs := make([]*Rand, shards)
	for i := range rngs {
		rngs[i] = NewRand(uint64(77 + i))
	}
	var violations atomic.Int64
	var spawn func(src int, depth int) Handler
	spawn = func(src, depth int) Handler {
		s := par.Shard(src)
		return func() {
			if depth > 120 {
				return
			}
			dst := rngs[src].Intn(shards - 1)
			if dst >= src {
				dst++
			}
			senderNow := s.Engine().Now()
			bound := senderNow + lookahead
			at := bound + Time(rngs[src].Intn(30))
			d := par.Shard(dst)
			s.Post(ShardID(dst), at, func() {
				if got := d.Engine().Now(); got < bound {
					violations.Add(1)
					t.Errorf("shard %d observed event at %v, before sender clock %v + lookahead %v",
						dst, got, senderNow, lookahead)
				}
				spawn(dst, depth+1)()
			})
		}
	}
	for i := 0; i < shards; i++ {
		par.Shard(i).Engine().Schedule(Time(i*7+1), spawn(i, 0))
	}
	par.Run(shards)
	if n := violations.Load(); n > 0 {
		t.Fatalf("%d lookahead violations", n)
	}
	if par.Fired() == 0 {
		t.Fatal("property test fired no events")
	}
}

// TestParallelLookaheadPanics pins the conservative contract's
// enforcement: posting earlier than clock+lookahead, posting on an
// undeclared channel, and declaring a non-positive lookahead all panic.
func TestParallelLookaheadPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	par := NewParallel(2)
	par.Connect(0, 1, 100)
	s := par.Shard(0)
	mustPanic("early post", func() {
		s.Engine().Schedule(0, func() { s.Post(1, s.Engine().Now()+99, func() {}) })
		par.Run(1)
	})

	par2 := NewParallel(2)
	s2 := par2.Shard(0)
	mustPanic("undeclared channel", func() {
		s2.Engine().Schedule(0, func() { s2.Post(1, 10, func() {}) })
		par2.Run(1)
	})
	mustPanic("non-positive lookahead", func() { NewParallel(2).Connect(0, 1, 0) })
	mustPanic("self channel", func() { NewParallel(2).Connect(1, 1, 5) })
	mustPanic("zero shards", func() { NewParallel(0) })
}

// TestParallelReactivation checks that a shard whose queue drained is
// woken again by a later cross-shard arrival rather than being treated
// as permanently done.
func TestParallelReactivation(t *testing.T) {
	par := NewParallel(2)
	par.Connect(0, 1, 50)
	got := Time(Never)
	// Shard 1 starts empty; it must still receive and run this.
	src := par.Shard(0)
	src.Engine().Schedule(10, func() {
		src.Post(1, src.Engine().Now()+60, func() {
			got = par.Shard(1).Engine().Now()
		})
	})
	par.Run(2)
	if got != 70 {
		t.Fatalf("cross-shard event ran at %v, want 70", got)
	}
}

// TestParallelSameShardPost checks that posts addressed to the sender's
// own shard behave as ordinary local scheduling (no lookahead needed).
func TestParallelSameShardPost(t *testing.T) {
	par := NewParallel(2)
	ran := false
	s := par.Shard(0)
	s.Engine().Schedule(5, func() {
		s.Post(0, s.Engine().Now(), func() { ran = true })
	})
	par.Run(2)
	if !ran {
		t.Fatal("same-shard post did not run")
	}
}

// TestParallelPostArg exercises the bound-argument posting path.
func TestParallelPostArg(t *testing.T) {
	par := NewParallel(2)
	par.Connect(0, 1, 10)
	var got any
	s := par.Shard(0)
	s.Engine().Schedule(1, func() {
		s.PostArg(1, s.Engine().Now()+10, func(a any) { got = a }, 42)
	})
	par.Run(2)
	if got != 42 {
		t.Fatalf("PostArg delivered %v, want 42", got)
	}
}

// TestParallelFreeRun covers the no-channel degenerate case: shards
// with no declared channels run to completion in one window each.
func TestParallelFreeRun(t *testing.T) {
	par := NewParallel(3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		var fn Handler
		n := 0
		s := par.Shard(i)
		fn = func() {
			counts[i]++
			if n++; n < 100 {
				s.Engine().Schedule(Time(i+1), fn)
			}
		}
		s.Engine().Schedule(1, fn)
	}
	par.Run(3)
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("shard %d ran %d events, want 100", i, c)
		}
	}
	if par.Windows() != 1 {
		t.Fatalf("free-run took %d windows, want 1", par.Windows())
	}
}

// TestPeekTime pins the helper the coordinator relies on.
func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("empty engine reported a pending time")
	}
	e.Schedule(30, func() {})
	if at, ok := e.PeekTime(); !ok || at != 30 {
		t.Fatalf("PeekTime = %v,%v, want 30,true", at, ok)
	}
	e.Schedule(10, func() {})
	if at, _ := e.PeekTime(); at != 10 {
		t.Fatalf("PeekTime = %v, want 10", at)
	}
	// Lane events pin the peek at Now.
	e.RunUntil(10)
	e.Schedule(0, func() {})
	if at, _ := e.PeekTime(); at != 10 {
		t.Fatalf("lane PeekTime = %v, want 10", at)
	}
}

// TestWatchdogShard pins the shard-aware reporting surface: default
// NoShard/Never, and after a trip the shard ID and local trip time.
func TestWatchdogShard(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, 100, 3, func() uint64 { return 0 }, func() bool { return true })
	if w.Shard() != NoShard {
		t.Fatalf("default shard = %d, want NoShard", w.Shard())
	}
	if w.TrippedAt() != Never {
		t.Fatalf("default TrippedAt = %v, want Never", w.TrippedAt())
	}
	w.SetShard(5)
	w.Arm()
	// Keep the engine busy so the watchdog can tick: idle filler events.
	for i := Time(1); i <= 10; i++ {
		eng.Schedule(i*100, func() {})
	}
	eng.Run()
	if !w.Tripped() {
		t.Fatal("watchdog did not trip")
	}
	if w.Shard() != 5 {
		t.Fatalf("Shard = %d, want 5", w.Shard())
	}
	if w.TrippedAt() != 300 {
		t.Fatalf("TrippedAt = %v, want 300", w.TrippedAt())
	}
}
