package sim

import (
	"reflect"
	"strings"
	"testing"
)

// TestSlackHistBuckets pins the power-of-two bucketing: zero slack in
// bucket 0, [2^(i-1), 2^i) in bucket i, everything huge in the last.
func TestSlackHistBuckets(t *testing.T) {
	var h SlackHist
	cases := []struct {
		slack Time
		want  int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 13, 14}, {(1 << 14) - 1, 14}, {1 << 14, 15}, {1 << 40, 15},
	}
	for _, c := range cases {
		before := h[c.want]
		h.observe(c.slack)
		if h[c.want] != before+1 {
			t.Errorf("observe(%d) did not land in bucket %d: %v", c.slack, c.want, h)
		}
	}
	var total uint64
	for _, n := range h {
		total += n
	}
	if total != uint64(len(cases)) {
		t.Errorf("histogram holds %d observations, want %d", total, len(cases))
	}
}

func TestSlackBucketLabels(t *testing.T) {
	if got := SlackBucketLabel(0); got != "0" {
		t.Errorf("bucket 0 label %q", got)
	}
	if got := SlackBucketLabel(3); got != "[4ps,8ps)" {
		t.Errorf("bucket 3 label %q", got)
	}
	if got := SlackBucketLabel(SlackBuckets - 1); !strings.HasSuffix(got, "inf)") {
		t.Errorf("last bucket label %q not open-ended", got)
	}
}

// TestShardStatsIntrospection drives deterministic cross-shard traffic
// and checks the counters: posts with known slacks land in the right
// histogram buckets, the receiver's merged count matches, the peak
// inbox depth is visible, and the snapshot is identical across worker
// counts (the introspection is part of the deterministic surface).
func TestShardStatsIntrospection(t *testing.T) {
	const lookahead = Time(100)
	run := func(workers int) []ShardStats {
		par := NewParallel(2)
		par.Connect(0, 1, lookahead)
		s := par.Shard(0)
		// Three posts from one event: slacks 0, 1, and 6 → buckets 0, 1, 3.
		s.Engine().Schedule(10, func() {
			now := s.Engine().Now()
			s.Post(1, now+lookahead, func() {})
			s.Post(1, now+lookahead+1, func() {})
			s.Post(1, now+lookahead+6, func() {})
		})
		par.Run(workers)
		return par.ShardStats()
	}
	st := run(1)
	if len(st) != 2 {
		t.Fatalf("got %d shard stats", len(st))
	}
	src, dst := st[0], st[1]
	if src.Posts != 3 || src.Events != 1 {
		t.Errorf("sender stats %+v, want 3 posts from 1 event", src)
	}
	if src.Slack[0] != 1 || src.Slack[1] != 1 || src.Slack[3] != 1 {
		t.Errorf("sender slack histogram %v, want one each in buckets 0, 1, 3", src.Slack)
	}
	if dst.Merged != 3 || dst.Events != 3 {
		t.Errorf("receiver stats %+v, want 3 merged, 3 fired", dst)
	}
	if dst.MaxInbox != 3 {
		t.Errorf("receiver MaxInbox %d, want 3 (all posts in one window)", dst.MaxInbox)
	}
	if dst.Posts != 0 || dst.Merged != src.Posts {
		t.Errorf("conservation violated: sender posted %d, receiver merged %d", src.Posts, dst.Merged)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); !reflect.DeepEqual(got, st) {
			t.Errorf("workers=%d shard stats %+v differ from sequential %+v", workers, got, st)
		}
	}
}

// TestShardStatsRing checks the counters on the existing randomized
// ring workload: totals are conserved (every post is merged somewhere)
// and stats agree between 1 and 4 workers.
func TestShardStatsRing(t *testing.T) {
	collect := func(workers int) []ShardStats {
		r := newRingSim(4, 200, 60)
		r.par.Run(workers)
		return r.par.ShardStats()
	}
	seq := collect(1)
	var posts, merged, events uint64
	for _, st := range seq {
		posts += st.Posts
		merged += st.Merged
		events += st.Events
	}
	if posts == 0 {
		t.Fatal("ring workload never crossed a shard boundary")
	}
	if posts != merged {
		t.Fatalf("conservation violated: %d posts, %d merged", posts, merged)
	}
	if events == 0 {
		t.Fatal("no events fired")
	}
	if par := collect(4); !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel shard stats differ from sequential:\n 1: %+v\n 4: %+v", seq, par)
	}
}
