package sim

import (
	"fmt"
	"sort"
	"sync"
)

// ShardID identifies one partition of a parallel simulation.
type ShardID int32

// NoShard marks a component that is not running inside a partitioned
// simulation (the default for a standalone Engine).
const NoShard ShardID = -1

// maxTime is the window horizon used when no cross-shard channel
// bounds the lookahead: shards may free-run arbitrarily far.
const maxTime = Time(1<<63 - 1)

// xevent is one cross-shard event parked in a receiving shard's inbox.
// The (at, src, seq) triple is the deterministic merge key: seq is the
// sender's post counter, so sorting reproduces the sender's own post
// order no matter how goroutines interleaved, and src breaks ties
// between same-instant posts from different shards.
type xevent struct {
	at  Time
	src ShardID
	seq uint64
	fn  Handler
	afn ArgHandler
	arg any
}

// Body is a shard's per-window execution hook: it runs the shard's
// events scheduled strictly before horizon and returns true once the
// shard has permanently finished (it will make no further progress even
// if time advances). The default body runs the shard's engine dry up to
// the horizon and reports done when the queue is empty; custom bodies
// (e.g. one whole-port simulation per shard) may stop on their own
// completion criteria instead.
type Body func(e *Engine, horizon Time) (done bool)

// Shard is one independently-clocked partition of a Parallel
// simulation: a sequential Engine plus an inbox for events posted by
// other shards. All of a shard's events run on a single goroutine, so
// components owned by a shard need no locking — exactly the ownership
// discipline of a standalone Engine.
type Shard struct {
	id  ShardID
	par *Parallel
	eng *Engine

	body Body
	done bool

	// postSeq counts this shard's outgoing posts; it is written only by
	// the shard's own worker goroutine.
	postSeq uint64
	// slack histograms how far past the lookahead minimum this shard's
	// posts land; like postSeq it is written only by the shard's own
	// worker goroutine.
	slack SlackHist
	// merged counts cross-shard events drained into this shard; written
	// only by the coordinator between windows.
	merged uint64

	// inbox collects cross-shard arrivals. Senders append under mu
	// during a window; the coordinator alone drains it between windows
	// (the window barrier orders the two phases). maxInbox tracks the
	// peak depth, updated under the same mutex.
	mu       sync.Mutex
	inbox    []xevent
	maxInbox int
}

// SlackBuckets is the size of a SlackHist.
const SlackBuckets = 16

// SlackHist is a power-of-two histogram of cross-shard post slack: how
// far past the conservative minimum (sender clock + lookahead) each
// posted event landed. Bucket 0 counts zero-slack posts (events right
// at the horizon — the ones that bound the window); bucket i counts
// slack in [2^(i-1), 2^i) picoseconds, with the last bucket absorbing
// everything larger. A head-heavy histogram means the lookahead is the
// binding constraint; a tail-heavy one means windows could be wider.
type SlackHist [SlackBuckets]uint64

// observe records one post's slack.
func (h *SlackHist) observe(slack Time) {
	b := 0
	for slack > 0 && b < SlackBuckets-1 {
		b++
		slack >>= 1
	}
	h[b]++
}

// SlackBucketLabel names histogram bucket i ("0", "[1,2)", ... with the
// final bucket open-ended).
func SlackBucketLabel(i int) string {
	switch {
	case i == 0:
		return "0"
	case i == SlackBuckets-1:
		return fmt.Sprintf("[%dps,inf)", 1<<(i-1))
	default:
		return fmt.Sprintf("[%dps,%dps)", 1<<(i-1), 1<<i)
	}
}

// ShardStats is one shard's partitioned-engine introspection snapshot,
// valid after Run returns (or between windows on the coordinator).
type ShardStats struct {
	// Events counts events fired on the shard's engine.
	Events uint64
	// Posts counts cross-shard events the shard sent.
	Posts uint64
	// Merged counts cross-shard events drained into the shard.
	Merged uint64
	// MaxInbox is the peak inbox depth observed while senders appended.
	MaxInbox int
	// Now is the shard engine's local clock at snapshot time.
	Now Time
	// Slack is the lookahead-slack histogram of the shard's posts.
	Slack SlackHist
}

// ID returns the shard's index within its Parallel set.
func (s *Shard) ID() ShardID { return s.id }

// Engine returns the shard's sequential event engine. It must only be
// used from the shard's own events (or between Run windows).
func (s *Shard) Engine() *Engine { return s.eng }

// SetBody replaces the shard's per-window execution hook; see Body.
func (s *Shard) SetBody(b Body) { s.body = b }

// Post schedules fn on the destination shard at absolute time at. It is
// the only legal way for one shard's event to reach another shard. The
// conservative contract is enforced, not assumed: a channel with a
// positive lookahead must have been declared with Connect, and at must
// be no earlier than the sender's clock plus that lookahead — so the
// destination, which may already have advanced to within one window of
// the sender, never observes an event in its past.
func (s *Shard) Post(dst ShardID, at Time, fn Handler) {
	if fn == nil {
		panic("sim: nil handler")
	}
	s.post(dst, xevent{at: at, fn: fn})
}

// PostArg is Post for a bound ArgHandler, mirroring Engine.AtArg.
func (s *Shard) PostArg(dst ShardID, at Time, fn ArgHandler, arg any) {
	if fn == nil {
		panic("sim: nil handler")
	}
	s.post(dst, xevent{at: at, afn: fn, arg: arg})
}

func (s *Shard) post(dst ShardID, ev xevent) {
	p := s.par
	if dst < 0 || int(dst) >= len(p.shards) {
		panic(fmt.Sprintf("sim: post to unknown shard %d", dst))
	}
	if dst == s.id {
		// Same-shard posts are ordinary local events; the lookahead
		// contract only exists to protect cross-goroutine hand-offs.
		if ev.fn != nil {
			s.eng.At(ev.at, ev.fn)
		} else {
			s.eng.AtArg(ev.at, ev.afn, ev.arg)
		}
		return
	}
	la := p.look[s.id][dst]
	if la == Never {
		panic(fmt.Sprintf("sim: post from shard %d to %d without a declared channel", s.id, dst))
	}
	min := s.eng.Now() + la
	if ev.at < min {
		panic(fmt.Sprintf(
			"sim: post from shard %d at %v violates lookahead: event at %v < clock+lookahead %v",
			s.id, s.eng.Now(), ev.at, min))
	}
	s.postSeq++
	s.slack.observe(ev.at - min)
	ev.src = s.id
	ev.seq = s.postSeq
	d := p.shards[dst]
	d.mu.Lock()
	d.inbox = append(d.inbox, ev)
	if len(d.inbox) > d.maxInbox {
		d.maxInbox = len(d.inbox)
	}
	d.mu.Unlock()
}

// drain moves the inbox into the engine in deterministic order. Called
// only by the coordinator between windows.
func (s *Shard) drain() int {
	s.mu.Lock()
	pending := s.inbox
	s.inbox = nil
	s.mu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	sort.Slice(pending, func(i, j int) bool {
		a, b := &pending[i], &pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, ev := range pending {
		if ev.fn != nil {
			s.eng.At(ev.at, ev.fn)
		} else {
			s.eng.AtArg(ev.at, ev.afn, ev.arg)
		}
	}
	s.merged += uint64(len(pending))
	return len(pending)
}

// Stats snapshots the shard's introspection counters. Safe only between
// windows or after Run returns (the same discipline as Engine access).
func (s *Shard) Stats() ShardStats {
	return ShardStats{
		Events:   s.eng.Fired(),
		Posts:    s.postSeq,
		Merged:   s.merged,
		MaxInbox: s.maxInbox,
		Now:      s.eng.Now(),
		Slack:    s.slack,
	}
}

// defaultBody runs every pending event scheduled strictly before
// horizon and reports whether the queue drained.
func defaultBody(e *Engine, horizon Time) bool {
	if horizon == maxTime {
		e.Run()
		return true
	}
	// RunUntil is inclusive of its deadline; the window must exclude
	// the horizon itself because a cross-shard post may land exactly at
	// clock+lookahead == horizon and must sort against local events
	// under the deterministic merge, not race them.
	e.RunUntil(horizon - 1)
	return e.Pending() == 0
}

// Parallel is a conservative parallel discrete-event engine: a fixed
// set of independently-clocked shards, each running its own sequential
// Engine on a worker goroutine, synchronized by time-window barriers.
//
// Windowing: let T be the earliest pending event time across all
// shards and W the smallest declared cross-shard lookahead. Every event
// executed in the window fires at a time >= T, so every cross-shard
// post made during it lands at or after T+W; shards may therefore
// execute all events strictly before the horizon T+W in parallel
// without ever receiving an event in their past. Between windows the
// coordinator alone drains the inboxes into the destination engines in
// (time, source shard, source post sequence) order, which is a pure
// function of each sender's deterministic execution — so results are
// bit-identical for any worker count, including the sequential
// fallback at one worker.
//
// With no declared channels the lookahead is infinite and each shard
// free-runs to completion — the degenerate (embarrassingly parallel)
// case used for partitions with no boundary edges, e.g. the per-host-
// port partition of a multi-port machine.
type Parallel struct {
	shards []*Shard
	// look[src][dst] is the declared lookahead of the src->dst channel,
	// or Never when undeclared.
	look [][]Time
	// window is the global window width: the minimum declared
	// lookahead, or maxTime when no channels exist.
	window Time

	windows uint64
}

// NewParallel returns a Parallel simulation with n empty shards and no
// cross-shard channels.
func NewParallel(n int) *Parallel {
	if n <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard count %d", n))
	}
	p := &Parallel{window: maxTime}
	p.look = make([][]Time, n)
	for i := range p.look {
		p.look[i] = make([]Time, n)
		for j := range p.look[i] {
			p.look[i][j] = Never
		}
	}
	for i := 0; i < n; i++ {
		p.shards = append(p.shards, &Shard{
			id:   ShardID(i),
			par:  p,
			eng:  NewEngine(),
			body: defaultBody,
		})
	}
	return p
}

// NumShards reports the shard count.
func (p *Parallel) NumShards() int { return len(p.shards) }

// Shard returns shard i.
func (p *Parallel) Shard(i int) *Shard { return p.shards[i] }

// Windows reports how many synchronization windows Run executed, for
// tests and benchmarks.
func (p *Parallel) Windows() uint64 { return p.windows }

// ShardStats snapshots every shard's introspection counters, indexed by
// shard ID. Safe only after Run returns.
func (p *Parallel) ShardStats() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.Stats()
	}
	return out
}

// Fired sums the event counts of every shard engine.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.eng.Fired()
	}
	return n
}

// Connect declares a directed cross-shard channel with the given
// lookahead: an event of shard src may post to dst no earlier than
// src's clock plus the lookahead. For a shard boundary placed on a
// SerDes link, the link's SerDes latency is the natural lookahead —
// every arrival is scheduled at least that far past the sender's
// clock. The global window width is the minimum lookahead over all
// declared channels.
func (p *Parallel) Connect(src, dst ShardID, lookahead Time) {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if src == dst {
		panic("sim: self-channel needs no declaration")
	}
	p.look[src][dst] = lookahead
	if lookahead < p.window {
		p.window = lookahead
	}
}

// nextTime returns the earliest pending event time over every
// unfinished shard.
func (p *Parallel) nextTime() (Time, bool) {
	var t Time
	ok := false
	for _, s := range p.shards {
		if s.done {
			continue
		}
		at, has := s.eng.PeekTime()
		if !has {
			continue
		}
		if !ok || at < t {
			t, ok = at, true
		}
	}
	return t, ok
}

// Run executes the simulation to completion over the given number of
// worker goroutines (values below 1, or above the shard count, are
// clamped; 1 is the sequential fallback). Shards are statically
// assigned to workers round-robin, so a shard's events run on one
// goroutine for the whole simulation. Run returns when every shard is
// finished and every inbox is empty.
func (p *Parallel) Run(workers int) {
	n := len(p.shards)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// Persistent workers: each owns the shards congruent to its index
	// and runs one window per message on its start channel. A panic in
	// a shard body (e.g. a lookahead violation) is captured and
	// re-raised on the caller's goroutine after the barrier.
	start := make([]chan Time, workers)
	done := make(chan struct{}, workers)
	panics := make([]any, workers)
	for w := 0; w < workers; w++ {
		start[w] = make(chan Time)
		go func(w int) {
			for horizon := range start[w] {
				func() {
					//lint:sharded slot w is written only by worker w; the done-channel barrier orders it before the coordinator's read
					defer func() { panics[w] = recover() }()
					for i := w; i < n; i += workers {
						s := p.shards[i]
						if s.done {
							continue
						}
						//lint:sharded worker-confined: shard i is statically owned by worker i%workers and the coordinator only touches it between window barriers
						s.done = s.body(s.eng, horizon)
					}
				}()
				done <- struct{}{}
			}
		}(w)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()

	for {
		// Coordinator phase: merge cross-shard arrivals, deterministic
		// per shard; an arrival reactivates a drained default-body
		// shard.
		for _, s := range p.shards {
			if s.drain() > 0 {
				s.done = false
			}
		}
		t, ok := p.nextTime()
		if !ok {
			return
		}
		horizon := maxTime
		if p.window != maxTime {
			horizon = t + p.window
		}
		p.windows++
		for w := 0; w < workers; w++ {
			start[w] <- horizon
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		for w := 0; w < workers; w++ {
			if r := panics[w]; r != nil {
				panic(r)
			}
		}
	}
}
