package sim

import (
	"testing"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatal("ns != 1000ps")
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit ladder broken")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Never, "never"},
		{500 * Picosecond, "500ps"},
		{12500 * Picosecond, "12.5ns"},
		{3200 * Nanosecond, "3.2us"},
		{5 * Millisecond, "5ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tm := 1500 * Picosecond
	if tm.Nanoseconds() != 1.5 {
		t.Fatalf("Nanoseconds = %v", tm.Nanoseconds())
	}
	if (3 * Microsecond).Duration() != 3*time.Microsecond {
		t.Fatal("Duration conversion wrong")
	}
	if FromNanos(2.5) != 2500*Picosecond {
		t.Fatalf("FromNanos(2.5) = %v", FromNanos(2.5))
	}
}

func TestBitTime(t *testing.T) {
	// 640 bits over 240 Gbps = 2666.67ns/1000 -> rounded up to 2667ps.
	got := BitTime(640, 240e9)
	if got != 2667*Picosecond {
		t.Fatalf("BitTime(640, 240G) = %v ps, want 2667", int64(got))
	}
	// Exact division: 128 bits at 128 Gbps = exactly 1ns.
	if BitTime(128, 128e9) != Nanosecond {
		t.Fatal("exact BitTime wrong")
	}
	if BitTime(0, 1e9) != 0 || BitTime(-5, 1e9) != 0 {
		t.Fatal("non-positive bits should cost nothing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	BitTime(1, 0)
}

func TestBitTimeNeverUnderestimates(t *testing.T) {
	for bits := 1; bits < 2000; bits += 7 {
		for _, bw := range []int64{1e9, 3e9, 240e9, 15e9} {
			got := BitTime(bits, bw)
			// got * bw must cover bits * 1e12.
			if int64(got)*bw < int64(bits)*int64(Second) {
				t.Fatalf("BitTime(%d, %d) = %v underestimates", bits, bw, got)
			}
			// And not overshoot by more than one picosecond's worth.
			if (int64(got)-1)*bw >= int64(bits)*int64(Second) {
				t.Fatalf("BitTime(%d, %d) = %v overestimates", bits, bw, got)
			}
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(42)
	const n = 200000
	// Intn uniformity (chi-squared-lite: each of 10 buckets within 5%).
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10*95/100 || b > n/10*105/100 {
			t.Fatalf("bucket %d = %d, want ~%d", i, b, n/10)
		}
	}
	// Float64 in [0,1), mean ~0.5.
	sum := 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v", mean)
	}
	// Exp mean.
	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	if mean := sum / n; mean < 9.8 || mean > 10.2 {
		t.Fatalf("Exp(10) mean = %v", mean)
	}
	// Bool probability.
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.29 || frac > 0.31 {
		t.Fatalf("Bool(0.3) frac = %v", frac)
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	mustPanic(t, "Intn(0)", func() { r.Intn(0) })
	mustPanic(t, "Int63n(-1)", func() { r.Int63n(-1) })
}
