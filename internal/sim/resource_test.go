package sim

import "testing"

func TestResourceReserveAtExactlyFree(t *testing.T) {
	var r Resource
	end := r.ReserveAt(0, 10)
	if end != 10 || r.FreeAt() != 10 {
		t.Fatalf("end=%v freeAt=%v, want 10", end, r.FreeAt())
	}
	// Reserving at exactly FreeAt is legal: the interval is half-open.
	end = r.ReserveAt(10, 5)
	if end != 15 || r.FreeAt() != 15 {
		t.Fatalf("back-to-back ReserveAt: end=%v freeAt=%v, want 15", end, r.FreeAt())
	}
	// One tick earlier must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("ReserveAt before FreeAt did not panic")
		}
	}()
	r.ReserveAt(14, 1)
}

func TestResourceReserveNonPositive(t *testing.T) {
	var r Resource
	r.Reserve(0, 100)
	// Zero duration: reports the earliest free time, reserves nothing.
	start, end := r.Reserve(50, 0)
	if start != 100 || end != 100 {
		t.Fatalf("zero-dur Reserve = (%v, %v), want (100, 100)", start, end)
	}
	if r.FreeAt() != 100 {
		t.Fatalf("zero-dur Reserve moved FreeAt to %v", r.FreeAt())
	}
	// Negative duration likewise must not rewind the resource.
	start, end = r.Reserve(50, -7)
	if start != 100 || end != 100 || r.FreeAt() != 100 {
		t.Fatalf("negative-dur Reserve = (%v, %v), FreeAt=%v", start, end, r.FreeAt())
	}
	// Idle agrees with FreeAt on both sides of the boundary.
	if r.Idle(99) {
		t.Fatal("Idle(99) with FreeAt=100")
	}
	if !r.Idle(100) {
		t.Fatal("!Idle(100) with FreeAt=100")
	}
}

func TestResourceResetReuse(t *testing.T) {
	var r Resource
	r.Reserve(0, 1000)
	r.Reset()
	if r.FreeAt() != 0 || !r.Idle(0) {
		t.Fatalf("after Reset: FreeAt=%v Idle(0)=%v", r.FreeAt(), r.Idle(0))
	}
	// A fresh reservation after Reset behaves exactly like a new resource:
	// starting in the past is clamped to now, back-to-back packs tightly.
	start, end := r.Reserve(5, 10)
	if start != 5 || end != 15 {
		t.Fatalf("post-Reset Reserve = (%v, %v), want (5, 15)", start, end)
	}
	start, end = r.Reserve(5, 10)
	if start != 15 || end != 25 {
		t.Fatalf("post-Reset queued Reserve = (%v, %v), want (15, 25)", start, end)
	}
}
