package sim

import "fmt"

// Handler is a callback invoked when an event fires. The engine's current
// time equals the event's scheduled time for the duration of the call.
type Handler func()

// ArgHandler is a callback invoked with a caller-supplied argument. It
// exists so hot paths can store one bound callback per component (built
// once at construction) and pass the varying operand — typically a
// *packet.Packet — through the event itself, instead of allocating a
// fresh closure per Schedule call. Boxing a pointer into the arg is
// allocation-free.
type ArgHandler func(arg any)

// event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (seq provides the stable tie-break), which
// makes whole-system simulations deterministic. Exactly one of fn/afn is
// set.
type event struct {
	at  Time
	seq uint64
	fn  Handler
	afn ArgHandler
	arg any
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. An Engine is not safe for concurrent
// use; memnet simulations are deterministic single-goroutine programs and
// parallelism, when wanted, is obtained by running independent Engines
// (e.g. one per memory port, or one per benchmark configuration).
//
// Internally the engine keeps two structures:
//
//   - a hand-rolled 4-ary min-heap over a flat []event slice, ordered by
//     (time, seq). Compared with container/heap this removes the
//     interface{} boxing on every Push/Pop and the heap.Interface method
//     indirection, and the shallower tree halves the sift depth for the
//     queue sizes simulations reach. Popped and vacated slots are zeroed
//     so captured closures and packets stay GC-able.
//
//   - a zero-delay FIFO "fast lane" (a ring buffer) holding events
//     scheduled for the current instant. Same-timestamp follow-on events
//     — the dominant pattern in router/link/vault handoffs — enqueue and
//     dequeue in O(1) without touching the heap at all.
//
// The two structures preserve the global (time, seq) firing order: any
// heap event at the current instant was necessarily scheduled before time
// advanced to that instant, hence carries a smaller seq than every lane
// event (which was scheduled at the instant itself), so the heap is
// drained of current-time events before the lane.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// heap is the 4-ary min-heap: children of i are 4i+1..4i+4.
	heap []event

	// lane is the zero-delay ring buffer; capacity is a power of two.
	lane     []event
	laneHead int
	laneLen  int

	// probe is the telemetry sampling hook: it runs at every multiple
	// of probeEvery the clock crosses, between events, without being an
	// event itself — probes never enter the queue, never consume seq
	// numbers, and never count toward fired, so arming one cannot
	// change what the simulation does or reports. Probes are read-only
	// observers: scheduling from inside one panics.
	probe      func(at Time)
	probeEvery Time
	probeAt    Time
	inProbe    bool
}

// NewEngine returns an engine with its clock at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far. It is useful
// for cheap progress accounting and loop-guard assertions in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) + e.laneLen }

// PeekTime reports the scheduled time of the earliest pending event
// without executing it, or false if the queue is empty. Lane events are
// by construction at the current instant, so a non-empty lane pins the
// answer at Now.
func (e *Engine) PeekTime() (Time, bool) {
	if e.laneLen > 0 {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// Schedule arranges for fn to run after delay. A zero delay schedules the
// event at the current time; it will still run after the currently
// executing event returns (events never preempt each other).
func (e *Engine) Schedule(delay Time, fn Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not be in the
// past.
func (e *Engine) At(t Time, fn Handler) {
	if fn == nil {
		panic("sim: nil handler")
	}
	e.enqueue(t, event{fn: fn})
}

// ScheduleArg is Schedule for a bound ArgHandler: fn(arg) runs after
// delay. Reusing one stored fn across calls keeps the hot path
// allocation-free.
func (e *Engine) ScheduleArg(delay Time, fn ArgHandler, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtArg(e.now+delay, fn, arg)
}

// AtArg is At for a bound ArgHandler: fn(arg) runs at absolute time t.
func (e *Engine) AtArg(t Time, fn ArgHandler, arg any) {
	if fn == nil {
		panic("sim: nil handler")
	}
	e.enqueue(t, event{afn: fn, arg: arg})
}

// SetProbe arms fn to run at every multiple of every that the clock
// reaches or crosses, starting at the first multiple after the current
// time. The probe is not an event: it fires between events as time
// advances (and on RunUntil deadline advancement), adds nothing to the
// queue, and leaves Fired and the (time, seq) order untouched, so
// results are bit-identical with and without a probe. fn must only
// observe: calling Schedule/At from inside it panics. A nil fn disarms.
func (e *Engine) SetProbe(every Time, fn func(at Time)) {
	if fn == nil {
		e.probe = nil
		return
	}
	if every <= 0 {
		panic(fmt.Sprintf("sim: non-positive probe interval %v", every))
	}
	e.probe = fn
	e.probeEvery = every
	e.probeAt = (e.now/every + 1) * every
}

// runProbe fires the probe at every pending boundary up to and
// including upTo. The clock reads each boundary instant during its
// call, then the caller advances it to the event (or deadline) time.
func (e *Engine) runProbe(upTo Time) {
	e.inProbe = true
	for e.probeAt <= upTo {
		e.now = e.probeAt
		e.probe(e.probeAt)
		e.probeAt += e.probeEvery
	}
	e.inProbe = false
}

// enqueue stamps the sequence number and routes the event to the fast
// lane (same-instant) or the heap (future).
func (e *Engine) enqueue(t Time, ev event) {
	if e.inProbe {
		panic("sim: scheduling from inside a probe")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < now %v", t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	ev.at = t
	if t == e.now {
		e.lanePush(ev)
		return
	}
	e.heapPush(ev)
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	var ev event
	switch {
	case e.laneLen > 0:
		// Heap events at the current instant predate (smaller seq) every
		// lane event; drain them first.
		if len(e.heap) > 0 && e.heap[0].at == e.now {
			ev = e.heapPop()
		} else {
			ev = e.lanePop()
		}
	case len(e.heap) > 0:
		ev = e.heapPop()
		if e.probe != nil && ev.at >= e.probeAt {
			e.runProbe(ev.at)
		}
		e.now = ev.at
	default:
		return false
	}
	e.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.afn(ev.arg)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline. The clock is
// left at the deadline if it was reached, otherwise at the time of the
// last event. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	for e.nextAt(deadline) {
		e.Step()
	}
	if e.now < deadline {
		if e.probe != nil && deadline >= e.probeAt {
			e.runProbe(deadline)
		}
		e.now = deadline
	}
	return e.fired - start
}

// nextAt reports whether a pending event fires at or before deadline.
func (e *Engine) nextAt(deadline Time) bool {
	if e.laneLen > 0 {
		return e.now <= deadline
	}
	return len(e.heap) > 0 && e.heap[0].at <= deadline
}

// RunWhile executes events while cond() remains true and events remain.
// cond is evaluated before each event. It returns true if the run stopped
// because cond became false (as opposed to the queue draining).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return false
		}
	}
	return true
}

// --- 4-ary min-heap over a flat slice --------------------------------

// before reports heap ordering by (time, seq).
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts ev, sifting the hole up instead of swapping.
func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, event{})
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// heapPop removes and returns the minimum event. The vacated tail slot is
// zeroed so the popped event's closure (and anything it captures) does
// not linger in the slice's spare capacity.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ev starting from the root, moving smaller children up
// into the hole.
func (e *Engine) siftDown(ev event) {
	h := e.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// --- zero-delay fast lane (ring buffer) ------------------------------

func (e *Engine) lanePush(ev event) {
	if e.laneLen == len(e.lane) {
		e.laneGrow()
	}
	e.lane[(e.laneHead+e.laneLen)&(len(e.lane)-1)] = ev
	e.laneLen++
}

func (e *Engine) lanePop() event {
	ev := e.lane[e.laneHead]
	e.lane[e.laneHead] = event{} // keep the fired closure GC-able
	e.laneHead = (e.laneHead + 1) & (len(e.lane) - 1)
	e.laneLen--
	return ev
}

// laneGrow doubles the ring (minimum 16 slots), unrolling it to the
// front of the new buffer.
func (e *Engine) laneGrow() {
	size := len(e.lane) * 2
	if size < 16 {
		size = 16
	}
	buf := make([]event, size)
	for i := 0; i < e.laneLen; i++ {
		buf[i] = e.lane[(e.laneHead+i)&(len(e.lane)-1)]
	}
	e.lane = buf
	e.laneHead = 0
}
