package sim

import (
	"container/heap"
	"fmt"
)

// Handler is a callback invoked when an event fires. The engine's current
// time equals the event's scheduled time for the duration of the call.
type Handler func()

// event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (seq provides the stable tie-break), which
// makes whole-system simulations deterministic.
type event struct {
	at  Time
	seq uint64
	fn  Handler
}

// eventHeap implements container/heap ordered by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. An Engine is not safe for concurrent
// use; memnet simulations are deterministic single-goroutine programs and
// parallelism, when wanted, is obtained by running independent Engines
// (e.g. one per memory port, or one per benchmark configuration).
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	inStep bool
}

// NewEngine returns an engine with its clock at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far. It is useful
// for cheap progress accounting and loop-guard assertions in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after delay. A zero delay schedules the
// event at the current time; it will still run after the currently
// executing event returns (events never preempt each other).
func (e *Engine) Schedule(delay Time, fn Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not be in the
// past.
func (e *Engine) At(t Time, fn Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.fired++
	e.inStep = true
	ev.fn()
	e.inStep = false
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline. The clock is
// left at the deadline if it was reached, otherwise at the time of the
// last event. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.fired - start
}

// RunWhile executes events while cond() remains true and events remain.
// cond is evaluated before each event. It returns true if the run stopped
// because cond became false (as opposed to the queue draining).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return false
		}
	}
	return true
}
