package sim

// Watchdog detects a wedged simulation: work is still outstanding but no
// forward progress is being made (for example, every in-flight packet is
// stuck behind leaked credits, or a retry storm is re-transmitting the
// same packet forever). It samples a caller-supplied progress counter at
// a fixed simulated-time interval and trips after a configured number of
// consecutive stale samples taken while the network still reports
// outstanding work.
//
// The watchdog schedules ordinary engine events, so it perturbs the
// event count; callers that pin event-count determinism must arm it only
// in runs that opt in (internal/core arms it only when fault injection
// is enabled). Once tripped it stops rescheduling itself, so a
// RunWhile(!Tripped()) loop drains naturally instead of spinning.
type Watchdog struct {
	eng      *Engine
	interval Time
	limit    int

	progress func() uint64 // monotone completed-work counter
	busy     func() bool   // work still outstanding?

	last    uint64
	stale   int
	tripped bool
	tickFn  Handler

	// shard identifies which partition of a parallel run this watchdog
	// guards (NoShard outside partitioned runs). A wedge in one shard
	// of a Parallel simulation is local — the other shards' clocks keep
	// advancing — so reporting must carry the shard ID and the shard's
	// own clock, not a global time.
	shard     ShardID
	trippedAt Time
}

// NewWatchdog builds a watchdog but does not arm it; call Arm. progress
// must be monotonically non-decreasing (completed transactions, delivered
// packets, ...); busy reports whether work is still outstanding — the
// watchdog never trips an idle network.
func NewWatchdog(eng *Engine, interval Time, limit int, progress func() uint64, busy func() bool) *Watchdog {
	if interval <= 0 || limit <= 0 {
		panic("sim: watchdog needs positive interval and limit")
	}
	w := &Watchdog{eng: eng, interval: interval, limit: limit, progress: progress, busy: busy,
		shard: NoShard, trippedAt: Never}
	w.tickFn = w.tick
	return w
}

// SetShard tags the watchdog with the shard it guards so a trip can be
// reported against the right partition and its local clock.
func (w *Watchdog) SetShard(id ShardID) { w.shard = id }

// Shard reports the partition this watchdog guards (NoShard outside
// partitioned runs).
func (w *Watchdog) Shard() ShardID { return w.shard }

// TrippedAt reports the shard-local simulated time at which the
// watchdog tripped, or Never if it has not.
func (w *Watchdog) TrippedAt() Time { return w.trippedAt }

// Arm takes the baseline progress sample and schedules the first check.
func (w *Watchdog) Arm() {
	w.last = w.progress()
	w.eng.Schedule(w.interval, w.tickFn)
}

// Tripped reports whether the watchdog has declared the network wedged.
func (w *Watchdog) Tripped() bool { return w.tripped }

func (w *Watchdog) tick() {
	cur := w.progress()
	if cur != w.last || !w.busy() {
		w.last = cur
		w.stale = 0
	} else if w.stale++; w.stale >= w.limit {
		w.tripped = true
		w.trippedAt = w.eng.Now()
		return // stop rescheduling; the run loop sees Tripped
	}
	w.eng.Schedule(w.interval, w.tickFn)
}
