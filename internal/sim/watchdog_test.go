package sim

import "testing"

// TestWatchdogTripsOnWedge: outstanding work with a flat progress
// counter must trip after exactly limit stale intervals.
func TestWatchdogTripsOnWedge(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, Microsecond, 3, func() uint64 { return 5 }, func() bool { return true })
	w.Arm()
	eng.RunWhile(func() bool { return !w.Tripped() })
	if !w.Tripped() {
		t.Fatal("watchdog never tripped on a wedged network")
	}
	if got, want := eng.Now(), 3*Microsecond; got != want {
		t.Errorf("tripped at %v, want %v", got, want)
	}
	if eng.Pending() != 0 {
		t.Errorf("tripped watchdog left %d events queued", eng.Pending())
	}
}

// TestWatchdogProgressResetsStale: progress between samples resets the
// stale counter, so intermittent progress never trips.
func TestWatchdogProgressResetsStale(t *testing.T) {
	eng := NewEngine()
	var done uint64
	w := NewWatchdog(eng, Microsecond, 2, func() uint64 { return done }, func() bool { return true })
	w.Arm()
	// Bump progress every 1.5 µs: each window of 2 consecutive samples
	// sees at least one change for the first several intervals.
	for i := 1; i <= 6; i++ {
		eng.At(Time(i)*3*Microsecond/2, func() { done++ })
	}
	eng.RunUntil(8 * Microsecond)
	if w.Tripped() {
		t.Fatal("watchdog tripped despite intermittent progress")
	}
	// After the bumps stop, it must still trip.
	eng.RunWhile(func() bool { return !w.Tripped() })
	if !w.Tripped() {
		t.Fatal("watchdog failed to trip after progress stopped")
	}
}

// TestWatchdogIdleNeverTrips: busy()==false means a quiet network, not a
// wedge, no matter how long progress stays flat.
func TestWatchdogIdleNeverTrips(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, Microsecond, 2, func() uint64 { return 0 }, func() bool { return false })
	w.Arm()
	eng.RunUntil(20 * Microsecond)
	if w.Tripped() {
		t.Fatal("watchdog tripped on an idle network")
	}
}

func TestWatchdogBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewWatchdog(NewEngine(), 0, 1, func() uint64 { return 0 }, func() bool { return false })
}
