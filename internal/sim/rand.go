package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). memnet uses it instead of math/rand
// so that simulation results are bit-identical across Go releases, which
// matters for the regression tests that pin experiment outputs.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from the given value. Distinct seeds
// yield well-separated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean,
// used for Poisson-like inter-arrival gaps in open-loop traffic phases.
func (r *Rand) Exp(mean float64) float64 {
	// Inverse CDF; guard the log argument away from zero.
	u := r.Float64()
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -mean * math.Log1p(-u)
}
