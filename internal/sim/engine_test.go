package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: pos %d got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(10, func() {
		hits++
		e.Schedule(0, func() { hits++ })  // same-instant follow-up
		e.Schedule(10, func() { hits++ }) // later follow-up
	})
	e.Run()
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := []Time{}
	for _, d := range []Time{5, 15, 25} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(15)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("fired %d events (%v), want 2", n, fired)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %v, want 15", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i+1), func() { count++ })
	}
	stopped := e.RunWhile(func() bool { return count < 5 })
	if !stopped {
		t.Fatal("RunWhile should have stopped on cond")
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	// Draining the rest returns false.
	if e.RunWhile(func() bool { return true }) {
		t.Fatal("RunWhile should report queue drained")
	}
}

func TestEnginePanics(t *testing.T) {
	e := NewEngine()
	mustPanic(t, "negative delay", func() { e.Schedule(-1, func() {}) })
	mustPanic(t, "nil handler", func() { e.Schedule(1, nil) })
	e.Schedule(10, func() {})
	e.Run()
	mustPanic(t, "past", func() { e.At(5, func() {}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestEngineMonotonicClock property: for random event sets, handlers
// observe a non-decreasing clock.
func TestEngineMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResource(t *testing.T) {
	var r Resource
	if !r.Idle(0) {
		t.Fatal("fresh resource should be idle")
	}
	start, end := r.Reserve(10, 5)
	if start != 10 || end != 15 {
		t.Fatalf("got [%v,%v], want [10,15]", start, end)
	}
	// Second reservation queues behind the first.
	start, end = r.Reserve(12, 5)
	if start != 15 || end != 20 {
		t.Fatalf("got [%v,%v], want [15,20]", start, end)
	}
	if r.Idle(19) || !r.Idle(20) {
		t.Fatal("idle boundary wrong")
	}
	// Zero-duration reservations do not occupy.
	s, e2 := r.Reserve(25, 0)
	if s != 25 || e2 != 25 || r.FreeAt() != 20 {
		t.Fatalf("zero reserve changed state: s=%v e=%v freeAt=%v", s, e2, r.FreeAt())
	}
	mustPanic(t, "ReserveAt early", func() { r.ReserveAt(10, 5) })
	r.Reset()
	if r.FreeAt() != 0 {
		t.Fatal("reset failed")
	}
}

// TestResourceNoOverlap property: sequential reservations never overlap.
func TestResourceNoOverlap(t *testing.T) {
	f := func(durs []uint8) bool {
		var r Resource
		now := Time(0)
		lastEnd := Time(0)
		for _, d := range durs {
			start, end := r.Reserve(now, Time(d)+1)
			if start < lastEnd {
				return false
			}
			lastEnd = end
			now += 2 // arrivals trickle in
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
