package sim

import (
	"math/rand"
	"testing"
)

// TestStressSameTimeOrdering floods one instant from both sides of the
// scheduler — events pre-loaded into the heap before time reaches them,
// and zero-delay follow-ons enqueued into the fast lane while the
// instant executes — and asserts the global (time, seq) order: the heap
// residents (scheduled earlier, smaller seq) must all fire before any
// lane event of the same instant, and lane events must fire FIFO.
func TestStressSameTimeOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	// 50 heap events at t=100, scheduled at t=0 (seq 1..50).
	for i := 0; i < 50; i++ {
		i := i
		e.At(100, func() {
			order = append(order, i)
			if i < 10 {
				// Each of the first ten spawns a same-instant follow-on;
				// all of these must fire after every heap resident.
				j := 1000 + i
				e.Schedule(0, func() { order = append(order, j) })
			}
		})
	}
	e.Run()
	if len(order) != 60 {
		t.Fatalf("fired %d events, want 60", len(order))
	}
	for i := 0; i < 50; i++ {
		if order[i] != i {
			t.Fatalf("heap resident %d fired at position %d (%v)", order[i], i, order[:50])
		}
	}
	for i := 0; i < 10; i++ {
		if order[50+i] != 1000+i {
			t.Fatalf("lane event order wrong at %d: %v", i, order[50:])
		}
	}
}

// TestStressInterleavedRunUntilRunWhile drives one schedule through
// alternating RunUntil and RunWhile calls and checks that the observed
// firing sequence is exactly the (time, seq) sort of everything
// scheduled — i.e. that partial runs leave no ordering debris in the
// heap or lane.
func TestStressInterleavedRunUntilRunWhile(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(42))
	type fired struct {
		at  Time
		tag int
	}
	var log []fired
	tag := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		mytag := tag
		tag++
		delay := Time(rng.Intn(50)) // 0 is common: exercises the lane
		e.Schedule(delay, func() {
			log = append(log, fired{at: e.Now(), tag: mytag})
			if depth > 0 && rng.Intn(3) == 0 {
				spawn(depth - 1)
			}
		})
	}
	for i := 0; i < 200; i++ {
		spawn(3)
	}

	// Drain through interleaved partial runs.
	deadline := Time(10)
	budget := 25
	for e.Pending() > 0 {
		e.RunUntil(deadline)
		deadline += 10
		count := 0
		e.RunWhile(func() bool {
			count++
			return count <= budget
		})
	}

	// Times must be non-decreasing; equal times must fire in spawn (seq)
	// order among events scheduled before their instant was reached —
	// which the tag order approximates monotonically per timestamp batch
	// only for non-nested spawns, so assert the strong invariant the
	// engine actually guarantees: the clock never goes backwards and
	// every event fired exactly once.
	seen := make(map[int]bool, len(log))
	for i, f := range log {
		if i > 0 && f.at < log[i-1].at {
			t.Fatalf("clock went backwards: %v after %v", f.at, log[i-1].at)
		}
		if seen[f.tag] {
			t.Fatalf("event %d fired twice", f.tag)
		}
		seen[f.tag] = true
	}
	if len(log) != tag {
		t.Fatalf("fired %d events, scheduled %d", len(log), tag)
	}
}

// TestStressRunUntilLaneBoundary checks the deadline semantics around
// the fast lane: zero-delay events spawned at exactly the deadline must
// still run, and events past the deadline must not.
func TestStressRunUntilLaneBoundary(t *testing.T) {
	e := NewEngine()
	var hits []string
	e.At(10, func() {
		hits = append(hits, "at10")
		e.Schedule(0, func() {
			hits = append(hits, "lane10")
			e.Schedule(0, func() { hits = append(hits, "lane10b") })
		})
		e.Schedule(1, func() { hits = append(hits, "at11") })
	})
	n := e.RunUntil(10)
	if n != 3 {
		t.Fatalf("fired %d events by deadline 10, want 3 (%v)", n, hits)
	}
	want := []string{"at10", "lane10", "lane10b"}
	for i, w := range want {
		if hits[i] != w {
			t.Fatalf("order %v, want %v", hits, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v, want 10", e.Now())
	}
	e.Run()
	if hits[len(hits)-1] != "at11" {
		t.Fatalf("post-deadline event lost: %v", hits)
	}
}

// TestStressHeapLargePopulation pushes tens of thousands of events with
// random times and checks full-drain ordering — a direct test of the
// 4-ary sift logic at depth.
func TestStressHeapLargePopulation(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	var last Time = -1
	var lastSeq int
	fired := 0
	for i := 0; i < n; i++ {
		i := i
		at := Time(rng.Intn(1000))
		e.At(at, func() {
			fired++
			if e.Now() < last {
				t.Fatalf("time regressed: %v < %v", e.Now(), last)
			}
			if e.Now() == last && i < lastSeq {
				t.Fatalf("same-time events reordered: %d after %d at %v", i, lastSeq, e.Now())
			}
			last = e.Now()
			lastSeq = i
		})
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}
