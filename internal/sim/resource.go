package sim

// Resource models a unit-capacity serially-reusable resource such as a
// link direction, a bank data bus, or a SerDes lane group. Callers
// reserve occupancy intervals; the resource tracks the earliest time a
// new occupancy may begin.
//
// Resource is intentionally minimal: it does not queue callbacks. Higher
// layers (link arbiters, bank schedulers) decide *what* to send next and
// use Resource only to answer "when may it start?".
type Resource struct {
	freeAt Time
}

// FreeAt reports the earliest time the resource becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Idle reports whether the resource is free at time now.
func (r *Resource) Idle(now Time) bool { return r.freeAt <= now }

// Reserve occupies the resource for the half-open interval
// [max(now, freeAt), start+dur) and returns (start, end). A non-positive
// duration reserves nothing and returns (now', now') where now' is the
// earliest free time.
func (r *Resource) Reserve(now, dur Time) (start, end Time) {
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	if dur <= 0 {
		return start, start
	}
	end = start + dur
	r.freeAt = end
	return start, end
}

// ReserveAt occupies the resource beginning exactly at t (which must be
// >= FreeAt) for dur. It is used when the caller has already arbitrated a
// start time.
func (r *Resource) ReserveAt(t, dur Time) (end Time) {
	if t < r.freeAt {
		panic("sim: ReserveAt before resource is free")
	}
	r.freeAt = t + dur
	return r.freeAt
}

// Reset makes the resource free immediately.
func (r *Resource) Reset() { r.freeAt = 0 }
