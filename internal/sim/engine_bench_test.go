package sim

import "testing"

// BenchmarkHeapChurn exercises the 4-ary heap with a standing population
// of future events: every fired event schedules a replacement at a
// pseudo-random future offset, so each op is one pop + one push at depth.
func BenchmarkHeapChurn(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(benchName(depth), func(b *testing.B) {
			b.ReportAllocs()
			eng := NewEngine()
			rng := uint64(1)
			next := func() Time {
				// xorshift keeps delays varied without allocation.
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return Time(rng%1000 + 1)
			}
			n := 0
			var fn func()
			fn = func() {
				n++
				if n < b.N {
					eng.Schedule(next(), fn)
				}
			}
			for i := 0; i < depth; i++ {
				eng.Schedule(next(), fn)
			}
			b.ResetTimer()
			eng.Run()
		})
	}
}

func benchName(depth int) string {
	switch depth {
	case 16:
		return "depth=16"
	case 256:
		return "depth=256"
	default:
		return "depth=4096"
	}
}

// BenchmarkFastLane measures the zero-delay path: each event schedules a
// same-instant follow-on, which must bypass the heap entirely.
func BenchmarkFastLane(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			eng.Schedule(0, fn)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, fn)
	eng.Run()
}

// BenchmarkArgHandler measures the typed-argument form used by the
// link/vault hot paths: one bound callback reused across schedules, the
// operand carried in the event. Must be allocation-free for pointer args.
func BenchmarkArgHandler(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	var fn ArgHandler
	fn = func(arg any) {
		pl := arg.(*payload)
		pl.n++
		if pl.n < b.N {
			eng.ScheduleArg(1, fn, pl)
		}
	}
	b.ResetTimer()
	eng.ScheduleArg(1, fn, p)
	eng.Run()
	if p.n != b.N {
		b.Fatalf("fired %d, want %d", p.n, b.N)
	}
}

// BenchmarkMixedLoad approximates the simulator's real profile: a bursty
// mix of zero-delay handoffs (router/link kicks) and short future delays
// (serialization, bank access), with a modest standing heap.
func BenchmarkMixedLoad(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	n := 0
	var hop func()
	var settle func()
	hop = func() {
		n++
		if n >= b.N {
			return
		}
		// Two same-instant handoffs per future event mirrors the
		// router-sweep / link-pump cascade.
		if n%3 != 0 {
			eng.Schedule(0, hop)
			return
		}
		eng.Schedule(Time(n%97+1), settle)
	}
	settle = hop
	b.ResetTimer()
	for i := 0; i < 32 && i < b.N; i++ {
		eng.Schedule(Time(i+1), hop)
	}
	eng.Run()
}
