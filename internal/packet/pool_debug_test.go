//go:build simdebug

package packet

import "testing"

// TestDoublePutPanics checks the simdebug double-free guard: returning
// a packet that is already on the free list must panic at the second
// Put, not corrupt the free list silently.
func TestDoublePutPanics(t *testing.T) {
	var pl Pool
	p := pl.Get()
	pl.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same packet did not panic under simdebug")
		}
	}()
	pl.Put(p)
}

// TestPoolRoundTripsUnderGuard checks the guard stays silent across
// legitimate reuse cycles, including interleaved packets.
func TestPoolRoundTripsUnderGuard(t *testing.T) {
	var pl Pool
	a, b := pl.Get(), pl.Get()
	pl.Put(a)
	pl.Put(b)
	for i := 0; i < 100; i++ {
		p := pl.Get()
		q := pl.Get()
		pl.Put(q)
		pl.Put(p)
	}
	if pl.Free() != 2 {
		t.Fatalf("free-list depth = %d, want 2", pl.Free())
	}
}
