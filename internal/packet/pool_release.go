//go:build !simdebug

package packet

// poolDebug is off in release builds; the guard calls below are dead
// code the compiler removes from the Get/Put hot paths.
const poolDebug = false

func (pl *Pool) debugPut(*Packet) {}

func (pl *Pool) debugGet(*Packet) {}
