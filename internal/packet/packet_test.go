package packet

import (
	"strings"
	"testing"
)

func TestKindClassification(t *testing.T) {
	cases := []struct {
		k                            Kind
		req, resp, read, write, data bool
	}{
		{ReadReq, true, false, true, false, false},
		{ReadResp, false, true, true, false, true},
		{WriteReq, true, false, false, true, true},
		{WriteAck, false, true, false, true, false},
	}
	for _, c := range cases {
		if c.k.IsRequest() != c.req || c.k.IsResponse() != c.resp ||
			c.k.IsRead() != c.read || c.k.IsWrite() != c.write ||
			c.k.CarriesData() != c.data {
			t.Errorf("%v classification wrong", c.k)
		}
	}
}

func TestKindBits(t *testing.T) {
	if ReadReq.Bits() != ControlBits || WriteAck.Bits() != ControlBits {
		t.Fatal("control packets wrong size")
	}
	if ReadResp.Bits() != DataBits || WriteReq.Bits() != DataBits {
		t.Fatal("data packets wrong size")
	}
	// The paper's 5x ratio.
	if DataBits != 5*ControlBits {
		t.Fatalf("data:control = %d:%d, want 5:1", DataBits, ControlBits)
	}
}

func TestVCOf(t *testing.T) {
	if VCOf(ReadReq) != VCRequest || VCOf(WriteReq) != VCRequest {
		t.Fatal("requests on wrong VC")
	}
	if VCOf(ReadResp) != VCResponse || VCOf(WriteAck) != VCResponse {
		t.Fatal("responses on wrong VC")
	}
}

func TestResponseKind(t *testing.T) {
	if ResponseKind(ReadReq) != ReadResp || ResponseKind(WriteReq) != WriteAck {
		t.Fatal("wrong response kinds")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResponseKind of a response must panic")
		}
	}()
	ResponseKind(ReadResp)
}

func TestMakeResponse(t *testing.T) {
	p := &Packet{
		ID: 7, Kind: WriteReq, Src: HostNode, Dst: 5,
		Addr: 0x1234, Distance: 4, Hops: 4, Class: 1,
	}
	p.MakeResponse(6)
	if p.Kind != WriteAck {
		t.Fatalf("kind = %v", p.Kind)
	}
	if p.Src != 5 || p.Dst != HostNode {
		t.Fatalf("src/dst not swapped: %v -> %v", p.Src, p.Dst)
	}
	if p.Hops != 0 {
		t.Fatal("hops not reset")
	}
	if p.Distance != 6 {
		t.Fatalf("distance = %d, want 6", p.Distance)
	}
	if p.Class != 0 {
		t.Fatal("response class must be PathShort (0)")
	}
	if p.Addr != 0x1234 || p.ID != 7 {
		t.Fatal("identity fields must survive")
	}
}

func TestStringers(t *testing.T) {
	for _, k := range []Kind{ReadReq, ReadResp, WriteReq, WriteAck} {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("missing name for %d", k)
		}
	}
	if !strings.Contains(Kind(9).String(), "Kind(9)") {
		t.Error("unknown kind should fall back")
	}
	p := &Packet{ID: 3, Kind: ReadReq, Src: 0, Dst: 4, Addr: 0x40, Distance: 2}
	s := p.String()
	for _, want := range []string{"ReadReq", "#3", "0->4", "dist=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
