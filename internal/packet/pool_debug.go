//go:build simdebug

package packet

// poolDebug enables the free-list membership guard. Build with
// -tags simdebug to turn a silent double-Put (two aliases of one
// packet on the free list, which Get later hands to two concurrent
// transactions) into an immediate panic at the offending call site.
const poolDebug = true

// debugPut records p as pooled, panicking on a double free.
func (pl *Pool) debugPut(p *Packet) {
	if _, pooled := pl.inPool[p]; pooled {
		panic("packet: double Put: packet is already on the pool free list")
	}
	if pl.inPool == nil {
		pl.inPool = make(map[*Packet]struct{})
	}
	pl.inPool[p] = struct{}{}
}

// debugGet clears p's pooled mark when it is reissued.
func (pl *Pool) debugGet(p *Packet) {
	delete(pl.inPool, p)
}
