package packet

// Pool is a free list of Packets for one simulation instance. A packet
// is allocated once per transaction at injection, mutated in place as it
// moves (request -> response via MakeResponse), and returned to the pool
// when the host retires the transaction, so steady-state forwarding
// performs no packet allocation at all.
//
// Pool is intentionally not safe for concurrent use: a simulation is a
// single-goroutine program and each Engine owns its own Pool. Parallel
// experiment runs use independent instances (and therefore independent
// pools), which keeps the free list lock-free.
type Pool struct {
	free []*Packet

	// inPool tracks free-list membership for the double-free guard. It
	// is only populated under the simdebug build tag (poolDebug); in
	// normal builds it stays nil and the guard code is eliminated as
	// dead, so the hot path pays nothing.
	inPool map[*Packet]struct{}
}

// Get returns a zeroed packet, reusing a retired one when available.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		if poolDebug {
			pl.debugGet(p)
		}
		return p
	}
	return new(Packet)
}

// Put recycles a retired packet. The packet is zeroed immediately so a
// stale timestamp or address can never leak into its next transaction,
// and the caller must not retain the pointer. Returning a packet that
// is already on the free list is a use-after-free in waiting; builds
// with -tags simdebug panic on it immediately (the runtime backstop to
// mnlint's static poolcheck rule).
func (pl *Pool) Put(p *Packet) {
	if poolDebug {
		pl.debugPut(p)
	}
	*p = Packet{}
	pl.free = append(pl.free, p)
}

// Free reports the current free-list depth (for tests and stats).
func (pl *Pool) Free() int { return len(pl.free) }
