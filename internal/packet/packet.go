// Package packet defines the messages that travel through a memory
// network: read/write requests from the host and the matching responses
// from the cubes. Packet sizes follow the paper's assumption that
// data-carrying packets (read responses and write requests) are five
// times larger than control packets (read requests and write acks).
package packet

import (
	"fmt"

	"memnet/internal/sim"
)

// Kind classifies a packet.
type Kind uint8

const (
	// ReadReq is a host-to-cube read request (control-sized).
	ReadReq Kind = iota
	// ReadResp carries read data back to the host (data-sized).
	ReadResp
	// WriteReq carries write data to a cube (data-sized).
	WriteReq
	// WriteAck acknowledges a completed write (control-sized).
	WriteAck
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ReadReq:
		return "ReadReq"
	case ReadResp:
		return "ReadResp"
	case WriteReq:
		return "WriteReq"
	case WriteAck:
		return "WriteAck"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsRequest reports whether the packet travels host -> memory.
func (k Kind) IsRequest() bool { return k == ReadReq || k == WriteReq }

// IsResponse reports whether the packet travels memory -> host.
func (k Kind) IsResponse() bool { return !k.IsRequest() }

// IsRead reports whether the packet belongs to a read transaction.
func (k Kind) IsRead() bool { return k == ReadReq || k == ReadResp }

// IsWrite reports whether the packet belongs to a write transaction.
func (k Kind) IsWrite() bool { return !k.IsRead() }

// CarriesData reports whether the packet is data-sized (5x control).
func (k Kind) CarriesData() bool { return k == ReadResp || k == WriteReq }

// Packet sizes in bits. A control packet is a single 16-byte flit; data
// packets add four 16-byte data flits (64B payload), preserving the
// paper's 5:1 ratio.
const (
	ControlBits = 128
	DataBits    = 5 * ControlBits
)

// Bits returns the serialized size of a packet of kind k.
func (k Kind) Bits() int {
	if k.CarriesData() {
		return DataBits
	}
	return ControlBits
}

// NodeID identifies a node in a single memory-network graph. The host
// memory port is always node 0; memory cubes (and MetaCube interface
// chips) are numbered from 1.
type NodeID int32

// HostNode is the NodeID of the host memory port in every topology.
const HostNode NodeID = 0

// VC identifies a virtual channel. Requests and responses use separate
// channels so responses can always drain, which is the deadlock-avoidance
// rule that also causes the request-path queuing imbalance analyzed in
// the paper (Fig. 5).
type VC uint8

const (
	// VCRequest carries ReadReq and WriteReq packets.
	VCRequest VC = iota
	// VCResponse carries ReadResp and WriteAck packets.
	VCResponse
	// NumVCs is the number of virtual channels per link direction.
	NumVCs
)

// VCOf returns the virtual channel a packet kind travels on.
func VCOf(k Kind) VC {
	if k.IsRequest() {
		return VCRequest
	}
	return VCResponse
}

// Packet is a message in flight. Packets are allocated once per
// transaction leg and mutated in place as they move, so the simulator
// performs no steady-state allocation on the forwarding path.
type Packet struct {
	ID   uint64
	Kind Kind
	Src  NodeID // injecting node (host for requests, cube for responses)
	Dst  NodeID // destination node
	Addr uint64 // physical address within the port's slice (post-migration)
	// Logical is the pre-translation address the host issued; the
	// coherence ordering point keys its state by this, so migration
	// remapping cannot orphan a dependent read.
	Logical uint64

	// Distance is the hop count from Src to Dst computed from the
	// topology's routing tables when the packet is injected. It is the
	// quantity the paper's distance-based arbitration reads out of the
	// header flit.
	Distance int

	// Hops counts link traversals so far.
	Hops int

	// EnterPort records the router port the packet most recently arrived
	// through; the destination cube uses it to apply the wrong-quadrant
	// routing penalty (a request that lands on a link not associated
	// with its target quadrant pays 1 ns of intra-cube routing).
	EnterPort int8

	// Class is the routing class (topology.PathClass) stamped when the
	// packet is injected. Stamping — rather than re-evaluating the
	// host's write-shortcut state at every hop — keeps each packet's
	// route internally consistent even when the hysteresis monitor
	// flips mid-flight.
	Class uint8

	// SpanSlot links the packet to its in-flight span record when the
	// transaction is sampled by the span tracer (internal/span): zero
	// means unsampled, otherwise recorder slot index + 1. It survives
	// MakeResponse so the return path keeps appending to the same span,
	// and is cleared when the host overwrites the struct at injection.
	SpanSlot int32

	// Timestamps for latency decomposition (Fig. 5).
	Injected     sim.Time // entered the network at Src
	ArrivedMem   sim.Time // request arrived at destination cube
	DepartedMem  sim.Time // response left the cube
	Completed    sim.Time // response arrived back at the host
	MemLatency   sim.Time // time spent in the memory array/controller
	ReadModWrite bool     // part of a read-modify-write pair (workload metadata)
}

// String implements fmt.Stringer for debugging and trace logs.
func (p *Packet) String() string {
	return fmt.Sprintf("%s#%d %d->%d addr=%#x dist=%d hops=%d",
		p.Kind, p.ID, p.Src, p.Dst, p.Addr, p.Distance, p.Hops)
}

// ResponseKind returns the packet kind of the response matching a
// request kind. It panics if k is not a request.
func ResponseKind(k Kind) Kind {
	switch k {
	case ReadReq:
		return ReadResp
	case WriteReq:
		return WriteAck
	default:
		panic("packet: ResponseKind of non-request " + k.String())
	}
}

// MakeResponse converts a request packet, in place, into its response:
// kind flips, src/dst swap, hop count resets, and the distance field is
// re-stamped for the return trip (the return distance may differ on
// asymmetric topologies such as the skip list).
func (p *Packet) MakeResponse(returnDistance int) {
	p.Kind = ResponseKind(p.Kind)
	p.Src, p.Dst = p.Dst, p.Src
	p.Hops = 0
	p.Distance = returnDistance
	// Responses always take shortest paths (PathShort = 0).
	p.Class = 0
}
