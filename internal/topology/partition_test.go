package topology

import (
	"testing"
)

// TestPartitionCoversEveryNodeOnce checks the partitioner's core
// invariant across every topology family and several region counts:
// each node — cube, host, interface chip — lands in exactly one region
// in [0, k), cubes are balanced within one of each other, and region
// ranges are contiguous in position order.
func TestPartitionCoversEveryNodeOnce(t *testing.T) {
	for _, kind := range AllKinds {
		for _, k := range []int{1, 2, 3, 5} {
			g := build(t, kind, dram(16))
			p, err := PartitionRegions(g, k)
			if err != nil {
				t.Fatalf("%v k=%d: %v", kind, k, err)
			}
			counts := make([]int, k)
			for _, n := range g.Nodes {
				r := p.RegionOf(n.ID)
				if r < 0 || r >= k {
					t.Fatalf("%v k=%d: node %d in region %d outside [0,%d)", kind, k, n.ID, r, k)
				}
				if n.Kind == Cube {
					counts[r]++
				}
			}
			min, max := counts[0], counts[0]
			for _, c := range counts[1:] {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if min == 0 || max-min > 1 {
				t.Errorf("%v k=%d: unbalanced cube counts %v", kind, k, counts)
			}
			// Contiguity: region index is non-decreasing in position order.
			prev := 0
			for _, id := range g.CubeIDs() {
				r := p.RegionOf(id)
				if r < prev {
					t.Fatalf("%v k=%d: cube %d in region %d after region %d (not contiguous)", kind, k, id, r, prev)
				}
				prev = r
			}
			if p.RegionOf(0) != 0 {
				t.Errorf("%v k=%d: host in region %d, want 0", kind, k, p.RegionOf(0))
			}
		}
	}
}

// TestPartitionCutSymmetry checks boundary enumeration: every cut edge
// appears in exactly the two views of its endpoint regions, mirrored
// (Local/Remote and LocalRegion/RemoteRegion swapped), and no
// same-region edge leaks into any cut.
func TestPartitionCutSymmetry(t *testing.T) {
	for _, kind := range AllKinds {
		for _, k := range []int{2, 3, 5} {
			g := build(t, kind, dram(16))
			p, err := PartitionRegions(g, k)
			if err != nil {
				t.Fatalf("%v k=%d: %v", kind, k, err)
			}
			// views[edge] counts appearances across all cuts.
			views := map[int][]BoundaryEdge{}
			for s := 0; s < k; s++ {
				for _, be := range p.Cut(s) {
					if be.LocalRegion != s {
						t.Fatalf("%v k=%d: Cut(%d) entry claims region %d", kind, k, s, be.LocalRegion)
					}
					if p.RegionOf(be.Local) != s || p.RegionOf(be.Remote) != be.RemoteRegion {
						t.Fatalf("%v k=%d: cut entry %+v disagrees with RegionOf", kind, k, be)
					}
					views[be.Edge] = append(views[be.Edge], be)
				}
			}
			for ei, e := range g.Edges {
				sa, sb := p.RegionOf(e.A), p.RegionOf(e.B)
				vs := views[ei]
				if sa == sb {
					if len(vs) != 0 {
						t.Errorf("%v k=%d: intra-region edge %d appears in a cut", kind, k, ei)
					}
					continue
				}
				if len(vs) != 2 {
					t.Fatalf("%v k=%d: cut edge %d appears %d times, want 2", kind, k, ei, len(vs))
				}
				a, b := vs[0], vs[1]
				mirrored := a.Local == b.Remote && a.Remote == b.Local &&
					a.LocalRegion == b.RemoteRegion && a.RemoteRegion == b.LocalRegion
				if !mirrored {
					t.Errorf("%v k=%d: cut edge %d views not mirrored: %+v vs %+v", kind, k, ei, a, b)
				}
			}
		}
	}
}

// TestPartitionMetaCubeClustersIntact checks that interface chips join
// a cube region (never a region with no adjacent cube) so an interposer
// cluster's internal traces stay off the cut.
func TestPartitionMetaCubeClustersIntact(t *testing.T) {
	g := build(t, MetaCube, dram(16))
	p, err := PartitionRegions(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind != Iface {
			continue
		}
		r := p.RegionOf(n.ID)
		adjacent := false
		for port := 0; port < g.Degree(n.ID); port++ {
			nb := g.Neighbor(n.ID, port)
			if g.Nodes[nb].Kind == Cube && p.RegionOf(nb) == r {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Errorf("iface %d in region %d with no same-region adjacent cube", n.ID, r)
		}
	}
}

// TestPartitionBadCounts pins the argument validation.
func TestPartitionBadCounts(t *testing.T) {
	g := build(t, Ring, dram(8))
	if _, err := PartitionRegions(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionRegions(g, 9); err == nil {
		t.Error("k > cubes accepted")
	}
	if p, err := PartitionRegions(g, 1); err != nil || len(p.Cut(0)) != 0 {
		t.Errorf("k=1 should have an empty cut (err=%v)", err)
	}
	if p, _ := PartitionRegions(g, 2); p.NumRegions() != 2 {
		t.Error("NumRegions")
	}
}
