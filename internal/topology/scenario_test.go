package topology

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/scenario"
)

// twoPodSpec declares an irregular graph no built-in kind expresses:
// two 4-cube rings bridged through a middle cube, host on pod A.
func twoPodSpec() *scenario.Spec {
	node := func(name string) scenario.Node { return scenario.Node{Name: name} }
	link := func(a, b string) scenario.Link { return scenario.Link{A: a, B: b} }
	return &scenario.Spec{
		Schema: scenario.Schema,
		Name:   "two-pod",
		Nodes: []scenario.Node{
			node("a0"), node("a1"), node("a2"), node("a3"),
			node("x"),
			node("b0"), node("b1"), node("b2"), node("b3"),
		},
		Links: []scenario.Link{
			link("host", "a0"),
			link("a0", "a1"), link("a1", "a2"), link("a2", "a3"), link("a3", "a0"),
			link("a0", "x"), link("x", "b0"),
			link("b0", "b1"), link("b1", "b2"), link("b2", "b3"), link("b3", "b0"),
		},
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	names := KindNames()
	if len(names) != len(AllKinds) {
		t.Fatalf("KindNames has %d entries for %d kinds", len(names), len(AllKinds))
	}
	for i, k := range AllKinds {
		if k == Scenario {
			t.Fatalf("AllKinds contains Scenario")
		}
		if names[i] != KindName(k) {
			t.Errorf("KindNames[%d] = %q, want %q", i, names[i], KindName(k))
		}
		for _, label := range []string{KindName(k), strings.ToUpper(KindName(k)), k.String()} {
			got, err := ParseKind(label)
			if err != nil || got != k {
				t.Errorf("ParseKind(%q) = %v, %v; want %v", label, got, err, k)
			}
		}
		if k.Letter() == "?" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("%v has no name/letter", k)
		}
	}
	for _, bad := range []string{"", "torus", "scenario"} {
		if _, err := ParseKind(bad); err == nil {
			t.Errorf("ParseKind(%q) accepted", bad)
		}
	}
}

func TestBuildRejectsScenarioKind(t *testing.T) {
	if _, err := Build(Scenario, dram(4)); err == nil {
		t.Fatal("Build(Scenario, ...) must fail; scenarios build via BuildScenario")
	}
}

func TestBuildScenarioIrregular(t *testing.T) {
	g, err := BuildScenario(twoPodSpec())
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != Scenario {
		t.Errorf("kind = %v, want Scenario", g.Kind)
	}
	if got := len(g.Nodes); got != 10 {
		t.Fatalf("nodes = %d, want 10", got)
	}
	if got := len(g.Edges); got != 11 {
		t.Fatalf("edges = %d, want 11", got)
	}
	// Route tables must reach every cube from the host on both classes.
	for _, id := range g.CubeIDs() {
		for _, class := range []PathClass{PathShort, PathLong} {
			if g.Dist(class, packet.HostNode, id) < 0 {
				t.Errorf("no %v route host -> %d", class, id)
			}
		}
	}
	// Pod B is two hops behind the bridge: host-a0-x-b0.
	b0, _ := twoPodSpec().NodeID("b0")
	if d := g.Dist(PathShort, packet.HostNode, packet.NodeID(b0)); d != 3 {
		t.Errorf("host->b0 dist = %d, want 3", d)
	}
}

func TestBuildScenarioRejects(t *testing.T) {
	// Port budget: a 5-link cube must be rejected by the builder even
	// though the spec-level checks cannot know the per-cube budget rule
	// ahead of graph construction.
	s := twoPodSpec()
	s.Links = append(s.Links, scenario.Link{A: "a0", B: "b2"})
	if _, err := BuildScenario(s); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-budget cube not rejected: %v", err)
	}
	// Spec-level validation errors surface through BuildScenario too.
	s = twoPodSpec()
	s.Links[0].B = "zz"
	if _, err := BuildScenario(s); err == nil || !strings.Contains(err.Error(), "links[0].b") {
		t.Fatalf("unknown endpoint not rejected: %v", err)
	}
	s = twoPodSpec()
	s.Topology = "torus"
	if _, err := BuildScenario(s); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Fatalf("unknown topology label not rejected: %v", err)
	}
}

// TestExportScenarioRoundTrip checks that exporting any built-in
// topology and rebuilding it from the spec reproduces the graph
// exactly: same nodes, same edges in the same order (port numbering),
// same routes.
func TestExportScenarioRoundTrip(t *testing.T) {
	for _, kind := range AllKinds {
		g := build(t, kind, dram(16))
		spec := ExportScenario(g, "roundtrip")
		if spec.Topology != KindName(kind) {
			t.Errorf("%v: exported topology label %q", kind, spec.Topology)
		}
		g2, err := BuildScenario(spec)
		if err != nil {
			t.Fatalf("%v: rebuild: %v", kind, err)
		}
		if g2.Kind != kind {
			t.Errorf("%v: rebuilt kind %v", kind, g2.Kind)
		}
		if !reflect.DeepEqual(g.Nodes, g2.Nodes) {
			t.Errorf("%v: nodes differ\n%+v\n%+v", kind, g.Nodes, g2.Nodes)
		}
		if !reflect.DeepEqual(g.Edges, g2.Edges) {
			t.Errorf("%v: edges differ\n%+v\n%+v", kind, g.Edges, g2.Edges)
		}
	}
}

// TestExportScenarioValidates checks an export is a valid scenario
// document after a JSON round trip, not just as in-memory structs.
func TestExportScenarioValidates(t *testing.T) {
	g := build(t, MetaCube, dram(16))
	spec := ExportScenario(g, "mc16")
	data := spec.Canonical()
	if _, err := scenario.Decode(data); err != nil {
		t.Fatalf("exported scenario does not decode: %v", err)
	}
}

// TestPartitionScenarioInvariants re-runs the partitioner's cover and
// cut-symmetry invariants on scenario-loaded irregular graphs — the
// built-in-kind sweeps above cannot reach these shapes.
func TestPartitionScenarioInvariants(t *testing.T) {
	specs := map[string]func() *scenario.Spec{
		"two-pod": twoPodSpec,
		"hub": func() *scenario.Spec {
			// A hub-and-spoke with an interface chip: host - iface,
			// iface fans out to 5 cubes (over the cube port budget, so
			// only an iface can sit at the hub).
			s := &scenario.Spec{Schema: scenario.Schema, Name: "hub"}
			s.Nodes = append(s.Nodes, scenario.Node{Name: "hub", Kind: "iface"})
			s.Links = append(s.Links, scenario.Link{A: "host", B: "hub"})
			for _, c := range []string{"c0", "c1", "c2", "c3", "c4"} {
				s.Nodes = append(s.Nodes, scenario.Node{Name: c})
				s.Links = append(s.Links, scenario.Link{A: "hub", B: c, Interposer: true})
			}
			return s
		},
	}
	for name, mk := range specs {
		for _, k := range []int{1, 2, 3} {
			g, err := BuildScenario(mk())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			p, err := PartitionRegions(g, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			// Cover: every node in exactly one region, cubes balanced,
			// host in region 0.
			counts := make([]int, k)
			for _, n := range g.Nodes {
				r := p.RegionOf(n.ID)
				if r < 0 || r >= k {
					t.Fatalf("%s k=%d: node %d in region %d", name, k, n.ID, r)
				}
				if n.Kind == Cube {
					counts[r]++
				}
			}
			min, max := counts[0], counts[0]
			for _, c := range counts[1:] {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if min == 0 || max-min > 1 {
				t.Errorf("%s k=%d: unbalanced cube counts %v", name, k, counts)
			}
			if p.RegionOf(packet.HostNode) != 0 {
				t.Errorf("%s k=%d: host not in region 0", name, k)
			}
			// Symmetry: each cut edge appears exactly twice, mirrored;
			// intra-region edges never appear.
			views := map[int][]BoundaryEdge{}
			for s := 0; s < k; s++ {
				for _, be := range p.Cut(s) {
					if be.LocalRegion != s || p.RegionOf(be.Local) != s {
						t.Fatalf("%s k=%d: cut entry %+v in wrong view", name, k, be)
					}
					views[be.Edge] = append(views[be.Edge], be)
				}
			}
			for ei, e := range g.Edges {
				vs := views[ei]
				if p.RegionOf(e.A) == p.RegionOf(e.B) {
					if len(vs) != 0 {
						t.Errorf("%s k=%d: intra-region edge %d in a cut", name, k, ei)
					}
					continue
				}
				if len(vs) != 2 {
					t.Fatalf("%s k=%d: cut edge %d appears %d times", name, k, ei, len(vs))
				}
				a, b := vs[0], vs[1]
				if a.Local != b.Remote || a.Remote != b.Local ||
					a.LocalRegion != b.RemoteRegion || a.RemoteRegion != b.LocalRegion {
					t.Errorf("%s k=%d: cut edge %d views not mirrored", name, k, ei)
				}
			}
		}
	}
}
