package topology

import (
	"testing"

	"memnet/internal/config"
	"memnet/internal/packet"
)

func techs(n int) []config.MemTech {
	ts := make([]config.MemTech, n)
	for i := range ts {
		ts[i] = config.DRAM
	}
	return ts
}

// walk follows next-hops from src to dst in the given class, returning
// the nodes visited (excluding src) or nil on a routing dead end.
func walk(g *Graph, class PathClass, src, dst packet.NodeID) []packet.NodeID {
	var path []packet.NodeID
	cur := src
	for cur != dst {
		port := g.NextPort(class, cur, dst)
		if port < 0 || len(path) > len(g.Nodes) {
			return nil
		}
		cur = g.Neighbor(cur, port)
		path = append(path, cur)
	}
	return path
}

// TestDisablePreservesIndices: the degraded graph must keep node and
// edge identity so a wired network's port numbering survives the swap.
func TestDisablePreservesIndices(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	ng, err := g.Disable([]int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ng.Nodes) != len(g.Nodes) || len(ng.Edges) != len(g.Edges) {
		t.Fatal("Disable changed node/edge counts")
	}
	for n := range g.Nodes {
		id := packet.NodeID(n)
		if g.Degree(id) != ng.Degree(id) {
			t.Fatalf("node %d degree changed", n)
		}
		for p := 0; p < g.Degree(id); p++ {
			if g.Neighbor(id, p) != ng.Neighbor(id, p) {
				t.Fatalf("node %d port %d rewired", n, p)
			}
		}
	}
	if !ng.DeadEdge(2) || ng.DeadEdge(1) {
		t.Fatal("dead-edge mask wrong")
	}
}

// TestDisableRingRoutesAround: killing one ring segment forces all
// traffic the long way around, never crossing the dead edge.
func TestDisableRingRoutesAround(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the segment on some cube-to-cube edge and verify every pair
	// still routes, avoiding that edge.
	dead := g.EdgeBetween(2, 3)
	if dead < 0 {
		t.Fatal("ring missing edge 2-3")
	}
	ng, err := g.Disable([]int{dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ng.Nodes {
		for _, b := range ng.Nodes {
			if a.ID == b.ID {
				continue
			}
			path := walk(ng, PathShort, a.ID, b.ID)
			if path == nil {
				t.Fatalf("no route %d->%d after edge kill", a.ID, b.ID)
			}
			prev := a.ID
			for _, hop := range path {
				if ng.EdgeBetween(prev, hop) == dead {
					t.Fatalf("route %d->%d crosses dead edge", a.ID, b.ID)
				}
				prev = hop
			}
		}
	}
	// The 2->3 route must now be the 6-hop long way, not the dead 1-hop.
	if d := ng.Dist(PathShort, 2, 3); d != 7 {
		t.Fatalf("2->3 distance %d after kill, want 7 (long way)", d)
	}
}

// TestDisableChainEdgeDisconnects: a chain has no redundancy; killing
// any interior link must be rejected, not silently strand cubes.
func TestDisableChainEdgeDisconnects(t *testing.T) {
	g, err := Build(Chain, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Disable([]int{3}, nil); err == nil {
		t.Fatal("chain link kill must disconnect")
	}
}

// TestDisableDeadNodeZombieRules: a fully-failed node keeps escape
// next-hops and stays a reachable destination, but no third-party route
// transits it.
func TestDisableDeadNodeZombieRules(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	const victim = packet.NodeID(3)
	ng, err := g.Disable(nil, []packet.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if !ng.DeadNode(victim) {
		t.Fatal("dead-node mask not set")
	}
	for _, a := range ng.Nodes {
		for _, b := range ng.Nodes {
			if a.ID == b.ID {
				continue
			}
			path := walk(ng, PathShort, a.ID, b.ID)
			if path == nil {
				t.Fatalf("no route %d->%d with zombie node", a.ID, b.ID)
			}
			for i, hop := range path {
				if hop == victim && i != len(path)-1 {
					t.Fatalf("route %d->%d transits dead node %d: %v", a.ID, b.ID, victim, path)
				}
			}
		}
	}
}

// TestDisableHostAndBadArgs: the host cannot die, and out-of-range
// edges/nodes are rejected.
func TestDisableHostAndBadArgs(t *testing.T) {
	g, err := Build(Ring, techs(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Disable(nil, []packet.NodeID{packet.HostNode}); err == nil {
		t.Fatal("host kill accepted")
	}
	if _, err := g.Disable([]int{len(g.Edges)}, nil); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := g.Disable(nil, []packet.NodeID{packet.NodeID(len(g.Nodes))}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestDisableLayersFaults: a second Disable builds on the first graph's
// masks, and an accumulation that disconnects the network errors.
func TestDisableLayersFaults(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	e1 := g.EdgeBetween(2, 3)
	e2 := g.EdgeBetween(5, 6)
	ng, err := g.Disable([]int{e1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A second cut splits the ring remnant in two.
	if _, err := ng.Disable([]int{e2}, nil); err == nil {
		t.Fatal("double ring cut must disconnect")
	}
	if !ng.DeadEdge(e1) {
		t.Fatal("first fault lost")
	}
}

// TestDisableSkipListWriteFallback: writes route down the sequential
// chain (PathLong); when a chain hop dies, the write path must fall back
// onto the express skip links instead of stranding.
func TestDisableSkipListWriteFallback(t *testing.T) {
	g, err := Build(SkipList, techs(16))
	if err != nil {
		t.Fatal(err)
	}
	// Find a chain hop that is bypassed by a skip link: edge 9-10 (the
	// stride-8 skip 1->9 and 9->13 provide redundancy around it).
	dead := g.EdgeBetween(9, 10)
	if dead < 0 {
		t.Fatal("skip list missing chain edge 9-10")
	}
	if g.Edges[dead].Express {
		t.Fatal("9-10 should be a chain edge")
	}
	ng, err := g.Disable([]int{dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Host->12 writes previously walked the chain through 9-10; now the
	// PathLong table must still deliver, using express links.
	path := walk(ng, PathLong, packet.HostNode, 12)
	if path == nil {
		t.Fatal("write path stranded by chain-hop death")
	}
	prev := packet.HostNode
	usedExpress := false
	for _, hop := range path {
		ei := ng.EdgeBetween(prev, hop)
		if ei == dead {
			t.Fatalf("write path crosses dead edge: %v", path)
		}
		if ng.Edges[ei].Express {
			usedExpress = true
		}
		prev = hop
	}
	if !usedExpress {
		t.Fatalf("write fallback did not use skip links: %v", path)
	}
	// Reads keep working too.
	if walk(ng, PathShort, packet.HostNode, 12) == nil {
		t.Fatal("read path stranded")
	}
}
