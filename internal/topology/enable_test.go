package topology

import (
	"testing"

	"memnet/internal/packet"
)

// sameRoutes reports whether two graphs compute identical next-hops
// and distances for every (class, src, dst) triple.
func sameRoutes(a, b *Graph) bool {
	for class := PathShort; class <= PathLong; class++ {
		for _, s := range a.Nodes {
			for _, d := range a.Nodes {
				if s.ID == d.ID {
					continue
				}
				if a.NextPort(class, s.ID, d.ID) != b.NextPort(class, s.ID, d.ID) {
					return false
				}
				if a.Dist(class, s.ID, d.ID) != b.Dist(class, s.ID, d.ID) {
					return false
				}
			}
		}
	}
	return true
}

// TestEnableRoutesBack: repairing the only dead edge restores the exact
// pre-fault route tables — route-back mirrors route-around.
func TestEnableRoutesBack(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	dead := g.EdgeBetween(2, 3)
	broken, err := g.Disable([]int{dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sameRoutes(g, broken) {
		t.Fatal("ring cut did not change any route")
	}
	healed, err := broken.Enable([]int{dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if healed.DeadEdge(dead) {
		t.Fatal("repaired edge still masked dead")
	}
	if !sameRoutes(g, healed) {
		t.Fatal("repaired graph routes differently from the pristine build")
	}
	if d := healed.Dist(PathShort, 2, 3); d != 1 {
		t.Fatalf("2->3 distance after repair = %d, want the direct hop", d)
	}
}

// TestEnableNodeRoutesBack: reviving a fully-failed node lifts the
// no-transit rule and restores pristine routing.
func TestEnableNodeRoutesBack(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	const victim = packet.NodeID(3)
	broken, err := g.Disable(nil, []packet.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	healed, err := broken.Enable(nil, []packet.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if healed.DeadNode(victim) {
		t.Fatal("repaired node still masked dead")
	}
	if !sameRoutes(g, healed) {
		t.Fatal("node repair did not restore pristine routes")
	}
}

// TestEnablePartialRepair: with two faults, repairing one keeps the
// other's mask and its route-around in force.
func TestEnablePartialRepair(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	// The victim is an endpoint of the dead edge, so both faults can
	// coexist on a ring without stranding anything (the victim stays
	// reachable as a destination over its surviving link).
	dead := g.EdgeBetween(2, 3)
	const victim = packet.NodeID(3)
	broken, err := g.Disable([]int{dead}, []packet.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := broken.Enable([]int{dead}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if partial.DeadEdge(dead) {
		t.Fatal("repaired edge still dead")
	}
	if !partial.DeadNode(victim) {
		t.Fatal("unrelated node fault lost by the repair")
	}
	if sameRoutes(g, partial) {
		t.Fatal("partial repair restored pristine routes despite the dead node")
	}
	full, err := partial.Enable(nil, []packet.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRoutes(g, full) {
		t.Fatal("full repair did not restore pristine routes")
	}
}

// TestEnableRejects: repairs of healthy or out-of-range targets fail.
func TestEnableRejects(t *testing.T) {
	g, err := Build(Ring, techs(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Enable([]int{0}, nil); err == nil {
		t.Fatal("repair of a live edge accepted")
	}
	if _, err := g.Enable(nil, []packet.NodeID{3}); err == nil {
		t.Fatal("repair of a live node accepted")
	}
	if _, err := g.Enable([]int{len(g.Edges)}, nil); err == nil {
		t.Fatal("out-of-range edge repair accepted")
	}
	if _, err := g.Enable(nil, []packet.NodeID{packet.HostNode}); err == nil {
		t.Fatal("host repair accepted")
	}
}
