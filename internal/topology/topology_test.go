package topology

import (
	"testing"
	"testing/quick"

	"memnet/internal/config"
	"memnet/internal/packet"
)

func dram(n int) []config.MemTech { return make([]config.MemTech, n) }

func build(t *testing.T, k Kind, techs []config.MemTech) *Graph {
	t.Helper()
	g, err := Build(k, techs)
	if err != nil {
		t.Fatalf("%v: %v", k, err)
	}
	return g
}

func TestChainStructure(t *testing.T) {
	g := build(t, Chain, dram(16))
	if len(g.CubeIDs()) != 16 || len(g.Edges) != 16 {
		t.Fatalf("cubes=%d edges=%d", len(g.CubeIDs()), len(g.Edges))
	}
	// Linear distances 1..16.
	for i, id := range g.CubeIDs() {
		if d := g.Dist(PathShort, packet.HostNode, id); d != i+1 {
			t.Fatalf("cube %d at distance %d, want %d", id, d, i+1)
		}
	}
	if g.MaxHostDist() != 16 {
		t.Fatalf("diameter %d", g.MaxHostDist())
	}
}

func TestRingHalvesDistance(t *testing.T) {
	g := build(t, Ring, dram(16))
	if len(g.Edges) != 17 { // host link + 16-cycle
		t.Fatalf("edges=%d", len(g.Edges))
	}
	// Farthest cube is halfway around: 1 + 8 = 9.
	if g.MaxHostDist() != 9 {
		t.Fatalf("ring diameter %d, want 9", g.MaxHostDist())
	}
	chain := build(t, Chain, dram(16))
	if g.MeanHostDist() >= chain.MeanHostDist()*0.6 {
		t.Fatalf("ring mean %.2f not roughly half of chain %.2f",
			g.MeanHostDist(), chain.MeanHostDist())
	}
}

func TestTreeLogDiameter(t *testing.T) {
	g := build(t, Tree, dram(16))
	// Ternary tree of 16: 1 + 3 + 9 + 3 -> depth 4.
	if g.MaxHostDist() != 4 {
		t.Fatalf("tree diameter %d, want 4", g.MaxHostDist())
	}
	// Root has host + 3 children = 4 ports; no cube exceeds 4.
	for _, n := range g.Nodes {
		if n.Kind == Cube && g.Degree(n.ID) > MaxCubePorts {
			t.Fatalf("cube %d degree %d", n.ID, g.Degree(n.ID))
		}
	}
}

// TestSkipListMatchesFig8 pins the paper's Fig. 8 structure for 16
// cubes: the farthest cube is reachable in 5 hops via strides 8,4,2,1,
// writes walk the full chain, and the port budget holds.
func TestSkipListMatchesFig8(t *testing.T) {
	g := build(t, SkipList, dram(16))
	if g.MaxHostDist() != 5 {
		t.Fatalf("skip-list diameter %d, want 5 (Fig. 8)", g.MaxHostDist())
	}
	// Express links: exactly {1-9, 9-13, 13-15, 1-5, 5-7} (node IDs).
	type pair struct{ a, b packet.NodeID }
	want := map[pair]bool{
		{1, 9}: true, {9, 13}: true, {13, 15}: true, {1, 5}: true, {5, 7}: true,
	}
	got := 0
	for _, e := range g.Edges {
		if !e.Express {
			continue
		}
		got++
		if !want[pair{e.A, e.B}] && !want[pair{e.B, e.A}] {
			t.Fatalf("unexpected skip link %d-%d", e.A, e.B)
		}
	}
	if got != len(want) {
		t.Fatalf("%d skip links, want %d", got, len(want))
	}
	// Write path (PathLong) is the pure chain: distance to cube k = k.
	for i, id := range g.CubeIDs() {
		if d := g.Dist(PathLong, packet.HostNode, id); d != i+1 {
			t.Fatalf("write path to cube %d = %d, want %d", id, d, i+1)
		}
	}
	// The farthest cube's read path must beat its write path by 11 hops.
	last := g.CubeIDs()[15]
	if s, l := g.Dist(PathShort, packet.HostNode, last), g.Dist(PathLong, packet.HostNode, last); l-s != 11 {
		t.Fatalf("short %d vs long %d", s, l)
	}
}

func TestSkipListSmallSizes(t *testing.T) {
	for n := 1; n <= 20; n++ {
		g := build(t, SkipList, dram(n))
		chain := build(t, Chain, dram(n))
		if g.MaxHostDist() > chain.MaxHostDist() {
			t.Fatalf("n=%d: skip list slower than chain", n)
		}
		if n >= 8 && g.MaxHostDist() >= chain.MaxHostDist() {
			t.Fatalf("n=%d: skip links gained nothing", n)
		}
	}
}

func TestMetaCubeStructure(t *testing.T) {
	g := build(t, MetaCube, dram(16))
	ifaces := 0
	for _, n := range g.Nodes {
		if n.Kind == Iface {
			ifaces++
			// Interface chips may exceed the cube port budget — that is
			// the point of the interposer router.
			if g.Degree(n.ID) < 4 {
				t.Fatalf("iface %d degree %d", n.ID, g.Degree(n.ID))
			}
		}
		if n.Kind == Cube && g.Degree(n.ID) != 1 {
			t.Fatalf("member cube %d degree %d, want 1", n.ID, g.Degree(n.ID))
		}
	}
	if ifaces != 4 {
		t.Fatalf("ifaces = %d, want 4", ifaces)
	}
	// Interposer links: one per cube.
	ip := 0
	for _, e := range g.Edges {
		if e.Interposer {
			ip++
		}
	}
	if ip != 16 {
		t.Fatalf("interposer links = %d, want 16", ip)
	}
	// Star-of-ifaces: worst cube = host->iface1->ifaceK->cube = 3.
	if g.MaxHostDist() != 3 {
		t.Fatalf("metacube diameter %d, want 3", g.MaxHostDist())
	}
}

func TestMetaCubePartialGroup(t *testing.T) {
	g := build(t, MetaCube, dram(10)) // 4+4+2
	ifaces := 0
	for _, n := range g.Nodes {
		if n.Kind == Iface {
			ifaces++
		}
	}
	if ifaces != 3 {
		t.Fatalf("ifaces = %d, want 3", ifaces)
	}
	if len(g.CubeIDs()) != 10 {
		t.Fatal("cube count")
	}
}

func TestPlacementOrdering(t *testing.T) {
	techs := []config.MemTech{
		config.DRAM, config.DRAM, config.DRAM, config.DRAM,
		config.DRAM, config.DRAM, config.DRAM, config.DRAM,
		config.NVM, config.NVM,
	}
	for _, k := range Kinds {
		g := build(t, k, techs)
		// NVM cubes (positions 8,9) must be at least as far from the
		// host as the average DRAM cube.
		var dSum, dN, nSum, nN float64
		for _, n := range g.Nodes {
			if n.Kind != Cube {
				continue
			}
			d := float64(g.Dist(PathShort, packet.HostNode, n.ID))
			if n.Tech == config.NVM {
				nSum += d
				nN++
			} else {
				dSum += d
				dN++
			}
		}
		if nSum/nN < dSum/dN {
			t.Errorf("%v: NVM-last placement put NVM nearer (%.2f) than DRAM (%.2f)",
				k, nSum/nN, dSum/dN)
		}
	}
}

func TestHostDegreeOne(t *testing.T) {
	for _, k := range Kinds {
		for _, n := range []int{1, 2, 4, 10, 16, 32} {
			g := build(t, k, dram(n))
			if g.Degree(packet.HostNode) != 1 {
				t.Fatalf("%v n=%d: host degree %d", k, n, g.Degree(packet.HostNode))
			}
		}
	}
}

func TestPortBudget(t *testing.T) {
	for _, k := range Kinds {
		for _, n := range []int{1, 2, 3, 4, 7, 10, 16, 32, 64} {
			g := build(t, k, dram(n))
			for _, node := range g.Nodes {
				if node.Kind == Cube && g.Degree(node.ID) > MaxCubePorts {
					t.Fatalf("%v n=%d: cube %d has %d ports", k, n, node.ID, g.Degree(node.ID))
				}
			}
		}
	}
}

// TestRoutesReachDestination: following NextPort from any node reaches
// the destination within NumNodes hops for both classes.
func TestRoutesReachDestination(t *testing.T) {
	for _, k := range Kinds {
		for _, n := range []int{4, 10, 16, 32} {
			g := build(t, k, dram(n))
			for class := PathClass(0); class < NumClasses; class++ {
				for _, src := range g.Nodes {
					for _, dst := range g.Nodes {
						cur := src.ID
						for hops := 0; cur != dst.ID; hops++ {
							if hops > g.NumNodes() {
								t.Fatalf("%v n=%d class=%d: loop %d->%d",
									k, n, class, src.ID, dst.ID)
							}
							port := g.NextPort(class, cur, dst.ID)
							if port < 0 {
								t.Fatalf("%v: no route %d->%d", k, cur, dst.ID)
							}
							cur = g.Neighbor(cur, port)
						}
					}
				}
			}
		}
	}
}

// TestRouteNeverUTurns: the next hop toward a destination never returns
// through the port a shortest-path packet arrived on (the router relies
// on this).
func TestRouteNeverUTurns(t *testing.T) {
	for _, k := range Kinds {
		g := build(t, k, dram(16))
		for class := PathClass(0); class < NumClasses; class++ {
			for _, src := range g.Nodes {
				for _, dst := range g.Nodes {
					if src.ID == dst.ID {
						continue
					}
					// Walk the path, checking consecutive hops differ.
					prev := packet.NodeID(-1)
					cur := src.ID
					for cur != dst.ID {
						port := g.NextPort(class, cur, dst.ID)
						next := g.Neighbor(cur, port)
						if next == prev {
							t.Fatalf("%v class %d: u-turn at %d on path %d->%d",
								k, class, cur, src.ID, dst.ID)
						}
						prev, cur = cur, next
					}
				}
			}
		}
	}
}

// TestDistMatchesWalk: Dist equals the walked hop count.
func TestDistMatchesWalk(t *testing.T) {
	g := build(t, SkipList, dram(16))
	f := func(a, b uint8) bool {
		src := packet.NodeID(int(a) % g.NumNodes())
		dst := packet.NodeID(int(b) % g.NumNodes())
		for class := PathClass(0); class < NumClasses; class++ {
			cur, hops := src, 0
			for cur != dst {
				cur = g.Neighbor(cur, g.NextPort(class, cur, dst))
				hops++
			}
			if hops != g.Dist(class, src, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLongPathAvoidsExpress(t *testing.T) {
	g := build(t, SkipList, dram(16))
	for _, dst := range g.CubeIDs() {
		cur := packet.HostNode
		for cur != dst {
			port := g.NextPort(PathLong, cur, dst)
			if g.EdgeAt(cur, port).Express {
				t.Fatalf("write path to %d uses skip link at %d", dst, cur)
			}
			cur = g.Neighbor(cur, port)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Chain, nil); err == nil {
		t.Fatal("empty cube list must fail")
	}
	if _, err := Build(Kind(99), dram(4)); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestStringers(t *testing.T) {
	names := map[Kind]string{Chain: "Chain", Ring: "Ring", Tree: "Tree",
		SkipList: "SkipList", MetaCube: "MetaCube"}
	letters := map[Kind]string{Chain: "C", Ring: "R", Tree: "T",
		SkipList: "SL", MetaCube: "MC"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
		if k.Letter() != letters[k] {
			t.Errorf("%d.Letter() = %q", k, k.Letter())
		}
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(packet.WriteReq, false) != PathLong {
		t.Fatal("writes default to the long path")
	}
	if ClassOf(packet.WriteReq, true) != PathShort {
		t.Fatal("shortcut must re-admit writes to skips")
	}
	for _, k := range []packet.Kind{packet.ReadReq, packet.ReadResp, packet.WriteAck} {
		if ClassOf(k, false) != PathShort {
			t.Fatalf("%v should be short-path", k)
		}
	}
}

func TestEdgeIndexConsistency(t *testing.T) {
	g := build(t, Ring, dram(8))
	for _, n := range g.Nodes {
		for p := 0; p < g.Degree(n.ID); p++ {
			e := g.Edges[g.EdgeIndex(n.ID, p)]
			if e != g.EdgeAt(n.ID, p) {
				t.Fatal("EdgeIndex and EdgeAt disagree")
			}
			if e.A != n.ID && e.B != n.ID {
				t.Fatal("edge does not touch node")
			}
		}
	}
}

func TestMeshStructure(t *testing.T) {
	for _, n := range []int{4, 10, 16, 32} {
		g := build(t, Mesh, dram(n))
		if len(g.CubeIDs()) != n {
			t.Fatalf("n=%d: cube count %d", n, len(g.CubeIDs()))
		}
		for _, node := range g.Nodes {
			if node.Kind == Cube && g.Degree(node.ID) > MaxCubePorts {
				t.Fatalf("n=%d: cube %d degree %d", n, node.ID, g.Degree(node.ID))
			}
		}
	}
	// The corner cube carries the host link plus two mesh links.
	g := build(t, Mesh, dram(16))
	if g.Degree(g.CubeIDs()[0]) != 3 {
		t.Fatalf("corner degree %d, want 3", g.Degree(g.CubeIDs()[0]))
	}
}

// TestMeshWorseThanTree verifies the paper's §3 justification for
// excluding the mesh: its average hop count exceeds the tree's.
func TestMeshWorseThanTree(t *testing.T) {
	for _, n := range []int{9, 16, 32} {
		mesh := build(t, Mesh, dram(n))
		tree := build(t, Tree, dram(n))
		if mesh.MeanHostDist() <= tree.MeanHostDist() {
			t.Fatalf("n=%d: mesh mean %.2f <= tree %.2f",
				n, mesh.MeanHostDist(), tree.MeanHostDist())
		}
	}
}

func TestMeshPositionsByDistance(t *testing.T) {
	g := build(t, Mesh, dram(16))
	// Position order must be non-decreasing in host distance.
	byPos := make(map[int]int)
	for _, nd := range g.Nodes {
		if nd.Kind == Cube {
			byPos[nd.Pos] = g.Dist(PathShort, packet.HostNode, nd.ID)
		}
	}
	for p := 1; p < 16; p++ {
		if byPos[p] < byPos[p-1] {
			t.Fatalf("position %d nearer (%d) than position %d (%d)",
				p, byPos[p], p-1, byPos[p-1])
		}
	}
}

func TestMetaCubeGroupOption(t *testing.T) {
	for _, group := range []int{2, 4, 8} {
		g, err := Build(MetaCube, dram(16), WithMetaCubeGroup(group))
		if err != nil {
			t.Fatal(err)
		}
		ifaces := 0
		for _, n := range g.Nodes {
			if n.Kind == Iface {
				ifaces++
			}
			if n.Kind == Cube && g.Degree(n.ID) != 1 {
				t.Fatalf("group=%d: cube degree %d", group, g.Degree(n.ID))
			}
		}
		if want := (16 + group - 1) / group; ifaces != want {
			t.Fatalf("group=%d: ifaces=%d want %d", group, ifaces, want)
		}
	}
	// Larger groups shrink the external network.
	small, _ := Build(MetaCube, dram(16), WithMetaCubeGroup(2))
	big, _ := Build(MetaCube, dram(16), WithMetaCubeGroup(8))
	if big.MeanHostDist() >= small.MeanHostDist() {
		t.Fatalf("group 8 mean %.2f not below group 2 mean %.2f",
			big.MeanHostDist(), small.MeanHostDist())
	}
	if _, err := Build(MetaCube, dram(8), WithMetaCubeGroup(0)); err == nil {
		t.Fatal("zero group must fail")
	}
}
