package topology

import (
	"fmt"

	"memnet/internal/packet"
)

// Partition divides a built graph into k contiguous regions for the
// partitioned parallel engine: each region is a candidate shard, and
// the edges crossing regions are the shard boundaries whose SerDes
// latency becomes the conservative lookahead. Cubes are split by their
// host-proximity order (Node.Pos), so a region is a contiguous run of
// the chain/ring/tree layout rather than an arbitrary scatter — that
// keeps the cut small on every paper topology, since their edges
// overwhelmingly connect position-adjacent cubes.
type Partition struct {
	g     *Graph
	k     int
	shard []int // indexed by NodeID
	cuts  [][]BoundaryEdge
}

// BoundaryEdge is one cut edge as seen from a particular region: Local
// is the endpoint inside the viewing region, Remote the endpoint in the
// other one. Every physical cut edge appears in exactly two Cut views,
// mirrored.
type BoundaryEdge struct {
	// Edge indexes Graph.Edges.
	Edge int
	// Local and Remote are the endpoints on this and the far side.
	Local, Remote packet.NodeID
	// LocalRegion and RemoteRegion are the region indices of the two
	// endpoints (LocalRegion is the region whose Cut produced the view).
	LocalRegion, RemoteRegion int
}

// PartitionRegions splits g into k regions. Cubes are assigned by
// position order into k balanced contiguous ranges; the host joins
// region 0 (it injects at the network root); a MetaCube interface chip
// joins the region of its lowest-position adjacent cube, so an
// interposer cluster never straddles a boundary. k must be in
// [1, number of cubes].
func PartitionRegions(g *Graph, k int) (*Partition, error) {
	cubes := g.CubeIDs()
	if k < 1 || k > len(cubes) {
		return nil, fmt.Errorf("topology: partition count %d outside [1, %d cubes]", k, len(cubes))
	}
	p := &Partition{g: g, k: k, shard: make([]int, len(g.Nodes))}
	for i := range p.shard {
		p.shard[i] = -1
	}
	p.shard[packet.HostNode] = 0
	for i, id := range cubes {
		p.shard[id] = i * k / len(cubes)
	}
	// Interface chips: region of the lowest-Pos adjacent cube; any
	// still-unassigned node (an iface ringed only by ifaces) inherits
	// from an assigned neighbor on a later sweep. The graph is
	// connected, so this terminates.
	for {
		assigned := 0
		remaining := 0
		for _, n := range g.Nodes {
			if p.shard[n.ID] >= 0 {
				continue
			}
			best := -1
			bestPos := -1
			for port := 0; port < g.Degree(n.ID); port++ {
				nb := g.Neighbor(n.ID, port)
				if p.shard[nb] < 0 {
					continue
				}
				pos := g.Nodes[nb].Pos
				if g.Nodes[nb].Kind == Cube && (bestPos < 0 || pos < bestPos) {
					best, bestPos = p.shard[nb], pos
				} else if best < 0 {
					best = p.shard[nb]
				}
			}
			if best >= 0 {
				p.shard[n.ID] = best
				assigned++
			} else {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		if assigned == 0 {
			return nil, fmt.Errorf("topology: partition: %d nodes unreachable from any assigned region", remaining)
		}
	}

	p.cuts = make([][]BoundaryEdge, k)
	for ei, e := range g.Edges {
		sa, sb := p.shard[e.A], p.shard[e.B]
		if sa == sb {
			continue
		}
		p.cuts[sa] = append(p.cuts[sa], BoundaryEdge{
			Edge: ei, Local: e.A, Remote: e.B, LocalRegion: sa, RemoteRegion: sb,
		})
		p.cuts[sb] = append(p.cuts[sb], BoundaryEdge{
			Edge: ei, Local: e.B, Remote: e.A, LocalRegion: sb, RemoteRegion: sa,
		})
	}
	return p, nil
}

// NumRegions reports the region count k.
func (p *Partition) NumRegions() int { return p.k }

// RegionOf reports the region of node n.
func (p *Partition) RegionOf(n packet.NodeID) int { return p.shard[n] }

// Cut returns region s's view of the boundary: one entry per cut edge
// with an endpoint in s, Local on s's side. The slice is ordered by
// edge index and must not be mutated.
func (p *Partition) Cut(s int) []BoundaryEdge { return p.cuts[s] }
