// Package topology builds the memory-network graphs the paper studies —
// chain, ring, ternary tree (Fig. 3), the skip-list topology (Fig. 8),
// and the MetaCube cluster topology (Fig. 9) — and computes their
// shortest-path routing tables.
//
// Routing is class-based: the skip-list differentiates traffic, sending
// reads over the full graph (so they exploit the express "skip" links)
// while write requests are shunted down the central sequential chain
// (§4.2). Each class has its own next-hop and distance tables; for
// topologies without express links the two classes coincide.
//
// Memory cube packages are limited to 4 external links (HMC-like);
// builders enforce this. MetaCube interface chips may exceed it — that
// is precisely the high-radix-router-on-interposer advantage of §4.3.
package topology

import (
	"fmt"
	"sort"

	"memnet/internal/config"
	"memnet/internal/packet"
)

// Kind selects a topology family.
type Kind uint8

const (
	// Chain is a linear daisy-chain of cubes (Fig. 3b).
	Chain Kind = iota
	// Ring closes the chain into a cycle so traffic takes the shorter
	// branch (Fig. 3c).
	Ring
	// Tree is the ternary tree that best exploits the 4 links per cube
	// (Fig. 3d).
	Tree
	// SkipList is the chain plus express skip links of §4.2 (Fig. 8).
	SkipList
	// MetaCube clusters four cubes behind an interface chip on an
	// interposer; interface chips form a ternary tree (§4.3, Fig. 9).
	MetaCube
	// Mesh is a 2D mesh, provided as an extension baseline. The paper
	// excludes it from its evaluation because its average hop count is
	// worse than a tree no matter which cube attaches to the host (§3);
	// building it lets that claim be checked directly.
	Mesh
	// Scenario marks a graph loaded from a declarative scenario file
	// (BuildScenario) whose shape names no built-in family. It is not a
	// buildable kind: Build rejects it and it appears in neither Kinds
	// nor AllKinds. A scenario that declares a "topology" label gets
	// that built-in kind instead, so its runs label identically to the
	// compiled-in topology.
	Scenario
)

// Kinds lists the paper's evaluated topologies in presentation order
// (the experiment harness sweeps exactly these).
var Kinds = []Kind{Chain, Ring, Tree, SkipList, MetaCube}

// AllKinds additionally includes the extension topologies.
var AllKinds = []Kind{Chain, Ring, Tree, SkipList, MetaCube, Mesh}

// String implements fmt.Stringer using the paper's names.
func (k Kind) String() string {
	switch k {
	case Chain:
		return "Chain"
	case Ring:
		return "Ring"
	case Tree:
		return "Tree"
	case SkipList:
		return "SkipList"
	case MetaCube:
		return "MetaCube"
	case Mesh:
		return "Mesh"
	case Scenario:
		return "Scenario"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Letter returns the paper's single-letter (or short) suffix for
// configuration labels, e.g. "C" in "50%-C (NVM-L)".
func (k Kind) Letter() string {
	switch k {
	case Chain:
		return "C"
	case Ring:
		return "R"
	case Tree:
		return "T"
	case SkipList:
		return "SL"
	case MetaCube:
		return "MC"
	case Mesh:
		return "M"
	case Scenario:
		return "SC"
	default:
		return "?"
	}
}

// NodeKind classifies graph nodes.
type NodeKind uint8

const (
	// Host is the processor memory port (always node 0).
	Host NodeKind = iota
	// Cube is a memory cube holding DRAM or NVM.
	Cube
	// Iface is a MetaCube interface chip: a router with no memory.
	Iface
)

// PathClass selects a routing table.
type PathClass uint8

const (
	// PathShort routes over every link (shortest paths; reads).
	PathShort PathClass = iota
	// PathLong routes over non-express links only (the central chain;
	// write requests in a skip list).
	PathLong
	// NumClasses is the routing-table count.
	NumClasses
)

// ClassOf returns the routing class for a packet kind given whether
// write-shortcutting (the §5.3 hysteresis mechanism) is currently
// engaged.
func ClassOf(k packet.Kind, writeShortcut bool) PathClass {
	if k == packet.WriteReq && !writeShortcut {
		return PathLong
	}
	return PathShort
}

// Node is one vertex of the network graph.
type Node struct {
	ID   packet.NodeID
	Kind NodeKind
	Tech config.MemTech // meaningful only for Kind==Cube
	// Pos is the cube's position in the host-proximity ordering used for
	// NVM placement (0 = nearest). -1 for non-cubes.
	Pos int
}

// Edge is an undirected physical link.
type Edge struct {
	A, B packet.NodeID
	// Express marks a skip link: excluded from the PathLong graph.
	Express bool
	// Interposer marks a MetaCube-internal interposer trace (wider,
	// lower latency than a package-to-package SerDes link).
	Interposer bool
}

// half is one directed half of an edge as seen from a node.
type half struct {
	to   packet.NodeID
	edge int // index into Graph.Edges
}

// MaxCubePorts is the external-link budget of a memory cube package.
const MaxCubePorts = 4

// Graph is an immutable built topology with routing tables.
type Graph struct {
	Kind  Kind
	Nodes []Node
	Edges []Edge

	adj [][]half
	// next[class][node][dst] = port index into adj[node], or -1.
	next [NumClasses][][]int8
	// dist[class][node][dst] = hop count, or -1 if unreachable.
	dist [NumClasses][][]int16

	// deadEdge/deadNode are the fault masks of a degraded graph built by
	// Disable (nil on a healthy graph). Unlike RemoveEdge, they leave
	// Nodes, Edges, and adjacency — and therefore every port index —
	// untouched, so a live, already-wired network can swap its routing
	// tables without rewiring.
	deadEdge []bool
	deadNode []bool
}

// NumNodes reports the node count including the host.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// CubeIDs returns the IDs of all memory-holding cubes in position order.
func (g *Graph) CubeIDs() []packet.NodeID {
	ids := make([]packet.NodeID, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == Cube {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Degree reports the number of links at node n.
func (g *Graph) Degree(n packet.NodeID) int { return len(g.adj[n]) }

// Neighbor reports the node reached through the given port of n.
func (g *Graph) Neighbor(n packet.NodeID, port int) packet.NodeID {
	return g.adj[n][port].to
}

// EdgeAt returns the edge behind the given port of n.
func (g *Graph) EdgeAt(n packet.NodeID, port int) Edge {
	return g.Edges[g.adj[n][port].edge]
}

// EdgeIndex returns the index into Edges of the link behind the given
// port of n.
func (g *Graph) EdgeIndex(n packet.NodeID, port int) int {
	return g.adj[n][port].edge
}

// NextPort returns the output port at node n toward dst for the given
// class, or -1 when n == dst or dst is unreachable in that class.
func (g *Graph) NextPort(class PathClass, n, dst packet.NodeID) int {
	return int(g.next[class][n][dst])
}

// DeadEdge reports whether edge ei has been failed by Disable.
func (g *Graph) DeadEdge(ei int) bool { return g.deadEdge != nil && g.deadEdge[ei] }

// DeadNode reports whether node n has been fully failed by Disable.
func (g *Graph) DeadNode(n packet.NodeID) bool { return g.deadNode != nil && g.deadNode[n] }

// EdgeBetween returns the index of the edge connecting a and b, or -1.
func (g *Graph) EdgeBetween(a, b packet.NodeID) int {
	for ei, e := range g.Edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			return ei
		}
	}
	return -1
}

// Dist returns the hop distance between a and b in the given class, or
// -1 if disconnected.
func (g *Graph) Dist(class PathClass, a, b packet.NodeID) int {
	return int(g.dist[class][a][b])
}

// builder accumulates nodes and edges during construction.
type builder struct {
	kind  Kind
	nodes []Node
	edges []Edge
	deg   []int
}

func newBuilder(kind Kind) *builder {
	b := &builder{kind: kind}
	b.nodes = append(b.nodes, Node{ID: packet.HostNode, Kind: Host, Pos: -1})
	b.deg = append(b.deg, 0)
	return b
}

func (b *builder) addNode(kind NodeKind, tech config.MemTech, pos int) packet.NodeID {
	id := packet.NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Kind: kind, Tech: tech, Pos: pos})
	b.deg = append(b.deg, 0)
	return id
}

func (b *builder) link(a, c packet.NodeID, express, interposer bool) {
	b.edges = append(b.edges, Edge{A: a, B: c, Express: express, Interposer: interposer})
	b.deg[a]++
	b.deg[c]++
}

// spare reports whether node n, a cube, can take another external link.
func (b *builder) spare(n packet.NodeID) bool {
	return b.deg[n] < MaxCubePorts
}

// Option adjusts topology construction.
type Option func(*buildOpts)

type buildOpts struct {
	metaGroup int
}

// WithMetaCubeGroup sets how many cubes share a MetaCube package
// (default 4). The paper notes the interposer size bounds this (§4.3);
// larger groups trade packaging cost for even fewer external hops.
func WithMetaCubeGroup(n int) Option {
	return func(o *buildOpts) { o.metaGroup = n }
}

// Build constructs the topology of the given kind over the given ordered
// cube technologies (index 0 is the position nearest the host; NVM-F/L
// placement is expressed by the caller through this ordering).
func Build(kind Kind, techs []config.MemTech, opts ...Option) (*Graph, error) {
	if len(techs) == 0 {
		return nil, fmt.Errorf("topology: no cubes")
	}
	bo := buildOpts{metaGroup: 4}
	for _, o := range opts {
		o(&bo)
	}
	if bo.metaGroup <= 0 {
		return nil, fmt.Errorf("topology: non-positive MetaCube group %d", bo.metaGroup)
	}
	b := newBuilder(kind)
	switch kind {
	case Chain:
		b.buildChain(techs)
	case Ring:
		b.buildRing(techs)
	case Tree:
		b.buildTree(techs)
	case SkipList:
		b.buildSkipList(techs)
	case MetaCube:
		b.buildMetaCube(techs, bo.metaGroup)
	case Mesh:
		b.buildMesh(techs)
	default:
		return nil, fmt.Errorf("topology: unknown kind %v", kind)
	}
	return b.finish()
}

// buildChain: host - c0 - c1 - ... - cn-1.
func (b *builder) buildChain(techs []config.MemTech) {
	prev := packet.HostNode
	for i, t := range techs {
		c := b.addNode(Cube, t, i)
		b.link(prev, c, false, false)
		prev = c
	}
}

// buildRing: the cubes form a cycle; the host attaches to one cube,
// which therefore uses three of its four ports. Because traffic takes
// the shorter branch, positions in the host-proximity ordering zigzag
// around the cycle (position 0 at the host slot, positions 1 and 2 at
// its two ring neighbors, and so on), so that "NVM last" really places
// NVM at the far side of the ring. A single cube degenerates to a chain
// of one.
func (b *builder) buildRing(techs []config.MemTech) {
	n := len(techs)
	// slotTech[s] is the technology at ring slot s (slot 0 touches the
	// host; walking distance grows as min(s, n-s)).
	slotTech := make([]config.MemTech, n)
	slotPos := make([]int, n)
	lo, hi := 0, n-1
	for pos, t := range techs {
		var s int
		if pos%2 == 0 {
			s = lo
			lo++
		} else {
			s = hi
			hi--
		}
		slotTech[s] = t
		slotPos[s] = pos
	}
	ids := make([]packet.NodeID, n)
	for s := 0; s < n; s++ {
		ids[s] = b.addNode(Cube, slotTech[s], slotPos[s])
	}
	b.link(packet.HostNode, ids[0], false, false)
	for s := 0; s+1 < n; s++ {
		b.link(ids[s], ids[s+1], false, false)
	}
	if n > 2 {
		b.link(ids[n-1], ids[0], false, false)
	}
}

// buildTree: a ternary tree in breadth-first position order, so that
// earlier positions (where NVM-F places NVM) are nearer the host. Each
// cube spends one port on its parent and up to three on children.
func (b *builder) buildTree(techs []config.MemTech) {
	ids := make([]packet.NodeID, len(techs))
	for i, t := range techs {
		ids[i] = b.addNode(Cube, t, i)
	}
	b.link(packet.HostNode, ids[0], false, false)
	// BFS fill: node i's children are 3i+1, 3i+2, 3i+3.
	for i := range ids {
		for c := 3*i + 1; c <= 3*i+3 && c < len(ids); c++ {
			b.link(ids[i], ids[c], false, false)
		}
	}
}

// buildSkipList: a central sequential chain plus recursively halving
// express links, constrained by the 4-port budget. The construction
// reproduces Fig. 8 for 16 cubes: skips 1->9 (stride 8), 9->13, 1->5
// (stride 4), 13->15, 5->7 (stride 2); the farthest cube is then 5 hops
// from the host (strides 8, 4, 2, 1 after the host link).
func (b *builder) buildSkipList(techs []config.MemTech) {
	n := len(techs)
	ids := make([]packet.NodeID, n)
	for i, t := range techs {
		ids[i] = b.addNode(Cube, t, i)
	}
	b.link(packet.HostNode, ids[0], false, false)
	for i := 0; i+1 < n; i++ {
		b.link(ids[i], ids[i+1], false, false)
	}
	// Largest power-of-two stride no greater than half the list.
	maxStride := 1
	for maxStride*2 <= n/2 {
		maxStride *= 2
	}
	var addSkips func(from, stride int)
	addSkips = func(from, stride int) {
		for s := stride; s >= 2; s /= 2 {
			to := from + s
			if to >= n {
				continue
			}
			if !b.spare(ids[from]) || !b.spare(ids[to]) {
				continue
			}
			b.link(ids[from], ids[to], true, false)
			addSkips(to, s)
		}
	}
	if n >= 3 {
		addSkips(0, maxStride)
	}
}

// buildMetaCube: cubes are grouped four-per-package behind an interface
// chip (a memoryless router) connected by interposer traces; the
// interface chips form a ternary tree toward the host. Groups are filled
// in position order so NVM placement carries through.
func (b *builder) buildMetaCube(techs []config.MemTech, group int) {
	nGroups := (len(techs) + group - 1) / group
	ifaces := make([]packet.NodeID, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		ifaces[gi] = b.addNode(Iface, config.DRAM, -1)
	}
	b.link(packet.HostNode, ifaces[0], false, false)
	for gi := range ifaces {
		for c := 3*gi + 1; c <= 3*gi+3 && c < len(ifaces); c++ {
			b.link(ifaces[gi], ifaces[c], false, false)
		}
	}
	for i, t := range techs {
		cube := b.addNode(Cube, t, i)
		b.link(ifaces[i/group], cube, false, true)
	}
}

// buildMesh: a near-square 2D mesh with the host attached at the (0,0)
// corner (which therefore has two mesh links plus the host link).
// Positions in the host-proximity ordering are assigned by increasing
// Manhattan distance from the corner, so NVM placement behaves as in the
// other topologies. The trailing cells of a non-rectangular count are
// simply absent (a ragged last row).
func (b *builder) buildMesh(techs []config.MemTech) {
	n := len(techs)
	// Choose the widest W <= sqrt(n) that keeps the grid near-square.
	w := 1
	for (w+1)*(w+1) <= n {
		w++
	}
	h := (n + w - 1) / w

	// Enumerate grid cells (x,y), y-major rows, ragged tail allowed.
	type cell struct{ x, y int }
	cells := make([]cell, 0, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w && len(cells) < n; x++ {
			cells = append(cells, cell{x, y})
		}
	}
	// Assign positions by Manhattan distance from the host corner,
	// breaking ties row-major (stable order for determinism).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, c := cells[order[i]], cells[order[j]]
		return a.x+a.y < c.x+c.y
	})
	ids := make([]packet.NodeID, n)
	for pos, ci := range order {
		ids[ci] = b.addNode(Cube, techs[pos], pos)
	}
	idAt := func(x, y int) (packet.NodeID, bool) {
		if x < 0 || y < 0 || x >= w || y >= h {
			return 0, false
		}
		i := y*w + x
		if i >= n {
			return 0, false
		}
		return ids[i], true
	}
	b.link(packet.HostNode, ids[0], false, false)
	for i, c := range cells {
		if right, ok := idAt(c.x+1, c.y); ok {
			b.link(ids[i], right, false, false)
		}
		if down, ok := idAt(c.x, c.y+1); ok {
			b.link(ids[i], down, false, false)
		}
	}
}

// finish validates port budgets, builds adjacency, and computes the
// per-class routing tables.
func (b *builder) finish() (*Graph, error) {
	g := &Graph{Kind: b.kind, Nodes: b.nodes, Edges: b.edges}
	if err := g.rebuild(); err != nil {
		return nil, err
	}
	for _, n := range g.Nodes {
		d := len(g.adj[n.ID])
		switch n.Kind {
		case Cube:
			if d > MaxCubePorts {
				return nil, fmt.Errorf(
					"topology: cube %d exceeds %d ports (%d)", n.ID, MaxCubePorts, d)
			}
		case Host:
			if d != 1 {
				return nil, fmt.Errorf("topology: host must have exactly 1 link, has %d", d)
			}
		}
	}
	return g, nil
}

// rebuild recomputes adjacency and routing tables from Nodes/Edges.
func (g *Graph) rebuild() error {
	g.adj = make([][]half, len(g.Nodes))
	for ei, e := range g.Edges {
		g.adj[e.A] = append(g.adj[e.A], half{to: e.B, edge: ei})
		g.adj[e.B] = append(g.adj[e.B], half{to: e.A, edge: ei})
	}
	for class := PathClass(0); class < NumClasses; class++ {
		next, dist, err := g.routes(class)
		if err != nil {
			return err
		}
		g.next[class] = next
		g.dist[class] = dist
	}
	// Degraded-mode fallback: if a pair is unreachable on the restricted
	// write-path graph (e.g. the central chain of a skip list lost a
	// link), writes fall back to the shortest-path table rather than
	// stranding (the RAS behavior footnote 3 of the paper gestures at).
	for n := range g.Nodes {
		for d := range g.Nodes {
			if g.next[PathLong][n][d] < 0 && n != d {
				g.next[PathLong][n][d] = g.next[PathShort][n][d]
				g.dist[PathLong][n][d] = g.dist[PathShort][n][d]
			}
		}
	}
	return nil
}

// Disable returns a copy of the graph with the given edges and nodes
// marked dead and every routing table recomputed around them, layered on
// top of any faults the receiver already carries. Nodes, Edges, and
// adjacency are shared untouched, so port indices stay valid for a
// network that is already wired — this is the route-around primitive for
// runtime faults, where RemoveEdge (which reindexes) only suits
// build-time what-ifs.
//
// A dead node is a "zombie" in the tables: it keeps next-hops of its own
// (packets queued there when it died can escape) and remains a reachable
// destination (in-flight packets are bounced at its router), but no
// route transits it. Disable errors if any live node becomes unreachable
// from the host — chains and trees have no redundancy to route around;
// rings, skip lists, and meshes do.
func (g *Graph) Disable(deadEdges []int, deadNodes []packet.NodeID) (*Graph, error) {
	ng := &Graph{Kind: g.Kind, Nodes: g.Nodes, Edges: g.Edges}
	ng.deadEdge = make([]bool, len(g.Edges))
	ng.deadNode = make([]bool, len(g.Nodes))
	copy(ng.deadEdge, g.deadEdge)
	copy(ng.deadNode, g.deadNode)
	for _, ei := range deadEdges {
		if ei < 0 || ei >= len(g.Edges) {
			return nil, fmt.Errorf("topology: no edge %d", ei)
		}
		ng.deadEdge[ei] = true
	}
	for _, n := range deadNodes {
		if int(n) <= int(packet.HostNode) || int(n) >= len(g.Nodes) {
			return nil, fmt.Errorf("topology: cannot fail node %d", n)
		}
		ng.deadNode[n] = true
	}
	if err := ng.rebuild(); err != nil {
		return nil, fmt.Errorf("topology: fault disconnects the network: %w", err)
	}
	return ng, nil
}

// Enable is Disable's mirror: it returns a copy of the graph with the
// given edges and nodes returned to service and every routing table
// recomputed — the route-back primitive for runtime repairs. Nodes,
// Edges, and adjacency are shared untouched, so port indices stay
// valid across the swap. Enabling a target that is not currently dead
// is an error (it would mask a schedule bug). When the last fault is
// healed the dead masks are dropped entirely, so a fully repaired
// graph computes route tables identical to the pristine build —
// traffic returns to the exact pre-fault paths.
func (g *Graph) Enable(edges []int, nodes []packet.NodeID) (*Graph, error) {
	ng := &Graph{Kind: g.Kind, Nodes: g.Nodes, Edges: g.Edges}
	ng.deadEdge = make([]bool, len(g.Edges))
	ng.deadNode = make([]bool, len(g.Nodes))
	copy(ng.deadEdge, g.deadEdge)
	copy(ng.deadNode, g.deadNode)
	for _, ei := range edges {
		if ei < 0 || ei >= len(g.Edges) {
			return nil, fmt.Errorf("topology: no edge %d", ei)
		}
		if !ng.deadEdge[ei] {
			return nil, fmt.Errorf("topology: cannot repair edge %d: not dead", ei)
		}
		ng.deadEdge[ei] = false
	}
	for _, n := range nodes {
		if int(n) <= int(packet.HostNode) || int(n) >= len(g.Nodes) {
			return nil, fmt.Errorf("topology: cannot repair node %d", n)
		}
		if !ng.deadNode[n] {
			return nil, fmt.Errorf("topology: cannot repair node %d: not dead", n)
		}
		ng.deadNode[n] = false
	}
	anyDead := false
	for _, d := range ng.deadEdge {
		anyDead = anyDead || d
	}
	for _, d := range ng.deadNode {
		anyDead = anyDead || d
	}
	if !anyDead {
		ng.deadEdge, ng.deadNode = nil, nil
	}
	if err := ng.rebuild(); err != nil {
		return nil, fmt.Errorf("topology: repair left the network inconsistent: %w", err)
	}
	return ng, nil
}

// RemoveEdge returns a copy of the graph with edge ei failed (removed)
// and routes recomputed. It errors if the network would disconnect —
// chains and trees have no redundancy; rings, skip lists, and meshes
// reroute.
func (g *Graph) RemoveEdge(ei int) (*Graph, error) {
	if ei < 0 || ei >= len(g.Edges) {
		return nil, fmt.Errorf("topology: no edge %d", ei)
	}
	ng := &Graph{Kind: g.Kind}
	ng.Nodes = append([]Node(nil), g.Nodes...)
	ng.Edges = append([]Edge(nil), g.Edges[:ei]...)
	ng.Edges = append(ng.Edges, g.Edges[ei+1:]...)
	if err := ng.rebuild(); err != nil {
		return nil, fmt.Errorf("topology: removing link %d-%d disconnects the network: %w",
			g.Edges[ei].A, g.Edges[ei].B, err)
	}
	return ng, nil
}

// routes computes next-hop and distance tables for one class with BFS
// from every destination. Express edges are excluded from PathLong. Ties
// break toward the lowest port index, which is deterministic.
func (g *Graph) routes(class PathClass) ([][]int8, [][]int16, error) {
	n := len(g.Nodes)
	next := make([][]int8, n)
	dist := make([][]int16, n)
	for i := range next {
		next[i] = make([]int8, n)
		dist[i] = make([]int16, n)
		for j := range next[i] {
			next[i][j] = -1
			dist[i][j] = -1
		}
	}
	usable := func(ei int) bool {
		if g.deadEdge != nil && g.deadEdge[ei] {
			return false
		}
		return class == PathShort || !g.Edges[ei].Express
	}
	queue := make([]packet.NodeID, 0, n)
	for dst := 0; dst < n; dst++ {
		d := packet.NodeID(dst)
		dist[dst][dst] = 0
		queue = queue[:0]
		queue = append(queue, d)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for port, h := range g.adj[u] {
				if !usable(h.edge) {
					continue
				}
				v := h.to
				if dist[v][dst] != -1 {
					continue
				}
				dist[v][dst] = dist[u][dst] + 1
				// From v, the port leading back to u is the next hop
				// toward dst.
				for vp, vh := range g.adj[v] {
					if vh.to == u && usable(vh.edge) {
						next[v][dst] = int8(vp)
						break
					}
				}
				// A dead node gets next-hops of its own (the zombie escape
				// rule) but is never expanded, so no path transits it.
				if g.deadNode == nil || !g.deadNode[v] {
					queue = append(queue, v)
				}
				_ = port
			}
		}
	}
	// The full graph (PathShort) must connect every live node; the
	// restricted write-path graph may have holes, which rebuild patches
	// with shortest-path fallbacks.
	if class == PathShort {
		for _, a := range g.Nodes {
			if g.deadNode != nil && g.deadNode[a.ID] {
				continue
			}
			if dist[packet.HostNode][a.ID] < 0 {
				return nil, nil, fmt.Errorf("topology: node %d unreachable from host",
					a.ID)
			}
		}
	}
	return next, dist, nil
}

// MaxHostDist returns the largest host-to-cube hop count in PathShort —
// the network diameter figure the paper quotes (e.g. 5 for the 16-cube
// skip list).
func (g *Graph) MaxHostDist() int {
	max := 0
	for _, id := range g.CubeIDs() {
		if d := g.Dist(PathShort, packet.HostNode, id); d > max {
			max = d
		}
	}
	return max
}

// MeanHostDist returns the average host-to-cube shortest-path hop count.
func (g *Graph) MeanHostDist() float64 {
	ids := g.CubeIDs()
	if len(ids) == 0 {
		return 0
	}
	sum := 0
	for _, id := range ids {
		sum += g.Dist(PathShort, packet.HostNode, id)
	}
	return float64(sum) / float64(len(ids))
}
