package topology

import (
	"fmt"
	"strings"

	"memnet/internal/config"
	"memnet/internal/packet"
	"memnet/internal/scenario"
)

// This file bridges the declarative scenario format to built graphs in
// both directions: BuildScenario turns a validated spec into a *Graph
// (including irregular shapes no built-in kind expresses), and
// ExportScenario renders any built graph as a spec, which the
// round-trip goldens use to prove the format is complete — an exported
// built-in topology must simulate byte-identically to the compiled one.

// KindName returns the canonical lowercase scenario/CLI label for a
// buildable kind ("chain", "skiplist", ...).
func KindName(k Kind) string { return strings.ToLower(k.String()) }

// KindNames returns the canonical labels of every buildable kind, in
// AllKinds order. CLI -topology usage strings and the scenario
// "topology" field accept exactly these.
func KindNames() []string {
	names := make([]string, len(AllKinds))
	for i, k := range AllKinds {
		names[i] = KindName(k)
	}
	return names
}

// ParseKind resolves a topology label (any case) to its Kind.
func ParseKind(label string) (Kind, error) {
	want := strings.ToLower(label)
	for _, k := range AllKinds {
		if want == KindName(k) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown topology %q (%s)",
		label, strings.Join(KindNames(), " | "))
}

// ScenarioKind resolves the kind a scenario run reports: the declared
// built-in kind when the spec names one, Scenario otherwise.
func ScenarioKind(s *scenario.Spec) (Kind, error) {
	if s.Topology == "" {
		return Scenario, nil
	}
	k, err := ParseKind(s.Topology)
	if err != nil {
		return 0, fmt.Errorf("scenario: topology: %w", err)
	}
	return k, nil
}

// BuildScenario constructs the declared component graph. The spec is
// normalized in place (defaults materialized) first; link order fixes
// port numbering and edge indices exactly as the declaration order,
// matching the compiled-in builders' convention.
func BuildScenario(s *scenario.Spec) (*Graph, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	kind, err := ScenarioKind(s)
	if err != nil {
		return nil, err
	}
	b := newBuilder(kind)
	for _, n := range s.Nodes {
		if n.Kind == "iface" {
			b.addNode(Iface, config.DRAM, -1)
			continue
		}
		tech := config.DRAM
		if n.Tech == "nvm" {
			tech = config.NVM
		}
		b.addNode(Cube, tech, *n.Pos)
	}
	for i, l := range s.Links {
		a, ok := s.NodeID(l.A)
		if !ok {
			return nil, fmt.Errorf("scenario: links[%d].a: unknown node %q", i, l.A)
		}
		c, ok := s.NodeID(l.B)
		if !ok {
			return nil, fmt.Errorf("scenario: links[%d].b: unknown node %q", i, l.B)
		}
		b.link(packet.NodeID(a), packet.NodeID(c), l.Express, l.Interposer)
	}
	g, err := b.finish()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return g, nil
}

// ExportScenario renders a built graph as a scenario spec named name.
// Only structure is emitted — node kinds, technologies, positions, and
// edge flags — never per-link overrides, so a run of the export
// inherits the same system-wide defaults as the compiled topology and
// reproduces it byte-for-byte. Cubes export as "c<ID>", interface
// chips as "if<ID>".
func ExportScenario(g *Graph, name string) *scenario.Spec {
	s := &scenario.Spec{Schema: scenario.Schema, Name: name}
	for _, k := range AllKinds {
		if g.Kind == k {
			s.Topology = KindName(k)
		}
	}
	if s.Name == "" {
		base := s.Topology
		if base == "" {
			base = "scenario"
		}
		s.Name = fmt.Sprintf("%s-%d", base, len(g.Nodes)-1)
	}
	nodeName := func(id packet.NodeID) string {
		if id == packet.HostNode {
			return scenario.HostName
		}
		if g.Nodes[id].Kind == Iface {
			return fmt.Sprintf("if%d", id)
		}
		return fmt.Sprintf("c%d", id)
	}
	for _, n := range g.Nodes[1:] {
		ns := scenario.Node{Name: nodeName(n.ID)}
		if n.Kind == Iface {
			ns.Kind = "iface"
		} else {
			ns.Kind = "cube"
			ns.Tech = "dram"
			if n.Tech == config.NVM {
				ns.Tech = "nvm"
			}
			pos := n.Pos
			ns.Pos = &pos
		}
		s.Nodes = append(s.Nodes, ns)
	}
	for _, e := range g.Edges {
		s.Links = append(s.Links, scenario.Link{
			A: nodeName(e.A), B: nodeName(e.B),
			Express: e.Express, Interposer: e.Interposer,
		})
	}
	return s
}
