package fnv

import (
	"hash/fnv"
	"math"
	"testing"
)

// TestMatchesStdlib pins the byte-folding to the standard library's
// FNV-1a 64: the idiom must stay the real FNV, not a lookalike.
func TestMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "memnet", "There and Back Again"} {
		std := fnv.New64a()
		std.Write([]byte(s))
		h := New()
		for i := 0; i < len(s); i++ {
			h = h.Byte(s[i])
		}
		if h.Sum() != std.Sum64() {
			t.Errorf("Byte folding of %q = %#x, stdlib fnv-1a = %#x", s, h.Sum(), std.Sum64())
		}
	}
}

// TestLengthPrefix checks that adjacent strings cannot alias.
func TestLengthPrefix(t *testing.T) {
	a := New().Str("ab").Str("c").Sum()
	b := New().Str("a").Str("bc").Sum()
	if a == b {
		t.Fatalf("Str aliasing: %#x == %#x", a, b)
	}
}

// TestSensitivity checks every writer changes the sum.
func TestSensitivity(t *testing.T) {
	base := New().U64(1).I64(-2).Int(3).F64(0.5).Bool(true).Str("x").Sum()
	alts := []Hash{
		New().U64(2).I64(-2).Int(3).F64(0.5).Bool(true).Str("x"),
		New().U64(1).I64(2).Int(3).F64(0.5).Bool(true).Str("x"),
		New().U64(1).I64(-2).Int(4).F64(0.5).Bool(true).Str("x"),
		New().U64(1).I64(-2).Int(3).F64(0.25).Bool(true).Str("x"),
		New().U64(1).I64(-2).Int(3).F64(0.5).Bool(false).Str("x"),
		New().U64(1).I64(-2).Int(3).F64(0.5).Bool(true).Str("y"),
	}
	for i, h := range alts {
		if h.Sum() == base {
			t.Errorf("alternative %d collides with base %#x", i, base)
		}
	}
}

// TestNaNCanonical checks all NaN bit patterns hash alike.
func TestNaNCanonical(t *testing.T) {
	nan1 := math.NaN()
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1)
	if New().F64(nan1).Sum() != New().F64(nan2).Sum() {
		t.Fatal("NaN payloads hash differently")
	}
}
