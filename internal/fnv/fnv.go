// Package fnv is the repo's shared FNV-1a 64-bit hashing idiom: a
// value-type, allocation-free, chainable hasher used wherever a
// deterministic content fingerprint is needed — the migration
// indirection-table fingerprint (internal/migrate) and the campaign
// result-cache's canonical config encoding (internal/campaign).
//
// The standard library's hash/fnv forces a heap allocation and a
// []byte round trip per write; this package folds words directly:
//
//	h := fnv.New().Str("topo").U64(3).F64(0.5)
//	fp := h.Sum()
//
// Every input is folded byte-for-byte in a fixed order, so a sum is a
// pure function of the written sequence — stable across processes,
// platforms, and Go versions.
package fnv

import "math"

// Offset64 and Prime64 are the FNV-1a 64-bit constants.
const (
	Offset64 = 14695981039346656037
	Prime64  = 1099511628211
)

// Hash is an in-progress FNV-1a 64-bit hash. The zero value is NOT a
// valid initial state; start from New.
type Hash uint64

// New returns the FNV-1a initial state.
func New() Hash { return Offset64 }

// Sum returns the current hash value.
func (h Hash) Sum() uint64 { return uint64(h) }

// Byte folds one byte.
func (h Hash) Byte(b byte) Hash {
	return (h ^ Hash(b)) * Prime64
}

// U64 folds a uint64, little-endian byte order.
func (h Hash) U64(v uint64) Hash {
	for i := 0; i < 8; i++ {
		h = h.Byte(byte(v >> (8 * i)))
	}
	return h
}

// I64 folds an int64 via its two's-complement bit pattern.
func (h Hash) I64(v int64) Hash { return h.U64(uint64(v)) }

// Int folds an int.
func (h Hash) Int(v int) Hash { return h.I64(int64(v)) }

// F64 folds a float64 via its IEEE-754 bit pattern. NaNs are
// canonicalized so equal-comparing values hash equally.
func (h Hash) F64(v float64) Hash {
	if v != v {
		return h.U64(math.Float64bits(math.NaN()))
	}
	return h.U64(math.Float64bits(v))
}

// Bool folds a boolean as one byte.
func (h Hash) Bool(v bool) Hash {
	if v {
		return h.Byte(1)
	}
	return h.Byte(0)
}

// Str folds a string's bytes, prefixed with its length so that
// consecutive strings cannot alias ("ab","c" vs "a","bc").
func (h Hash) Str(s string) Hash {
	h = h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h = h.Byte(s[i])
	}
	return h
}

// Bytes folds a byte slice, length-prefixed like Str.
func (h Hash) Bytes(b []byte) Hash {
	h = h.Int(len(b))
	for _, c := range b {
		h = h.Byte(c)
	}
	return h
}
