package migrate

import (
	"testing"

	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/sim"
)

// fixedTech maps physical addresses below split to DRAM and the rest to
// NVM, emulating a placement where the low region is fast.
func fixedTech(split uint64) func(uint64) config.MemTech {
	return func(a uint64) config.MemTech {
		if a < split {
			return config.DRAM
		}
		return config.NVM
	}
}

func newTestManager(t *testing.T) (*sim.Engine, *Manager, *energy.Meter) {
	t.Helper()
	eng := sim.NewEngine()
	meter := energy.NewMeter(config.Default().Energy)
	cfg := Config{
		Epoch:            1 * sim.Microsecond,
		HotThreshold:     3,
		MaxSwapsPerEpoch: 8,
		BlockBytes:       256,
		Blackout:         200 * sim.Nanosecond,
	}
	m := New(eng, cfg, fixedTech(1<<20), meter)
	return eng, m, meter
}

func TestIdentityBeforeMigration(t *testing.T) {
	_, m, _ := newTestManager(t)
	for _, a := range []uint64{0, 255, 1 << 21, 1<<21 + 100} {
		if m.Translate(a) != a {
			t.Fatalf("fresh manager translated %#x", a)
		}
	}
	if m.ReadyAt(0) != 0 {
		t.Fatal("fresh blocks must be ready")
	}
}

func TestHotNVMBlockMigrates(t *testing.T) {
	eng, m, meter := newTestManager(t)
	hot := uint64(1<<21 + 512) // NVM-resident block
	cold := uint64(4096)       // DRAM-resident block
	// One access makes the cold DRAM block a victim candidate; repeated
	// accesses make the NVM block hot.
	m.Observe(cold)
	for i := 0; i < 5; i++ {
		m.Observe(hot)
	}
	eng.RunUntil(1100 * sim.Nanosecond) // cross the epoch boundary

	if m.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", m.Stats().Swaps)
	}
	// The hot block now resolves into the DRAM region and vice versa.
	hotBlk := hot &^ 255
	coldBlk := cold &^ 255
	if got := m.Translate(hotBlk); got != coldBlk {
		t.Fatalf("hot block maps to %#x, want %#x", got, coldBlk)
	}
	if got := m.Translate(coldBlk); got != hotBlk {
		t.Fatalf("cold block maps to %#x, want %#x", got, hotBlk)
	}
	// Offsets within the block are preserved.
	if got := m.Translate(hot); got != coldBlk+512-256 && got != coldBlk+(hot-hotBlk) {
		t.Fatalf("offset not preserved: %#x", got)
	}
	// Both blocks are blacked out until the copy drains.
	if m.ReadyAt(hot) == 0 || m.ReadyAt(cold) == 0 {
		t.Fatal("swapped blocks should be blacked out")
	}
	// Copy energy was charged (2 reads + 2 writes of one block).
	if meter.Report().TotalPJ() == 0 {
		t.Fatal("no copy energy charged")
	}
	if m.RemapSize() != 2 {
		t.Fatalf("remap size %d, want 2", m.RemapSize())
	}
}

func TestColdNVMBlockStays(t *testing.T) {
	eng, m, _ := newTestManager(t)
	m.Observe(4096) // victim candidate
	m.Observe(1 << 21)
	m.Observe(1 << 21) // only 2 accesses: below threshold
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.Stats().Swaps != 0 {
		t.Fatal("cold block migrated")
	}
}

func TestHotDRAMBlockStays(t *testing.T) {
	eng, m, _ := newTestManager(t)
	for i := 0; i < 10; i++ {
		m.Observe(0) // hot but already on DRAM
	}
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.Stats().Swaps != 0 {
		t.Fatal("DRAM-resident block migrated")
	}
}

func TestHotVictimIsSpared(t *testing.T) {
	eng, m, _ := newTestManager(t)
	victim := uint64(4096)
	m.Observe(victim)
	for i := 0; i < 5; i++ {
		m.Observe(victim) // the candidate gets hot itself
		m.Observe(1 << 21)
	}
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.Translate(victim) != victim {
		t.Fatal("hot DRAM block was evicted")
	}
}

func TestBlackoutExpires(t *testing.T) {
	eng, m, _ := newTestManager(t)
	m.Observe(4096)
	for i := 0; i < 5; i++ {
		m.Observe(1 << 21)
	}
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.ReadyAt(1<<21) == 0 {
		t.Fatal("expected blackout")
	}
	eng.RunUntil(1500 * sim.Nanosecond)
	if m.ReadyAt(1<<21) != 0 {
		t.Fatal("blackout should have expired")
	}
}

func TestSwapBudget(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{
		Epoch: sim.Microsecond, HotThreshold: 2,
		MaxSwapsPerEpoch: 3, BlockBytes: 256, Blackout: 100,
	}
	m := New(eng, cfg, fixedTech(1<<20), nil)
	// 8 hot NVM blocks, 8 victims; only 3 may move.
	for i := 0; i < 8; i++ {
		m.Observe(uint64(i) * 256) // victims
		hot := uint64(1<<21) + uint64(i)*256
		for j := 0; j < 3; j++ {
			m.Observe(hot)
		}
	}
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.Stats().Swaps != 3 {
		t.Fatalf("swaps = %d, want 3 (budget)", m.Stats().Swaps)
	}
}

func TestEpochsRearm(t *testing.T) {
	eng, m, _ := newTestManager(t)
	eng.RunUntil(5500 * sim.Nanosecond)
	if m.Stats().Epochs != 5 {
		t.Fatalf("epochs = %d, want 5", m.Stats().Epochs)
	}
}

// TestSwapChainsStayBijective forces chained swaps (A<->B then B<->C)
// and checks the table remains a permutation: no aliasing, no leaks.
func TestSwapChainsStayBijective(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{
		Epoch: sim.Microsecond, HotThreshold: 2,
		MaxSwapsPerEpoch: 4, BlockBytes: 256,
		Blackout: 1, SettleEpochs: 0, // allow immediate re-migration
	}
	m := New(eng, cfg, fixedTech(1<<20), nil)

	// Epoch 1: hot NVM block H swaps with cold DRAM victim V1.
	h := uint64(1<<21 + 0)
	v1 := uint64(0)
	m.Observe(v1)
	m.Observe(h)
	m.Observe(h)
	eng.RunUntil(1100 * sim.Nanosecond)
	if m.Stats().Swaps != 1 {
		t.Fatalf("epoch1 swaps = %d", m.Stats().Swaps)
	}
	// Epoch 2: V1 (now resolving to NVM) becomes hot itself and swaps
	// with a fresh DRAM victim V2 — a chain through H's old frame.
	v2 := uint64(4096)
	m.Observe(v2)
	m.Observe(v1)
	m.Observe(v1)
	eng.RunUntil(2100 * sim.Nanosecond)
	if m.Stats().Swaps != 2 {
		t.Fatalf("epoch2 swaps = %d", m.Stats().Swaps)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// All three logical blocks resolve to distinct physical frames.
	seen := map[uint64]bool{}
	for _, blk := range []uint64{h, v1, v2} {
		p := m.Translate(blk)
		if seen[p] {
			t.Fatalf("aliasing at %#x", p)
		}
		seen[p] = true
	}
}

// TestValidateDeterministicError pins the sorted-key walk in Validate:
// with several invariant violations present, every call must pick the
// same one (the smallest offending logical block), not whichever a map
// range happens to visit first.
func TestValidateDeterministicError(t *testing.T) {
	_, m, _ := newTestManager(t)
	// Three logical blocks aliasing the same physical frame.
	m.remap[0x1000] = 0xF000
	m.remap[0x2000] = 0xF000
	m.remap[0x3000] = 0xF000
	// Make the frames they vacated "occupied" so aliasing is the only
	// violation class.
	m.remap[0xF000] = 0x1000
	m.remap[0x4000] = 0x2000
	m.remap[0x5000] = 0x3000
	first, err := m.Validate(), error(nil)
	if first == nil {
		t.Fatal("Validate accepted an aliased table")
	}
	_ = err
	for i := 0; i < 32; i++ {
		if got := m.Validate(); got == nil || got.Error() != first.Error() {
			t.Fatalf("Validate error changed between calls:\n  first: %v\n  now:   %v", first, got)
		}
	}
	want := "migrate: blocks 0x1000 and 0x2000 alias physical 0xf000"
	if first.Error() != want {
		t.Fatalf("Validate error = %q, want %q", first, want)
	}
}

// TestFingerprintStable checks that Fingerprint is a pure function of
// the table contents, independent of insertion order.
func TestFingerprintStable(t *testing.T) {
	_, m1, _ := newTestManager(t)
	_, m2, _ := newTestManager(t)
	m1.remap[1] = 100
	m1.remap[2] = 200
	m2.remap[2] = 200
	m2.remap[1] = 100
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
	m2.remap[3] = 300
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Fatal("fingerprint blind to table contents")
	}
}
