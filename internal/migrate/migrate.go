// Package migrate implements the heterogeneous-memory management layer
// the paper's mixed DRAM:NVM networks presuppose (§2.4: "we rely on the
// existence of appropriate heterogeneous management mechanisms", citing
// hot/cold data placement work). It is an epoch-based hot-block
// migrator: interleave-granularity blocks that are accessed frequently
// while resident on NVM are swapped with cold DRAM-resident blocks
// through an indirection table, paying a copy cost (energy plus a
// temporary blackout on the swapped blocks).
//
// The manager is deliberately address-mapping-agnostic: it observes the
// request stream, and the system consults Translate before resolving an
// address to a cube, so it composes with any topology and ratio.
package migrate

import (
	"fmt"
	"slices"
	"sort"

	"memnet/internal/config"
	"memnet/internal/energy"
	"memnet/internal/fnv"
	"memnet/internal/sim"
)

// Config tunes the migration policy.
type Config struct {
	// Epoch is the observation window between migration decisions.
	Epoch sim.Time
	// HotThreshold is the per-epoch access count that makes an
	// NVM-resident block a migration candidate.
	HotThreshold int
	// MaxSwapsPerEpoch bounds migration bandwidth.
	MaxSwapsPerEpoch int
	// BlockBytes is the migration granularity (the interleave unit).
	BlockBytes uint64
	// Blackout is how long a swapped pair is inaccessible while the
	// copies drain.
	Blackout sim.Time
	// SettleEpochs keeps a freshly swapped block out of further
	// migration decisions for this many epochs, damping ping-pong
	// thrash between the technologies.
	SettleEpochs uint64
}

// DefaultConfig returns a reasonable policy for the evaluated system.
func DefaultConfig() Config {
	return Config{
		Epoch:            5 * sim.Microsecond,
		HotThreshold:     4,
		MaxSwapsPerEpoch: 64,
		BlockBytes:       256,
		Blackout:         200 * sim.Nanosecond,
		SettleEpochs:     4,
	}
}

// Stats reports migration activity.
type Stats struct {
	Epochs   uint64
	Swaps    uint64
	Observed uint64
	// HotNVM counts epoch-end candidates seen (swapped or not).
	HotNVM uint64
}

// Manager is the migration engine for one memory port.
type Manager struct {
	eng    *sim.Engine
	cfg    Config
	techOf func(addr uint64) config.MemTech // resolves a *translated* address
	meter  *energy.Meter

	remap    map[uint64]uint64 // block -> block, maintained as an involution
	counts   map[uint64]int
	lastSwap map[uint64]uint64 // block -> epoch of its last migration
	// coldDRAM is a bounded reservoir of recently-seen, currently-cold,
	// DRAM-resident blocks used as swap victims.
	coldDRAM []uint64
	blackout map[uint64]sim.Time

	stats Stats
}

// New creates a manager and arms its epoch timer. techOf must resolve a
// translated (physical) block address to the backing technology; meter
// may be nil.
func New(eng *sim.Engine, cfg Config, techOf func(uint64) config.MemTech, meter *energy.Meter) *Manager {
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 256
	}
	m := &Manager{
		eng:      eng,
		cfg:      cfg,
		techOf:   techOf,
		meter:    meter,
		remap:    make(map[uint64]uint64),
		counts:   make(map[uint64]int),
		lastSwap: make(map[uint64]uint64),
		blackout: make(map[uint64]sim.Time),
	}
	if cfg.Epoch > 0 {
		eng.Schedule(cfg.Epoch, m.epoch)
	}
	return m
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// block returns a's block base address.
func (m *Manager) block(a uint64) uint64 { return a - a%m.cfg.BlockBytes }

// Translate applies the indirection table: the returned address is where
// the data currently lives.
func (m *Manager) Translate(a uint64) uint64 {
	blk := m.block(a)
	if to, ok := m.remap[blk]; ok {
		return to + (a - blk)
	}
	return a
}

// ReadyAt reports when the block holding a becomes accessible (it may be
// mid-migration); zero means immediately.
func (m *Manager) ReadyAt(a uint64) sim.Time {
	if t, ok := m.blackout[m.block(a)]; ok {
		if t > m.eng.Now() {
			return t
		}
		delete(m.blackout, m.block(a))
	}
	return 0
}

// Observe records one access for the epoch statistics and harvests cold
// DRAM victims.
func (m *Manager) Observe(a uint64) {
	m.stats.Observed++
	blk := m.block(a)
	m.counts[blk]++
	// Sample possible victims cheaply: blocks currently resolving to
	// DRAM with a low count. The reservoir is refreshed each epoch.
	if m.counts[blk] == 1 && len(m.coldDRAM) < 4*m.cfg.MaxSwapsPerEpoch {
		if m.techOf(m.Translate(blk)) == config.DRAM {
			m.coldDRAM = append(m.coldDRAM, blk)
		}
	}
}

// epoch runs the migration decision and re-arms the timer.
func (m *Manager) epoch() {
	m.stats.Epochs++
	now := m.eng.Now()

	// Collect hot blocks currently resident on NVM.
	type hot struct {
		blk   uint64
		count int
	}
	var hots []hot
	for blk, c := range m.counts {
		if c < m.cfg.HotThreshold {
			continue
		}
		if !m.settled(blk) {
			continue
		}
		if m.techOf(m.Translate(blk)) != config.NVM {
			continue
		}
		hots = append(hots, hot{blk, c})
	}
	m.stats.HotNVM += uint64(len(hots))
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].blk < hots[j].blk
	})

	swaps := 0
	vi := 0
	for _, h := range hots {
		if swaps >= m.cfg.MaxSwapsPerEpoch {
			break
		}
		// Find a victim that is still cold and still on DRAM.
		var victim uint64
		found := false
		for vi < len(m.coldDRAM) {
			v := m.coldDRAM[vi]
			vi++
			if m.counts[v] > 1 {
				continue // any reuse disqualifies a victim
			}
			if !m.settled(v) {
				continue
			}
			if m.techOf(m.Translate(v)) != config.DRAM {
				continue
			}
			victim, found = v, true
			break
		}
		if !found {
			break
		}
		m.swap(h.blk, victim, now)
		swaps++
	}

	// Reset epoch state.
	m.counts = make(map[uint64]int)
	m.coldDRAM = m.coldDRAM[:0]
	m.eng.Schedule(m.cfg.Epoch, m.epoch)
}

// swap exchanges the physical homes of blocks a and b (logical
// addresses), charging copy energy and arming the blackout window.
func (m *Manager) swap(a, b uint64, now sim.Time) {
	pa, pb := m.Translate(a), m.Translate(b)
	m.setMap(a, pb)
	m.setMap(b, pa)
	m.stats.Swaps++
	m.lastSwap[a] = m.stats.Epochs
	m.lastSwap[b] = m.stats.Epochs
	until := now + m.cfg.Blackout
	m.blackout[a] = until
	m.blackout[b] = until
	if m.meter != nil {
		bits := int(m.cfg.BlockBytes) * 8
		// Copy both directions: read each source, write each destination.
		m.meter.Access(config.NVM, false, bits)
		m.meter.Access(config.DRAM, true, bits)
		m.meter.Access(config.DRAM, false, bits)
		m.meter.Access(config.NVM, true, bits)
	}
}

// settled reports whether a block's last migration is old enough for it
// to participate in new decisions.
func (m *Manager) settled(blk uint64) bool {
	last, ok := m.lastSwap[blk]
	if !ok {
		return true
	}
	return m.stats.Epochs-last > m.cfg.SettleEpochs
}

// setMap installs logical->physical, pruning identity entries so the
// table only holds displaced blocks.
func (m *Manager) setMap(logical, physical uint64) {
	if logical == physical {
		delete(m.remap, logical)
		return
	}
	m.remap[logical] = physical
}

// RemapSize reports the indirection table occupancy (for tests and
// reporting).
func (m *Manager) RemapSize() int { return len(m.remap) }

// Fingerprint hashes the indirection table in sorted key order. Two
// identically-seeded runs must produce equal fingerprints; the
// migration determinism regression test compares them because the
// coarse Results metrics can coincide even when order-dependent swap
// decisions picked different blocks (timing-symmetric frames).
func (m *Manager) Fingerprint() uint64 {
	logicals := make([]uint64, 0, len(m.remap))
	for logical := range m.remap {
		logicals = append(logicals, logical)
	}
	slices.Sort(logicals)
	h := fnv.New()
	for _, l := range logicals {
		h = h.U64(l).U64(m.remap[l])
	}
	return h.Sum()
}

// Validate checks the indirection table's correctness invariant: it
// must be injective (no two logical blocks resolving to the same
// physical home — that would alias data), and every displaced physical
// home must itself be owned by some logical block (no leaks). Swap
// chains keep the table a permutation even when it stops being a simple
// involution.
func (m *Manager) Validate() error {
	// Walk the table in sorted key order so that, when the invariant is
	// broken, every run reports the same violation — map-order error
	// selection is exactly the nondeterminism mnlint's detmap forbids.
	logicals := make([]uint64, 0, len(m.remap))
	for logical := range m.remap {
		logicals = append(logicals, logical)
	}
	slices.Sort(logicals)
	phys := make(map[uint64]uint64, len(m.remap))
	for _, logical := range logicals {
		p := m.remap[logical]
		if prev, dup := phys[p]; dup {
			return fmt.Errorf("migrate: blocks %#x and %#x alias physical %#x",
				prev, logical, p)
		}
		phys[p] = logical
	}
	for _, logical := range logicals {
		// The physical frame named "logical" was vacated; someone must
		// occupy it (possibly transitively), i.e. it appears as a target
		// or its own entry exists.
		if _, ok := phys[logical]; !ok {
			return fmt.Errorf("migrate: physical frame %#x leaked", logical)
		}
	}
	return nil
}
