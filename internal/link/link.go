// Package link models the point-to-point SerDes channels that connect
// memory cubes to each other and to the host, including the behaviors the
// paper identifies as first-order: finite serialization bandwidth (16
// lanes x 15 Gbps per direction), a fixed 2 ns SerDes latency per
// traversal, credit-based flow control against finite receiver buffers,
// and two virtual channels with responses strictly prioritized over
// requests (the deadlock-avoidance rule that backs requests up behind
// responses, Section 3.2).
//
// A physical link is a pair of independent Directions. The same Direction
// type also models cube-internal connections (router <-> vault quadrant,
// interposer traces inside a MetaCube) with different constants.
package link

import (
	"fmt"

	"memnet/internal/fault"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Meter receives a callback per completed hop for energy accounting.
type Meter interface {
	Hop(bits int)
}

// nopMeter is used when no energy accounting is attached.
type nopMeter struct{}

func (nopMeter) Hop(int) {}

// Config are the constants of one direction.
type Config struct {
	// BandwidthBps is the serialization bandwidth in bits per second.
	BandwidthBps int64
	// SerDesLatency is added once per traversal after serialization.
	SerDesLatency sim.Time
	// QueueDepth bounds the per-VC output queue on the sending side.
	QueueDepth int
	// Credits is the per-VC receiver buffer depth this direction may
	// consume; transmission of a packet requires (and consumes) one.
	Credits int
	// NoVCPriority disables the default response-over-request
	// prioritization, falling back to round-robin between VCs. Used by
	// ablation experiments.
	NoVCPriority bool
	// CountHop controls whether traversals are charged network energy
	// and counted in Packet.Hops. True for package-to-package links,
	// false for cube-internal router<->vault connections.
	CountHop bool
}

// Stats aggregates per-direction counters.
type Stats struct {
	Sent        [packet.NumVCs]uint64
	BitsSent    uint64
	QueueWait   sim.Time // total time packets spent in the output queue
	BusyTime    sim.Time // wire occupancy
	CreditStall uint64   // packets deferred at least once for lack of credit
	CRCErrors   uint64   // transmissions corrupted in flight (failed CRC)
	Retries     uint64   // retransmissions out of the retry buffer
	Dropped     uint64   // packets abandoned after exhausting MaxRetries
	Retrains    uint64   // completed retraining cycles (returns to service)
}

// State is a direction's service state. A failed direction moves
// Up -> Down (Fail), holds Down until the physical repair lands, then
// retrains (BeginRetrain) for a configured sim-time window before
// CompleteRetrain returns it to service. Down and Retraining both
// accept and transmit nothing; they are distinct so observability can
// tell a dead link from one coming back.
type State uint8

const (
	// Up is the normal in-service state.
	Up State = iota
	// Down is a failed direction awaiting repair.
	Down
	// Retraining is the recovery window between repair and service.
	Retraining
)

// String renders the state for logs and gauges.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Down:
		return "down"
	case Retraining:
		return "retraining"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Direction is one half of a full-duplex link: a bounded per-VC output
// queue, a serially-reusable wire, and a credit counter for the remote
// input buffer.
type Direction struct {
	eng   *sim.Engine
	cfg   Config
	meter Meter

	wire    sim.Resource
	queue   [packet.NumVCs][]entry
	credits [packet.NumVCs]int

	// deliver is invoked at the receiver when a packet lands (after
	// serialization + SerDes latency). Wired by the owning node.
	deliver func(*packet.Packet)
	// onSpace, if set, is invoked whenever a slot frees in the output
	// queue of the given VC, letting the upstream router resume moving
	// packets out of its input buffers.
	onSpace func(packet.VC)

	pumpScheduled bool
	lastVC        packet.VC // round-robin state when NoVCPriority
	// stalled marks a VC whose head packet has already been counted in
	// Stats.CreditStall, so pump re-probes don't inflate the counter; the
	// flag clears when that VC next transmits.
	stalled [packet.NumVCs]bool

	// flt, when non-nil, injects CRC failures on every transmission; the
	// corrupted packet is held in retryQ (the HMC-style link retry
	// buffer) and retransmitted after an ack round-trip plus exponential
	// backoff. Nil keeps the hot path schedule-identical to a fault-free
	// link.
	flt    *fault.LinkFault
	retryQ []retryEntry
	// state is the service-state machine; mnlint's fsmcheck analyzer
	// verifies every write follows the declared transitions.
	//lint:fsm up->down,down->retraining,retraining->up
	state State

	// origBps is the full-width serialization bandwidth bound at
	// construction; retraining and flap recovery re-bind to it.
	origBps int64
	// outstanding counts, per VC, packets launched toward the receiver
	// whose credit will eventually come back via ReturnCredit (in
	// flight on the wire or parked in the remote input buffer). It is
	// what CompleteRetrain subtracts when it re-arms the credit
	// counters, so stale returns arriving after recovery cannot
	// overflow them.
	outstanding [packet.NumVCs]int
	// healedBits counts bits sent after the direction's first
	// completed retraining — the route-back evidence FaultCounters
	// exposes as HealedBits.
	healedBits uint64

	// pumpFn and arriveFn are bound once at construction so the per-packet
	// hot path schedules them without allocating a closure.
	pumpFn   sim.Handler
	arriveFn sim.ArgHandler

	// crossPost, when set, replaces direct engine scheduling of the
	// arrival event: the direction sits on a shard boundary and the
	// receiver's components live on another shard's engine, so arrivals
	// must travel through the partitioned engine's inbox instead. The
	// SerDes latency is the lookahead that makes this safe — every
	// arrival lands at least SerDesLatency past the sender's clock.
	crossPost func(at sim.Time, fn sim.ArgHandler, arg any)

	// onShip, when set (SetOnShip), observes every transmission that
	// will land: enq/pop bound the output-queue residence, start/end the
	// final wire occupancy (start > pop only after CRC retries). The
	// span tracer arms it; nil keeps the transmit path hook-free.
	onShip func(p *packet.Packet, enq, pop, start, end sim.Time)

	stats Stats
}

type entry struct {
	p        *packet.Packet
	enqueued sim.Time
}

// retryEntry is one packet parked in the retry buffer. It still holds
// the receiver credit consumed by its first transmission, so the remote
// buffer slot stays reserved until delivery or drop.
type retryEntry struct {
	p        *packet.Packet
	vc       packet.VC
	bits     int
	attempts int // transmissions so far
	readyAt  sim.Time
	// enq/pop carry the original queue residence bounds across retries
	// so onShip can attribute the full traversal on final delivery.
	enq, pop sim.Time
}

// New returns a Direction. deliver must be non-nil before the first Send.
func New(eng *sim.Engine, cfg Config, meter Meter) *Direction {
	if cfg.QueueDepth <= 0 || cfg.Credits <= 0 {
		panic(fmt.Sprintf("link: non-positive queue depth %d or credits %d",
			cfg.QueueDepth, cfg.Credits))
	}
	if cfg.BandwidthBps <= 0 {
		panic(fmt.Sprintf("link: non-positive bandwidth %d bps", cfg.BandwidthBps))
	}
	if cfg.SerDesLatency < 0 {
		panic(fmt.Sprintf("link: negative SerDes latency %v", cfg.SerDesLatency))
	}
	if meter == nil {
		meter = nopMeter{}
	}
	d := &Direction{eng: eng, cfg: cfg, meter: meter, origBps: cfg.BandwidthBps}
	for vc := range d.credits {
		d.credits[vc] = cfg.Credits
	}
	d.pumpFn = func() {
		d.pumpScheduled = false
		d.pump()
	}
	d.arriveFn = d.arrive
	return d
}

// SetDeliver wires the receiver callback.
func (d *Direction) SetDeliver(fn func(*packet.Packet)) { d.deliver = fn }

// SetCrossShard marks this direction as a shard-boundary link: arrival
// events are handed to post (typically sim.Shard.PostArg bound to the
// receiving shard) instead of the local engine, carrying the packet
// across the partition at full SerDes latency. The deliver callback
// then runs on the receiving shard's engine. Requires a positive
// SerDes latency — a zero-latency boundary would give the partitioned
// engine no lookahead window.
func (d *Direction) SetCrossShard(post func(at sim.Time, fn sim.ArgHandler, arg any)) {
	if post != nil && d.cfg.SerDesLatency <= 0 {
		panic("link: cross-shard boundary requires positive SerDes latency for lookahead")
	}
	d.crossPost = post
}

// SetOnSpace wires the output-queue-space callback.
func (d *Direction) SetOnSpace(fn func(packet.VC)) { d.onSpace = fn }

// SetOnShip wires the span tracer's transmission observer. fn fires
// once per packet that will land at the receiver, with the timestamps
// bounding its output-queue residence [enq,pop), retry-buffer residence
// [pop,start), and wire occupancy [start,end); the packet lands at
// end + SerDesLatency. A nil fn disables the hook.
func (d *Direction) SetOnShip(fn func(p *packet.Packet, enq, pop, start, end sim.Time)) {
	d.onShip = fn
}

// SerDes reports the direction's fixed per-traversal SerDes latency.
func (d *Direction) SerDes() sim.Time { return d.cfg.SerDesLatency }

// AttachFault arms CRC-failure injection on this direction. Call before
// traffic flows; a nil model leaves the direction fault-free.
func (d *Direction) AttachFault(f *fault.LinkFault) { d.flt = f }

// Stats returns a copy of the direction's counters.
func (d *Direction) Stats() Stats { return d.stats }

// CanAccept reports whether the output queue of vc has room. A failed
// or retraining direction accepts nothing.
func (d *Direction) CanAccept(vc packet.VC) bool {
	return d.state == Up && len(d.queue[vc]) < d.cfg.QueueDepth
}

// QueueLen reports the occupancy of the vc output queue.
func (d *Direction) QueueLen(vc packet.VC) int { return len(d.queue[vc]) }

// Credits reports the transmit credits currently available for vc.
func (d *Direction) Credits(vc packet.VC) int { return d.credits[vc] }

// RetryLen reports how many packets sit in the retry buffer.
func (d *Direction) RetryLen() int { return len(d.retryQ) }

// Bandwidth reports the current serialization bandwidth, after any
// down-binding.
func (d *Direction) Bandwidth() int64 { return d.cfg.BandwidthBps }

// VCRoundRobin reports whether response-over-request priority is
// disabled (round-robin between VCs; the single-VC ablation).
func (d *Direction) VCRoundRobin() bool { return d.cfg.NoVCPriority }

// Dead reports whether the direction is out of service (failed or
// still retraining).
func (d *Direction) Dead() bool { return d.state != Up }

// State reports the direction's service state.
func (d *Direction) State() State { return d.state }

// HealedBits reports the bits transmitted since the direction's first
// completed retraining: nonzero exactly when traffic routed back onto
// this direction after a repair.
func (d *Direction) HealedBits() uint64 { return d.healedBits }

// Downbind halves the serialization bandwidth, modeling an HMC link
// dropping to half width after a SerDes lane failure. Transmissions
// already on the wire finish at the old rate.
func (d *Direction) Downbind() {
	if d.cfg.BandwidthBps > 1 {
		d.cfg.BandwidthBps /= 2
	}
}

// Rebind restores the full-width serialization bandwidth bound at
// construction — the Up half of a lane flap, where the lane retrains
// while the link keeps running at reduced width.
func (d *Direction) Rebind() {
	d.cfg.BandwidthBps = d.origBps
}

// Fail kills the direction. Every packet waiting in the output queues or
// parked in the retry buffer is handed to drain (for the owning router to
// re-route); packets already serialized onto the wire still land at the
// receiver. After Fail the direction accepts nothing and transmits
// nothing until a BeginRetrain/CompleteRetrain cycle restores it.
func (d *Direction) Fail(drain func(*packet.Packet)) {
	if d.state != Up {
		panic(fmt.Sprintf("link: Fail on a direction already %v", d.state))
	}
	d.state = Down
	for vc := range d.queue {
		for _, e := range d.queue[vc] {
			drain(e.p)
		}
		d.queue[vc] = nil
	}
	for _, r := range d.retryQ {
		drain(r.p)
	}
	d.retryQ = nil
}

// BeginRetrain moves a failed direction into the retraining state: the
// physical repair has landed, the SerDes is re-acquiring lane lock,
// and no traffic flows yet.
func (d *Direction) BeginRetrain() {
	if d.state != Down {
		panic(fmt.Sprintf("link: BeginRetrain on a direction that is %v, not down", d.state))
	}
	d.state = Retraining
}

// CompleteRetrain returns a retraining direction to service with fresh
// per-packet state: the full lane set re-binds (restoring the
// construction-time bandwidth), the retry buffer and its exponential
// backoff are gone (Fail drained them), per-VC credit-stall latches
// clear, and the credit counters re-arm to capacity minus the packets
// still outstanding at the receiver — whose eventual ReturnCredits
// then restore full capacity without overflow. Upstream routers are
// notified of the empty output queues (onSpace) so traffic drains back
// onto the healed direction immediately.
func (d *Direction) CompleteRetrain() {
	if d.state != Retraining {
		panic(fmt.Sprintf("link: CompleteRetrain on a direction that is %v, not retraining", d.state))
	}
	d.state = Up
	d.cfg.BandwidthBps = d.origBps
	d.retryQ = nil
	d.stats.Retrains++
	for vc := packet.VC(0); vc < packet.NumVCs; vc++ {
		d.credits[vc] = d.cfg.Credits - d.outstanding[vc]
		d.stalled[vc] = false
	}
	if d.onSpace != nil {
		for vc := packet.VC(0); vc < packet.NumVCs; vc++ {
			d.onSpace(vc)
		}
	}
	d.pump()
}

// Send enqueues p for transmission. The caller must have checked
// CanAccept; Send panics on overflow to surface flow-control bugs.
func (d *Direction) Send(p *packet.Packet) {
	if d.state != Up {
		panic(fmt.Sprintf("link: send on %v link for %v", d.state, p))
	}
	vc := packet.VCOf(p.Kind)
	if !d.CanAccept(vc) {
		panic(fmt.Sprintf("link: output queue overflow on %v for %v", vc, p))
	}
	d.queue[vc] = append(d.queue[vc], entry{p: p, enqueued: d.eng.Now()})
	d.pump()
}

// ReturnCredit is called by the receiving node when it frees one input
// buffer slot of the given VC.
func (d *Direction) ReturnCredit(vc packet.VC) {
	d.credits[vc]++
	d.outstanding[vc]--
	if d.credits[vc] > d.cfg.Credits || d.outstanding[vc] < 0 {
		panic("link: credit overflow")
	}
	d.pump()
}

// pump attempts to start a transmission now, or schedules a retry when
// the wire frees. Ready retransmissions take the wire before fresh
// queue traffic (they hold receiver credits, so landing them first
// unblocks the most). It is idempotent per simulated instant.
func (d *Direction) pump() {
	if d.state != Up || d.pumpScheduled {
		return
	}
	now := d.eng.Now()
	if !d.wire.Idle(now) {
		d.pumpScheduled = true
		d.eng.At(d.wire.FreeAt(), d.pumpFn)
		return
	}
	if d.sendRetry(now) {
		d.pump()
		return
	}
	vc, ok := d.pickVC()
	if !ok {
		return
	}
	d.transmit(vc)
	// Another VC may still have eligible traffic; pump re-runs when the
	// wire frees via the scheduling above on the next call.
	d.pump()
}

// pickVC chooses the next virtual channel to serve: responses first by
// default (the deadlock-avoidance priority), else round-robin.
func (d *Direction) pickVC() (packet.VC, bool) {
	eligible := func(vc packet.VC) bool {
		if len(d.queue[vc]) == 0 {
			return false
		}
		if d.credits[vc] == 0 {
			// One stall per deferred packet: the flag holds until this
			// VC transmits, so pump re-probes of the same stuck head
			// don't recount it.
			if !d.stalled[vc] {
				d.stalled[vc] = true
				d.stats.CreditStall++
			}
			return false
		}
		return true
	}
	if !d.cfg.NoVCPriority {
		if eligible(packet.VCResponse) {
			return packet.VCResponse, true
		}
		if eligible(packet.VCRequest) {
			return packet.VCRequest, true
		}
		return 0, false
	}
	for i := packet.VC(0); i < packet.NumVCs; i++ {
		vc := (d.lastVC + 1 + i) % packet.NumVCs
		if eligible(vc) {
			d.lastVC = vc
			return vc, true
		}
	}
	return 0, false
}

// transmit pops the head of vc and occupies the wire for its
// serialization time; delivery fires after the additional SerDes latency.
func (d *Direction) transmit(vc packet.VC) {
	e := d.queue[vc][0]
	copy(d.queue[vc], d.queue[vc][1:])
	d.queue[vc] = d.queue[vc][:len(d.queue[vc])-1]
	d.credits[vc]--
	d.stalled[vc] = false

	now := d.eng.Now()
	d.stats.QueueWait += now - e.enqueued
	bits := e.p.Kind.Bits()
	ser := sim.BitTime(bits, d.cfg.BandwidthBps)
	_, end := d.wire.Reserve(now, ser)
	d.stats.BusyTime += end - now
	d.stats.Sent[vc]++
	d.stats.BitsSent += uint64(bits)
	if d.stats.Retrains > 0 {
		d.healedBits += uint64(bits)
	}

	d.finishTransmit(e.p, vc, 1, end, bits, e.enqueued, now)

	if d.onSpace != nil {
		d.onSpace(vc)
	}
}

// finishTransmit resolves one wire occupancy that ends at end: either
// the packet lands after the SerDes latency, or (with a fault model
// attached) its CRC check fails and it parks in the retry buffer. A
// retransmission becomes eligible only after the implicit-ack round
// trip (two SerDes traversals) plus an exponential backoff that doubles
// per consecutive error, capped at 64x.
func (d *Direction) finishTransmit(p *packet.Packet, vc packet.VC, attempts int, end sim.Time, bits int, enq, pop sim.Time) {
	if d.flt != nil && d.flt.Corrupt(bits) {
		d.stats.CRCErrors++
		if d.flt.MaxRetries > 0 && attempts > d.flt.MaxRetries {
			d.stats.Dropped++
			d.credits[vc]++ // the receiver slot was never filled
			return
		}
		shift := uint(attempts - 1)
		if shift > 6 {
			shift = 6
		}
		readyAt := end + 2*d.cfg.SerDesLatency + d.flt.Backoff<<shift
		d.retryQ = append(d.retryQ, retryEntry{p: p, vc: vc, bits: bits, attempts: attempts, readyAt: readyAt, enq: enq, pop: pop})
		d.eng.At(readyAt, d.pumpFn)
		return
	}
	if d.onShip != nil {
		// The final wire occupancy started when the ending Reserve was
		// taken — at the current instant for both fresh transmissions and
		// retries (the wire was idle when either path reserved it).
		d.onShip(p, enq, pop, d.eng.Now(), end)
	}
	// The transmission will land: its credit is now owed back by the
	// receiver (CompleteRetrain subtracts these when re-arming credits).
	d.outstanding[vc]++
	if d.crossPost != nil {
		d.crossPost(end+d.cfg.SerDesLatency, d.arriveFn, p)
		return
	}
	d.eng.AtArg(end+d.cfg.SerDesLatency, d.arriveFn, p)
}

// sendRetry retransmits the first retry-buffer entry whose backoff has
// elapsed, if any. The wire must be idle. The entry keeps its original
// credit, so no new credit is consumed.
func (d *Direction) sendRetry(now sim.Time) bool {
	for i, r := range d.retryQ {
		if r.readyAt > now {
			continue
		}
		d.retryQ = append(d.retryQ[:i], d.retryQ[i+1:]...)
		ser := sim.BitTime(r.bits, d.cfg.BandwidthBps)
		_, end := d.wire.Reserve(now, ser)
		d.stats.BusyTime += end - now
		d.stats.Retries++
		d.stats.BitsSent += uint64(r.bits)
		if d.stats.Retrains > 0 {
			d.healedBits += uint64(r.bits)
		}
		d.finishTransmit(r.p, r.vc, r.attempts+1, end, r.bits, r.enq, r.pop)
		return true
	}
	return false
}

// arrive lands a packet at the receiver after serialization + SerDes
// latency. It is scheduled through the bound arriveFn with the packet as
// the event argument (no per-packet closure).
func (d *Direction) arrive(arg any) {
	p := arg.(*packet.Packet)
	if d.cfg.CountHop {
		p.Hops++
		d.meter.Hop(p.Kind.Bits())
	}
	d.deliver(p)
}
