package link

import (
	"fmt"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Buffer is the receiving-side input structure of a Direction: one FIFO
// per virtual channel whose depth matches the sender's credit allowance.
// Popping an entry returns a credit upstream.
type Buffer struct {
	depth int
	fifo  [packet.NumVCs][]arrival
	// credit returns one slot to the upstream Direction.
	credit func(packet.VC)
	// waitTotal accumulates input-queuing time, the quantity the paper's
	// Section 3.2 analysis found "highly unbalanced" across ports.
	waitTotal sim.Time
	popped    uint64
}

type arrival struct {
	p  *packet.Packet
	at sim.Time
}

// NewBuffer returns a buffer of the given per-VC depth whose Pop returns
// credits through the supplied callback (typically dir.ReturnCredit).
func NewBuffer(depth int, credit func(packet.VC)) *Buffer {
	if depth <= 0 {
		panic("link: non-positive buffer depth")
	}
	return &Buffer{depth: depth, credit: credit}
}

// Push stores an arriving packet. Space is guaranteed by the sender's
// credit discipline; overflow indicates a protocol bug and panics.
func (b *Buffer) Push(p *packet.Packet, now sim.Time) {
	vc := packet.VCOf(p.Kind)
	if len(b.fifo[vc]) >= b.depth {
		panic(fmt.Sprintf("link: input buffer overflow on %v for %v", vc, p))
	}
	b.fifo[vc] = append(b.fifo[vc], arrival{p: p, at: now})
}

// Head returns the oldest packet of vc without removing it, or nil.
func (b *Buffer) Head(vc packet.VC) *packet.Packet {
	if len(b.fifo[vc]) == 0 {
		return nil
	}
	return b.fifo[vc][0].p
}

// Len reports the occupancy of the vc FIFO.
func (b *Buffer) Len(vc packet.VC) int { return len(b.fifo[vc]) }

// HeadSince reports when the head packet of vc arrived. It lets an
// observer attribute per-packet arbitration wait before Pop folds the
// residency into the aggregate counters. Panics if the FIFO is empty.
func (b *Buffer) HeadSince(vc packet.VC) sim.Time {
	if len(b.fifo[vc]) == 0 {
		panic("link: HeadSince on empty input buffer")
	}
	return b.fifo[vc][0].at
}

// Pop removes and returns the head of vc, returning one credit upstream.
// It panics if the FIFO is empty.
func (b *Buffer) Pop(vc packet.VC, now sim.Time) *packet.Packet {
	if len(b.fifo[vc]) == 0 {
		panic("link: pop from empty input buffer")
	}
	a := b.fifo[vc][0]
	copy(b.fifo[vc], b.fifo[vc][1:])
	b.fifo[vc] = b.fifo[vc][:len(b.fifo[vc])-1]
	b.waitTotal += now - a.at
	b.popped++
	if b.credit != nil {
		b.credit(vc)
	}
	return a.p
}

// MeanWait reports the average input-buffer residency observed so far.
func (b *Buffer) MeanWait() sim.Time {
	if b.popped == 0 {
		return 0
	}
	return b.waitTotal / sim.Time(b.popped)
}

// TotalWait reports accumulated input-buffer residency.
func (b *Buffer) TotalWait() sim.Time { return b.waitTotal }
