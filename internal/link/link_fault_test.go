package link

import (
	"testing"

	"memnet/internal/fault"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestRetryDeliversThroughErrors: with an attached fault model and
// unbounded retries, every packet eventually lands despite a brutal
// error rate (BER 1e-3 corrupts ~12% of 128-bit requests), and each
// error accounts for exactly one retransmission.
func TestRetryDeliversThroughErrors(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.QueueDepth = 64
	cfg.Credits = 64
	d := New(eng, cfg, nil)
	d.AttachFault(fault.NewLinkFault(42, 1e-3, 0, 8*sim.Nanosecond))
	delivered := 0
	d.SetDeliver(func(p *packet.Packet) {
		delivered++
		d.ReturnCredit(packet.VCOf(p.Kind))
	})
	const n = 64
	for i := 0; i < n; i++ {
		d.Send(mkPacket(uint64(i), packet.ReadReq))
	}
	eng.Run()
	s := d.Stats()
	if delivered != n {
		t.Fatalf("delivered %d/%d through errors", delivered, n)
	}
	if s.CRCErrors == 0 {
		t.Fatal("BER=0.5 over 64+ transmissions produced no CRC error")
	}
	if s.Retries != s.CRCErrors {
		t.Fatalf("Retries %d != CRCErrors %d with unbounded retries", s.Retries, s.CRCErrors)
	}
	if s.Dropped != 0 {
		t.Fatalf("dropped %d with unbounded retries", s.Dropped)
	}
	if d.RetryLen() != 0 {
		t.Fatalf("retry buffer left %d entries", d.RetryLen())
	}
}

// TestRetryExhaustionDrops: BER=1 with bounded retries drops the packet
// after the original transmission plus MaxRetries retransmissions, and
// restores the credit its first transmission consumed.
func TestRetryExhaustionDrops(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	d := New(eng, cfg, nil)
	d.AttachFault(fault.NewLinkFault(1, 1.0, 2, 8*sim.Nanosecond))
	d.SetDeliver(func(*packet.Packet) { t.Fatal("corrupted packet delivered") })
	d.Send(mkPacket(1, packet.ReadReq))
	eng.Run()
	s := d.Stats()
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
	if s.CRCErrors != 3 || s.Retries != 2 {
		t.Fatalf("CRCErrors = %d, Retries = %d; want 3 errors over 2 retries", s.CRCErrors, s.Retries)
	}
	if got := d.Credits(packet.VCRequest); got != cfg.Credits {
		t.Fatalf("credit not restored on drop: %d/%d", got, cfg.Credits)
	}
	if d.RetryLen() != 0 {
		t.Fatal("dropped packet left in retry buffer")
	}
}

// TestRetryHoldsCredit: a packet parked in the retry buffer keeps its
// receiver credit reserved until it finally lands.
func TestRetryHoldsCredit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.Credits = 1
	d := New(eng, cfg, nil)
	d.AttachFault(fault.NewLinkFault(1, 1.0, 0, 8*sim.Nanosecond))
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(mkPacket(1, packet.ReadReq))
	// Let a few retry rounds elapse; the single credit must stay consumed
	// the whole time the packet shuttles through the retry buffer.
	eng.RunUntil(200 * sim.Nanosecond)
	if got := d.Credits(packet.VCRequest); got != 0 {
		t.Fatalf("retrying packet released its credit: %d available", got)
	}
	if d.RetryLen() != 1 && !d.wire.Idle(eng.Now()) {
		t.Fatal("packet neither in retry buffer nor on the wire")
	}
}

func TestDownbindHalvesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	var arrivals []sim.Time
	d.SetDeliver(func(*packet.Packet) { arrivals = append(arrivals, eng.Now()) })
	d.Downbind()
	if got := d.Bandwidth(); got != 120e9 {
		t.Fatalf("bandwidth after downbind = %d, want 120e9", got)
	}
	d.Send(mkPacket(1, packet.ReadResp))
	d.Send(mkPacket(2, packet.ReadResp))
	eng.Run()
	ser := sim.BitTime(640, 120e9)
	if len(arrivals) != 2 || arrivals[1]-arrivals[0] != ser {
		t.Fatalf("half-width spacing %v, want %v", arrivals[1]-arrivals[0], ser)
	}
	// A second failure quarters the original width.
	d.Downbind()
	if got := d.Bandwidth(); got != 60e9 {
		t.Fatalf("bandwidth after two downbinds = %d, want 60e9", got)
	}
}

// TestFailDrainsQueues: killing a direction hands every queued packet to
// the drain callback, stops accepting traffic, and still lands the
// packet that was already serialized onto the wire.
func TestFailDrainsQueues(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	delivered := 0
	d.SetDeliver(func(*packet.Packet) { delivered++ })
	d.Send(mkPacket(1, packet.ReadReq)) // takes the wire immediately
	d.Send(mkPacket(2, packet.ReadReq)) // queued
	d.Send(mkPacket(3, packet.ReadResp))
	var drained []*packet.Packet
	d.Fail(func(p *packet.Packet) { drained = append(drained, p) })
	if !d.Dead() {
		t.Fatal("Dead() false after Fail")
	}
	if len(drained) != 2 {
		t.Fatalf("drained %d queued packets, want 2", len(drained))
	}
	if d.CanAccept(packet.VCRequest) || d.CanAccept(packet.VCResponse) {
		t.Fatal("failed direction still accepts")
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("in-flight packet: delivered %d, want 1", delivered)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send on failed link must panic")
		}
	}()
	d.Send(mkPacket(4, packet.ReadReq))
}

// TestFailDrainsRetryBuffer: packets parked for retransmission are also
// returned to the router when the link dies.
func TestFailDrainsRetryBuffer(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.AttachFault(fault.NewLinkFault(1, 1.0, 0, 8*sim.Nanosecond))
	d.SetDeliver(func(*packet.Packet) { t.Fatal("corrupted packet delivered") })
	p := mkPacket(1, packet.ReadReq)
	d.Send(p)
	// Run past the first corruption so the packet is in the retry buffer.
	eng.RunUntil(5 * sim.Nanosecond)
	if d.RetryLen() != 1 {
		t.Fatalf("retry buffer len %d, want 1", d.RetryLen())
	}
	var drained []*packet.Packet
	d.Fail(func(q *packet.Packet) { drained = append(drained, q) })
	if len(drained) != 1 || drained[0] != p {
		t.Fatalf("retry buffer not drained: %v", drained)
	}
	eng.Run() // pending retry pump events must be inert on a dead link
}
