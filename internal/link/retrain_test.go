package link

import (
	"testing"

	"memnet/internal/fault"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// retrainCycle kills d (draining into the void), begins retraining, and
// completes it.
func retrainCycle(d *Direction) {
	d.Fail(func(*packet.Packet) {})
	d.BeginRetrain()
	d.CompleteRetrain()
}

// TestRetrainStateMachine: the only legal path back to service is
// Up -> Down (Fail) -> Retraining (BeginRetrain) -> Up
// (CompleteRetrain); every shortcut panics.
func TestRetrainStateMachine(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	if d.State() != Up {
		t.Fatalf("new direction is %v, want up", d.State())
	}
	mustPanic(t, "BeginRetrain on an up direction", func() { d.BeginRetrain() })
	mustPanic(t, "CompleteRetrain on an up direction", func() { d.CompleteRetrain() })

	d.Fail(func(*packet.Packet) {})
	if d.State() != Down || !d.Dead() {
		t.Fatalf("after Fail: state %v dead %v", d.State(), d.Dead())
	}
	mustPanic(t, "CompleteRetrain on a down direction", func() { d.CompleteRetrain() })
	mustPanic(t, "Fail on a down direction", func() { d.Fail(func(*packet.Packet) {}) })

	d.BeginRetrain()
	if d.State() != Retraining || !d.Dead() {
		t.Fatalf("after BeginRetrain: state %v dead %v", d.State(), d.Dead())
	}
	if d.CanAccept(packet.VCRequest) {
		t.Fatal("retraining direction accepts traffic")
	}
	mustPanic(t, "Fail on a retraining direction", func() { d.Fail(func(*packet.Packet) {}) })

	d.CompleteRetrain()
	if d.State() != Up || d.Dead() {
		t.Fatalf("after CompleteRetrain: state %v dead %v", d.State(), d.Dead())
	}
	if got := d.Stats().Retrains; got != 1 {
		t.Fatalf("Retrains = %d, want 1", got)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestRetrainResetsRetryState: packets parked in the retry buffer are
// drained by Fail, and recovery clears the buffer and its backoff
// history — the regression test for stale retry state surviving a
// repair.
func TestRetrainResetsRetryState(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.AttachFault(fault.NewLinkFault(1, 1.0, 0, 8*sim.Nanosecond))
	d.SetDeliver(func(*packet.Packet) { t.Fatal("corrupted packet delivered") })
	d.Send(mkPacket(1, packet.ReadReq))
	eng.RunUntil(5 * sim.Nanosecond) // past the first corruption: packet parked
	if d.RetryLen() != 1 {
		t.Fatalf("retry buffer len %d, want 1", d.RetryLen())
	}
	drained := 0
	d.Fail(func(*packet.Packet) { drained++ })
	if drained != 1 {
		t.Fatalf("Fail drained %d packets, want 1", drained)
	}
	d.BeginRetrain()
	d.CompleteRetrain()
	if d.RetryLen() != 0 {
		t.Fatalf("retry buffer survived recovery: %d entries", d.RetryLen())
	}
	// The healed direction is fault-free here on out only because the
	// test detaches the model; a fresh send must deliver cleanly.
	d.flt = nil
	delivered := 0
	d.SetDeliver(func(*packet.Packet) { delivered++ })
	d.Send(mkPacket(2, packet.ReadReq))
	eng.Run()
	if delivered != 1 {
		t.Fatalf("post-recovery send: delivered %d, want 1", delivered)
	}
}

// TestRetrainResetsCreditStall: the per-VC credit-stall latch clears on
// recovery, so a post-repair stall is counted again (one per deferred
// packet, not zero and not double).
func TestRetrainResetsCreditStall(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.Credits = 1
	d := New(eng, cfg, nil)
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(mkPacket(1, packet.ReadReq)) // consumes the only credit
	d.Send(mkPacket(2, packet.ReadReq)) // stalls: latch sets, CreditStall=1
	eng.Run()
	if got := d.Stats().CreditStall; got != 1 {
		t.Fatalf("CreditStall = %d before recovery, want 1", got)
	}
	drained := 0
	d.Fail(func(*packet.Packet) { drained++ })
	if drained != 1 {
		t.Fatalf("Fail drained %d, want 1 (the stalled packet)", drained)
	}
	d.BeginRetrain()
	d.CompleteRetrain()
	// Packet 1 is still outstanding at the receiver, so the re-armed
	// counter is capacity minus one = 0, and a new head stalls afresh.
	if got := d.Credits(packet.VCRequest); got != 0 {
		t.Fatalf("credits after recovery = %d, want 0 (one outstanding)", got)
	}
	d.Send(mkPacket(3, packet.ReadReq))
	eng.Run()
	if got := d.Stats().CreditStall; got != 2 {
		t.Fatalf("CreditStall = %d after recovery stall, want 2", got)
	}
	// The stale return from packet 1 restores exactly full capacity.
	d.ReturnCredit(packet.VCRequest)
	eng.Run()
	if got := d.Credits(packet.VCRequest); got != 0 {
		t.Fatalf("credits = %d after packet 3 took the returned credit, want 0", got)
	}
	d.ReturnCredit(packet.VCRequest)
	if got := d.Credits(packet.VCRequest); got != cfg.Credits {
		t.Fatalf("credits = %d fully drained, want %d", got, cfg.Credits)
	}
}

// TestRetrainCreditReArm: credits re-arm to capacity minus outstanding,
// so stale ReturnCredits after recovery cannot overflow the counter.
func TestRetrainCreditReArm(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.Credits = 4
	d := New(eng, cfg, nil)
	d.SetDeliver(func(*packet.Packet) {}) // receiver holds slots (no return)
	for i := 0; i < 3; i++ {
		d.Send(mkPacket(uint64(i), packet.ReadReq))
	}
	eng.Run() // all three land and stay outstanding
	retrainCycle(d)
	if got := d.Credits(packet.VCRequest); got != 1 {
		t.Fatalf("credits after recovery = %d, want 4-3=1", got)
	}
	for i := 0; i < 3; i++ {
		d.ReturnCredit(packet.VCRequest)
	}
	if got := d.Credits(packet.VCRequest); got != cfg.Credits {
		t.Fatalf("credits after stale returns = %d, want %d", got, cfg.Credits)
	}
	mustPanic(t, "extra ReturnCredit", func() { d.ReturnCredit(packet.VCRequest) })
}

// TestRetrainRestoresBandwidth: a direction that was down-bound before
// dying comes back at full construction-time width (retraining re-binds
// the complete lane set), and HealedBits counts exactly the traffic
// after recovery.
func TestRetrainRestoresBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.SetDeliver(func(p *packet.Packet) { d.ReturnCredit(packet.VCOf(p.Kind)) })
	d.Send(mkPacket(1, packet.ReadReq))
	eng.Run()
	d.Downbind()
	if d.Bandwidth() != 120e9 {
		t.Fatalf("downbind: %d bps", d.Bandwidth())
	}
	if d.HealedBits() != 0 {
		t.Fatalf("HealedBits = %d before any retrain", d.HealedBits())
	}
	retrainCycle(d)
	if d.Bandwidth() != 240e9 {
		t.Fatalf("bandwidth after retrain = %d, want full 240e9", d.Bandwidth())
	}
	d.Send(mkPacket(2, packet.ReadReq))
	eng.Run()
	want := uint64(packet.ReadReq.Bits())
	if d.HealedBits() != want {
		t.Fatalf("HealedBits = %d, want %d (one post-repair packet)", d.HealedBits(), want)
	}
}

// TestRebindRestoresBandwidth: the Up half of a lane flap restores full
// width without a service interruption.
func TestRebindRestoresBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.Downbind()
	d.Downbind()
	if d.Bandwidth() != 60e9 {
		t.Fatalf("two downbinds: %d bps", d.Bandwidth())
	}
	d.Rebind()
	if d.Bandwidth() != 240e9 {
		t.Fatalf("rebind: %d bps, want 240e9", d.Bandwidth())
	}
	if d.Dead() {
		t.Fatal("rebind must not change service state")
	}
}
