package link

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func testCfg() Config {
	return Config{
		BandwidthBps:  240e9,
		SerDesLatency: 2 * sim.Nanosecond,
		QueueDepth:    4,
		Credits:       4,
		CountHop:      true,
	}
}

type countMeter struct{ bits uint64 }

func (m *countMeter) Hop(bits int) { m.bits += uint64(bits) }

func mkPacket(id uint64, kind packet.Kind) *packet.Packet {
	return &packet.Packet{ID: id, Kind: kind, Src: 0, Dst: 1}
}

func TestSerializationAndSerDesLatency(t *testing.T) {
	eng := sim.NewEngine()
	meter := &countMeter{}
	d := New(eng, testCfg(), meter)
	var got *packet.Packet
	var at sim.Time
	d.SetDeliver(func(p *packet.Packet) { got, at = p, eng.Now() })
	p := mkPacket(1, packet.ReadResp) // 640 bits
	d.Send(p)
	eng.Run()
	if got != p {
		t.Fatal("packet not delivered")
	}
	want := sim.BitTime(640, 240e9) + 2*sim.Nanosecond
	if at != want {
		t.Fatalf("arrived at %v, want %v", at, want)
	}
	if p.Hops != 1 {
		t.Fatalf("hops = %d", p.Hops)
	}
	if meter.bits != 640 {
		t.Fatalf("meter bits = %d", meter.bits)
	}
}

func TestWireSerializesPackets(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	var arrivals []sim.Time
	d.SetDeliver(func(p *packet.Packet) { arrivals = append(arrivals, eng.Now()) })
	d.Send(mkPacket(1, packet.ReadResp))
	d.Send(mkPacket(2, packet.ReadResp))
	eng.Run()
	ser := sim.BitTime(640, 240e9)
	if len(arrivals) != 2 {
		t.Fatal("both packets must arrive")
	}
	if arrivals[1]-arrivals[0] != ser {
		t.Fatalf("spacing %v, want serialization %v", arrivals[1]-arrivals[0], ser)
	}
}

func TestResponsePriority(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	var order []packet.Kind
	d.SetDeliver(func(p *packet.Packet) { order = append(order, p.Kind) })
	// Enqueue requests first, then a response; the response must win the
	// next arbitration even though it arrived later.
	d.Send(mkPacket(1, packet.ReadReq))
	d.Send(mkPacket(2, packet.ReadReq))
	d.Send(mkPacket(3, packet.ReadResp))
	eng.Run()
	// First request is already on the wire when the response arrives, so
	// the order is req, resp, req.
	want := []packet.Kind{packet.ReadReq, packet.ReadResp, packet.ReadReq}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestNoVCPriorityRoundRobins(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.NoVCPriority = true
	d := New(eng, cfg, nil)
	var order []packet.Kind
	d.SetDeliver(func(p *packet.Packet) { order = append(order, p.Kind) })
	d.Send(mkPacket(1, packet.ReadReq))
	d.Send(mkPacket(2, packet.ReadReq))
	d.Send(mkPacket(3, packet.ReadResp))
	d.Send(mkPacket(4, packet.ReadResp))
	eng.Run()
	// Round-robin alternates VCs after the head-start: expect some
	// interleaving rather than strict response-first.
	if len(order) != 4 {
		t.Fatal("lost packets")
	}
	if order[1] == packet.ReadResp && order[2] == packet.ReadResp {
		t.Fatalf("NoVCPriority still prioritized responses: %v", order)
	}
}

func TestCreditExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.Credits = 2
	d := New(eng, cfg, nil)
	delivered := 0
	d.SetDeliver(func(p *packet.Packet) { delivered++ })
	for i := 0; i < 4; i++ {
		d.Send(mkPacket(uint64(i), packet.ReadReq))
	}
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d with 2 credits, want 2", delivered)
	}
	if d.Stats().CreditStall == 0 {
		t.Fatal("credit stall not recorded")
	}
	// Returning credits resumes transmission.
	d.ReturnCredit(packet.VCRequest)
	d.ReturnCredit(packet.VCRequest)
	eng.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d after credit return, want 4", delivered)
	}
}

func TestQueueDepthAndOnSpace(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.QueueDepth = 2
	d := New(eng, cfg, nil)
	d.SetDeliver(func(p *packet.Packet) {})
	spaces := 0
	d.SetOnSpace(func(vc packet.VC) { spaces++ })
	d.Send(mkPacket(1, packet.ReadReq))
	if !d.CanAccept(packet.VCRequest) {
		t.Fatal("queue should have space (first left immediately)")
	}
	d.Send(mkPacket(2, packet.ReadReq))
	d.Send(mkPacket(3, packet.ReadReq))
	eng.Run()
	if spaces == 0 {
		t.Fatal("OnSpace never fired")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic")
		}
	}()
	for i := 0; i < 10; i++ {
		d.Send(mkPacket(uint64(10+i), packet.ReadReq))
	}
}

func TestCountHopFalse(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.CountHop = false
	meter := &countMeter{}
	d := New(eng, cfg, meter)
	p := mkPacket(1, packet.ReadReq)
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(p)
	eng.Run()
	if p.Hops != 0 || meter.bits != 0 {
		t.Fatal("internal connection must not count hops or energy")
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(mkPacket(1, packet.ReadReq))
	d.Send(mkPacket(2, packet.ReadResp))
	eng.Run()
	s := d.Stats()
	if s.Sent[packet.VCRequest] != 1 || s.Sent[packet.VCResponse] != 1 {
		t.Fatalf("sent %v", s.Sent)
	}
	if s.BitsSent != 128+640 {
		t.Fatalf("bits = %d", s.BitsSent)
	}
	if s.BusyTime != sim.BitTime(128, 240e9)+sim.BitTime(640, 240e9) {
		t.Fatalf("busy = %v", s.BusyTime)
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit overflow panic")
		}
	}()
	d.ReturnCredit(packet.VCRequest)
}

func TestBuffer(t *testing.T) {
	eng := sim.NewEngine()
	credits := map[packet.VC]int{}
	b := NewBuffer(2, func(vc packet.VC) { credits[vc]++ })
	p1 := mkPacket(1, packet.ReadReq)
	p2 := mkPacket(2, packet.ReadReq)
	b.Push(p1, 0)
	b.Push(p2, 0)
	if b.Len(packet.VCRequest) != 2 {
		t.Fatal("len")
	}
	if b.Head(packet.VCRequest) != p1 {
		t.Fatal("head")
	}
	got := b.Pop(packet.VCRequest, 10)
	if got != p1 || credits[packet.VCRequest] != 1 {
		t.Fatal("pop/credit")
	}
	if b.TotalWait() != 10 || b.MeanWait() != 10 {
		t.Fatalf("wait accounting: total=%v mean=%v", b.TotalWait(), b.MeanWait())
	}
	if b.Head(packet.VCResponse) != nil {
		t.Fatal("empty vc head should be nil")
	}
	_ = eng
	// Overflow panics.
	b.Push(mkPacket(3, packet.ReadReq), 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("push overflow must panic")
			}
		}()
		b.Push(mkPacket(4, packet.ReadReq), 0)
	}()
	// Pop from empty panics.
	defer func() {
		if recover() == nil {
			t.Fatal("empty pop must panic")
		}
	}()
	b.Pop(packet.VCResponse, 0)
}

func TestNewValidatesBandwidthAndLatency(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"zero bandwidth", func(c *Config) { c.BandwidthBps = 0 }},
		{"negative bandwidth", func(c *Config) { c.BandwidthBps = -1 }},
		{"negative serdes", func(c *Config) { c.SerDesLatency = -sim.Nanosecond }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCfg()
			tc.mut(&cfg)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", tc.name)
				}
			}()
			New(sim.NewEngine(), cfg, nil)
		})
	}
	// Zero SerDes latency is a legal (idealized) link.
	cfg := testCfg()
	cfg.SerDesLatency = 0
	New(sim.NewEngine(), cfg, nil)
}

// TestCreditStallCountedOncePerPacket: a credit-starved head packet is
// one stall no matter how many times pump re-probes it; the counter
// advances only when a new packet is deferred.
func TestCreditStallCountedOncePerPacket(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.Credits = 1
	d := New(eng, cfg, nil)
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(mkPacket(1, packet.ReadReq)) // consumes the only credit
	d.Send(mkPacket(2, packet.ReadReq)) // will stall at the head
	eng.Run()
	if got := d.Stats().CreditStall; got != 1 {
		t.Fatalf("CreditStall = %d after first deferral, want 1", got)
	}
	// More sends re-probe the starved VC; the stuck head must not recount.
	d.Send(mkPacket(3, packet.ReadReq))
	eng.Run()
	if got := d.Stats().CreditStall; got != 1 {
		t.Fatalf("CreditStall = %d after pump re-probes, want still 1", got)
	}
	// Freeing the head lets packet 2 go; packet 3 then stalls — a new
	// deferred packet, so the counter advances exactly once more.
	d.ReturnCredit(packet.VCRequest)
	eng.Run()
	if got := d.Stats().CreditStall; got != 2 {
		t.Fatalf("CreditStall = %d after second deferral, want 2", got)
	}
}

// TestNoVCPriorityStarvedVCSkipped: the round-robin arbiter must skip a
// VC that has traffic but no credits and keep serving the other VC.
func TestNoVCPriorityStarvedVCSkipped(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.NoVCPriority = true
	cfg.Credits = 2
	d := New(eng, cfg, nil)
	var order []packet.Kind
	d.SetDeliver(func(p *packet.Packet) { order = append(order, p.Kind) })
	// Exhaust response credits.
	d.Send(mkPacket(1, packet.ReadResp))
	d.Send(mkPacket(2, packet.ReadResp))
	eng.Run()
	// A starved response plus two requests: round-robin must hand the
	// wire to the request VC both times.
	d.Send(mkPacket(3, packet.ReadResp))
	d.Send(mkPacket(4, packet.ReadReq))
	d.Send(mkPacket(5, packet.ReadReq))
	eng.Run()
	want := []packet.Kind{packet.ReadResp, packet.ReadResp, packet.ReadReq, packet.ReadReq}
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivered %v, want %v", order, want)
		}
	}
	if d.QueueLen(packet.VCResponse) != 1 {
		t.Fatal("starved response left the queue")
	}
	// Returning a response credit releases the held packet.
	d.ReturnCredit(packet.VCResponse)
	eng.Run()
	if len(order) != 5 || order[4] != packet.ReadResp {
		t.Fatalf("held response not released: %v", order)
	}
}

// TestCreditOverflowAfterTraffic: a double credit return after real
// traffic (credits back at the cap) must panic, not silently mint flow
// control.
func TestCreditOverflowAfterTraffic(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testCfg(), nil)
	d.SetDeliver(func(*packet.Packet) {})
	d.Send(mkPacket(1, packet.ReadReq))
	eng.Run()
	d.ReturnCredit(packet.VCRequest) // back to the cap
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit overflow panic")
		}
	}()
	d.ReturnCredit(packet.VCRequest)
}
