package link

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestCrossShardArrival wires a Direction as a shard boundary: the
// sender's components (queues, wire, credits) live on shard 0, while
// arrivals post into shard 1 through the partitioned engine, with the
// SerDes latency as the channel lookahead. Deliver must run on shard
// 1's engine at exactly the same instant a same-engine link would have
// delivered, and the credit return travels back as a delayed post —
// the full round trip over the conservative boundary, exercised under
// -race by the parallel run.
func TestCrossShardArrival(t *testing.T) {
	cfg := testCfg()
	// Deep enough to absorb the whole burst at injection time; credits
	// stay scarce so forward progress hinges on the returned credits.
	cfg.QueueDepth = 16
	par := sim.NewParallel(2)
	par.Connect(0, 1, cfg.SerDesLatency)
	par.Connect(1, 0, cfg.SerDesLatency)
	src, dst := par.Shard(0), par.Shard(1)

	// Reference: the same traffic over a single-engine link records the
	// exact delivery times the boundary link must reproduce.
	refEng := sim.NewEngine()
	ref := New(refEng, cfg, nil)
	var refTimes []sim.Time
	ref.SetDeliver(func(p *packet.Packet) {
		refTimes = append(refTimes, refEng.Now())
		ref.ReturnCredit(packet.VCOf(p.Kind))
	})

	d := New(src.Engine(), cfg, nil)
	d.SetCrossShard(func(at sim.Time, fn sim.ArgHandler, arg any) {
		src.PostArg(1, at, fn, arg)
	})
	var gotTimes []sim.Time
	d.SetDeliver(func(p *packet.Packet) {
		// Runs on shard 1's engine (its worker goroutine): record the
		// receiver-side clock, then send the credit back across the
		// boundary the same conservative way. ReturnCredit mutates the
		// sender's credit counter, so it must execute on shard 0.
		gotTimes = append(gotTimes, dst.Engine().Now())
		vc := packet.VCOf(p.Kind)
		dst.PostArg(0, dst.Engine().Now()+cfg.SerDesLatency, func(any) {
			d.ReturnCredit(vc)
		}, nil)
	})

	// More packets than credits, so completion depends on the returned
	// credits actually crossing back and re-pumping the sender.
	const n = 10
	for i := 0; i < n; i++ {
		ref.Send(mkPacket(uint64(i), packet.ReadReq))
		d.Send(mkPacket(uint64(i), packet.ReadReq))
	}
	refEng.Run()
	par.Run(2)

	if len(gotTimes) != n {
		t.Fatalf("delivered %d/%d packets across the boundary", len(gotTimes), n)
	}
	if len(refTimes) != n {
		t.Fatalf("reference delivered %d/%d", len(refTimes), n)
	}
	// The boundary adds no latency of its own for the first credit
	// window; after that the credit round trip costs one extra SerDes
	// hop versus the reference's instant return, so compare only the
	// first in-credit burst exactly and check ordering beyond it.
	for i := 0; i < cfg.Credits; i++ {
		if gotTimes[i] != refTimes[i] {
			t.Errorf("packet %d arrived at %v across the boundary, want %v", i, gotTimes[i], refTimes[i])
		}
	}
	for i := 1; i < n; i++ {
		if gotTimes[i] < gotTimes[i-1] {
			t.Errorf("arrivals out of order: %v after %v", gotTimes[i], gotTimes[i-1])
		}
		if gotTimes[i] < refTimes[i] {
			t.Errorf("boundary delivery %d at %v earlier than same-engine %v", i, gotTimes[i], refTimes[i])
		}
	}
}

// TestCrossShardNeedsLookahead pins the guard: a zero-SerDes direction
// cannot sit on a shard boundary.
func TestCrossShardNeedsLookahead(t *testing.T) {
	cfg := testCfg()
	cfg.SerDesLatency = 0
	d := New(sim.NewEngine(), cfg, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-lookahead boundary")
		}
	}()
	d.SetCrossShard(func(sim.Time, sim.ArgHandler, any) {})
}
