// Package ddr models the conventional multi-drop DDR bus whose
// capacity/bandwidth tradeoff motivates memory networks (§2.1, Table 1):
// adding DIMMs to a channel increases electrical loading and forces the
// bus clock down, so capacity scales only by sacrificing bandwidth —
// exactly what point-to-point cube links avoid.
package ddr

import "fmt"

// Generation identifies a DDR standard.
type Generation uint8

const (
	// DDR3 per Table 1 (Dell PowerEdge 2009 guidance).
	DDR3 Generation = iota
	// DDR4 per Table 1 (Dell 2016 guidance).
	DDR4
)

// String implements fmt.Stringer.
func (g Generation) String() string {
	if g == DDR4 {
		return "DDR4"
	}
	return "DDR3"
}

// speedTable reproduces Table 1: maximum bus clock (MHz) by DIMMs per
// channel.
var speedTable = map[Generation][3]int{
	DDR3: {1333, 1066, 800},
	DDR4: {2133, 2133, 1866},
}

// MaxSpeedMHz returns the maximum supported bus clock for the given
// number of DIMMs per channel (1-3). It returns an error outside the
// supported population range, mirroring the servers' 3-DPC limit.
func MaxSpeedMHz(g Generation, dimmsPerChannel int) (int, error) {
	if dimmsPerChannel < 1 || dimmsPerChannel > 3 {
		return 0, fmt.Errorf("ddr: %d DIMMs per channel unsupported (1-3)", dimmsPerChannel)
	}
	return speedTable[g][dimmsPerChannel-1], nil
}

// Channel models one populated DDR channel.
type Channel struct {
	Gen Generation
	DPC int
	// DIMMCapacity in bytes.
	DIMMCapacity uint64
}

// Capacity returns the channel's total capacity.
func (c Channel) Capacity() uint64 { return uint64(c.DPC) * c.DIMMCapacity }

// BandwidthGBs returns the channel's peak bandwidth in GB/s: the bus is
// 64 bits wide and transfers on both clock edges (the "DDR" in DDR), so
// peak bytes/s = MT/s x 8. The MHz figures in Table 1 are transfer
// rates (MT/s) per industry convention.
func (c Channel) BandwidthGBs() (float64, error) {
	mhz, err := MaxSpeedMHz(c.Gen, c.DPC)
	if err != nil {
		return 0, err
	}
	return float64(mhz) * 1e6 * 8 / 1e9, nil
}

// Point is one entry of the capacity/bandwidth frontier.
type Point struct {
	DPC           int
	SpeedMTs      int
	CapacityBytes uint64
	BandwidthGBs  float64
}

// Frontier sweeps 1-3 DPC for a generation and DIMM size, exposing the
// tradeoff the paper's introduction describes.
func Frontier(g Generation, dimmCapacity uint64) []Point {
	pts := make([]Point, 0, 3)
	for dpc := 1; dpc <= 3; dpc++ {
		ch := Channel{Gen: g, DPC: dpc, DIMMCapacity: dimmCapacity}
		bw, err := ch.BandwidthGBs()
		if err != nil {
			continue
		}
		mhz, _ := MaxSpeedMHz(g, dpc)
		pts = append(pts, Point{
			DPC:           dpc,
			SpeedMTs:      mhz,
			CapacityBytes: ch.Capacity(),
			BandwidthGBs:  bw,
		})
	}
	return pts
}
