package ddr

import (
	"testing"

	"memnet/internal/sim"
	"memnet/internal/workload"
)

func testChannel(t *testing.T, dpc int) *ChannelSim {
	t.Helper()
	cs, err := NewChannelSim(Channel{Gen: DDR4, DPC: dpc, DIMMCapacity: 32 << 30}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestChannelSingleAccess(t *testing.T) {
	cs := testChannel(t, 1)
	done := cs.Access(0, 0, false)
	// Closed row: tRCD + tCL + burst, then the bus transfer.
	if done < 18*sim.Nanosecond || done > 30*sim.Nanosecond {
		t.Fatalf("first access done at %v", done)
	}
}

func TestBusSerializes(t *testing.T) {
	cs := testChannel(t, 1)
	// Two accesses to different banks at the same instant: arrays overlap
	// but the shared data bus serializes the transfers.
	d1 := cs.Access(0, 0, false)
	d2 := cs.Access(0, 64, false)
	if d2 < d1+cs.beat {
		t.Fatalf("bus did not serialize: %v then %v (beat %v)", d1, d2, cs.beat)
	}
}

func TestThreeDPCSlowerBus(t *testing.T) {
	fast := testChannel(t, 2) // 2133 MT/s
	slow := testChannel(t, 3) // 1866 MT/s
	if slow.beat <= fast.beat {
		t.Fatalf("3DPC beat %v not slower than 2DPC %v", slow.beat, fast.beat)
	}
}

func TestRunTraceSaturation(t *testing.T) {
	// Demand far above the channel's ~17GB/s: the bus saturates and
	// latency balloons; utilization approaches 1.
	spec := workload.Spec{
		Name: "stream", ReadFraction: 0.7, MeanGap: 1 * sim.Nanosecond,
		SeqProb: 0.8, SeqStride: 64,
	}
	cs := testChannel(t, 3)
	res := cs.RunTrace(workload.New(spec, 1<<30, 1), 20000)
	if res.Completed != 20000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.BusUtilization < 0.95 {
		t.Fatalf("bus utilization %.2f, expected saturation", res.BusUtilization)
	}
	// Mean latency far above the unloaded ~25ns.
	if res.MeanLatency < 100*sim.Nanosecond {
		t.Fatalf("mean latency %v too low for an overloaded channel", res.MeanLatency)
	}
}

func TestRunTraceLightLoad(t *testing.T) {
	spec := workload.Spec{
		Name: "light", ReadFraction: 0.7, MeanGap: 50 * sim.Nanosecond,
		SeqProb: 0.5, SeqStride: 64,
	}
	cs := testChannel(t, 1)
	res := cs.RunTrace(workload.New(spec, 1<<30, 1), 5000)
	if res.MeanLatency > 60*sim.Nanosecond {
		t.Fatalf("light load latency %v too high", res.MeanLatency)
	}
	if res.BusUtilization > 0.2 {
		t.Fatalf("light load utilization %.2f", res.BusUtilization)
	}
}

func TestChannelSimErrors(t *testing.T) {
	if _, err := NewChannelSim(Channel{Gen: DDR4, DPC: 9}, 16); err == nil {
		t.Fatal("bad DPC must fail")
	}
	if _, err := NewChannelSim(Channel{Gen: DDR4, DPC: 1, DIMMCapacity: 1 << 30}, 0); err == nil {
		t.Fatal("zero banks must fail")
	}
}
