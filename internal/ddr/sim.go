package ddr

import (
	"fmt"

	"memnet/internal/config"
	"memnet/internal/mem"
	"memnet/internal/sim"
	"memnet/internal/workload"
)

// ChannelSim is a queueing model of one conventional DDR channel: a
// single shared command/data bus in front of per-DIMM banks. It exists
// to quantify the paper's motivation (§2.1): as DIMMs are added the bus
// slows down, and the single multi-drop bus — unlike a memory network's
// point-to-point links — serializes every data transfer in the channel.
type ChannelSim struct {
	ch    Channel
	banks []*mem.Bank
	bus   sim.Resource
	beat  sim.Time // data-bus occupancy per 64B access

	completed  uint64
	latencySum sim.Time
	finish     sim.Time
	busBusySum sim.Time
}

// NewChannelSim builds the model. banksPerDIMM is typically 16 for
// DDR4. DRAM array timings reuse the Table 2 DRAM parameters.
func NewChannelSim(ch Channel, banksPerDIMM int) (*ChannelSim, error) {
	bw, err := ch.BandwidthGBs()
	if err != nil {
		return nil, err
	}
	if banksPerDIMM <= 0 {
		return nil, fmt.Errorf("ddr: non-positive banks per DIMM")
	}
	timing := config.Default().DRAMTiming
	cs := &ChannelSim{ch: ch}
	for i := 0; i < ch.DPC*banksPerDIMM; i++ {
		cs.banks = append(cs.banks, mem.NewBank(config.DRAM, timing,
			sim.Time(i)*131*sim.Nanosecond))
	}
	// 64 bytes over the channel's peak bandwidth (bw is GB/s).
	cs.beat = sim.BitTime(64*8, int64(bw*8e9))
	return cs, nil
}

// Access services one 64B access arriving at time now and returns its
// completion time. The bank performs the array access; the shared bus
// then serializes the data transfer (this is the multi-drop bottleneck).
func (cs *ChannelSim) Access(now sim.Time, addr uint64, write bool) sim.Time {
	blk := addr / 64
	bank := int(blk % uint64(len(cs.banks)))
	row := int64(blk / uint64(len(cs.banks)) / 32) // 32 blocks per 2KB row
	kind := mem.Read
	if write {
		kind = mem.Write
	}
	ready := cs.banks[bank].Access(now, row, kind)
	start, end := cs.bus.Reserve(ready, cs.beat)
	_ = start
	cs.busBusySum += cs.beat
	cs.completed++
	cs.latencySum += end - now
	if end > cs.finish {
		cs.finish = end
	}
	return end
}

// Results summarizes a completed trace run.
type ChannelResults struct {
	Completed   uint64
	FinishTime  sim.Time
	MeanLatency sim.Time
	// BusUtilization is the fraction of the run the data bus was busy.
	BusUtilization float64
}

// RunTrace drives the channel with a workload generator for n
// transactions, respecting the trace's inter-arrival gaps (open loop:
// DDR channels have no windowed backpressure to the core in this model;
// latency growth under overload shows up directly).
func (cs *ChannelSim) RunTrace(gen workload.Generator, n uint64) ChannelResults {
	var now sim.Time
	for i := uint64(0); i < n; i++ {
		tx := gen.Next()
		now += tx.Gap
		cs.Access(now, tx.Addr%cs.ch.Capacity(), tx.Write)
	}
	res := ChannelResults{
		Completed:  cs.completed,
		FinishTime: cs.finish,
	}
	if cs.completed > 0 {
		res.MeanLatency = cs.latencySum / sim.Time(cs.completed)
	}
	if cs.finish > 0 {
		res.BusUtilization = float64(cs.busBusySum) / float64(cs.finish)
	}
	return res
}
