package ddr

import "testing"

// TestTable1 pins the paper's Table 1 exactly.
func TestTable1(t *testing.T) {
	want := map[Generation][3]int{
		DDR3: {1333, 1066, 800},
		DDR4: {2133, 2133, 1866},
	}
	for g, speeds := range want {
		for dpc := 1; dpc <= 3; dpc++ {
			got, err := MaxSpeedMHz(g, dpc)
			if err != nil {
				t.Fatal(err)
			}
			if got != speeds[dpc-1] {
				t.Errorf("%v %d DPC = %d, want %d", g, dpc, got, speeds[dpc-1])
			}
		}
	}
}

func TestUnsupportedPopulation(t *testing.T) {
	for _, dpc := range []int{0, 4, -1} {
		if _, err := MaxSpeedMHz(DDR4, dpc); err == nil {
			t.Errorf("%d DPC should be rejected", dpc)
		}
	}
}

func TestChannelDerived(t *testing.T) {
	ch := Channel{Gen: DDR4, DPC: 2, DIMMCapacity: 32 << 30}
	if ch.Capacity() != 64<<30 {
		t.Fatal("capacity")
	}
	bw, err := ch.BandwidthGBs()
	if err != nil {
		t.Fatal(err)
	}
	// 2133 MT/s x 8 B = 17.064 GB/s.
	if bw < 17.0 || bw > 17.1 {
		t.Fatalf("bandwidth %.3f", bw)
	}
	bad := Channel{Gen: DDR3, DPC: 9}
	if _, err := bad.BandwidthGBs(); err == nil {
		t.Fatal("bad DPC must error")
	}
}

// TestFrontierTradeoff verifies the paper's motivating observation:
// capacity strictly grows with DPC while bandwidth never improves.
func TestFrontierTradeoff(t *testing.T) {
	for _, g := range []Generation{DDR3, DDR4} {
		pts := Frontier(g, 16<<30)
		if len(pts) != 3 {
			t.Fatalf("%v frontier has %d points", g, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].CapacityBytes <= pts[i-1].CapacityBytes {
				t.Errorf("%v: capacity not increasing", g)
			}
			if pts[i].BandwidthGBs > pts[i-1].BandwidthGBs {
				t.Errorf("%v: bandwidth increased with load", g)
			}
		}
		// DDR3 specifically loses bandwidth at every step.
		if g == DDR3 && pts[2].BandwidthGBs >= pts[0].BandwidthGBs {
			t.Error("DDR3 3DPC should be slower than 1DPC")
		}
	}
}

func TestGenerationString(t *testing.T) {
	if DDR3.String() != "DDR3" || DDR4.String() != "DDR4" {
		t.Fatal("names")
	}
}
