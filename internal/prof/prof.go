// Package prof wires the standard pprof profilers into the command-line
// tools. Every binary that runs simulations accepts -cpuprofile and
// -memprofile flags through this package, so a perf regression anywhere
// in the event loop can be pinned down with
//
//	mnexp -exp fig4 -quick -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// without ad-hoc instrumentation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a
// stop function that ends it and writes a heap profile (if memPath is
// non-empty). The stop function is safe to call exactly once, typically
// deferred from main after flag parsing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
