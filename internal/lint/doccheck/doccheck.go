// Package doccheck implements the mnlint analyzer that keeps the
// public surface of the documentation-bearing packages documented.
//
// The campaign/result-cache layer (internal/campaign), the experiment
// harnesses (internal/experiments), the telemetry layer (internal/obs),
// and the shared hashing helper (internal/fnv) are the packages other
// code programs against and the packages DESIGN.md points readers into;
// an exported identifier without a doc comment there is an API change
// that shipped without its contract. The analyzer requires a leading
// doc comment on every exported top-level function, method, type,
// constant, and variable, and on every exported field or interface
// method of an exported top-level type. A shared comment on a
// declaration group (`// Common durations.` above a const block)
// covers the group; trailing line comments do not count (godoc does
// not attach them to fields the way a leading comment is). Deliberate
// omissions can be annotated //lint:nodoc.
package doccheck

import (
	"go/ast"
	"strings"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the doccheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc: "flag undocumented exported identifiers in the documented-API " +
		"packages (campaign, experiments, obs, fnv, scenario)",
	Run: run,
}

// docPackages are the internal packages whose exported surface must be
// fully documented (path segment under internal/, as in
// lintutil.SimPackage).
var docPackages = []string{"campaign", "experiments", "obs", "fnv", "scenario"}

// docPackage reports whether the import path names a package held to
// full godoc coverage.
func docPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s != "internal" || i+1 >= len(segs) {
			continue
		}
		for _, p := range docPackages {
			if segs[i+1] == p {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !docPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	report := func(n ast.Node, kind, name string) {
		if dirs.Allows(n.Pos(), "nodoc") {
			return
		}
		pass.Reportf(n.Pos(),
			"exported %s %s has no doc comment (document it or annotate //lint:nodoc)",
			kind, name)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(report, d)
			case *ast.GenDecl:
				checkGen(report, d)
			}
		}
	}
	return nil, nil
}

// checkFunc requires a doc comment on exported functions and on
// exported methods of exported receiver types.
func checkFunc(report func(ast.Node, string, string), d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: not public surface
		}
		kind, name = "method", recv+"."+d.Name.Name
	}
	report(d, kind, name)
}

// receiverName resolves a method receiver type expression to its base
// type name ("T" for T, *T, T[...]).
func receiverName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}

// checkGen requires a doc comment on exported type, const, and var
// specs; a comment on the enclosing declaration group covers every
// spec in it.
func checkGen(report func(ast.Node, string, string), d *ast.GenDecl) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s, "type", s.Name.Name)
			}
			if s.Name.IsExported() {
				checkTypeMembers(report, s)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name, kindOf(d), name.Name)
				}
			}
		}
	}
}

// kindOf labels a value spec's declaration keyword.
func kindOf(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "constant"
	}
	return "variable"
}

// checkTypeMembers requires leading doc comments on exported struct
// fields and interface methods of an exported type.
func checkTypeMembers(report func(ast.Node, string, string), s *ast.TypeSpec) {
	var fields *ast.FieldList
	kind := "field"
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
		kind = "interface method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name, kind, s.Name.Name+"."+name.Name)
			}
		}
	}
}
