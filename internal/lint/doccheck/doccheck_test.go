package doccheck_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/doccheck"
)

func TestDoccheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), doccheck.Analyzer,
		"memnet/internal/campaign/dc",
		"memnet/internal/scenario/sd")
}

func TestUnrestrictedPackageIgnored(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), doccheck.Analyzer,
		"free")
}
