// Package free is outside the documented-API set: nothing is required.
package free

type Bare struct{ X int }

func Undoc() {}

var Loose int
