// Package dc is a doccheck fixture posing as a campaign subpackage.
package dc

// Documented is fine.
type Documented struct {
	// A is documented.
	A int
	C int // want `exported field Documented.C has no doc comment`
	d int
}

type Bare struct{} // want `exported type Bare has no doc comment`

type hidden struct{ X int } // unexported type: no requirement

// Iface is documented.
type Iface interface {
	// Do is documented.
	Do()
	Go() // want `exported interface method Iface.Go has no doc comment`
}

// Grouped declarations share one doc comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const Loose = 3 // want `exported constant Loose has no doc comment`

var LooseVar int // want `exported variable LooseVar has no doc comment`

//lint:nodoc internal escape hatch
var Escaped int

// Fn is documented.
func Fn() {}

func Undoc() {} // want `exported function Undoc has no doc comment`

func helper() {}

// Method is documented.
func (Documented) Method() {}

func (*Documented) Undoc() {} // want `exported method Documented.Undoc has no doc comment`

func (hidden) Exported() {} // method on unexported type: no requirement

var _ = func() { helper() }
