// Package sd is a doccheck fixture posing as a scenario subpackage:
// the declarative-format structs are public API, so every exported
// field of the document model needs a doc comment.
package sd

// Spec mirrors a scenario document root.
type Spec struct {
	// Schema is the format identifier.
	Schema string
	Name   string // want `exported field Spec.Name has no doc comment`
}

// Decode is documented.
func Decode(data []byte) (*Spec, error) { return &Spec{}, nil }

func Canonical(s *Spec) []byte { return nil } // want `exported function Canonical has no doc comment`

//lint:nodoc schema bytes re-exported for the CLI only
var SchemaJSON []byte
