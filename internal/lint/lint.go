// Package lint assembles mnlint, memnet's determinism and
// packet-ownership linter suite. The analyzers enforce the invariants
// the simulator's bit-identical-replay guarantee rests on, plus the
// repo's documentation policy:
//
//	detmap     no unordered map iteration in simulation packages
//	wallclock  no host clock or global math/rand in simulation packages
//	poolcheck  no use of a *packet.Packet after Pool.Put releases it
//	schedcheck no possibly-negative or float-derived event delays
//	statskey   no fmt-built stat keys or string-keyed counters on hot paths
//	sharedstate no unguarded package-level writes or non-channel
//	           cross-goroutine access in internal/sim and internal/core
//	doccheck   no undocumented exported identifiers in the documented-API
//	           packages (campaign, experiments, obs, fnv)
//	creditflow every flow-credit decrement or delivery-closure packet
//	           reaches a credit sink on all paths (CFG dataflow)
//	lookahead  no cross-shard post scheduled below the smallest declared
//	           Connect lookahead (constant propagation over the CFG)
//	fsmcheck   state-field writes follow the //lint:fsm declared
//	           transition relation (branch-refined state masks)
//
// The last three run on the internal/lint/cfg dataflow engine and
// exchange cross-package facts through the shared analysis.Facts store,
// so callee summaries from internal/link and internal/sim are visible
// when internal/core is analyzed.
//
// See DESIGN.md ("Determinism rules" and "Dataflow linting") for the
// rationale and the //lint: annotation escape hatches. cmd/mnlint is
// the driver.
package lint

import (
	"memnet/internal/lint/analysis"
	"memnet/internal/lint/creditflow"
	"memnet/internal/lint/detmap"
	"memnet/internal/lint/doccheck"
	"memnet/internal/lint/fsmcheck"
	"memnet/internal/lint/lookahead"
	"memnet/internal/lint/poolcheck"
	"memnet/internal/lint/schedcheck"
	"memnet/internal/lint/sharedstate"
	"memnet/internal/lint/statskey"
	"memnet/internal/lint/wallclock"
)

// Analyzers returns the full mnlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		wallclock.Analyzer,
		poolcheck.Analyzer,
		schedcheck.Analyzer,
		sharedstate.Analyzer,
		statskey.Analyzer,
		doccheck.Analyzer,
		creditflow.Analyzer,
		lookahead.Analyzer,
		fsmcheck.Analyzer,
	}
}

// ByName returns the named analyzers, or all of them for an empty list.
// Unknown names are ignored (the driver validates separately).
func ByName(names ...string) []*analysis.Analyzer {
	all := Analyzers()
	if len(names) == 0 {
		return all
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
