package analysis

import (
	"fmt"
	"go/types"
	"sort"
)

// Facts is mnlint's cross-package fact store: a map from
// (package path, object path, fact name) to an analyzer-defined value.
// It is the channel through which an analyzer's per-package summaries
// (e.g. creditflow's "this function discharges a credit on every
// path") become visible when a *dependent* package is analyzed — the
// loader returns units in dependency order, so by the time
// internal/core is on the pass, the facts computed over internal/link
// and internal/sim are already present.
//
// Facts are keyed by path strings rather than types.Object identity on
// purpose: the vet driver and the analysistest harness type-check
// packages in separate universes, where object pointers do not
// compare, but "memnet/internal/link.(Direction).ReturnCredit" does.
type Facts struct {
	m map[factKey]any
	// pkgs records, per fact name, which (pkg, object) pairs carry it,
	// so analyzers can enumerate facts of a kind across every package
	// analyzed so far (lookahead does this for Connect declarations).
	byName map[string][]factKey
}

type factKey struct {
	pkg    string
	object string // "" for package-level facts
	name   string
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{m: map[factKey]any{}, byName: map[string][]factKey{}}
}

// ObjectPath renders the stable intra-package path of a function,
// method, or other package-scope object: "F" for a package function,
// "(T).M" for a method (pointer receivers normalized away).
func ObjectPath(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return fmt.Sprintf("(%s).%s", named.Obj().Name(), fn.Name())
			}
		}
	}
	return obj.Name()
}

// ExportObjectFact records a fact about a package-scope object.
func (f *Facts) ExportObjectFact(obj types.Object, name string, value any) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	f.export(factKey{obj.Pkg().Path(), ObjectPath(obj), name}, value)
}

// ObjectFact returns the named fact about obj, if recorded.
func (f *Facts) ObjectFact(obj types.Object, name string) (any, bool) {
	if obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	v, ok := f.m[factKey{obj.Pkg().Path(), ObjectPath(obj), name}]
	return v, ok
}

// ExportPackageFact records a package-level fact (object path empty).
// Multiple exports under the same key overwrite; use distinct names or
// aggregate values for accumulation.
func (f *Facts) ExportPackageFact(pkgPath, name string, value any) {
	f.export(factKey{pkgPath, "", name}, value)
}

// PackageFact returns the named package-level fact of pkgPath.
func (f *Facts) PackageFact(pkgPath, name string) (any, bool) {
	v, ok := f.m[factKey{pkgPath, "", name}]
	return v, ok
}

// AllFacts returns every value recorded under the fact name, ordered
// deterministically by (package, object) key.
func (f *Facts) AllFacts(name string) []any {
	keys := f.byName[name]
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].object < keys[j].object
	})
	out := make([]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.m[k])
	}
	return out
}

func (f *Facts) export(k factKey, value any) {
	if _, exists := f.m[k]; !exists {
		f.byName[k.name] = append(f.byName[k.name], k)
	}
	f.m[k] = value
}
