// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that memnet's linters use.
//
// The real x/tools module is not vendored (memnet is deliberately
// zero-dependency), so this package provides the same shape — an
// Analyzer with a Run function over a Pass carrying parsed files and
// full type information — letting the five mnlint analyzers be written
// in the standard go/analysis style. If the repo ever vendors x/tools,
// the analyzers port over by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is a short lower-case identifier (used in diagnostics and to
	// select analyzers on the mnlint command line).
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and types to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package fact store shared by every pass of a
	// run. The driver analyzes packages in dependency order, so facts
	// exported while analyzing internal/link are visible here when the
	// same analyzer later runs over internal/core. Never nil.
	Facts *Facts

	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a position-resolved diagnostic as produced by RunAnalyzers.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Unit is one loaded package ready for analysis (produced by the
// loader; decoupled here so analyzers and tests need not import it).
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// RunAnalyzers applies each analyzer to the unit and returns the
// findings sorted by position then analyzer name. facts may be nil
// (an empty store is substituted); passing one store across the units
// of a run, in dependency order, is what makes cross-package
// summaries visible to the semantic analyzers.
func RunAnalyzers(u *Unit, analyzers []*Analyzer, facts *Facts) ([]Finding, error) {
	if facts == nil {
		facts = NewFacts()
	}
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Facts:     facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: name,
				Pos:      u.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Inspect walks every file in the pass, calling fn for each node; fn
// returning false prunes the subtree (ast.Inspect semantics).
func Inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
