package lookahead_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/lookahead"
)

// TestLookahead runs the analyzer over the fixture packages in
// dependency order; the link fixture's closures import the sim
// fixture's types, and the smallest Connect lookahead crosses over as
// a package fact.
func TestLookahead(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lookahead.Analyzer,
		"memnet/internal/sim", "memnet/internal/link")
}
