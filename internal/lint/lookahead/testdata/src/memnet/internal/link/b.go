// Fixture: SetCrossShard boundary closures. The closure receives the
// arrival time the SerDes lookahead guarantees; scheduling below that
// parameter escapes the contract.
package link

import "memnet/internal/sim"

type Direction struct {
	post func(at sim.Time, fn sim.ArgHandler, arg any)
}

func (d *Direction) SetCrossShard(post func(at sim.Time, fn sim.ArgHandler, arg any)) {
	d.post = post
}

// wireGood forwards the guaranteed time unchanged (and later).
func wireGood(d *Direction, s *sim.Shard) {
	d.SetCrossShard(func(at sim.Time, fn sim.ArgHandler, arg any) {
		s.PostArg(1, at, fn, arg)
	})
	d.SetCrossShard(func(at sim.Time, fn sim.ArgHandler, arg any) {
		s.PostArg(1, at+5, fn, arg)
	})
}

// wireEarly reschedules the arrival before the guaranteed time.
func wireEarly(d *Direction, s *sim.Shard) {
	d.SetCrossShard(func(at sim.Time, fn sim.ArgHandler, arg any) {
		s.PostArg(1, at-3, fn, arg) // want `reschedules the arrival 3 before the time the lookahead contract guarantees`
	})
}
