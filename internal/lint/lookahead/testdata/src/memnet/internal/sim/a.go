// Fixture: conservative-lookahead obligations. The declarations mirror
// the real sim package shapes (Time, Engine.Now, Shard.Post/PostArg,
// Parallel.Connect) without importing it.
package sim

type Time int64

type ShardID int32

type ArgHandler func(any)

type Handler func()

type Engine struct{ now Time }

func (e *Engine) Now() Time { return e.now }

type Shard struct{ eng *Engine }

func (s *Shard) Engine() *Engine { return s.eng }

func (s *Shard) Post(dst ShardID, at Time, fn Handler)                {}
func (s *Shard) PostArg(dst ShardID, at Time, fn ArgHandler, arg any) {}

type Parallel struct{}

func (p *Parallel) Connect(src, dst ShardID, lookahead Time) {}

const la = Time(10)

// connectGood declares positive lookaheads; the minimum (10) becomes
// the bound the posts below are checked against.
func connectGood(p *Parallel) {
	p.Connect(0, 1, la)
	p.Connect(1, 0, 25)
}

// connectZero declares a lookahead the runtime rejects outright.
func connectZero(p *Parallel) {
	p.Connect(0, 1, 0) // want `Connect declares a non-positive lookahead`
}

// postGood schedules exactly one lookahead ahead: legal.
func postGood(s *Shard, fn Handler) {
	s.Post(1, s.Engine().Now()+la, fn)
}

// postNow schedules at the sender's clock: never legal across shards.
func postNow(s *Shard, fn Handler) {
	s.Post(1, s.Engine().Now(), fn) // want `scheduled at the sender's clock`
}

// postPast schedules before the sender's clock.
func postPast(s *Shard, fn ArgHandler) {
	s.PostArg(1, s.Engine().Now()-2, fn, nil) // want `scheduled at the sender's clock or earlier`
}

// postBelowWindow underruns the smallest declared lookahead (10).
func postBelowWindow(s *Shard, fn Handler) {
	s.Post(1, s.Engine().Now()+3, fn) // want `below the smallest declared channel lookahead \(10\)`
}

// postPropagated reaches the post through local delay arithmetic: the
// dataflow must carry Now+4 through both assignments.
func postPropagated(s *Shard, fn Handler) {
	at := s.Engine().Now() + 2
	at += 2
	s.Post(1, at, fn) // want `below the smallest declared channel lookahead \(10\)`
}

// postJoinSafe disagrees across branches, so the value joins to Top
// and nothing is provable: no report.
func postJoinSafe(s *Shard, fn Handler, slow bool) {
	at := s.Engine().Now() + 2
	if slow {
		at = s.Engine().Now() + 50
	}
	s.Post(1, at, fn)
}

// postAnnotated documents a deliberate same-shard fast path.
func postAnnotated(s *Shard, fn Handler) {
	s.Post(0, s.Engine().Now(), fn) //lint:lookahead same-shard post, exempt from the channel contract
}

// postUnknown passes an opaque time: nothing provable, no report.
func postUnknown(s *Shard, fn Handler, at Time) {
	s.Post(1, at, fn)
}
