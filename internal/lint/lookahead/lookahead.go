// Package lookahead implements the conservative-lookahead analyzer.
//
// The parallel engine's correctness contract (sim.Parallel) is that a
// cross-shard post lands no earlier than the sender's clock plus the
// declared channel lookahead; the runtime enforces it with a panic at
// the post site (sim.Shard.post). That panic fires deep into a
// campaign, on whatever seed first drives the schedule across the
// boundary. lookahead moves the provable subset of those failures to
// compile time by constant-propagating delay arithmetic into each
// cross-shard scheduling site:
//
//   - Parallel.Connect with a provably non-positive constant lookahead
//     is reported (the runtime panics on it unconditionally).
//   - Shard.Post / Shard.PostArg whose time argument evaluates to the
//     sender's clock plus a non-positive offset is reported: every
//     declared channel has a positive lookahead, so such a post can
//     never be legal.
//   - A post whose offset is a positive constant below the smallest
//     constant lookahead any Connect declares (in this package or one
//     analyzed earlier — the minimum travels as a package fact) is
//     reported: it underruns the global window no matter which channel
//     carries it.
//   - A closure handed to link-style SetCrossShard receives the
//     arrival time the boundary guarantees; rescheduling below that
//     parameter (param minus a constant) is reported — the lookahead
//     contract only covers times at or past it.
//
// The propagation is a forward dataflow over the internal/lint/cfg
// graph with a four-point symbolic domain: Const(k), Now+k (the
// sender's clock plus k), Param+k (the boundary-guaranteed time plus
// k), and Top. Joins keep a variable only where every incoming path
// agrees exactly — anything else goes to Top — so the analyzer only
// reports what it can prove on every path through the site.
// //lint:lookahead on the call suppresses a finding.
package lookahead

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/cfg"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the lookahead entry point.
var Analyzer = &analysis.Analyzer{
	Name: "lookahead",
	Doc:  "cross-shard posts must be scheduled at least one channel lookahead past the sender's clock",
	Run:  run,
}

// minFact is the package fact carrying the smallest constant lookahead
// declared by the package's Connect calls, as an int64.
const minFact = "lookahead.min"

// symbolic value kinds.
type kind uint8

const (
	top    kind = iota // unknown
	constK             // absolute constant n
	nowK               // sender's clock plus n
	paramK             // boundary-guaranteed arrival time plus n
)

type symval struct {
	k kind
	n int64
}

func (v symval) shift(d int64) symval {
	if v.k == top {
		return v
	}
	return symval{v.k, v.n + d}
}

// env maps local Time-ish variables to symbolic values; absent means
// Top. A nil env is the dataflow bottom (block not yet visited).
type env map[*types.Var]symval

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)

	// Pass 1: collect the package's constant Connect lookaheads (and
	// report non-positive ones), then fold in the minima exported by
	// previously analyzed packages.
	minLA := int64(-1)
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isMethod(pass.TypesInfo, call, "Parallel", "Connect") || len(call.Args) != 3 {
			return true
		}
		la, ok := constInt(pass.TypesInfo, call.Args[2])
		if !ok {
			return true
		}
		if la <= 0 {
			if !dirs.Allows(call.Pos(), "lookahead") {
				pass.Reportf(call.Pos(), "Connect declares a non-positive lookahead (%d); the runtime rejects it — a cross-shard channel needs a positive latency to give the window barrier room", la)
			}
			return true
		}
		if minLA < 0 || la < minLA {
			minLA = la
		}
		return true
	})
	if minLA > 0 {
		if prev, ok := pass.Facts.PackageFact(pass.Pkg.Path(), minFact); !ok || minLA < prev.(int64) {
			pass.Facts.ExportPackageFact(pass.Pkg.Path(), minFact, minLA)
		}
	}
	for _, v := range pass.Facts.AllFacts(minFact) {
		if la := v.(int64); minLA < 0 || la < minLA {
			minLA = la
		}
	}

	// Pass 2: dataflow over every function body. Closures handed to
	// SetCrossShard get their time parameter seeded as Param+0.
	boundary := crossShardLits(pass)
	for _, f := range pass.Files {
		for _, fb := range lintutil.Functions(f) {
			var seed env
			if lit, ok := fb.Node.(*ast.FuncLit); ok {
				if p := boundary[lit]; p != nil {
					seed = env{p: symval{paramK, 0}}
				}
			}
			checkBody(pass, dirs, fb.Body, seed, minLA)
		}
	}
	return nil, nil
}

// crossShardLits maps each func literal passed to a SetCrossShard call
// to its guaranteed-time parameter (the first sim.Time-named param).
func crossShardLits(pass *analysis.Pass) map[*ast.FuncLit]*types.Var {
	out := make(map[*ast.FuncLit]*types.Var)
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "SetCrossShard" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
			if !ok {
				continue
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if named, ok := p.Type().(*types.Named); ok && named.Obj().Name() == "Time" {
					out[lit] = p
					break
				}
			}
		}
		return true
	})
	return out
}

// checkBody solves the symbolic-value dataflow over one function body
// and audits every Post/PostArg site against the propagated values.
func checkBody(pass *analysis.Pass, dirs *lintutil.Directives, body *ast.BlockStmt, seed env, minLA int64) {
	g := cfg.New(body)
	if seed == nil {
		seed = env{}
	}
	prob := cfg.Problem[env]{
		Dir:      cfg.Forward,
		Boundary: seed,
		Init:     nil,
		Transfer: func(blk *cfg.Block, in env) env {
			e := in.clone()
			for _, n := range blk.Nodes {
				transferNode(pass, n, e)
			}
			return e
		},
		Join:  joinEnv,
		Equal: equalEnv,
	}
	sol := cfg.Solve(g, prob)
	// Replay each block from its solved input to have the environment
	// in hand at every call site.
	for _, blk := range g.Blocks {
		e := sol.In[blk.Index]
		if e == nil && blk != g.Entry {
			continue // unreachable
		}
		e = e.clone()
		for _, n := range blk.Nodes {
			checkNode(pass, dirs, n, e, minLA)
			transferNode(pass, n, e)
		}
		if blk.Cond != nil {
			checkNode(pass, dirs, blk.Cond, e, minLA)
		}
	}
}

// transferNode applies one executable node's effect to the environment.
// Nested function literals are opaque (they are analyzed separately)
// and deferred statements take effect in the exit block, where the CFG
// replays their calls.
func transferNode(pass *analysis.Pass, n ast.Node, e env) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			applyAssign(pass, x, e)
		case *ast.IncDecStmt:
			if v := lhsVar(pass.TypesInfo, x.X); v != nil {
				d := int64(1)
				if x.Tok == token.DEC {
					d = -1
				}
				if cur, ok := e[v]; ok {
					e[v] = cur.shift(d)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Address taken: the variable can change behind our back.
				if v := lhsVar(pass.TypesInfo, x.X); v != nil {
					delete(e, v)
				}
			}
		}
		return true
	})
}

// applyAssign folds one assignment into the environment.
func applyAssign(pass *analysis.Pass, a *ast.AssignStmt, e env) {
	if len(a.Lhs) != len(a.Rhs) {
		for _, l := range a.Lhs {
			if v := lhsVar(pass.TypesInfo, l); v != nil {
				delete(e, v)
			}
		}
		return
	}
	for i, l := range a.Lhs {
		v := lhsVar(pass.TypesInfo, l)
		if v == nil {
			continue
		}
		switch a.Tok {
		case token.ASSIGN, token.DEFINE:
			setOrClear(e, v, eval(pass, e, a.Rhs[i]))
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			cur, ok := e[v]
			d, isConst := constInt(pass.TypesInfo, a.Rhs[i])
			if !ok || !isConst {
				delete(e, v)
				continue
			}
			if a.Tok == token.SUB_ASSIGN {
				d = -d
			}
			e[v] = cur.shift(d)
		default:
			delete(e, v)
		}
	}
}

func setOrClear(e env, v *types.Var, val symval) {
	if val.k == top {
		delete(e, v)
		return
	}
	e[v] = val
}

// lhsVar resolves an assignable expression to a plain local variable,
// or nil for stores through structure.
func lhsVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := lintutil.ObjectOf(info, id).(*types.Var)
	return v
}

// eval computes the symbolic value of an expression under env.
func eval(pass *analysis.Pass, e env, x ast.Expr) symval {
	if n, ok := constInt(pass.TypesInfo, x); ok {
		return symval{constK, n}
	}
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := lintutil.ObjectOf(pass.TypesInfo, x).(*types.Var); ok {
			if val, ok := e[v]; ok {
				return val
			}
		}
	case *ast.CallExpr:
		if callee := lintutil.CalleeFunc(pass.TypesInfo, x); callee != nil &&
			callee.Name() == "Now" && len(x.Args) == 0 {
			return symval{nowK, 0}
		}
	case *ast.BinaryExpr:
		l := eval(pass, e, x.X)
		r := eval(pass, e, x.Y)
		switch x.Op {
		case token.ADD:
			if l.k != top && r.k == constK {
				return l.shift(r.n)
			}
			if r.k != top && l.k == constK {
				return r.shift(l.n)
			}
		case token.SUB:
			if l.k != top && r.k == constK {
				return l.shift(-r.n)
			}
		}
	}
	return symval{top, 0}
}

// constInt extracts an integer constant value go/types folded for the
// expression (covering named constants and typed conversions).
func constInt(info *types.Info, x ast.Expr) (int64, bool) {
	tv, ok := info.Types[x]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// joinEnv merges two block-input environments: nil is identity, and a
// variable survives only where both paths agree exactly — any
// disagreement drops it to Top (absent). The equality join bounds the
// lattice height, so loop-carried arithmetic (at -= 1 per iteration)
// converges to Top instead of descending forever.
func joinEnv(a, b env) env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(env)
	for v, av := range a {
		if bv, ok := b[v]; ok && av == bv {
			out[v] = av
		}
	}
	return out
}

func equalEnv(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	for v, av := range a {
		if bv, ok := b[v]; !ok || av != bv {
			return false
		}
	}
	return true
}

// checkNode reports lookahead violations at Post/PostArg sites in n,
// evaluated under the environment e.
func checkNode(pass *analysis.Pass, dirs *lintutil.Directives, n ast.Node, e env, minLA int64) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		var at ast.Expr
		switch {
		case isMethod(pass.TypesInfo, call, "Shard", "Post") && len(call.Args) == 3:
			at = call.Args[1]
		case isMethod(pass.TypesInfo, call, "Shard", "PostArg") && len(call.Args) == 4:
			at = call.Args[1]
		default:
			return true
		}
		if dirs.Allows(call.Pos(), "lookahead") {
			return true
		}
		switch v := eval(pass, e, at); v.k {
		case nowK:
			if v.n <= 0 {
				pass.Reportf(call.Pos(), "cross-shard post is scheduled at the sender's clock%s; every declared channel requires a positive lookahead, so this panics at the boundary", beforeSuffix(v.n))
			} else if minLA > 0 && v.n < minLA {
				pass.Reportf(call.Pos(), "cross-shard post is scheduled only %d past the sender's clock, below the smallest declared channel lookahead (%d); the runtime panics at the boundary", v.n, minLA)
			}
		case paramK:
			if v.n < 0 {
				pass.Reportf(call.Pos(), "cross-shard boundary closure reschedules the arrival %d before the time the lookahead contract guarantees; the receiving shard may already be past it", -v.n)
			}
		}
		return true
	})
}

func beforeSuffix(n int64) string {
	if n == 0 {
		return ""
	}
	return " or earlier"
}

// isMethod reports whether the call invokes a method named name on a
// receiver whose named type is typeName (any package — analysistest
// fixtures pose as sim with their own declarations).
func isMethod(info *types.Info, call *ast.CallExpr, typeName, name string) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}
