// Package lintutil holds the small pieces of policy and plumbing shared
// by the mnlint analyzers: which packages count as simulation code,
// //lint: suppression directives, and type-resolution helpers.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simPackages are the internal packages whose code executes inside (or
// feeds state into) the deterministic simulation loop. The determinism
// analyzers (detmap, wallclock, statskey) apply only here; cmd/ front
// ends, the profiler, experiment drivers, and the linter itself may use
// wall-clock time and unordered iteration freely.
var simPackages = []string{
	"sim", "core", "link", "router", "vault", "host", "fault",
	"arb", "topology", "mem", "migrate", "stats", "obs", "span",
	"scenario",
}

// SimPackage reports whether the import path names simulation code:
// memnet/internal/<p> (or a subpackage) for one of the restricted
// package names. Matching is by path segment, so an analysistest
// fixture declared under .../internal/sim is restricted too.
func SimPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s != "internal" || i+1 >= len(segs) {
			continue
		}
		next := segs[i+1]
		for _, p := range simPackages {
			if next == p {
				return true
			}
		}
	}
	return false
}

// directives collects, per file line, the //lint:... directive comments
// so an analyzer can honor suppressions cheaply.
type Directives struct {
	fset  *token.FileSet
	lines map[string]map[int]string // filename -> line -> directive text
}

// NewDirectives scans the files' comments for //lint: directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := d.lines[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					d.lines[pos.Filename] = m
				}
				m[pos.Line] = text
			}
		}
	}
	return d
}

// Allows reports whether a //lint:<name>... directive is attached to
// the node at pos: on the same line, or alone on the line above.
func (d *Directives) Allows(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	m := d.lines[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if text, ok := m[line]; ok && strings.HasPrefix(text, "lint:"+name) {
			return true
		}
	}
	return false
}

// Text returns the argument text of a //lint:<name> directive attached
// to the node at pos (same line, or alone on the line above): the
// directive line with the "lint:<name>" token removed and surrounding
// space trimmed. Unlike Allows, the name must match the directive's
// first token exactly — "lint:fsmtrans" does not answer for "fsm".
func (d *Directives) Text(pos token.Pos, name string) (string, bool) {
	p := d.fset.Position(pos)
	m := d.lines[p.Filename]
	if m == nil {
		return "", false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		text, ok := m[line]
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(text, "lint:"+name)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for indirect/builtin calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes the package-level function
// (or method) pkgPath.name. pkgPath matching tolerates the module
// prefix: "time" matches only the standard library package "time".
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// IsMethodOn reports whether the call invokes a method named name whose
// receiver's named type is pkgPath.typeName (pointer or value).
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return NamedTypeIs(sig.Recv().Type(), pkgPath, typeName)
}

// NamedTypeIs reports whether t (or its pointee) is the named type
// pkgPath.typeName.
func NamedTypeIs(t types.Type, pkgPath, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// IsMapType reports whether the expression's type is (an alias of) a map.
func IsMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ObjectOf returns the object an identifier denotes (use or def).
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// EnclosingFuncs returns every function body in the file, top-level or
// literal, paired with its declaration node for position reporting.
type FuncBody struct {
	Node ast.Node       // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt // never nil
}

// Functions yields all function bodies in the file (declared functions,
// methods, and function literals).
func Functions(f *ast.File) []FuncBody {
	var out []FuncBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncBody{Node: fn, Body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncBody{Node: fn, Body: fn.Body})
		}
		return true
	})
	return out
}
