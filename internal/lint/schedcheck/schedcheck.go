// Package schedcheck implements the mnlint analyzer that audits event
// scheduling arguments for the two classic simulated-time bugs:
//
//   - possibly-negative delays: passing a difference of two sim.Time
//     values (t1 - t2) to Engine.Schedule/ScheduleArg, or an absolute
//     time built by subtraction to Engine.At/AtArg. The engine panics
//     on negative delays at runtime, but only on the (possibly rare,
//     workload-dependent) execution that actually goes negative;
//     statically the subtraction is the smell. Annotate provably
//     monotonic arithmetic with //lint:monotonic <reason>.
//
//   - float-derived delays: converting a float expression straight to
//     sim.Time inside a scheduling argument. Float rounding is
//     platform- and optimization-stable in Go, but accumulating float
//     durations drifts from the integer-picosecond model; conversions
//     belong in configuration code (sim.FromNanos) with hot paths
//     staying in integer arithmetic.
//
// Constant arguments are exempt (a negative constant is reported
// directly; a constant float literal like sim.Time(1.5) is exact).
package schedcheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the schedcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "schedcheck",
	Doc: "flag event scheduling with possibly-negative (t1 - t2) or " +
		"float-derived delays; annotate intentional arithmetic //lint:monotonic",
	Run: run,
}

const simPkg = "memnet/internal/sim"

// schedMethods maps Engine scheduling entry points to the index of the
// time/delay argument and whether that argument is a relative delay.
var schedMethods = map[string]struct {
	argIndex int
	relative bool
}{
	"Schedule":    {0, true},
	"ScheduleArg": {0, true},
	"At":          {0, false},
	"AtArg":       {0, false},
}

func run(pass *analysis.Pass) (any, error) {
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		m, ok := schedMethods[fn.Name()]
		if !ok || len(call.Args) <= m.argIndex {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil ||
			!lintutil.NamedTypeIs(sig.Recv().Type(), simPkg, "Engine") {
			return true
		}
		checkTimeArg(pass, dirs, call, call.Args[m.argIndex], m.relative)
		return true
	})
	return nil, nil
}

func checkTimeArg(pass *analysis.Pass, dirs *lintutil.Directives, call *ast.CallExpr, arg ast.Expr, relative bool) {
	info := pass.TypesInfo
	// Constants are decided at compile time: flag a negative constant
	// delay outright, accept everything else.
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		if relative && constant.Sign(tv.Value) < 0 {
			pass.Reportf(arg.Pos(), "negative constant delay %s", tv.Value)
		}
		return
	}
	what := "delay"
	if !relative {
		what = "absolute time"
	}
	ast.Inspect(arg, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if e.Op.String() != "-" {
				return true
			}
			if !isSimTime(info, e.X) || isConstant(info, e) {
				return true
			}
			if dirs.Allows(call.Pos(), "monotonic") || dirs.Allows(e.Pos(), "monotonic") {
				return true
			}
			pass.Reportf(e.Pos(),
				"possibly-negative %s (%s involves a sim.Time subtraction); guard against going negative or annotate //lint:monotonic <reason>",
				what, exprKind(e))
		case *ast.UnaryExpr:
			if e.Op.String() == "-" && isSimTime(info, e) && !isConstant(info, e) {
				pass.Reportf(e.Pos(), "negated sim.Time in %s argument", what)
			}
		case *ast.CallExpr:
			// A conversion sim.Time(f) where f is float-typed.
			tv, ok := info.Types[e.Fun]
			if !ok || !tv.IsType() || len(e.Args) != 1 {
				return true
			}
			if !lintutil.NamedTypeIs(tv.Type, simPkg, "Time") {
				return true
			}
			at := info.TypeOf(e.Args[0])
			if at == nil || isConstant(info, e.Args[0]) {
				return true
			}
			if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(e.Pos(),
					"float-derived %s: sim.Time conversion of a float expression; compute in integer picoseconds (or convert once at configuration time via sim.FromNanos)",
					what)
			}
		}
		return true
	})
}

// isSimTime reports whether the expression's type is sim.Time.
func isSimTime(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && lintutil.NamedTypeIs(t, simPkg, "Time")
}

// isConstant reports whether the expression folds to a constant.
func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// exprKind names the subtraction shape for the message.
func exprKind(e *ast.BinaryExpr) string {
	return "t1 - t2"
}
