package schedcheck_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/schedcheck"
)

func TestSchedcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), schedcheck.Analyzer, "b", "rec")
}
