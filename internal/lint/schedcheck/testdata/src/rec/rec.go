// Package rec exercises schedcheck against recovery-style scheduling:
// arming retrain begin/complete events from a fault schedule.
package rec

import "memnet/internal/sim"

// repairEvent mirrors the fault schedule's dual-time shape: Start is
// when the link begins retraining, At is when it completes.
type repairEvent struct {
	Start, At sim.Time
}

// Bad: deriving the retrain-begin instant by subtracting the window
// from the completion time can go negative when the window exceeds
// the repair time.
func badRetrainStart(eng *sim.Engine, ev repairEvent, window sim.Time, f sim.Handler) {
	eng.At(ev.At-window, f) // want `possibly-negative absolute time`
}

// Bad: a float-scaled backoff on the recovery path.
func badBackoff(eng *sim.Engine, base sim.Time, factor float64, f sim.Handler) {
	eng.Schedule(sim.Time(float64(base)*factor), f) // want `float-derived delay`
}

// Good: the shipped shape — the schedule carries both instants and
// recovery arms them directly; additive windows cannot go negative.
func goodRetrainArming(eng *sim.Engine, ev repairEvent, begin, complete sim.Handler) {
	eng.At(ev.Start, begin)
	eng.At(ev.At, complete)
}

func goodAdditiveWindow(eng *sim.Engine, window sim.Time, f sim.Handler) {
	eng.At(eng.Now()+window, f)
}

// Good: a guarded, annotated drain delay whose monotonicity is proven.
func goodGuardedDrain(eng *sim.Engine, busyUntil sim.Time, f sim.Handler) {
	if busyUntil <= eng.Now() {
		return
	}
	//lint:monotonic guarded above: busyUntil > Now(), difference is positive
	eng.Schedule(busyUntil-eng.Now(), f)
}
