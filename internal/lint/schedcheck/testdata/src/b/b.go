// Package b exercises schedcheck against the real sim engine API.
package b

import "memnet/internal/sim"

// Bad: a difference of two sim.Times can go negative and panic the
// engine on whichever seed first makes t2 exceed t1.
func subtractedDelay(eng *sim.Engine, t1, t2 sim.Time, f sim.Handler) {
	eng.Schedule(t1-t2, f) // want `possibly-negative delay`
}

// Bad: the same subtraction buried in a larger expression.
func nestedSubtraction(eng *sim.Engine, ready sim.Time, f sim.Handler) {
	eng.Schedule(2*(ready-eng.Now()), f) // want `possibly-negative delay`
}

// Bad: absolute-time scheduling built by subtraction.
func absoluteSubtraction(eng *sim.Engine, deadline, slack sim.Time, f sim.Handler) {
	eng.At(deadline-slack, f) // want `possibly-negative absolute time`
}

// Bad: float-derived delay on a scheduling path.
func floatDelay(eng *sim.Engine, ns float64, f sim.Handler) {
	eng.Schedule(sim.Time(ns*1000), f) // want `float-derived delay`
}

// Bad: negated variable delay.
func negatedDelay(eng *sim.Engine, d sim.Time, f sim.Handler) {
	eng.Schedule(-d, f) // want `negated sim\.Time in delay argument`
}

// Bad: a constant negative delay is always wrong.
func constantNegative(eng *sim.Engine, f sim.Handler) {
	eng.Schedule(-5, f) // want `negative constant delay -5`
}

// Good: additive arithmetic cannot go below its operands.
func additive(eng *sim.Engine, d sim.Time, f sim.Handler) {
	eng.Schedule(d+sim.Nanosecond, f)
	eng.At(eng.Now()+d, f)
}

// Good: constant delays, including exact float literals.
func constants(eng *sim.Engine, f sim.Handler) {
	eng.Schedule(5*sim.Nanosecond, f)
	eng.Schedule(sim.Time(1.5e3), f)
}

// Good: an annotated subtraction whose monotonicity the author proves.
func annotated(eng *sim.Engine, until sim.Time, f sim.Handler) {
	if until <= eng.Now() {
		return
	}
	//lint:monotonic guarded above: until > Now(), so the difference is positive
	eng.Schedule(until-eng.Now(), f)
}

// Good: the bound-callback variants take the same scrutiny.
func argVariants(eng *sim.Engine, d sim.Time, g sim.ArgHandler) {
	eng.ScheduleArg(d, g, 1)
	eng.AtArg(eng.Now()+d, g, 2)
}

// Bad: ScheduleArg with a subtraction.
func argSubtraction(eng *sim.Engine, a, b sim.Time, g sim.ArgHandler) {
	eng.ScheduleArg(a-b, g, nil) // want `possibly-negative delay`
}
