package cfg

// This file is the generic worklist solver. An analysis instantiates
// Problem[F] with its fact type and lattice operations; Solve iterates
// transfer functions to a fixpoint and returns the per-block facts.
//
// The contract is the textbook one: Join must be commutative,
// associative, and idempotent; Transfer must be monotone over the
// lattice order implied by Join; and the lattice must have finite
// height (or Transfer must converge anyway), otherwise Solve will not
// terminate. All mnlint analyzers use small powerset or flat-constant
// lattices, so convergence is immediate.

// Direction selects forward (facts flow entry -> exit along Succs) or
// backward (exit -> entry along Preds) propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem describes one dataflow analysis over a Graph.
type Problem[F any] struct {
	Dir Direction

	// Boundary is the fact at the boundary block (Entry for Forward,
	// Exit for Backward).
	Boundary F
	// Init is the initial fact of every other block's input (the
	// lattice bottom).
	Init F

	// Transfer maps a block's input fact to its output fact. It must
	// not retain or mutate in: treat facts as values (copy before
	// changing shared structure).
	Transfer func(b *Block, in F) F
	// Join combines two facts at a control-flow merge.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool

	// EdgeTransfer, when non-nil, refines the fact flowing along one
	// specific edge before it joins into the successor — the hook
	// path-sensitive analyses (fsmcheck, lookahead) use to learn from
	// branch conditions. For a block with a non-nil Cond, succIdx 0 is
	// the true edge and 1 the false edge. Only meaningful Forward.
	EdgeTransfer func(from *Block, succIdx int, out F) F
}

// Solution holds the fixpoint: the input and output fact of every
// block, indexed by Block.Index.
type Solution[F any] struct {
	In, Out []F
}

// Solve runs the worklist algorithm to a fixpoint.
func Solve[F any](g *Graph, p Problem[F]) *Solution[F] {
	n := len(g.Blocks)
	sol := &Solution[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = p.Init
	}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	sol.In[boundary.Index] = p.Boundary

	// Deterministic worklist: a FIFO queue seeded in block order, with
	// an on-queue bitmap to avoid duplicates. Block order approximates
	// reverse postorder for Forward (the builder emits blocks roughly
	// in source order), which keeps iteration counts small.
	queue := make([]*Block, 0, n)
	onQueue := make([]bool, n)
	push := func(b *Block) {
		if !onQueue[b.Index] {
			onQueue[b.Index] = true
			queue = append(queue, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	flowOut := func(b *Block) []*Block {
		if p.Dir == Forward {
			return b.Succs
		}
		return b.Preds
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		onQueue[b.Index] = false

		out := p.Transfer(b, sol.In[b.Index])
		sol.Out[b.Index] = out
		for si, s := range flowOut(b) {
			f := out
			if p.EdgeTransfer != nil && p.Dir == Forward {
				f = p.EdgeTransfer(b, si, out)
			}
			joined := p.Join(sol.In[s.Index], f)
			if !p.Equal(joined, sol.In[s.Index]) {
				sol.In[s.Index] = joined
				push(s)
			}
		}
	}
	// One final transfer so Out is consistent even for blocks whose In
	// never changed after seeding (already done in the loop above, but
	// blocks never popped with a late In update could be stale — the
	// worklist re-pushes on every In change, so Out is up to date).
	return sol
}

// ReachableFrom computes, for a forward analysis helper, the set of
// blocks reachable from start (inclusive) following Succs. Analyzers
// use it for simple "does any path from A hit B" queries that do not
// need a full lattice.
func ReachableFrom(start *Block) map[*Block]bool {
	seen := map[*Block]bool{start: true}
	work := []*Block{start}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
