// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward/backward dataflow problems on
// them, using only the standard library. It is the engine under
// mnlint's semantic analyzers (creditflow, lookahead, fsmcheck, and
// the rewritten poolcheck): where the original analyzers reasoned in
// source order, these reason over paths — a credit consumed on one
// branch and returned only on another is exactly the class of bug a
// source-order walk cannot see.
//
// The graph is a conventional basic-block CFG:
//
//   - Every simple statement (assignment, inc/dec, expression, decl,
//     send, empty) lands in a block's Nodes slice in execution order.
//   - Branch conditions are recorded both in Nodes (their side effects
//     execute) and as the block's Cond, with the convention that
//     Succs[0] is the true edge and Succs[1] the false edge, so
//     path-sensitive analyses can refine facts per edge.
//   - return and calls to the builtin panic terminate a block with no
//     successors (panic paths are not "reaching exit" — a leaked
//     obligation on a path that dies in panic is noise, not a bug).
//     Return blocks instead link to the synthetic Exit block.
//   - defer statements are collected per function and their calls
//     replayed into the Exit block in LIFO order, so "discharged by a
//     deferred call" falls out of ordinary reachability.
//
// for/range/switch/type-switch/select/goto and labeled break/continue
// are all supported; see the builder below for the exact shapes.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of AST
// nodes with a single entry and (up to) two ordered successors.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, used as a
	// dense map key by the solver).
	Index int
	// Nodes holds the block's statements and evaluated expressions in
	// execution order.
	Nodes []ast.Node
	// Cond, when non-nil, is the branch condition evaluated at the end
	// of the block; Succs[0] is then the true edge and Succs[1] the
	// false edge.
	Cond ast.Expr
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block

	// kind tags synthetic blocks for String/debugging.
	kind string
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is executed first; Exit is reached by every normal return
	// path (panic paths have no successors at all).
	Entry, Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Defers holds the deferred call expressions in registration
	// (source) order; they are also replayed LIFO into Exit.Nodes.
	Defers []*ast.CallExpr
}

// builder carries the state of one CFG construction.
type builder struct {
	g *Graph
	// cur is the block new nodes append to; nil after a terminator
	// (return/panic/break/...) until the next label or join point.
	cur *Block

	// breakTo / continueTo map enclosing loop & switch scopes (innermost
	// last) to their break and continue targets.
	breakTo    []*Block
	continueTo []*Block
	// labels maps label names to their blocks: break/continue targets
	// for labeled statements and goto destinations.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	gotos         map[string]*Block // label -> block started at the label
	// pendingGotos are goto statements seen before their label.
	pendingGotos map[string][]*Block
	// pendingLabel is the label of the LabeledStmt currently being
	// built, so a labeled for/range/switch registers its break and
	// continue targets under that name.
	pendingLabel string
	// returns collects blocks ended by a return statement; New wires
	// them to Exit after the walk.
	returns []*Block
}

// New builds the CFG of a function body. A nil body yields a trivial
// entry->exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:             &Graph{},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		gotos:         map[string]*Block{},
		pendingGotos:  map[string][]*Block{},
	}
	entry := b.newBlock("entry")
	exit := &Block{kind: "exit"}
	b.g.Entry = entry
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Normal fall-off-the-end return, plus every explicit return.
	b.jumpTo(exit)
	for _, r := range b.returns {
		edge(r, exit)
	}
	exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, exit)
	b.g.Exit = exit
	// Replay deferred calls into Exit in LIFO order so analyses see
	// them on every normal path out of the function.
	for i := len(b.g.Defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.g.Defers[i])
	}
	return b.g
}

// newBlock appends a fresh block to the graph.
func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds from->to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpTo ends the current block with an unconditional edge to dst (a
// no-op when the current path is already terminated).
func (b *builder) jumpTo(dst *Block) {
	if b.cur != nil {
		edge(b.cur, dst)
	}
	b.cur = nil
}

// startBlock begins appending to blk.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// add appends a node to the current block, starting an unreachable
// block if the path was terminated (dead code still gets analyzed —
// it just has no predecessors).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		if b.cur != nil {
			b.cur.Cond = s.Cond
		}
		condBlk := b.cur
		thenBlk := b.newBlock("if.then")
		done := b.newBlock("if.done")
		if condBlk != nil {
			edge(condBlk, thenBlk) // Succs[0]: true
		}
		b.startBlock(thenBlk)
		b.stmtList(s.Body.List)
		b.jumpTo(done)
		if s.Else != nil {
			elseBlk := b.newBlock("if.else")
			if condBlk != nil {
				edge(condBlk, elseBlk) // Succs[1]: false
			}
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jumpTo(done)
		} else if condBlk != nil {
			edge(condBlk, done) // Succs[1]: false falls through
		}
		b.startBlock(done)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jumpTo(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.cur.Cond = s.Cond
			edge(b.cur, body) // true
			edge(b.cur, done) // false
		} else {
			edge(b.cur, body)
		}
		b.pushLoop(done, post)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jumpTo(post)
		if s.Post != nil {
			b.startBlock(post)
			b.stmt(s.Post)
			b.jumpTo(head)
		}
		b.startBlock(done)

	case *ast.RangeStmt:
		// Model: head evaluates X and the per-iteration key/value
		// assignment; body may repeat or exit.
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jumpTo(head)
		b.startBlock(head)
		// The per-iteration key/value idents are evaluated (and, for
		// analyses, rebound) at the head of each iteration.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		edge(b.cur, body)
		edge(b.cur, done)
		b.pushLoop(done, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jumpTo(head)
		b.startBlock(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseSwitch(s.Body, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseSwitch(s.Body, func(cc *ast.CaseClause) {})

	case *ast.SelectStmt:
		// Every comm clause is a possible successor; a select with no
		// default blocks until one fires, so control always leaves
		// through some clause (or never, for an empty select).
		head := b.cur
		if head == nil {
			head = b.newBlock("select.head")
			b.startBlock(head)
		}
		done := b.newBlock("select.done")
		b.pushBreak(done)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			edge(head, blk)
			b.startBlock(blk)
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jumpTo(done)
		}
		b.popBreak()
		// A select{} with no clauses blocks forever: done then has no
		// predecessors, which models the unreachability exactly.
		b.startBlock(done)

	case *ast.LabeledStmt:
		name := s.Label.Name
		target := b.newBlock("label." + name)
		b.jumpTo(target)
		// Wire any gotos that jumped forward to this label.
		for _, src := range b.pendingGotos[name] {
			edge(src, target)
		}
		delete(b.pendingGotos, name)
		b.gotos[name] = target
		b.startBlock(target)
		// For labeled loops/switches, break LABEL / continue LABEL must
		// resolve to the statement's own targets; stash the label so the
		// loop builders can register it.
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labelBreak[s.Label.Name]; t != nil {
					b.jumpTo(t)
				} else {
					b.cur = nil
				}
			} else if n := len(b.breakTo); n > 0 {
				b.jumpTo(b.breakTo[n-1])
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labelContinue[s.Label.Name]; t != nil {
					b.jumpTo(t)
				} else {
					b.cur = nil
				}
			} else if t := b.innerContinue(); t != nil {
				// Skip switch/select frames (their continue slot is nil)
				// down to the innermost enclosing loop.
				b.jumpTo(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			name := s.Label.Name
			if t, ok := b.gotos[name]; ok {
				b.jumpTo(t)
			} else if b.cur != nil {
				b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally by caseSwitch.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.returns = append(b.returns, b.cur)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s.X)
		if isPanic(s.X) {
			// The path dies here: no successors, not even Exit.
			b.cur = nil
		}

	case *ast.GoStmt:
		b.add(s)

	case nil:
		// nothing

	default:
		// AssignStmt, IncDecStmt, DeclStmt, SendStmt, EmptyStmt, ...
		b.add(s)
	}
}

// caseSwitch builds the shared switch / type-switch shape: the tag
// block fans out to each case (plus done when there is no default),
// and fallthrough chains a case body into the next.
func (b *builder) caseSwitch(body *ast.BlockStmt, emitExprs func(*ast.CaseClause)) {
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.startBlock(head)
		head = b.cur
	}
	done := b.newBlock("switch.done")
	b.pushBreak(done)

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock("switch.case")
		if cc.List == nil {
			hasDefault = true
		}
		edge(head, caseBlocks[i])
	}
	if !hasDefault {
		edge(head, done)
	}
	for i, cc := range clauses {
		b.startBlock(caseBlocks[i])
		emitExprs(cc)
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsThrough = true
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(caseBlocks) {
			b.jumpTo(caseBlocks[i+1])
		} else {
			b.jumpTo(done)
		}
	}
	b.popBreak()
	b.startBlock(done)
}

// innerContinue returns the innermost non-nil continue target (switch
// and select frames park a nil in the continue stack).
func (b *builder) innerContinue() *Block {
	for i := len(b.continueTo) - 1; i >= 0; i-- {
		if b.continueTo[i] != nil {
			return b.continueTo[i]
		}
	}
	return nil
}

// pushLoop registers break/continue targets for a loop, including the
// pending label of an enclosing LabeledStmt.
func (b *builder) pushLoop(brk, cont *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.labelContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *builder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// pushBreak registers only a break target (switch/select).
func (b *builder) pushBreak(brk *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, nil)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.pendingLabel = ""
	}
}

func (b *builder) popBreak() { b.popLoop() }

// isPanic reports whether the expression is a call to the builtin
// panic (the only terminator mnlint's analyses care about: a path that
// panics is not a leak path).
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
