package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `body` as the body of a function and returns its CFG.
func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// markerBlock finds the block and intra-block index of the call to the
// named function (markers are calls like A(), B(), ...).
func markerBlock(g *Graph, name string) (*Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return b, i
			}
		}
	}
	return nil, -1
}

// path reports whether execution can flow from marker `from` to marker
// `to` (strictly after it, following CFG edges; a marker reaches
// itself only through a cycle).
func path(t *testing.T, g *Graph, from, to string) bool {
	t.Helper()
	fb, fi := markerBlock(g, from)
	tb, ti := markerBlock(g, to)
	if fb == nil || tb == nil {
		t.Fatalf("marker not found: %s=%v %s=%v", from, fb, to, tb)
	}
	if fb == tb && ti > fi {
		return true
	}
	for _, s := range fb.Succs {
		if ReachableFrom(s)[tb] {
			return true
		}
	}
	return false
}

// reachesExit reports whether the marker can reach the Exit block.
func reachesExit(t *testing.T, g *Graph, from string) bool {
	t.Helper()
	fb, _ := markerBlock(g, from)
	if fb == nil {
		t.Fatalf("marker %s not found", from)
	}
	if fb == g.Exit {
		return true
	}
	for _, s := range fb.Succs {
		if ReachableFrom(s)[g.Exit] {
			return true
		}
	}
	return false
}

func TestShapes(t *testing.T) {
	type q struct {
		from, to string
		want     bool
	}
	cases := []struct {
		name string
		body string
		qs   []q
	}{
		{
			name: "straight line",
			body: "A(); B()",
			qs:   []q{{"A", "B", true}, {"B", "A", false}},
		},
		{
			name: "if else",
			body: "if c() { A() } else { B() }; C()",
			qs: []q{
				{"A", "B", false}, {"B", "A", false},
				{"A", "C", true}, {"B", "C", true},
				{"C", "A", false}, {"c", "B", true},
			},
		},
		{
			name: "if without else falls through",
			body: "if c() { A() }; C()",
			qs:   []q{{"c", "C", true}, {"A", "C", true}, {"C", "A", false}},
		},
		{
			name: "nested loops with labeled break and continue",
			body: `
outer:
	for c() {
		for d() {
			if e() {
				break outer
			}
			if f2() {
				continue outer
			}
			A()
		}
		B()
	}
	C()`,
			qs: []q{
				{"A", "A", true}, // inner back edge
				{"A", "B", true}, {"A", "C", true},
				{"e", "C", true},  // break outer skips B
				{"f2", "A", true}, // continue outer re-enters via outer head
				{"f2", "B", true}, // (on a later iteration's inner exit)
				{"B", "A", true},  // next outer iteration
			},
		},
		{
			name: "plain break and continue",
			body: "for c() { if d() { break }; if e() { continue }; A() }; B()",
			qs: []q{
				{"d", "B", true}, {"e", "A", true}, // continue loops, a later iteration runs A
				{"A", "A", true}, {"A", "B", true},
			},
		},
		{
			name: "continue inside switch targets the loop",
			body: "for c() { switch d() { case 1: continue; case 2: A() }; B() }; C()",
			qs: []q{
				{"A", "B", true},
				{"d", "d", true}, // continue reaches the loop head, then d again
				{"A", "C", true},
			},
		},
		{
			name: "switch with fallthrough",
			body: "switch t2() { case 1: A(); fallthrough; case 2: B(); case 3: C() }; D()",
			qs: []q{
				{"A", "B", true},  // fallthrough chains the bodies
				{"B", "C", false}, // no fallthrough from case 2
				{"A", "D", true}, {"B", "D", true}, {"C", "D", true},
				{"t2", "D", true}, // no default: tag may match nothing
			},
		},
		{
			name: "type switch",
			body: "switch v := x.(type) { case int: A(); _ = v; case string: B() }; C()",
			qs:   []q{{"A", "C", true}, {"B", "C", true}, {"A", "B", false}},
		},
		{
			name: "select",
			body: "select { case <-ch(): A(); case <-ch2(): B() }; C()",
			qs:   []q{{"A", "C", true}, {"B", "C", true}, {"A", "B", false}},
		},
		{
			name: "range loops",
			body: "for range xs() { A() }; B()",
			qs:   []q{{"A", "A", true}, {"A", "B", true}, {"xs", "B", true}},
		},
		{
			name: "goto backward forms a loop",
			body: "A()\nagain:\n\tB()\n\tif c() { goto again }\n\tC()",
			qs:   []q{{"B", "B", true}, {"A", "B", true}, {"B", "C", true}},
		},
		{
			name: "goto forward skips",
			body: "A()\nif c() { goto out }\nB()\nout:\n\tC()",
			qs:   []q{{"A", "C", true}, {"c", "C", true}, {"B", "C", true}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			for _, query := range tc.qs {
				if got := path(t, g, query.from, query.to); got != query.want {
					t.Errorf("%s: path(%s -> %s) = %v, want %v\n%s",
						tc.name, query.from, query.to, got, query.want, dump(g))
				}
			}
		})
	}
}

func TestPanicTerminates(t *testing.T) {
	g := parseBody(t, `if c() { A(); panic("boom") }; B()`)
	if path(t, g, "A", "B") {
		t.Errorf("panic path must not reach B\n%s", dump(g))
	}
	if reachesExit(t, g, "A") {
		t.Errorf("panic path must not reach Exit\n%s", dump(g))
	}
	if !reachesExit(t, g, "B") {
		t.Errorf("normal path must reach Exit\n%s", dump(g))
	}
}

func TestReturnWiresToExit(t *testing.T) {
	g := parseBody(t, "if c() { A(); return }; B()")
	if !reachesExit(t, g, "A") {
		t.Errorf("return path must reach Exit\n%s", dump(g))
	}
	if path(t, g, "A", "B") {
		t.Errorf("return path must not fall through to B\n%s", dump(g))
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := parseBody(t, "return\nA()")
	ab, _ := markerBlock(g, "A")
	if ab == nil {
		t.Fatal("A not placed in any block")
	}
	if len(ab.Preds) != 0 {
		t.Errorf("statement after return must be unreachable, got %d preds", len(ab.Preds))
	}
}

// TestDeferOrdering checks that deferred calls are replayed LIFO into
// the Exit block and recorded in registration order in Defers.
func TestDeferOrdering(t *testing.T) {
	g := parseBody(t, "defer d1()\nA()\ndefer d2()\nB()")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	name := func(c *ast.CallExpr) string { return c.Fun.(*ast.Ident).Name }
	if name(g.Defers[0]) != "d1" || name(g.Defers[1]) != "d2" {
		t.Errorf("Defers order = %s,%s; want d1,d2", name(g.Defers[0]), name(g.Defers[1]))
	}
	// Exit replays LIFO: ...d2 then d1 (d1 runs last, so it is last).
	n := len(g.Exit.Nodes)
	if n < 2 {
		t.Fatalf("exit has %d nodes, want >= 2", n)
	}
	last := g.Exit.Nodes[n-1].(*ast.CallExpr)
	secondLast := g.Exit.Nodes[n-2].(*ast.CallExpr)
	if name(secondLast) != "d2" || name(last) != "d1" {
		t.Errorf("exit replay = %s,%s; want d2,d1", name(secondLast), name(last))
	}
	// A deferred call is reachable from every marker (it sits in Exit).
	for _, m := range []string{"A", "B"} {
		if !reachesExit(t, g, m) {
			t.Errorf("%s must reach Exit", m)
		}
	}
}

// TestSolverMustDischarge runs a forward must-analysis ("has a
// discharge call happened on every path?") over branch shapes — the
// exact lattice creditflow uses, exercised directly on the solver.
func TestSolverMustDischarge(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool // discharged on all paths at Exit
	}{
		{"both branches", "if c() { D() } else { D() }; A()", true},
		{"one branch only", "if c() { D() }; A()", false},
		{"straight", "D(); A()", true},
		{"loop may skip", "for c() { D() }; A()", false},
		{"panic path exempt", `if c() { panic("x") }; D()`, true},
		{"after return on one path", "if c() { D(); return }; D()", true},
		{"deferred discharge", "defer D()\nA()", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			// Lattice: 0 = bottom (unvisited), 1 = not yet discharged,
			// 2 = discharged. Join = min over visited inputs.
			sol := Solve(g, Problem[int]{
				Dir:      Forward,
				Boundary: 1,
				Init:     0,
				Transfer: func(b *Block, in int) int {
					if in == 0 {
						return 0
					}
					for _, n := range b.Nodes {
						if hasCall(n, "D") {
							return 2
						}
					}
					return in
				},
				Join: func(a, b int) int {
					if a == 0 {
						return b
					}
					if b == 0 {
						return a
					}
					if a < b {
						return a
					}
					return b
				},
				Equal: func(a, b int) bool { return a == b },
			})
			got := sol.Out[g.Exit.Index] == 2
			if got != tc.want {
				t.Errorf("discharged-at-exit = %v, want %v\n%s", got, tc.want, dump(g))
			}
		})
	}
}

func hasCall(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// dump renders the graph structure for test failure messages.
func dump(g *Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = fmt.Sprint(s.Index)
		}
		fmt.Fprintf(&sb, "b%d(%s) [%d nodes] -> %s\n",
			b.Index, b.kind, len(b.Nodes), strings.Join(succs, ","))
	}
	return sb.String()
}
