package detmap_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detmap.Analyzer,
		"memnet/internal/sim/dm",
		"memnet/internal/fault/rec",
		"memnet/internal/scenario/canon",
		"example.com/notsim",
	)
}
