// Package detmap implements the mnlint analyzer that forbids
// result-affecting iteration over Go maps in simulation packages.
//
// Go randomizes map iteration order per range statement, so any map
// walk whose body influences simulation state, event ordering, or
// reported results breaks memnet's bit-identical determinism guarantee.
// The analyzer flags every `for ... range m` where m is a map, inside
// the restricted simulation packages, unless:
//
//   - the loop only collects keys/values into a slice that the same
//     function subsequently sorts (the canonical fix), or
//   - the statement carries a //lint:sorted annotation stating why the
//     iteration order cannot affect results (e.g. a commutative
//     reduction over integers, or error paths that never run in
//     healthy simulations).
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the detmap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flag nondeterministic map iteration in simulation packages " +
		"(collect into a slice and sort, or annotate //lint:sorted)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, fb := range lintutil.Functions(f) {
			checkFunc(pass, dirs, fb.Body)
		}
	}
	return nil, nil
}

// checkFunc examines every map range directly inside body (nested
// function literals are visited as their own FuncBody).
func checkFunc(pass *analysis.Pass, dirs *lintutil.Directives, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately as its own function body
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !lintutil.IsMapType(pass.TypesInfo, rs.X) {
			return true
		}
		if dirs.Allows(rs.Pos(), "sorted") {
			return true
		}
		if collectsThenSorts(pass.TypesInfo, rs, body) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"nondeterministic iteration over map %s; collect keys into a slice and sort them, or annotate with //lint:sorted <reason>",
			exprString(rs.X))
		return true
	})
}

// collectsThenSorts reports whether the range loop's body does nothing
// but append to one or more local slices, each of which is sorted later
// in the same function body.
func collectsThenSorts(info *types.Info, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	collected := make(map[types.Object]bool)
	if !collectOnly(info, rs.Body.List, collected) || len(collected) == 0 {
		return false
	}
	for obj := range collected {
		if !sortedAfter(info, fnBody, obj, rs.End()) {
			return false
		}
	}
	return true
}

// collectOnly whitelists the statement forms a pure key-collection loop
// may contain: appends to local slices, guards (if/continue), and local
// definitions. Any other statement disqualifies the loop.
func collectOnly(info *types.Info, stmts []ast.Stmt, collected map[types.Object]bool) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if obj := appendTarget(info, st); obj != nil {
				collected[obj] = true
				continue
			}
			// Local derivation like `blk := base(k)` is harmless as long
			// as it calls nothing but conversions; be permissive here —
			// what matters is that nothing escapes except the appends.
			if st.Tok == token.DEFINE {
				continue
			}
			return false
		case *ast.IfStmt:
			if !collectOnly(info, st.Body.List, collected) {
				return false
			}
			switch els := st.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !collectOnly(info, els.List, collected) {
					return false
				}
			case *ast.IfStmt:
				if !collectOnly(info, []ast.Stmt{els}, collected) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false
			}
		case *ast.DeclStmt:
			// var / const / type declarations are side-effect free.
		default:
			return false
		}
	}
	return true
}

// appendTarget returns the object of s when the statement has the exact
// shape `s = append(s, ...)` (or `s := append(s, ...)`) for a slice
// variable s, and nil otherwise.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	lobj := lintutil.ObjectOf(info, lhs)
	fobj := lintutil.ObjectOf(info, first)
	if lobj == nil || lobj != fobj {
		return nil
	}
	return lobj
}

// sortFuncs are the recognized slice-sorting entry points, by package
// path and function name.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Strings": true,
		"Ints": true, "Float64s": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj is passed as the first argument to a
// recognized sort call positioned after `after` within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		fn := lintutil.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
			lintutil.ObjectOf(info, id) == obj {
			found = true
		}
		return true
	})
	return found
}

// exprString renders small expressions (selector chains, identifiers)
// for diagnostics without pulling in go/printer.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "map"
	}
}
