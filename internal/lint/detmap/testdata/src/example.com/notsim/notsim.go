// Package notsim checks that detmap stays silent outside the
// restricted simulation packages: unordered iteration here is fine.
package notsim

func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
