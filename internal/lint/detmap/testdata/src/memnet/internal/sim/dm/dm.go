// Package dm is a detmap fixture posing as a simulation package.
package dm

import "sort"

// Bad: iteration order leaks into a float accumulation.
func sumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `nondeterministic iteration over map m`
		sum += v
	}
	return sum
}

// Bad: iteration order drives calls with side effects.
func applyAll(m map[int]int, f func(int, int)) {
	for k, v := range m { // want `nondeterministic iteration over map m`
		f(k, v)
	}
}

// Bad: the collected slice is never sorted.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `nondeterministic iteration over map m`
		keys = append(keys, k)
	}
	return keys
}

// Good: the canonical collect-then-sort pattern.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: guarded collection of structs, sorted with sort.Slice — the
// shape of the migrate hot-block harvest.
func hotBlocks(counts map[uint64]int, threshold int) []uint64 {
	type hot struct {
		blk   uint64
		count int
	}
	var hots []hot
	for blk, c := range counts {
		if c < threshold {
			continue
		}
		hots = append(hots, hot{blk, c})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].blk < hots[j].blk
	})
	out := make([]uint64, 0, len(hots))
	for _, h := range hots {
		out = append(out, h.blk)
	}
	return out
}

// Good: annotated order-independent reduction.
func totalInt(m map[string]uint64) uint64 {
	var sum uint64
	//lint:sorted integer addition is commutative; order cannot affect the result
	for _, v := range m {
		sum += v
	}
	return sum
}
