// Package rec is a detmap fixture modeling the fault layer's
// kill/repair timeline validation: per-target maps are fine to key
// state by, but any iteration that drives error returns or event
// emission must be sorted.
package rec

import (
	"fmt"
	"sort"
)

type flap struct{ down, up int64 }

// Bad: which edge's overlap error surfaces first depends on map order.
func overlapErrorsUnsorted(flapEdges map[int][]flap) error {
	for edge, fs := range flapEdges { // want `nondeterministic iteration over map flapEdges`
		for i := 1; i < len(fs); i++ {
			if fs[i].down <= fs[i-1].up {
				return fmt.Errorf("overlapping flaps on edge %d", edge)
			}
		}
	}
	return nil
}

// Good: the shipped pattern — collect the edges, sort, then validate
// in edge order so the first error is stable across runs.
func overlapErrorsSorted(flapEdges map[int][]flap) error {
	edges := make([]int, 0, len(flapEdges))
	for edge := range flapEdges {
		edges = append(edges, edge)
	}
	sort.Ints(edges)
	for _, edge := range edges {
		fs := flapEdges[edge]
		for i := 1; i < len(fs); i++ {
			if fs[i].down <= fs[i-1].up {
				return fmt.Errorf("overlapping flaps on edge %d", edge)
			}
		}
	}
	return nil
}

type event struct {
	edge int
	kill bool
}

// Good: per-target alive/dead state machines keyed by map are fine
// when the walk is driven by the already-sorted event slice — map
// reads and writes carry no iteration order.
func timeline(evs []event) error {
	down := make(map[int]bool)
	for _, ev := range evs {
		if ev.kill {
			if down[ev.edge] {
				return fmt.Errorf("edge %d killed while down", ev.edge)
			}
			down[ev.edge] = true
			continue
		}
		if !down[ev.edge] {
			return fmt.Errorf("edge %d repaired while up", ev.edge)
		}
		down[ev.edge] = false
	}
	return nil
}
