// Package canon is a detmap fixture modeling the scenario package's
// canonicalization: per-router override maps may be copied freely, but
// any iteration that drives output bytes or the first surfaced error
// must be sorted, or two loads of the same document could canonicalize
// (or fail) differently.
package canon

import (
	"fmt"
	"sort"
)

type router struct{ arb string }

// Bad: which router's bad-policy error surfaces first depends on map
// order, so the same document would not always fail the same way.
func validateUnsorted(routers map[string]router) error {
	for name, r := range routers { // want `nondeterministic iteration over map routers`
		if r.arb == "" {
			return fmt.Errorf("routers.%s.arb: required", name)
		}
	}
	return nil
}

// Good: the shipped pattern — validate in sorted name order so the
// first error is stable across loads.
func validateSorted(routers map[string]router) error {
	names := make([]string, 0, len(routers))
	for name := range routers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if routers[name].arb == "" {
			return fmt.Errorf("routers.%s.arb: required", name)
		}
	}
	return nil
}

// Good: a map-to-map clone carries no iteration order into the result;
// the annotation records why the loop is safe.
func clone(routers map[string]router) map[string]router {
	c := make(map[string]router, len(routers))
	//lint:sorted map-to-map copy; the result is order-independent
	for name, r := range routers {
		c[name] = r
	}
	return c
}
