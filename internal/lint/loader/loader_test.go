package loader

import (
	"path/filepath"
	"testing"
)

// TestLoadModulePackages checks that the loader resolves module-internal
// imports from source (no export data, no network).
func TestLoadModulePackages(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	units, err := l.Load(root, "./internal/migrate", "./internal/packet")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(units))
	}
	for _, u := range units {
		if u.Pkg == nil || u.Info == nil || len(u.Files) == 0 {
			t.Errorf("%s: incomplete unit", u.PkgPath)
		}
		if u.Pkg.Name() == "" {
			t.Errorf("%s: unnamed types.Package", u.PkgPath)
		}
	}
	if got := units[0].PkgPath; got != "memnet/internal/migrate" {
		t.Errorf("first package = %s, want memnet/internal/migrate", got)
	}
}
