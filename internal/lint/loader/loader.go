// Package loader turns Go package patterns into analysis.Units: parsed
// files plus full go/types information, using only the standard
// library. Package discovery shells out to `go list -json`; imports are
// type-checked from source via go/importer's "source" mode, so the
// loader works offline and without pre-compiled export data.
//
// Two properties matter to the mnlint driver:
//
//   - Units come back in dependency order (imports before importers),
//     so a fact store threaded through the run sees callee summaries
//     from internal/link and internal/sim before internal/core is
//     analyzed.
//   - Type-checking is memoized: every unit the loader checks is
//     registered with the import resolver, so a package in the load
//     set is type-checked exactly once no matter how many dependents
//     import it (the source importer would otherwise re-check it from
//     scratch), and no matter how many analyzers run over it.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"memnet/internal/lint/analysis"
)

// Loader holds the shared FileSet, import resolver, and the memo of
// packages already type-checked. All packages loaded through one
// Loader share all three, so cross-package type identity and source
// positions stay consistent and nothing is checked twice.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
	// checked memoizes completed type-checks by import path: both the
	// Units produced (so repeated LoadFiles/LoadDir calls are free) and
	// the bare *types.Package consulted by the caching importer before
	// it falls back to the from-source resolver.
	units map[string]*analysis.Unit
	pkgs  map[string]*types.Package
}

// New returns an empty loader.
func New() *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:  fset,
		units: make(map[string]*analysis.Unit),
		pkgs:  make(map[string]*types.Package),
	}
	l.imp = &cachingImporter{
		loader:   l,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	return l
}

// cachingImporter resolves imports out of the loader's memo first and
// only then from source. Combined with dependency-ordered Load, every
// package in the load set is type-checked exactly once; the source
// importer alone would re-check each package per dependent.
type cachingImporter struct {
	loader   *Loader
	fallback types.Importer
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ci.loader.pkgs[path]; ok {
		return pkg, nil
	}
	return ci.fallback.Import(path)
}

func (ci *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ci.loader.pkgs[path]; ok {
		return pkg, nil
	}
	if from, ok := ci.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return ci.fallback.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load expands the patterns (e.g. "./...") relative to dir and returns
// one Unit per matched package, in dependency order: every package
// precedes the packages that import it (ties broken by import path).
// Dependency order is what lets one shared fact store feed callee
// summaries forward, and what makes the type-check memo effective —
// by the time a dependent is checked, its in-set imports are already
// in the cache.
func (l *Loader) Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	listed := make(map[string]*listedPackage)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		listed[p.ImportPath] = p
		order = append(order, p.ImportPath)
	}
	var units []*analysis.Unit
	for _, path := range dependencyOrder(listed, order) {
		p := listed[path]
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		u, err := l.LoadFiles(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// dependencyOrder topologically sorts the listed packages so imports
// precede importers, deterministically (DFS from lexically-sorted
// roots over lexically-sorted in-set imports). Import cycles cannot
// occur in compilable Go; if one sneaks past `go list -e`, the visited
// guard still terminates with an arbitrary-but-stable order.
func dependencyOrder(listed map[string]*listedPackage, order []string) []string {
	sort.Strings(order)
	visited := make(map[string]bool, len(listed))
	out := make([]string, 0, len(listed))
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		p := listed[path]
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if _, inSet := listed[imp]; inSet {
				visit(imp)
			}
		}
		out = append(out, path)
	}
	for _, path := range order {
		visit(path)
	}
	return out
}

// LoadDir loads the single package rooted at dir under the given import
// path, taking every non-test .go file in the directory. It is the
// entry point used by the analysistest harness, where testdata packages
// are not visible to `go list`.
func (l *Loader) LoadDir(pkgPath, dir string) (*analysis.Unit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return l.LoadFiles(pkgPath, files)
}

// LoadFiles parses and type-checks the given files as one package. Type
// errors are fatal: the linters depend on complete type information.
// Results are memoized by pkgPath: a second call returns the first
// call's unit without re-parsing or re-checking.
func (l *Loader) LoadFiles(pkgPath string, filenames []string) (*analysis.Unit, error) {
	if u, ok := l.units[pkgPath]; ok {
		return u, nil
	}
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		var sb strings.Builder
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&sb, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&sb, "\n\t%v", e)
		}
		return nil, fmt.Errorf("loader: type errors in %s:%s", pkgPath, sb.String())
	}
	u := &analysis.Unit{
		PkgPath: pkgPath,
		Fset:    l.Fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}
	l.units[pkgPath] = u
	// Register with the caching importer: dependents loaded after this
	// point resolve the import from the memo instead of re-checking the
	// package from source.
	l.pkgs[pkgPath] = pkg
	return u, nil
}
