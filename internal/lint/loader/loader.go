// Package loader turns Go package patterns into analysis.Units: parsed
// files plus full go/types information, using only the standard
// library. Package discovery shells out to `go list -json`; imports are
// type-checked from source via go/importer's "source" mode, so the
// loader works offline and without pre-compiled export data.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"memnet/internal/lint/analysis"
)

// Loader holds the shared FileSet and import resolver. All packages
// loaded through one Loader share both, so cross-package type identity
// and source positions stay consistent.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// New returns an empty loader.
func New() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load expands the patterns (e.g. "./...") relative to dir and returns
// one Unit per matched package, in `go list` order.
func (l *Loader) Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var units []*analysis.Unit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		u, err := l.LoadFiles(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadDir loads the single package rooted at dir under the given import
// path, taking every non-test .go file in the directory. It is the
// entry point used by the analysistest harness, where testdata packages
// are not visible to `go list`.
func (l *Loader) LoadDir(pkgPath, dir string) (*analysis.Unit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return l.LoadFiles(pkgPath, files)
}

// LoadFiles parses and type-checks the given files as one package. Type
// errors are fatal: the linters depend on complete type information.
func (l *Loader) LoadFiles(pkgPath string, filenames []string) (*analysis.Unit, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		var sb strings.Builder
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&sb, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&sb, "\n\t%v", e)
		}
		return nil, fmt.Errorf("loader: type errors in %s:%s", pkgPath, sb.String())
	}
	return &analysis.Unit{
		PkgPath: pkgPath,
		Fset:    l.Fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}, nil
}
