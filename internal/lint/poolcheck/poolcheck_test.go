package poolcheck_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolcheck.Analyzer, "a")
}
