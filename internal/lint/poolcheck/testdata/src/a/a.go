// Package a exercises poolcheck against the real packet and sim
// packages.
package a

import (
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Bad: reading a field after the packet went back to the pool.
func useAfterPut(pool *packet.Pool) uint64 {
	p := pool.Get()
	p.Addr = 64
	pool.Put(p)
	return p.Addr // want `use of packet p after it was released to the pool`
}

// Bad: double free — the second Put is itself a use of the freed packet.
func doubleFree(pool *packet.Pool) {
	p := pool.Get()
	pool.Put(p)
	pool.Put(p) // want `use of packet p after it was released to the pool`
}

// Bad: the packet escaped into a bound event callback that fires at a
// later simulated instant; releasing it now frees memory the callback
// will read.
func scheduledEscape(eng *sim.Engine, pool *packet.Pool, deliver sim.ArgHandler) {
	p := pool.Get()
	p.Addr = 128
	eng.ScheduleArg(5*sim.Nanosecond, deliver, p)
	pool.Put(p) // want `packet p is still bound to a scheduled event`
}

// Bad: same escape through an absolute-time binding.
func scheduledEscapeAt(eng *sim.Engine, pool *packet.Pool, deliver sim.ArgHandler) {
	p := pool.Get()
	eng.AtArg(eng.Now()+sim.Nanosecond, deliver, p)
	pool.Put(p) // want `packet p is still bound to a scheduled event`
}

// Good: the host-port idiom — copy the header fields, then release.
func copyThenPut(pool *packet.Pool) (packet.Kind, uint64) {
	p := pool.Get()
	kind, id := p.Kind, p.ID
	pool.Put(p)
	return kind, id
}

// Good: rebinding after Put starts a fresh ownership window.
func rebindAfterPut(pool *packet.Pool) uint64 {
	p := pool.Get()
	pool.Put(p)
	p = pool.Get()
	defer pool.Put(p)
	return p.Addr
}

// Good: schedule after the pool round-trip binds the fresh packet.
func scheduleFresh(eng *sim.Engine, pool *packet.Pool, deliver sim.ArgHandler) {
	p := pool.Get()
	pool.Put(p)
	p = pool.Get()
	eng.ScheduleArg(sim.Nanosecond, deliver, p)
}

// Good: the Put and the use are on mutually exclusive paths — the
// else branch never sees the released packet.
func branchIsolated(pool *packet.Pool, drop bool) uint64 {
	p := pool.Get()
	if drop {
		pool.Put(p)
		return 0
	}
	return p.Addr
}

// Bad: the branches rejoin, so the use after the if observes the
// released packet whenever drop was taken.
func putThenJoin(pool *packet.Pool, drop bool) uint64 {
	p := pool.Get()
	if drop {
		pool.Put(p)
	}
	return p.Addr // want `use of packet p after it was released to the pool`
}

// Bad: the Put at the bottom of the loop body reaches the read at the
// top of the next iteration across the back edge.
func loopCarried(pool *packet.Pool, n int) {
	p := pool.Get()
	for i := 0; i < n; i++ {
		p.Addr = uint64(i) // want `use of packet p after it was released to the pool`
		pool.Put(p) // want `use of packet p after it was released to the pool`
	}
}

// Bad: the deferred Put runs at function exit, after the explicit Put
// already released the packet — a double free the defer hides.
func deferDoubleFree(pool *packet.Pool) {
	p := pool.Get()
	defer pool.Put(p) // want `use of packet p after it was released to the pool`
	pool.Put(p)
}
