// Package poolcheck implements the mnlint analyzer that enforces the
// packet-pool ownership rule: once a *packet.Packet is returned to
// packet.Pool via Put, the releasing function must not touch it again.
//
// Pool.Put zeroes the packet immediately and recycles it into the next
// transaction, so a read after Put observes zeroed (or, worse,
// re-populated) fields — the classic use-after-free this repo's PR 1
// host-port ownership comment warns about. The analyzer runs a forward
// may-analysis over the internal/lint/cfg control-flow graph, tracking
// two bits per local packet variable:
//
//   - freed: the variable was handed to Pool.Put on some path to here.
//     Any later syntactic use — a field access, a second Put, passing
//     it to a call — is flagged, until an assignment rebinds the
//     variable (e.g. a fresh pool.Get).
//   - scheduled: the variable was bound into a pending event via
//     sim.Engine.ScheduleArg / AtArg, which will read it at a later
//     simulated instant. A Put while the binding is live releases
//     memory the callback will still read, and is flagged.
//
// Path sensitivity comes from the CFG: a Put in one branch does not
// poison the other branch, a Put inside a loop body flags the next
// iteration's use across the back edge, and a deferred Put is checked
// at the function's exit (where the CFG replays deferred calls) rather
// than at its registration site. Nested function literals are separate
// functions: a closure runs at a different simulated time, so order
// against the enclosing body is not an execution order.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/cfg"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "flag reads or re-schedules of a *packet.Packet after it is released " +
		"to packet.Pool (use-after-free on the packet free list)",
	Run: run,
}

const (
	packetPkg = "memnet/internal/packet"
	simPkg    = "memnet/internal/sim"
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, fb := range lintutil.Functions(f) {
			checkFunc(pass, fb.Body)
		}
	}
	return nil, nil
}

// pstate is one tracked packet variable's dataflow value.
type pstate struct {
	// freedAt is the position of the Pool.Put that released the
	// variable's packet on some path, or NoPos while it is live.
	freedAt token.Pos
	// scheds are the positions of ScheduleArg/AtArg calls whose pending
	// events still reference the packet (sorted, deduplicated).
	scheds []token.Pos
}

// state maps tracked packet variables to their value; absent means
// live and unscheduled. nil is the dataflow bottom (block unvisited).
type state map[types.Object]pstate

func (st state) clone() state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// checkFunc solves the ownership dataflow over one function body and
// replays each block to report violations with the flow state in hand.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap pre-filter: most functions never touch a Pool.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && lintutil.IsMethodOn(pass.TypesInfo, call, packetPkg, "Pool", "Put") {
			touches = true
		}
		return !touches
	})
	if !touches {
		return
	}
	g := cfg.New(body)
	prob := cfg.Problem[state]{
		Dir:      cfg.Forward,
		Boundary: state{},
		Init:     nil,
		Transfer: func(blk *cfg.Block, in state) state {
			st := in.clone()
			for _, n := range blk.Nodes {
				scanNode(pass, n, st, nil)
			}
			return st
		},
		Join:  joinState,
		Equal: equalState,
	}
	sol := cfg.Solve(g, prob)
	for _, blk := range g.Blocks {
		st := sol.In[blk.Index]
		if st == nil && blk != g.Entry {
			continue // unreachable
		}
		st = st.clone()
		for _, n := range blk.Nodes {
			scanNode(pass, n, st, pass)
		}
		if blk.Cond != nil {
			scanNode(pass, blk.Cond, st, pass)
		}
	}
}

// scanNode applies one executable node to the state; when report is
// non-nil, violations are reported as they are found. The walk skips
// nested function literals and defer registration sites (the CFG
// replays deferred calls in the exit block).
func scanNode(pass *analysis.Pass, n ast.Node, st state, report *analysis.Pass) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// A plain-identifier assignment rebinds the variable: a
			// fresh value starts a fresh ownership window. The kill
			// happens before the walk descends, so the LHS identifier
			// itself is not treated as a use of the freed packet.
			for _, lhs := range x.Lhs {
				if obj := packetObj(pass.TypesInfo, lhs); obj != nil {
					delete(st, obj)
				}
			}
		case *ast.CallExpr:
			switch {
			case lintutil.IsMethodOn(pass.TypesInfo, x, packetPkg, "Pool", "Put"):
				if obj := packetArgObj(pass.TypesInfo, x, 0); obj != nil {
					cur := st[obj]
					if report != nil {
						for _, sc := range cur.scheds {
							report.Reportf(x.Pos(),
								"packet %s is still bound to a scheduled event (%s) and is being released to the pool",
								obj.Name(), pass.Fset.Position(sc))
						}
						if cur.freedAt != token.NoPos {
							report.Reportf(x.Pos(),
								"use of packet %s after it was released to the pool at %s",
								obj.Name(), pass.Fset.Position(cur.freedAt))
						}
					}
					st[obj] = pstate{freedAt: x.Pos()}
					return false // the argument identifier is the release, not a use
				}
			case lintutil.IsMethodOn(pass.TypesInfo, x, simPkg, "Engine", "ScheduleArg"),
				lintutil.IsMethodOn(pass.TypesInfo, x, simPkg, "Engine", "AtArg"):
				if obj := packetArgObj(pass.TypesInfo, x, len(x.Args)-1); obj != nil {
					cur := st[obj]
					cur.scheds = addPos(cur.scheds, x.Pos())
					st[obj] = cur
					// Keep walking: scheduling a freed packet is a use.
				}
			}
		case *ast.Ident:
			obj := lintutil.ObjectOf(pass.TypesInfo, x)
			if obj == nil || !isPacketVar(obj) {
				return true
			}
			if cur, ok := st[obj]; ok && cur.freedAt != token.NoPos && report != nil {
				report.Reportf(x.Pos(),
					"use of packet %s after it was released to the pool at %s",
					obj.Name(), pass.Fset.Position(cur.freedAt))
			}
		}
		return true
	})
}

// packetObj resolves an expression to a plain identifier naming a
// *packet.Packet variable, or nil.
func packetObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := lintutil.ObjectOf(info, id)
	if obj == nil || !isPacketVar(obj) {
		return nil
	}
	return obj
}

// packetArgObj is packetObj for call.Args[i].
func packetArgObj(info *types.Info, call *ast.CallExpr, i int) types.Object {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	return packetObj(info, call.Args[i])
}

// isPacketVar reports whether the object is a variable of type
// *packet.Packet.
func isPacketVar(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
		return false
	}
	return lintutil.NamedTypeIs(obj.Type(), packetPkg, "Packet")
}

// addPos inserts pos into the sorted, deduplicated position list.
func addPos(ps []token.Pos, pos token.Pos) []token.Pos {
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= pos })
	if i < len(ps) && ps[i] == pos {
		return ps
	}
	out := make([]token.Pos, 0, len(ps)+1)
	out = append(out, ps[:i]...)
	out = append(out, pos)
	return append(out, ps[i:]...)
}

// joinState merges two block-input states as a may-analysis: a
// variable is freed if freed on either path (earliest release position
// wins, deterministically), and pending schedules union.
func joinState(a, b state) state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, bv := range b {
		av, ok := out[k]
		if !ok {
			out[k] = bv
			continue
		}
		if bv.freedAt != token.NoPos && (av.freedAt == token.NoPos || bv.freedAt < av.freedAt) {
			av.freedAt = bv.freedAt
		}
		for _, p := range bv.scheds {
			av.scheds = addPos(av.scheds, p)
		}
		out[k] = av
	}
	return out
}

func equalState(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.freedAt != bv.freedAt || len(av.scheds) != len(bv.scheds) {
			return false
		}
		for i := range av.scheds {
			if av.scheds[i] != bv.scheds[i] {
				return false
			}
		}
	}
	return true
}
