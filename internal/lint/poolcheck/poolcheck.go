// Package poolcheck implements the mnlint analyzer that enforces the
// packet-pool ownership rule: once a *packet.Packet is returned to
// packet.Pool via Put, the releasing function must not touch it again.
//
// Pool.Put zeroes the packet immediately and recycles it into the next
// transaction, so a read after Put observes zeroed (or, worse,
// re-populated) fields — the classic use-after-free this repo's PR 1
// host-port ownership comment warns about. The analyzer performs a
// per-function, source-order dataflow over each local packet variable:
//
//   - any syntactic use of the variable after the Put call is flagged,
//     until the variable is rebound by an assignment (e.g. a fresh
//     pool.Get);
//   - a Put of a variable previously handed to sim.Engine.ScheduleArg /
//     AtArg (a bound event callback that will read it at a later
//     simulated instant) is flagged as a release of a still-scheduled
//     packet.
//
// The tracking is deliberately conservative: only identifier-typed
// arguments are tracked, and a rebind ends tracking, so the analyzer
// produces no false positives on the copy-header-fields-then-Put idiom
// used by the host port.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "flag reads or re-schedules of a *packet.Packet after it is released " +
		"to packet.Pool (use-after-free on the packet free list)",
	Run: run,
}

const (
	packetPkg = "memnet/internal/packet"
	simPkg    = "memnet/internal/sim"
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, fb := range lintutil.Functions(f) {
			checkFunc(pass, fb.Body)
		}
	}
	return nil, nil
}

// release records one Pool.Put(x) call site.
type release struct {
	call *ast.CallExpr
	obj  types.Object
}

// checkFunc runs the source-order dataflow over one function body.
// Function literals nested inside are analyzed as their own bodies (a
// closure runs at a different simulated time, so cross-boundary order
// is meaningless anyway).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var (
		puts      []release
		schedules []release // packet passed as the arg of a bound event
		rebinds   = rebindsIn(info, body)
		deferred  = map[*ast.CallExpr]bool{}
	)
	inspectShallow(body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
	})
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if deferred[call] {
			// A deferred Put runs at function exit, after every
			// source-ordered use; it cannot create an intra-function
			// use-after-free.
			return
		}
		switch {
		case lintutil.IsMethodOn(info, call, packetPkg, "Pool", "Put"):
			if obj := packetArg(info, call, 0); obj != nil {
				puts = append(puts, release{call, obj})
			}
		case lintutil.IsMethodOn(info, call, simPkg, "Engine", "ScheduleArg"),
			lintutil.IsMethodOn(info, call, simPkg, "Engine", "AtArg"):
			if obj := packetArg(info, call, len(call.Args)-1); obj != nil {
				schedules = append(schedules, release{call, obj})
			}
		}
	})
	for _, put := range puts {
		// A Put of a packet that an earlier statement scheduled into a
		// pending event: the callback will fire on freed memory.
		for _, sc := range schedules {
			if sc.obj == put.obj && sc.call.End() <= put.call.Pos() &&
				!reboundBetween(rebinds, put.obj, sc.call.End(), put.call.Pos()) {
				pass.Reportf(put.call.Pos(),
					"packet %s is still bound to a scheduled event (%s) and is being released to the pool",
					put.obj.Name(), pass.Fset.Position(sc.call.Pos()))
			}
		}
		reportUsesAfter(pass, body, put, rebinds)
	}
}

// reportUsesAfter flags every identifier use of put.obj positioned
// after the Put call, up to the next rebinding assignment.
func reportUsesAfter(pass *analysis.Pass, body *ast.BlockStmt, put release, rebinds []rebind) {
	limit := nextRebind(rebinds, put.obj, put.call.End())
	inspectShallow(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() < put.call.End() || id.Pos() >= limit {
			return
		}
		if lintutil.ObjectOf(pass.TypesInfo, id) != put.obj {
			return
		}
		if isRebindLHS(rebinds, id) {
			return
		}
		pass.Reportf(id.Pos(),
			"use of packet %s after it was released to the pool at %s",
			put.obj.Name(), pass.Fset.Position(put.call.Pos()))
	})
}

// packetArg returns the object of call.Args[i] when it is a plain
// identifier of type *packet.Packet, else nil.
func packetArg(info *types.Info, call *ast.CallExpr, i int) types.Object {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := lintutil.ObjectOf(info, id)
	if obj == nil {
		return nil
	}
	if !lintutil.NamedTypeIs(obj.Type(), packetPkg, "Packet") {
		return nil
	}
	if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
		return nil
	}
	return obj
}

// rebind records an assignment whose LHS includes a tracked variable.
type rebind struct {
	obj types.Object
	id  *ast.Ident // the LHS identifier
}

// rebindsIn collects assignments to identifiers within body.
func rebindsIn(info *types.Info, body *ast.BlockStmt) []rebind {
	var out []rebind
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := lintutil.ObjectOf(info, id); obj != nil {
					out = append(out, rebind{obj, id})
				}
			}
		}
	})
	return out
}

// nextRebind returns the position of the first rebinding of obj at or
// after pos, or token.Pos max if none.
func nextRebind(rebinds []rebind, obj types.Object, pos token.Pos) token.Pos {
	limit := token.Pos(1 << 30)
	for _, r := range rebinds {
		if r.obj == obj && r.id.Pos() >= pos && r.id.Pos() < limit {
			limit = r.id.Pos()
		}
	}
	return limit
}

// reboundBetween reports whether obj is reassigned in (lo, hi).
func reboundBetween(rebinds []rebind, obj types.Object, lo, hi token.Pos) bool {
	for _, r := range rebinds {
		if r.obj == obj && r.id.Pos() > lo && r.id.Pos() < hi {
			return true
		}
	}
	return false
}

// isRebindLHS reports whether the identifier is the LHS of a recorded
// assignment (writing a fresh value into the variable is not a use of
// the freed packet).
func isRebindLHS(rebinds []rebind, id *ast.Ident) bool {
	for _, r := range rebinds {
		if r.id == id {
			return true
		}
	}
	return false
}

// inspectShallow walks n but does not descend into nested function
// literals: a closure body runs at a different time, so source order
// against the enclosing function is not an execution order.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}
