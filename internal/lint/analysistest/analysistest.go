// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest workflow:
//
//	func TestFoo(t *testing.T) {
//		analysistest.Run(t, analysistest.TestData(), foo.Analyzer, "a")
//	}
//
// Fixture packages live under <testdata>/src/<path>/ (GOPATH-style, so
// a fixture can pose as a restricted package such as
// memnet/internal/sim). Every line that should trigger a diagnostic
// carries a comment of the form
//
//	code // want `regexp`
//
// with the regexp matched against the diagnostic message. Diagnostics
// without a matching want, and wants without a matching diagnostic,
// fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/loader"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics against // want expectations. The
// fixture packages share one fact store in the order given, so a
// fixture listed later sees the facts a fixture listed earlier
// exported (mirroring the driver's dependency-ordered run).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := loader.New()
	facts := analysis.NewFacts()
	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		unit, err := l.LoadDir(path, dir)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		checkWants(t, unit.Fset, dir, findings)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRx matches both `// want "..."` and "// want `...`" forms,
// capturing the quoted pattern (multiple patterns may follow).
var wantRx = regexp.MustCompile("(?://|/\\*)\\s*want\\s+(.*)")

// checkWants scans the fixture sources for want comments and reconciles
// them with the findings.
func checkWants(t *testing.T, fset *token.FileSet, dir string, findings []analysis.Finding) {
	t.Helper()
	wants, err := parseWants(dir)
	if err != nil {
		t.Error(err)
		return
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %v", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Join(dir, w.file), w.line, w.raw)
		}
	}
}

// parseWants extracts want expectations from every .go file in dir.
func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats, err := splitPatterns(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", filepath.Join(dir, e.Name()), i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", filepath.Join(dir, e.Name()), i+1, p, err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re, raw: p})
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of quoted or backquoted regexps.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote, honoring escapes.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern")
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		default:
			// Trailing prose (e.g. the closing of a block comment).
			if strings.HasPrefix(s, "*/") {
				return out, nil
			}
			return nil, fmt.Errorf("want: expected quoted pattern, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want: no patterns")
	}
	return out, nil
}
