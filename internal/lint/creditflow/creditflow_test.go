package creditflow_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/creditflow"
)

// TestCreditflow runs the analyzer over the fixture packages in
// dependency order: the core fixture's expectations only hold if the
// facts exported while analyzing the link fixture crossed over.
func TestCreditflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), creditflow.Analyzer,
		"memnet/internal/link", "memnet/internal/core")
}
