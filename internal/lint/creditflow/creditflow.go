// Package creditflow implements the credit-conservation analyzer.
//
// The simulator's flow control is credit-based (link.Direction holds a
// per-VC credit counter against the remote input buffer), and its
// correctness rests on a conservation law: every consumed credit is
// eventually retired, and every delivered packet has exactly one owner.
// A leaked credit wedges a virtual channel permanently — the class of
// bug that surfaces hours into a campaign as a silent throughput
// collapse. creditflow turns the law into a compile-time check with two
// obligation kinds, both discharged by a must-reach dataflow analysis
// over the internal/lint/cfg control-flow graph:
//
//   - Credit obligations. A decrement (-- or -=) of a struct field
//     named "credits" opens an obligation; every path from it to the
//     function's exit must retire the credit: increment credits or
//     outstanding back, or call a credit sink (a function whose body —
//     directly or transitively — performs such an increment, e.g.
//     link.(*Direction).ReturnCredit or finishTransmit). Paths that end
//     in panic are exempt: the simulator treats flow-control violations
//     as fatal, so a panicking path retires nothing by design.
//
//   - Delivery obligations. A delivery closure — a func literal wired
//     via a SetDeliver call or returned by a method named Deliver —
//     takes ownership of its *Packet parameter; every path to return
//     must hand the packet to an owning sink: a call to a function
//     known to store it (link.(*Buffer).Push, packet Pool.Put, ...), a
//     call through a func-typed value (delegation), a store, a channel
//     send, or returning it.
//
// Ownership and sink summaries travel between packages as facts: the
// driver analyzes packages in dependency order, so by the time
// internal/core's wiring closures are checked, the facts computed over
// internal/link and internal/host are available. Calls into packages
// outside the analyzed set (the standard library, or siblings absent
// from a narrow `mnlint ./internal/core` run) are assumed to dispose of
// their arguments — the analyzer errs quiet, not noisy, when it cannot
// see the callee.
//
// //lint:creditsink suppresses: on a credit decrement or a delivery
// closure it waives that obligation; on a function declaration it marks
// the function as both a credit sink and an owning sink, for retirement
// mechanisms the analyzer cannot see.
package creditflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/cfg"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the creditflow entry point.
var Analyzer = &analysis.Analyzer{
	Name: "creditflow",
	Doc:  "credit decrements and delivery closures must reach a credit/ownership sink on every path",
	Run:  run,
}

// Fact names. Values are struct{}{}; presence is the fact.
const (
	sinkFact     = "creditflow.sink"     // function retires a credit on some path
	ownsFact     = "creditflow.owns"     // function takes ownership of a packet-like arg
	analyzedFact = "creditflow.analyzed" // package-level: summaries were computed
)

// Dataflow lattice values. The join is min-over-visited, so "pending"
// poisons any merge it reaches: the analysis is a must-analysis.
const (
	unvisited  = 0 // block not yet reached (join identity)
	pending    = 1 // obligation open on this path
	discharged = 2 // obligation retired on this path
)

func run(pass *analysis.Pass) (any, error) {
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	fns := collectFuncs(pass, dirs)
	summarize(pass, fns)

	// Obligations are checked only in simulation packages; summaries are
	// computed everywhere (internal/packet is not simulation code, but
	// its Pool.Put fact is what proves host.Port.Receive an owner).
	if !lintutil.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, fi := range fns {
		checkCredits(pass, dirs, fi)
	}
	for _, f := range pass.Files {
		for _, lit := range deliveryLits(pass, f) {
			checkDelivery(pass, dirs, fns, lit)
		}
	}
	return nil, nil
}

// funcInfo is one function declared in the package under analysis,
// with its in-progress summary bits.
type funcInfo struct {
	obj  *types.Func
	body *ast.BlockStmt
	sink bool
	owns bool
	// params holds the packet-like parameters (pointer-to-Packet or
	// empty interface) whose storage would make the function an owner.
	params []*types.Var
}

// collectFuncs gathers every declared function and method with a body,
// in source order, seeding summaries from //lint:creditsink directives
// on the declaration itself.
func collectFuncs(pass *analysis.Pass, dirs *lintutil.Directives) []*funcInfo {
	var out []*funcInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, body: fd.Body}
			sig := obj.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if packetLike(p.Type()) {
					fi.params = append(fi.params, p)
				}
			}
			if dirs.Allows(fd.Pos(), "creditsink") {
				fi.sink, fi.owns = true, true
			}
			out = append(out, fi)
		}
	}
	return out
}

// packetLike reports whether t can carry packet ownership across a
// call boundary: a pointer to a named type called Packet, or the empty
// interface (the event-argument channel sim.Engine.AtArg stores).
func packetLike(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name() == "Packet"
		}
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface.NumMethods() == 0
	}
	return false
}

// summarize computes the package's sink and owns facts to a fixpoint
// (summaries propagate through same-package call chains, e.g.
// transmit -> finishTransmit) and exports them to the shared store.
func summarize(pass *analysis.Pass, fns []*funcInfo) {
	local := make(map[*types.Func]*funcInfo, len(fns))
	for _, fi := range fns {
		local[fi.obj] = fi
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if !fi.sink && bodySinks(pass, local, fi.body) {
				fi.sink = true
				changed = true
			}
			if !fi.owns && len(fi.params) > 0 && bodyOwns(pass, local, fi) {
				fi.owns = true
				changed = true
			}
		}
	}
	pass.Facts.ExportPackageFact(pass.Pkg.Path(), analyzedFact, struct{}{})
	for _, fi := range fns {
		if fi.sink {
			pass.Facts.ExportObjectFact(fi.obj, sinkFact, struct{}{})
		}
		if fi.owns {
			pass.Facts.ExportObjectFact(fi.obj, ownsFact, struct{}{})
		}
	}
}

// bodySinks reports whether the body retires a credit: a credits or
// outstanding field increment, or a call to a known sink. Nested
// function literals count — a function whose literal eventually
// retires the credit still participates in the conservation law.
func bodySinks(pass *analysis.Pass, local map[*types.Func]*funcInfo, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if n.Tok == token.INC && creditField(pass.TypesInfo, n.X, "credits", "outstanding") {
				found = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
				creditField(pass.TypesInfo, n.Lhs[0], "credits", "outstanding") {
				found = true
			}
		case *ast.CallExpr:
			if callee := lintutil.CalleeFunc(pass.TypesInfo, n); callee != nil && isSink(pass, local, callee) {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyOwns reports whether the body takes ownership of one of the
// function's packet-like parameters: stores it into a field, slice, or
// map, or passes it to a function already known to take ownership.
// Propagation is deliberately narrow — unknown callees do not grant
// the fact (they only silence obligations at the check site).
func bodyOwns(pass *analysis.Pass, local map[*types.Func]*funcInfo, fi *funcInfo) bool {
	found := false
	ast.Inspect(fi.body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !storesInto(n.Lhs) {
				return true
			}
			for _, rhs := range n.Rhs {
				for _, p := range fi.params {
					if usesValue(pass.TypesInfo, rhs, p) {
						found = true
					}
				}
			}
		case *ast.SendStmt:
			for _, p := range fi.params {
				if usesValue(pass.TypesInfo, n.Value, p) {
					found = true
				}
			}
		case *ast.CallExpr:
			callee := lintutil.CalleeFunc(pass.TypesInfo, n)
			if callee == nil || !isOwner(pass, local, callee) {
				return true
			}
			for _, arg := range n.Args {
				for _, p := range fi.params {
					if usesValue(pass.TypesInfo, arg, p) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// storesInto reports whether an assignment's left side writes through a
// structure — a field, index, or dereference — rather than rebinding
// plain locals.
func storesInto(lhs []ast.Expr) bool {
	for _, e := range lhs {
		switch ast.Unparen(e).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
	}
	return false
}

// isSink resolves a callee's sink summary: local fixpoint state first,
// then the cross-package fact store, then optimism for callees in
// packages whose summaries were never computed.
func isSink(pass *analysis.Pass, local map[*types.Func]*funcInfo, fn *types.Func) bool {
	if fi, ok := local[fn]; ok {
		return fi.sink
	}
	if _, ok := pass.Facts.ObjectFact(fn, sinkFact); ok {
		return true
	}
	return unanalyzed(pass, fn)
}

// isOwner is isSink's counterpart for ownership summaries.
func isOwner(pass *analysis.Pass, local map[*types.Func]*funcInfo, fn *types.Func) bool {
	if fi, ok := local[fn]; ok {
		return fi.owns
	}
	if _, ok := pass.Facts.ObjectFact(fn, ownsFact); ok {
		return true
	}
	return unanalyzed(pass, fn)
}

// unanalyzed reports whether fn lives in a package creditflow never
// summarized (outside the load set). Such callees are trusted to
// dispose of what they are handed — the analyzer stays quiet rather
// than guessing wrong — but, in bodyOwns and bodySinks, they never
// grant a summary either: local[fn] hits before this for
// current-package functions, so only truly foreign calls land here.
func unanalyzed(pass *analysis.Pass, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == pass.Pkg {
		return false // declared here but bodyless or not collected
	}
	_, analyzed := pass.Facts.PackageFact(fn.Pkg().Path(), analyzedFact)
	return !analyzed
}

// creditField reports whether e, stripped of indexing and parens,
// selects a struct field with one of the given names.
func creditField(info *types.Info, e ast.Expr, names ...string) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return false
			}
			for _, n := range names {
				if sel.Sel.Name == n {
					return true
				}
			}
			return false
		}
	}
}

// usesValue reports whether n uses v as a whole value. Field reads and
// method calls through v (v.Kind, v.Retire()) do not count: inspecting
// a packet is not an ownership transfer.
func usesValue(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && lintutil.ObjectOf(info, id) == v {
				return false
			}
		}
		if id, ok := x.(*ast.Ident); ok && lintutil.ObjectOf(info, id) == v {
			found = true
		}
		return !found
	})
	return found
}

// checkCredits finds each credit decrement in the function and verifies
// every path from it to the exit retires the credit.
func checkCredits(pass *analysis.Pass, dirs *lintutil.Directives, fi *funcInfo) {
	var obligations []ast.Node
	ast.Inspect(fi.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function; separate CFG if it declares obligations
		case *ast.IncDecStmt:
			if n.Tok == token.DEC && creditField(pass.TypesInfo, n.X, "credits") {
				obligations = append(obligations, n)
			}
		case *ast.AssignStmt:
			if n.Tok == token.SUB_ASSIGN && len(n.Lhs) == 1 &&
				creditField(pass.TypesInfo, n.Lhs[0], "credits") {
				obligations = append(obligations, n)
			}
		}
		return true
	})
	// Literals nested in this body were pruned above; each is its own
	// function with its own CFG and obligations.
	for _, lit := range nestedLits(fi.body) {
		checkCredits(pass, dirs, &funcInfo{body: lit.Body})
	}
	if len(obligations) == 0 {
		return
	}
	g := cfg.New(fi.body)
	local := map[*types.Func]*funcInfo{}
	for _, ob := range obligations {
		if dirs.Allows(ob.Pos(), "creditsink") {
			continue
		}
		sol := cfg.Solve(g, mustProblem(func(n ast.Node, s int) int {
			if n == ob {
				return pending
			}
			if s == pending && creditRetired(pass, local, n) {
				return discharged
			}
			return s
		}))
		if sol.Out[g.Exit.Index] == pending {
			pass.Reportf(ob.Pos(), "credit decrement does not reach a credit sink on every path to return (retire it, or annotate //lint:creditsink)")
		}
	}
}

// nestedLits returns the function literals directly contained in body,
// excluding literals nested inside other literals (those are reached
// recursively).
func nestedLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

// creditRetired reports whether executing n retires a credit: an
// increment of credits or outstanding, a call to a known sink, or a
// call through a func-typed value (delegation, e.g. Buffer's credit
// callback field).
func creditRetired(pass *analysis.Pass, local map[*types.Func]*funcInfo, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.IncDecStmt:
		return n.Tok == token.INC && creditField(pass.TypesInfo, n.X, "credits", "outstanding")
	case *ast.AssignStmt:
		return n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
			creditField(pass.TypesInfo, n.Lhs[0], "credits", "outstanding")
	case *ast.CallExpr:
		if callee := lintutil.CalleeFunc(pass.TypesInfo, n); callee != nil {
			return isSink(pass, local, callee)
		}
		return dynamicCall(pass.TypesInfo, n)
	}
	return false
}

// dynamicCall reports whether the call goes through a func-typed value
// rather than a declared function, builtin, or type conversion.
func dynamicCall(info *types.Info, call *ast.CallExpr) bool {
	if lintutil.CalleeFunc(info, call) != nil {
		return false
	}
	t := info.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// deliveryLits finds the file's delivery closures: func literals nested
// in the arguments of a SetDeliver call, and func literals returned by
// a function or method named Deliver.
func deliveryLits(pass *analysis.Pass, f *ast.File) []*ast.FuncLit {
	var out []*ast.FuncLit
	seen := make(map[*ast.FuncLit]bool)
	add := func(lit *ast.FuncLit) {
		if !seen[lit] {
			seen[lit] = true
			out = append(out, lit)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := lintutil.CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Name() == "SetDeliver" {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if lit, ok := m.(*ast.FuncLit); ok {
							add(lit)
						}
						return true
					})
				}
			}
		}
		return true
	})
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Name.Name != "Deliver" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
					add(lit)
				}
			}
			return true
		})
	}
	return out
}

// checkDelivery verifies a delivery closure hands its packet parameter
// to an owning sink on every path to return.
func checkDelivery(pass *analysis.Pass, dirs *lintutil.Directives, fns []*funcInfo, lit *ast.FuncLit) {
	if dirs.Allows(lit.Pos(), "creditsink") {
		return
	}
	pkt := packetParam(pass, lit)
	if pkt == nil {
		return
	}
	local := make(map[*types.Func]*funcInfo, len(fns))
	for _, fi := range fns {
		local[fi.obj] = fi
	}
	g := cfg.New(lit.Body)
	prob := mustProblem(func(n ast.Node, s int) int {
		if s == pending && handsOff(pass, local, n, pkt) {
			return discharged
		}
		return s
	})
	prob.Boundary = pending // ownership is live from the first instruction
	sol := cfg.Solve(g, prob)
	if sol.Out[g.Exit.Index] == pending {
		pass.Reportf(lit.Pos(), "delivery closure does not hand packet %q to an owning sink on every path to return (store it, delegate it, or annotate //lint:creditsink)", pkt.Name())
	}
}

// packetParam returns the literal's first pointer-to-Packet parameter.
func packetParam(pass *analysis.Pass, lit *ast.FuncLit) *types.Var {
	sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if ptr, ok := p.Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Packet" {
				return p
			}
		}
	}
	return nil
}

// handsOff reports whether executing n transfers ownership of pkt: a
// call passing it to an owner (or to an unanalyzed callee, or through a
// func value), a store of it, a channel send, or returning it.
func handsOff(pass *analysis.Pass, local map[*types.Func]*funcInfo, n ast.Node, pkt *types.Var) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		used := false
		for _, arg := range n.Args {
			if usesValue(pass.TypesInfo, arg, pkt) {
				used = true
				break
			}
		}
		if !used {
			return false
		}
		if callee := lintutil.CalleeFunc(pass.TypesInfo, n); callee != nil {
			return isOwner(pass, local, callee)
		}
		return dynamicCall(pass.TypesInfo, n)
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if usesValue(pass.TypesInfo, rhs, pkt) {
				return true
			}
		}
	case *ast.SendStmt:
		return usesValue(pass.TypesInfo, n.Value, pkt)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if usesValue(pass.TypesInfo, res, pkt) {
				return true
			}
		}
	}
	return false
}

// mustProblem builds the shared must-reach dataflow problem: forward,
// join = min over visited predecessors (pending poisons any merge),
// with step applied to each executable node in evaluation order. Defer
// statements are skipped at their registration site — the CFG replays
// the deferred calls into the exit block, where step sees them in LIFO
// order — and nested function literals are opaque: code a closure
// might run later neither opens nor retires an obligation here.
func mustProblem(step func(ast.Node, int) int) cfg.Problem[int] {
	scan := func(n ast.Node, s int) int {
		if _, ok := n.(*ast.DeferStmt); ok {
			return s
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if x != nil {
				s = step(x, s)
			}
			return true
		})
		return s
	}
	return cfg.Problem[int]{
		Dir:      cfg.Forward,
		Boundary: discharged,
		Init:     unvisited,
		Transfer: func(blk *cfg.Block, s int) int {
			for _, n := range blk.Nodes {
				s = scan(n, s)
			}
			if blk.Cond != nil {
				s = scan(blk.Cond, s)
			}
			return s
		},
		Join: func(a, b int) int {
			if a == unvisited {
				return b
			}
			if b == unvisited {
				return a
			}
			if b < a {
				return b
			}
			return a
		},
		Equal: func(a, b int) bool { return a == b },
	}
}
