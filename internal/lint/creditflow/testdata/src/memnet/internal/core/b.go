// Fixture: cross-package fact flow. This package is loaded after the
// link fixture, so link's ownership summaries (Buffer.Push owns, Peek
// does not) arrive through the shared fact store — exactly how the
// driver checks internal/core's wiring closures against summaries
// computed over internal/link.
package core

import "memnet/internal/link"

// wireGood discharges through an owner whose fact came from the link
// fixture package.
func wireGood(d *link.Direction, b *link.Buffer) {
	d.SetDeliver(func(p *link.Packet) {
		b.Push(p)
	})
}

// wirePeek passes the packet only to a function the fact store knows
// is not an owner: the leak is visible across the package boundary.
func wirePeek(d *link.Direction) {
	d.SetDeliver(func(p *link.Packet) { // want `delivery closure does not hand packet "p" to an owning sink`
		link.Peek(p)
	})
}

// wireDrop never mentions the packet as a value at all.
func wireDrop(d *link.Direction) {
	d.SetDeliver(func(p *link.Packet) { // want `delivery closure does not hand packet "p" to an owning sink`
		_ = p.ID
	})
}
