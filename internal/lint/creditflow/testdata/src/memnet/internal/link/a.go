// Fixture: credit-conservation obligations inside one package. The
// types mirror the real internal/link shapes (credits/outstanding
// counters, delivery closures) without importing it.
package link

type VC int

type Packet struct{ ID int }

type Direction struct {
	credits     [2]int
	outstanding [2]int
}

// ReturnCredit is a direct credit sink (credits increment).
func (d *Direction) ReturnCredit(vc VC) {
	d.credits[vc]++
	d.outstanding[vc]--
}

// finish is a sink via the outstanding counter.
func (d *Direction) finish(vc VC) {
	d.outstanding[vc]++
}

// transmitGood retires the credit on both branches.
func (d *Direction) transmitGood(vc VC, drop bool) {
	d.credits[vc]--
	if drop {
		d.credits[vc]++
		return
	}
	d.outstanding[vc]++
}

// transmitLeak loses the credit on the early-return path.
func (d *Direction) transmitLeak(vc VC, busy bool) {
	d.credits[vc]-- // want `credit decrement does not reach a credit sink`
	if busy {
		return
	}
	d.outstanding[vc]++
}

// transmitViaCall discharges through a same-package sink call.
func (d *Direction) transmitViaCall(vc VC) {
	d.credits[vc]--
	d.finish(vc)
}

// transmitSubAssign opens an obligation with -= and leaks it in the
// loop's zero-iteration case.
func (d *Direction) transmitSubAssign(vc VC, n int) {
	d.credits[vc] -= 1 // want `credit decrement does not reach a credit sink`
	for i := 0; i < n; i++ {
		d.ReturnCredit(vc)
	}
}

// transmitPanic is clean: the violating path dies in panic, which
// retires nothing by design.
func (d *Direction) transmitPanic(vc VC) {
	d.credits[vc]--
	if d.credits[vc] < 0 {
		panic("credit underflow")
	}
	d.ReturnCredit(vc)
}

// transmitDefer retires the credit in a deferred call.
func (d *Direction) transmitDefer(vc VC) {
	defer d.ReturnCredit(vc)
	d.credits[vc]--
}

// transmitAnnotated documents an intentional transfer the analyzer
// cannot see; the escape hatch waives the obligation.
func (d *Direction) transmitAnnotated(vc VC) {
	d.credits[vc]-- //lint:creditsink retired by the peer on reconnect
}

// delegate retires the credit through a func-typed value (the Buffer
// credit-callback pattern).
func (d *Direction) delegate(vc VC, credit func(VC)) {
	d.credits[vc]--
	credit(vc)
}

// Retire carries a //lint:creditsink on its declaration: callers may
// treat it as a sink even though its body shows no increment.
//
//lint:creditsink retires via the coalescing side table
func (d *Direction) Retire(vc VC) {}

// transmitViaAnnotated discharges through the annotated sink.
func (d *Direction) transmitViaAnnotated(vc VC) {
	d.credits[vc]--
	d.Retire(vc)
}

// Buffer stores delivered packets; Push takes ownership.
type Buffer struct {
	q []*Packet
}

func (b *Buffer) Push(p *Packet) {
	b.q = append(b.q, p)
}

// Peek only inspects the packet: not an owner.
func Peek(p *Packet) int {
	return p.ID
}

// SetDeliver wires a delivery closure (the arg makes any nested func
// literal a delivery obligation).
func (d *Direction) SetDeliver(fn func(*Packet)) {}

// wireGood hands the packet off on its only path.
func wireGood(d *Direction, b *Buffer) {
	d.SetDeliver(func(p *Packet) {
		b.Push(p)
	})
}

// wireLeak drops the packet on the filtered branch.
func wireLeak(d *Direction, b *Buffer) {
	d.SetDeliver(func(p *Packet) { // want `delivery closure does not hand packet "p" to an owning sink`
		if p.ID == 0 {
			return
		}
		b.Push(p)
	})
}

// wirePeek only reads the packet through a known non-owner: still a leak.
func wirePeek(d *Direction) {
	d.SetDeliver(func(p *Packet) { // want `delivery closure does not hand packet "p" to an owning sink`
		Peek(p)
	})
}

// wireAnnotated waives the obligation with the escape hatch.
func wireAnnotated(d *Direction) {
	//lint:creditsink telemetry mirror, ownership stays upstream
	d.SetDeliver(func(p *Packet) {
		Peek(p)
	})
}

// Router returns its delivery closure from a method named Deliver,
// delegating through a func-typed field.
type Router struct {
	sink func(*Packet)
}

func (r *Router) Deliver() func(*Packet) {
	return func(p *Packet) {
		r.sink(p)
	}
}

// Tap also returns a closure, but from a method not named Deliver: no
// obligation applies, so the silent drop below is not reported.
func (r *Router) Tap() func(*Packet) {
	return func(p *Packet) {
		_ = p.ID
	}
}

// LeakyRouter's Deliver forgets the packet on one branch.
type LeakyRouter struct {
	sink func(*Packet)
}

func (r *LeakyRouter) Deliver() func(*Packet) {
	return func(p *Packet) { // want `delivery closure does not hand packet "p" to an owning sink`
		if p.ID < 0 {
			return
		}
		r.sink(p)
	}
}
