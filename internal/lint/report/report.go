// Package report renders mnlint findings deterministically.
//
// Every emitter consumes the same canonically ordered finding list —
// sorted by (file, line, column, analyzer, message) — so two runs over
// the same tree produce byte-identical output regardless of package
// load order or analyzer scheduling. Three formats are supported:
//
//   - text: the conventional file:line:col: analyzer: message lines
//     (what CI logs and editors consume),
//   - json: a stable JSON array for scripting,
//   - sarif: SARIF 2.1.0 for code-scanning upload.
//
// The package also implements the suppression baseline: a checked-in
// JSON file keyed by (analyzer, file, message) — deliberately not by
// line, so unrelated edits that shift a finding a few lines do not
// resurrect it. Each baseline entry carries a count; a run may match a
// key at most that many times before the finding escapes the filter.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"memnet/internal/lint/analysis"
)

// Sort orders findings canonically: by file, then line, then column,
// then analyzer name, then message. All emitters assume this order.
func Sort(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Relativize rewrites absolute finding paths to be relative to dir
// (slash-separated), leaving paths outside dir untouched. Relative
// paths keep CI logs portable and make the baseline machine-independent.
func Relativize(fs []analysis.Finding, dir string) {
	for i := range fs {
		if r, err := filepath.Rel(dir, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(r)
		}
	}
}

// WriteText emits one file:line:col: analyzer: message line per finding.
func WriteText(w io.Writer, fs []analysis.Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable JSON wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON emits the findings as an indented JSON array (empty slice,
// not null, when there are none).
func WriteJSON(w io.Writer, fs []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits a single-run SARIF 2.1.0 log. The rule table lists
// every analyzer in the suite (not just those with findings) so the
// consumer can show which checks ran; findings become error-level
// results referencing their analyzer's rule ID.
func WriteSARIF(w io.Writer, fs []analysis.Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mnlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Baseline is a suppression list for known findings, keyed by
// (analyzer, file, message) with a per-key count.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry suppresses up to Count findings matching the key.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + filepath.ToSlash(file) + "\x00" + message
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter returns the findings not absorbed by the baseline, preserving
// order. Each baseline entry absorbs at most its Count matches.
func (b *Baseline) Filter(fs []analysis.Finding) []analysis.Finding {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	out := make([]analysis.Finding, 0, len(fs))
	for _, f := range fs {
		k := baselineKey(f.Analyzer, f.Pos.Filename, f.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// NewBaseline builds a baseline absorbing exactly the given findings.
func NewBaseline(fs []analysis.Finding) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, f := range fs {
		counts[BaselineEntry{
			Analyzer: f.Analyzer,
			File:     filepath.ToSlash(f.Pos.Filename),
			Message:  f.Message,
		}]++
	}
	b := &Baseline{Version: 1, Findings: make([]BaselineEntry, 0, len(counts))}
	for e, n := range counts {
		e.Count = n
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaselineFile writes the baseline as indented JSON.
func WriteBaselineFile(path string, b *Baseline) error {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o666)
}
