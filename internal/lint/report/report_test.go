package report_test

import (
	"go/token"
	"strings"
	"testing"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/report"
)

// sample is a deliberately shuffled multi-analyzer finding set: two
// analyzers on the same line, two files, duplicate keys for the
// baseline counter. Sorting must order it by (file, line, column,
// analyzer, message).
func sample() []analysis.Finding {
	mk := func(an, file string, line, col int, msg string) analysis.Finding {
		return analysis.Finding{
			Analyzer: an,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}
	return []analysis.Finding{
		mk("poolcheck", "internal/link/link.go", 40, 2, "use of packet p after it was released to the pool at internal/link/link.go:38:2"),
		mk("creditflow", "internal/core/core.go", 12, 5, "credit decrement does not reach a credit sink on every path to return (retire it, or annotate //lint:creditsink)"),
		mk("detmap", "internal/link/link.go", 40, 2, "map iteration order is nondeterministic"),
		mk("fsmcheck", "internal/link/link.go", 7, 1, "undeclared state transition down -> up on field state (//lint:fsm allows no such edge; annotate //lint:fsmtrans if deliberate)"),
		mk("lookahead", "internal/core/core.go", 12, 5, "cross-shard post is scheduled at the sender's clock; every declared channel requires a positive lookahead, so this panics at the boundary"),
	}
}

const goldenText = `internal/core/core.go:12:5: creditflow: credit decrement does not reach a credit sink on every path to return (retire it, or annotate //lint:creditsink)
internal/core/core.go:12:5: lookahead: cross-shard post is scheduled at the sender's clock; every declared channel requires a positive lookahead, so this panics at the boundary
internal/link/link.go:7:1: fsmcheck: undeclared state transition down -> up on field state (//lint:fsm allows no such edge; annotate //lint:fsmtrans if deliberate)
internal/link/link.go:40:2: detmap: map iteration order is nondeterministic
internal/link/link.go:40:2: poolcheck: use of packet p after it was released to the pool at internal/link/link.go:38:2
`

func TestSortAndTextGolden(t *testing.T) {
	fs := sample()
	report.Sort(fs)
	var sb strings.Builder
	if err := report.WriteText(&sb, fs); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenText {
		t.Errorf("text output mismatch:\n got:\n%s\nwant:\n%s", sb.String(), goldenText)
	}
}

func TestSortIsDeterministic(t *testing.T) {
	a, b := sample(), sample()
	// Reverse one copy: sorting must converge to the same order.
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	report.Sort(a)
	report.Sort(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJSONGolden(t *testing.T) {
	fs := sample()
	report.Sort(fs)
	var sb strings.Builder
	if err := report.WriteJSON(&sb, fs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"analyzer": "creditflow"`,
		`"file": "internal/link/link.go"`,
		`"line": 40`,
		`"column": 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(out, "[\n") {
		t.Errorf("JSON output should be an array:\n%s", out)
	}
	var empty strings.Builder
	if err := report.WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Errorf("empty finding set must encode as [], got %q", empty.String())
	}
}

func TestSARIFGolden(t *testing.T) {
	fs := sample()
	report.Sort(fs)
	analyzers := []*analysis.Analyzer{
		{Name: "detmap", Doc: "no unordered map iteration"},
		{Name: "poolcheck", Doc: "no use after Pool.Put"},
	}
	var sb strings.Builder
	if err := report.WriteSARIF(&sb, fs, analyzers); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"name": "mnlint"`,
		`"id": "detmap"`,
		`"ruleId": "fsmcheck"`,
		`"uri": "internal/link/link.go"`,
		`"startLine": 7`,
		`"level": "error"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s:\n%s", want, out)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	fs := sample()
	report.Sort(fs)
	b := report.NewBaseline(fs)
	if left := b.Filter(fs); len(left) != 0 {
		t.Errorf("baseline built from findings must absorb all of them, left %v", left)
	}
	// A fresh finding with a new message escapes the filter.
	novel := analysis.Finding{
		Analyzer: "detmap",
		Pos:      token.Position{Filename: "internal/link/link.go", Line: 99, Column: 1},
		Message:  "a brand new finding",
	}
	if left := b.Filter(append(fs, novel)); len(left) != 1 || left[0] != novel {
		t.Errorf("novel finding must escape the baseline, got %v", left)
	}
	// Line drift does not resurrect a baselined finding...
	drifted := fs[0]
	drifted.Pos.Line += 3
	if left := b.Filter([]analysis.Finding{drifted}); len(left) != 0 {
		t.Errorf("line drift must not resurrect a baselined finding, got %v", left)
	}
	// ...but a second occurrence beyond the count does escape.
	if left := b.Filter([]analysis.Finding{fs[0], drifted}); len(left) != 1 {
		t.Errorf("count-exceeding duplicate must escape the baseline, got %v", left)
	}
	// Round-trip through the file format.
	path := t.TempDir() + "/baseline.json"
	if err := report.WriteBaselineFile(path, b); err != nil {
		t.Fatal(err)
	}
	b2, err := report.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if left := b2.Filter(fs); len(left) != 0 {
		t.Errorf("reloaded baseline must absorb the original findings, left %v", left)
	}
}

func TestRelativize(t *testing.T) {
	fs := []analysis.Finding{
		{Analyzer: "detmap", Pos: token.Position{Filename: "/work/repo/internal/a.go", Line: 1, Column: 1}},
		{Analyzer: "detmap", Pos: token.Position{Filename: "/elsewhere/b.go", Line: 1, Column: 1}},
	}
	report.Relativize(fs, "/work/repo")
	if fs[0].Pos.Filename != "internal/a.go" {
		t.Errorf("in-dir path not relativized: %q", fs[0].Pos.Filename)
	}
	if fs[1].Pos.Filename != "/elsewhere/b.go" {
		t.Errorf("out-of-dir path must be untouched: %q", fs[1].Pos.Filename)
	}
}
