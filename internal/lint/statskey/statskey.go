// Package statskey implements the mnlint analyzer that keeps formatted
// string keys and string-keyed counter maps out of simulation hot
// paths.
//
// Building a stat key with fmt.Sprintf (or indexing a counter map by a
// freshly formatted string) on a per-packet or per-event path allocates
// on every call and funnels the hot loop through reflection-based
// formatting — the exact pattern the PR 1 engine overhaul removed.
// Counters in simulation packages should be plain struct fields
// (stats.Collector, stats.FaultCounters) or slices indexed by small
// integer ids; formatted labels belong in the reporting layer
// (internal/experiments, cmd/...), which runs once per experiment, not
// per event. Cold-path exceptions can be annotated //lint:coldpath.
package statskey

import (
	"go/ast"
	"go/types"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the statskey analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statskey",
	Doc: "flag fmt-built stat keys and string-keyed counter maps in " +
		"simulation packages (use struct counters or integer-indexed slices)",
	Run: run,
}

// fmtBuilders are the fmt functions that allocate a formatted string.
var fmtBuilders = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Appendf": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	info := pass.TypesInfo
	analysis.Inspect(pass, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			// m[fmt.Sprintf(...)] — a formatted map key.
			if !lintutil.IsMapType(info, e.X) {
				return true
			}
			if call := fmtCall(info, e.Index); call != nil && !dirs.Allows(e.Pos(), "coldpath") {
				pass.Reportf(e.Index.Pos(),
					"fmt-built map key in simulation package; key by a typed value (struct or integer id) or annotate //lint:coldpath")
			}
		}
		return true
	})

	// String-keyed counter maps declared in simulation packages: a
	// make(map[string]<numeric>) is almost always a per-event counter
	// that should be a struct field or an indexed slice.
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || len(call.Args) == 0 {
			return true
		}
		if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		t := info.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		mt, ok := t.Underlying().(*types.Map)
		if !ok {
			return true
		}
		kb, ok := mt.Key().Underlying().(*types.Basic)
		if !ok || kb.Info()&types.IsString == 0 {
			return true
		}
		vb, ok := mt.Elem().Underlying().(*types.Basic)
		if !ok || vb.Info()&(types.IsInteger|types.IsFloat) == 0 {
			return true
		}
		if dirs.Allows(call.Pos(), "coldpath") {
			return true
		}
		pass.Reportf(call.Pos(),
			"string-keyed counter map (%s) constructed in simulation package; use struct counter fields or an integer-indexed slice, or annotate //lint:coldpath", mt)
		return true
	})
	return nil, nil
}

// fmtCall returns e as a call to a fmt string builder, or nil.
func fmtCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return nil
	}
	if !fmtBuilders[fn.Name()] {
		return nil
	}
	return call
}
