// Package load is a statskey fixture modeled on the scenario loader:
// validation builds one-shot lookup indexes (name → node ID, endpoint
// pair dedup) at load time, which is cold path by construction — but
// formatted-string keys and string-keyed counters are still wrong as
// the general pattern, so the cold-path ones carry the annotation.
package load

import "fmt"

type pair struct{ a, b string }

// Good: duplicate-link detection keyed by a typed value, not a
// formatted string.
func dupLinks(links []pair) error {
	seen := make(map[pair]bool, len(links))
	for i, l := range links {
		if l.b < l.a {
			l.a, l.b = l.b, l.a
		}
		if seen[l] {
			return fmt.Errorf("links[%d]: duplicate edge %s-%s", i, l.a, l.b)
		}
		seen[l] = true
	}
	return nil
}

// Good: the load-time name index is built once per document and says
// so; lookups afterwards carry plain strings, not formatted ones.
func nameIndex(names []string) map[string]int {
	//lint:coldpath name→ID index built once per document load
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i + 1
	}
	return idx
}

// Bad: a formatted endpoint-pair key — the typed pair above exists
// exactly so no per-edge string is ever built.
func dupLinksFormatted(links []pair, seen map[string]bool) bool {
	for _, l := range links {
		if seen[fmt.Sprintf("%s|%s", l.a, l.b)] { // want `fmt-built map key in simulation package`
			return true
		}
	}
	return false
}

// Bad: an ad-hoc string-keyed counter for per-node link budgets; the
// budget belongs on the node struct or in an ID-indexed slice.
func portBudgets() map[string]int {
	return make(map[string]int) // want `string-keyed counter map`
}
