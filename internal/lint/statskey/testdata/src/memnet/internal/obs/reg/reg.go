// Package reg is a statskey fixture modelled on the internal/obs
// registry: metric names are interned once at registration time into a
// cold-path index map, and every hot-path mutation goes through a typed
// handle that touches only slices — no string hashing per event.
package reg

import "fmt"

// counter is the typed handle the hot path holds.
type counter struct {
	v uint64
}

func (c *counter) inc() { c.v++ }

// registry mirrors obs.Registry: slices in registration order plus a
// name index built once at startup.
type registry struct {
	counters []*counter
	names    []string
	index    map[string]int
}

// Good: the interning pattern — the duplicate-check map is constructed
// once per run and annotated as cold path.
func newRegistry() *registry {
	return &registry{
		//lint:coldpath name→index map built once at registration, never per event
		index: make(map[string]int),
	}
}

// Good: registration happens once; the fmt-built name lands in a slice
// and a coldpath-annotated map, not on the hot path.
func (r *registry) counterFor(node int) *counter {
	name := fmt.Sprintf("node%d.grants", node)
	//lint:coldpath registration-time duplicate check
	if _, dup := r.index[name]; dup {
		panic("duplicate metric " + name)
	}
	c := &counter{}
	r.index[name] = len(r.counters)
	r.names = append(r.names, name)
	r.counters = append(r.counters, c)
	return c
}

// Good: the hot path increments through the handle; no strings.
func hotPath(c *counter) { c.inc() }

// Bad: bypassing the handle and re-resolving a formatted name per event
// is exactly what interning exists to avoid.
func hotLookup(m map[string]uint64, node int) {
	m[fmt.Sprintf("node%d.grants", node)]++ // want `fmt-built map key in simulation package`
}

// Bad: an ad-hoc string-keyed counter map instead of the registry.
func adHocCounters() map[string]uint64 {
	return make(map[string]uint64) // want `string-keyed counter map`
}
