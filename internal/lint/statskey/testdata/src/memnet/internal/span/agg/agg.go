// Package agg is a statskey fixture posing as span-recorder code: the
// recorder's hot path must not build string keys or string-keyed
// counters per event; aggregation maps belong in the one-shot analyzer
// behind a coldpath annotation.
package agg

import "fmt"

type seg struct {
	loc string
	dur int64
}

// Bad: accumulating per-location time under fmt-built keys on the
// recording path.
func badHotBlame(m map[string]int64, edge int, dur int64) {
	m[fmt.Sprintf("%d>%d", edge, edge+1)] += dur // want `fmt-built map key in simulation package`
}

// Bad: a fresh string-keyed counter map per recorder.
func badNewBlame() map[string]int64 {
	return make(map[string]int64) // want `string-keyed counter map`
}

// Good: the recorder appends segments to a slice; no map on the hot
// path at all.
func goodRecord(segs []seg, loc string, dur int64) []seg {
	return append(segs, seg{loc: loc, dur: dur})
}

// Good: the one-shot reporting aggregation, annotated as cold path (the
// shape internal/span/analyze.go ships).
func goodAnalyze(segs []seg) map[string]int {
	//lint:coldpath one-shot reporting aggregation, not a per-event path
	byLoc := make(map[string]int)
	for i := range segs {
		byLoc[segs[i].loc]++
	}
	return byLoc
}
