// Package sk is a statskey fixture posing as simulation code.
package sk

import "fmt"

// Bad: a per-event counter map keyed by strings.
func newCounters() map[string]uint64 {
	return make(map[string]uint64) // want `string-keyed counter map`
}

// Bad: formatting a key on every access.
func countBank(m map[string]uint64, bank int) {
	m[fmt.Sprintf("bank%d", bank)]++ // want `fmt-built map key in simulation package`
}

// Bad: fmt.Sprint variant used as a lookup key.
func lookup(m map[string]float64, id uint64) float64 {
	return m[fmt.Sprint(id)] // want `fmt-built map key in simulation package`
}

// Good: integer-keyed maps are deterministic to build and cheap to hash.
func newByBank(banks int) map[int]uint64 {
	m := make(map[int]uint64, banks)
	return m
}

// Good: string-keyed sets (non-numeric values) are not counters.
func newSeen() map[string]struct{} {
	return make(map[string]struct{})
}

// Good: struct-field counters — the idiom the analyzer pushes toward.
type counters struct {
	reads, writes uint64
}

func (c *counters) read() { c.reads++ }

// Good: an annotated cold-path exception (built once per run).
func newLabels() map[string]int {
	//lint:coldpath built once at configuration time, never touched per event
	return make(map[string]int)
}
