package statskey_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/statskey"
)

func TestStatskey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), statskey.Analyzer,
		"memnet/internal/vault/sk",
		"memnet/internal/span/agg",
		"memnet/internal/obs/reg",
		"memnet/internal/scenario/load",
	)
}
