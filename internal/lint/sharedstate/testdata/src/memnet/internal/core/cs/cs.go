// Package cs checks that internal/core is gated like internal/sim.
package cs

var mode string

func setMode(m string) {
	mode = m // want `write to package-level variable mode`
}
