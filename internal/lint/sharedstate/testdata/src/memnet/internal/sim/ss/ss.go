// Package ss is a sharedstate fixture posing as a simulation package.
package ss

import "sync"

// counter is package-level mutable state.
var counter int

var registry = map[string]int{}

// totalInit is written only from init, which is allowed.
var totalInit int

func init() {
	totalInit = 7
}

// Bad: runtime write to a package-level variable.
func bump() {
	counter++ // want `write to package-level variable counter`
}

// Bad: assignment form, and an indexed write through a global map.
func record(k string) {
	counter = counter + 1 // want `write to package-level variable counter`
	registry[k] = counter // want `write to package-level variable registry`
}

// Good: annotated global write (e.g. a test hook set before any shard
// goroutine starts).
func setHook(n int) {
	//lint:sharded set once at startup before shards exist
	counter = n
}

// Bad: a goroutine mutating a variable captured from the enclosing
// function instead of communicating over a channel.
func fanOut(n int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			total += i // want `goroutine writes captured variable total`
		}
		close(done)
	}()
	<-done
	return total
}

// Good: the result travels over a channel; the goroutine only writes
// its own locals.
func fanOutChan(n int) int {
	out := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < n; i++ {
			sum += i
		}
		out <- sum
	}()
	return <-out
}

// Good: mutex-guarded write, annotated with the discipline.
type box struct {
	mu sync.Mutex
	v  []int
}

func (b *box) collect(n int) {
	var wg sync.WaitGroup
	local := []int{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		//lint:sharded guarded by b.mu; drained only after wg.Wait
		local = append(local, n)
		//lint:sharded guarded by b.mu
		b.v = append(b.v, n)
		b.mu.Unlock()
	}()
	wg.Wait()
}

// Bad: the same shape without the annotation.
func (b *box) collectBad(n int) {
	var wg sync.WaitGroup
	local := []int{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		local = append(local, n) // want `goroutine writes captured variable local`
		b.mu.Unlock()
	}()
	wg.Wait()
	_ = local
}

// Good: goroutine parameters and goroutine-local declarations are fine.
func workers(jobs chan int) {
	go func(scale int) {
		acc := 0
		for j := range jobs {
			acc += j * scale
		}
	}(2)
}
