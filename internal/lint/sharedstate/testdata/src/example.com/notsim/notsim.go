// Package notsim is outside internal/sim and internal/core, so the
// sharedstate analyzer must not report anything here.
package notsim

var counter int

func bump() {
	counter++
}

func fanOut(n int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = n
		close(done)
	}()
	<-done
	return total
}
