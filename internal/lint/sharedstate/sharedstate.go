// Package sharedstate implements the mnlint analyzer that guards the
// partitioned parallel engine's ownership discipline in internal/sim
// and internal/core.
//
// The parallel engine runs each shard's events on its own goroutine;
// correctness rests on every piece of mutable state being owned by
// exactly one shard, with cross-shard communication going through the
// engine's inbox/channel machinery. Two static patterns break that
// discipline:
//
//   - writes to package-level variables: global mutable state is
//     reachable from every shard at once, so any runtime write is a
//     data race waiting for a second shard (writes from init functions
//     are allowed — they happen before any goroutine starts);
//
//   - non-channel cross-goroutine access: a goroutine body (a function
//     literal under a `go` statement, including nested literals) that
//     assigns to variables captured from the enclosing function shares
//     memory instead of communicating. Channel sends/receives are the
//     sanctioned hand-off and are not flagged.
//
// Deliberately synchronized state — a mutex-guarded inbox, a
// barrier-ordered slice slot — carries a //lint:sharded annotation
// naming the discipline that makes it safe.
package sharedstate

import (
	"go/ast"
	"go/types"
	"strings"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the sharedstate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc: "flag unguarded package-level writes and non-channel cross-goroutine " +
		"access in internal/sim and internal/core (annotate //lint:sharded <reason>)",
	Run: run,
}

// shardPackage reports whether the import path names one of the
// packages running under the partitioned engine's ownership rules:
// memnet/internal/sim or memnet/internal/core (or subpackages).
func shardPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && (segs[i+1] == "sim" || segs[i+1] == "core") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !shardPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		checkGlobalWrites(pass, dirs, f)
		checkGoroutineCaptures(pass, dirs, f)
	}
	return nil, nil
}

// checkGlobalWrites flags every runtime write to a package-level
// variable. Writes inside init functions run before any shard goroutine
// exists and are exempt.
func checkGlobalWrites(pass *analysis.Pass, dirs *lintutil.Directives, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Recv == nil && fd.Name.Name == "init" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					reportIfGlobal(pass, dirs, lhs)
				}
			case *ast.IncDecStmt:
				reportIfGlobal(pass, dirs, st.X)
			}
			return true
		})
	}
}

// reportIfGlobal reports lhs when its base identifier denotes a
// package-level variable (of any package) and no //lint:sharded
// directive covers the write.
func reportIfGlobal(pass *analysis.Pass, dirs *lintutil.Directives, lhs ast.Expr) {
	id := baseIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if dirs.Allows(lhs.Pos(), "sharded") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"write to package-level variable %s: global mutable state is shared across shard goroutines; make it per-instance or annotate //lint:sharded <reason>",
		id.Name)
}

// checkGoroutineCaptures flags assignments inside `go func(){...}`
// bodies (nested literals included) whose target is captured from the
// enclosing function instead of being local to the goroutine.
func checkGoroutineCaptures(pass *analysis.Pass, dirs *lintutil.Directives, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					reportIfCaptured(pass, dirs, lit, lhs)
				}
			case *ast.IncDecStmt:
				reportIfCaptured(pass, dirs, lit, st.X)
			}
			return true
		})
		return true
	})
}

// reportIfCaptured reports lhs when its base identifier denotes a
// function-scoped variable declared outside the goroutine's function
// literal — shared memory mutated across goroutines without a channel.
func reportIfCaptured(pass *analysis.Pass, dirs *lintutil.Directives, lit *ast.FuncLit, lhs ast.Expr) {
	id := baseIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		return // package-level: checkGlobalWrites owns that diagnostic
	}
	// Declared inside the goroutine literal (parameters included) means
	// goroutine-local; declared before it means captured.
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return
	}
	if dirs.Allows(lhs.Pos(), "sharded") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"goroutine writes captured variable %s: cross-goroutine state must move over a channel (or annotate //lint:sharded <reason>)",
		id.Name)
}

// baseIdent unwraps selectors, indexes, stars, and parens to the base
// identifier being written through, or nil when the target has no
// identifier base (e.g. a call result).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
