package sharedstate_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedstate.Analyzer,
		"memnet/internal/sim/ss",
		"memnet/internal/core/cs",
		"example.com/notsim",
	)
}
