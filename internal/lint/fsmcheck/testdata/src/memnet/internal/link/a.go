// Fixture: FSM-conformance checking on an annotated state field,
// mirroring the real link.Direction service-state machine.
package link

type State uint8

const (
	Up State = iota
	Down
	Retraining
)

type Direction struct {
	//lint:fsm up->down,down->retraining,retraining->up
	state State
}

// Fail follows the declared machine behind its panic guard: the
// fallthrough path proves state == Up, and up->down is declared.
func (d *Direction) Fail() {
	if d.state != Up {
		panic("link: Fail on a non-up direction")
	}
	d.state = Down
}

// BeginRetrain uses an equality guard with an early return.
func (d *Direction) BeginRetrain() {
	if d.state == Down {
		d.state = Retraining
		return
	}
	panic("link: BeginRetrain on a direction that is not down")
}

// CompleteRetrain closes the cycle.
func (d *Direction) CompleteRetrain() {
	if d.state != Retraining {
		panic("link: CompleteRetrain outside retraining")
	}
	d.state = Up
}

// forceUp writes Up from an unknown state: down->up is not declared,
// and neither is up->up.
func (d *Direction) forceUp() {
	d.state = Up // want `undeclared state transition down\|up -> up on field state`
}

// skipRetrain proves the state is Down, then jumps straight to Up.
func (d *Direction) skipRetrain() {
	if d.state != Down {
		return
	}
	d.state = Up // want `undeclared state transition down -> up on field state`
}

// doubleFail writes down->down: the write itself refines the mask, so
// the second write's source set is exactly {down}.
func (d *Direction) doubleFail() {
	if d.state != Up {
		return
	}
	d.state = Down
	d.state = Down // want `undeclared state transition down -> down on field state`
}

// guardLost calls between guard and write: the callee may transition
// the machine, so the write is checked against every state again.
func (d *Direction) guardLost() {
	if d.state != Up {
		return
	}
	d.poke()
	d.state = Down // want `undeclared state transition down\|retraining -> down on field state`
}

func (d *Direction) poke() {}

// reset documents a deliberate out-of-machine write.
func (d *Direction) reset() {
	d.state = Up //lint:fsmtrans test-only force reset
}

// dynamic writes a non-constant value: not checkable, and afterwards
// the machine may be anywhere — the follow-up write is checked against
// the full state set.
func (d *Direction) dynamic(s State) {
	d.state = s
	d.state = Retraining // want `undeclared state transition retraining\|up -> retraining on field state`
}
