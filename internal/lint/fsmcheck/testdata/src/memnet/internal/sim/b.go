// Fixture: malformed //lint:fsm specs are reported at the field.
package sim

type Phase int

const (
	Idle Phase = iota
	Busy
)

type Worker struct {
	//lint:fsm idle->busy,busy->sleeping
	phase Phase // want `//lint:fsm names unknown state "sleeping" \(states of Phase: busy, idle\)`
}

type Clock struct {
	//lint:fsm tick
	t int // want `//lint:fsm field t must have a named type with declared constants`
}
