// Package fsmcheck implements the annotation-driven FSM-conformance
// analyzer.
//
// A struct field holding a state machine declares its legal transitions
// on the field itself:
//
//	//lint:fsm up->down,down->retraining,retraining->up
//	state State
//
// Each name binds, case-insensitively, to a package-level constant of
// the field's type (Up, Down, Retraining). fsmcheck then audits every
// write to the field in the package: at each `x.state = <const>` the
// analyzer knows, from a forward dataflow, which states the field may
// currently hold, and reports the write if any possible current state
// has no declared transition to the new one.
//
// The possible-state set starts at "any" and is refined two ways:
//
//   - Writes: after `x.state = Down` the set is exactly {down}.
//   - Guards: the CFG solver's per-edge transfer narrows on branch
//     conditions, so in `if d.state != Up { panic(...) }` the fallthrough
//     path knows the state is {up} — the panic-guard idiom the real
//     link methods use becomes a verified precondition, not a blind
//     runtime check.
//
// Any function call resets the set to "any" (the callee may transition
// the machine), and writes of non-constant values are not checkable
// (they also reset to "any"). The analysis is package-local: the
// audited fields are unexported, so every write site is in view.
//
// //lint:fsmtrans on a write suppresses its finding — for transitions
// that are deliberately outside the declared machine, e.g. a test-only
// force-reset.
package fsmcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/cfg"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the fsmcheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "fsmcheck",
	Doc:  "writes to //lint:fsm-annotated state fields must follow the declared transitions",
	Run:  run,
}

// machine is one annotated field's declared state machine.
type machine struct {
	field *types.Var
	// names maps constant value -> state name (the constant's name,
	// lowercased to match the annotation's spelling).
	names map[int64]string
	// trans[from] is the set of declared successor values.
	trans map[int64]map[int64]bool
	// all is the bitmask of every declared state value.
	all uint64
}

func (m *machine) bit(v int64) uint64 {
	if v < 0 || v >= 64 {
		return 0
	}
	return 1 << uint(v)
}

// name renders a state value for diagnostics.
func (m *machine) name(v int64) string {
	if n, ok := m.names[v]; ok {
		return n
	}
	return fmt.Sprintf("%d", v)
}

func run(pass *analysis.Pass) (any, error) {
	dirs := lintutil.NewDirectives(pass.Fset, pass.Files)
	machines := collectMachines(pass, dirs)
	if len(machines) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, fb := range lintutil.Functions(f) {
			checkBody(pass, dirs, machines, fb.Body)
		}
	}
	return nil, nil
}

// collectMachines finds //lint:fsm-annotated struct fields and parses
// their transition specs against the constants of the field's type.
func collectMachines(pass *analysis.Pass, dirs *lintutil.Directives) map[*types.Var]*machine {
	out := make(map[*types.Var]*machine)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					spec, ok := dirs.Text(name.Pos(), "fsm")
					if !ok {
						continue
					}
					fv, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if m := parseMachine(pass, fv, spec, name.Pos()); m != nil {
						out[fv] = m
					}
				}
			}
			return true
		})
	}
	return out
}

// parseMachine binds one //lint:fsm spec ("a->b,b->c,...") to the
// constants of the field's type. Malformed specs are reported at the
// field and yield no machine (no transition would be checkable).
func parseMachine(pass *analysis.Pass, field *types.Var, spec string, pos token.Pos) *machine {
	named, ok := field.Type().(*types.Named)
	if !ok {
		pass.Reportf(pos, "//lint:fsm field %s must have a named type with declared constants", field.Name())
		return nil
	}
	// Collect the field type's package-level constants: state name
	// (lowercased) -> value.
	consts := make(map[string]int64)
	var names []string
	scope := pass.Pkg.Scope()
	for _, n := range scope.Names() {
		c, ok := scope.Lookup(n).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) || c.Val().Kind() != constant.Int {
			continue
		}
		v, _ := constant.Int64Val(c.Val())
		consts[strings.ToLower(c.Name())] = v
		names = append(names, strings.ToLower(c.Name()))
	}
	sort.Strings(names)
	m := &machine{field: field, names: make(map[int64]string), trans: make(map[int64]map[int64]bool)}
	for lower, v := range consts {
		m.names[v] = lower
		m.all |= m.bit(v)
	}
	// The spec's first whitespace-separated token is the transition
	// list; anything after it is prose.
	if i := strings.IndexAny(spec, " \t"); i >= 0 {
		spec = spec[:i]
	}
	for _, t := range strings.Split(spec, ",") {
		from, to, ok := strings.Cut(t, "->")
		if !ok {
			pass.Reportf(pos, "//lint:fsm transition %q is not of the form from->to", t)
			return nil
		}
		fv, fok := consts[strings.ToLower(from)]
		tv, tok := consts[strings.ToLower(to)]
		if !fok || !tok {
			bad := from
			if fok {
				bad = to
			}
			pass.Reportf(pos, "//lint:fsm names unknown state %q (states of %s: %s)", bad, named.Obj().Name(), strings.Join(names, ", "))
			return nil
		}
		if m.trans[fv] == nil {
			m.trans[fv] = make(map[int64]bool)
		}
		m.trans[fv][tv] = true
	}
	return m
}

// masks tracks, per base variable, the bitmask of states an annotated
// field may hold. Absent means "any state"; a nil map is the dataflow
// bottom (unvisited).
type masks map[maskKey]uint64

// maskKey identifies one (object, field) pair: the machine instance a
// refinement applies to.
type maskKey struct {
	base  *types.Var
	field *types.Var
}

func (ms masks) clone() masks {
	out := make(masks, len(ms))
	for k, v := range ms {
		out[k] = v
	}
	return out
}

// checkBody audits one function body's writes against the machines.
func checkBody(pass *analysis.Pass, dirs *lintutil.Directives, machines map[*types.Var]*machine, body *ast.BlockStmt) {
	// Cheap pre-filter: skip functions that never touch an annotated
	// field.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if fv, _ := fieldOf(pass, sel); machines[fv] != nil {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}
	g := cfg.New(body)
	prob := cfg.Problem[masks]{
		Dir:      cfg.Forward,
		Boundary: masks{},
		Init:     nil,
		Transfer: func(blk *cfg.Block, in masks) masks {
			ms := in.clone()
			for _, n := range blk.Nodes {
				transferNode(pass, machines, n, ms, nil)
			}
			return ms
		},
		Join:  joinMasks,
		Equal: equalMasks,
		EdgeTransfer: func(blk *cfg.Block, succ int, out masks) masks {
			return refine(pass, machines, blk.Cond, succ == 0, out)
		},
	}
	sol := cfg.Solve(g, prob)
	for _, blk := range g.Blocks {
		ms := sol.In[blk.Index]
		if ms == nil && blk != g.Entry {
			continue // unreachable
		}
		ms = ms.clone()
		for _, n := range blk.Nodes {
			transferNode(pass, machines, n, ms, func(pos token.Pos, format string, args ...any) {
				if !dirs.Allows(pos, "fsmtrans") {
					pass.Reportf(pos, format, args...)
				}
			})
		}
	}
}

// transferNode applies one node's effect on the state masks; when
// report is non-nil, undeclared transitions are reported.
func transferNode(pass *analysis.Pass, machines map[*types.Var]*machine, n ast.Node, ms masks, report func(token.Pos, string, ...any)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			applyWrite(pass, machines, x, ms, report)
		case *ast.CallExpr:
			// The callee may run any number of transitions.
			for k := range ms {
				delete(ms, k)
			}
		}
		return true
	})
}

// applyWrite checks and folds in assignments to annotated fields.
func applyWrite(pass *analysis.Pass, machines map[*types.Var]*machine, a *ast.AssignStmt, ms masks, report func(token.Pos, string, ...any)) {
	for i, lhs := range a.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fv, base := fieldOf(pass, sel)
		m := machines[fv]
		if m == nil {
			continue
		}
		key := maskKey{base, fv}
		cur, refined := ms[key]
		if !refined || base == nil {
			cur = m.all
		}
		var val int64
		valKnown := false
		if a.Tok == token.ASSIGN && len(a.Lhs) == len(a.Rhs) {
			if tv, ok := pass.TypesInfo.Types[a.Rhs[i]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				val, valKnown = constant.Int64Val(tv.Value)
			}
		}
		if !valKnown {
			// Unverifiable write: the machine may be anywhere after it.
			if base != nil {
				delete(ms, key)
			}
			continue
		}
		if report != nil {
			var bad []string
			for v, name := range m.names {
				if cur&m.bit(v) == 0 {
					continue
				}
				if !m.trans[v][val] {
					bad = append(bad, name)
				}
			}
			if len(bad) > 0 {
				sort.Strings(bad)
				report(a.Pos(), "undeclared state transition %s -> %s on field %s (//lint:fsm allows no such edge; annotate //lint:fsmtrans if deliberate)",
					strings.Join(bad, "|"), m.name(val), m.field.Name())
			}
		}
		if base != nil {
			ms[key] = m.bit(val)
		}
	}
}

// fieldOf resolves a selector to (annotatable field, base variable).
// The base is nil for compound paths (p.shards[i].state), which are
// checked against the full state set but not tracked.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Var, *types.Var) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	var base *types.Var
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		base, _ = lintutil.ObjectOf(pass.TypesInfo, id).(*types.Var)
	}
	return fv, base
}

// refine narrows the masks along a branch edge using the block's
// condition: `x.state == K` proves {K} on the true edge and removes K
// on the false edge; `!=` mirrors it.
func refine(pass *analysis.Pass, machines map[*types.Var]*machine, cond ast.Expr, isTrue bool, out masks) masks {
	if cond == nil {
		return out
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	sel, valExpr := bin.X, bin.Y
	if _, ok := ast.Unparen(sel).(*ast.SelectorExpr); !ok {
		sel, valExpr = bin.Y, bin.X
	}
	selExpr, ok := ast.Unparen(sel).(*ast.SelectorExpr)
	if !ok {
		return out
	}
	fv, base := fieldOf(pass, selExpr)
	m := machines[fv]
	if m == nil || base == nil {
		return out
	}
	tv, ok := pass.TypesInfo.Types[valExpr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return out
	}
	v, _ := constant.Int64Val(tv.Value)
	key := maskKey{base, fv}
	cur, refined := out[key]
	if !refined {
		cur = m.all
	}
	eq := (bin.Op == token.EQL) == isTrue
	next := out.clone()
	if eq {
		next[key] = cur & m.bit(v)
	} else {
		next[key] = cur &^ m.bit(v)
	}
	return next
}

// joinMasks unions the possible states per tracked key; a key missing
// from either side means "any", so only keys present in both survive.
// nil is the unvisited identity.
func joinMasks(a, b masks) masks {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(masks)
	for k, av := range a {
		if bv, ok := b[k]; ok {
			out[k] = av | bv
		}
	}
	return out
}

func equalMasks(a, b masks) bool {
	if len(a) != len(b) {
		return false
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			return false
		}
	}
	return true
}
