package fsmcheck_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/fsmcheck"
)

func TestFsmcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), fsmcheck.Analyzer,
		"memnet/internal/link", "memnet/internal/sim")
}
