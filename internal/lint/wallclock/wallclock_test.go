package wallclock_test

import (
	"testing"

	"memnet/internal/lint/analysistest"
	"memnet/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer,
		"memnet/internal/core/wc",
		"memnet/internal/link/retrain",
		"memnet/internal/span/rec",
		"memnet/internal/prof/ok",
	)
}
