// Package retrain is a wallclock fixture posing as link-recovery code:
// retrain windows and repair deadlines must be sim.Time arithmetic,
// never host-clock reads.
package retrain

import "time"

type simTime int64

// Bad: measuring a retrain window off the host clock makes recovery
// latency depend on machine load instead of simulated time.
func badRetrainWindow(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since in simulation package`
}

// Bad: stamping a repair completion with the host clock.
func badRepairStamp() time.Time {
	return time.Now() // want `wall-clock time\.Now in simulation package`
}

// Bad: pacing the retrain state machine with a real sleep.
func badRetrainPacing() {
	time.Sleep(200 * time.Nanosecond) // want `wall-clock time\.Sleep in simulation package`
}

// Good: the shipped shape — repair deadlines are additive simulated
// time, and time.Duration appears only as a unit-conversion type on
// configuration boundaries.
func goodRetrainDeadline(killAt, window simTime) simTime {
	return killAt + window
}

func goodWindowFromConfig(d time.Duration) simTime {
	return simTime(d.Nanoseconds()) * 1000
}
