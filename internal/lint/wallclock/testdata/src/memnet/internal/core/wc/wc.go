// Package wc is a wallclock fixture posing as simulation code.
package wc

import (
	"math/rand" // want `import of math/rand in simulation package`
	"time"
)

// Bad: host clock reads and sleeps inside simulation code.
func badClock() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now in simulation package`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulation package`
	return time.Since(start)     // want `wall-clock time\.Since in simulation package`
}

// Bad: taking the function value is as wrong as calling it.
func badValue() func() time.Time {
	return time.Now // want `wall-clock time\.Now in simulation package`
}

// Bad: process-global generator draws.
func badRand() int {
	return rand.Intn(8)
}

// Good: time.Duration as a pure type, and constant durations, are not
// wall-clock reads.
func goodDuration(ps int64) time.Duration {
	return time.Duration(ps) * time.Nanosecond
}
