// Package rec is a wallclock fixture posing as span-recorder code:
// segment timestamps and durations must come from the simulated clock
// carried into the hook, never from the host clock.
package rec

import "time"

type simTime int64

type seg struct {
	at, dur simTime
}

// Bad: stamping a segment with the host clock would make span files
// differ between machines and reruns.
func badSegStamp() time.Time {
	return time.Now() // want `wall-clock time\.Now in simulation package`
}

// Bad: measuring a queue residence with host-clock deltas.
func badResidence(enq time.Time) time.Duration {
	return time.Since(enq) // want `wall-clock time\.Since in simulation package`
}

// Good: the shipped shape — every segment is arithmetic over simulated
// timestamps the event boundary already had.
func goodSeg(enq, pop simTime) seg {
	return seg{at: enq, dur: pop - enq}
}
