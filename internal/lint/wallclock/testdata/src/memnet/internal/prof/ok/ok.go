// Package ok checks the allowlist: internal/prof (and cmd/...) may
// read the wall clock — profiling wants real time.
package ok

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
