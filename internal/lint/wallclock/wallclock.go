// Package wallclock implements the mnlint analyzer that keeps host
// wall-clock time and Go's global random generators out of simulation
// packages.
//
// memnet models time as integer picoseconds on a deterministic event
// engine; reading the host clock (time.Now and friends) or drawing from
// math/rand's process-global, Go-release-dependent generator inside
// simulation code silently breaks bit-identical replay. Simulation
// packages must use sim.Time / sim.Engine.Now for time and a seeded
// *sim.Rand for randomness. The profiler (internal/prof), command-line
// front ends (cmd/...), and the linter itself are exempt — wall-clock
// reporting belongs there.
package wallclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"memnet/internal/lint/analysis"
	"memnet/internal/lint/lintutil"
)

// Analyzer is the wallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and math/rand in simulation packages " +
		"(use sim.Engine time and seeded sim.Rand)",
	Run: run,
}

// bannedTimeFuncs are the package time entry points that observe or
// depend on the host clock. Pure types and conversions (time.Duration,
// time.Nanosecond) remain allowed.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedImports are process-global RNG packages; any import in
// simulation code is a finding, since even a seeded top-level use would
// share state across simulation instances.
var bannedImports = map[string]string{
	"math/rand":    "use a seeded *sim.Rand (per instance) instead of the global math/rand",
	"math/rand/v2": "use a seeded *sim.Rand (per instance) instead of math/rand/v2",
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in simulation package; %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in simulation package; use the sim.Engine clock (Engine.Now / Schedule)",
					fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
