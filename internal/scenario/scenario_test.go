package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"memnet/internal/arb"
	"memnet/internal/sim"
)

// validDoc returns a small valid scenario as a mutable document tree.
func validDoc() map[string]any {
	return map[string]any{
		"schema": Schema,
		"name":   "unit",
		"nodes": []any{
			map[string]any{"name": "c0"},
			map[string]any{"name": "c1", "tech": "nvm"},
			map[string]any{"name": "sw", "kind": "iface"},
		},
		"links": []any{
			map[string]any{"a": "host", "b": "c0"},
			map[string]any{"a": "c0", "b": "sw", "interposer": true},
			map[string]any{"a": "sw", "b": "c1"},
		},
	}
}

// mustJSON marshals a document tree.
func mustJSON(t *testing.T, doc any) []byte {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecodeValid(t *testing.T) {
	s, err := Decode(mustJSON(t, validDoc()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "unit" || len(s.Nodes) != 3 || len(s.Links) != 3 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	// Defaults materialized.
	if s.Nodes[0].Kind != "cube" || s.Nodes[0].Tech != "dram" {
		t.Errorf("node defaults not filled: %+v", s.Nodes[0])
	}
	if s.Nodes[0].Pos == nil || *s.Nodes[0].Pos != 0 || s.Nodes[1].Pos == nil || *s.Nodes[1].Pos != 1 {
		t.Errorf("cube positions not defaulted: %+v %+v", s.Nodes[0], s.Nodes[1])
	}
	if s.Nodes[2].Pos != nil {
		t.Errorf("iface must not get a position: %+v", s.Nodes[2])
	}
}

// TestDecodeRejects is the table-driven rejection suite: every entry
// is one malformed document and the path-addressed error it must
// produce.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(doc map[string]any)
		want string
	}{
		{"bad-schema", func(d map[string]any) { d["schema"] = "memnet/scenario/v0" },
			`schema: got "memnet/scenario/v0"`},
		{"missing-name", func(d map[string]any) { delete(d, "name") },
			`missing required property "name"`},
		{"empty-nodes", func(d map[string]any) { d["nodes"] = []any{} },
			"nodes: at least one node required"},
		{"unknown-top-key", func(d map[string]any) { d["cubes"] = []any{} },
			`unexpected property "cubes"`},
		{"unknown-node-key", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["speed"] = 1
		}, `unexpected property "speed"`},
		{"node-bad-kind", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["kind"] = "switch"
		}, `nodes[0].kind: "switch"`},
		{"node-bad-tech", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["tech"] = "sram"
		}, `nodes[0].tech: "sram"`},
		{"node-reserved-name", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["name"] = "host"
		}, `nodes[0].name: "host" is reserved`},
		{"node-duplicate-name", func(d map[string]any) {
			d["nodes"].([]any)[1].(map[string]any)["name"] = "c0"
		}, `nodes[1].name: duplicate "c0"`},
		{"iface-tech", func(d map[string]any) {
			d["nodes"].([]any)[2].(map[string]any)["tech"] = "nvm"
		}, "nodes[2].tech: interface chips store nothing"},
		{"iface-pos", func(d map[string]any) {
			d["nodes"].([]any)[2].(map[string]any)["pos"] = 0
		}, "nodes[2].pos: interface chips have no position"},
		{"partial-pos", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["pos"] = 0
		}, "pos set on 1 of 2 cubes"},
		{"pos-out-of-range", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["pos"] = 0
			d["nodes"].([]any)[1].(map[string]any)["pos"] = 5
		}, "nodes[1].pos: 5 outside [0,2)"},
		{"pos-duplicate", func(d map[string]any) {
			d["nodes"].([]any)[0].(map[string]any)["pos"] = 1
			d["nodes"].([]any)[1].(map[string]any)["pos"] = 1
		}, "nodes[1].pos: 1 already used by nodes[0]"},
		{"link-unknown-a", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["a"] = "c9"
		}, `links[1].a: unknown node "c9"`},
		{"link-unknown-b", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["b"] = "c9"
		}, `links[1].b: unknown node "c9"`},
		{"link-self-loop", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["b"] = "c0"
		}, `links[1]: self-loop on "c0"`},
		{"link-duplicate", func(d map[string]any) {
			d["links"] = append(d["links"].([]any),
				map[string]any{"a": "sw", "b": "c0"})
		}, "links[3]: duplicates links[1]"},
		{"no-host-link", func(d map[string]any) {
			d["links"].([]any)[0].(map[string]any)["a"] = "c1"
		}, "host must have exactly one link, got 0"},
		{"two-host-links", func(d map[string]any) {
			d["links"] = append(d["links"].([]any),
				map[string]any{"a": "host", "b": "c1"})
		}, "host must have exactly one link, got 2"},
		{"link-bad-bandwidth", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["bandwidth_bps"] = -1
		}, "links[1].bandwidth_bps: must be positive"},
		{"link-bad-serdes", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["serdes_ps"] = -5
		}, "links[1].serdes_ps: must be non-negative"},
		{"link-bad-buffer", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["buffer_packets"] = 0
		}, "links[1].buffer_packets: must be positive"},
		{"link-bad-vcs", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["vcs"] = 3
		}, "links[1].vcs: got 3"},
		{"link-float-vcs", func(d map[string]any) {
			d["links"].([]any)[1].(map[string]any)["vcs"] = 1.5
		}, "links[1].vcs: got number, want [integer]"},
		{"router-unknown-node", func(d map[string]any) {
			d["routers"] = map[string]any{"c9": map[string]any{"arb": "rr"}}
		}, "routers.c9: unknown node"},
		{"router-host", func(d map[string]any) {
			d["routers"] = map[string]any{"host": map[string]any{"arb": "rr"}}
		}, "routers.host: unknown node"},
		{"router-bad-arb", func(d map[string]any) {
			d["routers"] = map[string]any{"c0": map[string]any{"arb": "fifo"}}
		}, `routers.c0.arb: unknown arbitration "fifo"`},
		{"router-unknown-key", func(d map[string]any) {
			d["routers"] = map[string]any{"c0": map[string]any{"policy": "rr"}}
		}, `unknown field "policy"`},
		{"router-bad-demotion", func(d map[string]any) {
			d["routers"] = map[string]any{"c0": map[string]any{"write_demotion": 0}}
		}, "routers.c0.write_demotion: must be at least 1"},
		{"workload-suite-and-custom", func(d map[string]any) {
			d["workload"] = map[string]any{"suite": "KMEANS", "read_fraction": 0.5}
		}, `workload: suite "KMEANS" excludes`},
		{"workload-unknown-suite", func(d map[string]any) {
			d["workload"] = map[string]any{"suite": "NOPE"}
		}, "workload.suite:"},
		{"workload-no-gap", func(d map[string]any) {
			d["workload"] = map[string]any{"read_fraction": 0.5}
		}, "workload.mean_gap_ps: must be positive"},
		{"workload-bad-fraction", func(d map[string]any) {
			d["workload"] = map[string]any{"mean_gap_ps": 1000, "read_fraction": 1.5}
		}, "workload.read_fraction: 1.5 outside [0,1]"},
		{"fault-bad-ber", func(d map[string]any) {
			d["fault"] = map[string]any{"link_ber": 2.0}
		}, "fault.link_ber: 2 outside [0,1]"},
		{"fault-link-out-of-range", func(d map[string]any) {
			d["fault"] = map[string]any{"kill_links": []any{
				map[string]any{"link": 7, "at_ps": 0},
			}}
		}, "fault.kill_links[0].link: 7 outside [0,3)"},
		{"fault-unknown-cube", func(d map[string]any) {
			d["fault"] = map[string]any{"kill_cubes": []any{
				map[string]any{"cube": "c9", "at_ps": 0},
			}}
		}, `fault.kill_cubes[0].cube: unknown node "c9"`},
		{"fault-kill-iface", func(d map[string]any) {
			d["fault"] = map[string]any{"kill_cubes": []any{
				map[string]any{"cube": "sw", "at_ps": 0},
			}}
		}, `fault.kill_cubes[0].cube: "sw" is an interface chip`},
		{"fault-backward-flap", func(d map[string]any) {
			d["fault"] = map[string]any{"lane_flaps": []any{
				map[string]any{"link": 1, "down_ps": 10, "up_ps": 5},
			}}
		}, "fault.lane_flaps[0]: window [10,5)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := validDoc()
			tc.mut(doc)
			_, err := Decode(mustJSON(t, doc))
			if err == nil {
				t.Fatalf("decode accepted the document, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalInvariance checks that formatting, key order, and
// elided defaults never change the canonical bytes.
func TestCanonicalInvariance(t *testing.T) {
	sparse := mustJSON(t, validDoc())
	// The same scenario, fully spelled out with defaults and noise
	// whitespace.
	explicit := []byte(`{
		"links": [
			{"b": "c0", "a": "host", "express": false},
			{"a": "c0", "b": "sw", "interposer": true},
			{"a": "sw", "b": "c1"}
		],
		"nodes": [
			{"name": "c0", "kind": "cube", "tech": "dram", "pos": 0},
			{"tech": "nvm", "name": "c1", "pos": 1},
			{"name": "sw", "kind": "iface"}
		],
		"name": "unit",
		"schema": "memnet/scenario/v1"
	}`)
	a, err := Decode(sparse)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	// Canonical is stable under repeated application.
	if !bytes.Equal(a.Canonical(), a.Canonical()) {
		t.Fatal("canonical not deterministic")
	}
	// And round-trips through Decode unchanged.
	c, err := Decode(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), c.Canonical()) {
		t.Fatal("canonical bytes not a fixed point of Decode")
	}
}

// TestCanonicalSensitivity checks semantic changes do move the bytes.
func TestCanonicalSensitivity(t *testing.T) {
	base, err := Decode(mustJSON(t, validDoc()))
	if err != nil {
		t.Fatal(err)
	}
	doc := validDoc()
	doc["links"].([]any)[1].(map[string]any)["buffer_packets"] = 4
	mut, err := Decode(mustJSON(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(base.Canonical(), mut.Canonical()) {
		t.Fatal("per-link override did not change canonical bytes")
	}
}

func TestNodeID(t *testing.T) {
	s, err := Decode(mustJSON(t, validDoc()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int{HostName: 0, "c0": 1, "c1": 2, "sw": 3} {
		id, ok := s.NodeID(name)
		if !ok || id != want {
			t.Errorf("NodeID(%q) = %d,%v want %d,true", name, id, ok, want)
		}
	}
	if _, ok := s.NodeID("c9"); ok {
		t.Error("NodeID resolved an unknown name")
	}
}

func TestWorkloadSpecSuite(t *testing.T) {
	doc := validDoc()
	doc["workload"] = map[string]any{"suite": "KMEANS"}
	s, err := Decode(mustJSON(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	wl, ok, err := s.WorkloadSpec()
	if err != nil || !ok || wl.Name != "KMEANS" {
		t.Fatalf("suite workload = %+v, %v, %v", wl, ok, err)
	}
}

func TestWorkloadSpecCustom(t *testing.T) {
	doc := validDoc()
	doc["workload"] = map[string]any{"mean_gap_ps": 2500, "read_fraction": 0.75}
	s, err := Decode(mustJSON(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	wl, ok, err := s.WorkloadSpec()
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if wl.Name != "custom" || wl.MeanGap != 2500*sim.Picosecond || wl.ReadFraction != 0.75 {
		t.Fatalf("custom workload = %+v", wl)
	}
}

func TestParseArb(t *testing.T) {
	for label, want := range map[string]arb.Kind{
		"rr": arb.RoundRobin, "distance": arb.Distance, "augmented": arb.DistanceAugmented,
	} {
		got, err := ParseArb(label)
		if err != nil || got != want {
			t.Errorf("ParseArb(%q) = %v, %v", label, got, err)
		}
	}
	if _, err := ParseArb("fifo"); err == nil {
		t.Error("ParseArb accepted an unknown label")
	}
}

// TestCloneIsolated checks Clone produces a fully independent copy.
func TestCloneIsolated(t *testing.T) {
	doc := validDoc()
	doc["links"].([]any)[0].(map[string]any)["buffer_packets"] = 8
	doc["routers"] = map[string]any{"c0": map[string]any{"arb": "rr"}}
	s, err := Decode(mustJSON(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	*c.Links[0].BufferPackets = 99
	*c.Nodes[0].Pos = 42
	c.Routers["c0"] = Router{Arb: "distance"}
	if *s.Links[0].BufferPackets != 8 || *s.Nodes[0].Pos != 0 || s.Routers["c0"].Arb != "rr" {
		t.Fatal("clone shares state with the original")
	}
}
