// Package scenario defines the declarative component-graph format
// ("memnet/scenario/v1"): a JSON document that names every cube,
// declares every link with optional per-link overrides, assigns
// per-router arbitration, and optionally embeds a workload and a fault
// plan. A scenario is data, not code — it can describe asymmetric and
// irregular graphs no compiled-in topology kind expresses, it is
// hashable by the campaign result cache, and the format reference in
// SCENARIOS.md is generated from the embedded schema so the two cannot
// drift.
//
// Loading is three layered passes, each with precise errors:
//
//  1. structural — the embedded JSON schema (obs.ValidateJSON subset)
//     rejects wrong shapes and unknown top-level keys;
//  2. decoding — encoding/json with DisallowUnknownFields rejects
//     unknown keys at every nesting level the schema subset cannot
//     reach (e.g. inside the routers map);
//  3. semantic — Validate addresses each fault by JSON path
//     ("links[3].b: unknown node ...") the way fault.Config.Build does.
//
// Specs are canonicalized (defaults materialized, then re-encoded with
// sorted object keys) before fingerprinting, so formatting, key order,
// and elided defaults never cause cache misses.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"memnet/internal/arb"
	"memnet/internal/obs"
	"memnet/internal/sim"
	"memnet/internal/workload"
)

// Schema is the format identifier every scenario document must carry
// in its "schema" field. Incompatible format revisions bump the vN
// suffix; additive optional fields do not.
const Schema = "memnet/scenario/v1"

// HostName is the reserved node name for the host port (graph node 0).
// It never appears in the nodes list; links reference it directly.
const HostName = "host"

// Spec is a parsed scenario document. The zero value is not runnable;
// construct specs with Decode/Load or fill the fields and call
// Normalize before use.
type Spec struct {
	// Schema must equal the package Schema constant.
	Schema string `json:"schema"`
	// Name labels the scenario; it becomes the run label for graphs
	// that match no built-in topology kind.
	Name string `json:"name"`
	// Topology optionally names the built-in kind this graph
	// reproduces ("chain", "ring", "tree", "skiplist", "metacube",
	// "mesh"). When set, runs label and route exactly like the
	// compiled-in topology; when empty the graph is free-form.
	Topology string `json:"topology,omitempty"`
	// Nodes declares the cubes and interface chips. Graph NodeID is
	// the list index plus one (the host is node 0).
	Nodes []Node `json:"nodes"`
	// Links declares the edges; list order fixes port numbering and
	// the edge indices used by fault events, exactly as for a
	// compiled-in topology.
	Links []Link `json:"links"`
	// Routers holds per-router overrides keyed by node name.
	Routers map[string]Router `json:"routers,omitempty"`
	// Workload optionally embeds the traffic generator configuration.
	Workload *Workload `json:"workload,omitempty"`
	// Fault optionally embeds a fault plan.
	Fault *Fault `json:"fault,omitempty"`
}

// Node declares one memory cube or interface chip.
type Node struct {
	// Name is the unique identifier links and routers reference.
	Name string `json:"name"`
	// Kind is "cube" (default) or "iface" (a MetaCube-style
	// interface chip that switches but stores nothing).
	Kind string `json:"kind,omitempty"`
	// Tech is "dram" (default) or "nvm"; cubes only.
	Tech string `json:"tech,omitempty"`
	// Pos is the cube's host-proximity order used by distance
	// arbitration and partitioning. Either every cube sets it (a
	// permutation of 0..cubes-1) or none does (declaration order).
	Pos *int `json:"pos,omitempty"`
}

// Link declares one full-duplex edge. The override fields are
// pointers: nil inherits the system-wide value, a set value pins this
// one link.
type Link struct {
	// A names the first endpoint ("host" or a node name).
	A string `json:"a"`
	// B names the second endpoint ("host" or a node name).
	B string `json:"b"`
	// Express marks a skip link usable only by the long-path packet
	// class.
	Express bool `json:"express,omitempty"`
	// Interposer marks an on-package hop (MetaCube interior): wider,
	// faster, and exempt from transient link faults.
	Interposer bool `json:"interposer,omitempty"`
	// BandwidthBps overrides the per-direction link bandwidth.
	BandwidthBps *int64 `json:"bandwidth_bps,omitempty"`
	// SerDesPs overrides the serialization latency, in picoseconds.
	SerDesPs *int64 `json:"serdes_ps,omitempty"`
	// BufferPackets overrides queue depth and credits on this link.
	BufferPackets *int `json:"buffer_packets,omitempty"`
	// VCs overrides the virtual-channel count: 2 (default) keeps the
	// response-priority VC, 1 collapses both classes onto one lane.
	VCs *int `json:"vcs,omitempty"`
	// MaxRetries overrides the transient-fault retry budget for this
	// link (effective only when the fault block enables a LinkBER).
	MaxRetries *int `json:"max_retries,omitempty"`
}

// Router holds per-router overrides; absent fields inherit the
// run-wide arbitration policy and tuning.
type Router struct {
	// Arb is "rr", "distance", or "augmented".
	Arb string `json:"arb,omitempty"`
	// WriteDemotion overrides how many response grants one write
	// grant costs under distance arbitration.
	WriteDemotion *int64 `json:"write_demotion,omitempty"`
	// SwitchBandwidthBps overrides the crossbar bandwidth.
	SwitchBandwidthBps *int64 `json:"switch_bandwidth_bps,omitempty"`
}

// Workload embeds the traffic generator configuration: either a named
// suite entry or a fully custom spec, never both.
type Workload struct {
	// Suite names a built-in workload (BACKPROP, KMEANS, ...); when
	// set, every custom field must stay zero.
	Suite string `json:"suite,omitempty"`
	// Name labels a custom workload (default "custom").
	Name string `json:"name,omitempty"`
	// ReadFraction is the fraction of transactions that are reads.
	ReadFraction float64 `json:"read_fraction,omitempty"`
	// MeanGapPs is the mean inter-arrival gap in picoseconds at the
	// reference 8-port configuration; required for custom workloads.
	MeanGapPs int64 `json:"mean_gap_ps,omitempty"`
	// SeqProb is the probability the next address is sequential.
	SeqProb float64 `json:"seq_prob,omitempty"`
	// SeqStride is the sequential stride in bytes.
	SeqStride uint64 `json:"seq_stride,omitempty"`
	// HotFraction is the fraction of accesses hitting the hot region.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// HotRegion is the hot region size as a fraction of the space.
	HotRegion float64 `json:"hot_region,omitempty"`
	// RMWFraction is the fraction of reads followed by a write-back.
	RMWFraction float64 `json:"rmw_fraction,omitempty"`
	// BurstProb is the probability a transaction opens a burst.
	BurstProb float64 `json:"burst_prob,omitempty"`
	// BurstLen is the mean burst length in transactions.
	BurstLen int `json:"burst_len,omitempty"`
	// BurstWriteFrac is the write fraction inside bursts.
	BurstWriteFrac float64 `json:"burst_write_frac,omitempty"`
	// Window caps outstanding transactions at the reference 8-port
	// configuration (0 = system default).
	Window int `json:"window,omitempty"`
}

// Fault embeds a fault plan. Links are addressed by index into the
// links list; cubes by node name. Times are picoseconds.
type Fault struct {
	// Seed drives the per-packet corruption draw when LinkBER is set.
	Seed uint64 `json:"seed,omitempty"`
	// LinkBER is the per-packet corruption probability on external
	// links.
	LinkBER float64 `json:"link_ber,omitempty"`
	// MaxRetries is the run-wide retry budget before a link declares
	// itself failed (0 = fault-package default).
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffPs is the retry backoff in picoseconds.
	RetryBackoffPs int64 `json:"retry_backoff_ps,omitempty"`
	// RetrainWindowPs enables link retraining: a link that exhausts
	// retries degrades for this many picoseconds instead of dying.
	RetrainWindowPs int64 `json:"retrain_window_ps,omitempty"`
	// Watchdog enables the stale-route watchdog.
	Watchdog bool `json:"watchdog,omitempty"`
	// KillLinks schedules hard link failures.
	KillLinks []LinkEvent `json:"kill_links,omitempty"`
	// RepairLinks schedules link repairs.
	RepairLinks []LinkEvent `json:"repair_links,omitempty"`
	// LaneFails schedules permanent half-bandwidth lane failures.
	LaneFails []LinkEvent `json:"lane_fails,omitempty"`
	// LaneFlaps schedules transient lane degradations.
	LaneFlaps []FlapEvent `json:"lane_flaps,omitempty"`
	// KillCubes schedules cube failures.
	KillCubes []CubeEvent `json:"kill_cubes,omitempty"`
	// RepairCubes schedules cube repairs.
	RepairCubes []CubeEvent `json:"repair_cubes,omitempty"`
}

// LinkEvent schedules a fault event on one link.
type LinkEvent struct {
	// Link indexes the links list.
	Link int `json:"link"`
	// AtPs is the event time in picoseconds.
	AtPs int64 `json:"at_ps"`
}

// FlapEvent schedules a transient lane degradation on one link.
type FlapEvent struct {
	// Link indexes the links list.
	Link int `json:"link"`
	// DownPs is the degradation start, in picoseconds.
	DownPs int64 `json:"down_ps"`
	// UpPs is the retrain-complete time, in picoseconds.
	UpPs int64 `json:"up_ps"`
}

// CubeEvent schedules a fault event on one cube.
type CubeEvent struct {
	// Cube names the affected node.
	Cube string `json:"cube"`
	// AtPs is the event time in picoseconds.
	AtPs int64 `json:"at_ps"`
	// Full makes a kill take the router down with the vaults
	// (kill_cubes only).
	Full bool `json:"full,omitempty"`
}

// Decode parses, validates, and normalizes a scenario document.
func Decode(data []byte) (*Spec, error) {
	if err := obs.ValidateJSON(SchemaJSON(), data); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and decodes a scenario document from r.
func Load(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Decode(data)
}

// LoadFile reads and decodes the scenario file at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Normalize materializes defaults (node kind/tech, cube positions,
// custom workload name) and then semantically validates the spec with
// path-addressed errors. It is idempotent; every consumer of a
// hand-built Spec must call it before use.
func (s *Spec) Normalize() error {
	if s.Schema != Schema {
		return fmt.Errorf("scenario: schema: got %q, want %q", s.Schema, Schema)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name: required")
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario: nodes: at least one node required")
	}
	if err := s.normalizeNodes(); err != nil {
		return err
	}
	if err := s.validateLinks(); err != nil {
		return err
	}
	if err := s.validateRouters(); err != nil {
		return err
	}
	if err := s.normalizeWorkload(); err != nil {
		return err
	}
	return s.validateFault()
}

// normalizeNodes defaults node kind/tech, checks name uniqueness, and
// materializes the cube position permutation.
func (s *Spec) normalizeNodes() error {
	seen := make(map[string]bool, len(s.Nodes))
	withPos, cubes := 0, 0
	for i := range s.Nodes {
		n := &s.Nodes[i]
		switch {
		case n.Name == "":
			return fmt.Errorf("scenario: nodes[%d].name: required", i)
		case n.Name == HostName:
			return fmt.Errorf("scenario: nodes[%d].name: %q is reserved for the host port", i, HostName)
		case seen[n.Name]:
			return fmt.Errorf("scenario: nodes[%d].name: duplicate %q", i, n.Name)
		}
		seen[n.Name] = true
		switch n.Kind {
		case "":
			n.Kind = "cube"
		case "cube", "iface":
		default:
			return fmt.Errorf("scenario: nodes[%d].kind: %q is not \"cube\" or \"iface\"", i, n.Kind)
		}
		if n.Kind == "iface" {
			if n.Tech != "" {
				return fmt.Errorf("scenario: nodes[%d].tech: interface chips store nothing", i)
			}
			if n.Pos != nil {
				return fmt.Errorf("scenario: nodes[%d].pos: interface chips have no position", i)
			}
			continue
		}
		switch n.Tech {
		case "":
			n.Tech = "dram"
		case "dram", "nvm":
		default:
			return fmt.Errorf("scenario: nodes[%d].tech: %q is not \"dram\" or \"nvm\"", i, n.Tech)
		}
		cubes++
		if n.Pos != nil {
			withPos++
		}
	}
	if cubes == 0 {
		return fmt.Errorf("scenario: nodes: at least one cube required")
	}
	switch withPos {
	case 0:
		// Default: declaration order.
		pos := 0
		for i := range s.Nodes {
			if s.Nodes[i].Kind == "cube" {
				p := pos
				s.Nodes[i].Pos = &p
				pos++
			}
		}
	case cubes:
		used := make([]int, cubes) // position -> 1+node index, 0 = unused
		for i, n := range s.Nodes {
			if n.Kind != "cube" {
				continue
			}
			p := *n.Pos
			if p < 0 || p >= cubes {
				return fmt.Errorf("scenario: nodes[%d].pos: %d outside [0,%d)", i, p, cubes)
			}
			if used[p] != 0 {
				return fmt.Errorf("scenario: nodes[%d].pos: %d already used by nodes[%d]", i, p, used[p]-1)
			}
			used[p] = i + 1
		}
	default:
		return fmt.Errorf("scenario: nodes: pos set on %d of %d cubes; set it on all cubes or none", withPos, cubes)
	}
	return nil
}

// validateLinks resolves endpoints and checks the override ranges.
func (s *Spec) validateLinks() error {
	if len(s.Links) == 0 {
		return fmt.Errorf("scenario: links: at least one link required")
	}
	type pair struct{ a, b int }
	seen := make(map[pair]int, len(s.Links))
	hostLinks := 0
	for i, l := range s.Links {
		a, ok := s.idOf(l.A)
		if !ok {
			return fmt.Errorf("scenario: links[%d].a: unknown node %q", i, l.A)
		}
		b, ok := s.idOf(l.B)
		if !ok {
			return fmt.Errorf("scenario: links[%d].b: unknown node %q", i, l.B)
		}
		if a == b {
			return fmt.Errorf("scenario: links[%d]: self-loop on %q", i, l.A)
		}
		if a == 0 || b == 0 {
			hostLinks++
		}
		p := pair{a, b}
		if a > b {
			p = pair{b, a}
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("scenario: links[%d]: duplicates links[%d] (%s-%s)", i, prev, l.A, l.B)
		}
		seen[p] = i
		switch {
		case l.BandwidthBps != nil && *l.BandwidthBps <= 0:
			return fmt.Errorf("scenario: links[%d].bandwidth_bps: must be positive, got %d", i, *l.BandwidthBps)
		case l.SerDesPs != nil && *l.SerDesPs < 0:
			return fmt.Errorf("scenario: links[%d].serdes_ps: must be non-negative, got %d", i, *l.SerDesPs)
		case l.BufferPackets != nil && *l.BufferPackets <= 0:
			return fmt.Errorf("scenario: links[%d].buffer_packets: must be positive, got %d", i, *l.BufferPackets)
		case l.VCs != nil && (*l.VCs < 1 || *l.VCs > 2):
			return fmt.Errorf("scenario: links[%d].vcs: got %d, the router supports 1 or 2", i, *l.VCs)
		case l.MaxRetries != nil && *l.MaxRetries < 0:
			return fmt.Errorf("scenario: links[%d].max_retries: must be non-negative, got %d", i, *l.MaxRetries)
		}
	}
	if hostLinks != 1 {
		return fmt.Errorf("scenario: links: host must have exactly one link, got %d", hostLinks)
	}
	return nil
}

// validateRouters checks every override keys an existing node and the
// values are in range.
func (s *Spec) validateRouters() error {
	names := make([]string, 0, len(s.Routers))
	//lint:sorted keys collected then sorted so the first error is deterministic
	for name := range s.Routers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.Routers[name]
		if _, ok := s.idOf(name); !ok || name == HostName {
			return fmt.Errorf("scenario: routers.%s: unknown node", name)
		}
		if _, err := ParseArb(r.Arb); r.Arb != "" && err != nil {
			return fmt.Errorf("scenario: routers.%s.arb: %w", name, err)
		}
		if r.WriteDemotion != nil && *r.WriteDemotion < 1 {
			return fmt.Errorf("scenario: routers.%s.write_demotion: must be at least 1, got %d", name, *r.WriteDemotion)
		}
		if r.SwitchBandwidthBps != nil && *r.SwitchBandwidthBps <= 0 {
			return fmt.Errorf("scenario: routers.%s.switch_bandwidth_bps: must be positive, got %d", name, *r.SwitchBandwidthBps)
		}
	}
	return nil
}

// normalizeWorkload enforces the suite-xor-custom rule and defaults
// the custom name.
func (s *Spec) normalizeWorkload() error {
	w := s.Workload
	if w == nil {
		return nil
	}
	if w.Suite != "" {
		if *w != (Workload{Suite: w.Suite}) {
			return fmt.Errorf("scenario: workload: suite %q excludes every custom field", w.Suite)
		}
		if _, err := workload.ByName(w.Suite); err != nil {
			return fmt.Errorf("scenario: workload.suite: %w", err)
		}
		return nil
	}
	switch {
	case w.MeanGapPs <= 0:
		return fmt.Errorf("scenario: workload.mean_gap_ps: must be positive, got %d", w.MeanGapPs)
	case w.ReadFraction < 0 || w.ReadFraction > 1:
		return fmt.Errorf("scenario: workload.read_fraction: %v outside [0,1]", w.ReadFraction)
	case w.SeqProb < 0 || w.SeqProb > 1:
		return fmt.Errorf("scenario: workload.seq_prob: %v outside [0,1]", w.SeqProb)
	case w.HotFraction < 0 || w.HotFraction > 1:
		return fmt.Errorf("scenario: workload.hot_fraction: %v outside [0,1]", w.HotFraction)
	case w.HotRegion < 0 || w.HotRegion > 1:
		return fmt.Errorf("scenario: workload.hot_region: %v outside [0,1]", w.HotRegion)
	case w.RMWFraction < 0 || w.RMWFraction > 1:
		return fmt.Errorf("scenario: workload.rmw_fraction: %v outside [0,1]", w.RMWFraction)
	case w.BurstProb < 0 || w.BurstProb > 1:
		return fmt.Errorf("scenario: workload.burst_prob: %v outside [0,1]", w.BurstProb)
	case w.BurstWriteFrac < 0 || w.BurstWriteFrac > 1:
		return fmt.Errorf("scenario: workload.burst_write_frac: %v outside [0,1]", w.BurstWriteFrac)
	case w.BurstLen < 0:
		return fmt.Errorf("scenario: workload.burst_len: must be non-negative, got %d", w.BurstLen)
	case w.Window < 0:
		return fmt.Errorf("scenario: workload.window: must be non-negative, got %d", w.Window)
	}
	if w.Name == "" {
		w.Name = "custom"
	}
	return nil
}

// validateFault resolves the fault plan's node names and link indices.
func (s *Spec) validateFault() error {
	f := s.Fault
	if f == nil {
		return nil
	}
	if f.LinkBER < 0 || f.LinkBER > 1 {
		return fmt.Errorf("scenario: fault.link_ber: %v outside [0,1]", f.LinkBER)
	}
	if f.MaxRetries < 0 {
		return fmt.Errorf("scenario: fault.max_retries: must be non-negative, got %d", f.MaxRetries)
	}
	for _, d := range []struct {
		field string
		ps    int64
	}{
		{"retry_backoff_ps", f.RetryBackoffPs},
		{"retrain_window_ps", f.RetrainWindowPs},
	} {
		if d.ps < 0 {
			return fmt.Errorf("scenario: fault.%s: must be non-negative, got %d", d.field, d.ps)
		}
	}
	link := func(field string, evs []LinkEvent) error {
		for i, ev := range evs {
			if ev.Link < 0 || ev.Link >= len(s.Links) {
				return fmt.Errorf("scenario: fault.%s[%d].link: %d outside [0,%d)", field, i, ev.Link, len(s.Links))
			}
			if ev.AtPs < 0 {
				return fmt.Errorf("scenario: fault.%s[%d].at_ps: must be non-negative, got %d", field, i, ev.AtPs)
			}
		}
		return nil
	}
	if err := link("kill_links", f.KillLinks); err != nil {
		return err
	}
	if err := link("repair_links", f.RepairLinks); err != nil {
		return err
	}
	if err := link("lane_fails", f.LaneFails); err != nil {
		return err
	}
	for i, ev := range f.LaneFlaps {
		if ev.Link < 0 || ev.Link >= len(s.Links) {
			return fmt.Errorf("scenario: fault.lane_flaps[%d].link: %d outside [0,%d)", i, ev.Link, len(s.Links))
		}
		if ev.DownPs < 0 || ev.UpPs <= ev.DownPs {
			return fmt.Errorf("scenario: fault.lane_flaps[%d]: window [%d,%d) is not a forward interval", i, ev.DownPs, ev.UpPs)
		}
	}
	cube := func(field string, evs []CubeEvent) error {
		for i, ev := range evs {
			id, ok := s.idOf(ev.Cube)
			if !ok || id == 0 {
				return fmt.Errorf("scenario: fault.%s[%d].cube: unknown node %q", field, i, ev.Cube)
			}
			if s.Nodes[id-1].Kind != "cube" {
				return fmt.Errorf("scenario: fault.%s[%d].cube: %q is an interface chip", field, i, ev.Cube)
			}
			if ev.AtPs < 0 {
				return fmt.Errorf("scenario: fault.%s[%d].at_ps: must be non-negative, got %d", field, i, ev.AtPs)
			}
		}
		return nil
	}
	if err := cube("kill_cubes", f.KillCubes); err != nil {
		return err
	}
	return cube("repair_cubes", f.RepairCubes)
}

// idOf resolves a node name to its graph NodeID: 0 for the host,
// index+1 for declared nodes.
func (s *Spec) idOf(name string) (int, bool) {
	if name == HostName {
		return 0, true
	}
	for i, n := range s.Nodes {
		if n.Name == name {
			return i + 1, true
		}
	}
	return 0, false
}

// NodeID resolves a node name to its graph node ID ("host" is 0).
func (s *Spec) NodeID(name string) (int, bool) { return s.idOf(name) }

// RouterOf returns the router override for the graph node with the
// given ID, if any.
func (s *Spec) RouterOf(id int) (Router, bool) {
	if id < 1 || id > len(s.Nodes) {
		return Router{}, false
	}
	r, ok := s.Routers[s.Nodes[id-1].Name]
	return r, ok
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Nodes = append([]Node(nil), s.Nodes...)
	for i, n := range c.Nodes {
		if n.Pos != nil {
			p := *n.Pos
			c.Nodes[i].Pos = &p
		}
	}
	c.Links = append([]Link(nil), s.Links...)
	for i := range c.Links {
		l := &c.Links[i]
		l.BandwidthBps = cloneOf(l.BandwidthBps)
		l.SerDesPs = cloneOf(l.SerDesPs)
		l.BufferPackets = cloneOf(l.BufferPackets)
		l.VCs = cloneOf(l.VCs)
		l.MaxRetries = cloneOf(l.MaxRetries)
	}
	if s.Routers != nil {
		c.Routers = make(map[string]Router, len(s.Routers))
		//lint:sorted map-to-map copy; the result is order-independent
		for name, r := range s.Routers {
			r.WriteDemotion = cloneOf(r.WriteDemotion)
			r.SwitchBandwidthBps = cloneOf(r.SwitchBandwidthBps)
			c.Routers[name] = r
		}
	}
	if s.Workload != nil {
		w := *s.Workload
		c.Workload = &w
	}
	if s.Fault != nil {
		f := *s.Fault
		f.KillLinks = append([]LinkEvent(nil), s.Fault.KillLinks...)
		f.RepairLinks = append([]LinkEvent(nil), s.Fault.RepairLinks...)
		f.LaneFails = append([]LinkEvent(nil), s.Fault.LaneFails...)
		f.LaneFlaps = append([]FlapEvent(nil), s.Fault.LaneFlaps...)
		f.KillCubes = append([]CubeEvent(nil), s.Fault.KillCubes...)
		f.RepairCubes = append([]CubeEvent(nil), s.Fault.RepairCubes...)
		c.Fault = &f
	}
	return &c
}

// cloneOf copies an optional override value.
func cloneOf[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// Canonical returns the canonical re-encoding of the spec: defaults
// materialized, object keys sorted (encoding/json sorts map keys),
// compact. Two documents that mean the same run canonicalize to the
// same bytes, so the campaign fingerprint folds this instead of the
// raw file. Canonicalization is best-effort on invalid specs — it
// never fails, so fingerprints exist even for runs that will error.
func (s *Spec) Canonical() []byte {
	c := s.Clone()
	_ = c.Normalize()
	b, err := json.Marshal(c)
	if err != nil {
		return []byte("!uncanonical: " + err.Error())
	}
	return b
}

// ParseArb maps a scenario arbitration label to the arb.Kind.
func ParseArb(label string) (arb.Kind, error) {
	switch label {
	case "rr":
		return arb.RoundRobin, nil
	case "distance":
		return arb.Distance, nil
	case "augmented":
		return arb.DistanceAugmented, nil
	default:
		return 0, fmt.Errorf("unknown arbitration %q (rr | distance | augmented)", label)
	}
}

// WorkloadSpec converts the embedded workload block to the generator
// spec; ok is false when the scenario embeds none.
func (s *Spec) WorkloadSpec() (spec workload.Spec, ok bool, err error) {
	w := s.Workload
	if w == nil {
		return workload.Spec{}, false, nil
	}
	if w.Suite != "" {
		spec, err := workload.ByName(w.Suite)
		if err != nil {
			return workload.Spec{}, false, fmt.Errorf("scenario: workload.suite: %w", err)
		}
		return spec, true, nil
	}
	return workload.Spec{
		Name:           w.Name,
		ReadFraction:   w.ReadFraction,
		MeanGap:        sim.Time(w.MeanGapPs) * sim.Picosecond,
		SeqProb:        w.SeqProb,
		SeqStride:      w.SeqStride,
		HotFraction:    w.HotFraction,
		HotRegion:      w.HotRegion,
		RMWFraction:    w.RMWFraction,
		BurstProb:      w.BurstProb,
		BurstLen:       w.BurstLen,
		BurstWriteFrac: w.BurstWriteFrac,
		Window:         w.Window,
	}, true, nil
}

// The fault-block conversion to a fault.Config lives in internal/core
// (ScenarioFault): the fault package imports topology for chaos-plan
// generation, and topology imports this package, so scenario cannot
// import fault without a cycle.
