package scenario

import _ "embed"

// The checked-in schema is the single source of truth for the format:
// Decode validates documents against it, mnschema -scenario exposes it
// on the command line, and cmd/mndocs renders the SCENARIOS.md field
// reference from its annotations (description / default /
// x-constraint / x-values), so the documentation cannot drift from
// what the loader accepts.

//go:embed scenario.schema.json
var schemaJSON []byte

// SchemaJSON returns the embedded scenario-format JSON schema.
func SchemaJSON() []byte { return schemaJSON }
