package config

import (
	"strings"
	"testing"
	"testing/quick"

	"memnet/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	sys := Default()
	if err := sys.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTable2Values(t *testing.T) {
	// Pin the paper's Table 2 numbers so config drift is caught.
	sys := Default()
	if sys.Ports != 8 {
		t.Error("ports != 8")
	}
	if sys.TotalCapacity != 2<<40 {
		t.Error("total != 2TB")
	}
	if sys.DRAMCubeCapacity != 16<<30 || sys.NVMCubeCapacity != 64<<30 {
		t.Error("stack capacities wrong")
	}
	if sys.BanksPerCube != 256 {
		t.Error("banks != 256")
	}
	if sys.DRAMTiming.TRCD != 12*sim.Nanosecond || sys.DRAMTiming.TCL != 6*sim.Nanosecond ||
		sys.DRAMTiming.TRP != 14*sim.Nanosecond || sys.DRAMTiming.TRAS != 33*sim.Nanosecond {
		t.Error("DRAM timings differ from Table 2")
	}
	if sys.NVMTiming.TRCD != 40*sim.Nanosecond || sys.NVMTiming.TCL != 10*sim.Nanosecond ||
		sys.NVMTiming.TWR != 320*sim.Nanosecond {
		t.Error("NVM timings differ from Table 2")
	}
	if sys.Energy.NetworkPJPerBitHop != 5 || sys.Energy.DRAMReadPJPerBit != 12 ||
		sys.Energy.NVMWritePJPerBit != 120 {
		t.Error("energy constants differ from Section 5")
	}
	if sys.LinkLanes != 16 || sys.LaneRateBps != 15e9 {
		t.Error("link parameters differ from Section 5")
	}
	if sys.SerDesLatency != 2*sim.Nanosecond || sys.WrongQuadrantPenalty != sim.Nanosecond {
		t.Error("per-hop latencies differ from Section 5")
	}
	if sys.InterleaveBytes != 256 {
		t.Error("interleave != 256B")
	}
}

func TestCubesPerPort(t *testing.T) {
	cases := []struct {
		frac      float64
		dram, nvm int
	}{
		{1.0, 16, 0},
		{0.5, 8, 2},
		{0.0, 0, 4},
		{0.25, 4, 3},
		{0.75, 12, 1},
	}
	for _, c := range cases {
		sys := Default()
		sys.DRAMFraction = c.frac
		d, n, err := sys.CubesPerPort()
		if err != nil {
			t.Fatalf("frac %v: %v", c.frac, err)
		}
		if d != c.dram || n != c.nvm {
			t.Errorf("frac %v: got %d DRAM + %d NVM, want %d + %d",
				c.frac, d, n, c.dram, c.nvm)
		}
		// Capacity conservation.
		got := uint64(d)*sys.DRAMCubeCapacity + uint64(n)*sys.NVMCubeCapacity
		if got != sys.PortCapacity() {
			t.Errorf("frac %v: capacity %d != port %d", c.frac, got, sys.PortCapacity())
		}
	}
}

func TestCubesPerPortRejectsFractional(t *testing.T) {
	sys := Default()
	sys.DRAMFraction = 0.37 // not a whole number of cubes
	if _, _, err := sys.CubesPerPort(); err == nil {
		t.Fatal("expected error for non-integral cube split")
	}
}

func TestValidateErrors(t *testing.T) {
	break1 := func(f func(*System)) error {
		sys := Default()
		f(&sys)
		return sys.Validate()
	}
	cases := []struct {
		name string
		f    func(*System)
	}{
		{"ports", func(s *System) { s.Ports = 0 }},
		{"capacity", func(s *System) { s.TotalCapacity = 0 }},
		{"cube cap", func(s *System) { s.DRAMCubeCapacity = 0 }},
		{"fraction", func(s *System) { s.DRAMFraction = 1.5 }},
		{"banks", func(s *System) { s.BanksPerCube = 0 }},
		{"quadrants", func(s *System) { s.Quadrants = 0 }},
		{"banks%quad", func(s *System) { s.BanksPerCube = 255 }},
		{"link bw", func(s *System) { s.LaneRateBps = 0 }},
		{"buffers", func(s *System) { s.LinkBufferPackets = 0 }},
		{"interleave pow2", func(s *System) { s.InterleaveBytes = 257 }},
		{"window", func(s *System) { s.MaxOutstanding = 0 }},
		{"cap%ports", func(s *System) { s.Ports = 7 }},
	}
	for _, c := range cases {
		if err := break1(c.f); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	sys := Default()
	if sys.PortCapacity() != 256<<30 {
		t.Fatalf("port capacity = %d", sys.PortCapacity())
	}
	if sys.LinkBandwidthBps() != 240e9 {
		t.Fatalf("link bw = %d", sys.LinkBandwidthBps())
	}
	if sys.BanksPerQuadrant() != 64 {
		t.Fatalf("banks/quadrant = %d", sys.BanksPerQuadrant())
	}
	if sys.Timing(DRAM).TRCD != sys.DRAMTiming.TRCD || sys.Timing(NVM).TWR != sys.NVMTiming.TWR {
		t.Fatal("Timing dispatch wrong")
	}
}

func TestRatioLabel(t *testing.T) {
	sys := Default()
	if sys.RatioLabel() != "100%" {
		t.Errorf("got %q", sys.RatioLabel())
	}
	sys.DRAMFraction = 0.5
	sys.Placement = NVMFirst
	if sys.RatioLabel() != "50% (NVM-F)" {
		t.Errorf("got %q", sys.RatioLabel())
	}
	sys.DRAMFraction = 0
	if sys.RatioLabel() != "0%" {
		t.Errorf("got %q", sys.RatioLabel())
	}
}

func TestStringers(t *testing.T) {
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Fatal("MemTech strings")
	}
	if !strings.Contains(NVMLast.String(), "L") || !strings.Contains(NVMFirst.String(), "F") {
		t.Fatal("Placement strings")
	}
}

// Property: any quarter-step DRAM fraction (the granularity at which
// both cube types split integrally: one NVM cube is a quarter of a
// port's capacity) yields a valid split that exactly conserves capacity.
func TestCubeSplitConservation(t *testing.T) {
	f := func(step uint8) bool {
		frac := float64(step%5) / 4 // 0, 1/4, ..., 1
		sys := Default()
		sys.DRAMFraction = frac
		d, n, err := sys.CubesPerPort()
		if err != nil {
			return false
		}
		return uint64(d)*sys.DRAMCubeCapacity+uint64(n)*sys.NVMCubeCapacity == sys.PortCapacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
