// Package config holds the evaluated-system parameters of the paper
// (Table 2) plus the derived quantities the experiments need: cube
// counts for a given DRAM:NVM capacity ratio, per-port capacities, and
// link/energy constants.
package config

import (
	"fmt"

	"memnet/internal/sim"
)

// MemTech identifies the memory technology of a cube.
type MemTech uint8

const (
	// DRAM is the baseline 16GB HBM-like stacked DRAM cube.
	DRAM MemTech = iota
	// NVM is the PCM-based cube with 4x the capacity of a DRAM cube.
	NVM
)

// String implements fmt.Stringer.
func (t MemTech) String() string {
	if t == NVM {
		return "NVM"
	}
	return "DRAM"
}

// Placement controls where NVM cubes sit in a mixed network, per the
// paper's -F (first: near the host) / -L (last: far from the host)
// suffixes.
type Placement uint8

const (
	// NVMLast places NVM cubes farthest from the processor (suffix -L).
	NVMLast Placement = iota
	// NVMFirst places NVM cubes closest to the processor (suffix -F).
	NVMFirst
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == NVMFirst {
		return "NVM-F"
	}
	return "NVM-L"
}

// MemTiming captures the array timing parameters of one technology
// (Table 2 "DRAM Timings" / "NVM Timings" rows).
type MemTiming struct {
	TRCD sim.Time // activate -> column command
	TCL  sim.Time // column command -> data
	TRP  sim.Time // precharge
	TRAS sim.Time // activate -> precharge minimum
	TWR  sim.Time // write recovery / NVM cell write occupancy
	// Burst is the data transfer time occupying the bank's data path for
	// one 64B access.
	Burst sim.Time
	// RefInterval and RefDuration model per-bank refresh; zero interval
	// disables refresh (NVM needs none).
	RefInterval sim.Time
	RefDuration sim.Time
}

// Energy captures the pJ/bit accounting constants of Section 5.
type Energy struct {
	NetworkPJPerBitHop float64 // 5 pJ/bit/hop
	DRAMReadPJPerBit   float64 // 12 pJ/bit
	DRAMWritePJPerBit  float64 // 12 pJ/bit
	NVMReadPJPerBit    float64 // 12 pJ/bit
	NVMWritePJPerBit   float64 // 120 pJ/bit
}

// System is the full simulated-system configuration. The zero value is
// not useful; start from Default and override.
type System struct {
	// Ports is the number of host memory ports, each with a disjoint MN.
	Ports int
	// TotalCapacity is the whole-system memory capacity in bytes.
	TotalCapacity uint64
	// DRAMCubeCapacity and NVMCubeCapacity are per-cube capacities.
	DRAMCubeCapacity uint64
	NVMCubeCapacity  uint64
	// DRAMFraction is the fraction of total capacity provided by DRAM
	// (1.0 = all DRAM, 0.0 = all NVM). The paper labels configurations by
	// this percentage.
	DRAMFraction float64
	// Placement positions the NVM cubes when 0 < DRAMFraction < 1.
	Placement Placement

	// BanksPerCube is the number of independent banks per memory cube
	// (Table 2: 256), distributed evenly across the four quadrants.
	BanksPerCube int
	// Quadrants per cube (HMC-like).
	Quadrants int
	// RowBytes is the row-buffer size per bank; with the per-port 256B
	// interleave this sets the achievable row-hit locality.
	RowBytes uint64

	// LinkLanes and LaneRate give per-direction link bandwidth:
	// 16 lanes x 15 Gbps.
	LinkLanes   int
	LaneRateBps int64
	// SerDesLatency is the fixed serialize/descramble cost per link
	// traversal (2ns in the paper).
	SerDesLatency sim.Time
	// WrongQuadrantPenalty models intra-cube routing to a non-local
	// quadrant (1ns).
	WrongQuadrantPenalty sim.Time
	// LinkBufferPackets is the per-VC input buffer depth at each link
	// endpoint, in packets; this is what credits count.
	LinkBufferPackets int

	// InterleaveBytes is the address-to-port interleaving granularity
	// (256B, chosen empirically in the paper).
	InterleaveBytes uint64

	// MaxOutstanding is the per-port limit of in-flight transactions,
	// modeling the GPU's memory-level parallelism window.
	MaxOutstanding int
	// HostLatency is the fixed processor-side portion of a memory
	// transaction (coalescing, cache hierarchy miss path, memory-port
	// crossing) added outside the network model. It occupies a window
	// slot but is excluded from the network latency breakdown.
	HostLatency sim.Time

	DRAMTiming MemTiming
	NVMTiming  MemTiming
	Energy     Energy
}

// Default returns the paper's Table 2 configuration: 2TB total across 8
// ports, 16GB DRAM cubes, 64GB NVM cubes, HBM-like timings, PCM-like NVM
// timings, and the Section 5 link/energy constants.
func Default() System {
	const (
		gb = 1 << 30
		tb = 1 << 40
	)
	return System{
		Ports:            8,
		TotalCapacity:    2 * tb,
		DRAMCubeCapacity: 16 * gb,
		NVMCubeCapacity:  64 * gb,
		DRAMFraction:     1.0,
		Placement:        NVMLast,

		BanksPerCube: 256,
		Quadrants:    4,
		RowBytes:     2048,

		LinkLanes:            16,
		LaneRateBps:          15e9,
		SerDesLatency:        2 * sim.Nanosecond,
		WrongQuadrantPenalty: 1 * sim.Nanosecond,
		LinkBufferPackets:    8,

		InterleaveBytes: 256,
		MaxOutstanding:  64,
		HostLatency:     80 * sim.Nanosecond,

		DRAMTiming: MemTiming{
			TRCD:        12 * sim.Nanosecond,
			TCL:         6 * sim.Nanosecond,
			TRP:         14 * sim.Nanosecond,
			TRAS:        33 * sim.Nanosecond,
			TWR:         15 * sim.Nanosecond,
			Burst:       3200 * sim.Picosecond, // 64B over the vault TSV bus
			RefInterval: 7800 * sim.Nanosecond,
			RefDuration: 160 * sim.Nanosecond,
		},
		NVMTiming: MemTiming{
			TRCD: 40 * sim.Nanosecond,
			TCL:  10 * sim.Nanosecond,
			TRP:  14 * sim.Nanosecond,
			TRAS: 50 * sim.Nanosecond,
			// PCM cell write occupancy dominates the write path.
			TWR:   320 * sim.Nanosecond,
			Burst: 3200 * sim.Picosecond,
			// No refresh for NVM.
		},
		Energy: Energy{
			NetworkPJPerBitHop: 5,
			DRAMReadPJPerBit:   12,
			DRAMWritePJPerBit:  12,
			NVMReadPJPerBit:    12,
			NVMWritePJPerBit:   120,
		},
	}
}

// Validate checks internal consistency and returns a descriptive error
// for the first violated constraint, including the paper's capacity
// equation (the per-port capacity must divide into whole cubes).
func (s *System) Validate() error {
	if err := s.ValidateBase(); err != nil {
		return err
	}
	if _, _, err := s.CubesPerPort(); err != nil {
		return err
	}
	return nil
}

// ValidateBase checks every constraint except the capacity equation.
// Scenario runs use it: their cube population comes from the declared
// graph, not from solving DRAMFraction against TotalCapacity, so any
// cube count is legal.
func (s *System) ValidateBase() error {
	switch {
	case s.Ports <= 0:
		return fmt.Errorf("config: Ports must be positive, got %d", s.Ports)
	case s.TotalCapacity == 0:
		return fmt.Errorf("config: TotalCapacity must be positive")
	case s.DRAMCubeCapacity == 0 || s.NVMCubeCapacity == 0:
		return fmt.Errorf("config: cube capacities must be positive")
	case s.DRAMFraction < 0 || s.DRAMFraction > 1:
		return fmt.Errorf("config: DRAMFraction %v outside [0,1]", s.DRAMFraction)
	case s.BanksPerCube <= 0:
		return fmt.Errorf("config: BanksPerCube must be positive")
	case s.Quadrants <= 0:
		return fmt.Errorf("config: Quadrants must be positive")
	case s.BanksPerCube%s.Quadrants != 0:
		return fmt.Errorf("config: BanksPerCube %d not divisible by Quadrants %d",
			s.BanksPerCube, s.Quadrants)
	case s.LinkLanes <= 0 || s.LaneRateBps <= 0:
		return fmt.Errorf("config: link bandwidth must be positive")
	case s.LinkBufferPackets <= 0:
		return fmt.Errorf("config: LinkBufferPackets must be positive")
	case s.InterleaveBytes == 0 || s.InterleaveBytes&(s.InterleaveBytes-1) != 0:
		return fmt.Errorf("config: InterleaveBytes must be a power of two, got %d", s.InterleaveBytes)
	case s.MaxOutstanding <= 0:
		return fmt.Errorf("config: MaxOutstanding must be positive")
	case s.TotalCapacity%uint64(s.Ports) != 0:
		return fmt.Errorf("config: TotalCapacity %d not divisible by Ports %d",
			s.TotalCapacity, s.Ports)
	}
	return nil
}

// PortCapacity returns the capacity served by one memory port.
func (s *System) PortCapacity() uint64 { return s.TotalCapacity / uint64(s.Ports) }

// LinkBandwidthBps returns the per-direction link bandwidth in bits/s.
func (s *System) LinkBandwidthBps() int64 {
	return int64(s.LinkLanes) * s.LaneRateBps
}

// CubesPerPort solves the paper's capacity equation: given the per-port
// capacity and the DRAM fraction, it returns the number of DRAM and NVM
// cubes each port's MN contains. DRAMFraction f means f of the capacity
// comes from DRAM cubes and (1-f) from NVM cubes; both splits must be
// whole numbers of cubes (e.g. 256GB/port at 50% -> 8 DRAM + 2 NVM).
func (s *System) CubesPerPort() (dram, nvm int, err error) {
	cap := s.PortCapacity()
	dramBytes := uint64(float64(cap)*s.DRAMFraction + 0.5)
	nvmBytes := cap - dramBytes
	if dramBytes%s.DRAMCubeCapacity != 0 {
		return 0, 0, fmt.Errorf(
			"config: DRAM capacity %d per port is not a whole number of %d-byte cubes",
			dramBytes, s.DRAMCubeCapacity)
	}
	if nvmBytes%s.NVMCubeCapacity != 0 {
		return 0, 0, fmt.Errorf(
			"config: NVM capacity %d per port is not a whole number of %d-byte cubes",
			nvmBytes, s.NVMCubeCapacity)
	}
	dram = int(dramBytes / s.DRAMCubeCapacity)
	nvm = int(nvmBytes / s.NVMCubeCapacity)
	if dram+nvm == 0 {
		return 0, 0, fmt.Errorf("config: zero cubes per port")
	}
	return dram, nvm, nil
}

// Timing returns the timing set for the given technology.
func (s *System) Timing(t MemTech) MemTiming {
	if t == NVM {
		return s.NVMTiming
	}
	return s.DRAMTiming
}

// BanksPerQuadrant returns the bank count in each quadrant.
func (s *System) BanksPerQuadrant() int { return s.BanksPerCube / s.Quadrants }

// RatioLabel renders the configuration's DRAM percentage the way the
// paper labels it, e.g. "100%", "50% (NVM-L)", "0%".
func (s *System) RatioLabel() string {
	pct := int(s.DRAMFraction*100 + 0.5)
	if pct == 100 || pct == 0 {
		return fmt.Sprintf("%d%%", pct)
	}
	return fmt.Sprintf("%d%% (%s)", pct, s.Placement)
}
