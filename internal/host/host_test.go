package host

import (
	"testing"

	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// scripted is a deterministic generator for tests.
type scripted struct {
	txs []workload.Tx
	i   int
}

func (s *scripted) Next() workload.Tx {
	if s.i < len(s.txs) {
		tx := s.txs[s.i]
		s.i++
		return tx
	}
	// Tail: benign reads far apart.
	return workload.Tx{Addr: 1 << 30, Gap: sim.Microsecond}
}

// echoNet wires a port to a synthetic network that responds to every
// request after a fixed latency.
type echoNet struct {
	eng     *sim.Engine
	port    *Port
	col     *stats.Collector
	out     *link.Direction
	back    *link.Direction
	latency sim.Time
	// received snapshots each completed packet at response delivery,
	// just before Receive recycles it into the port's pool.
	received []packet.Packet
}

func newEchoNet(t *testing.T, cfg Config, gen workload.Generator, latency sim.Time) *echoNet {
	t.Helper()
	eng := sim.NewEngine()
	col := stats.NewCollector(false)
	n := &echoNet{eng: eng, col: col, latency: latency}
	wire := Wiring{
		DestOf: func(addr uint64) packet.NodeID { return 1 },
		DistOf: func(dst packet.NodeID, class topology.PathClass) int {
			if class == topology.PathLong {
				return 10
			}
			return 2
		},
	}
	n.port = New(eng, cfg, gen, wire, col)
	lcfg := link.Config{BandwidthBps: 240e9, SerDesLatency: sim.Nanosecond,
		QueueDepth: 8, Credits: 8, CountHop: true}
	n.out = link.New(eng, lcfg, nil)
	n.back = link.New(eng, lcfg, nil)
	n.port.Attach(n.out)
	n.out.SetDeliver(func(p *packet.Packet) {
		n.out.ReturnCredit(packet.VCOf(p.Kind))
		// Respond after the fixed service latency.
		eng.Schedule(n.latency, func() {
			p.ArrivedMem = eng.Now() - n.latency/2
			p.DepartedMem = eng.Now()
			p.MakeResponse(2)
			if n.back.CanAccept(packet.VCResponse) {
				n.back.Send(p)
			} else {
				eng.Schedule(10*sim.Nanosecond, func() { n.back.Send(p) })
			}
		})
	})
	n.back.SetDeliver(func(p *packet.Packet) {
		// Receive consumes (and recycles) the packet: snapshot it and
		// read the VC first.
		n.received = append(n.received, *p)
		vc := packet.VCOf(p.Kind)
		n.port.Receive(p)
		n.back.ReturnCredit(vc)
	})
	eng.Schedule(0, n.port.Kick)
	return n
}

func baseCfg(target uint64) Config {
	return Config{MaxOutstanding: 4, Target: target}
}

func TestCompletesTarget(t *testing.T) {
	gen := &scripted{}
	for i := 0; i < 10; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 64, Gap: sim.Nanosecond})
	}
	n := newEchoNet(t, baseCfg(10), gen, 20*sim.Nanosecond)
	n.eng.Run()
	if !n.port.Done() {
		t.Fatal("port not done")
	}
	if n.col.Completed() != 10 {
		t.Fatalf("completed %d", n.col.Completed())
	}
	if n.port.Inflight() != 0 {
		t.Fatalf("inflight %d at end", n.port.Inflight())
	}
}

func TestWindowEnforced(t *testing.T) {
	gen := &scripted{}
	for i := 0; i < 20; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 64, Gap: 0})
	}
	cfg := baseCfg(20)
	cfg.MaxOutstanding = 3
	n := newEchoNet(t, cfg, gen, 100*sim.Nanosecond)
	maxSeen := 0
	// Sample inflight as responses arrive.
	done := false
	for !done {
		if !n.eng.Step() {
			done = true
		}
		if f := n.port.Inflight(); f > maxSeen {
			maxSeen = f
		}
	}
	if maxSeen > 3 {
		t.Fatalf("window exceeded: %d", maxSeen)
	}
	if n.col.Completed() != 20 {
		t.Fatalf("completed %d", n.col.Completed())
	}
}

func TestArrivalPacing(t *testing.T) {
	gen := &scripted{txs: []workload.Tx{
		{Addr: 0, Gap: 100 * sim.Nanosecond},
		{Addr: 64, Gap: 100 * sim.Nanosecond},
	}}
	n := newEchoNet(t, baseCfg(2), gen, sim.Nanosecond)
	n.eng.Run()
	if len(n.received) != 2 {
		t.Fatal("both requests should arrive")
	}
	if n.received[1].Injected-n.received[0].Injected < 100*sim.Nanosecond {
		t.Fatal("gap not respected")
	}
}

func TestReadAfterWriteStalls(t *testing.T) {
	gen := &scripted{txs: []workload.Tx{
		{Addr: 0x100, Write: true, Gap: 0},
		{Addr: 0x100, Write: false, Gap: 0}, // dependent read
		{Addr: 0x900, Write: false, Gap: 0}, // independent read
	}}
	n := newEchoNet(t, baseCfg(3), gen, 50*sim.Nanosecond)
	n.eng.Run()
	if len(n.received) != 3 {
		t.Fatalf("received %d", len(n.received))
	}
	// The dependent read must be injected after the write's ack returned,
	// i.e. at least the write's full round trip after the write.
	var wInj, depInj, indInj sim.Time
	for _, p := range n.received {
		switch {
		case p.Addr == 0x100 && p.Kind == packet.WriteAck: // converted in place
			wInj = p.Injected
		case p.Addr == 0x100:
			depInj = p.Injected
		case p.Addr == 0x900:
			indInj = p.Injected
		}
	}
	if depInj < wInj+50*sim.Nanosecond {
		t.Fatalf("dependent read injected at %v, write at %v", depInj, wInj)
	}
	// The independent read must NOT have waited for the write.
	if indInj >= wInj+50*sim.Nanosecond {
		t.Fatalf("independent read stalled: %v", indInj)
	}
}

func TestWriteShortcutHysteresis(t *testing.T) {
	gen := &scripted{}
	// 100 writes then 200 reads.
	for i := 0; i < 100; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 4096, Write: true, Gap: 0})
	}
	for i := 0; i < 200; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: 1<<20 + uint64(i)*4096, Gap: 0})
	}
	cfg := Config{
		MaxOutstanding: 8, Target: 300,
		ShortcutEnable: true, ShortcutHi: 0.65, ShortcutLo: 0.45, ShortcutWindow: 32,
	}
	n := newEchoNet(t, cfg, gen, 5*sim.Nanosecond)
	engaged, released := false, false
	for n.eng.Step() {
		if n.port.WriteShortcut() {
			engaged = true
		}
		if engaged && !n.port.WriteShortcut() {
			released = true
		}
	}
	if !engaged {
		t.Fatal("hysteresis never engaged during the write burst")
	}
	if !released {
		t.Fatal("hysteresis never released after reads resumed")
	}
	// Writes injected while engaged must be stamped short-path (class 0
	// distance = 2, not the long-path 10).
	shortWrites := 0
	for _, p := range n.received {
		if p.Kind == packet.WriteAck && p.Distance == 2 {
			// Distance was rewritten by MakeResponse; check class instead.
		}
	}
	_ = shortWrites
}

func TestClassStamping(t *testing.T) {
	gen := &scripted{txs: []workload.Tx{
		{Addr: 0, Write: true, Gap: 0},
		{Addr: 64, Write: false, Gap: 0},
	}}
	n := newEchoNet(t, baseCfg(2), gen, 5*sim.Nanosecond)
	// Capture classes at arrival (before MakeResponse clears them).
	var classes []uint8
	var kinds []packet.Kind
	orig := n.out
	orig.SetDeliver(func(p *packet.Packet) {
		classes = append(classes, p.Class)
		kinds = append(kinds, p.Kind)
		orig.ReturnCredit(packet.VCOf(p.Kind))
		p.ArrivedMem = n.eng.Now()
		p.DepartedMem = n.eng.Now()
		p.MakeResponse(2)
		n.back.Send(p)
	})
	n.eng.Run()
	for i, k := range kinds {
		wantClass := uint8(topology.PathShort)
		if k == packet.WriteReq {
			wantClass = uint8(topology.PathLong)
		}
		if classes[i] != wantClass {
			t.Fatalf("%v stamped class %d, want %d", k, classes[i], wantClass)
		}
	}
	// Writes get the long-path distance.
	for _, p := range n.received {
		_ = p
	}
}

func TestWavefrontRetirement(t *testing.T) {
	gen := &scripted{}
	for i := 0; i < 8; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 64, Gap: 0})
	}
	cfg := Config{MaxOutstanding: 4, Target: 8, WavefrontSize: 4}
	n := newEchoNet(t, cfg, gen, 30*sim.Nanosecond)
	n.eng.Run()
	if n.col.Completed() != 8 {
		t.Fatalf("completed %d", n.col.Completed())
	}
}

func TestWavefrontWritesRetireIndividually(t *testing.T) {
	// One read (which will never complete in time) plus writes: writes
	// must keep retiring even though the read's wavefront stays open.
	gen := &scripted{}
	gen.txs = append(gen.txs, workload.Tx{Addr: 0, Write: false, Gap: 0})
	for i := 1; i < 12; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 4096, Write: true, Gap: 0})
	}
	cfg := Config{MaxOutstanding: 3, Target: 12, WavefrontSize: 8}
	n := newEchoNet(t, cfg, gen, 10*sim.Nanosecond)
	n.eng.Run()
	if n.col.Completed() != 12 {
		t.Fatalf("completed %d; write retirement blocked by open wavefront",
			n.col.Completed())
	}
}

func TestHostLatencyDelaysRetirement(t *testing.T) {
	gen := &scripted{}
	for i := 0; i < 4; i++ {
		gen.txs = append(gen.txs, workload.Tx{Addr: uint64(i) * 64, Gap: 0})
	}
	fast := newEchoNet(t, Config{MaxOutstanding: 1, Target: 4}, gen, 10*sim.Nanosecond)
	fast.eng.Run()
	gen2 := &scripted{txs: gen.txs}
	slow := newEchoNet(t, Config{MaxOutstanding: 1, Target: 4, HostLatency: 100 * sim.Nanosecond},
		gen2, 10*sim.Nanosecond)
	slow.eng.Run()
	if slow.col.FinishTime() < fast.col.FinishTime()+250*sim.Nanosecond {
		t.Fatalf("host latency not serializing: fast=%v slow=%v",
			fast.col.FinishTime(), slow.col.FinishTime())
	}
}

func TestPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{MaxOutstanding: 0}, &scripted{}, Wiring{}, stats.NewCollector(false))
}

func TestMigrationHooks(t *testing.T) {
	gen := &scripted{txs: []workload.Tx{
		{Addr: 0x1000, Write: false, Gap: 0},
		{Addr: 0x2000, Write: true, Gap: 0},
	}}
	var observed []uint64
	cfg := baseCfg(2)
	cfg.Observe = func(a uint64) { observed = append(observed, a) }
	cfg.Translate = func(a uint64) uint64 { return a + 0x100000 }
	cfg.ReadyAt = func(a uint64) sim.Time {
		if a == 0x2000 {
			return 500 * sim.Nanosecond // second tx blacked out briefly
		}
		return 0
	}
	n := newEchoNet(t, cfg, gen, 5*sim.Nanosecond)
	n.eng.Run()
	if len(observed) != 2 || observed[0] != 0x1000 || observed[1] != 0x2000 {
		t.Fatalf("observed %v", observed)
	}
	// Packets carry translated physical addresses but logical coherence
	// keys.
	for _, p := range n.received {
		if p.Addr < 0x100000 {
			t.Fatalf("packet not translated: %#x", p.Addr)
		}
		if p.Logical >= 0x100000 {
			t.Fatalf("logical address clobbered: %#x", p.Logical)
		}
	}
	// The blacked-out transaction injected no earlier than its ReadyAt.
	var blocked *packet.Packet
	for i := range n.received {
		if n.received[i].Logical == 0x2000 {
			blocked = &n.received[i]
		}
	}
	if blocked == nil || blocked.Injected < 500*sim.Nanosecond {
		t.Fatalf("blackout not honored: %+v", blocked)
	}
}

func TestOnInjectHook(t *testing.T) {
	gen := &scripted{txs: []workload.Tx{{Addr: 0x40, Gap: 0}}}
	cfg := baseCfg(1)
	count := 0
	cfg.OnInject = func(pk *packet.Packet) {
		count++
		if pk.Kind != packet.ReadReq {
			t.Errorf("unexpected kind %v", pk.Kind)
		}
	}
	n := newEchoNet(t, cfg, gen, 5*sim.Nanosecond)
	n.eng.Run()
	if count != 1 {
		t.Fatalf("OnInject fired %d times", count)
	}
}
