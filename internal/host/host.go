// Package host models one APU memory port: it converts a workload's
// transaction stream into request packets, enforces the memory-level
// parallelism window, acts as the coherence ordering point (a read to an
// address with an outstanding write stalls until the write acknowledgment
// returns — the rule that makes the skip list's divergent read/write
// paths safe, §4.2), and implements the §5.3 write-burst hysteresis that
// temporarily re-admits writes to the short (skip) paths.
package host

import (
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Config parameterizes a port.
type Config struct {
	// MaxOutstanding is the inflight-transaction window.
	MaxOutstanding int
	// HostLatency is the processor-side per-transaction latency; it
	// holds the window slot (and, for writes, the coherence entry)
	// after the response returns, but is not part of network stats.
	HostLatency sim.Time
	// Target is the number of transactions to complete before Done.
	Target uint64

	// ShortcutEnable turns on write-path shortcutting under write bursts
	// (meaningful for the skip list; harmless elsewhere since other
	// topologies route both classes identically).
	ShortcutEnable bool
	// ShortcutHi / ShortcutLo are the engage/release write-fraction
	// watermarks of the hysteresis monitor.
	ShortcutHi, ShortcutLo float64
	// ShortcutWindow is the monitor's sliding window, in transactions.
	ShortcutWindow int

	// Observe, if set, is invoked once per injected transaction with
	// the logical address (the migration manager's profiling hook).
	Observe func(addr uint64)
	// ReadyAt, if set, reports when the block holding an address becomes
	// accessible; injection of transactions to blacked-out blocks
	// (mid-migration) waits.
	ReadyAt func(addr uint64) sim.Time
	// Translate, if set, maps a logical address to its current physical
	// home (the migration indirection table) at injection time.
	Translate func(addr uint64) uint64
	// OnInject, if set, observes every packet as it enters the network
	// (the tracing hook).
	OnInject func(pk *packet.Packet)

	// WavefrontSize groups read transactions GPU-style: a group's
	// window slots are released only when the whole group has
	// completed, modeling warps that stall on their slowest
	// outstanding load. This makes execution time sensitive to
	// latency tails — the quantity the paper's fairness
	// (distance-based arbitration) work improves. Writes retire
	// individually: stores are off the critical path (§4.2), which is
	// the property the skip list exploits. Zero or one retires
	// everything individually.
	WavefrontSize int
}

// Wiring carries the system-level lookup functions the port needs.
type Wiring struct {
	// DestOf maps an address to its destination cube.
	DestOf func(addr uint64) packet.NodeID
	// DistOf returns hop distance from the host to dst in a class.
	DistOf func(dst packet.NodeID, class topology.PathClass) int
}

// Port is one host memory port driving one memory network.
type Port struct {
	eng  *sim.Engine
	cfg  Config
	gen  workload.Generator
	wire Wiring

	out       *link.Direction
	collector *stats.Collector

	inflight int
	injected uint64
	nextID   uint64

	// wavefront completion tracking (reads only): wfLeft[wf] counts
	// outstanding members, wfSize[wf] injected members, wfOf maps a
	// packet ID to its group, and wfNext/wfFill assign arriving reads
	// to groups of WavefrontSize.
	wfLeft map[uint64]int
	wfSize map[uint64]int
	wfOf   map[uint64]uint64
	wfNext uint64
	wfFill int

	staged       workload.Tx
	hasStaged    bool
	stagedArrive sim.Time
	lastArrive   sim.Time

	// pool recycles retired transaction packets; with it, steady-state
	// injection performs no packet allocation.
	pool packet.Pool

	// Bound callbacks, built once so Kick/armTimer/retireSlots schedule
	// without per-call closure allocations.
	pumpFn   sim.Handler
	timerFn  sim.Handler
	retireFn sim.ArgHandler

	// spanHook, if set (SetSpanHook), observes every injection with the
	// time the transaction waited for a window slot, coherence release,
	// and injection credits — the span tracer's host.window source.
	spanHook func(pk *packet.Packet, wait sim.Time)

	// Coherence ordering point state.
	pendingWrites map[uint64]int
	parkedReads   map[uint64][]parked
	ready         []parked

	// Write-burst hysteresis monitor.
	recent   []bool
	recentAt int
	recentN  int
	writesIn int
	shortcut bool

	kickPending bool
	timerSet    bool
	parks       uint64

	// InjectWait accumulates time transactions spent waiting at the
	// outgoing memory port (window, credit, or coherence stalls) — the
	// queuing the paper observes backing up behind prioritized responses.
	InjectWait sim.Time
}

// parked is a transaction held at the port (coherence or ready queue).
type parked struct {
	tx     workload.Tx
	since  sim.Time
	arrive sim.Time
}

// New creates a port. gen supplies the workload; collector receives
// completions.
func New(eng *sim.Engine, cfg Config, gen workload.Generator, wire Wiring, collector *stats.Collector) *Port {
	if cfg.MaxOutstanding <= 0 {
		panic("host: non-positive window")
	}
	if cfg.ShortcutWindow <= 0 {
		cfg.ShortcutWindow = 64
	}
	p := &Port{
		eng:           eng,
		cfg:           cfg,
		gen:           gen,
		wire:          wire,
		collector:     collector,
		pendingWrites: make(map[uint64]int),
		parkedReads:   make(map[uint64][]parked),
		recent:        make([]bool, cfg.ShortcutWindow),
		wfLeft:        make(map[uint64]int),
		wfSize:        make(map[uint64]int),
		wfOf:          make(map[uint64]uint64),
	}
	p.pumpFn = func() {
		p.kickPending = false
		p.pump()
	}
	p.timerFn = func() {
		p.timerSet = false
		p.pump()
	}
	p.retireFn = func(arg any) {
		p.inflight -= arg.(int)
		p.Kick()
	}
	return p
}

// Attach wires the port's outgoing direction (toward the root cube) and
// registers for its space callbacks.
func (p *Port) Attach(out *link.Direction) {
	p.out = out
	out.SetOnSpace(func(packet.VC) { p.Kick() })
}

// SetSpanHook wires the span tracer's injection observer: fn sees every
// packet right after its header is built, with the window/coherence/
// credit wait that preceded injection. Call before the run starts; a
// nil fn disables the hook.
func (p *Port) SetSpanHook(fn func(pk *packet.Packet, wait sim.Time)) { p.spanHook = fn }

// Receive is the arrival callback for the root-cube-to-host direction;
// the host consumes responses immediately (its receive buffering is
// ample), so the caller should return the link credit right after.
// Network statistics are recorded at arrival; the window slot and any
// coherence entry are released only after the processor-side latency.
//
// Receive takes ownership of pk and returns it to the port's packet
// pool: the caller must read any header fields it needs (e.g. the VC for
// the credit return) before calling.
func (p *Port) Receive(pk *packet.Packet) {
	pk.Completed = p.eng.Now()
	p.collector.Complete(pk)
	kind, id, logical := pk.Kind, pk.ID, pk.Logical
	// The transaction is retired: every consumer below works from the
	// copied header fields, so the packet can recycle immediately.
	p.pool.Put(pk)
	// Coherence state releases as soon as the ack is visible at the
	// ordering point, independent of wavefront retirement. State is
	// keyed by the logical address (migration may have moved the data).
	if kind == packet.WriteAck {
		p.releaseWrite(logical &^ 63)
	}
	if p.cfg.WavefrontSize > 1 {
		if kind == packet.WriteAck {
			// Stores retire individually: they never gate a wavefront.
			p.retireSlots(1)
			return
		}
		wf := p.wfOf[id]
		delete(p.wfOf, id)
		p.wfLeft[wf]--
		if p.wfLeft[wf] > 0 {
			p.Kick() // coherence release may have unblocked reads
			return
		}
		size := p.wfSize[wf]
		delete(p.wfLeft, wf)
		delete(p.wfSize, wf)
		p.retireSlots(size)
		return
	}
	p.retireSlots(1)
}

// retireSlots frees n window slots after the processor-side latency.
func (p *Port) retireSlots(n int) {
	if p.cfg.HostLatency > 0 {
		// n is a small int, so boxing it into the event argument is
		// allocation-free (runtime small-integer interning).
		p.eng.ScheduleArg(p.cfg.HostLatency, p.retireFn, n)
		return
	}
	p.inflight -= n
	p.Kick()
}

// releaseWrite clears one outstanding write and unparks dependent reads.
func (p *Port) releaseWrite(blk uint64) {
	if n := p.pendingWrites[blk] - 1; n > 0 {
		p.pendingWrites[blk] = n
	} else {
		delete(p.pendingWrites, blk)
		if waiting := p.parkedReads[blk]; len(waiting) > 0 {
			p.ready = append(p.ready, waiting...)
			delete(p.parkedReads, blk)
		}
	}
}

// Done reports whether the port completed its target trace.
func (p *Port) Done() bool { return p.collector.Completed() >= p.cfg.Target }

// WriteShortcut reports whether the hysteresis monitor currently allows
// writes on short paths; the system's route function consults this.
func (p *Port) WriteShortcut() bool { return p.cfg.ShortcutEnable && p.shortcut }

// Inflight reports the current window occupancy (for tests).
func (p *Port) Inflight() int { return p.inflight }

// Injected reports how many transactions have entered the network so
// far (telemetry gauge).
func (p *Port) Injected() uint64 { return p.injected }

// LastArrival reports the arrival-process timestamp of the most recently
// staged transaction (diagnostics).
func (p *Port) LastArrival() sim.Time { return p.lastArrive }

// Parks reports how many reads were parked at the coherence point.
func (p *Port) Parks() uint64 { return p.parks }

// Kick schedules an injection attempt at the current instant.
func (p *Port) Kick() {
	if p.kickPending {
		return
	}
	p.kickPending = true
	p.eng.Schedule(0, p.pumpFn)
}

// pump injects as many transactions as the window, link credits, arrival
// process, and coherence rules allow.
func (p *Port) pump() {
	for {
		if p.injected >= p.cfg.Target {
			return
		}
		if p.inflight >= p.cfg.MaxOutstanding {
			return
		}
		// Coherence-released reads first: they are the oldest work.
		if len(p.ready) > 0 {
			if !p.out.CanAccept(packet.VCRequest) {
				return
			}
			pr := p.ready[0]
			if p.cfg.ReadyAt != nil {
				if at := p.cfg.ReadyAt(pr.tx.Addr); at > p.eng.Now() {
					p.armTimer(at)
					return
				}
			}
			copy(p.ready, p.ready[1:])
			p.ready = p.ready[:len(p.ready)-1]
			p.inject(pr.tx, pr.arrive)
			continue
		}
		// Stage the next generated transaction (held by value: staging
		// must not allocate per transaction).
		if !p.hasStaged {
			p.staged = p.gen.Next()
			p.hasStaged = true
			p.lastArrive += p.staged.Gap
			p.stagedArrive = p.lastArrive
		}
		now := p.eng.Now()
		if p.stagedArrive > now {
			p.armTimer(p.stagedArrive)
			return
		}
		tx := p.staged
		if p.cfg.ReadyAt != nil {
			if at := p.cfg.ReadyAt(tx.Addr); at > now {
				// The block is mid-migration; hold injection until the
				// copy drains.
				p.armTimer(at)
				return
			}
		}
		blk := tx.Addr &^ 63
		if !tx.Write && p.pendingWrites[blk] > 0 {
			// Directory stall: park the read until the write acks.
			p.parks++
			p.parkedReads[blk] = append(p.parkedReads[blk],
				parked{tx: tx, since: now, arrive: p.stagedArrive})
			p.hasStaged = false
			continue
		}
		if !p.out.CanAccept(packet.VCRequest) {
			return
		}
		p.hasStaged = false
		p.inject(tx, p.stagedArrive)
	}
}

// inject builds and sends the request packet for tx.
func (p *Port) inject(tx workload.Tx, arrive sim.Time) {
	now := p.eng.Now()
	p.InjectWait += now - arrive

	kind := packet.ReadReq
	if tx.Write {
		kind = packet.WriteReq
		p.pendingWrites[tx.Addr&^63]++
	}
	p.observe(tx.Write)
	if p.cfg.Observe != nil {
		p.cfg.Observe(tx.Addr)
	}
	physAddr := tx.Addr
	if p.cfg.Translate != nil {
		physAddr = p.cfg.Translate(tx.Addr)
	}

	dst := p.wire.DestOf(physAddr)
	class := topology.ClassOf(kind, p.WriteShortcut())
	p.nextID++
	pk := p.pool.Get()
	*pk = packet.Packet{
		ID:           p.nextID,
		Kind:         kind,
		Src:          packet.HostNode,
		Dst:          dst,
		Addr:         physAddr,
		Logical:      tx.Addr,
		Distance:     p.wire.DistOf(dst, class),
		EnterPort:    -1, // no router ingress yet
		Injected:     now,
		ReadModWrite: tx.RMW,
		Class:        uint8(class),
	}
	p.inflight++
	p.injected++
	if p.spanHook != nil {
		p.spanHook(pk, now-arrive)
	}
	if p.cfg.OnInject != nil {
		p.cfg.OnInject(pk)
	}
	if g := p.cfg.WavefrontSize; g > 1 && kind == packet.ReadReq {
		wf := p.wfNext
		p.wfOf[pk.ID] = wf
		p.wfLeft[wf]++
		p.wfSize[wf]++
		p.wfFill++
		if p.wfFill == g {
			p.wfFill = 0
			p.wfNext++
		}
	}
	p.out.Send(pk)
}

// observe feeds the hysteresis monitor with one injected transaction.
func (p *Port) observe(write bool) {
	if p.recentN == len(p.recent) {
		if p.recent[p.recentAt] {
			p.writesIn--
		}
	} else {
		p.recentN++
	}
	p.recent[p.recentAt] = write
	if write {
		p.writesIn++
	}
	p.recentAt = (p.recentAt + 1) % len(p.recent)

	if p.recentN < len(p.recent)/2 {
		return
	}
	frac := float64(p.writesIn) / float64(p.recentN)
	if !p.shortcut && frac >= p.cfg.ShortcutHi {
		p.shortcut = true
	} else if p.shortcut && frac <= p.cfg.ShortcutLo {
		p.shortcut = false
	}
}

// armTimer schedules a pump at the staged transaction's arrival time.
func (p *Port) armTimer(at sim.Time) {
	if p.timerSet {
		return
	}
	p.timerSet = true
	p.eng.At(at, p.timerFn)
}
