// Package arb implements the router input-arbitration policies studied
// in the paper:
//
//   - RoundRobin: the baseline locally-fair scheme. Because a cube's four
//     local vault queues outnumber its single upstream queue, locally fair
//     selection is globally unfair (the "parking lot problem", §3.2).
//   - Distance: the paper's §4.1 proposal — a weighted round-robin whose
//     weights use a packet's hop distance (read from the header flit) as
//     a proxy for its age.
//   - Augmented distance (§5.3): the distance weight is corrected with
//     knowledge of the source cube's memory technology (NVM responses are
//     older than their distance suggests) and the request type (writes
//     may be further delayed).
//
// All three are expressed as one smooth weighted-round-robin engine with
// different weight functions, so the baseline is exactly the weight-1
// special case.
package arb

import (
	"memnet/internal/packet"
)

// Kind selects an arbitration policy.
type Kind uint8

const (
	// RoundRobin is the locally-fair baseline.
	RoundRobin Kind = iota
	// Distance is the naive distance-as-age scheme of §4.1.
	Distance
	// DistanceAugmented is the §5.3 scheme, aware of memory technology
	// and request type.
	DistanceAugmented
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case Distance:
		return "distance"
	case DistanceAugmented:
		return "distance-augmented"
	default:
		return "arb(?)"
	}
}

// Policy selects which input port an output port serves next. Policies
// are per-router and stateful (they hold the fairness counters).
type Policy interface {
	// Pick chooses one of candidates (input-port indices whose head
	// packet is eligible for this output). head returns the head packet
	// of a candidate. candidates is non-empty and sorted ascending.
	Pick(out int, vc packet.VC, candidates []int, head func(int) *packet.Packet) int
}

// WeightFunc computes the arbitration weight of a head packet. Weights
// must be >= 1; larger weights receive proportionally more service.
type WeightFunc func(p *packet.Packet) int64

// TechBias estimates, in weight units, how much older a packet from the
// given node is than its hop distance implies. Used by the augmented
// policy for NVM-sourced responses.
type TechBias func(n packet.NodeID) int64

// Config carries the tuning constants of the distance policies. The
// paper determined these "empirically using both average network hop
// latency and average memory access latency for each cube technology
// type" (§5.3); defaults are derived the same way in core.DefaultArb.
type Config struct {
	// Bias, when non-nil, augments response weights by the source cube's
	// technology latency (in hop-equivalents).
	Bias TechBias
	// WriteDemotion divides the weight of write requests/acks (>=1).
	WriteDemotion int64
}

// New returns a policy of the given kind. cfg may be zero-valued for
// RoundRobin and Distance.
func New(kind Kind, cfg Config) Policy {
	switch kind {
	case RoundRobin:
		return &wrr{weight: func(*packet.Packet) int64 { return 1 }}
	case Distance:
		return &wrr{strict: true, weight: func(p *packet.Packet) int64 {
			return 1 + int64(p.Distance)
		}}
	case DistanceAugmented:
		demote := cfg.WriteDemotion
		if demote < 1 {
			demote = 1
		}
		return &wrr{strict: true, weight: func(p *packet.Packet) int64 {
			w := 1 + int64(p.Distance)
			if cfg.Bias != nil && p.Kind.IsResponse() {
				w += cfg.Bias(p.Src)
			}
			if p.Kind.IsWrite() {
				w = w / demote
				if w < 1 {
					w = 1
				}
			}
			return w
		}}
	default:
		panic("arb: unknown kind")
	}
}

// wrr is a weighted arbiter with two modes. In smooth mode (strict ==
// false) it is a smooth weighted round-robin (nginx-style): each
// contender's running counter grows by its weight every arbitration, the
// largest counter wins and is decremented by the sum of active weights;
// with all weights equal to 1 this degenerates to plain round-robin. In
// strict mode the highest head-packet weight always wins (ties broken by
// rotation) — the paper's distance arbitration favors the
// estimated-oldest packet outright, which is what makes the naive scheme
// misfire on NVM-F placements (§5.1).
// State is kept per (output port, VC) so request and response streams do
// not perturb each other's fairness.
type wrr struct {
	weight WeightFunc
	strict bool
	state  map[arbKey]map[int]int64
	rot    map[arbKey]int
}

type arbKey struct {
	out int
	vc  packet.VC
}

func (a *wrr) Pick(out int, vc packet.VC, candidates []int, head func(int) *packet.Packet) int {
	if len(candidates) == 1 {
		return candidates[0]
	}
	key := arbKey{out: out, vc: vc}
	if a.strict {
		if a.rot == nil {
			a.rot = make(map[arbKey]int)
		}
		rot := a.rot[key]
		best := -1
		var bestVal int64
		for k := 0; k < len(candidates); k++ {
			c := candidates[(rot+k)%len(candidates)]
			w := a.weight(head(c))
			if best == -1 || w > bestVal {
				best = c
				bestVal = w
			}
		}
		a.rot[key] = rot + 1
		return best
	}
	if a.state == nil {
		a.state = make(map[arbKey]map[int]int64)
	}
	cur := a.state[key]
	if cur == nil {
		cur = make(map[int]int64)
		a.state[key] = cur
	}

	var total int64
	best := -1
	var bestVal int64
	for _, c := range candidates {
		w := a.weight(head(c))
		if w < 1 {
			w = 1
		}
		cur[c] += w
		total += w
		if best == -1 || cur[c] > bestVal {
			best = c
			bestVal = cur[c]
		}
	}
	cur[best] -= total
	return best
}
