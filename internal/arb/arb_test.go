package arb

import (
	"testing"
	"testing/quick"

	"memnet/internal/packet"
)

func heads(ps ...*packet.Packet) func(int) *packet.Packet {
	return func(i int) *packet.Packet { return ps[i] }
}

func TestRoundRobinFairness(t *testing.T) {
	p := New(RoundRobin, Config{})
	a := &packet.Packet{Kind: packet.ReadResp, Distance: 1}
	b := &packet.Packet{Kind: packet.ReadResp, Distance: 9}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[p.Pick(0, packet.VCResponse, []int{0, 1}, heads(a, b))]++
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("round robin unfair: %v", counts)
	}
}

func TestRoundRobinPerOutputState(t *testing.T) {
	p := New(RoundRobin, Config{})
	a := &packet.Packet{Kind: packet.ReadResp}
	b := &packet.Packet{Kind: packet.ReadResp}
	// Alternation at output 0 must not disturb output 1.
	first0 := p.Pick(0, packet.VCResponse, []int{0, 1}, heads(a, b))
	first1 := p.Pick(1, packet.VCResponse, []int{0, 1}, heads(a, b))
	if first0 != first1 {
		t.Fatal("fresh outputs should start identically")
	}
	second0 := p.Pick(0, packet.VCResponse, []int{0, 1}, heads(a, b))
	if second0 == first0 {
		t.Fatal("output 0 should alternate")
	}
}

func TestDistancePicksFarthest(t *testing.T) {
	p := New(Distance, Config{})
	near := &packet.Packet{Kind: packet.ReadResp, Distance: 1}
	far := &packet.Packet{Kind: packet.ReadResp, Distance: 9}
	for i := 0; i < 10; i++ {
		if got := p.Pick(0, packet.VCResponse, []int{0, 1}, heads(near, far)); got != 1 {
			t.Fatalf("iteration %d picked %d, want the far packet", i, got)
		}
	}
}

func TestDistanceTieRotation(t *testing.T) {
	p := New(Distance, Config{})
	a := &packet.Packet{Kind: packet.ReadResp, Distance: 4}
	b := &packet.Packet{Kind: packet.ReadResp, Distance: 4}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[p.Pick(0, packet.VCResponse, []int{0, 1}, heads(a, b))]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("ties must rotate: %v", counts)
	}
}

func TestAugmentedTechBias(t *testing.T) {
	// An NVM-sourced response with a shorter distance should beat a
	// DRAM response with a slightly longer one.
	cfg := Config{
		Bias: func(n packet.NodeID) int64 {
			if n == 2 {
				return 6 // NVM cube
			}
			return 0
		},
	}
	p := New(DistanceAugmented, cfg)
	dram := &packet.Packet{Kind: packet.ReadResp, Src: 1, Distance: 4}
	nvm := &packet.Packet{Kind: packet.ReadResp, Src: 2, Distance: 1}
	if got := p.Pick(0, packet.VCResponse, []int{0, 1}, heads(dram, nvm)); got != 1 {
		t.Fatal("NVM bias should win")
	}
	// Bias applies to responses only: an NVM-bound *request* gets none.
	reqNVM := &packet.Packet{Kind: packet.ReadReq, Src: 2, Distance: 1}
	reqDRAM := &packet.Packet{Kind: packet.ReadReq, Src: 1, Distance: 4}
	if got := p.Pick(1, packet.VCRequest, []int{0, 1}, heads(reqNVM, reqDRAM)); got != 1 {
		t.Fatal("requests must use raw distance")
	}
}

func TestAugmentedWriteDemotion(t *testing.T) {
	p := New(DistanceAugmented, Config{WriteDemotion: 4})
	write := &packet.Packet{Kind: packet.WriteReq, Distance: 8} // weight (1+8)/4 = 2
	read := &packet.Packet{Kind: packet.ReadReq, Distance: 3}   // weight 4
	if got := p.Pick(0, packet.VCRequest, []int{0, 1}, heads(write, read)); got != 1 {
		t.Fatal("demoted write should lose to the read")
	}
	// Demotion never drops a weight below 1.
	tiny := &packet.Packet{Kind: packet.WriteAck, Distance: 0}
	other := &packet.Packet{Kind: packet.WriteAck, Distance: 0}
	got := p.Pick(1, packet.VCResponse, []int{0, 1}, heads(tiny, other))
	if got != 0 && got != 1 {
		t.Fatal("pick outside candidates")
	}
}

func TestSingleCandidateShortCircuit(t *testing.T) {
	for _, k := range []Kind{RoundRobin, Distance, DistanceAugmented} {
		p := New(k, Config{})
		pk := &packet.Packet{Kind: packet.ReadReq}
		if got := p.Pick(0, packet.VCRequest, []int{3}, heads(nil, nil, nil, pk)); got != 3 {
			t.Fatalf("%v: single candidate not returned", k)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{RoundRobin, Distance, DistanceAugmented} {
		if k.String() == "arb(?)" {
			t.Fatalf("missing name for %d", k)
		}
	}
	if Kind(9).String() != "arb(?)" {
		t.Fatal("unknown kind fallback")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(99), Config{})
}

// Property: every policy always returns a member of candidates.
func TestPickMembership(t *testing.T) {
	policies := []Policy{
		New(RoundRobin, Config{}),
		New(Distance, Config{}),
		New(DistanceAugmented, Config{WriteDemotion: 2}),
	}
	f := func(out uint8, dists []uint8) bool {
		if len(dists) == 0 {
			return true
		}
		if len(dists) > 8 {
			dists = dists[:8]
		}
		pkts := make([]*packet.Packet, len(dists))
		cands := make([]int, len(dists))
		for i, d := range dists {
			kind := packet.ReadResp
			if d%3 == 0 {
				kind = packet.WriteAck
			}
			pkts[i] = &packet.Packet{Kind: kind, Distance: int(d % 17), Src: packet.NodeID(d % 5)}
			cands[i] = i
		}
		for _, p := range policies {
			got := p.Pick(int(out%4), packet.VCResponse, cands, heads(pkts...))
			if got < 0 || got >= len(pkts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: smooth WRR (round-robin) service share is proportional under
// sustained backlog — with equal weights, shares stay within one pick.
func TestRoundRobinShareBound(t *testing.T) {
	p := New(RoundRobin, Config{})
	pk := &packet.Packet{Kind: packet.ReadResp}
	counts := make([]int, 3)
	for i := 0; i < 3001; i++ {
		counts[p.Pick(0, packet.VCResponse, []int{0, 1, 2}, func(int) *packet.Packet { return pk })]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 1000 || counts[i] > 1001 {
			t.Fatalf("share skew: %v", counts)
		}
	}
}
