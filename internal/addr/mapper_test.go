package addr

import (
	"testing"
	"testing/quick"

	"memnet/internal/config"
	"memnet/internal/packet"
)

func testMapper(t *testing.T, frac float64) (*Mapper, *config.System) {
	t.Helper()
	sys := config.Default()
	sys.DRAMFraction = frac
	nd, nn, err := sys.CubesPerPort()
	if err != nil {
		t.Fatal(err)
	}
	var slots []CubeSlot
	id := packet.NodeID(1)
	for i := 0; i < nd; i++ {
		slots = append(slots, CubeSlot{Node: id, Tech: config.DRAM, Units: 1})
		id++
	}
	for i := 0; i < nn; i++ {
		slots = append(slots, CubeSlot{Node: id, Tech: config.NVM, Units: 4})
		id++
	}
	m, err := NewMapper(&sys, slots)
	if err != nil {
		t.Fatal(err)
	}
	return m, &sys
}

func TestMapperUnits(t *testing.T) {
	m, _ := testMapper(t, 0.5)
	// 8 DRAM cubes x 1 + 2 NVM cubes x 4 = 16 units.
	if m.TotalUnits() != 16 {
		t.Fatalf("units = %d, want 16", m.TotalUnits())
	}
}

// TestCapacityProportionalTraffic checks the paper's core interleaving
// assumption: with 50% capacity from NVM, half of sequential requests
// land on NVM cubes.
func TestCapacityProportionalTraffic(t *testing.T) {
	m, sys := testMapper(t, 0.5)
	counts := map[packet.NodeID]int{}
	const n = 1 << 16
	for i := 0; i < n; i++ {
		a := uint64(i) * sys.InterleaveBytes
		counts[m.CubeOf(a)]++
	}
	var dram, nvm int
	for node, c := range counts {
		if m.Tech(node) == config.NVM {
			nvm += c
		} else {
			dram += c
		}
	}
	if dram != nvm {
		t.Fatalf("sequential split DRAM=%d NVM=%d, want equal", dram, nvm)
	}
	// Each NVM cube gets exactly 4x each DRAM cube's share.
	if counts[9] != 4*counts[1] {
		t.Fatalf("NVM cube share %d != 4x DRAM share %d", counts[9], counts[1])
	}
}

func TestDecomposeConsistency(t *testing.T) {
	m, _ := testMapper(t, 0.5)
	f := func(a uint64) bool {
		a %= 256 << 30
		node, quad, bank, row := m.Decompose(a)
		if node != m.CubeOf(a) {
			return false
		}
		if quad < 0 || quad >= 4 || bank < 0 || bank >= 64 || row < 0 {
			return false
		}
		return m.QuadrantOf(a) == quad
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRowLocality: consecutive interleave blocks bound for the same cube
// share a row until the row is exhausted (open-page friendliness).
func TestRowLocality(t *testing.T) {
	m, sys := testMapper(t, 1.0)
	// Blocks i and i+16 (totalUnits=16) hit the same cube.
	a0 := uint64(0)
	n0, q0, b0, r0 := m.Decompose(a0)
	blocksPerRow := int(sys.RowBytes / sys.InterleaveBytes)
	for k := 1; k < blocksPerRow; k++ {
		a := a0 + uint64(k)*sys.InterleaveBytes*uint64(m.TotalUnits())
		n, q, b, r := m.Decompose(a)
		if n != n0 || q != q0 || b != b0 || r != r0 {
			t.Fatalf("block %d left the row: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
				k, n, q, b, r, n0, q0, b0, r0)
		}
	}
	// The next block moves on (different bank, same cube).
	a := a0 + uint64(blocksPerRow)*sys.InterleaveBytes*uint64(m.TotalUnits())
	n, _, b, _ := m.Decompose(a)
	if n != n0 {
		t.Fatal("row group change must stay on the cube")
	}
	if b == b0 {
		t.Fatal("next row group should move to the next bank")
	}
}

// TestAddressBijectivity: distinct addresses within a cube's row never
// alias to the same (quad, bank, row) from a different localBlock...
// verified indirectly: full coordinates plus the intra-block offset
// reconstruct distinct addresses for a sample.
func TestNoCoordinateCollisions(t *testing.T) {
	m, sys := testMapper(t, 0.5)
	seen := map[[4]int64]uint64{}
	for i := 0; i < 1<<14; i++ {
		a := uint64(i) * sys.InterleaveBytes
		node, q, b, r := m.Decompose(a)
		key := [4]int64{int64(node), int64(q), int64(b), r}
		if prev, ok := seen[key]; ok {
			// Same row may hold several blocks — allowed; require they
			// be within one row's worth of cube-local blocks.
			blocksPerRow := int64(sys.RowBytes / sys.InterleaveBytes)
			stride := int64(sys.InterleaveBytes)
			if (int64(a)-int64(prev))/stride > blocksPerRow*int64(m.TotalUnits()) {
				t.Fatalf("distant addresses %#x and %#x collide on %v", prev, a, key)
			}
			continue
		}
		seen[key] = a
	}
}

func TestMapperErrors(t *testing.T) {
	sys := config.Default()
	if _, err := NewMapper(&sys, nil); err == nil {
		t.Error("empty slots must fail")
	}
	if _, err := NewMapper(&sys, []CubeSlot{{Node: 1, Units: 0}}); err == nil {
		t.Error("zero units must fail")
	}
	bad := sys
	bad.RowBytes = 100 // not a multiple of interleave
	if _, err := NewMapper(&bad, []CubeSlot{{Node: 1, Units: 1}}); err == nil {
		t.Error("non-multiple RowBytes must fail")
	}
}

func TestTechLookup(t *testing.T) {
	m, _ := testMapper(t, 0.5)
	if m.Tech(1) != config.DRAM {
		t.Error("cube 1 should be DRAM")
	}
	if m.Tech(9) != config.NVM {
		t.Error("cube 9 should be NVM")
	}
	if m.Tech(999) != config.DRAM {
		t.Error("unknown nodes default to DRAM")
	}
	if len(m.Slots()) != 10 {
		t.Errorf("slots = %d, want 10", len(m.Slots()))
	}
}
