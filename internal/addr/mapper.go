// Package addr implements the address-to-resource mapping of a single
// memory port's slice: capacity-proportional interleaving of 256-byte
// blocks across the port's cubes (so a cube with 4x capacity receives 4x
// the requests, matching the paper's uniform-by-address assumption), and
// the cube-internal block -> quadrant/bank/row decomposition.
package addr

import (
	"fmt"

	"memnet/internal/config"
	"memnet/internal/packet"
)

// CubeSlot describes one cube participating in the interleave.
type CubeSlot struct {
	Node packet.NodeID
	Tech config.MemTech
	// Units is the cube's capacity weight in DRAM-cube units
	// (1 for DRAM, 4 for a 4x-capacity NVM cube).
	Units int
}

// Mapper translates physical addresses within a port slice to
// (cube, quadrant, bank, row) coordinates.
type Mapper struct {
	interleave   uint64
	blocksPerRow uint64
	banksPerCube int
	banksPerQuad int

	slots      []CubeSlot
	unitToSlot []int // length totalUnits: unit index -> slot index
	unitOffset []int // per unit: ordinal of this unit within its cube
	totalUnits int

	techOf map[packet.NodeID]config.MemTech
}

// NewMapper builds a mapper for the given cube set. The slot order
// determines unit assignment; units of a multi-unit cube are spread
// round-robin style by listing the cube once with its full weight.
func NewMapper(sys *config.System, slots []CubeSlot) (*Mapper, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("addr: no cubes")
	}
	if sys.RowBytes%sys.InterleaveBytes != 0 {
		return nil, fmt.Errorf("addr: RowBytes %d not a multiple of InterleaveBytes %d",
			sys.RowBytes, sys.InterleaveBytes)
	}
	m := &Mapper{
		interleave:   sys.InterleaveBytes,
		blocksPerRow: sys.RowBytes / sys.InterleaveBytes,
		banksPerCube: sys.BanksPerCube,
		banksPerQuad: sys.BanksPerQuadrant(),
		slots:        slots,
		techOf:       make(map[packet.NodeID]config.MemTech, len(slots)),
	}
	for i, s := range slots {
		if s.Units <= 0 {
			return nil, fmt.Errorf("addr: cube %d has non-positive units", s.Node)
		}
		for u := 0; u < s.Units; u++ {
			m.unitToSlot = append(m.unitToSlot, i)
			m.unitOffset = append(m.unitOffset, u)
		}
		m.techOf[s.Node] = s.Tech
	}
	m.totalUnits = len(m.unitToSlot)
	return m, nil
}

// TotalUnits reports the number of interleave units (DRAM-cube
// equivalents) in the port slice.
func (m *Mapper) TotalUnits() int { return m.totalUnits }

// Slots returns the cube slots in interleave order.
func (m *Mapper) Slots() []CubeSlot { return m.slots }

// Tech reports the technology of the cube with the given node ID; it
// returns DRAM for unknown nodes (e.g. MetaCube interface chips hold no
// memory and are never mapping targets).
func (m *Mapper) Tech(n packet.NodeID) config.MemTech { return m.techOf[n] }

// CubeOf returns the destination cube for an address.
func (m *Mapper) CubeOf(a uint64) packet.NodeID {
	bi := a / m.interleave
	return m.slots[m.unitToSlot[bi%uint64(m.totalUnits)]].Node
}

// Decompose maps an address to its full coordinates. localBlock is the
// cube-local block ordinal; quadrant, bank (within the quadrant) and row
// follow the open-page friendly layout: consecutive cube-local blocks
// share a row until blocksPerRow is exhausted, then move to the next
// bank.
func (m *Mapper) Decompose(a uint64) (node packet.NodeID, quadrant, bank int, row int64) {
	bi := a / m.interleave
	unit := bi % uint64(m.totalUnits)
	slot := m.unitToSlot[unit]
	s := m.slots[slot]
	// Cube-local block index: interleave rounds advance per totalUnits;
	// multi-unit cubes see several units per round.
	localBlock := (bi/uint64(m.totalUnits))*uint64(s.Units) + uint64(m.unitOffset[unit])

	rowGroup := localBlock / m.blocksPerRow
	globalBank := int(rowGroup % uint64(m.banksPerCube))
	row = int64(rowGroup / uint64(m.banksPerCube))
	quadrant = globalBank / m.banksPerQuad
	bank = globalBank % m.banksPerQuad
	return s.Node, quadrant, bank, row
}

// QuadrantOf returns only the quadrant coordinate, used by the router to
// decide whether the wrong-quadrant penalty applies.
func (m *Mapper) QuadrantOf(a uint64) int {
	_, q, _, _ := m.Decompose(a)
	return q
}
