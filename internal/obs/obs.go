// Package obs is memnet's sim-time telemetry layer: a deterministic,
// allocation-conscious metrics registry (counters, probe-backed gauges,
// integer-indexed vectors, and fixed-bucket log-scale latency
// histograms), an interval sampler driven by the sim engine's probe
// hook, and exporters (Perfetto trace-event JSON, run-manifest JSON, CSV
// time series).
//
// Design rules, enforced by tests and mnlint:
//
//   - Keys are pre-interned: a metric's name string is stored once at
//     registration (build time); hot paths hold the returned pointer and
//     never format or hash a key. This is the statskey-clean idiom.
//
//   - Disabled telemetry is (nearly) free: every hot-path mutator is a
//     method with a nil-receiver fast path, so instrumented code calls
//     `c.Inc()` unconditionally and pays one predictable branch when
//     telemetry is off.
//
//   - Telemetry never perturbs the simulation: gauges and vectors are
//     read-only probes evaluated at sample boundaries (which are not
//     events — see sim.Engine.SetProbe), and no obs code schedules
//     events, so Results are bit-identical with telemetry on and off.
//
//   - Exports are deterministic: dumps sort by metric name, series keep
//     registration order, and all iteration is over slices, never maps.
package obs

import (
	"fmt"

	"memnet/internal/sim"
)

// Config enables the telemetry layer on a simulation instance.
type Config struct {
	// Enabled arms metric registration and the interval sampler.
	Enabled bool
	// SampleInterval is the gauge-sampling period in sim time; zero
	// means DefaultSampleInterval.
	SampleInterval sim.Time
}

// DefaultSampleInterval is the sampling period used when a Config
// enables telemetry without choosing one.
const DefaultSampleInterval = 10 * sim.Microsecond

// On reports whether c enables telemetry (nil-safe).
func (c *Config) On() bool { return c != nil && c.Enabled }

// Interval returns the effective sampling period (nil-safe).
func (c *Config) Interval() sim.Time {
	if c == nil || c.SampleInterval <= 0 {
		return DefaultSampleInterval
	}
	return c.SampleInterval
}

// Counter is a monotonically increasing event count. The zero-cost
// disabled path is a nil *Counter: every method no-ops on nil.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name reports the interned metric name.
func (c *Counter) Name() string { return c.name }

// gauge is a registered read-only probe, evaluated only at sample
// boundaries and at dump time — never on the hot path.
type gauge struct {
	name  string
	probe func() int64
}

// vec is a registered probe over an integer-indexed counter slice (e.g.
// per-input-port arbitration grants, per-cube completed transactions).
// The slice itself is owned by the instrumented component, which
// increments entries directly; obs only snapshots it.
type vec struct {
	name   string
	labels []string
	probe  func() []uint64
}

// Registry holds the metrics of one simulation instance. Registration
// happens at build time; the hot path only touches returned pointers.
// A nil *Registry is the disabled layer: every method no-ops and every
// constructor returns nil, so instrumentation code needs no branching.
type Registry struct {
	counters []*Counter
	gauges   []gauge
	vecs     []vec
	hists    []*Histogram

	// index detects duplicate registration; it is registration-time
	// bookkeeping only and is never ranged over or touched per event.
	//lint:coldpath built once per instance at registration time
	index map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	//lint:coldpath built once per instance at registration time
	return &Registry{index: make(map[string]int)}
}

// intern records a name, panicking on duplicates (metric names must be
// unique so dumps and series columns are unambiguous).
func (r *Registry) intern(name string) {
	if _, dup := r.index[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.index[name] = len(r.index)
}

// Counter registers and returns a counter (nil registry returns nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.intern(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a read-only probe sampled at interval boundaries.
// The probe must not mutate simulation state.
func (r *Registry) Gauge(name string, probe func() int64) {
	if r == nil {
		return
	}
	if probe == nil {
		panic("obs: nil gauge probe")
	}
	r.intern(name)
	r.gauges = append(r.gauges, gauge{name: name, probe: probe})
}

// Vec registers a probe over an integer-indexed counter slice. labels
// names the indices (len(labels) == len(probe())); the instrumented
// component owns and increments the slice.
func (r *Registry) Vec(name string, labels []string, probe func() []uint64) {
	if r == nil {
		return
	}
	if probe == nil {
		panic("obs: nil vec probe")
	}
	r.intern(name)
	r.vecs = append(r.vecs, vec{name: name, labels: labels, probe: probe})
}

// Histogram registers and returns a latency histogram (nil registry
// returns nil).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.intern(name)
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}
